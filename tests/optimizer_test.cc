#include <gtest/gtest.h>

#include <cmath>

#include "catalog/schema.h"
#include "common/rng.h"
#include "optimizer/cost_model.h"
#include "optimizer/plan.h"

namespace qsched::optimizer {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest()
      : catalog_(catalog::MakeTpchCatalog(0.5)),
        model_(&catalog_, CostModelParams()) {}

  catalog::Catalog catalog_;
  CostModel model_;
};

TEST(PlanBuilderTest, BuildsExpectedShapes) {
  PlanNodePtr plan = TopN(
      Aggregate(HashJoin(TableScan("a", 0.5), TableScan("b", 1.0)), 10),
      5);
  EXPECT_EQ(plan->kind, OperatorKind::kTopN);
  EXPECT_EQ(plan->TreeSize(), 5u);
  EXPECT_EQ(plan->ToString(),
            "(TopN (Aggregate (HashJoin (TableScan a) (TableScan b))))");
}

TEST(PlanBuilderTest, OperatorNamesStable) {
  EXPECT_STREQ(OperatorKindToString(OperatorKind::kIndexScan), "IndexScan");
  EXPECT_STREQ(OperatorKindToString(OperatorKind::kUpdate), "Update");
}

TEST(PlanBuilderTest, AggregateGroupCountNeverZero) {
  PlanNodePtr plan = Aggregate(TableScan("a", 1.0), 0);
  EXPECT_EQ(plan->group_count, 1u);
}

TEST_F(OptimizerTest, CardinalityTableScanAppliesSelectivity) {
  CardinalityEstimator estimator(&catalog_);
  PlanNodePtr scan = TableScan("lineitem", 0.1);
  EXPECT_NEAR(estimator.OutputRows(*scan), 300000.0, 1.0);
}

TEST_F(OptimizerTest, CardinalitySelectivityClamped) {
  CardinalityEstimator estimator(&catalog_);
  EXPECT_DOUBLE_EQ(estimator.OutputRows(*TableScan("lineitem", 2.0)),
                   3000000.0);
  EXPECT_DOUBLE_EQ(estimator.OutputRows(*TableScan("lineitem", -1.0)),
                   0.0);
}

TEST_F(OptimizerTest, CardinalityUnknownTableIsZero) {
  CardinalityEstimator estimator(&catalog_);
  EXPECT_DOUBLE_EQ(estimator.OutputRows(*TableScan("ghost", 1.0)), 0.0);
}

TEST_F(OptimizerTest, CardinalityJoinFanout) {
  CardinalityEstimator estimator(&catalog_);
  PlanNodePtr join =
      HashJoin(TableScan("customer", 1.0), TableScan("orders", 1.0), 0.5);
  // max(75000, 750000) * 0.5.
  EXPECT_NEAR(estimator.OutputRows(*join), 375000.0, 1.0);
}

TEST_F(OptimizerTest, CardinalityAggregateCapsAtGroups) {
  CardinalityEstimator estimator(&catalog_);
  PlanNodePtr agg = Aggregate(TableScan("lineitem", 1.0), 4);
  EXPECT_DOUBLE_EQ(estimator.OutputRows(*agg), 4.0);
  PlanNodePtr tiny = Aggregate(TableScan("nation", 1.0), 1000);
  EXPECT_DOUBLE_EQ(estimator.OutputRows(*tiny), 25.0);
}

TEST_F(OptimizerTest, CardinalityTopNCapsAtLimit) {
  CardinalityEstimator estimator(&catalog_);
  EXPECT_DOUBLE_EQ(
      estimator.OutputRows(*TopN(TableScan("orders", 1.0), 10)), 10.0);
}

TEST_F(OptimizerTest, ScanCostCountsAllPagesRegardlessOfSelectivity) {
  auto narrow = model_.Estimate(*TableScan("lineitem", 0.01), nullptr);
  auto wide = model_.Estimate(*TableScan("lineitem", 1.0), nullptr);
  ASSERT_TRUE(narrow.ok());
  ASSERT_TRUE(wide.ok());
  EXPECT_DOUBLE_EQ(narrow.ValueOrDie().logical_pages,
                   wide.ValueOrDie().logical_pages);
}

TEST_F(OptimizerTest, IndexScanMuchCheaperThanTableScan) {
  auto probe =
      model_.Estimate(*IndexScan("orders", "o_orderkey", 1.0), nullptr);
  auto scan = model_.Estimate(*TableScan("orders", 1.0), nullptr);
  ASSERT_TRUE(probe.ok());
  ASSERT_TRUE(scan.ok());
  EXPECT_LT(probe.ValueOrDie().timerons * 100,
            scan.ValueOrDie().timerons);
}

TEST_F(OptimizerTest, UnknownTableReturnsNotFound) {
  auto result = model_.Estimate(*TableScan("ghost", 1.0), nullptr);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(OptimizerTest, LargeSortSpills) {
  CostModelParams params;
  CostModel model(&catalog_, params);
  auto sorted = model.Estimate(*Sort(TableScan("lineitem", 1.0)), nullptr);
  auto plain = model.Estimate(*TableScan("lineitem", 1.0), nullptr);
  ASSERT_TRUE(sorted.ok());
  // 3M rows * 64 B >> 32 MB work_mem: spill adds write + re-read pages.
  EXPECT_GT(sorted.ValueOrDie().write_pages, 0.0);
  EXPECT_GT(sorted.ValueOrDie().logical_pages,
            plain.ValueOrDie().logical_pages);
}

TEST_F(OptimizerTest, SmallSortDoesNotSpill) {
  auto sorted = model_.Estimate(*Sort(TableScan("nation", 1.0)), nullptr);
  ASSERT_TRUE(sorted.ok());
  EXPECT_DOUBLE_EQ(sorted.ValueOrDie().write_pages, 0.0);
}

TEST_F(OptimizerTest, HashJoinSpillDependsOnBuildSide) {
  // Small build side (nation) fits; big build side (lineitem) spills.
  auto no_spill = model_.Estimate(
      *HashJoin(TableScan("nation", 1.0), TableScan("lineitem", 1.0)),
      nullptr);
  auto spill = model_.Estimate(
      *HashJoin(TableScan("lineitem", 1.0), TableScan("nation", 1.0)),
      nullptr);
  ASSERT_TRUE(no_spill.ok());
  ASSERT_TRUE(spill.ok());
  EXPECT_DOUBLE_EQ(no_spill.ValueOrDie().write_pages, 0.0);
  EXPECT_GT(spill.ValueOrDie().write_pages, 0.0);
}

TEST_F(OptimizerTest, DmlCostsWritePages) {
  catalog::Catalog tpcc = catalog::MakeTpccCatalog(50);
  CostModel model(&tpcc, CostModelParams());
  auto insert = model.Estimate(*Insert("orders", 1.0), nullptr);
  auto update = model.Estimate(*Update("stock", 1.0), nullptr);
  ASSERT_TRUE(insert.ok());
  ASSERT_TRUE(update.ok());
  EXPECT_GT(insert.ValueOrDie().write_pages, 0.0);
  EXPECT_DOUBLE_EQ(insert.ValueOrDie().logical_pages, 0.0);
  EXPECT_GT(update.ValueOrDie().logical_pages, 0.0);
  EXPECT_GT(update.ValueOrDie().write_pages, 0.0);
}

TEST_F(OptimizerTest, TimeronsAtLeastOne) {
  catalog::Catalog tpcc = catalog::MakeTpccCatalog(1);
  CostModel model(&tpcc, CostModelParams());
  auto result =
      model.Estimate(*IndexScan("warehouse", "w_id", 1.0), nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result.ValueOrDie().timerons, 1.0);
}

TEST_F(OptimizerTest, NoiseDisabledWithoutRng) {
  CostModelParams params;
  params.estimation_noise_sigma = 0.5;
  CostModel model(&catalog_, params);
  auto a = model.Estimate(*TableScan("orders", 1.0), nullptr);
  auto b = model.Estimate(*TableScan("orders", 1.0), nullptr);
  EXPECT_DOUBLE_EQ(a.ValueOrDie().timerons, b.ValueOrDie().timerons);
}

TEST_F(OptimizerTest, NoisePerturbsEstimateNotDemand) {
  CostModelParams params;
  params.estimation_noise_sigma = 0.4;
  CostModel model(&catalog_, params);
  Rng rng(99);
  auto a = model.Estimate(*TableScan("orders", 1.0), &rng);
  auto b = model.Estimate(*TableScan("orders", 1.0), &rng);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.ValueOrDie().timerons, b.ValueOrDie().timerons);
  EXPECT_DOUBLE_EQ(a.ValueOrDie().cpu_seconds, b.ValueOrDie().cpu_seconds);
  EXPECT_DOUBLE_EQ(a.ValueOrDie().logical_pages,
                   b.ValueOrDie().logical_pages);
}

TEST_F(OptimizerTest, NoiseIsMeanCentered) {
  // The lognormal perturbation uses mu = -sigma^2/2, so the *expected*
  // estimate equals the exact cost (the optimizer is unbiased on
  // average, merely noisy per query).
  CostModelParams params;
  params.estimation_noise_sigma = 0.3;
  CostModel model(&catalog_, params);
  double true_cost =
      model_.Estimate(*TableScan("orders", 1.0), nullptr)
          .ValueOrDie()
          .timerons;
  Rng rng(1);
  double sum = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    sum += model.Estimate(*TableScan("orders", 1.0), &rng)
               .ValueOrDie()
               .timerons;
  }
  EXPECT_NEAR(sum / n / true_cost, 1.0, 0.03);
}

class ScaleSweep : public ::testing::TestWithParam<double> {};

TEST_P(ScaleSweep, CostMonotoneInScaleFactor) {
  double sf = GetParam();
  catalog::Catalog small = catalog::MakeTpchCatalog(sf);
  catalog::Catalog big = catalog::MakeTpchCatalog(sf * 2.0);
  CostModel small_model(&small, CostModelParams());
  CostModel big_model(&big, CostModelParams());
  PlanNodePtr plan =
      Aggregate(HashJoin(TableScan("customer", 0.2),
                         TableScan("orders", 0.5)),
                100);
  double small_cost =
      small_model.Estimate(*plan, nullptr).ValueOrDie().timerons;
  double big_cost =
      big_model.Estimate(*plan, nullptr).ValueOrDie().timerons;
  EXPECT_GT(big_cost, small_cost);
  EXPECT_NEAR(big_cost / small_cost, 2.0, 0.4);
}

INSTANTIATE_TEST_SUITE_P(Scales, ScaleSweep,
                         ::testing::Values(0.125, 0.25, 0.5, 1.0, 2.0));

TEST_F(OptimizerTest, NestedLoopJoinScalesWithOuterRows) {
  PlanNodePtr small_outer = NestedLoopJoin(
      TableScan("nation", 1.0), IndexScan("orders", "o_orderkey", 1.0));
  PlanNodePtr big_outer = NestedLoopJoin(
      TableScan("customer", 1.0), IndexScan("orders", "o_orderkey", 1.0));
  double small_cpu =
      model_.Estimate(*small_outer, nullptr).ValueOrDie().cpu_seconds;
  double big_cpu =
      model_.Estimate(*big_outer, nullptr).ValueOrDie().cpu_seconds;
  EXPECT_GT(big_cpu, small_cpu * 100);
}

}  // namespace
}  // namespace qsched::optimizer
