#include <gtest/gtest.h>

#include "scheduler/greedy_allocator.h"

namespace qsched::sched {
namespace {

class GreedyAllocatorTest : public ::testing::Test {
 protected:
  GreedyAllocatorTest() : classes_(MakePaperClasses()) {}

  SolverInput MakeInput(double v1, double v2, double t3) {
    SolverInput input;
    input.total_cost_limit = 300000.0;
    input.oltp_model = &model_;
    input.classes = {
        {classes_.Find(1), v1, 100000, false},
        {classes_.Find(2), v2, 100000, false},
        {classes_.Find(3), t3, 100000, false},
    };
    return input;
  }

  ServiceClassSet classes_;
  OltpResponseModel model_;
  GreedyAllocator allocator_;
};

TEST_F(GreedyAllocatorTest, SumsToTotalAndRespectsMinShares) {
  SchedulingPlan plan = allocator_.Solve(MakeInput(0.5, 0.7, 0.2));
  EXPECT_NEAR(plan.Total(), 300000.0, 1.0);
  for (int id : {1, 2, 3}) {
    EXPECT_GE(plan.LimitFor(id), 0.05 * 300000.0 - 1.0);
  }
}

TEST_F(GreedyAllocatorTest, ViolatedOltpWinsAuction) {
  SchedulingPlan violated = allocator_.Solve(MakeInput(0.8, 0.9, 0.45));
  SchedulingPlan met = allocator_.Solve(MakeInput(0.8, 0.9, 0.10));
  EXPECT_GT(violated.LimitFor(3), met.LimitFor(3));
  EXPECT_GT(violated.LimitFor(3), 150000.0);
}

TEST_F(GreedyAllocatorTest, StarvedOlapBidsHigh) {
  SchedulingPlan plan = allocator_.Solve(MakeInput(0.1, 0.15, 0.08));
  // OLTP comfortable: the starving OLAP classes win most increments.
  EXPECT_GT(plan.LimitFor(1) + plan.LimitFor(2), 150000.0);
}

TEST_F(GreedyAllocatorTest, NearSolverQualityOnConcaveInputs) {
  PerformanceSolver solver;
  SolverInput input = MakeInput(0.35, 0.5, 0.30);
  SchedulingPlan greedy_plan = allocator_.Solve(input);
  SchedulingPlan search_plan = solver.Solve(input);
  // The auction reaches at least ~90% of the search optimum here.
  EXPECT_GT(greedy_plan.predicted_utility,
            0.9 * search_plan.predicted_utility);
}

TEST_F(GreedyAllocatorTest, DegenerateInputsSafe) {
  SolverInput empty;
  empty.total_cost_limit = 300000.0;
  EXPECT_EQ(allocator_.Solve(empty).cost_limits.size(), 0u);
  SolverInput zero = MakeInput(0.5, 0.5, 0.2);
  zero.total_cost_limit = 0.0;
  EXPECT_EQ(allocator_.Solve(zero).cost_limits.size(), 0u);
}

TEST_F(GreedyAllocatorTest, FinerIncrementsNeverReduceUtility) {
  SolverInput input = MakeInput(0.3, 0.45, 0.35);
  GreedyAllocator::Options coarse;
  coarse.increment_fraction = 0.10;
  GreedyAllocator::Options fine;
  fine.increment_fraction = 0.01;
  double u_coarse =
      GreedyAllocator(coarse).Solve(input).predicted_utility;
  double u_fine = GreedyAllocator(fine).Solve(input).predicted_utility;
  EXPECT_GE(u_fine, u_coarse - 0.05);
}

}  // namespace
}  // namespace qsched::sched
