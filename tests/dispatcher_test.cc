#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "engine/execution_engine.h"
#include "qp/interceptor.h"
#include "scheduler/dispatcher.h"
#include "sim/simulator.h"

namespace qsched::sched {
namespace {

workload::Query MakeOlapQuery(uint64_t id, int class_id, double cost) {
  workload::Query query;
  query.id = id;
  query.class_id = class_id;
  query.type = workload::WorkloadType::kOlap;
  query.cost_timerons = cost;
  query.job.query_id = id;
  query.job.cpu_seconds = 0.02;
  query.job.logical_pages = 200.0;
  query.job.hit_ratio = 0.5;
  return query;
}

class DispatcherTest : public ::testing::Test {
 protected:
  DispatcherTest()
      : engine_(&simulator_, engine::EngineConfig(), Rng(3)),
        interceptor_(&simulator_, &engine_, qp::InterceptorConfig()),
        dispatcher_(&interceptor_) {
    interceptor_.set_on_arrived([this](const qp::QueryInfoRecord& record) {
      dispatcher_.OnArrived(record);
    });
    interceptor_.set_on_finished(
        [this](const qp::QueryInfoRecord& record) {
          dispatcher_.OnFinished(record);
        });
  }

  void SetLimits(double c1, double c2) {
    SchedulingPlan plan;
    plan.cost_limits[1] = c1;
    plan.cost_limits[2] = c2;
    dispatcher_.SetPlan(plan);
  }

  void Submit(uint64_t id, int class_id, double cost,
              double logical_pages = 200.0) {
    workload::Query query = MakeOlapQuery(id, class_id, cost);
    query.job.logical_pages = logical_pages;
    interceptor_.Intercept(query,
                           [this](const workload::QueryRecord& record) {
                             completed_.push_back(record.query_id);
                           });
  }

  sim::Simulator simulator_;
  engine::ExecutionEngine engine_;
  qp::Interceptor interceptor_;
  Dispatcher dispatcher_;
  std::vector<uint64_t> completed_;
};

TEST_F(DispatcherTest, EnforcesClassCostLimit) {
  SetLimits(150.0, 150.0);
  Submit(1, 1, 100.0);
  Submit(2, 1, 100.0);  // exceeds class 1's 150 -> waits
  Submit(3, 2, 100.0);  // class 2 has its own budget
  simulator_.RunUntil(0.4);
  EXPECT_EQ(interceptor_.running_count(1), 1);
  EXPECT_EQ(interceptor_.running_count(2), 1);
  EXPECT_EQ(dispatcher_.QueuedFor(1), 1);
  simulator_.RunToCompletion();
  EXPECT_EQ(completed_.size(), 3u);
}

TEST_F(DispatcherTest, MinOneRuleReleasesOversizedQuery) {
  SetLimits(50.0, 50.0);
  Submit(1, 1, 400.0);
  simulator_.RunToCompletion();
  EXPECT_EQ(completed_.size(), 1u);
}

TEST_F(DispatcherTest, MinOneDoesNotApplyWhileSomethingRuns) {
  SetLimits(100.0, 100.0);
  Submit(1, 1, 90.0);
  Submit(2, 1, 400.0);  // oversized, must wait for 1 to finish
  simulator_.RunUntil(0.4);
  EXPECT_EQ(interceptor_.running_count(1), 1);
  EXPECT_EQ(dispatcher_.QueuedFor(1), 1);
  simulator_.RunToCompletion();
  EXPECT_EQ(completed_.size(), 2u);
  EXPECT_EQ(completed_[0], 1u);
  EXPECT_EQ(completed_[1], 2u);
}

TEST_F(DispatcherTest, RaisingLimitReleasesQueuedQueries) {
  SetLimits(100.0, 100.0);
  Submit(1, 1, 90.0);
  Submit(2, 1, 90.0);
  simulator_.RunUntil(0.4);
  EXPECT_EQ(dispatcher_.QueuedFor(1), 1);
  SetLimits(300.0, 100.0);
  EXPECT_EQ(dispatcher_.QueuedFor(1), 0);
  EXPECT_EQ(interceptor_.running_count(1), 2);
  simulator_.RunToCompletion();
  EXPECT_EQ(completed_.size(), 2u);
}

TEST_F(DispatcherTest, LoweringLimitDoesNotPreemptRunningQueries) {
  SetLimits(300.0, 100.0);
  Submit(1, 1, 250.0, /*logical_pages=*/50000.0);  // long-running scan
  simulator_.RunUntil(0.4);
  EXPECT_EQ(interceptor_.running_count(1), 1);
  SetLimits(50.0, 100.0);
  // Running work is never revoked; only future releases tighten.
  EXPECT_EQ(interceptor_.running_count(1), 1);
  Submit(2, 1, 40.0);
  simulator_.RunUntil(0.8);
  EXPECT_EQ(dispatcher_.QueuedFor(1), 1);  // 250 running > 50 limit
  simulator_.RunToCompletion();
  EXPECT_EQ(completed_.size(), 2u);
}

TEST_F(DispatcherTest, FifoWithinClass) {
  SetLimits(100.0, 100.0);
  // Costs chosen so no two queued queries fit together: releases are
  // strictly serialized and FIFO order is observable in completions.
  Submit(1, 1, 90.0);
  Submit(2, 1, 60.0);
  Submit(3, 1, 60.0);
  simulator_.RunToCompletion();
  ASSERT_EQ(completed_.size(), 3u);
  EXPECT_EQ(completed_[0], 1u);
  EXPECT_EQ(completed_[1], 2u);
  EXPECT_EQ(completed_[2], 3u);
}

TEST_F(DispatcherTest, ZeroLimitClassStillServedOneAtATime) {
  SetLimits(0.0, 100.0);
  Submit(1, 1, 30.0);
  Submit(2, 1, 30.0);
  simulator_.RunUntil(0.4);
  // min-one keeps exactly one running.
  EXPECT_EQ(interceptor_.running_count(1), 1);
  simulator_.RunToCompletion();
  EXPECT_EQ(completed_.size(), 2u);
  EXPECT_EQ(dispatcher_.released_total(), 2u);
}

class DispatcherPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DispatcherPropertyTest, NeverExceedsLimitExceptMinOne) {
  Rng rng(GetParam());
  sim::Simulator simulator;
  engine::ExecutionEngine engine(&simulator, engine::EngineConfig(),
                                 Rng(GetParam() + 100));
  qp::Interceptor interceptor(&simulator, &engine,
                              qp::InterceptorConfig());
  Dispatcher dispatcher(&interceptor);
  interceptor.set_on_arrived([&](const qp::QueryInfoRecord& record) {
    dispatcher.OnArrived(record);
  });
  interceptor.set_on_finished([&](const qp::QueryInfoRecord& record) {
    dispatcher.OnFinished(record);
  });
  const double kLimit1 = 200.0;
  const double kLimit2 = 120.0;
  SchedulingPlan plan;
  plan.cost_limits[1] = kLimit1;
  plan.cost_limits[2] = kLimit2;
  dispatcher.SetPlan(plan);

  int completed = 0;
  const int queries = 50;
  double max_cost_submitted = 0.0;
  for (int i = 0; i < queries; ++i) {
    double cost = rng.BoundedPareto(1.2, 5.0, 180.0);
    max_cost_submitted = std::max(max_cost_submitted, cost);
    workload::Query query = MakeOlapQuery(
        static_cast<uint64_t>(i + 1),
        static_cast<int>(rng.UniformInt(1, 2)), cost);
    double at = rng.Uniform(0.0, 10.0);
    simulator.ScheduleAt(at, [&interceptor, &completed, query] {
      interceptor.Intercept(query,
                            [&completed](const workload::QueryRecord&) {
                              ++completed;
                            });
    });
  }
  // Invariant probes while the system runs: running cost within limit
  // plus at most one min-one exception.
  for (double t = 0.5; t < 40.0; t += 0.5) {
    simulator.ScheduleAt(t, [&] {
      EXPECT_LE(interceptor.running_cost(1), kLimit1 + 180.0 + 1e-9);
      EXPECT_LE(interceptor.running_cost(2), kLimit2 + 180.0 + 1e-9);
      if (interceptor.running_count(1) > 1) {
        EXPECT_LE(interceptor.running_cost(1), kLimit1 + 1e-9);
      }
      if (interceptor.running_count(2) > 1) {
        EXPECT_LE(interceptor.running_cost(2), kLimit2 + 1e-9);
      }
    });
  }
  simulator.RunToCompletion();
  EXPECT_EQ(completed, queries);
  EXPECT_EQ(dispatcher.TotalQueued(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DispatcherPropertyTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace qsched::sched
