#include <gtest/gtest.h>

#include <sstream>

#include "metrics/period_collector.h"
#include "metrics/trace_writer.h"
#include "metrics/workload_stats.h"
#include "workload/schedule.h"

namespace qsched::metrics {
namespace {

workload::QueryRecord MakeRecord(uint64_t id, int class_id, double cost,
                                 double submit, double start, double end) {
  workload::QueryRecord record;
  record.query_id = id;
  record.class_id = class_id;
  record.client_id = 5;
  record.type = class_id == 3 ? workload::WorkloadType::kOltp
                              : workload::WorkloadType::kOlap;
  record.cost_timerons = cost;
  record.submit_time = submit;
  record.exec_start_time = start;
  record.end_time = end;
  return record;
}

TEST(RecordLogTest, StoresUpToCapacityThenDropsOldest) {
  RecordLog log(3);
  for (uint64_t i = 1; i <= 5; ++i) {
    log.Add(MakeRecord(i, 1, 10.0, 0, 0, 1));
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.dropped(), 2u);
  EXPECT_EQ(log.records().front().query_id, 3u);
  EXPECT_EQ(log.records().back().query_id, 5u);
}

TEST(RecordLogTest, CapacityZeroClampsToOne) {
  RecordLog log(0);
  log.Add(MakeRecord(1, 1, 10.0, 0, 0, 1));
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.dropped(), 0u);
  log.Add(MakeRecord(2, 1, 10.0, 0, 0, 1));
  // Still holds exactly the newest record; the older one was dropped.
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.dropped(), 1u);
  EXPECT_EQ(log.records().back().query_id, 2u);
}

TEST(RecordLogTest, CapacityOneKeepsOnlyNewest) {
  RecordLog log(1);
  for (uint64_t i = 1; i <= 4; ++i) {
    log.Add(MakeRecord(i, 1, 10.0, 0, 0, 1));
    EXPECT_EQ(log.size(), 1u);
    EXPECT_EQ(log.records().back().query_id, i);
  }
  EXPECT_EQ(log.dropped(), 3u);
}

TEST(RecordLogTest, SinkAdaptorFeedsLog) {
  RecordLog log(10);
  auto sink = log.Sink();
  sink(MakeRecord(1, 1, 10.0, 0, 0, 1));
  EXPECT_EQ(log.size(), 1u);
}

TEST(TraceWriterTest, CsvHasHeaderAndRows) {
  RecordLog log(10);
  log.Add(MakeRecord(1, 1, 1234.5, 0.0, 2.0, 10.0));
  log.Add(MakeRecord(2, 3, 20.0, 1.0, 1.0, 1.2));
  std::ostringstream out;
  WriteQueryRecordsCsv(log, out);
  std::string csv = out.str();
  EXPECT_NE(csv.find("query_id,class_id"), std::string::npos);
  EXPECT_NE(csv.find("1,1,5,OLAP,1234.500"), std::string::npos);
  EXPECT_NE(csv.find("2,3,5,OLTP,20.000"), std::string::npos);
  // Header + 2 rows.
  int lines = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3);
}

TEST(TraceWriterTest, SeriesCsvShape) {
  std::map<int, std::vector<double>> series;
  series[1] = {0.1, 0.2};
  series[3] = {0.5, 0.6};
  std::ostringstream out;
  WriteSeriesCsv(series, "velocity", out);
  std::string csv = out.str();
  EXPECT_NE(csv.find("period,velocity_class1,velocity_class3"),
            std::string::npos);
  EXPECT_NE(csv.find("1,0.100000,0.500000"), std::string::npos);
  EXPECT_NE(csv.find("2,0.200000,0.600000"), std::string::npos);
}

TEST(WorkloadCharacterizerTest, PerClassProfiles) {
  WorkloadCharacterizer characterizer;
  for (int i = 0; i < 100; ++i) {
    characterizer.Add(MakeRecord(static_cast<uint64_t>(i), 1,
                                 1000.0 + i * 10, 0.0, 1.0, 11.0));
  }
  characterizer.Add(MakeRecord(999, 3, 20.0, 0.0, 0.0, 0.2));

  ASSERT_NE(characterizer.Profile(1), nullptr);
  EXPECT_EQ(characterizer.Profile(1)->queries, 100u);
  EXPECT_NEAR(characterizer.Profile(1)->cost.mean(), 1495.0, 1e-9);
  EXPECT_NEAR(characterizer.Profile(1)->exec_seconds.mean(), 10.0, 1e-9);
  EXPECT_EQ(characterizer.Profile(2), nullptr);
  EXPECT_EQ(characterizer.num_classes(), 2u);
}

TEST(WorkloadCharacterizerTest, PercentilesOrdered) {
  WorkloadCharacterizer characterizer;
  for (int i = 1; i <= 1000; ++i) {
    characterizer.Add(MakeRecord(static_cast<uint64_t>(i), 1,
                                 static_cast<double>(i), 0.0, 1.0, 2.0));
  }
  double p50 = characterizer.CostPercentile(1, 0.5);
  double p95 = characterizer.CostPercentile(1, 0.95);
  EXPECT_GT(p95, p50);
  EXPECT_NEAR(p50, 500.0, 120.0);  // log-bucketed approximation
  EXPECT_DOUBLE_EQ(characterizer.CostPercentile(9, 0.5), 0.0);
}

TEST(PeriodCollectorCancelTest, CancelledRecordsExcludedFromMeans) {
  workload::WorkloadSchedule schedule(10.0, {1});
  schedule.AddPeriod({1});
  PeriodCollector collector(&schedule);
  workload::QueryRecord ok = MakeRecord(1, 1, 100.0, 0.0, 1.0, 3.0);
  collector.Add(ok);
  workload::QueryRecord cancelled = MakeRecord(2, 1, 100.0, 0.0, 5.0, 5.0);
  cancelled.cancelled = true;
  collector.Add(cancelled);
  const PeriodClassStats& cell = collector.Get(0, 1);
  EXPECT_EQ(cell.completed, 1);
  EXPECT_EQ(cell.cancelled, 1);
  EXPECT_NEAR(cell.MeanResponse(), 3.0, 1e-12);
  EXPECT_EQ(collector.Overall(1).cancelled, 1);
}

TEST(WorkloadCharacterizerTest, SummaryPrints) {
  WorkloadCharacterizer characterizer;
  characterizer.Add(MakeRecord(1, 1, 500.0, 0.0, 1.0, 3.0));
  std::ostringstream out;
  characterizer.PrintSummary(out);
  EXPECT_NE(out.str().find("class"), std::string::npos);
  EXPECT_NE(out.str().find("    1"), std::string::npos);
}

}  // namespace
}  // namespace qsched::metrics
