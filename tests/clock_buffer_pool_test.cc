#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/buffer_pool.h"
#include "engine/clock_buffer_pool.h"

namespace qsched::engine {
namespace {

TEST(ClockBufferPoolTest, ColdAccessesMiss) {
  ClockBufferPool pool(1024, 32);
  double missed = pool.Access(1, 0.0, 320.0);
  EXPECT_DOUBLE_EQ(missed, 320.0);
  EXPECT_EQ(pool.logical_pages(), 320u);
  EXPECT_EQ(pool.physical_pages(), 320u);
}

TEST(ClockBufferPoolTest, RepeatAccessesHitWhenResident) {
  ClockBufferPool pool(1024, 32);
  pool.Access(1, 0.0, 320.0);
  double missed = pool.Access(1, 0.0, 320.0);
  EXPECT_DOUBLE_EQ(missed, 0.0);
  EXPECT_NEAR(pool.HitRatio(), 0.5, 1e-9);
}

TEST(ClockBufferPoolTest, DistinctObjectsDoNotAlias) {
  ClockBufferPool pool(4096, 32);
  pool.Access(1, 0.0, 128.0);
  double missed = pool.Access(2, 0.0, 128.0);
  EXPECT_DOUBLE_EQ(missed, 128.0);
}

TEST(ClockBufferPoolTest, ScanLargerThanPoolThrashes) {
  ClockBufferPool pool(1024, 32);  // 32 frames
  // Two passes over 10x the pool: CLOCK cannot keep any of it.
  pool.Access(1, 0.0, 10240.0);
  double missed = pool.Access(1, 0.0, 10240.0);
  EXPECT_GT(missed, 10240.0 * 0.9);
  EXPECT_LT(pool.HitRatio(), 0.1);
}

TEST(ClockBufferPoolTest, HotSetSurvivesScanPressureViaSecondChance) {
  ClockBufferPool pool(2048, 32);  // 64 frames
  // Establish a small hot set and keep touching it between scan bursts.
  for (int round = 0; round < 30; ++round) {
    pool.Access(7, 0.0, 128.0);           // hot: 4 extents
    pool.Access(9, round * 512.0, 512.0);  // cold scan sweeping forward
    pool.Access(7, 0.0, 128.0);           // re-reference -> second chance
  }
  // The hot set should be hitting by now.
  double missed = pool.Access(7, 0.0, 128.0);
  EXPECT_DOUBLE_EQ(missed, 0.0);
}

TEST(ClockBufferPoolTest, ResidencyBoundedByCapacity) {
  ClockBufferPool pool(1024, 32);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    pool.Access(static_cast<uint64_t>(rng.UniformInt(1, 5)),
                rng.Uniform(0.0, 100000.0), rng.Uniform(1.0, 200.0));
  }
  EXPECT_LE(pool.resident_extents(), 1024u / 32u);
}

TEST(ClockBufferPoolTest, EmptyAccessIsNoop) {
  ClockBufferPool pool(1024, 32);
  EXPECT_DOUBLE_EQ(pool.Access(1, 0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(pool.HitRatio(), 1.0);
}

TEST(ClockBufferPoolTest, SteadyStateAgreesWithAnalyticModel) {
  // The analytic BufferPool prices a hot working set that fits as
  // ~max-hit; CLOCK should agree once warm.
  ClockBufferPool clock_pool(16000, 32);
  Rng rng(11);
  const double kHotPages = 8000.0;  // fits in the pool
  for (int i = 0; i < 5000; ++i) {
    double start = rng.Uniform(0.0, kHotPages - 64.0);
    clock_pool.Access(1, start, 32.0);
  }
  // After warmup, hits dominate.
  EXPECT_GT(clock_pool.HitRatio(), 0.85);
}

}  // namespace
}  // namespace qsched::engine
