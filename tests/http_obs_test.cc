// The embedded observability HTTP server: request/response behavior
// (routing, errors, HEAD), the /metrics and /varz exposition handlers,
// gateway /healthz lifecycle, concurrent scrapes (regression for the
// accept-vs-poll indexing bug), and Client::Stats() parity against
// /varz over a live network front-end. Runs in the TSan and ASan gates
// (see tests/CMakeLists.txt) — the server thread races scraper threads
// by design.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net/server.h"
#include "obs/http_server.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "rt/gateway.h"
#include "rt/runtime.h"
#include "scheduler/service_class.h"
#include "workload/client.h"
#include "workload/tpcc_workload.h"

namespace qsched::obs {
namespace {

/// Minimal blocking HTTP request: connect, send one request line, read
/// to EOF (the server is HTTP/1.0 close-after-response). Returns the
/// raw response (status line + headers + body); empty on any failure.
std::string HttpFetch(uint16_t port, const std::string& path,
                      const std::string& method = "GET") {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close(fd);
    return "";
  }
  std::string request = method + " " + path + " HTTP/1.0\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = write(fd, request.data() + sent, request.size() - sent);
    if (n <= 0) {
      close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

std::string BodyOf(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

/// Extracts the numeric value of `"key": N` from the /varz JSON
/// (integer-valued metrics only); -1 when the key is absent.
long long VarzValue(const std::string& json, const std::string& key) {
  std::string needle = "\"" + key + "\": ";
  size_t pos = json.find(needle);
  if (pos == std::string::npos) return -1;
  return std::atoll(json.c_str() + pos + needle.size());
}

TEST(HttpObsTest, RoutesRequestsAndReportsErrors) {
  HttpServer server(HttpServerOptions{});  // ephemeral port
  server.AddHandler("/ping", [] {
    return HttpResponse{200, "text/plain; charset=utf-8", "pong\n"};
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  std::string ok = HttpFetch(server.port(), "/ping");
  EXPECT_NE(ok.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(ok.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_EQ(BodyOf(ok), "pong\n");

  // Query strings are stripped before routing.
  EXPECT_EQ(BodyOf(HttpFetch(server.port(), "/ping?verbose=1")), "pong\n");

  // HEAD: true Content-Length, empty body.
  std::string head = HttpFetch(server.port(), "/ping", "HEAD");
  EXPECT_NE(head.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(head.find("Content-Length: 5"), std::string::npos);
  EXPECT_EQ(BodyOf(head), "");

  // Unknown path: 404 listing the registered paths.
  std::string missing = HttpFetch(server.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos);
  EXPECT_NE(BodyOf(missing).find("/ping"), std::string::npos);

  // Non-GET method: 405.
  std::string post = HttpFetch(server.port(), "/ping", "POST");
  EXPECT_NE(post.find("HTTP/1.0 405"), std::string::npos);

  EXPECT_GE(server.requests_served(), 5u);
  EXPECT_GE(server.requests_failed(), 2u);
  server.Stop();
}

TEST(HttpObsTest, MetricsAndVarzExposition) {
  Registry registry;
  registry.GetCounter("qsched_demo_total")->Inc(3);
  registry.GetGauge("qsched_demo_depth", "class=\"1\"")->Set(4.5);
  Histogram* hist = registry.GetHistogram("qsched_demo_seconds");
  hist->Record(0.010);
  hist->Record(0.020);
  registry.AddAlias("qsched_demo_old_total", "qsched_demo_total");

  HttpServer server(HttpServerOptions{});
  InstallRegistryHandlers(&server, &registry);
  ASSERT_TRUE(server.Start().ok());

  std::string metrics = HttpFetch(server.port(), "/metrics");
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  std::string exposition = BodyOf(metrics);
  EXPECT_NE(exposition.find("# TYPE qsched_demo_total counter"),
            std::string::npos);
  EXPECT_NE(exposition.find("qsched_demo_total 3"), std::string::npos);
  EXPECT_NE(exposition.find("qsched_demo_depth{class=\"1\"} 4.5"),
            std::string::npos);
  EXPECT_NE(exposition.find("qsched_demo_seconds_count 2"),
            std::string::npos);
  // The deprecated alias is a full extra family, flagged as such.
  EXPECT_NE(exposition.find("# HELP qsched_demo_old_total Deprecated "
                            "alias for qsched_demo_total."),
            std::string::npos);
  EXPECT_NE(exposition.find("qsched_demo_old_total 3"), std::string::npos);

  std::string varz = HttpFetch(server.port(), "/varz");
  EXPECT_NE(varz.find("Content-Type: application/json"),
            std::string::npos);
  std::string json = BodyOf(varz);
  EXPECT_EQ(VarzValue(json, "qsched_demo_total"), 3);
  EXPECT_NE(json.find("\"qsched_demo_seconds\": {\"count\":2"),
            std::string::npos);
  EXPECT_NE(
      json.find("\"qsched_demo_old_total\": \"qsched_demo_total\""),
      std::string::npos);
  server.Stop();
}

TEST(HttpObsTest, HealthHandlerFollowsGatewayLifecycle) {
  obs::Telemetry telemetry;
  rt::RuntimeOptions options;
  options.time_scale = 120.0;
  options.horizon_model_seconds = 7200.0;
  options.gateway.workers = 1;
  options.telemetry = &telemetry;
  rt::Runtime runtime(sched::MakePaperClasses(), options);
  runtime.Start();

  HttpServer server(HttpServerOptions{});
  InstallHealthHandler(&server, [&runtime] {
    return std::string(
        rt::GatewayHealthToString(runtime.gateway().health()));
  });
  ASSERT_TRUE(server.Start().ok());

  std::string live = HttpFetch(server.port(), "/healthz");
  EXPECT_NE(live.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_EQ(BodyOf(live), "accepting\n");

  // Shutdown closes intake and drains; with nothing in flight the
  // gateway lands directly on stopped, served as 503 (not ready).
  runtime.Shutdown();
  std::string stopped = HttpFetch(server.port(), "/healthz");
  EXPECT_NE(stopped.find("HTTP/1.0 503"), std::string::npos);
  EXPECT_EQ(BodyOf(stopped), "stopped\n");
  server.Stop();
}

// Regression for the poll-loop indexing bug: connections accepted in
// the same poll round as in-flight reads must not be attributed stale
// revents (which intermittently produced empty responses). Hammer the
// server from several threads; every response must arrive complete.
TEST(HttpObsTest, ConcurrentScrapesAllGetFullResponses) {
  std::string body(4096, 'x');
  body += "\nEND\n";
  HttpServer server(HttpServerOptions{});
  server.AddHandler("/blob", [body] {
    return HttpResponse{200, "text/plain; charset=utf-8", body};
  });
  ASSERT_TRUE(server.Start().ok());

  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 25;
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        std::string response = HttpFetch(server.port(), "/blob");
        if (response.find("HTTP/1.0 200") == std::string::npos ||
            BodyOf(response) != body) {
          bad.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GE(server.requests_served(),
            static_cast<uint64_t>(kThreads * kRequestsPerThread));
  server.Stop();
}

// STATS_REPLY and GET /varz are two views of the same gateway
// accounting: after all completions have been delivered they must agree
// exactly on accepted / admitted / completed / rejected.
TEST(HttpObsTest, WireStatsMatchVarzCounters) {
  obs::Telemetry telemetry;
  rt::RuntimeOptions options;
  options.time_scale = 120.0;
  options.horizon_model_seconds = 7200.0;
  options.seed = 17;
  options.gateway.queue_capacity = 4096;
  options.gateway.workers = 2;
  options.telemetry = &telemetry;
  rt::Runtime runtime(sched::MakePaperClasses(), options);
  runtime.Start();

  net::Server net_server(&runtime.gateway(), net::ServerOptions{},
                         &telemetry);
  ASSERT_TRUE(net_server.Start().ok());
  HttpServer http(HttpServerOptions{});
  InstallRegistryHandlers(&http, &telemetry.registry);
  ASSERT_TRUE(http.Start().ok());

  Result<std::unique_ptr<net::Client>> connected =
      net::Client::Connect("127.0.0.1", net_server.port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  std::unique_ptr<net::Client> client = std::move(connected).ValueOrDie();

  workload::TpccWorkload oltp(workload::TpccWorkloadParams{}, /*seed=*/8);
  constexpr int kQueries = 12;
  for (int i = 0; i < kQueries; ++i) {
    workload::Query query = oltp.Next();
    query.class_id = 3;
    query.client_id = i;
    Result<net::Client::SubmitResult> verdict = client->Submit(query);
    ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
    ASSERT_TRUE(verdict.ValueOrDie().accepted);
  }
  for (int i = 0; i < kQueries; ++i) {
    ASSERT_TRUE(client->NextCompletion().ok());
  }

  Result<net::WireStats> stats_result = client->Stats();
  ASSERT_TRUE(stats_result.ok()) << stats_result.status().ToString();
  net::WireStats stats = stats_result.ValueOrDie();
  EXPECT_EQ(stats.accepted, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(stats.admitted, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kQueries));

  std::string json = BodyOf(HttpFetch(http.port(), "/varz"));
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(VarzValue(json, "qsched_rt_accepted_total"),
            static_cast<long long>(stats.accepted));
  EXPECT_EQ(VarzValue(json, "qsched_rt_completed_total"),
            static_cast<long long>(stats.completed));
  EXPECT_EQ(VarzValue(json, "qsched_rt_rejected_total"),
            static_cast<long long>(stats.rejected_queue_full +
                                   stats.rejected_shutting_down));

  ASSERT_TRUE(client->Drain().ok());
  http.Stop();
  net_server.Stop();
  runtime.Shutdown();
}

}  // namespace
}  // namespace qsched::obs
