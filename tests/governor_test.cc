#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/execution_engine.h"
#include "qp/governor.h"
#include "qp/interceptor.h"
#include "sim/simulator.h"

namespace qsched::qp {
namespace {

workload::Query MakeQuery(uint64_t id, double cost) {
  workload::Query query;
  query.id = id;
  query.class_id = 1;
  query.type = workload::WorkloadType::kOlap;
  query.cost_timerons = cost;
  query.job.query_id = id;
  query.job.cpu_seconds = 0.05;
  query.job.logical_pages = 200.0;
  query.job.hit_ratio = 0.5;
  return query;
}

class GovernorTest : public ::testing::Test {
 protected:
  GovernorTest()
      : engine_(&simulator_, engine::EngineConfig(), Rng(1)),
        interceptor_(&simulator_, &engine_, InterceptorConfig()) {}

  sim::Simulator simulator_;
  engine::ExecutionEngine engine_;
  Interceptor interceptor_;
};

TEST_F(GovernorTest, CancelsOverdueQueuedQueries) {
  Governor::Options options;
  options.max_queue_seconds = 100.0;
  Governor governor(&simulator_, &interceptor_, options);

  int cancelled_completions = 0;
  // Nothing ever releases these queries; they age in the queue.
  interceptor_.Intercept(MakeQuery(1, 50.0),
                         [&](const workload::QueryRecord& record) {
                           EXPECT_TRUE(record.cancelled);
                           ++cancelled_completions;
                         });
  interceptor_.Intercept(MakeQuery(2, 50.0),
                         [&](const workload::QueryRecord& record) {
                           EXPECT_TRUE(record.cancelled);
                           ++cancelled_completions;
                         });
  simulator_.RunUntil(50.0);
  EXPECT_EQ(governor.SweepOnce(), 0);  // not overdue yet
  simulator_.RunUntil(150.0);
  EXPECT_EQ(governor.SweepOnce(), 2);
  EXPECT_EQ(cancelled_completions, 2);
  EXPECT_EQ(governor.total_cancelled(), 2u);
  EXPECT_EQ(interceptor_.queued_count(1), 0);
}

TEST_F(GovernorTest, LeavesRunningQueriesAlone) {
  Governor::Options options;
  options.max_queue_seconds = 0.01;
  Governor governor(&simulator_, &interceptor_, options);
  bool ran = false;
  interceptor_.set_on_arrived([&](const QueryInfoRecord& record) {
    interceptor_.Release(record.query_id);
  });
  interceptor_.Intercept(MakeQuery(3, 50.0),
                         [&](const workload::QueryRecord& record) {
                           EXPECT_FALSE(record.cancelled);
                           ran = true;
                         });
  simulator_.RunUntil(0.4);
  EXPECT_EQ(governor.SweepOnce(), 0);
  simulator_.RunToCompletion();
  EXPECT_TRUE(ran);
}

TEST_F(GovernorTest, PeriodicSweepsFire) {
  Governor::Options options;
  options.max_queue_seconds = 10.0;
  options.sweep_interval_seconds = 20.0;
  Governor governor(&simulator_, &interceptor_, options);
  governor.Start(100.0);
  interceptor_.Intercept(MakeQuery(4, 50.0),
                         [](const workload::QueryRecord&) {});
  simulator_.RunUntil(100.0);
  EXPECT_EQ(governor.total_cancelled(), 1u);
}

}  // namespace
}  // namespace qsched::qp
