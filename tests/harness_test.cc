#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "harness/experiment.h"
#include "harness/parallel.h"
#include "harness/replication.h"
#include "harness/report.h"
#include "metrics/period_collector.h"
#include "obs/telemetry.h"

namespace qsched::harness {
namespace {

workload::QueryRecord MakeRecord(int class_id, double end_time,
                                 double velocity) {
  workload::QueryRecord record;
  record.class_id = class_id;
  record.submit_time = 0.0;
  record.end_time = end_time;
  record.exec_start_time = end_time - velocity * end_time;
  return record;
}

TEST(PeriodCollectorTest, BucketsByCompletionPeriod) {
  workload::WorkloadSchedule schedule(10.0, {1});
  schedule.AddPeriod({1});
  schedule.AddPeriod({1});
  metrics::PeriodCollector collector(&schedule);
  collector.Add(MakeRecord(1, 5.0, 0.5));
  collector.Add(MakeRecord(1, 15.0, 1.0));
  collector.Add(MakeRecord(1, 99.0, 1.0));  // clamps to last period
  EXPECT_EQ(collector.Get(0, 1).completed, 1);
  EXPECT_EQ(collector.Get(1, 1).completed, 2);
  EXPECT_EQ(collector.Get(0, 2).completed, 0);
  EXPECT_EQ(collector.total_records(), 3u);
  EXPECT_EQ(collector.Overall(1).completed, 3);
}

TEST(PeriodCollectorTest, SeriesAndGoals) {
  workload::WorkloadSchedule schedule(10.0, {1});
  schedule.AddPeriod({1});
  schedule.AddPeriod({1});
  metrics::PeriodCollector collector(&schedule);
  collector.Add(MakeRecord(1, 5.0, 0.3));
  collector.Add(MakeRecord(1, 15.0, 0.9));
  auto velocity = collector.VelocitySeries(1);
  ASSERT_EQ(velocity.size(), 2u);
  EXPECT_NEAR(velocity[0], 0.3, 1e-9);
  EXPECT_NEAR(velocity[1], 0.9, 1e-9);

  sched::ServiceClassSpec spec;
  spec.class_id = 1;
  spec.goal_kind = sched::GoalKind::kVelocityFloor;
  spec.goal_value = 0.5;
  EXPECT_EQ(collector.PeriodsMeetingGoal(spec), 1);
}

TEST(PeriodCollectorTest, EmptyPeriodsNotCountedAsMet) {
  workload::WorkloadSchedule schedule(10.0, {1});
  schedule.AddPeriod({1});
  schedule.AddPeriod({1});
  metrics::PeriodCollector collector(&schedule);
  collector.Add(MakeRecord(1, 5.0, 0.9));
  sched::ServiceClassSpec spec;
  spec.class_id = 1;
  spec.goal_kind = sched::GoalKind::kVelocityFloor;
  spec.goal_value = 0.5;
  EXPECT_EQ(collector.PeriodsMeetingGoal(spec), 1);  // period 2 empty
}

TEST(HarnessTest, ValidateAcceptsDefaults) {
  ExperimentConfig config;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(HarnessTest, ValidateRejectsBadValues) {
  {
    ExperimentConfig config;
    config.period_seconds = 0.0;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    ExperimentConfig config;
    config.system_cost_limit = -1.0;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    ExperimentConfig config;
    config.engine.num_disks = 0;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    ExperimentConfig config;
    config.tpch.scale_factor = 0.0;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    ExperimentConfig config;
    config.qp_olap_limit_fraction = 1.5;
    EXPECT_FALSE(config.Validate().ok());
  }
}

TEST(HarnessTest, ValidateCatchesMinShareOverflow) {
  ExperimentConfig config;
  sched::ServiceClassSet classes;
  for (int id = 1; id <= 3; ++id) {
    sched::ServiceClassSpec spec;
    spec.class_id = id;
    spec.min_share = 0.5;  // 1.5 total
    classes.Add(spec);
  }
  config.classes = classes;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(HarnessTest, ValidateCatchesScheduleClassMismatch) {
  ExperimentConfig config;
  workload::WorkloadSchedule schedule(100.0, {1, 2});  // class 3 missing
  schedule.AddPeriod({1, 1});
  config.schedule = schedule;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(HarnessTest, ControllerKindNames) {
  EXPECT_STREQ(ControllerKindToString(ControllerKind::kNoControl),
               "no-control");
  EXPECT_STREQ(ControllerKindToString(ControllerKind::kQueryScheduler),
               "query-scheduler");
}

TEST(HarnessTest, QpThresholdsOrdered) {
  ExperimentConfig config;
  double large = 0.0, medium = 0.0;
  DeriveQpThresholds(config, &large, &medium);
  EXPECT_GT(large, medium);
  EXPECT_GT(medium, 0.0);
}

ExperimentConfig ShortConfig() {
  ExperimentConfig config;
  // Two short periods so the smoke tests run in well under a second of
  // wall time.
  workload::WorkloadSchedule schedule(120.0, {1, 2, 3});
  schedule.AddPeriod({2, 2, 10});
  schedule.AddPeriod({3, 2, 15});
  config.schedule = schedule;
  return config;
}

class ControllerSmokeTest
    : public ::testing::TestWithParam<ControllerKind> {};

TEST_P(ControllerSmokeTest, RunsAndProducesSaneSeries) {
  ExperimentConfig config = ShortConfig();
  ExperimentResult result = RunExperiment(config, GetParam());
  EXPECT_EQ(result.num_periods, 2);
  for (int cls : {1, 2, 3}) {
    ASSERT_EQ(result.velocity_series.at(cls).size(), 2u);
    for (double v : result.velocity_series.at(cls)) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
    for (double r : result.response_series.at(cls)) {
      EXPECT_GE(r, 0.0);
    }
  }
  // OLTP completes plenty of transactions; OLAP completes at least a few.
  EXPECT_GT(result.overall_completed.at(3), 100);
  EXPECT_GT(result.overall_completed.at(1) + result.overall_completed.at(2),
            0);
  EXPECT_GT(result.cpu_utilization, 0.0);
  EXPECT_LE(result.cpu_utilization, 1.0);
  EXPECT_GT(result.disk_utilization, 0.0);
  EXPECT_LE(result.disk_utilization, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Controllers, ControllerSmokeTest,
    ::testing::Values(ControllerKind::kNoControl,
                      ControllerKind::kQpNoPriority,
                      ControllerKind::kQpPriority,
                      ControllerKind::kQueryScheduler,
                      ControllerKind::kMpl,
                      ControllerKind::kQsDirectOltp));

TEST(HarnessTest, DeterministicForSeed) {
  ExperimentConfig config = ShortConfig();
  ExperimentResult a = RunExperiment(config, ControllerKind::kNoControl);
  ExperimentResult b = RunExperiment(config, ControllerKind::kNoControl);
  EXPECT_EQ(a.overall_completed.at(3), b.overall_completed.at(3));
  EXPECT_EQ(a.velocity_series.at(1), b.velocity_series.at(1));
  EXPECT_EQ(a.response_series.at(3), b.response_series.at(3));
}

// Golden figure series captured on the pre-rewrite simulator
// (std::priority_queue + lazy cancellation), printed with %.17g so the
// literals round-trip exactly. The DES core rewrite must keep event
// ordering — and therefore every figure — bit-for-bit identical.
TEST(HarnessTest, GoldenSeriesMatchPreRewriteSimulator) {
  ExperimentConfig config = ShortConfig();
  ExperimentResult result =
      RunExperiment(config, ControllerKind::kQueryScheduler);
  const std::vector<double> golden_v1 = {0.8303552950287697,
                                         0.89639846496452358};
  const std::vector<double> golden_v2 = {0.71103131373012074,
                                         0.91370319340812778};
  const std::vector<double> golden_r3 = {0.1336380355124675,
                                         0.23120148509097962};
  EXPECT_EQ(result.velocity_series.at(1), golden_v1);
  EXPECT_EQ(result.velocity_series.at(2), golden_v2);
  EXPECT_EQ(result.response_series.at(3), golden_r3);
  EXPECT_EQ(result.overall_completed.at(1), 7);
  EXPECT_EQ(result.overall_completed.at(2), 6);
  EXPECT_EQ(result.overall_completed.at(3), 16328);
  EXPECT_EQ(result.total_completed, 16341u);
  EXPECT_EQ(result.oltp_model_slope, 7.5000000000000002e-07);
}

TEST(ParallelForTest, CoversAllIndicesAcrossThreads) {
  std::vector<int> hits(257, 0);
  std::atomic<int> calls{0};
  ParallelFor(257, 4, [&](int i) {
    hits[static_cast<size_t>(i)] += 1;
    calls.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(calls.load(), 257);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, SerialJobsRunInline) {
  std::vector<int> order;
  ParallelFor(5, 1, [&](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, PropagatesFirstException) {
  EXPECT_THROW(
      ParallelFor(8, 4,
                  [](int i) {
                    if (i % 2 == 1) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(ThreadPoolTest, WaitDrainsAllSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 100);
  // The pool stays usable after Wait.
  pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  pool.Wait();
  EXPECT_EQ(done.load(), 101);
}

// The determinism contract of the parallel runner: replica fan-out
// across worker threads merges in seed order, so every aggregate is
// byte-identical to the serial run.
TEST(ParallelReplicationTest, JobsDoNotChangeResults) {
  ExperimentConfig config = ShortConfig();
  ReplicationOptions serial;
  serial.jobs = 1;
  ReplicationOptions parallel;
  parallel.jobs = 4;
  ReplicatedResult a = RunReplicated(
      config, ControllerKind::kQueryScheduler, 8, serial);
  ReplicatedResult b = RunReplicated(
      config, ControllerKind::kQueryScheduler, 8, parallel);

  ASSERT_EQ(a.replications, b.replications);
  ASSERT_EQ(a.num_periods, b.num_periods);
  for (int cls : {1, 2, 3}) {
    EXPECT_EQ(a.velocity.at(cls).mean, b.velocity.at(cls).mean);
    EXPECT_EQ(a.velocity.at(cls).stddev, b.velocity.at(cls).stddev);
    EXPECT_EQ(a.response.at(cls).mean, b.response.at(cls).mean);
    EXPECT_EQ(a.response.at(cls).stddev, b.response.at(cls).stddev);
    EXPECT_EQ(a.goal_periods_mean.at(cls), b.goal_periods_mean.at(cls));
    EXPECT_EQ(a.goal_periods_stddev.at(cls),
              b.goal_periods_stddev.at(cls));
  }
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (size_t r = 0; r < a.runs.size(); ++r) {
    EXPECT_EQ(a.runs[r].velocity_series, b.runs[r].velocity_series);
    EXPECT_EQ(a.runs[r].response_series, b.runs[r].response_series);
    EXPECT_EQ(a.runs[r].overall_completed, b.runs[r].overall_completed);
    EXPECT_EQ(a.runs[r].sim_events_processed,
              b.runs[r].sim_events_processed);
  }
}

TEST(ParallelReplicationTest, RecordsPerReplicaGauges) {
  ExperimentConfig config = ShortConfig();
  obs::Telemetry telemetry;
  ReplicationOptions options;
  options.jobs = 2;
  options.telemetry = &telemetry;
  RunReplicated(config, ControllerKind::kNoControl, 3, options);
  bool found_wall = false;
  bool found_eps = false;
  for (const obs::MetricSnapshot& snapshot :
       telemetry.registry.Snapshot()) {
    if (snapshot.name == "qsched_replica_wall_seconds" &&
        snapshot.labels == "replica=\"2\"") {
      found_wall = true;
      EXPECT_GT(snapshot.value, 0.0);
    }
    if (snapshot.name == "qsched_replica_events_per_second" &&
        snapshot.labels == "replica=\"0\"") {
      found_eps = true;
      EXPECT_GT(snapshot.value, 0.0);
    }
  }
  EXPECT_TRUE(found_wall);
  EXPECT_TRUE(found_eps);
}

TEST(HarnessTest, DifferentSeedsDiffer) {
  ExperimentConfig config = ShortConfig();
  ExperimentResult a = RunExperiment(config, ControllerKind::kNoControl);
  config.seed = 4242;
  ExperimentResult b = RunExperiment(config, ControllerKind::kNoControl);
  EXPECT_NE(a.overall_completed.at(3), b.overall_completed.at(3));
}

TEST(HarnessTest, QuerySchedulerRecordsLimitHistory) {
  ExperimentConfig config = ShortConfig();
  ExperimentResult result =
      RunExperiment(config, ControllerKind::kQueryScheduler);
  ASSERT_EQ(result.limit_history.size(), 3u);
  EXPECT_GT(result.limit_history.at(1).size(), 0u);
  ASSERT_EQ(result.period_mean_limits.at(3).size(), 2u);
  // Limits sum approximately to the system cost limit per decision.
  const auto& h1 = result.limit_history.at(1);
  const auto& h2 = result.limit_history.at(2);
  const auto& h3 = result.limit_history.at(3);
  for (size_t i = 0; i < h1.size(); ++i) {
    double total =
        h1.at(i).value + h2.at(i).value + h3.at(i).value;
    EXPECT_NEAR(total, config.system_cost_limit, 1.0);
  }
  EXPECT_GT(result.oltp_model_slope, 0.0);
}

TEST(HarnessTest, ReportSummaryIncludesTelemetryGauges) {
  ExperimentConfig config = ShortConfig();
  obs::Telemetry telemetry;
  config.telemetry = &telemetry;
  ExperimentResult result =
      RunExperiment(config, ControllerKind::kQueryScheduler);
  ASSERT_FALSE(result.metric_snapshot.empty());

  ReportOptions options;
  options.per_period = false;
  options.cost_limits = false;
  options.summary = true;
  std::ostringstream out;
  PrintPerformanceReport(result, sched::MakePaperClasses(), options, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("gauges:"), std::string::npos) << text;
  EXPECT_NE(text.find("qsched_engine_cpu_utilization"), std::string::npos)
      << text;
  EXPECT_NE(
      text.find("qsched_cost_limit_timerons{class=\"3\"}"),
      std::string::npos)
      << text;
}

TEST(HarnessTest, MeasureOltpResponseIncreasesWithOlapLimit) {
  ExperimentConfig config;
  double low = MeasureOltpResponse(config, 20, 6, 60000.0, 360.0);
  double high = MeasureOltpResponse(config, 20, 6, 350000.0, 360.0);
  EXPECT_GT(low, 0.0);
  EXPECT_GT(high, low);
}

TEST(HarnessTest, OlapThroughputGrowsWithLimit) {
  ExperimentConfig config;
  double tput_low = 0.0, tput_high = 0.0;
  MeasureOltpResponse(config, 0, 12, 60000.0, 360.0, &tput_low);
  MeasureOltpResponse(config, 0, 12, 300000.0, 360.0, &tput_high);
  EXPECT_GT(tput_high, tput_low);
}

}  // namespace
}  // namespace qsched::harness
