#include <gtest/gtest.h>

#include "common/flags.h"

namespace qsched {
namespace {

FlagParser Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  FlagParser parser;
  EXPECT_TRUE(
      parser.Parse(static_cast<int>(args.size()), args.data()).ok());
  return parser;
}

TEST(FlagParserTest, EqualsSyntax) {
  FlagParser flags = Parse({"--seed=42", "--name=abc"});
  EXPECT_EQ(flags.GetInt("seed", 0), 42);
  EXPECT_EQ(flags.GetString("name", ""), "abc");
}

TEST(FlagParserTest, SpaceSyntax) {
  FlagParser flags = Parse({"--seed", "7", "--rate", "2.5"});
  EXPECT_EQ(flags.GetInt("seed", 0), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 0.0), 2.5);
}

TEST(FlagParserTest, BooleanStyles) {
  FlagParser flags =
      Parse({"--verbose", "--on=true", "--off=false", "--one=1"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.GetBool("on", false));
  EXPECT_FALSE(flags.GetBool("off", true));
  EXPECT_TRUE(flags.GetBool("one", false));
  EXPECT_TRUE(flags.GetBool("absent", true));
  EXPECT_FALSE(flags.GetBool("absent", false));
}

TEST(FlagParserTest, SingleDashAccepted) {
  FlagParser flags = Parse({"-x=3"});
  EXPECT_EQ(flags.GetInt("x", 0), 3);
}

TEST(FlagParserTest, PositionalAndDoubleDash) {
  FlagParser flags = Parse({"input.txt", "--k=1", "--", "--not-a-flag"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "--not-a-flag");
  EXPECT_TRUE(flags.Has("k"));
}

TEST(FlagParserTest, MalformedNumberFallsBack) {
  FlagParser flags = Parse({"--seed=abc", "--rate=1.5x"});
  EXPECT_EQ(flags.GetInt("seed", 99), 99);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 0.5), 0.5);
}

TEST(FlagParserTest, GetRawDistinguishesAbsent) {
  FlagParser flags = Parse({"--present"});
  EXPECT_TRUE(flags.GetRaw("present").ok());
  EXPECT_EQ(flags.GetRaw("present").ValueOrDie(), "");
  EXPECT_FALSE(flags.GetRaw("absent").ok());
}

TEST(FlagParserTest, TooManyDashesRejected) {
  FlagParser parser;
  const char* args[] = {"prog", "---bad"};
  EXPECT_FALSE(parser.Parse(2, args).ok());
}

}  // namespace
}  // namespace qsched
