#include "rt/mpmc_queue.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

namespace qsched::rt {
namespace {

TEST(MpmcQueueTest, CapacityZeroClampsToOne) {
  MpmcQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.TryPush(1));
  // The single slot is taken: the next non-blocking push fails.
  EXPECT_FALSE(queue.TryPush(2));
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.TryPush(3));
}

TEST(MpmcQueueTest, CapacityOneAlternatesPushPop) {
  MpmcQueue<int> queue(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(queue.TryPush(i));
    EXPECT_FALSE(queue.TryPush(i + 100));
    int out = -1;
    EXPECT_TRUE(queue.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(MpmcQueueTest, TryPushOutcomeDistinguishesFullFromClosed) {
  MpmcQueue<int> queue(1);
  EXPECT_EQ(queue.TryPushOutcome(1), QueuePush::kOk);
  // Full and closed are different rejections: one is transient
  // backpressure, the other is permanent.
  EXPECT_EQ(queue.TryPushOutcome(2), QueuePush::kFull);
  queue.Close();
  EXPECT_EQ(queue.TryPushOutcome(3), QueuePush::kClosed);
  // Closed wins over full: the queue still holds an item.
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_EQ(queue.TryPushOutcome(4), QueuePush::kClosed);
}

TEST(MpmcQueueTest, PushOutcomeBlocksOnFullAndFailsClosed) {
  MpmcQueue<int> queue(1);
  ASSERT_EQ(queue.PushOutcome(1), QueuePush::kOk);
  std::atomic<bool> unblocked{false};
  std::thread producer([&] {
    // Blocks until the consumer below makes room; kOk, never kFull.
    EXPECT_EQ(queue.PushOutcome(2), QueuePush::kOk);
    unblocked.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(unblocked.load());
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  producer.join();
  EXPECT_TRUE(unblocked.load());
  queue.Close();
  EXPECT_EQ(queue.PushOutcome(3), QueuePush::kClosed);
}

TEST(MpmcQueueTest, FifoOrderSingleThreaded) {
  MpmcQueue<int> queue(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(queue.TryPush(i));
  EXPECT_FALSE(queue.TryPush(8));  // full
  for (int i = 0; i < 8; ++i) {
    int out = -1;
    EXPECT_TRUE(queue.Pop(&out));
    EXPECT_EQ(out, i);
  }
  int dummy = 0;
  EXPECT_FALSE(queue.TryPop(&dummy));  // drained
}

TEST(MpmcQueueTest, ProducerBlocksUntilConsumerMakesRoom) {
  MpmcQueue<int> queue(2);
  ASSERT_TRUE(queue.TryPush(1));
  ASSERT_TRUE(queue.TryPush(2));

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    // Full: this Push must block until the consumer pops.
    EXPECT_TRUE(queue.Push(3));
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(pushed.load()) << "Push returned while the queue was full";

  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.size(), 2u);
}

TEST(MpmcQueueTest, CloseWhileFullWakesBlockedProducerAndDrains) {
  MpmcQueue<int> queue(1);
  ASSERT_TRUE(queue.TryPush(7));

  std::atomic<bool> push_result{true};
  std::thread producer([&] {
    // Blocked on the full queue; Close() must wake it with failure.
    push_result.store(queue.Push(8));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  queue.Close();
  producer.join();
  EXPECT_FALSE(push_result.load());

  // Consumers still drain what was accepted before the close...
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 7);
  // ...and only then see end-of-stream.
  EXPECT_FALSE(queue.Pop(&out));
  // Producers fail immediately after close.
  EXPECT_FALSE(queue.TryPush(9));
  EXPECT_FALSE(queue.Push(9));
}

TEST(MpmcQueueTest, CloseWakesBlockedConsumer) {
  MpmcQueue<int> queue(4);
  std::atomic<bool> pop_result{true};
  std::thread consumer([&] {
    int out = 0;
    pop_result.store(queue.Pop(&out));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  queue.Close();
  consumer.join();
  EXPECT_FALSE(pop_result.load());
}

// 8 producers / 4 consumers over a small queue: every pushed value is
// popped exactly once, none invented, none lost. This is the test the
// TSan gate leans on.
TEST(MpmcQueueTest, StressEightProducersFourConsumers) {
  constexpr int kProducers = 8;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  MpmcQueue<uint64_t> queue(64);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        uint64_t value =
            (static_cast<uint64_t>(p) << 32) | static_cast<uint64_t>(i);
        ASSERT_TRUE(queue.Push(value));
      }
    });
  }

  std::mutex seen_mu;
  std::unordered_set<uint64_t> seen;
  std::atomic<uint64_t> popped{0};
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      uint64_t value = 0;
      while (queue.Pop(&value)) {
        popped.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(seen_mu);
        EXPECT_TRUE(seen.insert(value).second)
            << "duplicate value popped: " << value;
      }
    });
  }

  for (std::thread& t : producers) t.join();
  queue.Close();
  for (std::thread& t : consumers) t.join();

  EXPECT_EQ(popped.load(), static_cast<uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(seen.size(), static_cast<size_t>(kProducers) * kPerProducer);
  EXPECT_EQ(queue.size(), 0u);
}

}  // namespace
}  // namespace qsched::rt
