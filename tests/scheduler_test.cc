#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "engine/execution_engine.h"
#include "scheduler/dispatcher.h"
#include "scheduler/monitor.h"
#include "scheduler/perf_models.h"
#include "scheduler/query_scheduler.h"
#include "scheduler/service_class.h"
#include "scheduler/snapshot_monitor.h"
#include "scheduler/solver.h"
#include "scheduler/utility.h"
#include "sim/simulator.h"

namespace qsched::sched {
namespace {

TEST(ServiceClassTest, PaperClasses) {
  ServiceClassSet classes = MakePaperClasses();
  ASSERT_EQ(classes.size(), 3u);
  const ServiceClassSpec* class3 = classes.Find(3);
  ASSERT_NE(class3, nullptr);
  EXPECT_EQ(class3->importance, 3);
  EXPECT_EQ(class3->goal_kind, GoalKind::kAvgResponseCeiling);
  EXPECT_DOUBLE_EQ(class3->goal_value, 0.25);
  EXPECT_EQ(classes.OlapClassIds(), (std::vector<int>{1, 2}));
  EXPECT_EQ(classes.OltpClassIds(), (std::vector<int>{3}));
  EXPECT_EQ(classes.Find(9), nullptr);
}

TEST(ServiceClassTest, DuplicateIdRejected) {
  ServiceClassSet classes;
  ServiceClassSpec spec;
  spec.class_id = 1;
  EXPECT_TRUE(classes.Add(spec).ok());
  EXPECT_EQ(classes.Add(spec).code(), StatusCode::kAlreadyExists);
}

TEST(ServiceClassTest, VelocityGoalRatio) {
  ServiceClassSpec spec;
  spec.goal_kind = GoalKind::kVelocityFloor;
  spec.goal_value = 0.4;
  EXPECT_DOUBLE_EQ(spec.GoalRatio(0.4), 1.0);
  EXPECT_DOUBLE_EQ(spec.GoalRatio(0.2), 0.5);
  EXPECT_DOUBLE_EQ(spec.GoalRatio(0.8), 2.0);
}

TEST(ServiceClassTest, ResponseGoalRatioLinearScale) {
  ServiceClassSpec spec;
  spec.goal_kind = GoalKind::kAvgResponseCeiling;
  spec.goal_value = 0.25;
  // At the goal: ratio exactly 1. Better (lower) response: ratio > 1.
  EXPECT_DOUBLE_EQ(spec.GoalRatio(0.25), 1.0);
  EXPECT_GT(spec.GoalRatio(0.10), 1.0);
  EXPECT_LT(spec.GoalRatio(0.40), 1.0);
  // Linear: every extra goal-multiple of response costs the same ratio.
  double d1 = spec.GoalRatio(0.25) - spec.GoalRatio(0.50);
  double d2 = spec.GoalRatio(0.50) - spec.GoalRatio(0.75);
  EXPECT_NEAR(d1, d2, 1e-12);
  // Floor guards deep violations.
  EXPECT_GE(spec.GoalRatio(100.0), -2.0);
}

TEST(UtilityTest, ContinuousAtKinks) {
  UtilityFunction utility(0.05, 1.25, 0.3, 1.0);
  ServiceClassSpec spec;
  spec.importance = 3;
  spec.goal_kind = GoalKind::kVelocityFloor;
  spec.goal_value = 1.0;
  double eps = 1e-9;
  EXPECT_NEAR(utility.FromGoalRatio(spec, 1.0 - eps),
              utility.FromGoalRatio(spec, 1.0 + eps), 1e-6);
  EXPECT_NEAR(utility.FromGoalRatio(spec, 1.25 - eps),
              utility.FromGoalRatio(spec, 1.25 + eps), 1e-6);
}

TEST(UtilityTest, MonotoneInPerformance) {
  UtilityFunction utility;
  ServiceClassSpec spec;
  spec.importance = 2;
  spec.goal_kind = GoalKind::kVelocityFloor;
  spec.goal_value = 0.5;
  double prev = -1e9;
  for (double v = 0.0; v <= 1.0; v += 0.01) {
    double u = utility.Evaluate(spec, v);
    EXPECT_GE(u, prev);
    prev = u;
  }
}

TEST(UtilityTest, ViolationSlopeScalesWithImportance) {
  UtilityFunction utility;
  ServiceClassSpec low;
  low.importance = 1;
  ServiceClassSpec high;
  high.importance = 3;
  // Marginal utility below goal: u(1) - u(0.9).
  double low_slope =
      utility.FromGoalRatio(low, 1.0) - utility.FromGoalRatio(low, 0.9);
  double high_slope =
      utility.FromGoalRatio(high, 1.0) - utility.FromGoalRatio(high, 0.9);
  // importance^2 scaling: 9x vs 1x.
  EXPECT_NEAR(high_slope / low_slope, 9.0, 1e-6);
}

TEST(UtilityTest, SurplusNearlyWorthless) {
  UtilityFunction utility;
  ServiceClassSpec spec;
  spec.importance = 2;
  double at_margin = utility.FromGoalRatio(spec, 1.25);
  double far_above = utility.FromGoalRatio(spec, 2.5);
  double below = utility.FromGoalRatio(spec, 0.75);
  EXPECT_LT(far_above - at_margin, 0.2 * (at_margin - below));
}

TEST(UtilityTest, SurplusCappedAtFour) {
  UtilityFunction utility;
  ServiceClassSpec spec;
  spec.importance = 1;
  EXPECT_DOUBLE_EQ(utility.FromGoalRatio(spec, 4.0),
                   utility.FromGoalRatio(spec, 10.0));
}

TEST(OlapVelocityModelTest, ProportionalScaling) {
  EXPECT_NEAR(OlapVelocityModel::Predict(0.4, 100.0, 200.0), 0.8, 1e-12);
  EXPECT_NEAR(OlapVelocityModel::Predict(0.4, 100.0, 50.0), 0.2, 1e-12);
  EXPECT_NEAR(OlapVelocityModel::Predict(0.5, 100.0, 100.0), 0.5, 1e-12);
}

TEST(OlapVelocityModelTest, SaturatesAtOne) {
  EXPECT_DOUBLE_EQ(OlapVelocityModel::Predict(0.8, 100.0, 1000.0), 1.0);
}

TEST(OlapVelocityModelTest, DegenerateInputsClamped) {
  EXPECT_GT(OlapVelocityModel::Predict(0.0, 100.0, 200.0), 0.0);
  EXPECT_GE(OlapVelocityModel::Predict(0.5, 0.0, 100.0), 0.0);
  EXPECT_LE(OlapVelocityModel::Predict(0.5, 0.0, 100.0), 1.0);
}

TEST(OltpResponseModelTest, OfflineConstantByDefault) {
  OltpResponseModel model;
  double prior = model.slope();
  EXPECT_GT(prior, 0.0);
  // Updates are ignored unless online estimation is enabled.
  model.Update(0.1, 0.5, 100000.0, 200000.0);
  EXPECT_DOUBLE_EQ(model.slope(), prior);
  EXPECT_EQ(model.updates(), 0);
}

TEST(OltpResponseModelTest, PredictIsLinearInLimitDelta) {
  OltpResponseModel model;
  double s = model.slope();
  EXPECT_NEAR(model.Predict(0.2, 100000.0, 150000.0), 0.2 + s * 50000.0,
              1e-12);
  EXPECT_NEAR(model.Predict(0.2, 100000.0, 50000.0), 0.2 - s * 50000.0,
              1e-12);
  // Never negative.
  EXPECT_GE(model.Predict(0.01, 1000000.0, 0.0), 0.0);
}

TEST(OltpResponseModelTest, OnlineRegressionConvergesOnLinearData) {
  OltpResponseModel::Options options;
  options.online_updates = true;
  options.prior_slope = 1e-7;
  OltpResponseModel model(options);
  const double true_slope = 2.5e-6;
  Rng rng(3);
  double limit = 100000.0;
  double response = 0.2;
  for (int i = 0; i < 200; ++i) {
    double next_limit = rng.Uniform(50000.0, 300000.0);
    double next_response =
        response + true_slope * (next_limit - limit) +
        rng.Normal(0.0, 0.002);
    model.Update(response, next_response, limit, next_limit);
    limit = next_limit;
    response = next_response;
  }
  EXPECT_NEAR(model.slope(), true_slope, 0.4e-6);
  EXPECT_EQ(model.updates(), 200);
}

TEST(OltpResponseModelTest, SlopeClampedToPhysicalSign) {
  OltpResponseModel::Options options;
  options.online_updates = true;
  options.prior_weight = 0.001;
  OltpResponseModel model(options);
  // Feed anti-causal data (response falls when limit rises).
  for (int i = 0; i < 50; ++i) {
    model.Update(0.5, 0.1, 100000.0, 300000.0);
    model.Update(0.1, 0.5, 300000.0, 100000.0);
  }
  EXPECT_GE(model.slope(), options.min_slope);
}

TEST(OltpResponseModelTest, TinyDeltasIgnored) {
  OltpResponseModel::Options options;
  options.online_updates = true;
  OltpResponseModel model(options);
  model.Update(0.1, 0.9, 100000.0, 100000.0);
  EXPECT_EQ(model.updates(), 0);
}

class SolverTest : public ::testing::Test {
 protected:
  SolverTest() : classes_(MakePaperClasses()) {}

  SolverInput MakeInput(double v1, double v2, double t3,
                        double c1 = 100000, double c2 = 100000,
                        double c3 = 100000) {
    SolverInput input;
    input.total_cost_limit = 300000.0;
    input.oltp_model = &model_;
    input.classes = {
        {classes_.Find(1), v1, c1, false},
        {classes_.Find(2), v2, c2, false},
        {classes_.Find(3), t3, c3, false},
    };
    return input;
  }

  ServiceClassSet classes_;
  OltpResponseModel model_;
  PerformanceSolver solver_;
};

TEST_F(SolverTest, LimitsSumToTotalAndRespectMinShares) {
  SchedulingPlan plan = solver_.Solve(MakeInput(0.5, 0.7, 0.2));
  EXPECT_NEAR(plan.Total(), 300000.0, 1.0);
  for (int id : {1, 2, 3}) {
    EXPECT_GE(plan.LimitFor(id), 0.05 * 300000.0 - 1.0) << id;
  }
}

TEST_F(SolverTest, ViolatedOltpPullsResources) {
  // OLTP deeply violating, OLAP classes above goal.
  SchedulingPlan violated = solver_.Solve(MakeInput(0.8, 0.9, 0.45));
  // OLTP comfortably meeting.
  SchedulingPlan met = solver_.Solve(MakeInput(0.8, 0.9, 0.10));
  EXPECT_GT(violated.LimitFor(3), met.LimitFor(3));
  // During violation, OLTP holds the majority of the system.
  EXPECT_GT(violated.LimitFor(3), 150000.0);
}

TEST_F(SolverTest, StarvedOlapClassRecoversWhenOltpComfortable) {
  // Class 1 far below its velocity goal with a tiny limit; OLTP has
  // plenty of headroom.
  SchedulingPlan plan =
      solver_.Solve(MakeInput(0.1, 0.9, 0.08, 20000, 140000, 140000));
  EXPECT_GT(plan.LimitFor(1), 20000.0);
}

TEST_F(SolverTest, MoreImportantOlapClassWinsContention) {
  // Both OLAP classes equally below goal relative to their goals; the
  // importance-2 class should end up with at least as much.
  SchedulingPlan plan =
      solver_.Solve(MakeInput(0.2, 0.3, 0.10, 100000, 100000, 100000));
  EXPECT_GE(plan.LimitFor(2), plan.LimitFor(1) * 0.9);
}

TEST_F(SolverTest, DegenerateInputsSafe) {
  SolverInput empty;
  empty.total_cost_limit = 300000.0;
  SchedulingPlan plan = solver_.Solve(empty);
  EXPECT_EQ(plan.cost_limits.size(), 0u);

  SolverInput zero = MakeInput(0.5, 0.5, 0.2);
  zero.total_cost_limit = 0.0;
  EXPECT_EQ(solver_.Solve(zero).cost_limits.size(), 0u);
}

TEST_F(SolverTest, ChangePenaltyStabilizesFlatUtility) {
  // Everyone comfortably above goal: without a penalty the optimum is a
  // flat plateau; with it, the solver stays near the current plan.
  SolverInput input = MakeInput(0.9, 0.95, 0.05, 90000, 120000, 90000);
  SchedulingPlan plan = solver_.Solve(input);
  EXPECT_NEAR(plan.LimitFor(1), 90000.0, 45000.0);
  EXPECT_NEAR(plan.LimitFor(2), 120000.0, 45000.0);
}

TEST_F(SolverTest, DirectlyControlledOltpUsesOwnLimit) {
  SolverInput input;
  input.total_cost_limit = 300000.0;
  input.oltp_model = &model_;
  input.classes = {
      {classes_.Find(1), 0.9, 100000, false},
      {classes_.Find(2), 0.9, 100000, false},
      {classes_.Find(3), 0.40, 100000, true},  // violating, direct mode
  };
  SchedulingPlan plan = solver_.Solve(input);
  // Direct control: raising the OLTP limit improves it, so it gains.
  EXPECT_GT(plan.LimitFor(3), 100000.0);
}

TEST_F(SolverTest, EvaluateFractionsChecksArity) {
  SolverInput input = MakeInput(0.5, 0.5, 0.2);
  double u = solver_.EvaluateFractions(input, {0.3, 0.3, 0.4});
  EXPECT_TRUE(std::isfinite(u));
}

class SolverSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverSeedSweep, SolutionNeverWorseThanCurrent) {
  Rng rng(GetParam());
  ServiceClassSet classes = MakePaperClasses();
  OltpResponseModel model;
  PerformanceSolver solver;
  for (int trial = 0; trial < 20; ++trial) {
    double c1 = rng.Uniform(15000, 200000);
    double c2 = rng.Uniform(15000, 250000 - c1);
    double c3 = 300000 - c1 - c2;
    SolverInput input;
    input.total_cost_limit = 300000.0;
    input.oltp_model = &model;
    input.classes = {
        {classes.Find(1), rng.Uniform(0.05, 1.0), c1, false},
        {classes.Find(2), rng.Uniform(0.05, 1.0), c2, false},
        {classes.Find(3), rng.Uniform(0.05, 0.6), c3, false},
    };
    double current_utility = solver.EvaluateFractions(
        input, {c1 / 300000.0, c2 / 300000.0, c3 / 300000.0});
    SchedulingPlan plan = solver.Solve(input);
    EXPECT_GE(plan.predicted_utility, current_utility - 1e-9);
    EXPECT_NEAR(plan.Total(), 300000.0, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverSeedSweep,
                         ::testing::Range<uint64_t>(1, 9));

TEST(MonitorTest, HarvestAggregatesAndResets) {
  sim::Simulator simulator;
  Monitor monitor(&simulator);
  workload::QueryRecord record;
  record.class_id = 1;
  record.submit_time = 0.0;
  record.exec_start_time = 2.0;
  record.end_time = 4.0;  // velocity 0.5, response 4
  monitor.AddRecord(record);
  record.exec_start_time = 0.0;  // velocity 1.0
  monitor.AddRecord(record);
  simulator.RunUntil(10.0);
  auto stats = monitor.Harvest();
  ASSERT_EQ(stats.count(1), 1u);
  EXPECT_EQ(stats[1].completed, 2);
  EXPECT_NEAR(stats[1].mean_velocity, 0.75, 1e-12);
  EXPECT_NEAR(stats[1].mean_response_seconds, 4.0, 1e-12);
  EXPECT_NEAR(stats[1].throughput_per_second, 0.2, 1e-12);
  // Second harvest is empty.
  EXPECT_TRUE(monitor.Harvest().empty());
}

TEST(SnapshotMonitorTest, SamplesLastFinishedPerClient) {
  sim::Simulator simulator;
  SnapshotMonitor::Options options;
  options.sample_interval_seconds = 10.0;
  options.per_client_cpu_seconds = 0.0;
  SnapshotMonitor monitor(&simulator, nullptr, options);
  monitor.Start(35.0);

  workload::QueryRecord record;
  record.client_id = 1;
  record.submit_time = 0.0;
  record.exec_start_time = 0.0;
  record.end_time = 0.3;  // response 0.3
  monitor.RecordCompletion(record);
  record.client_id = 2;
  record.end_time = 0.1;  // response 0.1
  monitor.RecordCompletion(record);

  simulator.RunUntil(35.0);
  EXPECT_EQ(monitor.snapshots_taken(), 3u);
  EXPECT_NEAR(monitor.HarvestAvgResponse(-1.0), 0.2, 1e-12);
}

TEST(SnapshotMonitorTest, FallbackWhenNoData) {
  sim::Simulator simulator;
  SnapshotMonitor monitor(&simulator, nullptr, SnapshotMonitor::Options());
  EXPECT_DOUBLE_EQ(monitor.HarvestAvgResponse(0.77), 0.77);
}

TEST(SnapshotMonitorTest, RemembersLastKnownAverage) {
  sim::Simulator simulator;
  SnapshotMonitor::Options options;
  options.sample_interval_seconds = 10.0;
  SnapshotMonitor monitor(&simulator, nullptr, options);
  monitor.Start(100.0);
  workload::QueryRecord record;
  record.client_id = 1;
  record.end_time = 0.4;
  monitor.RecordCompletion(record);
  simulator.RunUntil(15.0);
  EXPECT_NEAR(monitor.HarvestAvgResponse(-1.0), 0.4, 1e-12);
  // No new samples harvested yet, but the last average persists.
  EXPECT_NEAR(monitor.HarvestAvgResponse(-1.0), 0.4, 1e-12);
}

TEST(SnapshotMonitorTest, OverheadBilledToEngine) {
  sim::Simulator simulator;
  engine::ExecutionEngine engine(&simulator, engine::EngineConfig(),
                                 Rng(4));
  SnapshotMonitor::Options options;
  options.sample_interval_seconds = 5.0;
  options.per_client_cpu_seconds = 0.001;
  SnapshotMonitor monitor(&simulator, &engine, options);
  monitor.Start(20.0);
  workload::QueryRecord record;
  for (int c = 0; c < 10; ++c) {
    record.client_id = c;
    record.end_time = 0.1;
    monitor.RecordCompletion(record);
  }
  simulator.RunUntil(21.0);
  // 4 snapshots x 10 clients x 1 ms.
  EXPECT_NEAR(monitor.total_overhead_cpu_seconds(), 0.04, 1e-9);
  EXPECT_NEAR(engine.cpu_pool().busy_core_seconds(), 0.04, 1e-9);
}

}  // namespace
}  // namespace qsched::sched
