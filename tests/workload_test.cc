#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "sim/simulator.h"
#include "sim/stats.h"
#include "workload/client.h"
#include "workload/schedule.h"
#include "workload/tpcc_workload.h"
#include "workload/tpch_workload.h"

namespace qsched::workload {
namespace {

TEST(ScheduleTest, PeriodLookup) {
  WorkloadSchedule schedule(10.0, {1, 2});
  ASSERT_TRUE(schedule.AddPeriod({3, 4}).ok());
  ASSERT_TRUE(schedule.AddPeriod({5, 6}).ok());
  EXPECT_EQ(schedule.num_periods(), 2);
  EXPECT_EQ(schedule.PeriodAt(0.0), 0);
  EXPECT_EQ(schedule.PeriodAt(9.99), 0);
  EXPECT_EQ(schedule.PeriodAt(10.0), 1);
  EXPECT_EQ(schedule.PeriodAt(1000.0), 1);  // clamps to last
  EXPECT_EQ(schedule.PeriodAt(-5.0), 0);
}

TEST(ScheduleTest, ClientLookup) {
  WorkloadSchedule schedule(10.0, {1, 2});
  schedule.AddPeriod({3, 4});
  EXPECT_EQ(schedule.ClientsFor(0, 1), 3);
  EXPECT_EQ(schedule.ClientsFor(0, 2), 4);
  EXPECT_EQ(schedule.ClientsFor(0, 99), 0);
  EXPECT_EQ(schedule.ClientsFor(5, 1), 0);
  EXPECT_EQ(schedule.ClientsAt(5.0, 2), 4);
}

TEST(ScheduleTest, RejectsMalformedPeriods) {
  WorkloadSchedule schedule(10.0, {1, 2});
  EXPECT_FALSE(schedule.AddPeriod({1}).ok());
  EXPECT_FALSE(schedule.AddPeriod({1, -2}).ok());
}

TEST(Figure3ScheduleTest, MatchesPaperConstraints) {
  WorkloadSchedule schedule = MakeFigure3Schedule(480.0);
  EXPECT_EQ(schedule.num_periods(), 18);
  EXPECT_DOUBLE_EQ(schedule.period_seconds(), 480.0);
  for (int p = 0; p < 18; ++p) {
    // OLAP classes stay within 2..6 clients, OLTP within 15..25.
    for (int cls : {1, 2}) {
      EXPECT_GE(schedule.ClientsFor(p, cls), 2);
      EXPECT_LE(schedule.ClientsFor(p, cls), 6);
    }
    EXPECT_GE(schedule.ClientsFor(p, 3), 15);
    EXPECT_LE(schedule.ClientsFor(p, 3), 25);
  }
  // OLTP cycles 15/20/25: heavy every third period.
  for (int p = 2; p < 18; p += 3) {
    EXPECT_EQ(schedule.ClientsFor(p, 3), 25);
  }
  // The paper's period 18 is (2, 6, 25) and the heaviest overall.
  EXPECT_EQ(schedule.ClientsFor(17, 1), 2);
  EXPECT_EQ(schedule.ClientsFor(17, 2), 6);
  EXPECT_EQ(schedule.ClientsFor(17, 3), 25);
  // Period 18 has more OLAP clients than the other OLTP-heavy periods
  // 3, 6 and 9 (1-based), which drives the Fig. 7 analysis.
  int olap18 = schedule.ClientsFor(17, 1) + schedule.ClientsFor(17, 2);
  for (int p : {2, 5, 8}) {
    EXPECT_GT(olap18, schedule.ClientsFor(p, 1) + schedule.ClientsFor(p, 2));
  }
}

TEST(QueryRecordTest, VelocityDefinition) {
  QueryRecord record;
  record.submit_time = 0.0;
  record.exec_start_time = 6.0;
  record.end_time = 10.0;
  EXPECT_DOUBLE_EQ(record.ExecSeconds(), 4.0);
  EXPECT_DOUBLE_EQ(record.ResponseSeconds(), 10.0);
  EXPECT_DOUBLE_EQ(record.Velocity(), 0.4);
}

TEST(QueryRecordTest, VelocityClampedToOne) {
  QueryRecord record;
  record.submit_time = 5.0;
  record.exec_start_time = 4.0;  // degenerate: exec "before" submit
  record.end_time = 10.0;
  EXPECT_LE(record.Velocity(), 1.0);
}

TEST(TpchWorkloadTest, HasEighteenTemplates) {
  TpchWorkload workload(TpchWorkloadParams(), 1);
  EXPECT_EQ(workload.num_templates(), 18u);
  std::set<std::string> names;
  for (size_t i = 0; i < workload.num_templates(); ++i) {
    names.insert(workload.template_name(i));
  }
  EXPECT_EQ(names.size(), 18u);
  // The paper excludes TPC-H queries 16, 19, 20 and 21.
  for (const char* excluded : {"q16", "q19", "q20", "q21"}) {
    EXPECT_EQ(names.count(excluded), 0u) << excluded;
  }
  EXPECT_EQ(names.count("q1"), 1u);
  EXPECT_EQ(names.count("q22"), 1u);
}

TEST(TpchWorkloadTest, QueriesAreOlapShaped) {
  TpchWorkload workload(TpchWorkloadParams(), 2);
  for (int i = 0; i < 50; ++i) {
    Query q = workload.Next();
    EXPECT_EQ(q.type, WorkloadType::kOlap);
    EXPECT_EQ(q.job.database, engine::DatabaseId::kOlap);
    EXPECT_GT(q.cost_timerons, 0.0);
    EXPECT_GT(q.job.logical_pages, 100.0);
    EXPECT_GT(q.job.cpu_seconds, 0.0);
    EXPECT_GE(q.job.hit_ratio, 0.0);
    EXPECT_LE(q.job.hit_ratio, 1.0);
  }
}

TEST(TpchWorkloadTest, CostDistributionIsWideAndHeavy) {
  TpchWorkload workload(TpchWorkloadParams(), 3);
  std::vector<double> costs = workload.SampleCosts(1000);
  double p50 = sim::Percentile(costs, 0.5);
  double p95 = sim::Percentile(costs, 0.95);
  double p10 = sim::Percentile(costs, 0.10);
  // "the requirements of OLAP queries vary widely".
  EXPECT_GT(p95 / p10, 5.0);
  EXPECT_GT(p95, p50);
}

TEST(TpchWorkloadTest, DeterministicPerSeed) {
  TpchWorkload a(TpchWorkloadParams(), 77);
  TpchWorkload b(TpchWorkloadParams(), 77);
  for (int i = 0; i < 20; ++i) {
    Query qa = a.Next();
    Query qb = b.Next();
    EXPECT_EQ(qa.template_name, qb.template_name);
    EXPECT_DOUBLE_EQ(qa.cost_timerons, qb.cost_timerons);
    EXPECT_DOUBLE_EQ(qa.job.logical_pages, qb.job.logical_pages);
  }
}

TEST(TpccWorkloadTest, HasFiveTransactionTypes) {
  TpccWorkload workload(TpccWorkloadParams(), 1);
  EXPECT_EQ(workload.num_transaction_types(), 5u);
}

TEST(TpccWorkloadTest, MixApproximatesTpcc) {
  TpccWorkload workload(TpccWorkloadParams(), 5);
  std::map<std::string, int> counts;
  const int n = 20000;
  for (int i = 0; i < n; ++i) counts[workload.Next().template_name] += 1;
  EXPECT_NEAR(counts["new_order"] / static_cast<double>(n), 0.45, 0.02);
  EXPECT_NEAR(counts["payment"] / static_cast<double>(n), 0.43, 0.02);
  EXPECT_NEAR(counts["order_status"] / static_cast<double>(n), 0.04, 0.01);
  EXPECT_NEAR(counts["delivery"] / static_cast<double>(n), 0.04, 0.01);
  EXPECT_NEAR(counts["stock_level"] / static_cast<double>(n), 0.04, 0.01);
}

TEST(TpccWorkloadTest, TransactionsAreOltpShaped) {
  TpccWorkload workload(TpccWorkloadParams(), 6);
  for (int i = 0; i < 100; ++i) {
    Query q = workload.Next();
    EXPECT_EQ(q.type, WorkloadType::kOltp);
    EXPECT_EQ(q.job.database, engine::DatabaseId::kOltp);
    // Sub-second CPU demand, small page counts, high hit ratio.
    EXPECT_LT(q.job.cpu_seconds, 0.2);
    EXPECT_LT(q.job.logical_pages, 2000.0);
    EXPECT_GT(q.job.hit_ratio, 0.5);
  }
}

TEST(TpccWorkloadTest, CostsTinyComparedToOlap) {
  TpccWorkload oltp(TpccWorkloadParams(), 7);
  TpchWorkload olap(TpchWorkloadParams(), 7);
  double oltp_p95 = sim::Percentile(oltp.SampleCosts(500), 0.95);
  double olap_p50 = sim::Percentile(olap.SampleCosts(500), 0.50);
  EXPECT_LT(oltp_p95 * 10, olap_p50);
}

TEST(WorkloadTypeTest, Names) {
  EXPECT_STREQ(WorkloadTypeToString(WorkloadType::kOlap), "OLAP");
  EXPECT_STREQ(WorkloadTypeToString(WorkloadType::kOltp), "OLTP");
}

/// Immediate-execution frontend with a configurable service time.
class FakeFrontend : public QueryFrontend {
 public:
  explicit FakeFrontend(sim::Simulator* simulator, double service_seconds)
      : simulator_(simulator), service_seconds_(service_seconds) {}

  void Submit(const Query& query, CompleteFn on_complete) override {
    ++submitted_;
    QueryRecord record;
    record.query_id = query.id;
    record.class_id = query.class_id;
    record.client_id = query.client_id;
    record.type = query.type;
    record.cost_timerons = query.cost_timerons;
    record.submit_time = simulator_->Now();
    record.exec_start_time = simulator_->Now();
    simulator_->ScheduleAfter(
        service_seconds_,
        [this, record, on_complete = std::move(on_complete)]() mutable {
          record.end_time = simulator_->Now();
          on_complete(record);
        });
  }

  int submitted() const { return submitted_; }

 private:
  sim::Simulator* simulator_;
  double service_seconds_;
  int submitted_ = 0;
};

/// Trivial generator for client-pool tests.
class FixedGenerator : public QueryGenerator {
 public:
  Query Next() override {
    Query q;
    q.type = WorkloadType::kOltp;
    q.template_name = "fixed";
    q.cost_timerons = 10.0;
    return q;
  }
  WorkloadType type() const override { return WorkloadType::kOltp; }
};

TEST(ClientPoolTest, ClosedLoopIssuesBackToBack) {
  sim::Simulator simulator;
  WorkloadSchedule schedule(100.0, {1});
  schedule.AddPeriod({2});
  FakeFrontend frontend(&simulator, 10.0);
  FixedGenerator generator;
  int completions = 0;
  ClientPool pool(&simulator, &schedule, 1, &generator, &frontend,
                  [&completions](const QueryRecord&) { ++completions; });
  pool.Start();
  simulator.RunUntil(100.0);
  // 2 clients, 10 s service, zero think time -> 10 queries each.
  EXPECT_EQ(completions, 20);
  EXPECT_EQ(pool.active_clients(), 2);
}

TEST(ClientPoolTest, PopulationTracksSchedule) {
  sim::Simulator simulator;
  WorkloadSchedule schedule(50.0, {1});
  schedule.AddPeriod({1});
  schedule.AddPeriod({4});
  schedule.AddPeriod({2});
  FakeFrontend frontend(&simulator, 5.0);
  FixedGenerator generator;
  ClientPool pool(&simulator, &schedule, 1, &generator, &frontend,
                  nullptr);
  pool.Start();
  simulator.RunUntil(25.0);
  EXPECT_EQ(pool.active_clients(), 1);
  simulator.RunUntil(75.0);
  EXPECT_EQ(pool.active_clients(), 4);
  simulator.RunUntil(130.0);
  EXPECT_EQ(pool.active_clients(), 2);
  simulator.RunUntil(150.0);
  // Throughput over the whole run matches sum(clients*period/service).
  EXPECT_EQ(pool.queries_completed(),
            pool.queries_submitted() - pool.active_clients());
}

TEST(ClientPoolTest, RecordsCarryClassAndClient) {
  sim::Simulator simulator;
  WorkloadSchedule schedule(30.0, {7});
  schedule.AddPeriod({3});
  FakeFrontend frontend(&simulator, 10.0);
  FixedGenerator generator;
  std::set<int> clients;
  std::set<uint64_t> ids;
  ClientPool pool(&simulator, &schedule, 7, &generator, &frontend,
                  [&](const QueryRecord& r) {
                    EXPECT_EQ(r.class_id, 7);
                    clients.insert(r.client_id);
                    ids.insert(r.query_id);
                  });
  pool.Start();
  simulator.RunUntil(30.0);
  EXPECT_EQ(clients.size(), 3u);
  EXPECT_EQ(ids.size(), 9u);  // ids unique
}

class ClientPoolPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClientPoolPropertyTest, ConservationUnderRandomSchedules) {
  Rng rng(GetParam());
  sim::Simulator simulator;
  WorkloadSchedule schedule(20.0, {1});
  int periods = static_cast<int>(rng.UniformInt(2, 6));
  for (int p = 0; p < periods; ++p) {
    schedule.AddPeriod({static_cast<int>(rng.UniformInt(0, 8))});
  }
  // Final quiet period so the closed loop drains and the run terminates.
  schedule.AddPeriod({0});
  FakeFrontend frontend(&simulator, rng.Uniform(0.5, 3.0));
  FixedGenerator generator;
  int completions = 0;
  ClientPool pool(&simulator, &schedule, 1, &generator, &frontend,
                  [&completions](const QueryRecord&) { ++completions; });
  pool.Start();
  simulator.RunToCompletion();
  // Everything submitted eventually completes (clients retire cleanly).
  EXPECT_EQ(completions, static_cast<int>(pool.queries_completed()));
  EXPECT_EQ(pool.queries_submitted(), pool.queries_completed());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClientPoolPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace qsched::workload
