// Wire-protocol hardening tests: a fuzz-style table of malformed inputs
// (truncated, oversized, bad version, bad type, trailing garbage), a
// random-bytes never-crash sweep, and a seeded encode/decode round-trip
// property test. See net/frame.h for the framing contract.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/frame.h"

namespace qsched::net {
namespace {

std::vector<uint8_t> EncodePing(uint64_t request_id,
                                uint8_t version = kProtocolVersion) {
  Frame frame;
  frame.type = FrameType::kPing;
  frame.request_id = request_id;
  std::vector<uint8_t> bytes;
  EncodeFrame(frame, &bytes);
  bytes[4] = version;
  return bytes;
}

workload::Query MakeQuery() {
  workload::Query q;
  q.class_id = 2;
  q.type = workload::WorkloadType::kOlap;
  q.template_name = "q6";
  q.cost_timerons = 1234.5;
  q.client_id = 7;
  q.job.database = engine::DatabaseId::kOlap;
  q.job.cpu_seconds = 0.25;
  q.job.logical_pages = 5000.0;
  q.job.write_pages = 12.0;
  q.job.hit_ratio = 0.8;
  return q;
}

TEST(FrameTest, RoundTripSubmit) {
  Frame in;
  in.type = FrameType::kSubmit;
  in.request_id = 99;
  in.query = MakeQuery();
  std::vector<uint8_t> bytes;
  EncodeFrame(in, &bytes);

  Frame out;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(bytes.data(), bytes.size(), &out, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(out.type, FrameType::kSubmit);
  EXPECT_EQ(out.request_id, 99u);
  EXPECT_EQ(out.query.class_id, 2);
  EXPECT_EQ(out.query.type, workload::WorkloadType::kOlap);
  EXPECT_EQ(out.query.template_name, "q6");
  EXPECT_DOUBLE_EQ(out.query.cost_timerons, 1234.5);
  EXPECT_EQ(out.query.client_id, 7);
  EXPECT_EQ(out.query.job.database, engine::DatabaseId::kOlap);
  EXPECT_DOUBLE_EQ(out.query.job.cpu_seconds, 0.25);
  EXPECT_DOUBLE_EQ(out.query.job.logical_pages, 5000.0);
  EXPECT_DOUBLE_EQ(out.query.job.write_pages, 12.0);
  EXPECT_DOUBLE_EQ(out.query.job.hit_ratio, 0.8);
}

TEST(FrameTest, RoundTripResponses) {
  {
    Frame in;
    in.type = FrameType::kRejected;
    in.request_id = 3;
    in.reject_reason = rt::RejectReason::kShuttingDown;
    std::vector<uint8_t> bytes;
    EncodeFrame(in, &bytes);
    Frame out;
    size_t consumed = 0;
    ASSERT_EQ(DecodeFrame(bytes.data(), bytes.size(), &out, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(out.type, FrameType::kRejected);
    EXPECT_EQ(out.reject_reason, rt::RejectReason::kShuttingDown);
  }
  {
    Frame in;
    in.type = FrameType::kCompleted;
    in.request_id = 4;
    in.class_id = 3;
    in.response_seconds = 1.5;
    in.exec_seconds = 0.75;
    in.cancelled = true;
    std::vector<uint8_t> bytes;
    EncodeFrame(in, &bytes);
    Frame out;
    size_t consumed = 0;
    ASSERT_EQ(DecodeFrame(bytes.data(), bytes.size(), &out, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(out.class_id, 3);
    EXPECT_DOUBLE_EQ(out.response_seconds, 1.5);
    EXPECT_DOUBLE_EQ(out.exec_seconds, 0.75);
    EXPECT_TRUE(out.cancelled);
  }
  {
    Frame in;
    in.type = FrameType::kStatsReply;
    in.request_id = 5;
    in.stats = {100, 5, 2, 93, 11, 3, 0, {}};
    std::vector<uint8_t> bytes;
    EncodeFrame(in, &bytes);
    Frame out;
    size_t consumed = 0;
    ASSERT_EQ(DecodeFrame(bytes.data(), bytes.size(), &out, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(out.stats.accepted, 100u);
    EXPECT_EQ(out.stats.rejected_queue_full, 5u);
    EXPECT_EQ(out.stats.rejected_shutting_down, 2u);
    EXPECT_EQ(out.stats.completed, 93u);
    EXPECT_EQ(out.stats.queue_depth, 11u);
    EXPECT_EQ(out.stats.connections, 3u);
  }
  {
    Frame in;
    in.type = FrameType::kError;
    in.request_id = 6;
    in.error_code = WireError::kOversized;
    in.error_message = "too big";
    std::vector<uint8_t> bytes;
    EncodeFrame(in, &bytes);
    Frame out;
    size_t consumed = 0;
    ASSERT_EQ(DecodeFrame(bytes.data(), bytes.size(), &out, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(out.error_code, WireError::kOversized);
    EXPECT_EQ(out.error_message, "too big");
  }
}

TEST(FrameTest, StreamPrefixesNeedMore) {
  // Every strict prefix of a valid frame is kNeedMore, never an error:
  // a slow sender must not be mistaken for a hostile one.
  std::vector<uint8_t> bytes;
  Frame frame;
  frame.type = FrameType::kSubmit;
  frame.request_id = 1;
  frame.query = MakeQuery();
  EncodeFrame(frame, &bytes);
  for (size_t len = 0; len < bytes.size(); ++len) {
    Frame out;
    size_t consumed = 0;
    EXPECT_EQ(DecodeFrame(bytes.data(), len, &out, &consumed),
              DecodeStatus::kNeedMore)
        << "prefix length " << len;
  }
}

TEST(FrameTest, MalformedInputTable) {
  struct Case {
    const char* name;
    std::vector<uint8_t> bytes;
    DecodeStatus want;
  };
  std::vector<Case> cases;

  cases.push_back({"bad version", EncodePing(1, /*version=*/0xEE),
                   DecodeStatus::kBadVersion});
  {
    std::vector<uint8_t> bytes = EncodePing(2);
    bytes[5] = 0xC8;  // unknown type
    cases.push_back({"bad type", bytes, DecodeStatus::kBadType});
  }
  {
    // payload_length = 16 MiB: rejected from the length word alone.
    std::vector<uint8_t> bytes = {0x00, 0x00, 0x00, 0x01};
    cases.push_back({"oversized", bytes, DecodeStatus::kOversized});
  }
  {
    // payload_length below the version+type+request_id minimum.
    std::vector<uint8_t> bytes = {0x05, 0x00, 0x00, 0x00};
    cases.push_back({"short payload", bytes, DecodeStatus::kMalformed});
  }
  {
    // PING with one trailing byte the body did not account for.
    std::vector<uint8_t> bytes = EncodePing(3);
    bytes.push_back(0x55);
    bytes[0] += 1;  // claim the extra byte as payload
    cases.push_back({"trailing garbage", bytes, DecodeStatus::kMalformed});
  }
  {
    // SUBMIT whose payload is just the header: the body is missing.
    std::vector<uint8_t> bytes = {10, 0, 0, 0, kProtocolVersion,
                                  static_cast<uint8_t>(FrameType::kSubmit),
                                  0, 0, 0, 0, 0, 0, 0, 7};
    cases.push_back({"submit no body", bytes, DecodeStatus::kMalformed});
  }
  {
    // REJECTED with an out-of-range reason byte.
    Frame frame;
    frame.type = FrameType::kRejected;
    frame.request_id = 8;
    std::vector<uint8_t> bytes;
    EncodeFrame(frame, &bytes);
    bytes.back() = 0x77;
    cases.push_back({"bad reject reason", bytes, DecodeStatus::kMalformed});
  }
  {
    // SUBMIT with a template_name length pointing past the payload.
    Frame frame;
    frame.type = FrameType::kSubmit;
    frame.request_id = 9;
    frame.query = MakeQuery();
    std::vector<uint8_t> bytes;
    EncodeFrame(frame, &bytes);
    // The u16 string length sits 2 + name bytes from the end.
    bytes[bytes.size() - 2 - frame.query.template_name.size()] = 0xFF;
    cases.push_back({"string overrun", bytes, DecodeStatus::kMalformed});
  }

  for (const Case& c : cases) {
    Frame out;
    size_t consumed = 0;
    EXPECT_EQ(DecodeFrame(c.bytes.data(), c.bytes.size(), &out, &consumed),
              c.want)
        << c.name;
  }
}

TEST(FrameTest, OversizedRejectedBeforePayloadArrives) {
  // Only the length word is present; a cooperative decoder would wait
  // for 16 MiB, ours must fail immediately.
  std::vector<uint8_t> bytes = {0x00, 0x00, 0x00, 0x01};
  Frame out;
  size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size(), &out, &consumed),
            DecodeStatus::kOversized);
  // A tighter per-connection limit applies the same way.
  std::vector<uint8_t> small = EncodePing(1);
  EXPECT_EQ(DecodeFrame(small.data(), small.size(), &out, &consumed,
                        /*max_payload=*/4),
            DecodeStatus::kOversized);
}

TEST(FrameTest, RandomBytesNeverCrashAndNeverOverread) {
  // 10k random buffers: decode must always return a verdict without
  // crashing, and kOk must never claim more bytes than provided.
  Rng rng(20260806);
  int ok = 0, errors = 0, need_more = 0;
  for (int i = 0; i < 10000; ++i) {
    const size_t len = static_cast<size_t>(rng.UniformInt(0, 128));
    std::vector<uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.NextU32() & 0xFF);
    Frame out;
    size_t consumed = 0;
    DecodeStatus st =
        DecodeFrame(bytes.data(), bytes.size(), &out, &consumed);
    switch (st) {
      case DecodeStatus::kOk:
        ++ok;
        EXPECT_LE(consumed, bytes.size());
        break;
      case DecodeStatus::kNeedMore:
        ++need_more;
        break;
      default:
        ++errors;
        break;
    }
  }
  // Random bytes are overwhelmingly rejected; the exact split is
  // seed-dependent but every path must have been exercised.
  EXPECT_GT(errors, 0);
  EXPECT_GT(need_more, 0);
  (void)ok;
}

TEST(FrameTest, SeededRoundTripProperty) {
  // Property: encode(frame) always decodes back to an equal frame, for
  // randomized frames of every type, including extreme doubles and
  // maximum-length strings (encode truncates to the wire limit).
  Rng rng(7);
  const FrameType kTypes[] = {
      FrameType::kSubmit,   FrameType::kPing,    FrameType::kDrain,
      FrameType::kStats,    FrameType::kAccepted, FrameType::kRejected,
      FrameType::kCompleted, FrameType::kPong,   FrameType::kDrained,
      FrameType::kStatsReply, FrameType::kError};
  for (int i = 0; i < 2000; ++i) {
    Frame in;
    in.type = kTypes[rng.UniformInt(0, 10)];
    in.request_id = rng.NextU64();
    in.query.class_id = static_cast<int>(rng.UniformInt(-3, 1000));
    in.query.type = rng.Bernoulli(0.5) ? workload::WorkloadType::kOlap
                                       : workload::WorkloadType::kOltp;
    in.query.job.database = rng.Bernoulli(0.5)
                                ? engine::DatabaseId::kOlap
                                : engine::DatabaseId::kOltp;
    in.query.client_id = static_cast<int>(rng.UniformInt(-1, 4096));
    in.query.cost_timerons = rng.Uniform(-1e12, 1e12);
    in.query.job.cpu_seconds = rng.Uniform(0.0, 1e6);
    in.query.job.logical_pages = rng.Uniform(0.0, 1e9);
    in.query.job.write_pages = rng.Uniform(0.0, 1e9);
    in.query.job.hit_ratio = rng.Uniform(-2.0, 2.0);
    in.query.template_name.assign(
        static_cast<size_t>(rng.UniformInt(0, 300)), 'x');
    in.reject_reason = rng.Bernoulli(0.5) ? rt::RejectReason::kQueueFull
                                          : rt::RejectReason::kShuttingDown;
    in.class_id = static_cast<int>(rng.UniformInt(0, 100));
    in.response_seconds = rng.Uniform(0.0, 1e5);
    in.exec_seconds = rng.Uniform(0.0, 1e5);
    in.cancelled = rng.Bernoulli(0.3);
    in.stats.accepted = rng.NextU64();
    in.stats.completed = rng.NextU64();
    in.error_code = static_cast<WireError>(rng.UniformInt(1, 5));
    in.error_message.assign(static_cast<size_t>(rng.UniformInt(0, 600)),
                            'e');

    std::vector<uint8_t> bytes;
    EncodeFrame(in, &bytes);
    Frame out;
    size_t consumed = 0;
    ASSERT_EQ(DecodeFrame(bytes.data(), bytes.size(), &out, &consumed),
              DecodeStatus::kOk)
        << "type " << FrameTypeToString(in.type) << " iteration " << i;
    ASSERT_EQ(consumed, bytes.size());
    EXPECT_EQ(out.type, in.type);
    EXPECT_EQ(out.request_id, in.request_id);
    switch (in.type) {
      case FrameType::kSubmit: {
        EXPECT_EQ(out.query.class_id, in.query.class_id);
        EXPECT_EQ(out.query.type, in.query.type);
        EXPECT_EQ(out.query.job.database, in.query.job.database);
        EXPECT_EQ(out.query.client_id, in.query.client_id);
        EXPECT_DOUBLE_EQ(out.query.cost_timerons, in.query.cost_timerons);
        EXPECT_DOUBLE_EQ(out.query.job.cpu_seconds,
                         in.query.job.cpu_seconds);
        EXPECT_DOUBLE_EQ(out.query.job.hit_ratio, in.query.job.hit_ratio);
        // Encode truncates to the wire limit; the prefix survives.
        const size_t want = in.query.template_name.size() >
                                    kMaxTemplateNameBytes
                                ? kMaxTemplateNameBytes
                                : in.query.template_name.size();
        EXPECT_EQ(out.query.template_name.size(), want);
        break;
      }
      case FrameType::kRejected:
        EXPECT_EQ(out.reject_reason, in.reject_reason);
        break;
      case FrameType::kCompleted:
        EXPECT_EQ(out.class_id, in.class_id);
        EXPECT_DOUBLE_EQ(out.response_seconds, in.response_seconds);
        EXPECT_DOUBLE_EQ(out.exec_seconds, in.exec_seconds);
        EXPECT_EQ(out.cancelled, in.cancelled);
        break;
      case FrameType::kStatsReply:
        EXPECT_EQ(out.stats.accepted, in.stats.accepted);
        EXPECT_EQ(out.stats.completed, in.stats.completed);
        break;
      case FrameType::kError: {
        EXPECT_EQ(out.error_code, in.error_code);
        const size_t want = in.error_message.size() > kMaxErrorMessageBytes
                                ? kMaxErrorMessageBytes
                                : in.error_message.size();
        EXPECT_EQ(out.error_message.size(), want);
        break;
      }
      default:
        break;  // header-only frames: type + request_id checked above
    }
  }
}

TEST(FrameTest, BackToBackFramesConsumeExactly) {
  // Two frames in one buffer: the first decode consumes exactly the
  // first frame, leaving the second intact.
  std::vector<uint8_t> bytes = EncodePing(1);
  const size_t first = bytes.size();
  Frame submit;
  submit.type = FrameType::kSubmit;
  submit.request_id = 2;
  submit.query = MakeQuery();
  EncodeFrame(submit, &bytes);

  Frame out;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(bytes.data(), bytes.size(), &out, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(consumed, first);
  EXPECT_EQ(out.type, FrameType::kPing);
  ASSERT_EQ(DecodeFrame(bytes.data() + consumed, bytes.size() - consumed,
                        &out, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(out.type, FrameType::kSubmit);
  EXPECT_EQ(out.request_id, 2u);
}

TEST(FrameTest, V1FramesStillDecodeAndStayV1) {
  // A v1 peer's SUBMIT (no trace-flags byte) and STATS_REPLY (six
  // counters, no attainment list) must decode with the v2 fields at
  // their defaults — the version bump is backward compatible.
  Frame in;
  in.version = kMinProtocolVersion;
  in.type = FrameType::kSubmit;
  in.request_id = 41;
  in.query = MakeQuery();
  in.want_trace = true;  // not encodable in v1; must be dropped
  std::vector<uint8_t> bytes;
  EncodeFrame(in, &bytes);
  EXPECT_EQ(bytes[4], kMinProtocolVersion);

  Frame out;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(bytes.data(), bytes.size(), &out, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(out.version, kMinProtocolVersion);
  EXPECT_FALSE(out.want_trace);
  EXPECT_EQ(out.query.template_name, in.query.template_name);

  Frame stats;
  stats.version = kMinProtocolVersion;
  stats.type = FrameType::kStatsReply;
  stats.request_id = 42;
  stats.stats.accepted = 9;
  stats.stats.admitted = 9;  // v2-only; dropped on a v1 wire
  stats.stats.class_attainment.push_back({3, 0.9});
  bytes.clear();
  EncodeFrame(stats, &bytes);
  ASSERT_EQ(DecodeFrame(bytes.data(), bytes.size(), &out, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(out.stats.accepted, 9u);
  EXPECT_EQ(out.stats.admitted, 0u);
  EXPECT_TRUE(out.stats.class_attainment.empty());
}

TEST(FrameTest, V2CompletedRoundTripsTraceContext) {
  Frame in;
  in.type = FrameType::kCompleted;
  in.request_id = 77;
  in.class_id = 2;
  in.response_seconds = 1.25;
  in.exec_seconds = 0.5;
  in.has_trace = true;
  in.trace_id = 123456789;
  in.stage_gateway_queue_seconds = 0.25;
  in.stage_dispatch_seconds = 0.5;
  in.stage_execute_seconds = 0.5;
  std::vector<uint8_t> bytes;
  EncodeFrame(in, &bytes);
  EXPECT_EQ(bytes[4], kProtocolVersion);

  Frame out;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(bytes.data(), bytes.size(), &out, &consumed),
            DecodeStatus::kOk);
  EXPECT_TRUE(out.has_trace);
  EXPECT_EQ(out.trace_id, 123456789u);
  EXPECT_DOUBLE_EQ(out.stage_gateway_queue_seconds, 0.25);
  EXPECT_DOUBLE_EQ(out.stage_dispatch_seconds, 0.5);
  EXPECT_DOUBLE_EQ(out.stage_execute_seconds, 0.5);

  // Without the trace the optional tail collapses to one flag byte.
  Frame bare = in;
  bare.has_trace = false;
  std::vector<uint8_t> bare_bytes;
  EncodeFrame(bare, &bare_bytes);
  EXPECT_EQ(bare_bytes.size() + 8 + 3 * 8, bytes.size());
  ASSERT_EQ(DecodeFrame(bare_bytes.data(), bare_bytes.size(), &out,
                        &consumed),
            DecodeStatus::kOk);
  EXPECT_FALSE(out.has_trace);
  EXPECT_EQ(out.trace_id, 0u);
}

TEST(FrameTest, V2StatsReplyRoundTripsAttainment) {
  Frame in;
  in.type = FrameType::kStatsReply;
  in.request_id = 11;
  in.stats.accepted = 100;
  in.stats.admitted = 98;
  in.stats.completed = 95;
  in.stats.class_attainment = {{1, 0.75}, {3, 1.0}};
  std::vector<uint8_t> bytes;
  EncodeFrame(in, &bytes);

  Frame out;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(bytes.data(), bytes.size(), &out, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(out.stats.admitted, 98u);
  ASSERT_EQ(out.stats.class_attainment.size(), 2u);
  EXPECT_EQ(out.stats.class_attainment[0].class_id, 1);
  EXPECT_DOUBLE_EQ(out.stats.class_attainment[0].rolling_attainment, 0.75);
  EXPECT_EQ(out.stats.class_attainment[1].class_id, 3);
  EXPECT_DOUBLE_EQ(out.stats.class_attainment[1].rolling_attainment, 1.0);
}

TEST(FrameTest, V2BodyOnV1FrameIsMalformed) {
  // Tag a v2-encoded COMPLETED (flag byte present) as v1: the decoder
  // must flag the unaccounted tail instead of silently ignoring it.
  Frame in;
  in.type = FrameType::kCompleted;
  in.request_id = 5;
  in.class_id = 1;
  std::vector<uint8_t> bytes;
  EncodeFrame(in, &bytes);
  bytes[4] = kMinProtocolVersion;
  Frame out;
  size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size(), &out, &consumed),
            DecodeStatus::kMalformed);

  // And the converse: a v1 body tagged v2 is missing its flag byte.
  Frame v1 = in;
  v1.version = kMinProtocolVersion;
  std::vector<uint8_t> v1_bytes;
  EncodeFrame(v1, &v1_bytes);
  v1_bytes[4] = kProtocolVersion;
  EXPECT_EQ(DecodeFrame(v1_bytes.data(), v1_bytes.size(), &out, &consumed),
            DecodeStatus::kMalformed);
}

}  // namespace
}  // namespace qsched::net
