// Per-query stage tracing: the telescoping identity (gateway_queue +
// dispatch + execute == end-to-end) as pure math, live through the
// real-time gateway under load, across queue-full shedding, and over
// the wire via the v2 COMPLETED trace context. These run in the TSan
// and ASan gates (see tests/CMakeLists.txt) because the stamps cross
// the producer, worker, and clock threads.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net/server.h"
#include "obs/stage_trace.h"
#include "obs/telemetry.h"
#include "rt/gateway.h"
#include "rt/loadgen.h"
#include "rt/runtime.h"
#include "scheduler/service_class.h"
#include "workload/client.h"
#include "workload/tpcc_workload.h"
#include "workload/tpch_workload.h"

namespace qsched {
namespace {

// The acceptance tolerance: per-stage durations must sum to the
// end-to-end latency within one millisecond.
constexpr double kToleranceSeconds = 1e-3;

TEST(StageTraceTest, TelescopingIdentityIsExact) {
  using Clock = obs::QueryStageTrace::Clock;
  obs::QueryStageTrace trace;
  trace.trace_id = 7;
  Clock::time_point base = Clock::now();
  trace.enqueued = base;
  trace.admitted = base + std::chrono::microseconds(137);
  trace.exec_start = base + std::chrono::milliseconds(3);
  trace.completed = base + std::chrono::milliseconds(42);

  EXPECT_TRUE(trace.HasExecStart());
  EXPECT_GE(trace.GatewayQueueSeconds(), 0.0);
  EXPECT_GE(trace.DispatchSeconds(), 0.0);
  EXPECT_GE(trace.ExecuteSeconds(), 0.0);
  // The stages telescope: adjacent timestamps cancel, so the sum is
  // bit-for-bit the end-to-end duration, not merely close to it.
  EXPECT_DOUBLE_EQ(trace.GatewayQueueSeconds() + trace.DispatchSeconds() +
                       trace.ExecuteSeconds(),
                   trace.TotalSeconds());
  EXPECT_NEAR(trace.TotalSeconds(), 0.042, 1e-9);
}

TEST(StageTraceTest, DefaultTraceHasNoExecStart) {
  obs::QueryStageTrace trace;
  EXPECT_FALSE(trace.HasExecStart());
  EXPECT_EQ(trace.trace_id, 0u);
}

// Live run: every completed query's stages must sum to its end-to-end
// wall latency within 1 ms, under sustained loopback load with a queue
// small enough that the open-loop generator sheds part of the offer.
TEST(StageTraceTest, GatewayStagesSumToEndToEndUnderLoad) {
  obs::Telemetry telemetry;
  rt::RuntimeOptions options;
  options.time_scale = 60.0;
  options.horizon_model_seconds = 3600.0;
  options.seed = 5;
  options.gateway.queue_capacity = 256;  // small: bursts shed
  options.gateway.workers = 2;
  options.scheduler.control_interval_seconds = 15.0;
  options.telemetry = &telemetry;

  sched::ServiceClassSet classes = sched::MakePaperClasses();
  rt::Runtime runtime(classes, options);

  std::atomic<uint64_t> traced{0};
  std::atomic<uint64_t> untraced{0};
  std::mutex mu;
  double worst_residual = 0.0;
  double worst_negative_stage = 0.0;
  runtime.gateway().set_on_complete(
      [&](const workload::QueryRecord& record) {
        if (record.trace == nullptr) {
          untraced.fetch_add(1);
          return;
        }
        traced.fetch_add(1);
        const obs::QueryStageTrace& trace = *record.trace;
        double sum = trace.GatewayQueueSeconds() + trace.DispatchSeconds() +
                     trace.ExecuteSeconds();
        double residual = std::abs(sum - trace.TotalSeconds());
        double most_negative =
            std::min({trace.GatewayQueueSeconds(), trace.DispatchSeconds(),
                      trace.ExecuteSeconds()});
        std::lock_guard<std::mutex> lock(mu);
        worst_residual = std::max(worst_residual, residual);
        worst_negative_stage =
            std::min(worst_negative_stage, most_negative);
      });
  runtime.Start();

  workload::TpchWorkloadParams tpch;
  tpch.scale_factor = 0.1;
  workload::TpchWorkload olap(tpch, /*seed=*/21);
  workload::TpccWorkload oltp(workload::TpccWorkloadParams{}, /*seed=*/22);

  rt::LoadGenOptions load;
  load.pattern = rt::ArrivalPattern::kBursty;
  load.qps = 1500.0;
  load.duration_wall_seconds = 1.5;
  load.seed = 99;
  load.burst_period_seconds = 0.3;
  load.burst_duty = 0.3;
  load.burst_factor = 3.0;
  rt::LoadGenerator loadgen(&runtime.gateway(),
                            {{&olap, 1, 6.0}, {&oltp, 3, 94.0}}, load,
                            &telemetry);
  loadgen.Start();
  loadgen.Join();
  rt::Runtime::Stats stats =
      runtime.Shutdown(/*drain_timeout_wall_seconds=*/120.0);

  ASSERT_TRUE(stats.drained);
  // Every rt submission carries a trace; the sum matches end-to-end to
  // sub-millisecond (by construction it is exact — the tolerance guards
  // the f64 arithmetic, not the stamps).
  EXPECT_GE(traced.load(), 500u);
  EXPECT_EQ(untraced.load(), 0u);
  EXPECT_EQ(traced.load(), stats.completed);
  EXPECT_LE(worst_residual, kToleranceSeconds);
  EXPECT_GE(worst_negative_stage, 0.0) << "a stage duration went negative";

  // Shedding must not corrupt accounting: rejected queries never reach
  // the completion path, and the conservation identity still holds.
  EXPECT_EQ(stats.accepted + stats.rejected, loadgen.offered());
  EXPECT_EQ(stats.completed, stats.accepted);

  // The per-class stage histograms saw all three stages.
  std::vector<obs::MetricSnapshot> snaps = telemetry.registry.Snapshot();
  uint64_t gateway_queue_count = 0, dispatch_count = 0, execute_count = 0;
  for (const obs::MetricSnapshot& snap : snaps) {
    if (snap.name != "qsched_stage_seconds") continue;
    if (snap.labels.find("stage=\"gateway_queue\"") != std::string::npos) {
      gateway_queue_count += snap.count;
    } else if (snap.labels.find("stage=\"dispatch\"") !=
               std::string::npos) {
      dispatch_count += snap.count;
    } else if (snap.labels.find("stage=\"execute\"") != std::string::npos) {
      execute_count += snap.count;
    }
  }
  EXPECT_EQ(gateway_queue_count, stats.completed);
  EXPECT_EQ(dispatch_count, stats.completed);
  EXPECT_EQ(execute_count, stats.completed);
}

// Over the wire: the v2 COMPLETED trace context arrives when asked for,
// its stages are non-negative and sum to a plausible server-side
// end-to-end latency (bounded by the client-observed round trip), and
// turning want_trace off suppresses it (v1-compatible behavior).
TEST(StageTraceTest, WireTraceContextRoundTrip) {
  obs::Telemetry telemetry;
  rt::RuntimeOptions options;
  options.time_scale = 120.0;
  options.horizon_model_seconds = 7200.0;
  options.seed = 12;
  options.gateway.queue_capacity = 4096;
  options.gateway.workers = 2;
  options.telemetry = &telemetry;
  rt::Runtime runtime(sched::MakePaperClasses(), options);
  runtime.Start();

  net::ServerOptions server_options;
  net::Server server(&runtime.gateway(), server_options, &telemetry);
  ASSERT_TRUE(server.Start().ok());

  Result<std::unique_ptr<net::Client>> connected =
      net::Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  std::unique_ptr<net::Client> client = std::move(connected).ValueOrDie();

  workload::TpccWorkload oltp(workload::TpccWorkloadParams{}, /*seed=*/4);
  constexpr int kQueries = 20;
  auto wall_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kQueries; ++i) {
    workload::Query query = oltp.Next();
    query.class_id = 3;
    query.client_id = i;
    Result<net::Client::SubmitResult> verdict = client->Submit(query);
    ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
    ASSERT_TRUE(verdict.ValueOrDie().accepted);
  }
  for (int i = 0; i < kQueries; ++i) {
    Result<net::ClientCompletion> completion = client->NextCompletion();
    ASSERT_TRUE(completion.ok()) << completion.status().ToString();
    const net::ClientCompletion& done = completion.ValueOrDie();
    double round_trip = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
    EXPECT_TRUE(done.has_trace);
    EXPECT_NE(done.trace_id, 0u);
    EXPECT_GE(done.stage_gateway_queue_seconds, 0.0);
    EXPECT_GE(done.stage_dispatch_seconds, 0.0);
    EXPECT_GE(done.stage_execute_seconds, 0.0);
    // The server-side end-to-end span is contained in the client's
    // submit-to-receive window.
    EXPECT_GT(done.StageTotalSeconds(), 0.0);
    EXPECT_LE(done.StageTotalSeconds(), round_trip + kToleranceSeconds);
  }

  // v1-style clients (no trace flag) get a trace-free COMPLETED.
  client->set_want_trace(false);
  workload::Query query = oltp.Next();
  query.class_id = 3;
  Result<net::Client::SubmitResult> verdict = client->Submit(query);
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  ASSERT_TRUE(verdict.ValueOrDie().accepted);
  Result<net::ClientCompletion> completion = client->NextCompletion();
  ASSERT_TRUE(completion.ok()) << completion.status().ToString();
  EXPECT_FALSE(completion.ValueOrDie().has_trace);
  EXPECT_DOUBLE_EQ(completion.ValueOrDie().StageTotalSeconds(), 0.0);

  ASSERT_TRUE(client->Drain().ok());
  server.Stop();
  runtime.Shutdown();
}

}  // namespace
}  // namespace qsched
