// End-to-end invariants on full experiment runs: the cross-module facts
// the paper's evaluation rests on.
#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace qsched::harness {
namespace {

ExperimentConfig MidConfig() {
  ExperimentConfig config;
  // Six paper-shaped periods at 300 s: long enough for the planner to
  // settle, short enough for a CI-sized test (a few seconds).
  workload::WorkloadSchedule schedule(300.0, {1, 2, 3});
  schedule.AddPeriod({2, 2, 15});
  schedule.AddPeriod({3, 3, 20});
  schedule.AddPeriod({4, 3, 25});
  schedule.AddPeriod({2, 4, 15});
  schedule.AddPeriod({3, 4, 25});
  schedule.AddPeriod({4, 5, 20});
  config.schedule = schedule;
  return config;
}

TEST(IntegrationTest, QuerySchedulerProtectsOltpBetterThanNoControl) {
  ExperimentConfig config = MidConfig();
  ExperimentResult none = RunExperiment(config, ControllerKind::kNoControl);
  ExperimentResult qs =
      RunExperiment(config, ControllerKind::kQueryScheduler);
  // Headline claim: adaptation keeps OLTP response lower overall.
  EXPECT_LT(qs.overall_response.at(3), none.overall_response.at(3));
  EXPECT_GE(qs.periods_meeting_goal.at(3),
            none.periods_meeting_goal.at(3));
}

TEST(IntegrationTest, NoControlDeliversMoreRawOlapThroughput) {
  // The flip side of protection: no-control lets OLAP run wild, so it
  // completes at least as many OLAP queries.
  ExperimentConfig config = MidConfig();
  ExperimentResult none = RunExperiment(config, ControllerKind::kNoControl);
  ExperimentResult qs =
      RunExperiment(config, ControllerKind::kQueryScheduler);
  int none_olap =
      none.overall_completed.at(1) + none.overall_completed.at(2);
  int qs_olap = qs.overall_completed.at(1) + qs.overall_completed.at(2);
  EXPECT_GE(none_olap, qs_olap * 3 / 4);
}

TEST(IntegrationTest, QpPriorityFavorsClassTwo) {
  ExperimentConfig config = MidConfig();
  ExperimentResult result =
      RunExperiment(config, ControllerKind::kQpPriority);
  // Aggregate over the run: the prioritized class is at least as fast.
  EXPECT_GE(result.overall_velocity.at(2),
            result.overall_velocity.at(1) * 0.95);
}

TEST(IntegrationTest, QsLimitsRespondToOltpIntensity) {
  ExperimentConfig config = MidConfig();
  ExperimentResult result =
      RunExperiment(config, ControllerKind::kQueryScheduler);
  // Period 3 (25 OLTP clients) should reserve at least as much for
  // class 3 as period 1 (15 clients) on average.
  const auto& limits = result.period_mean_limits.at(3);
  ASSERT_EQ(limits.size(), 6u);
  EXPECT_GT(limits[2], 0.0);
}

TEST(IntegrationTest, VelocitiesAreValidEverywhere) {
  ExperimentConfig config = MidConfig();
  for (ControllerKind kind :
       {ControllerKind::kNoControl, ControllerKind::kQpPriority,
        ControllerKind::kQueryScheduler}) {
    ExperimentResult result = RunExperiment(config, kind);
    for (int cls : {1, 2}) {
      for (double v : result.velocity_series.at(cls)) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
      }
    }
    // OLTP throughput in a closed loop is bounded by clients/response.
    EXPECT_GT(result.overall_completed.at(3), 1000);
  }
}

TEST(IntegrationTest, InterceptionOverheadVisibleInVelocity) {
  // Under no-control with an empty system, OLAP velocity is bounded
  // above by exec/(exec+overhead) < 1 thanks to interception.
  ExperimentConfig config;
  workload::WorkloadSchedule schedule(300.0, {1, 2, 3});
  schedule.AddPeriod({1, 1, 1});
  config.schedule = schedule;
  ExperimentResult result =
      RunExperiment(config, ControllerKind::kNoControl);
  EXPECT_LT(result.overall_velocity.at(1), 1.0);
  EXPECT_GT(result.overall_velocity.at(1), 0.5);
}

TEST(IntegrationTest, DirectOltpControlGatesOltp) {
  ExperimentConfig config = MidConfig();
  ExperimentResult result =
      RunExperiment(config, ControllerKind::kQsDirectOltp);
  // Direct mode still completes the workload and keeps sane metrics.
  EXPECT_GT(result.overall_completed.at(3), 1000);
  EXPECT_GT(result.overall_response.at(3), 0.0);
}

}  // namespace
}  // namespace qsched::harness
