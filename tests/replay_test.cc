// Capture & replay subsystem tests: trace-format round trips over
// randomized records, truncation/corruption recovery, the lock-cheap
// recorder's conservation invariant under concurrent producers, replay
// conservation against a loopback server, and bit-determinism of the
// shadow what-if planner across --jobs. The concurrent cases run in the
// TSan and ASan gates (see tests/CMakeLists.txt).

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/server.h"
#include "obs/telemetry.h"
#include "replay/recorder.h"
#include "replay/replayer.h"
#include "replay/shadow_planner.h"
#include "replay/template_codec.h"
#include "replay/trace_format.h"
#include "rt/runtime.h"
#include "scheduler/service_class.h"
#include "workload/tpcc_workload.h"
#include "workload/tpch_workload.h"

namespace qsched::replay {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "qsched_replay_" + name;
}

std::vector<TraceRecord> RandomRecords(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<TraceRecord> records;
  records.reserve(n);
  uint64_t arrival = 0;
  for (size_t i = 0; i < n; ++i) {
    TraceRecord record;
    arrival += rng.NextU32() % 2000000;  // up to 2 ms apart
    record.arrival_ns = arrival;
    record.trace_id = i + 1;
    record.cost_timerons = static_cast<double>(rng.NextU32() % 100000);
    record.class_id = static_cast<uint16_t>(1 + rng.NextU32() % 3);
    record.template_id = static_cast<uint16_t>(
        record.class_id == 3 ? (kOltpTemplateBit | (rng.NextU32() % 5))
                             : (rng.NextU32() % 18));
    records.push_back(record);
  }
  return records;
}

Status WriteAll(const TraceWriterOptions& options,
                const std::vector<TraceRecord>& records,
                const TraceSummary* summary = nullptr) {
  Result<std::unique_ptr<TraceWriter>> opened = TraceWriter::Open(options);
  if (!opened.ok()) return opened.status();
  std::unique_ptr<TraceWriter> writer = std::move(opened).ValueOrDie();
  for (const TraceRecord& record : records) {
    Status appended = writer->Append(record);
    if (!appended.ok()) return appended;
  }
  if (summary != nullptr) {
    Status wrote = writer->WriteSummary(*summary);
    if (!wrote.ok()) return wrote;
  }
  return writer->Close();
}

TEST(ReplayTest, TraceRoundTripRandomized) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const size_t n = 100 + seed * 357;  // straddles segment boundaries
    const std::vector<TraceRecord> records = RandomRecords(n, seed);
    const std::string path =
        TempPath("roundtrip_" + std::to_string(seed) + ".bin");

    TraceWriterOptions options;
    options.path = path;
    options.records_per_segment = 128;
    options.header.time_scale = 60.0;
    options.header.seed = seed;
    TraceSummary summary;
    summary.control_interval_seconds = 15.0;
    summary.system_cost_limit = 300000.0;
    summary.total_utility = 6.25;
    summary.allocator = 1;
    summary.classes.push_back({1, 0.5, 0.42, 120000.0});
    summary.classes.push_back({3, 1.0, 0.125, 60000.0});
    ASSERT_TRUE(WriteAll(options, records, &summary).ok());

    Result<TraceReadResult> read = ReadTraceFile(path);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    const TraceReadResult& result = read.ValueOrDie();
    EXPECT_EQ(result.header.time_scale, 60.0);
    EXPECT_EQ(result.header.seed, seed);
    EXPECT_EQ(result.segments_corrupt, 0u);
    ASSERT_EQ(result.records.size(), records.size());
    for (size_t i = 0; i < records.size(); ++i) {
      EXPECT_TRUE(result.records[i] == records[i]) << "record " << i;
    }
    ASSERT_TRUE(result.has_summary);
    EXPECT_EQ(result.summary.control_interval_seconds, 15.0);
    EXPECT_EQ(result.summary.system_cost_limit, 300000.0);
    EXPECT_EQ(result.summary.total_utility, 6.25);
    EXPECT_EQ(result.summary.allocator, 1u);
    ASSERT_EQ(result.summary.classes.size(), 2u);
    EXPECT_EQ(result.summary.classes[1].class_id, 3u);
    EXPECT_EQ(result.summary.classes[1].measured, 0.125);
    std::remove(path.c_str());
  }
}

TEST(ReplayTest, RotationChainReadsAllFiles) {
  const std::vector<TraceRecord> records = RandomRecords(2000, 9);
  const std::string path = TempPath("rotate.bin");
  TraceWriterOptions options;
  options.path = path;
  options.records_per_segment = 100;
  options.rotate_bytes = 8 * 1024;  // forces several rotations
  ASSERT_TRUE(WriteAll(options, records).ok());

  // The base file alone holds only a prefix ...
  Result<TraceReadResult> base = ReadTraceFile(path);
  ASSERT_TRUE(base.ok());
  EXPECT_LT(base.ValueOrDie().records.size(), records.size());
  // ... the chain holds everything, in order.
  Result<TraceReadResult> chain = ReadTraceChain(path);
  ASSERT_TRUE(chain.ok());
  ASSERT_EQ(chain.ValueOrDie().records.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_TRUE(chain.ValueOrDie().records[i] == records[i]);
  }
  std::remove(path.c_str());
  for (int i = 1; i < 100; ++i) {
    if (std::remove((path + "." + std::to_string(i)).c_str()) != 0) break;
  }
}

TEST(ReplayTest, TruncatedFileRecoversIntactPrefix) {
  const std::vector<TraceRecord> records = RandomRecords(1000, 11);
  const std::string path = TempPath("truncated.bin");
  TraceWriterOptions options;
  options.path = path;
  options.records_per_segment = 100;
  ASSERT_TRUE(WriteAll(options, records).ok());

  // Chop the file mid-segment: the last partial segment is dropped, the
  // intact prefix survives, and the parse still succeeds.
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  const size_t cut = bytes.size() - bytes.size() / 3;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(cut));
  out.close();

  Result<TraceReadResult> read = ReadTraceFile(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  const TraceReadResult& result = read.ValueOrDie();
  EXPECT_GT(result.records.size(), 0u);
  EXPECT_LT(result.records.size(), records.size());
  EXPECT_EQ(result.records.size() % 100, 0u);  // whole segments only
  for (size_t i = 0; i < result.records.size(); ++i) {
    EXPECT_TRUE(result.records[i] == records[i]);
  }
  EXPECT_FALSE(result.has_summary);
  std::remove(path.c_str());
}

TEST(ReplayTest, CorruptSegmentSkippedOthersSurvive) {
  const std::vector<TraceRecord> records = RandomRecords(500, 13);
  const std::string path = TempPath("corrupt.bin");
  TraceWriterOptions options;
  options.path = path;
  options.records_per_segment = 100;
  ASSERT_TRUE(WriteAll(options, records).ok());

  // Flip one byte inside the payload of the middle segment (header is
  // 32 bytes; each segment is 20 + 100 * 28 bytes).
  const size_t segment_bytes = 20 + 100 * TraceRecord::kWireBytes;
  const size_t victim = 32 + 2 * segment_bytes + 20 + 57;
  std::fstream file(path,
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekg(static_cast<std::streamoff>(victim));
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5a);
  file.seekp(static_cast<std::streamoff>(victim));
  file.write(&byte, 1);
  file.close();

  Result<TraceReadResult> read = ReadTraceFile(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  const TraceReadResult& result = read.ValueOrDie();
  EXPECT_EQ(result.segments_corrupt, 1u);
  ASSERT_EQ(result.records.size(), records.size() - 100);
  // Records before and after the bad segment are intact.
  for (size_t i = 0; i < 200; ++i) {
    EXPECT_TRUE(result.records[i] == records[i]);
  }
  for (size_t i = 200; i < result.records.size(); ++i) {
    EXPECT_TRUE(result.records[i] == records[i + 100]);
  }
  std::remove(path.c_str());
}

TEST(ReplayTest, TemplateCodecRoundTrip) {
  workload::TpchWorkloadParams tpch;
  workload::TpccWorkloadParams tpcc;
  TemplateCodec codec(tpch, tpcc, 21);
  workload::TpchWorkload olap(tpch, 99);
  workload::TpccWorkload oltp(tpcc, 98);

  for (size_t i = 0; i < olap.num_templates(); ++i) {
    workload::Query query = olap.MakeFromTemplate(i);
    query.class_id = 1;
    const uint16_t id = codec.Encode(query);
    EXPECT_EQ(id, static_cast<uint16_t>(i));
    EXPECT_EQ(codec.TemplateName(id), query.template_name);
  }
  for (size_t i = 0; i < oltp.num_transaction_types(); ++i) {
    workload::Query query = oltp.MakeTransaction(i);
    query.class_id = 3;
    const uint16_t id = codec.Encode(query);
    EXPECT_EQ(id, static_cast<uint16_t>(i | kOltpTemplateBit));
    EXPECT_EQ(codec.TemplateName(id), query.template_name);
  }

  // Materialize restores the captured class and cost estimate.
  TraceRecord record;
  record.template_id = kOltpTemplateBit | 1;
  record.class_id = 3;
  record.cost_timerons = 777.0;
  workload::Query rebuilt = codec.Materialize(record);
  EXPECT_EQ(rebuilt.class_id, 3);
  EXPECT_EQ(rebuilt.cost_timerons, 777.0);
  EXPECT_EQ(rebuilt.template_name, "payment");
}

TEST(ReplayTest, CaptureUnderLoadConservation) {
  const std::string path = TempPath("capture.bin");
  obs::Telemetry telemetry;
  RecorderOptions options;
  options.writer.path = path;
  options.writer.header.time_scale = 60.0;
  // Small buffers + a slow sweep make overflow plausible; the invariant
  // must hold with or without drops.
  options.buffer_records = 512;
  options.flush_interval_seconds = 0.005;
  TraceRecorder recorder(options, &telemetry);
  ASSERT_TRUE(recorder.Start().ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&recorder, t] {
      workload::TpccWorkload gen(workload::TpccWorkloadParams{},
                                 static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kPerThread; ++i) {
        workload::Query query = gen.Next();
        query.class_id = 3;
        query.id = static_cast<uint64_t>(t) * kPerThread +
                   static_cast<uint64_t>(i);
        recorder.Record(query);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  ASSERT_TRUE(recorder.Stop().ok());

  const uint64_t offered =
      static_cast<uint64_t>(kThreads) * static_cast<uint64_t>(kPerThread);
  EXPECT_EQ(recorder.captured() + recorder.dropped(), offered);
  EXPECT_GT(recorder.captured(), 0u);

  // Every captured record — and only those — is on disk.
  Result<TraceReadResult> read = ReadTraceChain(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.ValueOrDie().records.size(), recorder.captured());
  EXPECT_EQ(read.ValueOrDie().segments_corrupt, 0u);

  // The metrics agree with the recorder's own accounting.
  EXPECT_EQ(telemetry.registry
                .GetCounter("qsched_replay_captured_records_total")
                ->value(),
            static_cast<double>(recorder.captured()));
  EXPECT_EQ(telemetry.registry
                .GetCounter("qsched_replay_dropped_records_total")
                ->value(),
            static_cast<double>(recorder.dropped()));
  std::remove(path.c_str());
}

TEST(ReplayTest, RecordAfterStopCountsDropped) {
  const std::string path = TempPath("afterstop.bin");
  RecorderOptions options;
  options.writer.path = path;
  TraceRecorder recorder(options);
  ASSERT_TRUE(recorder.Start().ok());
  workload::TpccWorkload gen(workload::TpccWorkloadParams{}, 5);
  workload::Query query = gen.Next();
  query.class_id = 3;
  recorder.Record(query);
  ASSERT_TRUE(recorder.Stop().ok());
  recorder.Record(query);  // late: must not be written, must not hang
  EXPECT_EQ(recorder.captured(), 1u);
  Result<TraceReadResult> read = ReadTraceChain(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.ValueOrDie().records.size(), 1u);
  std::remove(path.c_str());
}

TEST(ReplayTest, ReplayLoopbackConservation) {
  obs::Telemetry telemetry;
  rt::RuntimeOptions runtime_options;
  runtime_options.time_scale = 120.0;
  runtime_options.horizon_model_seconds = 7200.0;
  runtime_options.seed = 11;
  runtime_options.gateway.queue_capacity = 8192;
  runtime_options.telemetry = &telemetry;
  rt::Runtime runtime(sched::MakePaperClasses(), runtime_options);
  runtime.Start();
  net::Server server(&runtime.gateway(), net::ServerOptions{},
                     &telemetry);
  ASSERT_TRUE(server.Start().ok());

  // A synthetic OLTP burst: 400 transactions 0.5 ms apart.
  TraceReadResult trace;
  trace.header.time_scale = 120.0;
  for (int i = 0; i < 400; ++i) {
    TraceRecord record;
    record.arrival_ns = static_cast<uint64_t>(i) * 500000;
    record.trace_id = static_cast<uint64_t>(i) + 1;
    record.cost_timerons = 50.0;
    record.class_id = 3;
    record.template_id =
        static_cast<uint16_t>(kOltpTemplateBit | (i % 5));
    trace.records.push_back(record);
  }

  ReplayOptions options;
  options.host = "127.0.0.1";
  options.port = server.port();
  options.speed = 4.0;  // 0.2 s feed -> 50 ms
  options.connections = 2;
  options.seed = 17;
  Replayer replayer(trace, options, &telemetry);
  Result<ReplayReport> ran = replayer.Run();
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();
  const ReplayReport& report = ran.ValueOrDie();
  EXPECT_EQ(report.offered, 400u);
  EXPECT_EQ(report.offered, report.accepted + report.rejected());
  EXPECT_EQ(report.completed, report.accepted);
  EXPECT_EQ(report.lost, 0u);
  EXPECT_EQ(report.unmatched, 0u);
  EXPECT_TRUE(report.conserved());

  server.Stop();
  runtime.Shutdown();
}

TraceReadResult MixedTrace(size_t n) {
  TraceReadResult trace;
  trace.header.time_scale = 60.0;
  Rng rng(31);
  uint64_t arrival = 0;
  for (size_t i = 0; i < n; ++i) {
    TraceRecord record;
    arrival += 1000000 + rng.NextU32() % 4000000;
    record.arrival_ns = arrival;
    record.trace_id = i + 1;
    const uint32_t pick = rng.NextU32() % 100;
    if (pick < 6) {
      record.class_id = static_cast<uint16_t>(pick < 3 ? 1 : 2);
      record.template_id = static_cast<uint16_t>(rng.NextU32() % 18);
      record.cost_timerons = 5000.0 + (rng.NextU32() % 8) * 10000.0;
    } else {
      record.class_id = 3;
      record.template_id =
          static_cast<uint16_t>(kOltpTemplateBit | (rng.NextU32() % 5));
      record.cost_timerons = 40.0 + rng.NextU32() % 100;
    }
    trace.records.push_back(record);
  }
  trace.has_summary = true;
  trace.summary.control_interval_seconds = 15.0;
  trace.summary.system_cost_limit = 300000.0;
  trace.summary.allocator = 0;
  trace.summary.classes.push_back({1, 1.0, 0.55, 120000.0});
  trace.summary.classes.push_back({2, 0.5, 0.45, 120000.0});
  trace.summary.classes.push_back({3, 1.0, 0.08, 60000.0});
  return trace;
}

TEST(ReplayTest, WhatifDeterministicAcrossJobs) {
  const TraceReadResult trace = MixedTrace(600);
  ShadowPlannerOptions options;
  options.seed = 42;
  options.base.control_interval_seconds = 15.0;
  options.base.system_cost_limit = 300000.0;
  ShadowPlanner planner(trace, options);

  Result<std::vector<PlanCandidate>> parsed = ParsePlanCandidates(
      "base,interval=5,greedy,olap=20000", options.base,
      planner.classes());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::vector<PlanCandidate>& candidates = parsed.ValueOrDie();
  ASSERT_EQ(candidates.size(), 4u);
  EXPECT_TRUE(candidates[3].frozen_plan);

  const ShadowOutcome live = planner.LiveOutcome();
  const std::vector<ShadowOutcome> serial =
      planner.Evaluate(candidates, 1);
  const std::vector<ShadowOutcome> parallel =
      planner.Evaluate(candidates, 4);
  const std::string report_serial =
      ShadowPlanner::FormatReport(&live, serial);
  const std::string report_parallel =
      ShadowPlanner::FormatReport(&live, parallel);
  EXPECT_EQ(report_serial, report_parallel);

  // Every candidate ran the whole trace and produced class outcomes.
  for (const ShadowOutcome& outcome : serial) {
    EXPECT_EQ(outcome.completed + outcome.cancelled, trace.records.size())
        << outcome.name;
    EXPECT_EQ(outcome.classes.size(), 3u);
  }
  // The frozen olap=20000 plan must never replan.
  EXPECT_EQ(serial[3].planning_cycles, 0u);
  EXPECT_GT(serial[0].planning_cycles, 0u);
}

TEST(ReplayTest, ParsePlanCandidatesRejectsMalformed) {
  sched::QuerySchedulerConfig base;
  const sched::ServiceClassSet classes = sched::MakePaperClasses();
  EXPECT_FALSE(ParsePlanCandidates("", base, classes).ok());
  EXPECT_FALSE(ParsePlanCandidates("bogus", base, classes).ok());
  EXPECT_FALSE(ParsePlanCandidates("interval=abc", base, classes).ok());
  EXPECT_FALSE(ParsePlanCandidates("interval=-3", base, classes).ok());
  EXPECT_FALSE(ParsePlanCandidates("step=2", base, classes).ok());
  Result<std::vector<PlanCandidate>> ok = ParsePlanCandidates(
      "base,limit=250000+interval=7.5+greedy", base, classes);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.ValueOrDie()[1].config.system_cost_limit, 250000.0);
  EXPECT_EQ(ok.ValueOrDie()[1].config.control_interval_seconds, 7.5);
  EXPECT_EQ(ok.ValueOrDie()[1].config.allocator,
            sched::QuerySchedulerConfig::Allocator::kGreedyAuction);
}

}  // namespace
}  // namespace qsched::replay
