// Loopback lifecycle tests for the TCP front-end: connect/submit/
// complete, concurrent-connection stress, graceful shutdown with zero
// lost completions, malformed-frame injection, backpressure mapping and
// the connection cap. These run in the TSan and ASan gates (see
// tests/CMakeLists.txt), so the reactor/clock-thread handoff is checked
// for races and memory errors, not just behavior.

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net/server.h"
#include "obs/telemetry.h"
#include "rt/gateway.h"
#include "rt/runtime.h"
#include "rt/wall_clock.h"
#include "scheduler/service_class.h"
#include "workload/client.h"
#include "workload/tpcc_workload.h"

namespace qsched::net {
namespace {

/// Runtime + server harness with paper classes at a fast time scale, so
/// OLTP queries complete in milliseconds of wall time.
struct ServerHarness {
  explicit ServerHarness(int max_connections = 64, int reactors = 0)
      : runtime(sched::MakePaperClasses(), MakeRuntimeOptions()) {
    runtime.Start();
    ServerOptions options;
    options.max_connections = max_connections;
    options.reactors = reactors;
    server = std::make_unique<Server>(&runtime.gateway(), options,
                                      &telemetry);
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  ~ServerHarness() {
    server->Stop();
    runtime.Shutdown();
  }

  rt::RuntimeOptions MakeRuntimeOptions() {
    rt::RuntimeOptions options;
    options.time_scale = 120.0;
    options.horizon_model_seconds = 7200.0;
    options.seed = 11;
    options.gateway.queue_capacity = 8192;
    options.gateway.workers = 2;
    options.telemetry = &telemetry;
    return options;
  }

  obs::Telemetry telemetry;
  rt::Runtime runtime;
  std::unique_ptr<Server> server;
};

workload::Query NextOltp(workload::TpccWorkload* gen, int client_id) {
  workload::Query query = gen->Next();
  query.class_id = 3;
  query.client_id = client_id;
  return query;
}

TEST(NetTest, ConnectSubmitCompleteStats) {
  ServerHarness harness;
  Result<std::unique_ptr<Client>> connected =
      Client::Connect("127.0.0.1", harness.server->port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  std::unique_ptr<Client> client = std::move(connected).ValueOrDie();

  ASSERT_TRUE(client->Ping().ok());

  workload::TpccWorkload oltp(workload::TpccWorkloadParams{}, /*seed=*/3);
  constexpr int kQueries = 5;
  for (int i = 0; i < kQueries; ++i) {
    Result<Client::SubmitResult> verdict =
        client->Submit(NextOltp(&oltp, i));
    ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
    EXPECT_TRUE(verdict.ValueOrDie().accepted);
  }
  for (int i = 0; i < kQueries; ++i) {
    Result<ClientCompletion> completion = client->NextCompletion();
    ASSERT_TRUE(completion.ok()) << completion.status().ToString();
    EXPECT_EQ(completion.ValueOrDie().class_id, 3);
    EXPECT_GE(completion.ValueOrDie().response_seconds, 0.0);
    EXPECT_FALSE(completion.ValueOrDie().cancelled);
  }
  EXPECT_EQ(client->outstanding(), 0u);

  Result<WireStats> stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats.ValueOrDie().accepted, 5u);
  EXPECT_GE(stats.ValueOrDie().completed, 5u);
  EXPECT_GE(stats.ValueOrDie().connections, 1u);

  ASSERT_TRUE(client->Drain().ok());
  EXPECT_EQ(harness.server->submits_accepted(), 5u);
  EXPECT_EQ(harness.server->completions_delivered(), 5u);
  EXPECT_EQ(harness.server->completions_dropped(), 0u);
  EXPECT_EQ(harness.server->protocol_errors(), 0u);
}

// Pipelined submission: SUBMITs are queued client-side and flushed in
// one send(); verdicts come back in submission order and every accepted
// query still completes exactly once.
TEST(NetTest, PipelinedSubmissionConservesEveryQuery) {
  ServerHarness harness;
  Result<std::unique_ptr<Client>> connected =
      Client::Connect("127.0.0.1", harness.server->port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  std::unique_ptr<Client> client = std::move(connected).ValueOrDie();

  workload::TpccWorkload oltp(workload::TpccWorkloadParams{}, /*seed=*/12);
  constexpr int kQueries = 64;
  std::vector<uint64_t> ids;
  for (int i = 0; i < kQueries; ++i) {
    Result<uint64_t> rid = client->SubmitNoWait(NextOltp(&oltp, i));
    ASSERT_TRUE(rid.ok()) << rid.status().ToString();
    ids.push_back(rid.ValueOrDie());
  }
  EXPECT_EQ(client->verdicts_pending(), static_cast<size_t>(kQueries));
  ASSERT_TRUE(client->Flush().ok());

  uint64_t accepted = 0;
  for (int i = 0; i < kQueries; ++i) {
    Result<Client::SubmitResult> verdict = client->NextVerdict();
    ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
    EXPECT_EQ(verdict.ValueOrDie().request_id, ids[static_cast<size_t>(i)]);
    if (verdict.ValueOrDie().accepted) ++accepted;
  }
  EXPECT_EQ(accepted, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(client->verdicts_pending(), 0u);

  uint64_t received = 0;
  while (client->outstanding() > 0) {
    Result<Client::PolledCompletion> polled = client->PollCompletion(10.0);
    ASSERT_TRUE(polled.ok()) << polled.status().ToString();
    ASSERT_TRUE(polled.ValueOrDie().found);
    ++received;
  }
  EXPECT_EQ(received, accepted);
  ASSERT_TRUE(client->Drain().ok());
  EXPECT_EQ(harness.server->submits_accepted(), accepted);
  EXPECT_EQ(harness.server->completions_delivered(), accepted);
  EXPECT_EQ(harness.server->protocol_errors(), 0u);
}

TEST(NetTest, EightConnectionStressConservesEveryQuery) {
  ServerHarness harness;
  RemoteLoadOptions options;
  options.connections = 8;
  options.qps = 1600.0;
  options.duration_wall_seconds = 1.2;
  options.seed = 99;
  options.tpch_scale_factor = 0.05;
  RemoteLoadGenerator loadgen("127.0.0.1", harness.server->port(),
                              options, &harness.telemetry);
  Status run = loadgen.Run();
  ASSERT_TRUE(run.ok()) << run.ToString();

  EXPECT_GT(loadgen.offered(), 0u);
  EXPECT_EQ(loadgen.offered(), loadgen.accepted() +
                                   loadgen.rejected_queue_full() +
                                   loadgen.rejected_shutting_down());
  EXPECT_EQ(loadgen.completed(), loadgen.accepted());
  EXPECT_EQ(loadgen.lost_completions(), 0u);
  EXPECT_EQ(loadgen.unmatched_completions(), 0u);

  // Server-side view agrees: every accepted submission produced exactly
  // one COMPLETED on its originating, still-open connection.
  EXPECT_EQ(harness.server->submits_accepted(), loadgen.accepted());
  EXPECT_EQ(harness.server->completions_delivered(), loadgen.completed());
  EXPECT_EQ(harness.server->completions_dropped(), 0u);
  EXPECT_EQ(harness.server->connections_accepted(), 8u);
}

// The multi-reactor front-end under pipelined load: 8 connections dealt
// round-robin across 4 reactors, no query lost, duplicated or
// cross-wired between reactors.
TEST(NetTest, MultiReactorPipelinedStressConservesEveryQuery) {
  ServerHarness harness(/*max_connections=*/64, /*reactors=*/4);
  EXPECT_EQ(harness.server->reactors(), 4);

  RemoteLoadOptions options;
  options.connections = 8;
  options.qps = 4000.0;
  options.duration_wall_seconds = 1.2;
  options.seed = 77;
  options.tpch_scale_factor = 0.05;
  options.pipeline = true;
  options.max_outstanding = 64;
  RemoteLoadGenerator loadgen("127.0.0.1", harness.server->port(),
                              options, &harness.telemetry);
  Status run = loadgen.Run();
  ASSERT_TRUE(run.ok()) << run.ToString();

  EXPECT_GT(loadgen.offered(), 0u);
  EXPECT_EQ(loadgen.offered(), loadgen.accepted() +
                                   loadgen.rejected_queue_full() +
                                   loadgen.rejected_shutting_down());
  EXPECT_EQ(loadgen.completed(), loadgen.accepted());
  EXPECT_EQ(loadgen.lost_completions(), 0u);
  EXPECT_EQ(loadgen.unmatched_completions(), 0u);
  EXPECT_GT(loadgen.feed_seconds(), 0.0);

  EXPECT_EQ(harness.server->submits_accepted(), loadgen.accepted());
  EXPECT_EQ(harness.server->completions_delivered(), loadgen.completed());
  EXPECT_EQ(harness.server->completions_dropped(), 0u);
  EXPECT_EQ(harness.server->connections_accepted(), 8u);
}

// Drain-then-close across reactors: Stop() with completions in flight on
// every reactor still delivers each accepted query's COMPLETED.
TEST(NetTest, MultiReactorStopDeliversEveryAcceptedCompletion) {
  auto harness =
      std::make_unique<ServerHarness>(/*max_connections=*/64,
                                      /*reactors=*/3);
  constexpr int kClients = 6;
  constexpr int kPerClient = 20;

  std::vector<std::unique_ptr<Client>> clients;
  workload::TpccWorkload oltp(workload::TpccWorkloadParams{}, /*seed=*/15);
  uint64_t accepted = 0;
  for (int c = 0; c < kClients; ++c) {
    Result<std::unique_ptr<Client>> connected =
        Client::Connect("127.0.0.1", harness->server->port());
    ASSERT_TRUE(connected.ok()) << connected.status().ToString();
    clients.push_back(std::move(connected).ValueOrDie());
    for (int i = 0; i < kPerClient; ++i) {
      Result<uint64_t> rid =
          clients.back()->SubmitNoWait(NextOltp(&oltp, c));
      ASSERT_TRUE(rid.ok()) << rid.status().ToString();
    }
    ASSERT_TRUE(clients.back()->Flush().ok());
    while (clients.back()->verdicts_pending() > 0) {
      Result<Client::SubmitResult> verdict = clients.back()->NextVerdict();
      ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
      if (verdict.ValueOrDie().accepted) ++accepted;
    }
  }
  ASSERT_GT(accepted, 0u);

  harness->server->Stop();
  EXPECT_EQ(harness->server->submits_accepted(), accepted);
  EXPECT_EQ(harness->server->completions_delivered(), accepted);
  EXPECT_EQ(harness->server->completions_dropped(), 0u);

  uint64_t received = 0;
  for (auto& client : clients) {
    while (client->outstanding() > 0) {
      Result<Client::PolledCompletion> polled =
          client->PollCompletion(10.0);
      ASSERT_TRUE(polled.ok()) << polled.status().ToString();
      ASSERT_TRUE(polled.ValueOrDie().found);
      ++received;
    }
  }
  EXPECT_EQ(received, accepted);
}

// Each malformed probe is a fresh connection, so round-robin accept
// lands them on every reactor; none crashes, and every reactor still
// serves well-behaved clients afterwards.
TEST(NetTest, MalformedFramesSurviveOnEveryReactor) {
  ServerHarness harness(/*max_connections=*/64, /*reactors=*/4);
  Status injected = InjectMalformedFrames(
      "127.0.0.1", harness.server->port(), /*count=*/12, /*seed=*/6);
  EXPECT_TRUE(injected.ok()) << injected.ToString();
  EXPECT_GT(harness.server->protocol_errors(), 0u);

  for (int i = 0; i < 4; ++i) {
    Result<std::unique_ptr<Client>> connected =
        Client::Connect("127.0.0.1", harness.server->port());
    ASSERT_TRUE(connected.ok()) << connected.status().ToString();
    EXPECT_TRUE(connected.ValueOrDie()->Ping().ok());
  }
}

// The connection cap counts connections across all reactors, including
// accepted-but-not-yet-adopted hand-offs.
TEST(NetTest, ConnectionCapIsGlobalAcrossReactors) {
  ServerHarness harness(/*max_connections=*/2, /*reactors=*/3);
  std::vector<std::unique_ptr<Client>> keep;
  for (int i = 0; i < 2; ++i) {
    Result<std::unique_ptr<Client>> connected =
        Client::Connect("127.0.0.1", harness.server->port());
    ASSERT_TRUE(connected.ok()) << connected.status().ToString();
    ASSERT_TRUE(connected.ValueOrDie()->Ping().ok());
    keep.push_back(std::move(connected).ValueOrDie());
  }
  Result<std::unique_ptr<Client>> overflow =
      Client::Connect("127.0.0.1", harness.server->port());
  ASSERT_TRUE(overflow.ok()) << overflow.status().ToString();
  EXPECT_FALSE(overflow.ValueOrDie()->Ping().ok());
  EXPECT_GE(harness.server->connections_refused(), 1u);

  for (auto& client : keep) EXPECT_TRUE(client->Ping().ok());
}

TEST(NetTest, ShutdownWhileClientsConnectedLosesNoCompletions) {
  auto harness = std::make_unique<ServerHarness>();
  constexpr int kClients = 4;
  constexpr int kPerClient = 25;

  std::vector<std::unique_ptr<Client>> clients;
  workload::TpccWorkload oltp(workload::TpccWorkloadParams{}, /*seed=*/8);
  uint64_t accepted = 0;
  for (int c = 0; c < kClients; ++c) {
    Result<std::unique_ptr<Client>> connected =
        Client::Connect("127.0.0.1", harness->server->port());
    ASSERT_TRUE(connected.ok()) << connected.status().ToString();
    clients.push_back(std::move(connected).ValueOrDie());
    for (int i = 0; i < kPerClient; ++i) {
      Result<Client::SubmitResult> verdict =
          clients.back()->Submit(NextOltp(&oltp, c));
      ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
      if (verdict.ValueOrDie().accepted) ++accepted;
    }
  }
  ASSERT_GT(accepted, 0u);

  // Stop with completions still in flight and every client connected:
  // the drain-then-close contract says each accepted query's COMPLETED
  // is delivered (or at least flushed to the socket) before the close.
  harness->server->Stop();
  EXPECT_EQ(harness->server->submits_accepted(), accepted);
  EXPECT_EQ(harness->server->completions_delivered(), accepted);
  EXPECT_EQ(harness->server->completions_dropped(), 0u);

  // The clients can still read every buffered completion after the
  // server is gone.
  uint64_t received = 0;
  for (auto& client : clients) {
    while (client->outstanding() > 0) {
      Result<Client::PolledCompletion> polled =
          client->PollCompletion(10.0);
      ASSERT_TRUE(polled.ok()) << polled.status().ToString();
      ASSERT_TRUE(polled.ValueOrDie().found);
      ++received;
    }
  }
  EXPECT_EQ(received, accepted);
}

TEST(NetTest, MalformedFramesDoNotKillTheServer) {
  ServerHarness harness;
  Status injected = InjectMalformedFrames(
      "127.0.0.1", harness.server->port(), /*count=*/10, /*seed=*/5);
  EXPECT_TRUE(injected.ok()) << injected.ToString();
  EXPECT_GT(harness.server->protocol_errors(), 0u);

  // The server is still fully functional for well-behaved clients.
  Result<std::unique_ptr<Client>> connected =
      Client::Connect("127.0.0.1", harness.server->port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  std::unique_ptr<Client> client = std::move(connected).ValueOrDie();
  EXPECT_TRUE(client->Ping().ok());
  workload::TpccWorkload oltp(workload::TpccWorkloadParams{}, /*seed=*/4);
  Result<Client::SubmitResult> verdict = client->Submit(NextOltp(&oltp, 0));
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_TRUE(verdict.ValueOrDie().accepted);
  ASSERT_TRUE(client->NextCompletion().ok());
  ASSERT_TRUE(client->Drain().ok());
}

/// Frontend that never completes anything: queries vanish into it, so a
/// gateway with no workers keeps its queue exactly as the test fills it.
class BlackholeFrontend : public workload::QueryFrontend {
 public:
  void Submit(const workload::Query&, CompleteFn) override {}
};

TEST(NetTest, BackpressureMapsToQueueFullRejection) {
  // A gateway whose workers are never started: capacity 2 fills after
  // two accepts, deterministically forcing the queue-full path.
  rt::WallClock clock(rt::WallClock::Options{/*time_scale=*/1.0});
  BlackholeFrontend frontend;
  rt::GatewayOptions gateway_options;
  gateway_options.queue_capacity = 2;
  rt::Gateway gateway(&clock, &frontend, gateway_options);

  ServerOptions server_options;
  // Two accepted submissions never complete; don't wait for them.
  server_options.stop_drain_timeout_seconds = 0.2;
  obs::Telemetry telemetry;
  Server server(&gateway, server_options, &telemetry);
  ASSERT_TRUE(server.Start().ok());

  Result<std::unique_ptr<Client>> connected =
      Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  std::unique_ptr<Client> client = std::move(connected).ValueOrDie();

  workload::TpccWorkload oltp(workload::TpccWorkloadParams{}, /*seed=*/2);
  for (int i = 0; i < 2; ++i) {
    Result<Client::SubmitResult> verdict =
        client->Submit(NextOltp(&oltp, i));
    ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
    EXPECT_TRUE(verdict.ValueOrDie().accepted);
  }
  Result<Client::SubmitResult> verdict = client->Submit(NextOltp(&oltp, 2));
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_FALSE(verdict.ValueOrDie().accepted);
  EXPECT_EQ(verdict.ValueOrDie().reject_reason,
            rt::RejectReason::kQueueFull);
  EXPECT_EQ(gateway.rejected_queue_full(), 1u);
  EXPECT_EQ(server.submits_rejected(), 1u);
  EXPECT_EQ(telemetry.registry
                .GetCounter("qsched_net_submit_rejected_total",
                            "reason=\"queue_full\"")
                ->value(),
            1u);
  server.Stop();
}

TEST(NetTest, ConnectionCapRefusesTheOverflowConnection) {
  ServerHarness harness(/*max_connections=*/1);
  Result<std::unique_ptr<Client>> first =
      Client::Connect("127.0.0.1", harness.server->port());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(first.ValueOrDie()->Ping().ok());

  // The overflow connection is accepted at the TCP level and closed
  // immediately; its first round-trip fails.
  Result<std::unique_ptr<Client>> second =
      Client::Connect("127.0.0.1", harness.server->port());
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_FALSE(second.ValueOrDie()->Ping().ok());
  EXPECT_GE(harness.server->connections_refused(), 1u);

  // The in-cap connection is unaffected.
  EXPECT_TRUE(first.ValueOrDie()->Ping().ok());
}

}  // namespace
}  // namespace qsched::net
