#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace qsched::sim {
namespace {

TEST(SimulatorTest, FiresInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.ScheduleAt(3.0, [&] { order.push_back(3); });
  simulator.ScheduleAt(1.0, [&] { order.push_back(1); });
  simulator.ScheduleAt(2.0, [&] { order.push_back(2); });
  simulator.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(simulator.Now(), 3.0);
}

TEST(SimulatorTest, EqualTimesFireFifo) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    simulator.ScheduleAt(5.0, [&order, i] { order.push_back(i); });
  }
  simulator.RunToCompletion();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator simulator;
  double fired_at = -1.0;
  simulator.ScheduleAt(2.0, [&] {
    simulator.ScheduleAfter(3.0, [&] { fired_at = simulator.Now(); });
  });
  simulator.RunToCompletion();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(SimulatorTest, PastTimesClampToNow) {
  Simulator simulator;
  simulator.ScheduleAt(10.0, [] {});
  simulator.RunToCompletion();
  double fired_at = -1.0;
  simulator.ScheduleAt(1.0, [&] { fired_at = simulator.Now(); });
  simulator.RunToCompletion();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
}

TEST(SimulatorTest, NegativeDelayClampsToZero) {
  Simulator simulator;
  bool fired = false;
  simulator.ScheduleAfter(-5.0, [&] { fired = true; });
  simulator.RunToCompletion();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(simulator.Now(), 0.0);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator simulator;
  bool fired = false;
  EventId id = simulator.ScheduleAt(1.0, [&] { fired = true; });
  EXPECT_TRUE(simulator.Cancel(id));
  simulator.RunToCompletion();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelIsIdempotentAndChecked) {
  Simulator simulator;
  EventId id = simulator.ScheduleAt(1.0, [] {});
  EXPECT_TRUE(simulator.Cancel(id));
  EXPECT_FALSE(simulator.Cancel(id));
  EXPECT_FALSE(simulator.Cancel(0));
  EXPECT_FALSE(simulator.Cancel(99999));
}

TEST(SimulatorTest, CancelAfterFireReturnsFalse) {
  Simulator simulator;
  EventId id = simulator.ScheduleAt(1.0, [] {});
  simulator.RunToCompletion();
  EXPECT_FALSE(simulator.Cancel(id));
}

TEST(SimulatorTest, RunUntilAdvancesClockPastLastEvent) {
  Simulator simulator;
  int fired = 0;
  simulator.ScheduleAt(1.0, [&] { ++fired; });
  simulator.ScheduleAt(5.0, [&] { ++fired; });
  size_t processed = simulator.RunUntil(3.0);
  EXPECT_EQ(processed, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(simulator.Now(), 3.0);
  simulator.RunUntil(10.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(simulator.Now(), 10.0);
}

TEST(SimulatorTest, PendingEventsAccounting) {
  Simulator simulator;
  EventId a = simulator.ScheduleAt(1.0, [] {});
  simulator.ScheduleAt(2.0, [] {});
  EXPECT_EQ(simulator.pending_events(), 2u);
  simulator.Cancel(a);
  EXPECT_EQ(simulator.pending_events(), 1u);
  simulator.RunToCompletion();
  EXPECT_EQ(simulator.pending_events(), 0u);
  EXPECT_EQ(simulator.events_processed(), 1u);
}

TEST(SimulatorTest, CallbackMaySchedule) {
  Simulator simulator;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) simulator.ScheduleAfter(1.0, chain);
  };
  simulator.ScheduleAfter(1.0, chain);
  simulator.RunToCompletion();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(simulator.Now(), 100.0);
}

class SimulatorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimulatorPropertyTest, RandomOpsPreserveOrderingInvariant) {
  qsched::Rng rng(GetParam());
  Simulator simulator;
  std::vector<double> fire_times;
  std::vector<EventId> live;
  size_t scheduled = 0, cancelled = 0;
  for (int i = 0; i < 500; ++i) {
    double op = rng.NextDouble();
    if (op < 0.7 || live.empty()) {
      double when = rng.Uniform(0.0, 1000.0);
      live.push_back(simulator.ScheduleAt(
          when, [&fire_times, &simulator] {
            fire_times.push_back(simulator.Now());
          }));
      ++scheduled;
    } else {
      size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      if (simulator.Cancel(live[pick])) ++cancelled;
      live.erase(live.begin() + static_cast<long>(pick));
    }
  }
  simulator.RunToCompletion();
  EXPECT_EQ(fire_times.size(), scheduled - cancelled);
  for (size_t i = 1; i < fire_times.size(); ++i) {
    EXPECT_LE(fire_times[i - 1], fire_times[i]);
  }
  EXPECT_EQ(simulator.pending_events(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorPropertyTest,
                         ::testing::Range<uint64_t>(1, 11));

// Golden fire-order checksum captured on the pre-rewrite
// std::priority_queue simulator: an FNV-1a hash over the exact sequence
// of (fire-time bits, event tag) for a randomized schedule / cancel /
// reschedule workload. The 4-ary-heap rewrite must reproduce the event
// ordering bit-for-bit, so the checksum is invariant.
TEST(SimulatorTest, GoldenFireOrderMatchesPreRewriteSimulator) {
  uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (8 * i)) & 0xff;
      hash *= 1099511628211ull;
    }
  };
  qsched::Rng rng(2026);
  Simulator simulator;
  std::vector<EventId> live;
  int next_tag = 0;
  for (int i = 0; i < 5000; ++i) {
    double op = rng.NextDouble();
    if (op < 0.6 || live.empty()) {
      double when = rng.Uniform(0.0, 500.0);
      int tag = next_tag++;
      live.push_back(simulator.ScheduleAt(when, [&, tag] {
        uint64_t bits;
        double now = simulator.Now();
        std::memcpy(&bits, &now, 8);
        mix(bits);
        mix(static_cast<uint64_t>(tag));
        // A quarter of events reschedule themselves once, shifted.
        if (tag % 4 == 0) {
          int tag2 = tag + 1000000;
          simulator.ScheduleAfter(0.25 * (tag % 16), [&, tag2] {
            uint64_t b2;
            double n2 = simulator.Now();
            std::memcpy(&b2, &n2, 8);
            mix(b2);
            mix(static_cast<uint64_t>(tag2));
          });
        }
      }));
    } else {
      size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      simulator.Cancel(live[pick]);
      live.erase(live.begin() + static_cast<long>(pick));
    }
  }
  simulator.RunToCompletion();
  EXPECT_EQ(simulator.events_processed(), 1415u);
  EXPECT_EQ(hash, 11661479758305775742ull);
}

// Regression for the old lazy-cancel design, where a cancelled
// far-future event lingered in `cancelled_` / `pending_ids_` (and its
// callback's captures stayed alive) until it bubbled to the top of the
// heap. Cancelling must reclaim the slot immediately: 100k
// schedule/cancel cycles leave nothing pending and reuse one slot
// instead of growing storage.
TEST(SimulatorTest, CancelReclaimsSlotsImmediately) {
  Simulator simulator;
  for (int i = 0; i < 100000; ++i) {
    EventId id = simulator.ScheduleAt(1e9 + i, [] {});
    ASSERT_TRUE(simulator.Cancel(id));
  }
  EXPECT_EQ(simulator.pending_events(), 0u);
  EXPECT_EQ(simulator.slot_capacity(), 1u);

  // Same with a standing population: capacity tracks the high-water mark
  // of concurrently pending events, not the total scheduled.
  std::vector<EventId> batch;
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 100; ++i) {
      batch.push_back(simulator.ScheduleAt(1e9 + i, [] {}));
    }
    for (EventId id : batch) ASSERT_TRUE(simulator.Cancel(id));
    batch.clear();
  }
  EXPECT_EQ(simulator.pending_events(), 0u);
  EXPECT_LE(simulator.slot_capacity(), 100u);
}

TEST(SimulatorTest, StaleIdOnReusedSlotIsRejected) {
  Simulator simulator;
  EventId first = simulator.ScheduleAt(1.0, [] {});
  ASSERT_TRUE(simulator.Cancel(first));
  // The slot is reused for a new event under a fresh generation; the old
  // handle must not cancel the new event.
  bool fired = false;
  EventId second = simulator.ScheduleAt(2.0, [&] { fired = true; });
  EXPECT_FALSE(simulator.Cancel(first));
  simulator.RunToCompletion();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(simulator.Cancel(second));
}

TEST(EventFnTest, HoldsMoveOnlyCallable) {
  auto counter = std::make_unique<int>(0);
  int* raw = counter.get();
  EventFn fn = [boxed = std::move(counter)] { ++*boxed; };
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(*raw, 2);
}

TEST(EventFnTest, MovePreservesInlineState) {
  // Fits the 48-byte inline buffer: state moves with the EventFn.
  int hits = 0;
  std::array<char, 32> payload{};
  payload[0] = 7;
  EventFn a = [&hits, payload] { hits += payload[0]; };
  EventFn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT: moved-from is empty
  b();
  EXPECT_EQ(hits, 7);
  EventFn c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 14);
}

TEST(EventFnTest, LargeCapturesFallBackToHeapBox) {
  int hits = 0;
  std::array<char, 128> payload{};  // > kInlineCapacity
  payload[5] = 3;
  EventFn a = [&hits, payload] { hits += payload[5]; };
  EventFn b = std::move(a);
  b();
  EXPECT_EQ(hits, 3);
  b.Reset();
  EXPECT_FALSE(static_cast<bool>(b));
}

TEST(EventFnTest, DestroysCapturesOnReset) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    EventFn fn = [held = std::move(token)] { (void)held; };
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(WelfordTest, KnownValues) {
  WelfordAccumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(WelfordTest, EmptyIsZero) {
  WelfordAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(WelfordTest, MergeMatchesPooledStream) {
  qsched::Rng rng(5);
  WelfordAccumulator a, b, pooled;
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Normal(3.0, 2.0);
    if (i % 3 == 0) {
      a.Add(v);
    } else {
      b.Add(v);
    }
    pooled.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_NEAR(a.mean(), pooled.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), pooled.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), pooled.min());
  EXPECT_DOUBLE_EQ(a.max(), pooled.max());
}

TEST(WelfordTest, MergeWithEmpty) {
  WelfordAccumulator a, empty;
  a.Add(5.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(HistogramTest, MeanMinMaxExact) {
  Histogram histogram(0.001, 100.0);
  histogram.Add(1.0);
  histogram.Add(2.0);
  histogram.Add(3.0);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_DOUBLE_EQ(histogram.mean(), 2.0);
  EXPECT_DOUBLE_EQ(histogram.min(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 3.0);
}

TEST(HistogramTest, QuantilesMonotone) {
  Histogram histogram(0.001, 1000.0);
  qsched::Rng rng(31);
  for (int i = 0; i < 20000; ++i) histogram.Add(rng.LogNormal(0.0, 1.0));
  double prev = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    double value = histogram.Quantile(q);
    EXPECT_GE(value, prev);
    prev = value;
  }
}

TEST(HistogramTest, MedianApproximatesTrueMedian) {
  Histogram histogram(0.001, 1000.0, 40);
  qsched::Rng rng(37);
  for (int i = 0; i < 50000; ++i) histogram.Add(rng.LogNormal(0.0, 1.0));
  // Lognormal(0,1) median is 1.0.
  EXPECT_NEAR(histogram.Quantile(0.5), 1.0, 0.15);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram histogram(0.01, 10.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 0.0);
}

TEST(HistogramTest, OutOfRangeValuesClampIntoEndBuckets) {
  Histogram histogram(1.0, 10.0);
  histogram.Add(0.0001);
  histogram.Add(1e9);
  EXPECT_EQ(histogram.count(), 2u);
  EXPECT_GT(histogram.bucket_count(0), 0u);
  EXPECT_GT(histogram.bucket_count(histogram.num_buckets() - 1), 0u);
}

TEST(HistogramTest, ResetClears) {
  Histogram histogram(0.01, 10.0);
  histogram.Add(5.0);
  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.9), 0.0);
}

TEST(TimeSeriesTest, AppendAndWindows) {
  TimeSeries series;
  series.Append(1.0, 10.0);
  series.Append(2.0, 20.0);
  series.Append(3.0, 30.0);
  EXPECT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series.MeanInWindow(1.0, 3.0), 15.0);
  EXPECT_DOUBLE_EQ(series.MeanInWindow(0.0, 10.0), 20.0);
  EXPECT_DOUBLE_EQ(series.MeanInWindow(5.0, 6.0), 0.0);
}

TEST(TimeSeriesTest, LastBefore) {
  TimeSeries series;
  series.Append(1.0, 10.0);
  series.Append(5.0, 50.0);
  EXPECT_DOUBLE_EQ(series.LastBefore(3.0, -1.0), 10.0);
  EXPECT_DOUBLE_EQ(series.LastBefore(6.0, -1.0), 50.0);
  EXPECT_DOUBLE_EQ(series.LastBefore(0.5, -1.0), -1.0);
}

TEST(PercentileTest, ExactOnSmallSample) {
  std::vector<double> values = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(Percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 0.25), 2.0);
}

TEST(PercentileTest, InterpolatesBetweenOrderStats) {
  std::vector<double> values = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(values, 0.5), 5.0);
}

TEST(PercentileTest, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(Percentile({}, 0.5), 0.0);
}

}  // namespace
}  // namespace qsched::sim
