// Unit tests for the QueryScheduler facade itself (the integration and
// harness tests cover it end-to-end; these pin down its plumbing).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/execution_engine.h"
#include "scheduler/query_scheduler.h"
#include "sim/simulator.h"

namespace qsched::sched {
namespace {

workload::Query MakeOlap(uint64_t id, int class_id, double cost) {
  workload::Query query;
  query.id = id;
  query.class_id = class_id;
  query.type = workload::WorkloadType::kOlap;
  query.cost_timerons = cost;
  query.job.query_id = id;
  query.job.cpu_seconds = 0.1;
  query.job.logical_pages = 2000.0;
  query.job.hit_ratio = 0.3;
  return query;
}

workload::Query MakeOltp(uint64_t id, int client_id) {
  workload::Query query;
  query.id = id;
  query.class_id = 3;
  query.client_id = client_id;
  query.type = workload::WorkloadType::kOltp;
  query.cost_timerons = 20.0;
  query.job.query_id = id;
  query.job.database = engine::DatabaseId::kOltp;
  query.job.cpu_seconds = 0.01;
  query.job.logical_pages = 50.0;
  query.job.hit_ratio = 0.9;
  return query;
}

class QuerySchedulerTest : public ::testing::Test {
 protected:
  QuerySchedulerTest()
      : engine_(&simulator_, engine::EngineConfig(), Rng(5)),
        classes_(MakePaperClasses()) {}

  std::unique_ptr<QueryScheduler> Make(QuerySchedulerConfig config) {
    config.system_cost_limit = 300000.0;
    return std::make_unique<QueryScheduler>(&simulator_, &engine_,
                                            &classes_, config);
  }

  sim::Simulator simulator_;
  engine::ExecutionEngine engine_;
  ServiceClassSet classes_;
};

TEST_F(QuerySchedulerTest, InitialPlanSumsToSystemLimit) {
  auto qs = Make(QuerySchedulerConfig());
  EXPECT_NEAR(qs->current_plan().Total(), 300000.0, 1.0);
  for (int id : {1, 2, 3}) {
    EXPECT_GT(qs->current_plan().LimitFor(id), 0.0);
  }
}

TEST_F(QuerySchedulerTest, OltpBypassesInterception) {
  auto qs = Make(QuerySchedulerConfig());
  bool done = false;
  qs->Submit(MakeOltp(1, 0), [&](const workload::QueryRecord& record) {
    done = true;
    // No interception: execution starts at submission time.
    EXPECT_DOUBLE_EQ(record.exec_start_time, record.submit_time);
  });
  simulator_.RunToCompletion();
  EXPECT_TRUE(done);
  EXPECT_EQ(qs->interceptor().intercepted_total(), 0u);
  EXPECT_EQ(qs->interceptor().bypassed_total(), 1u);
}

TEST_F(QuerySchedulerTest, OlapIsInterceptedAndDispatched) {
  auto qs = Make(QuerySchedulerConfig());
  bool done = false;
  qs->Submit(MakeOlap(2, 1, 1000.0),
             [&](const workload::QueryRecord& record) {
               done = true;
               EXPECT_GE(record.exec_start_time, 0.35);
             });
  simulator_.RunToCompletion();
  EXPECT_TRUE(done);
  EXPECT_EQ(qs->interceptor().intercepted_total(), 1u);
}

TEST_F(QuerySchedulerTest, DirectModeInterceptsOltpCheaply) {
  QuerySchedulerConfig config;
  config.control_oltp_directly = true;
  config.interceptor.oltp_interception_delay_seconds = 0.002;
  auto qs = Make(config);
  bool done = false;
  qs->Submit(MakeOltp(3, 0), [&](const workload::QueryRecord& record) {
    done = true;
    EXPECT_GE(record.exec_start_time, 0.002);
    EXPECT_LT(record.exec_start_time, 0.05);
  });
  simulator_.RunToCompletion();
  EXPECT_TRUE(done);
  EXPECT_EQ(qs->interceptor().intercepted_total(), 1u);
}

TEST_F(QuerySchedulerTest, PlanningCyclesRunOnSchedule) {
  QuerySchedulerConfig config;
  config.control_interval_seconds = 50.0;
  auto qs = Make(config);
  qs->Start(400.0);
  simulator_.RunUntil(400.0);
  EXPECT_EQ(qs->planning_cycles(), 8u);
  // Every plan decision was recorded for all three classes.
  EXPECT_EQ(qs->limit_history().at(1).size(), 8u);
  EXPECT_EQ(qs->limit_history().at(3).size(), 8u);
}

TEST_F(QuerySchedulerTest, PlansAlwaysSumToLimitAfterRateLimiting) {
  QuerySchedulerConfig config;
  config.control_interval_seconds = 30.0;
  auto qs = Make(config);
  qs->Start(600.0);
  // Drive some load so measurements move.
  for (int i = 0; i < 8; ++i) {
    qs->Submit(MakeOlap(100 + i, 1 + i % 2, 30000.0),
               [](const workload::QueryRecord&) {});
    qs->Submit(MakeOltp(200 + i, i), [](const workload::QueryRecord&) {});
  }
  simulator_.RunUntil(600.0);
  const auto& h1 = qs->limit_history().at(1);
  const auto& h2 = qs->limit_history().at(2);
  const auto& h3 = qs->limit_history().at(3);
  for (size_t i = 0; i < h1.size(); ++i) {
    EXPECT_NEAR(h1.at(i).value + h2.at(i).value + h3.at(i).value,
                300000.0, 1.0);
  }
}

TEST_F(QuerySchedulerTest, ArrivalsFeedWorkloadDetector) {
  auto qs = Make(QuerySchedulerConfig());
  for (int i = 0; i < 5; ++i) {
    qs->Submit(MakeOltp(300 + i, i), [](const workload::QueryRecord&) {});
  }
  EXPECT_EQ(qs->workload_detector().arrivals_total(), 5u);
}

TEST_F(QuerySchedulerTest, MeasurementsStartAtGoals) {
  auto qs = Make(QuerySchedulerConfig());
  EXPECT_DOUBLE_EQ(qs->measurements().at(1), 0.4);
  EXPECT_DOUBLE_EQ(qs->measurements().at(2), 0.6);
  EXPECT_DOUBLE_EQ(qs->measurements().at(3), 0.25);
}

}  // namespace
}  // namespace qsched::sched
