// Tests for the extension layers: open-loop arrivals, replicated
// experiments, and proactive planning wiring.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/experiment.h"
#include "harness/replication.h"
#include "harness/report.h"
#include "metrics/period_collector.h"
#include "workload/open_loop.h"
#include "workload/tpcc_workload.h"

namespace qsched {
namespace {

class CountingFrontend : public workload::QueryFrontend {
 public:
  explicit CountingFrontend(sim::Simulator* simulator)
      : simulator_(simulator) {}

  void Submit(const workload::Query& query, CompleteFn on_complete)
      override {
    ++submitted_;
    workload::QueryRecord record;
    record.query_id = query.id;
    record.class_id = query.class_id;
    record.type = query.type;
    record.submit_time = simulator_->Now();
    record.exec_start_time = simulator_->Now();
    simulator_->ScheduleAfter(
        0.05, [this, record, on_complete = std::move(on_complete)]() mutable {
          record.end_time = simulator_->Now();
          on_complete(record);
        });
  }

  int submitted() const { return submitted_; }

 private:
  sim::Simulator* simulator_;
  int submitted_ = 0;
};

TEST(OpenLoopSourceTest, ArrivalRateMatchesSchedule) {
  sim::Simulator simulator;
  workload::WorkloadSchedule schedule(200.0, {1});
  schedule.AddPeriod({4});   // 4 virtual clients
  schedule.AddPeriod({0});   // silence
  CountingFrontend frontend(&simulator);
  workload::TpccWorkload generator(workload::TpccWorkloadParams(), 3);
  int completions = 0;
  workload::OpenLoopSource source(
      &simulator, &schedule, 1, &generator, &frontend,
      [&completions](const workload::QueryRecord&) { ++completions; },
      /*per_client_rate_per_second=*/0.5, /*seed=*/11);
  source.Start();
  simulator.RunToCompletion();
  // Expected arrivals: 4 clients * 0.5/s * 200 s = 400 in period 1,
  // none in period 2. Poisson, so allow a wide band.
  EXPECT_GT(frontend.submitted(), 320);
  EXPECT_LT(frontend.submitted(), 480);
  EXPECT_EQ(source.queries_submitted(),
            static_cast<uint64_t>(frontend.submitted()));
  EXPECT_EQ(source.queries_outstanding(), 0u);
  EXPECT_EQ(completions, frontend.submitted());
}

TEST(OpenLoopSourceTest, ZeroRateSubmitsNothing) {
  sim::Simulator simulator;
  workload::WorkloadSchedule schedule(50.0, {1});
  schedule.AddPeriod({0});
  CountingFrontend frontend(&simulator);
  workload::TpccWorkload generator(workload::TpccWorkloadParams(), 3);
  workload::OpenLoopSource source(&simulator, &schedule, 1, &generator,
                                  &frontend, nullptr, 1.0, 5);
  source.Start();
  simulator.RunToCompletion();
  EXPECT_EQ(frontend.submitted(), 0);
}

TEST(OpenLoopSourceTest, DeterministicForSeed) {
  auto run = [] {
    sim::Simulator simulator;
    workload::WorkloadSchedule schedule(100.0, {1});
    schedule.AddPeriod({2});
    CountingFrontend frontend(&simulator);
    workload::TpccWorkload generator(workload::TpccWorkloadParams(), 3);
    workload::OpenLoopSource source(&simulator, &schedule, 1, &generator,
                                    &frontend, nullptr, 0.3, 77);
    source.Start();
    simulator.RunToCompletion();
    return frontend.submitted();
  };
  EXPECT_EQ(run(), run());
}

harness::ExperimentConfig TinyConfig() {
  harness::ExperimentConfig config;
  workload::WorkloadSchedule schedule(120.0, {1, 2, 3});
  schedule.AddPeriod({2, 2, 10});
  schedule.AddPeriod({2, 3, 15});
  config.schedule = schedule;
  return config;
}

TEST(ReplicationTest, AggregatesAcrossSeeds) {
  harness::ReplicatedResult result = harness::RunReplicated(
      TinyConfig(), harness::ControllerKind::kNoControl, 3);
  EXPECT_EQ(result.replications, 3);
  EXPECT_EQ(result.runs.size(), 3u);
  EXPECT_EQ(result.num_periods, 2);
  ASSERT_EQ(result.velocity.at(1).mean.size(), 2u);
  ASSERT_EQ(result.response.at(3).stddev.size(), 2u);
  // Different seeds actually produce different trajectories.
  bool any_spread = false;
  for (double sd : result.response.at(3).stddev) {
    if (sd > 0.0) any_spread = true;
  }
  EXPECT_TRUE(any_spread);
  // Mean of per-run values matches the summary.
  double manual = 0.0;
  for (const auto& run : result.runs) {
    manual += run.response_series.at(3)[0];
  }
  manual /= 3.0;
  EXPECT_NEAR(result.response.at(3).mean[0], manual, 1e-12);
  EXPECT_GE(result.goal_periods_mean.at(3), 0.0);
  EXPECT_LE(result.goal_periods_mean.at(3), 2.0);
}

TEST(ReplicationTest, ZeroReplicationsSafe) {
  harness::ReplicatedResult result = harness::RunReplicated(
      TinyConfig(), harness::ControllerKind::kNoControl, 0);
  EXPECT_EQ(result.runs.size(), 0u);
  EXPECT_EQ(result.num_periods, 0);
}

TEST(TraceCaptureTest, RecordsEveryCompletion) {
  harness::ExperimentConfig config = TinyConfig();
  config.capture_trace = true;
  harness::ExperimentResult result = harness::RunExperiment(
      config, harness::ControllerKind::kNoControl);
  ASSERT_NE(result.trace, nullptr);
  EXPECT_EQ(result.trace->size() + result.trace->dropped(),
            result.total_completed);
  EXPECT_GT(result.trace->size(), 0u);
}

TEST(TraceCaptureTest, OffByDefault) {
  harness::ExperimentConfig config = TinyConfig();
  harness::ExperimentResult result = harness::RunExperiment(
      config, harness::ControllerKind::kNoControl);
  EXPECT_EQ(result.trace, nullptr);
}

TEST(ReportTest, PrintsPeriodTableAndSummary) {
  harness::ExperimentConfig config = TinyConfig();
  harness::ExperimentResult result = harness::RunExperiment(
      config, harness::ControllerKind::kQueryScheduler);
  std::ostringstream out;
  harness::ReportOptions options;
  options.cost_limits = true;
  harness::PrintPerformanceReport(result, sched::MakePaperClasses(),
                                  options, out);
  std::string text = out.str();
  EXPECT_NE(text.find("class1_vel"), std::string::npos);
  EXPECT_NE(text.find("class3_resp_s"), std::string::npos);
  EXPECT_NE(text.find("class3_limit"), std::string::npos);
  EXPECT_NE(text.find("periods_meeting_goal"), std::string::npos);
  EXPECT_NE(text.find("cpu_util"), std::string::npos);
}

TEST(ProactivePlanningTest, RunsAndKeepsSaneBehaviour) {
  harness::ExperimentConfig config = TinyConfig();
  config.qs.proactive_planning = true;
  harness::ExperimentResult result = harness::RunExperiment(
      config, harness::ControllerKind::kQueryScheduler);
  EXPECT_GT(result.overall_completed.at(3), 100);
  for (int cls : {1, 2}) {
    for (double v : result.velocity_series.at(cls)) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

}  // namespace
}  // namespace qsched
