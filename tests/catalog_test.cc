#include <gtest/gtest.h>

#include "catalog/schema.h"

namespace qsched::catalog {
namespace {

Table MakeSmallTable() {
  return Table("t", 1000,
               {Column{"id", ColumnType::kInt32, 4, 1000},
                Column{"name", ColumnType::kVarchar, 20, 900}});
}

TEST(TableTest, RowBytesIncludesOverhead) {
  Table table = MakeSmallTable();
  EXPECT_EQ(table.row_bytes(), 4 + 20 + 8);
}

TEST(TableTest, PageCountRoundsUp) {
  Table table = MakeSmallTable();
  // 4096 / 32 = 128 rows per page -> ceil(1000/128) = 8 pages.
  EXPECT_EQ(table.PageCount(4096), 8u);
  EXPECT_EQ(table.PageCount(0), 0u);
}

TEST(TableTest, PageCountWideRowsAtLeastOneRowPerPage) {
  Table table("wide", 10,
              {Column{"blob", ColumnType::kVarchar, 100000, 10}});
  EXPECT_EQ(table.PageCount(4096), 10u);
}

TEST(TableTest, FindColumn) {
  Table table = MakeSmallTable();
  ASSERT_NE(table.FindColumn("name"), nullptr);
  EXPECT_EQ(table.FindColumn("name")->width_bytes, 20);
  EXPECT_EQ(table.FindColumn("nope"), nullptr);
}

TEST(TableTest, IndexLookup) {
  Table table = MakeSmallTable();
  table.AddIndex(Index{"pk", "id", true, 2});
  ASSERT_NE(table.FindIndexOn("id"), nullptr);
  EXPECT_TRUE(table.FindIndexOn("id")->unique);
  EXPECT_EQ(table.FindIndexOn("name"), nullptr);
  EXPECT_EQ(table.indexes().size(), 1u);
}

TEST(CatalogTest, AddAndFind) {
  Catalog catalog("db");
  EXPECT_TRUE(catalog.AddTable(MakeSmallTable()).ok());
  EXPECT_NE(catalog.FindTable("t"), nullptr);
  EXPECT_EQ(catalog.FindTable("missing"), nullptr);
  EXPECT_EQ(catalog.num_tables(), 1u);
}

TEST(CatalogTest, DuplicateTableRejected) {
  Catalog catalog("db");
  EXPECT_TRUE(catalog.AddTable(MakeSmallTable()).ok());
  Status status = catalog.AddTable(MakeSmallTable());
  EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, MutableAccessUpdatesStats) {
  Catalog catalog("db");
  catalog.AddTable(MakeSmallTable());
  catalog.FindMutableTable("t")->set_row_count(5000);
  EXPECT_EQ(catalog.FindTable("t")->row_count(), 5000u);
}

TEST(CatalogTest, TotalPagesSumsTables) {
  Catalog catalog("db");
  catalog.AddTable(MakeSmallTable());
  Table other("u", 1000,
              {Column{"id", ColumnType::kInt32, 4, 1000},
               Column{"name", ColumnType::kVarchar, 20, 900}});
  catalog.AddTable(std::move(other));
  EXPECT_EQ(catalog.TotalPages(4096), 16u);
}

TEST(TpchCatalogTest, HasAllEightTables) {
  Catalog catalog = MakeTpchCatalog(1.0);
  EXPECT_EQ(catalog.num_tables(), 8u);
  for (const char* name :
       {"lineitem", "orders", "customer", "part", "partsupp", "supplier",
        "nation", "region"}) {
    EXPECT_NE(catalog.FindTable(name), nullptr) << name;
  }
}

TEST(TpchCatalogTest, RowCountsScaleLinearly) {
  Catalog sf1 = MakeTpchCatalog(1.0);
  Catalog sf_half = MakeTpchCatalog(0.5);
  EXPECT_EQ(sf1.FindTable("lineitem")->row_count(), 6000000u);
  EXPECT_EQ(sf_half.FindTable("lineitem")->row_count(), 3000000u);
  EXPECT_EQ(sf_half.FindTable("orders")->row_count(), 750000u);
  // Fixed-size tables do not scale.
  EXPECT_EQ(sf_half.FindTable("nation")->row_count(), 25u);
  EXPECT_EQ(sf_half.FindTable("region")->row_count(), 5u);
}

TEST(TpchCatalogTest, PaperScaleIsHalfGigabyte) {
  Catalog catalog = MakeTpchCatalog(0.5);
  uint64_t pages = catalog.TotalPages(4096);
  double megabytes = pages * 4096.0 / 1e6;
  // The stored size (with per-row overhead) lands near the 500 MB the
  // paper used; accept a generous band.
  EXPECT_GT(megabytes, 350.0);
  EXPECT_LT(megabytes, 900.0);
}

TEST(TpchCatalogTest, NonPositiveScaleFallsBackToOne) {
  Catalog catalog = MakeTpchCatalog(0.0);
  EXPECT_EQ(catalog.FindTable("lineitem")->row_count(), 6000000u);
}

TEST(TpchCatalogTest, KeyIndexesExist) {
  Catalog catalog = MakeTpchCatalog(0.5);
  EXPECT_NE(catalog.FindTable("orders")->FindIndexOn("o_orderkey"),
            nullptr);
  EXPECT_NE(catalog.FindTable("customer")->FindIndexOn("c_custkey"),
            nullptr);
}

TEST(TpccCatalogTest, HasAllNineTables) {
  Catalog catalog = MakeTpccCatalog(50);
  EXPECT_EQ(catalog.num_tables(), 9u);
  for (const char* name :
       {"warehouse", "district", "customer", "history", "new_order",
        "orders", "order_line", "item", "stock"}) {
    EXPECT_NE(catalog.FindTable(name), nullptr) << name;
  }
}

TEST(TpccCatalogTest, CardinalitiesScaleWithWarehouses) {
  Catalog catalog = MakeTpccCatalog(50);
  EXPECT_EQ(catalog.FindTable("warehouse")->row_count(), 50u);
  EXPECT_EQ(catalog.FindTable("district")->row_count(), 500u);
  EXPECT_EQ(catalog.FindTable("customer")->row_count(), 1500000u);
  EXPECT_EQ(catalog.FindTable("stock")->row_count(), 5000000u);
  // item is fixed at 100K regardless of warehouses.
  EXPECT_EQ(catalog.FindTable("item")->row_count(), 100000u);
  EXPECT_EQ(MakeTpccCatalog(1).FindTable("item")->row_count(), 100000u);
}

TEST(TpccCatalogTest, NonPositiveWarehousesClampToOne) {
  Catalog catalog = MakeTpccCatalog(0);
  EXPECT_EQ(catalog.FindTable("warehouse")->row_count(), 1u);
}

}  // namespace
}  // namespace qsched::catalog
