// Parameterized sweeps over every workload template: each of the 18
// TPC-H-like queries and 5 TPC-C-like transactions must individually
// produce well-formed, sanely-sized work.
#include <gtest/gtest.h>

#include "workload/tpcc_workload.h"
#include "workload/tpch_workload.h"

namespace qsched::workload {
namespace {

class TpchTemplateSweep : public ::testing::TestWithParam<size_t> {
 protected:
  TpchTemplateSweep() : workload_(TpchWorkloadParams(), 1234) {}
  TpchWorkload workload_;
};

TEST_P(TpchTemplateSweep, ProducesWellFormedQueries) {
  size_t index = GetParam();
  for (int draw = 0; draw < 10; ++draw) {
    Query q = workload_.MakeFromTemplate(index);
    EXPECT_EQ(q.template_name, workload_.template_name(index));
    EXPECT_EQ(q.type, WorkloadType::kOlap);
    // Costs land inside the band the control plane is calibrated for.
    EXPECT_GT(q.cost_timerons, 100.0) << q.template_name;
    EXPECT_LT(q.cost_timerons, 500000.0) << q.template_name;
    // Demand is OLAP-shaped: I/O heavy, CPU present but secondary.
    EXPECT_GT(q.job.logical_pages, 100.0) << q.template_name;
    EXPECT_GT(q.job.cpu_seconds, 0.0) << q.template_name;
    EXPECT_LT(q.job.cpu_seconds, 120.0) << q.template_name;
    EXPECT_GE(q.job.hit_ratio, 0.0);
    EXPECT_LE(q.job.hit_ratio, 1.0);
    EXPECT_GE(q.job.write_pages, 0.0);
  }
}

TEST_P(TpchTemplateSweep, SelectivityRandomizationVariesCost) {
  size_t index = GetParam();
  double first = workload_.MakeFromTemplate(index).cost_timerons;
  bool varied = false;
  for (int draw = 0; draw < 20 && !varied; ++draw) {
    varied = workload_.MakeFromTemplate(index).cost_timerons != first;
  }
  // Every template randomizes its parameters (noise sigma > 0 at least).
  EXPECT_TRUE(varied) << workload_.template_name(index);
}

INSTANTIATE_TEST_SUITE_P(AllTemplates, TpchTemplateSweep,
                         ::testing::Range<size_t>(0, 18));

class TpccTransactionSweep : public ::testing::TestWithParam<size_t> {
 protected:
  TpccTransactionSweep() : workload_(TpccWorkloadParams(), 99) {}
  TpccWorkload workload_;
};

TEST_P(TpccTransactionSweep, ProducesOltpShapedTransactions) {
  size_t index = GetParam();
  for (int draw = 0; draw < 20; ++draw) {
    Query q = workload_.MakeTransaction(index);
    EXPECT_EQ(q.template_name, workload_.transaction_name(index));
    EXPECT_EQ(q.type, WorkloadType::kOltp);
    // Sub-second work, tiny cost relative to any OLAP query.
    EXPECT_GT(q.cost_timerons, 0.0) << q.template_name;
    EXPECT_LT(q.cost_timerons, 1000.0) << q.template_name;
    EXPECT_LT(q.job.cpu_seconds, 0.2) << q.template_name;
    EXPECT_LT(q.job.logical_pages, 2000.0) << q.template_name;
    EXPECT_GT(q.job.hit_ratio, 0.5) << q.template_name;
  }
}

TEST_P(TpccTransactionSweep, WriteTransactionsWritePages) {
  size_t index = GetParam();
  const std::string& name = workload_.transaction_name(index);
  Query q = workload_.MakeTransaction(index);
  if (name == "new_order" || name == "payment" || name == "delivery") {
    EXPECT_GT(q.job.write_pages, 0.0) << name;
  } else {
    EXPECT_DOUBLE_EQ(q.job.write_pages, 0.0) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTransactions, TpccTransactionSweep,
                         ::testing::Range<size_t>(0, 5));

}  // namespace
}  // namespace qsched::workload
