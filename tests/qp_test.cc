#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "qp/control_table.h"
#include "qp/interceptor.h"
#include "qp/qp_controller.h"
#include "sim/simulator.h"

namespace qsched::qp {
namespace {

workload::Query MakeQuery(uint64_t id, int class_id, double cost,
                          workload::WorkloadType type =
                              workload::WorkloadType::kOlap) {
  workload::Query query;
  query.id = id;
  query.class_id = class_id;
  query.type = type;
  query.cost_timerons = cost;
  query.job.query_id = id;
  query.job.cpu_seconds = 0.05;
  query.job.logical_pages = 100.0;
  query.job.hit_ratio = 0.5;
  query.job.database = type == workload::WorkloadType::kOlap
                           ? engine::DatabaseId::kOlap
                           : engine::DatabaseId::kOltp;
  return query;
}

TEST(ControlTableTest, LifecycleStateMachine) {
  ControlTable table;
  QueryInfoRecord record;
  record.query_id = 1;
  record.class_id = 2;
  record.cost_timerons = 100.0;
  record.intercept_time = 1.0;
  ASSERT_TRUE(table.Insert(record).ok());
  EXPECT_EQ(table.Insert(record).code(), StatusCode::kAlreadyExists);

  EXPECT_EQ(table.QueuedCount(2), 1);
  EXPECT_EQ(table.RunningCount(2), 0);

  ASSERT_TRUE(table.MarkReleased(1, 2.0).ok());
  EXPECT_EQ(table.MarkReleased(1, 2.0).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(table.RunningCount(2), 1);
  EXPECT_DOUBLE_EQ(table.RunningCost(2), 100.0);
  EXPECT_DOUBLE_EQ(table.RunningCost(-1), 100.0);
  EXPECT_DOUBLE_EQ(table.RunningCost(3), 0.0);

  ASSERT_TRUE(table.MarkDone(1, 5.0).ok());
  EXPECT_EQ(table.RunningCount(2), 0);
  std::optional<QueryInfoRecord> row = table.Find(1);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->state, QueryState::kDone);
  EXPECT_DOUBLE_EQ(row->release_time, 2.0);
  EXPECT_DOUBLE_EQ(row->end_time, 5.0);
}

TEST(ControlTableTest, MissingQueryErrors) {
  ControlTable table;
  EXPECT_EQ(table.MarkReleased(9, 1.0).code(), StatusCode::kNotFound);
  EXPECT_EQ(table.MarkDone(9, 1.0).code(), StatusCode::kNotFound);
  EXPECT_FALSE(table.Find(9).has_value());
}

TEST(ControlTableTest, DoneWindowAndPrune) {
  ControlTable table;
  for (uint64_t i = 1; i <= 5; ++i) {
    QueryInfoRecord record;
    record.query_id = i;
    record.class_id = 1;
    table.Insert(record);
    table.MarkReleased(i, 0.0);
    table.MarkDone(i, static_cast<double>(i));
  }
  EXPECT_EQ(table.DoneInWindow(2.0, 4.0).size(), 2u);  // ends 2,3
  EXPECT_EQ(table.PruneDone(3.0), 2u);                 // drops 1,2
  EXPECT_EQ(table.size(), 3u);
}

class InterceptorTest : public ::testing::Test {
 protected:
  InterceptorTest()
      : engine_(&simulator_, engine::EngineConfig(), Rng(1)),
        interceptor_(&simulator_, &engine_, InterceptorConfig()) {}

  sim::Simulator simulator_;
  engine::ExecutionEngine engine_;
  Interceptor interceptor_;
};

TEST_F(InterceptorTest, InterceptionDelayApplied) {
  double arrived_at = -1.0;
  interceptor_.set_on_arrived(
      [&](const QueryInfoRecord&) { arrived_at = simulator_.Now(); });
  interceptor_.Intercept(MakeQuery(1, 1, 50.0), nullptr);
  simulator_.RunToCompletion();
  EXPECT_NEAR(arrived_at, 0.35, 1e-9);
  EXPECT_EQ(interceptor_.intercepted_total(), 1u);
  EXPECT_EQ(interceptor_.queued_count(1), 1);
}

TEST_F(InterceptorTest, ReleaseRunsAndCompletes) {
  bool completed = false;
  workload::QueryRecord final_record;
  interceptor_.set_on_arrived([&](const QueryInfoRecord& record) {
    EXPECT_TRUE(interceptor_.Release(record.query_id).ok());
  });
  interceptor_.Intercept(MakeQuery(7, 2, 80.0),
                         [&](const workload::QueryRecord& record) {
                           completed = true;
                           final_record = record;
                         });
  simulator_.RunToCompletion();
  ASSERT_TRUE(completed);
  EXPECT_EQ(final_record.query_id, 7u);
  EXPECT_EQ(final_record.class_id, 2);
  // Submit stamped before the interception delay; exec after it.
  EXPECT_DOUBLE_EQ(final_record.submit_time, 0.0);
  EXPECT_GE(final_record.exec_start_time, 0.35);
  EXPECT_GT(final_record.end_time, final_record.exec_start_time);
  // Velocity < 1 because of the interception wait.
  EXPECT_LT(final_record.Velocity(), 1.0);
  EXPECT_EQ(interceptor_.running_count(2), 0);
  EXPECT_DOUBLE_EQ(interceptor_.running_cost(2), 0.0);
}

TEST_F(InterceptorTest, ReleaseUnknownFails) {
  EXPECT_EQ(interceptor_.Release(42).code(), StatusCode::kNotFound);
}

TEST_F(InterceptorTest, LedgerTracksRunningCost) {
  interceptor_.set_on_arrived([&](const QueryInfoRecord& record) {
    interceptor_.Release(record.query_id);
  });
  interceptor_.Intercept(MakeQuery(1, 1, 100.0), nullptr);
  interceptor_.Intercept(MakeQuery(2, 1, 60.0), nullptr);
  simulator_.RunUntil(0.4);  // past interception, queries running
  EXPECT_EQ(interceptor_.running_count(1), 2);
  EXPECT_DOUBLE_EQ(interceptor_.running_cost(1), 160.0);
  simulator_.RunToCompletion();
  EXPECT_DOUBLE_EQ(interceptor_.running_cost(1), 0.0);
}

TEST_F(InterceptorTest, BypassSkipsOverheadAndTable) {
  bool completed = false;
  interceptor_.Bypass(MakeQuery(3, 3, 10.0, workload::WorkloadType::kOltp),
                      [&](const workload::QueryRecord& record) {
                        completed = true;
                        EXPECT_DOUBLE_EQ(record.submit_time, 0.0);
                        EXPECT_DOUBLE_EQ(record.exec_start_time, 0.0);
                      });
  simulator_.RunToCompletion();
  EXPECT_TRUE(completed);
  EXPECT_EQ(interceptor_.bypassed_total(), 1u);
  EXPECT_EQ(interceptor_.control_table().size(), 0u);
}

TEST(InterceptorConfigTest, OltpOverridesApplyOnlyWhenSet) {
  InterceptorConfig config;
  config.interception_delay_seconds = 0.35;
  EXPECT_DOUBLE_EQ(config.DelayFor(true), 0.35);
  config.oltp_interception_delay_seconds = 0.001;
  EXPECT_DOUBLE_EQ(config.DelayFor(true), 0.001);
  EXPECT_DOUBLE_EQ(config.DelayFor(false), 0.35);
  config.oltp_interception_cpu_seconds = 0.0;
  EXPECT_DOUBLE_EQ(config.CpuFor(true), 0.0);
}

class QpControllerTest : public ::testing::Test {
 protected:
  QpControllerTest()
      : engine_(&simulator_, engine::EngineConfig(), Rng(2)) {}

  void Build(const QpStaticConfig& config) {
    controller_ = std::make_unique<QpController>(
        &simulator_, &engine_, InterceptorConfig(), config);
  }

  void Submit(uint64_t id, int class_id, double cost) {
    controller_->Submit(MakeQuery(id, class_id, cost),
                        [this](const workload::QueryRecord& record) {
                          completed_.push_back(record);
                        });
  }

  sim::Simulator simulator_;
  engine::ExecutionEngine engine_;
  std::unique_ptr<QpController> controller_;
  std::vector<workload::QueryRecord> completed_;
};

TEST_F(QpControllerTest, NoControlAdmitsUpToSystemLimit) {
  Build(QpStaticConfig::NoControl(150.0));
  Submit(1, 1, 100.0);
  Submit(2, 1, 100.0);  // would exceed 150 -> queued
  simulator_.RunUntil(0.4);
  EXPECT_EQ(controller_->interceptor().running_count(1), 1);
  EXPECT_EQ(controller_->TotalQueued(), 1);
  simulator_.RunToCompletion();
  EXPECT_EQ(completed_.size(), 2u);
}

TEST_F(QpControllerTest, MinOneRuleAvoidsStarvation) {
  Build(QpStaticConfig::NoControl(50.0));
  Submit(1, 1, 500.0);  // alone it may run even though over limit
  simulator_.RunToCompletion();
  EXPECT_EQ(completed_.size(), 1u);
}

TEST_F(QpControllerTest, GroupCapsLimitConcurrency) {
  QpStaticConfig config;
  config.system_cost_limit = 1e9;
  config.large_cost_threshold = 1000.0;
  config.medium_cost_threshold = 100.0;
  config.max_large_concurrent = 1;
  config.max_medium_concurrent = 2;
  Build(config);
  // Three large queries: only one runs at a time.
  Submit(1, 1, 5000.0);
  Submit(2, 1, 5000.0);
  Submit(3, 1, 5000.0);
  // Three medium queries: two run concurrently.
  Submit(4, 1, 500.0);
  Submit(5, 1, 500.0);
  Submit(6, 1, 500.0);
  simulator_.RunUntil(0.4);
  const Interceptor& interceptor = controller_->interceptor();
  EXPECT_EQ(interceptor.running_count(1), 3);  // 1 large + 2 medium
  EXPECT_EQ(controller_->TotalQueued(), 3);
  simulator_.RunToCompletion();
  EXPECT_EQ(completed_.size(), 6u);
}

TEST_F(QpControllerTest, PriorityReleasesImportantClassFirst) {
  QpStaticConfig config;
  config.system_cost_limit = 100.0;  // one query at a time
  config.priority_enabled = true;
  config.class_priority = {{1, 1}, {2, 2}};
  Build(config);
  Submit(1, 1, 90.0);  // runs first (arrives first, nothing queued)
  Submit(2, 1, 90.0);  // class 1, queued
  Submit(3, 2, 90.0);  // class 2, queued after -- but higher priority
  simulator_.RunToCompletion();
  ASSERT_EQ(completed_.size(), 3u);
  // Completion order: 1 then 3 (priority) then 2.
  EXPECT_EQ(completed_[0].query_id, 1u);
  EXPECT_EQ(completed_[1].query_id, 3u);
  EXPECT_EQ(completed_[2].query_id, 2u);
}

TEST_F(QpControllerTest, FifoWithoutPriority) {
  QpStaticConfig config;
  config.system_cost_limit = 100.0;
  config.priority_enabled = false;
  config.class_priority = {{1, 1}, {2, 2}};
  Build(config);
  Submit(1, 1, 90.0);
  Submit(2, 1, 90.0);
  Submit(3, 2, 90.0);
  simulator_.RunToCompletion();
  ASSERT_EQ(completed_.size(), 3u);
  EXPECT_EQ(completed_[1].query_id, 2u);
  EXPECT_EQ(completed_[2].query_id, 3u);
}

TEST_F(QpControllerTest, OltpBypassedByDefault) {
  Build(QpStaticConfig::NoControl(1e6));
  controller_->Submit(
      MakeQuery(9, 3, 20.0, workload::WorkloadType::kOltp),
      [this](const workload::QueryRecord& record) {
        completed_.push_back(record);
      });
  simulator_.RunToCompletion();
  ASSERT_EQ(completed_.size(), 1u);
  EXPECT_EQ(controller_->interceptor().bypassed_total(), 1u);
  EXPECT_EQ(controller_->interceptor().intercepted_total(), 0u);
  // No interception overhead: exec starts at submission.
  EXPECT_DOUBLE_EQ(completed_[0].exec_start_time, 0.0);
}

TEST_F(QpControllerTest, InterceptedOltpPaysOverheadButAutoReleases) {
  QpStaticConfig config = QpStaticConfig::NoControl(1e6);
  config.intercept_oltp = true;
  Build(config);
  controller_->Submit(
      MakeQuery(9, 3, 20.0, workload::WorkloadType::kOltp),
      [this](const workload::QueryRecord& record) {
        completed_.push_back(record);
      });
  simulator_.RunToCompletion();
  ASSERT_EQ(completed_.size(), 1u);
  EXPECT_EQ(controller_->interceptor().intercepted_total(), 1u);
  EXPECT_GE(completed_[0].exec_start_time, 0.35);
  // The paper's point: response >> execution for sub-second queries.
  EXPECT_GT(completed_[0].ResponseSeconds(),
            2.0 * completed_[0].ExecSeconds());
}

TEST_F(InterceptorTest, CancelQueuedCompletesWithCancelledRecord) {
  bool arrived = false;
  interceptor_.set_on_arrived(
      [&](const QueryInfoRecord&) { arrived = true; });
  bool cancelled_hook = false;
  interceptor_.set_on_cancelled([&](const QueryInfoRecord& record) {
    cancelled_hook = true;
    EXPECT_EQ(record.state, QueryState::kCancelled);
  });
  workload::QueryRecord final_record;
  bool completed = false;
  interceptor_.Intercept(MakeQuery(5, 1, 40.0),
                         [&](const workload::QueryRecord& record) {
                           completed = true;
                           final_record = record;
                         });
  simulator_.RunUntil(0.4);  // past interception, still queued
  ASSERT_TRUE(arrived);
  ASSERT_TRUE(interceptor_.CancelQueued(5).ok());
  EXPECT_TRUE(cancelled_hook);
  EXPECT_TRUE(completed);
  EXPECT_TRUE(final_record.cancelled);
  EXPECT_DOUBLE_EQ(final_record.ExecSeconds(), 0.0);
  EXPECT_EQ(interceptor_.queued_count(1), 0);
  EXPECT_EQ(interceptor_.cancelled_total(), 1u);
  // Cannot cancel twice or release after cancel.
  EXPECT_FALSE(interceptor_.CancelQueued(5).ok());
  EXPECT_FALSE(interceptor_.Release(5).ok());
}

TEST_F(InterceptorTest, CancelRunningQueryRejected) {
  interceptor_.set_on_arrived([&](const QueryInfoRecord& record) {
    interceptor_.Release(record.query_id);
  });
  interceptor_.Intercept(MakeQuery(6, 1, 40.0), nullptr);
  simulator_.RunUntil(0.4);
  EXPECT_EQ(interceptor_.CancelQueued(6).code(), StatusCode::kNotFound);
  simulator_.RunToCompletion();
}

TEST_F(QpControllerTest, CancelledQueryLeavesQueueAndOthersProceed) {
  Build(QpStaticConfig::NoControl(100.0));
  Submit(1, 1, 90.0);  // runs
  Submit(2, 1, 90.0);  // queued
  Submit(3, 1, 90.0);  // queued
  simulator_.RunUntil(0.4);
  EXPECT_EQ(controller_->TotalQueued(), 2);
  ASSERT_TRUE(controller_->interceptor().CancelQueued(2).ok());
  EXPECT_EQ(controller_->TotalQueued(), 1);
  simulator_.RunToCompletion();
  // 1 and 3 execute; 2 completes as cancelled.
  ASSERT_EQ(completed_.size(), 3u);
  int cancelled = 0;
  for (const auto& record : completed_) {
    if (record.cancelled) ++cancelled;
  }
  EXPECT_EQ(cancelled, 1);
}

class QpRandomLoadTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QpRandomLoadTest, AllQueriesEventuallyComplete) {
  Rng rng(GetParam());
  sim::Simulator simulator;
  engine::ExecutionEngine engine(&simulator, engine::EngineConfig(),
                                 Rng(GetParam()));
  QpStaticConfig config;
  config.system_cost_limit = 300.0;
  config.large_cost_threshold = 200.0;
  config.medium_cost_threshold = 80.0;
  config.max_large_concurrent = 1;
  config.max_medium_concurrent = 2;
  config.max_small_concurrent = 4;
  config.priority_enabled = true;
  config.class_priority = {{1, 1}, {2, 2}};
  QpController controller(&simulator, &engine, InterceptorConfig(),
                          config);
  int completed = 0;
  const int queries = 40;
  for (int i = 0; i < queries; ++i) {
    double at = rng.Uniform(0.0, 20.0);
    workload::Query query = MakeQuery(
        static_cast<uint64_t>(i + 1),
        static_cast<int>(rng.UniformInt(1, 2)),
        rng.BoundedPareto(1.1, 10.0, 400.0));
    simulator.ScheduleAt(at, [&controller, &completed, query] {
      controller.Submit(query, [&completed](const workload::QueryRecord&) {
        ++completed;
      });
    });
  }
  simulator.RunToCompletion();
  EXPECT_EQ(completed, queries);
  EXPECT_EQ(controller.TotalQueued(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QpRandomLoadTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace qsched::qp
