// Tests for the observability subsystem: metrics registry (histogram
// buckets, quantiles, Prometheus exposition), per-query span lifecycle
// (including cancellation and the Chrome trace export), and the planner
// decision audit log (JSONL round-trip plus the end-to-end guarantee
// that audited cost limits are exactly the limits the dispatcher
// enforced).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "common/rng.h"
#include "common/strings.h"
#include "engine/execution_engine.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/svg.h"
#include "obs/telemetry.h"
#include "scheduler/query_scheduler.h"
#include "sim/simulator.h"

namespace qsched::obs {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// ---------------------------------------------------------------------
// Histogram

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  Histogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.0);
  EXPECT_DOUBLE_EQ(hist.min(), 0.0);
  EXPECT_DOUBLE_EQ(hist.max(), 0.0);
  EXPECT_DOUBLE_EQ(hist.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.5), 0.0);
}

TEST(HistogramTest, BucketIndexEdges) {
  // At or below the minimum -> underflow bucket, including junk values.
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(-3.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(Histogram::kMinValue), 0);
  EXPECT_EQ(Histogram::BucketIndex(std::nan("")), 0);
  // One octave above the minimum spans kBucketsPerOctave buckets.
  EXPECT_EQ(Histogram::BucketIndex(Histogram::kMinValue * 1.01), 1);
  EXPECT_EQ(Histogram::BucketIndex(Histogram::kMinValue * 2.01),
            1 + Histogram::kBucketsPerOctave);
  // Far beyond the range -> clamped into the top (overflow) bucket.
  EXPECT_EQ(Histogram::BucketIndex(1e300), Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, BucketEdgesBracketTheValue) {
  for (double value : {1e-5, 0.003, 0.5, 7.0, 123.0, 99999.0}) {
    int index = Histogram::BucketIndex(value);
    EXPECT_GT(value, Histogram::BucketLowerEdge(index))
        << "value " << value;
    EXPECT_LE(value, Histogram::BucketUpperEdge(index))
        << "value " << value;
  }
}

TEST(HistogramTest, CountSumMinMaxMean) {
  Histogram hist;
  hist.Record(2.0);
  hist.Record(4.0);
  hist.Record(6.0);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_DOUBLE_EQ(hist.sum(), 12.0);
  EXPECT_DOUBLE_EQ(hist.min(), 2.0);
  EXPECT_DOUBLE_EQ(hist.max(), 6.0);
  EXPECT_DOUBLE_EQ(hist.Mean(), 4.0);
}

TEST(HistogramTest, QuantileWithinBucketResolution) {
  Histogram hist;
  for (int i = 1; i <= 1000; ++i) {
    hist.Record(static_cast<double>(i) / 1000.0);  // 0.001 .. 1.0
  }
  // Buckets are < 19% wide, so estimates land within 19% of truth.
  EXPECT_NEAR(hist.Quantile(0.5), 0.5, 0.5 * 0.19);
  EXPECT_NEAR(hist.Quantile(0.95), 0.95, 0.95 * 0.19);
  EXPECT_NEAR(hist.Quantile(0.99), 0.99, 0.99 * 0.19);
}

TEST(HistogramTest, QuantileClampedToObservedRange) {
  Histogram hist;
  hist.Record(0.2);
  hist.Record(0.3);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.0), 0.2);
  EXPECT_DOUBLE_EQ(hist.Quantile(1.0), 0.3);
  EXPECT_GE(hist.Quantile(0.5), 0.2);
  EXPECT_LE(hist.Quantile(0.5), 0.3);
}

TEST(HistogramTest, SingleValueQuantilesCollapse) {
  Histogram hist;
  hist.Record(0.125);
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(hist.Quantile(q), 0.125) << "q=" << q;
  }
}

// ---------------------------------------------------------------------
// Registry

TEST(RegistryTest, HandlesAreStableAndShared) {
  Registry reg;
  Counter* a = reg.GetCounter("events_total");
  Counter* b = reg.GetCounter("events_total");
  EXPECT_EQ(a, b);
  Counter* labeled = reg.GetCounter("events_total", "class=\"1\"");
  EXPECT_NE(a, labeled);
  a->Inc();
  a->Inc(2);
  EXPECT_EQ(b->value(), 3u);
  EXPECT_EQ(labeled->value(), 0u);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(RegistryTest, SnapshotCarriesAllKinds) {
  Registry reg;
  reg.GetCounter("c_total")->Inc(5);
  reg.GetGauge("g")->Set(2.5);
  Histogram* hist = reg.GetHistogram("h_seconds");
  hist->Record(1.0);
  hist->Record(3.0);

  std::vector<MetricSnapshot> snapshot = reg.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  // std::map ordering: c_total, g, h_seconds.
  EXPECT_EQ(snapshot[0].name, "c_total");
  EXPECT_EQ(snapshot[0].kind, MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(snapshot[0].value, 5.0);
  EXPECT_EQ(snapshot[1].name, "g");
  EXPECT_EQ(snapshot[1].kind, MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(snapshot[1].value, 2.5);
  EXPECT_EQ(snapshot[2].name, "h_seconds");
  EXPECT_EQ(snapshot[2].kind, MetricKind::kHistogram);
  EXPECT_EQ(snapshot[2].count, 2u);
  EXPECT_DOUBLE_EQ(snapshot[2].sum, 4.0);
  EXPECT_DOUBLE_EQ(snapshot[2].min, 1.0);
  EXPECT_DOUBLE_EQ(snapshot[2].max, 3.0);
}

TEST(RegistryTest, PrometheusExpositionFormat) {
  Registry reg;
  reg.GetCounter("qsched_queries_total", "class=\"1\"")->Inc(7);
  reg.GetCounter("qsched_queries_total", "class=\"2\"")->Inc(9);
  reg.GetGauge("qsched_queue_depth", "class=\"1\"")->Set(4.0);
  reg.GetHistogram("qsched_wait_seconds")->Record(0.5);

  std::ostringstream out;
  reg.WritePrometheus(out);
  std::string text = out.str();

  // One # TYPE line per family even with several label sets.
  size_t first = text.find("# TYPE qsched_queries_total counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE qsched_queries_total counter", first + 1),
            std::string::npos);
  EXPECT_TRUE(Contains(text, "qsched_queries_total{class=\"1\"} 7"));
  EXPECT_TRUE(Contains(text, "qsched_queries_total{class=\"2\"} 9"));
  EXPECT_TRUE(Contains(text, "# TYPE qsched_queue_depth gauge"));
  EXPECT_TRUE(Contains(text, "qsched_queue_depth{class=\"1\"} 4"));
  // Histograms render as summaries with quantile labels + _sum/_count.
  EXPECT_TRUE(Contains(text, "# TYPE qsched_wait_seconds summary"));
  EXPECT_TRUE(Contains(text, "qsched_wait_seconds{quantile=\"0.5\"}"));
  EXPECT_TRUE(Contains(text, "qsched_wait_seconds{quantile=\"0.99\"}"));
  EXPECT_TRUE(Contains(text, "qsched_wait_seconds_sum"));
  EXPECT_TRUE(Contains(text, "qsched_wait_seconds_count 1"));
}

// ---------------------------------------------------------------------
// SpanLog

TEST(SpanLogTest, FullLifecycleStampsEveryTransition) {
  SpanLog spans;
  spans.OnSubmit(42, 1, false, 10.0);
  spans.OnClassify(42, 10.0);
  spans.OnEnqueue(42, 10.35);
  EXPECT_EQ(spans.open_count(), 1u);
  ASSERT_NE(spans.FindOpen(42), nullptr);
  EXPECT_DOUBLE_EQ(spans.FindOpen(42)->enqueue_time, 10.35);

  spans.OnDispatch(42, 12.0);
  spans.OnComplete(42, 12.0, 20.0);
  EXPECT_EQ(spans.open_count(), 0u);
  EXPECT_EQ(spans.closed_total(), 1u);
  ASSERT_EQ(spans.closed().size(), 1u);
  const QuerySpan& span = spans.closed().front();
  EXPECT_EQ(span.query_id, 42u);
  EXPECT_EQ(span.class_id, 1);
  EXPECT_FALSE(span.is_oltp);
  EXPECT_DOUBLE_EQ(span.submit_time, 10.0);
  EXPECT_DOUBLE_EQ(span.classify_time, 10.0);
  EXPECT_DOUBLE_EQ(span.enqueue_time, 10.35);
  EXPECT_DOUBLE_EQ(span.dispatch_time, 12.0);
  EXPECT_DOUBLE_EQ(span.exec_start_time, 12.0);
  EXPECT_DOUBLE_EQ(span.end_time, 20.0);
  EXPECT_FALSE(span.cancelled);
  EXPECT_TRUE(span.Closed());
}

TEST(SpanLogTest, CancelledSpanIsFlagged) {
  SpanLog spans;
  spans.OnSubmit(7, 2, false, 1.0);
  spans.OnEnqueue(7, 1.35);
  spans.OnCancel(7, 5.0);
  ASSERT_EQ(spans.closed().size(), 1u);
  const QuerySpan& span = spans.closed().front();
  EXPECT_TRUE(span.cancelled);
  EXPECT_DOUBLE_EQ(span.end_time, 5.0);
  // Never dispatched or executed.
  EXPECT_DOUBLE_EQ(span.dispatch_time, -1.0);
  EXPECT_DOUBLE_EQ(span.exec_start_time, -1.0);
}

TEST(SpanLogTest, UnknownIdTransitionsAreNoOps) {
  SpanLog spans;
  spans.OnClassify(99, 1.0);
  spans.OnEnqueue(99, 1.0);
  spans.OnDispatch(99, 1.0);
  spans.OnComplete(99, 1.0, 2.0);
  spans.OnCancel(99, 2.0);
  EXPECT_EQ(spans.open_count(), 0u);
  EXPECT_EQ(spans.closed_total(), 0u);
  EXPECT_EQ(spans.dropped(), 0u);
}

TEST(SpanLogTest, DropOldestAtCapacity) {
  SpanLog spans(2);
  for (uint64_t id = 1; id <= 3; ++id) {
    spans.OnSubmit(id, 1, false, 1.0);
    spans.OnComplete(id, 1.0, 2.0);
  }
  EXPECT_EQ(spans.closed().size(), 2u);
  EXPECT_EQ(spans.closed_total(), 3u);
  EXPECT_EQ(spans.dropped(), 1u);
  EXPECT_EQ(spans.closed().front().query_id, 2u);
  EXPECT_EQ(spans.closed().back().query_id, 3u);
}

TEST(SpanLogTest, ChromeTraceHasTracksSlicesAndMicroseconds) {
  SpanLog spans;
  // Intercepted OLAP query on class 1.
  spans.OnSubmit(1, 1, false, 1.0);
  spans.OnEnqueue(1, 1.35);
  spans.OnDispatch(1, 2.0);
  spans.OnComplete(1, 2.0, 4.0);
  // Bypassed OLTP query on class 3 (no enqueue/dispatch).
  spans.OnSubmit(2, 3, true, 1.5);
  spans.OnComplete(2, 1.5, 1.6);
  // Cancelled query on class 2.
  spans.OnSubmit(3, 2, false, 2.0);
  spans.OnEnqueue(3, 2.35);
  spans.OnCancel(3, 3.0);

  std::ostringstream out;
  spans.WriteChromeTrace(out);
  std::string json = out.str();

  EXPECT_EQ(json.front(), '{');
  EXPECT_TRUE(Contains(json, "\"traceEvents\""));
  // One named track per class, OLAP/OLTP tagged.
  EXPECT_TRUE(Contains(json, "class 1 (OLAP)"));
  EXPECT_TRUE(Contains(json, "class 2 (OLAP)"));
  EXPECT_TRUE(Contains(json, "class 3 (OLTP)"));
  // Lifecycle slices; the cancelled query gets a `cancelled` slice.
  EXPECT_TRUE(Contains(json, "\"intercept\""));
  EXPECT_TRUE(Contains(json, "\"queued\""));
  EXPECT_TRUE(Contains(json, "\"exec\""));
  EXPECT_TRUE(Contains(json, "\"cancelled\""));
  // Sim seconds export as microseconds: 1.5 s -> ts 1500000.
  EXPECT_TRUE(Contains(json, "1500000.000"));
}

// ---------------------------------------------------------------------
// Planner audit log

PlannerAuditRecord MakeAuditRecord(uint64_t interval) {
  PlannerAuditRecord record;
  record.interval = interval;
  record.sim_time = 60.0 * static_cast<double>(interval);
  record.system_cost_limit = 300000.0;
  record.oltp_response = 0.1875;
  record.solver_utility = 5.5;
  record.allocator = "utility-search";

  PlannerAuditClass olap;
  olap.class_id = 1;
  olap.is_oltp = false;
  olap.goal = 0.4;
  olap.measured_raw = 0.5;
  olap.measured_smoothed = 0.4375;
  olap.goal_ratio = 1.09375;
  olap.completed_in_interval = 12;
  olap.queue_depth = 3;
  olap.running = 2;
  olap.running_cost = 65536.0;
  olap.arrival_rate = 0.25;
  olap.predicted_rate = 0.3125;
  olap.change_detected = true;
  olap.target_limit = 120000.0;
  olap.enforced_limit = 110000.0;
  record.classes.push_back(olap);

  PlannerAuditClass oltp;
  oltp.class_id = 3;
  oltp.is_oltp = true;
  oltp.goal = 0.25;
  oltp.measured_raw = -1.0;  // no snapshot landed
  oltp.measured_smoothed = 0.1875;
  oltp.goal_ratio = 1.33333333;
  oltp.queue_depth = 0;
  oltp.target_limit = 180000.0;
  oltp.enforced_limit = 190000.0;
  record.classes.push_back(oltp);
  return record;
}

TEST(PlannerAuditTest, JsonRoundTripPreservesEveryField) {
  PlannerAuditRecord record = MakeAuditRecord(4);
  std::string json = ToJson(record);
  EXPECT_EQ(json.find('\n'), std::string::npos);

  PlannerAuditRecord parsed;
  ASSERT_TRUE(ParsePlannerAuditRecord(json, &parsed));
  EXPECT_EQ(parsed.interval, 4u);
  EXPECT_DOUBLE_EQ(parsed.sim_time, 240.0);
  EXPECT_DOUBLE_EQ(parsed.system_cost_limit, 300000.0);
  EXPECT_DOUBLE_EQ(parsed.oltp_response, 0.1875);
  EXPECT_DOUBLE_EQ(parsed.solver_utility, 5.5);
  EXPECT_EQ(parsed.allocator, "utility-search");
  ASSERT_EQ(parsed.classes.size(), 2u);

  const PlannerAuditClass& olap = parsed.classes[0];
  EXPECT_EQ(olap.class_id, 1);
  EXPECT_FALSE(olap.is_oltp);
  EXPECT_DOUBLE_EQ(olap.goal, 0.4);
  EXPECT_DOUBLE_EQ(olap.measured_raw, 0.5);
  EXPECT_DOUBLE_EQ(olap.measured_smoothed, 0.4375);
  EXPECT_DOUBLE_EQ(olap.goal_ratio, 1.09375);
  EXPECT_EQ(olap.completed_in_interval, 12);
  EXPECT_EQ(olap.queue_depth, 3);
  EXPECT_EQ(olap.running, 2);
  EXPECT_DOUBLE_EQ(olap.running_cost, 65536.0);
  EXPECT_DOUBLE_EQ(olap.arrival_rate, 0.25);
  EXPECT_DOUBLE_EQ(olap.predicted_rate, 0.3125);
  EXPECT_TRUE(olap.change_detected);
  EXPECT_DOUBLE_EQ(olap.target_limit, 120000.0);
  EXPECT_DOUBLE_EQ(olap.enforced_limit, 110000.0);

  const PlannerAuditClass& oltp = parsed.classes[1];
  EXPECT_EQ(oltp.class_id, 3);
  EXPECT_TRUE(oltp.is_oltp);
  EXPECT_DOUBLE_EQ(oltp.measured_raw, -1.0);
  EXPECT_FALSE(oltp.change_detected);
  EXPECT_DOUBLE_EQ(oltp.enforced_limit, 190000.0);
}

TEST(PlannerAuditTest, ParseRejectsMalformedInput) {
  PlannerAuditRecord out;
  EXPECT_FALSE(ParsePlannerAuditRecord("", &out));
  EXPECT_FALSE(ParsePlannerAuditRecord("not json", &out));
  EXPECT_FALSE(ParsePlannerAuditRecord("{\"interval\":}", &out));
}

TEST(PlannerAuditTest, WriteJsonlEmitsOneParsableLinePerRecord) {
  PlannerAuditLog log;
  log.Add(MakeAuditRecord(1));
  log.Add(MakeAuditRecord(2));
  std::ostringstream out;
  log.WriteJsonl(out);

  std::istringstream in(out.str());
  std::string line;
  uint64_t expected_interval = 1;
  while (std::getline(in, line)) {
    PlannerAuditRecord parsed;
    ASSERT_TRUE(ParsePlannerAuditRecord(line, &parsed)) << line;
    EXPECT_EQ(parsed.interval, expected_interval);
    ++expected_interval;
  }
  EXPECT_EQ(expected_interval, 3u);
}

TEST(PlannerAuditTest, DropOldestAtCapacity) {
  PlannerAuditLog log(2);
  log.Add(MakeAuditRecord(1));
  log.Add(MakeAuditRecord(2));
  log.Add(MakeAuditRecord(3));
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.dropped(), 1u);
  EXPECT_EQ(log.records().front().interval, 2u);
  EXPECT_EQ(log.records().back().interval, 3u);
}

// ---------------------------------------------------------------------
// TimeSeriesRecorder

IntervalRow MakeIntervalRow(uint64_t interval) {
  IntervalRow row;
  row.interval = interval;
  row.sim_time = 60.0 * static_cast<double>(interval);
  row.solver_wall_seconds = 1e-4;
  row.solver_utility = 2.5;
  IntervalClassSample olap;
  olap.class_id = 1;
  olap.cost_limit = 150000.0;
  olap.measured = 0.75;
  olap.goal_ratio = 1.07142857;
  olap.queue_depth = 3;
  olap.admitted_cost = 42000.0;
  olap.completed_in_interval = 2;
  IntervalClassSample oltp;
  oltp.class_id = 3;
  oltp.is_oltp = true;
  oltp.cost_limit = 50000.0;
  oltp.measured = 1.8;
  oltp.goal_ratio = 1.11;
  row.classes = {olap, oltp};
  return row;
}

TEST(TimeSeriesRecorderTest, AppendAndReadBack) {
  TimeSeriesRecorder recorder;
  recorder.Append(MakeIntervalRow(1));
  recorder.Append(MakeIntervalRow(2));
  EXPECT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.dropped(), 0u);
  std::vector<IntervalRow> rows = recorder.Rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].interval, 1u);
  EXPECT_EQ(rows[1].interval, 2u);
  ASSERT_EQ(rows[0].classes.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].classes[0].cost_limit, 150000.0);
  EXPECT_TRUE(rows[0].classes[1].is_oltp);
}

TEST(TimeSeriesRecorderTest, CsvIsLongFormatOneLinePerClass) {
  TimeSeriesRecorder recorder;
  recorder.Append(MakeIntervalRow(1));
  std::ostringstream out;
  recorder.WriteCsv(out);
  const std::string csv = out.str();
  EXPECT_TRUE(Contains(
      csv,
      "interval,sim_time,class_id,is_oltp,cost_limit,measured,"
      "goal_ratio,queue_depth,admitted_cost,completed_in_interval,"
      "solver_wall_seconds,solver_utility"));
  // One interval with two classes -> header + two data lines.
  int lines = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3);
  EXPECT_TRUE(Contains(csv, "1,60,1,0,150000,0.75,"));
  EXPECT_TRUE(Contains(csv, "1,60,3,1,50000,1.8,"));
}

TEST(TimeSeriesRecorderTest, JsonCarriesIntervalAndClassColumns) {
  TimeSeriesRecorder recorder;
  recorder.Append(MakeIntervalRow(4));
  std::ostringstream out;
  recorder.WriteJson(out);
  const std::string json = out.str();
  EXPECT_TRUE(Contains(json, "\"interval\":4"));
  EXPECT_TRUE(Contains(json, "\"sim_time\":240"));
  EXPECT_TRUE(Contains(json, "\"solver_utility\":2.5"));
  EXPECT_TRUE(Contains(json, "\"is_oltp\":true"));
  EXPECT_TRUE(Contains(json, "\"admitted_cost\":42000"));
  // Valid JSON array delimiters.
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
}

TEST(TimeSeriesRecorderTest, DropOldestAtCapacity) {
  TimeSeriesRecorder recorder(2);
  recorder.Append(MakeIntervalRow(1));
  recorder.Append(MakeIntervalRow(2));
  recorder.Append(MakeIntervalRow(3));
  EXPECT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.dropped(), 1u);
  std::vector<IntervalRow> rows = recorder.Rows();
  EXPECT_EQ(rows.front().interval, 2u);
  EXPECT_EQ(rows.back().interval, 3u);
}

// ---------------------------------------------------------------------
// PredictionLedger

TEST(PredictionLedgerTest, PredictionResolvesAgainstNextInterval) {
  PredictionLedger ledger;
  ledger.Predict(1, 1, false, 0.8, 0.0);
  // Wrong interval: the pending record targets 2, so 3 is a no-op.
  ledger.Observe(3, 1, 0.7);
  EXPECT_EQ(ledger.StatsFor(1).count, 0u);
  ledger.Observe(2, 1, 0.7);
  std::vector<PredictionRecord> records = ledger.Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].resolved);
  EXPECT_EQ(records[0].predicted_at, 1u);
  EXPECT_EQ(records[0].target_interval, 2u);
  EXPECT_DOUBLE_EQ(records[0].observed, 0.7);
  const ResidualStats stats = ledger.StatsFor(1);
  EXPECT_EQ(stats.count, 1u);
  EXPECT_NEAR(stats.mean_abs_error, 0.1, 1e-12);
  EXPECT_NEAR(stats.bias, -0.1, 1e-12);
}

TEST(PredictionLedgerTest, ObserveWithoutPendingIsNoOp) {
  PredictionLedger ledger;
  ledger.Observe(1, 1, 0.5);  // first interval: nothing predicted yet
  EXPECT_EQ(ledger.size(), 0u);
  EXPECT_EQ(ledger.StatsFor(1).count, 0u);
}

TEST(PredictionLedgerTest, ResidualStatsExactP95) {
  PredictionLedger ledger;
  // 20 resolved predictions for class 7 with |error| = 0.01 .. 0.20.
  for (int i = 1; i <= 20; ++i) {
    ledger.Predict(static_cast<uint64_t>(i), 7, true, 1.0, 1e-5);
    ledger.Observe(static_cast<uint64_t>(i) + 1, 7, 1.0 + 0.01 * i);
  }
  const ResidualStats stats = ledger.StatsFor(7);
  EXPECT_EQ(stats.count, 20u);
  EXPECT_NEAR(stats.mean_abs_error, 0.105, 1e-9);
  EXPECT_NEAR(stats.bias, 0.105, 1e-9);  // model underpredicts
  // Exact sorted p95 of {0.01..0.20} with linear interpolation between
  // order statistics: rank 0.95*19 = 18.05 -> 0.19 + 0.05*0.01.
  EXPECT_NEAR(stats.p95_abs_error, 0.1905, 1e-9);
  // All 20 OLTP predictions logged their slope.
  EXPECT_EQ(ledger.SlopeTrajectory().size(), 20u);
}

TEST(PredictionLedgerTest, DropOldestKeepsPendingPointerSafe) {
  PredictionLedger ledger(2);
  ledger.Predict(1, 1, false, 0.5, 0.0);
  ledger.Predict(1, 2, false, 0.6, 0.0);
  // Capacity reached: this drops class 1's pending record.
  ledger.Predict(1, 3, false, 0.7, 0.0);
  EXPECT_EQ(ledger.size(), 2u);
  EXPECT_EQ(ledger.dropped(), 1u);
  // Resolving the dropped class must not touch freed memory or record
  // a residual.
  ledger.Observe(2, 1, 0.4);
  EXPECT_EQ(ledger.StatsFor(1).count, 0u);
  // The surviving classes still resolve normally.
  ledger.Observe(2, 2, 0.6);
  ledger.Observe(2, 3, 0.7);
  EXPECT_EQ(ledger.StatsFor(2).count, 1u);
  EXPECT_EQ(ledger.StatsFor(3).count, 1u);
}

TEST(PredictionLedgerTest, CsvAndJsonlCarryResolution) {
  PredictionLedger ledger;
  ledger.Predict(5, 1, false, 0.75, 0.0);
  ledger.Observe(6, 1, 0.5);
  ledger.Predict(6, 1, false, 0.8, 0.0);  // still pending
  std::ostringstream csv;
  ledger.WriteCsv(csv);
  EXPECT_TRUE(Contains(csv.str(),
                       "predicted_at,target_interval,class_id,is_oltp,"
                       "predicted,observed,resolved,residual,model_slope"));
  EXPECT_TRUE(Contains(csv.str(), "5,6,1,0,0.75,0.5,1,-0.25,0"));
  EXPECT_TRUE(Contains(csv.str(), "6,7,1,0,0.8,-1,0,0,0"));
  std::ostringstream jsonl;
  ledger.WriteJsonl(jsonl);
  EXPECT_TRUE(Contains(jsonl.str(), "\"resolved\":true"));
  EXPECT_TRUE(Contains(jsonl.str(), "\"resolved\":false"));
  EXPECT_TRUE(Contains(jsonl.str(), "\"predicted\":0.75"));
}

// ---------------------------------------------------------------------
// SloMonitor

TEST(SloMonitorTest, RollingAndOverallAttainment) {
  SloMonitor::Options options;
  options.window = 4;
  SloMonitor slo(options);
  EXPECT_DOUBLE_EQ(slo.RollingAttainment(1), 0.0);
  // 6 intervals: miss, miss, meet, meet, meet, meet.
  const double ratios[] = {0.8, 0.9, 1.0, 1.2, 1.1, 1.0};
  for (int i = 0; i < 6; ++i) {
    slo.Observe(1, static_cast<uint64_t>(i + 1), 60.0 * (i + 1),
                ratios[i]);
  }
  EXPECT_EQ(slo.intervals_observed(1), 6u);
  // Overall: 4 of 6 met.
  EXPECT_NEAR(slo.OverallAttainment(1), 4.0 / 6.0, 1e-12);
  // Rolling window of 4: the last four all met.
  EXPECT_DOUBLE_EQ(slo.RollingAttainment(1), 1.0);
  // The attainment series has one point per observation.
  EXPECT_EQ(slo.AttainmentSeries(1).size(), 6u);
}

TEST(SloMonitorTest, ViolationEventsTrackRunsAndDepth) {
  SloMonitor slo;
  // meet, miss, miss(worse), meet, miss -> one closed 2-interval event
  // and one open single-interval event.
  slo.Observe(1, 1, 60.0, 1.1);
  slo.Observe(1, 2, 120.0, 0.9);
  slo.Observe(1, 3, 180.0, 0.7);
  slo.Observe(1, 4, 240.0, 1.0);
  slo.Observe(1, 5, 300.0, 0.95);
  std::vector<SloViolationEvent> events = slo.EventsFor(1);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].start_interval, 2u);
  EXPECT_EQ(events[0].end_interval, 3u);
  EXPECT_EQ(events[0].intervals, 2);
  EXPECT_DOUBLE_EQ(events[0].worst_ratio, 0.7);
  EXPECT_DOUBLE_EQ(events[0].duration, 60.0);
  EXPECT_FALSE(events[0].open);
  EXPECT_TRUE(events[1].open);
  EXPECT_EQ(events[1].intervals, 1);
  // Events are per class: class 2 has none.
  EXPECT_TRUE(slo.EventsFor(2).empty());
}

TEST(SloMonitorTest, EventJsonCarriesTypeTag) {
  SloMonitor slo;
  slo.Observe(4, 1, 60.0, 0.5);
  slo.Observe(4, 2, 120.0, 1.5);
  std::ostringstream out;
  slo.WriteEventsJsonl(out);
  const std::string line = out.str();
  EXPECT_TRUE(Contains(line, "\"type\":\"slo_violation\""));
  EXPECT_TRUE(Contains(line, "\"class_id\":4"));
  EXPECT_TRUE(Contains(line, "\"worst_ratio\":0.5"));
  EXPECT_TRUE(Contains(line, "\"open\":false"));
}

// ---------------------------------------------------------------------
// SVG chart rendering

TEST(SvgTest, HtmlEscapeCoversMarkupCharacters) {
  EXPECT_EQ(HtmlEscape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
  EXPECT_EQ(HtmlEscape("plain"), "plain");
}

TEST(SvgTest, RenderLineChartEmitsSeriesAndReferenceLines) {
  SvgChartSpec spec;
  spec.x_label = "time (min)";
  spec.y_label = "velocity";
  SvgSeries series;
  series.label = "class 1";
  series.xs = {0.0, 1.0, 2.0, 3.0};
  series.ys = {0.2, 0.4, 0.6, 0.8};
  series.color_slot = 1;
  spec.series.push_back(series);
  SvgReferenceLine goal;
  goal.label = "goal";
  goal.y = 0.7;
  goal.color_slot = 1;
  spec.reference_lines.push_back(goal);
  const std::string svg = RenderLineChart(spec);
  EXPECT_TRUE(Contains(svg, "<svg"));
  EXPECT_TRUE(Contains(svg, "</svg>"));
  EXPECT_TRUE(Contains(svg, "<polyline"));
  EXPECT_TRUE(Contains(svg, "var(--series-1)"));
  EXPECT_TRUE(Contains(svg, "class 1"));
  EXPECT_TRUE(Contains(svg, "velocity"));
  // The goal reference line renders dashed.
  EXPECT_TRUE(Contains(svg, "stroke-dasharray"));
  // Sparse series get hoverable circle markers with native tooltips.
  EXPECT_TRUE(Contains(svg, "<circle"));
  EXPECT_TRUE(Contains(svg, "<title>"));
}

TEST(SvgTest, EmptySpecStillRendersAValidFrame) {
  SvgChartSpec spec;
  const std::string svg = RenderLineChart(spec);
  EXPECT_TRUE(Contains(svg, "<svg"));
  EXPECT_TRUE(Contains(svg, "</svg>"));
}

TEST(SvgTest, DenseSeriesSkipsMarkers) {
  SvgChartSpec spec;
  SvgSeries series;
  series.label = "dense";
  for (int i = 0; i < 200; ++i) {
    series.xs.push_back(static_cast<double>(i));
    series.ys.push_back(std::sin(0.1 * i));
  }
  spec.series.push_back(series);
  spec.max_marker_points = 96;
  const std::string svg = RenderLineChart(spec);
  EXPECT_TRUE(Contains(svg, "<polyline"));
  EXPECT_FALSE(Contains(svg, "<circle"));
}

// ---------------------------------------------------------------------
// End-to-end: the scheduler's audit trail vs. the live control loop

workload::Query MakeOlapQuery(uint64_t id, int class_id, double cost) {
  workload::Query query;
  query.id = id;
  query.class_id = class_id;
  query.type = workload::WorkloadType::kOlap;
  query.cost_timerons = cost;
  query.job.query_id = id;
  query.job.cpu_seconds = 0.1;
  query.job.logical_pages = 2000.0;
  query.job.hit_ratio = 0.3;
  return query;
}

workload::Query MakeOltpQuery(uint64_t id, int client_id) {
  workload::Query query;
  query.id = id;
  query.class_id = 3;
  query.client_id = client_id;
  query.type = workload::WorkloadType::kOltp;
  query.cost_timerons = 20.0;
  query.job.query_id = id;
  query.job.database = engine::DatabaseId::kOltp;
  query.job.cpu_seconds = 0.01;
  query.job.logical_pages = 50.0;
  query.job.hit_ratio = 0.9;
  return query;
}

class SchedulerAuditTest : public ::testing::Test {
 protected:
  SchedulerAuditTest()
      : engine_(&simulator_, engine::EngineConfig(), Rng(5)),
        classes_(sched::MakePaperClasses()) {}

  sim::Simulator simulator_;
  engine::ExecutionEngine engine_;
  sched::ServiceClassSet classes_;
};

TEST_F(SchedulerAuditTest, AuditLimitsExactlyMatchDispatcherEnforcement) {
  Telemetry telemetry;
  sched::QuerySchedulerConfig config;
  config.system_cost_limit = 300000.0;
  config.control_interval_seconds = 50.0;
  config.telemetry = &telemetry;
  sched::QueryScheduler qs(&simulator_, &engine_, &classes_, config);
  qs.Start(400.0);
  for (int i = 0; i < 8; ++i) {
    qs.Submit(MakeOlapQuery(100 + i, 1 + i % 2, 30000.0),
              [](const workload::QueryRecord&) {});
    qs.Submit(MakeOltpQuery(200 + i, i), [](const workload::QueryRecord&) {});
  }
  simulator_.RunUntil(400.0);

  // Exactly one audit record per planning cycle, numbered sequentially.
  ASSERT_EQ(telemetry.audit.size(), qs.planning_cycles());
  ASSERT_EQ(telemetry.audit.size(), 8u);
  uint64_t expected = 1;
  for (const PlannerAuditRecord& record : telemetry.audit.records()) {
    EXPECT_EQ(record.interval, expected);
    ++expected;
  }

  // Every audited enforced_limit is bit-for-bit the limit appended to
  // the scheduler's history and handed to the Dispatcher that interval.
  for (const sched::ServiceClassSpec& spec : classes_.classes()) {
    const sim::TimeSeries& history = qs.limit_history().at(spec.class_id);
    ASSERT_EQ(history.size(), telemetry.audit.size());
    size_t i = 0;
    for (const PlannerAuditRecord& record : telemetry.audit.records()) {
      const PlannerAuditClass* cls = nullptr;
      for (const PlannerAuditClass& candidate : record.classes) {
        if (candidate.class_id == spec.class_id) cls = &candidate;
      }
      ASSERT_NE(cls, nullptr);
      EXPECT_EQ(cls->enforced_limit, history.at(i).value);
      EXPECT_EQ(record.sim_time, history.at(i).time);
      ++i;
    }
    // The final record is the plan the dispatcher is running right now.
    const PlannerAuditRecord& last = telemetry.audit.records().back();
    for (const PlannerAuditClass& cls : last.classes) {
      if (cls.class_id != spec.class_id) continue;
      EXPECT_EQ(cls.enforced_limit,
                qs.dispatcher().plan().LimitFor(spec.class_id));
    }
  }

  // Each interval's enforced limits sum to the system cost limit.
  for (const PlannerAuditRecord& record : telemetry.audit.records()) {
    double sum = 0.0;
    for (const PlannerAuditClass& cls : record.classes) {
      sum += cls.enforced_limit;
    }
    EXPECT_NEAR(sum, 300000.0, 1.0);
  }

  // The cost-limit gauges track the final plan too.
  for (const sched::ServiceClassSpec& spec : classes_.classes()) {
    Gauge* gauge = telemetry.registry.GetGauge(
        "qsched_cost_limit_timerons",
        "class=\"" + std::to_string(spec.class_id) + "\"");
    EXPECT_EQ(gauge->value(),
              qs.dispatcher().plan().LimitFor(spec.class_id));
  }
}

TEST_F(SchedulerAuditTest, DerivedAnalyticsStayConsistentWithAudit) {
  Telemetry telemetry;
  sched::QuerySchedulerConfig config;
  config.system_cost_limit = 300000.0;
  config.control_interval_seconds = 50.0;
  config.telemetry = &telemetry;
  sched::QueryScheduler qs(&simulator_, &engine_, &classes_, config);
  qs.Start(400.0);
  for (int i = 0; i < 8; ++i) {
    qs.Submit(MakeOlapQuery(100 + i, 1 + i % 2, 30000.0),
              [](const workload::QueryRecord&) {});
    qs.Submit(MakeOltpQuery(200 + i, i), [](const workload::QueryRecord&) {});
  }
  simulator_.RunUntil(400.0);

  const size_t cycles = telemetry.audit.size();
  ASSERT_GT(cycles, 2u);
  const size_t num_classes = classes_.classes().size();

  // One recorder row per audit record, and every recorder column is
  // bit-for-bit the value the matching audit record carries.
  ASSERT_EQ(telemetry.recorder.size(), cycles);
  std::vector<IntervalRow> rows = telemetry.recorder.Rows();
  size_t i = 0;
  for (const PlannerAuditRecord& record : telemetry.audit.records()) {
    const IntervalRow& row = rows[i++];
    EXPECT_EQ(row.interval, record.interval);
    EXPECT_EQ(row.sim_time, record.sim_time);
    ASSERT_EQ(row.classes.size(), record.classes.size());
    for (size_t c = 0; c < row.classes.size(); ++c) {
      EXPECT_EQ(row.classes[c].class_id, record.classes[c].class_id);
      EXPECT_EQ(row.classes[c].cost_limit,
                record.classes[c].enforced_limit);
      EXPECT_EQ(row.classes[c].measured,
                record.classes[c].measured_smoothed);
      EXPECT_EQ(row.classes[c].goal_ratio, record.classes[c].goal_ratio);
    }
  }

  // One prediction per class per cycle; the final cycle's are pending.
  ASSERT_EQ(telemetry.ledger.size(), cycles * num_classes);
  for (const PredictionRecord& pred : telemetry.ledger.Records()) {
    if (!pred.resolved) {
      EXPECT_EQ(pred.predicted_at, static_cast<uint64_t>(cycles));
      continue;
    }
    // The resolved observation is bit-identical to the smoothed
    // measurement the audit recorded at the target interval — and so
    // the %.9g JSONL renderings of the two artifacts agree exactly.
    const PlannerAuditRecord& target =
        telemetry.audit.records()[pred.target_interval - 1];
    ASSERT_EQ(target.interval, pred.target_interval);
    const PlannerAuditClass* cls = nullptr;
    for (const PlannerAuditClass& candidate : target.classes) {
      if (candidate.class_id == pred.class_id) cls = &candidate;
    }
    ASSERT_NE(cls, nullptr);
    EXPECT_EQ(pred.observed, cls->measured_smoothed);
    EXPECT_EQ(StrPrintf("%.9g", pred.observed),
              StrPrintf("%.9g", cls->measured_smoothed));
  }

  // The SLO monitor saw every (class, interval) pair the planner ran.
  for (const sched::ServiceClassSpec& spec : classes_.classes()) {
    EXPECT_EQ(telemetry.slo.intervals_observed(spec.class_id),
              static_cast<uint64_t>(cycles));
    const double rolling = telemetry.slo.RollingAttainment(spec.class_id);
    EXPECT_GE(rolling, 0.0);
    EXPECT_LE(rolling, 1.0);
    // The attainment gauge published the monitor's rolling value.
    Gauge* gauge = telemetry.registry.GetGauge(
        "qsched_slo_attainment",
        "class=\"" + std::to_string(spec.class_id) + "\"");
    EXPECT_EQ(gauge->value(), rolling);
  }

  // Solver wall time is host wall clock: positive, sub-second sane.
  for (const IntervalRow& row : rows) {
    EXPECT_GT(row.solver_wall_seconds, 0.0);
    EXPECT_LT(row.solver_wall_seconds, 10.0);
  }
}

TEST_F(SchedulerAuditTest, SpansCoverInterceptedAndBypassedQueries) {
  Telemetry telemetry;
  // The engine is shared infrastructure: the harness (not the
  // scheduler) owns its telemetry wiring.
  engine_.set_telemetry(&telemetry);
  sched::QuerySchedulerConfig config;
  config.telemetry = &telemetry;
  sched::QueryScheduler qs(&simulator_, &engine_, &classes_, config);

  qs.Submit(MakeOlapQuery(1, 1, 1000.0), [](const workload::QueryRecord&) {});
  qs.Submit(MakeOltpQuery(2, 0), [](const workload::QueryRecord&) {});
  simulator_.RunToCompletion();

  EXPECT_EQ(telemetry.spans.closed_total(), 2u);
  EXPECT_EQ(telemetry.spans.open_count(), 0u);
  const QuerySpan* olap = nullptr;
  const QuerySpan* oltp = nullptr;
  for (const QuerySpan& span : telemetry.spans.closed()) {
    if (span.query_id == 1) olap = &span;
    if (span.query_id == 2) oltp = &span;
  }
  ASSERT_NE(olap, nullptr);
  ASSERT_NE(oltp, nullptr);
  // The OLAP query went through the full intercept pipeline.
  EXPECT_FALSE(olap->is_oltp);
  EXPECT_GE(olap->enqueue_time, 0.35);  // after interception delay
  EXPECT_GE(olap->dispatch_time, olap->enqueue_time);
  EXPECT_GE(olap->end_time, olap->exec_start_time);
  // The OLTP query bypassed interception: no enqueue/dispatch stamps.
  EXPECT_TRUE(oltp->is_oltp);
  EXPECT_DOUBLE_EQ(oltp->enqueue_time, -1.0);
  EXPECT_DOUBLE_EQ(oltp->dispatch_time, -1.0);
  EXPECT_TRUE(oltp->Closed());
  EXPECT_FALSE(oltp->cancelled);

  // The registry saw both paths.
  EXPECT_EQ(
      telemetry.registry.GetCounter("qsched_qp_intercepted_total")->value(),
      1u);
  EXPECT_EQ(
      telemetry.registry.GetCounter("qsched_qp_bypassed_total")->value(),
      1u);
  EXPECT_EQ(
      telemetry.registry.GetCounter("qsched_engine_queries_completed_total")
          ->value(),
      2u);
}

TEST_F(SchedulerAuditTest, CancelledQueryClosesSpanAsCancelled) {
  Telemetry telemetry;
  sched::QuerySchedulerConfig config;
  config.telemetry = &telemetry;
  sched::QueryScheduler qs(&simulator_, &engine_, &classes_, config);

  // Saturate class 1 so a second query stays queued, then cancel it.
  qs.Submit(MakeOlapQuery(1, 1, 90000.0), [](const workload::QueryRecord&) {});
  qs.Submit(MakeOlapQuery(2, 1, 90000.0), [](const workload::QueryRecord&) {});
  simulator_.RunUntil(1.0);  // past the interception delay
  if (qs.dispatcher().QueuedFor(1) > 0) {
    qs.interceptor().CancelQueued(2);
  }
  simulator_.RunToCompletion();

  bool found_cancelled = false;
  for (const QuerySpan& span : telemetry.spans.closed()) {
    if (span.query_id == 2 && span.cancelled) found_cancelled = true;
  }
  // Whichever way the race went, every span must be closed.
  EXPECT_EQ(telemetry.spans.open_count(), 0u);
  if (qs.interceptor().cancelled_total() > 0) {
    EXPECT_TRUE(found_cancelled);
  }
}

}  // namespace
}  // namespace qsched::obs
