#include <atomic>
#include <chrono>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "obs/telemetry.h"
#include "rt/gateway.h"
#include "rt/loadgen.h"
#include "rt/runtime.h"
#include "rt/wall_clock.h"
#include "scheduler/service_class.h"
#include "workload/tpcc_workload.h"
#include "workload/tpch_workload.h"

namespace qsched::rt {
namespace {

double WallSecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

TEST(WallClockTest, NowAdvancesWithTimeScale) {
  WallClock clock(WallClock::Options{/*time_scale=*/100.0});
  double t0 = clock.Now();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double t1 = clock.Now();
  // 20 ms wall at scale 100 is 2 model seconds; allow generous slack.
  EXPECT_GE(t1 - t0, 1.0);
  EXPECT_LT(t1 - t0, 60.0);
}

TEST(WallClockTest, TimersFireInOrderWithFifoTieBreak) {
  WallClock clock(WallClock::Options{/*time_scale=*/100.0});
  std::mutex mu;
  std::vector<int> order;
  auto record = [&](int id) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(id);
  };
  double base = clock.Now() + 2.0;  // 20 ms wall from now
  clock.ScheduleAt(base + 1.0, [&] { record(3); });
  clock.ScheduleAt(base, [&] { record(1); });
  clock.ScheduleAt(base, [&] { record(2); });  // same timestamp: FIFO
  sim::EventId cancelled = clock.ScheduleAt(base + 0.5, [&] { record(9); });
  EXPECT_TRUE(clock.Cancel(cancelled));
  EXPECT_FALSE(clock.Cancel(cancelled));  // already cancelled
  clock.Start();
  // Wait for all three to fire (wall deadline ~30 ms, allow 5 s).
  for (int i = 0; i < 500; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    std::lock_guard<std::mutex> lock(mu);
    if (order.size() >= 3) break;
  }
  clock.Stop();
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
  EXPECT_EQ(clock.timers_fired(), 3u);
}

TEST(WallClockTest, PastTimesClampAndStillFire) {
  WallClock clock(WallClock::Options{/*time_scale=*/100.0});
  clock.Start();
  std::atomic<bool> fired{false};
  clock.ScheduleAt(-50.0, [&] { fired.store(true); });
  for (int i = 0; i < 500 && !fired.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(fired.load());
  clock.Stop();
}

TEST(WallClockTest, CallbacksMayScheduleFollowOnEvents) {
  WallClock clock(WallClock::Options{/*time_scale=*/100.0});
  std::atomic<int> hops{0};
  clock.Start();
  // Each hop schedules the next from inside a timer callback — the
  // DES idiom the core lock must support re-entrantly.
  std::function<void()> hop = [&] {
    if (hops.fetch_add(1) < 4) clock.ScheduleAfter(0.1, [&] { hop(); });
  };
  clock.ScheduleAfter(0.1, [&] { hop(); });
  for (int i = 0; i < 500 && hops.load() < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(hops.load(), 5);
  clock.Stop();
}

TEST(LoadGenTest, RateFactorPatterns) {
  LoadGenOptions options;
  options.pattern = ArrivalPattern::kConstant;
  EXPECT_DOUBLE_EQ(LoadGenerator::RateFactorAt(0.37, options), 1.0);

  options.pattern = ArrivalPattern::kBursty;
  options.burst_period_seconds = 1.0;
  options.burst_duty = 0.3;
  options.burst_factor = 4.0;
  EXPECT_DOUBLE_EQ(LoadGenerator::RateFactorAt(0.1, options), 4.0);
  EXPECT_DOUBLE_EQ(LoadGenerator::RateFactorAt(0.9, options), 1.0);
  EXPECT_DOUBLE_EQ(LoadGenerator::RateFactorAt(1.2, options), 4.0);

  options.pattern = ArrivalPattern::kDiurnal;
  options.diurnal_period_seconds = 4.0;
  options.diurnal_amplitude = 0.8;
  EXPECT_NEAR(LoadGenerator::RateFactorAt(1.0, options), 1.8, 1e-9);
  EXPECT_NEAR(LoadGenerator::RateFactorAt(3.0, options), 0.2, 1e-9);
  // Amplitude above 1 would go negative at the trough: clamped to 0.
  options.diurnal_amplitude = 1.5;
  EXPECT_DOUBLE_EQ(LoadGenerator::RateFactorAt(3.0, options), 0.0);

  ArrivalPattern parsed;
  EXPECT_TRUE(ArrivalPatternFromString("bursty", &parsed));
  EXPECT_EQ(parsed, ArrivalPattern::kBursty);
  EXPECT_FALSE(ArrivalPatternFromString("nope", &parsed));
}

// The PR's acceptance test (wired into CTest as rt_gateway_smoke and run
// under the TSan and ASan gates): a >= 2 s wall-clock mixed OLAP + OLTP
// run at >= 1000 submissions/second through the gateway, with exact
// query conservation (no query lost, none completed twice) and at least
// two control-loop cycles in the planner audit JSONL.
TEST(RtRuntimeTest, GatewaySmoke) {
  obs::Telemetry telemetry;

  RuntimeOptions options;
  options.time_scale = 60.0;  // 1 wall second = 1 paper-scale minute
  options.horizon_model_seconds = 3600.0;
  options.seed = 42;
  options.gateway.queue_capacity = 8192;
  options.gateway.workers = 4;
  options.scheduler.control_interval_seconds = 15.0;  // 0.25 s wall
  options.telemetry = &telemetry;

  sched::ServiceClassSet classes = sched::MakePaperClasses();
  Runtime runtime(classes, options);

  // Duplicate / loss detection over everything that completes.
  std::mutex seen_mu;
  std::unordered_set<uint64_t> seen_ids;
  std::atomic<uint64_t> duplicate_completions{0};
  runtime.gateway().set_on_complete(
      [&](const workload::QueryRecord& record) {
        std::lock_guard<std::mutex> lock(seen_mu);
        if (!seen_ids.insert(record.query_id).second) {
          duplicate_completions.fetch_add(1);
        }
      });

  auto wall_start = std::chrono::steady_clock::now();
  runtime.Start();

  // Mixed workload, OLTP-heavy like the paper's testbed. A light TPC-H
  // scale keeps individual scans short enough for a bounded drain.
  workload::TpchWorkloadParams tpch;
  tpch.scale_factor = 0.1;
  workload::TpchWorkload olap1(tpch, /*seed=*/7);
  workload::TpchWorkload olap2(tpch, /*seed=*/8);
  workload::TpccWorkloadParams tpcc;
  workload::TpccWorkload oltp(tpcc, /*seed=*/9);

  LoadGenOptions load;
  load.pattern = ArrivalPattern::kBursty;
  load.qps = 1500.0;
  load.duration_wall_seconds = 2.1;
  load.seed = 1234;
  load.burst_period_seconds = 0.5;
  load.burst_duty = 0.4;
  load.burst_factor = 2.0;
  LoadGenerator loadgen(&runtime.gateway(),
                        {{&olap1, 1, 3.0}, {&olap2, 2, 3.0}, {&oltp, 3, 94.0}},
                        load, &telemetry);
  loadgen.Start();
  loadgen.Join();
  double feed_seconds = WallSecondsSince(wall_start);

  Runtime::Stats stats = runtime.Shutdown(/*drain_timeout_wall_seconds=*/120.0);

  // Sustained offered load: >= 2 s of wall time at >= 1000 queries/s.
  EXPECT_GE(feed_seconds, 2.0);
  EXPECT_GE(static_cast<double>(loadgen.offered()),
            1000.0 * load.duration_wall_seconds)
      << "offered " << loadgen.offered() << " over "
      << load.duration_wall_seconds << " s";

  // Conservation: every producer-side query is accounted for exactly
  // once — accepted or rejected at the gate, and every accepted query
  // admitted and completed exactly once.
  EXPECT_TRUE(stats.drained) << "in flight after drain: "
                             << stats.admitted - stats.completed;
  EXPECT_EQ(stats.accepted + stats.rejected, loadgen.offered());
  EXPECT_EQ(loadgen.shed(), stats.rejected);
  EXPECT_EQ(stats.admitted, stats.accepted);
  EXPECT_EQ(stats.completed, stats.accepted);
  EXPECT_EQ(duplicate_completions.load(), 0u);
  {
    std::lock_guard<std::mutex> lock(seen_mu);
    EXPECT_EQ(seen_ids.size(), stats.completed);
  }
  // The run actually pushed real volume through the stack.
  EXPECT_GE(stats.completed, 2000u);

  // The live control loop planned repeatedly and left an audit trail.
  EXPECT_GE(stats.planning_cycles, 2u);
  std::ostringstream jsonl;
  telemetry.audit.WriteJsonl(jsonl);
  std::string text = jsonl.str();
  size_t lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_GE(lines, 2u) << "planner audit JSONL has too few records";

  // Model components really ran on the wall clock.
  EXPECT_GT(stats.timers_fired, 0u);
  EXPECT_GT(stats.model_seconds, 2.0 * options.time_scale * 0.9);
  EXPECT_GT(runtime.engine().queries_completed(), 0u);
}

// Batched admission under concurrent producers: whatever the batch size,
// offered == accepted + rejected and admitted == completed, with the
// batch-occupancy histogram never exceeding the configured cap. Runs in
// the TSan gate, so the PopBatch -> RunBatch handoff is raced for real.
TEST(RtRuntimeTest, BatchedAdmissionConservesAcrossProducers) {
  for (size_t batch : {size_t{1}, size_t{7}, size_t{32}}) {
    obs::Telemetry telemetry;
    RuntimeOptions options;
    options.time_scale = 240.0;
    options.gateway.queue_capacity = 4096;
    options.gateway.workers = 4;
    options.gateway.admit_batch_size = batch;
    options.telemetry = &telemetry;
    sched::ServiceClassSet classes = sched::MakePaperClasses();
    Runtime runtime(classes, options);
    runtime.Start();

    constexpr int kProducers = 8;
    constexpr int kPerProducer = 150;
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> rejected{0};
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        workload::TpccWorkload oltp(workload::TpccWorkloadParams{},
                                    /*seed=*/100 + p);
        for (int i = 0; i < kPerProducer; ++i) {
          workload::Query query = oltp.Next();
          query.class_id = 3;
          query.client_id = p;
          if (runtime.gateway().Submit(std::move(query))) {
            accepted.fetch_add(1);
          } else {
            rejected.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : producers) t.join();
    Runtime::Stats stats =
        runtime.Shutdown(/*drain_timeout_wall_seconds=*/120.0);

    EXPECT_TRUE(stats.drained) << "batch " << batch;
    EXPECT_EQ(accepted.load() + rejected.load(),
              static_cast<uint64_t>(kProducers * kPerProducer));
    EXPECT_EQ(stats.accepted, accepted.load()) << "batch " << batch;
    EXPECT_EQ(stats.admitted, stats.accepted) << "batch " << batch;
    EXPECT_EQ(stats.completed, stats.accepted) << "batch " << batch;

    obs::Histogram* occupancy =
        telemetry.registry.GetHistogram("qsched_rt_batch_occupancy");
    EXPECT_GT(occupancy->count(), 0u) << "batch " << batch;
    EXPECT_LE(occupancy->max(), static_cast<double>(batch))
        << "batch " << batch;
    EXPECT_EQ(
        telemetry.registry.GetGauge("qsched_rt_admit_batch_size")->value(),
        static_cast<double>(batch));
  }
}

// Shutdown racing the producers mid-batch: queries already accepted into
// the queue are still admitted and completed; later offers are rejected
// with kShuttingDown; nothing is lost in a half-drained batch.
TEST(RtRuntimeTest, ShutdownMidBatchConservesAdmittedQueries) {
  RuntimeOptions options;
  options.time_scale = 240.0;
  options.gateway.queue_capacity = 1024;
  options.gateway.workers = 4;
  options.gateway.admit_batch_size = 16;
  sched::ServiceClassSet classes = sched::MakePaperClasses();
  Runtime runtime(classes, options);
  runtime.Start();

  constexpr int kProducers = 8;
  constexpr int kMaxPerProducer = 3000;
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> shutdown_rejects{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      workload::TpccWorkload oltp(workload::TpccWorkloadParams{},
                                  /*seed=*/200 + p);
      for (int i = 0; i < kMaxPerProducer; ++i) {
        workload::Query query = oltp.Next();
        query.class_id = 3;
        query.client_id = p;
        RejectReason reason = RejectReason::kQueueFull;
        if (runtime.gateway().Offer(std::move(query), nullptr, &reason)) {
          accepted.fetch_add(1);
        } else {
          rejected.fetch_add(1);
          if (reason == RejectReason::kShuttingDown) {
            shutdown_rejects.fetch_add(1);
            break;
          }
        }
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Runtime::Stats stats =
      runtime.Shutdown(/*drain_timeout_wall_seconds=*/120.0);
  for (auto& t : producers) t.join();

  EXPECT_TRUE(stats.drained);
  EXPECT_GT(accepted.load(), 0u);
  EXPECT_GT(shutdown_rejects.load(), 0u)
      << "shutdown did not race the producers";
  // Accepted is final once the queue closes, so the post-drain snapshot
  // agrees with the producers' own count; every accepted query was
  // admitted and completed even when the shutdown landed mid-batch.
  EXPECT_EQ(stats.accepted, accepted.load());
  EXPECT_EQ(stats.admitted, stats.accepted);
  EXPECT_EQ(stats.completed, stats.accepted);
  EXPECT_EQ(runtime.gateway().rejected(), rejected.load());
}

// Backpressure end-to-end: a tiny queue with blocking submission never
// sheds, and every query still completes exactly once.
TEST(RtRuntimeTest, BlockingSubmissionBackpressure) {
  RuntimeOptions options;
  options.time_scale = 120.0;
  options.gateway.queue_capacity = 2;
  options.gateway.workers = 1;
  options.scheduler.control_interval_seconds = 30.0;

  sched::ServiceClassSet classes = sched::MakePaperClasses();
  Runtime runtime(classes, options);
  runtime.Start();

  workload::TpccWorkloadParams tpcc;
  workload::TpccWorkload oltp(tpcc, /*seed=*/5);
  for (int i = 0; i < 200; ++i) {
    workload::Query query = oltp.Next();
    query.class_id = 3;
    query.client_id = i % 8;
    ASSERT_TRUE(runtime.gateway().Submit(std::move(query)));
  }
  Runtime::Stats stats = runtime.Shutdown(/*drain_timeout_wall_seconds=*/60.0);
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(stats.accepted, 200u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.completed, 200u);
}

// After Shutdown the gateway refuses new work instead of losing it
// silently.
TEST(RtRuntimeTest, SubmissionAfterShutdownIsRejected) {
  RuntimeOptions options;
  options.time_scale = 120.0;
  sched::ServiceClassSet classes = sched::MakePaperClasses();
  Runtime runtime(classes, options);
  runtime.Start();
  runtime.Shutdown();

  workload::TpccWorkloadParams tpcc;
  workload::TpccWorkload oltp(tpcc, /*seed=*/5);
  workload::Query query = oltp.Next();
  query.class_id = 3;
  EXPECT_FALSE(runtime.gateway().Offer(std::move(query)));
}

/// Frontend that swallows queries without completing them, so the
/// gateway queue stays exactly as the test filled it.
class BlackholeFrontend : public workload::QueryFrontend {
 public:
  void Submit(const workload::Query&, CompleteFn) override {}
};

// The two rejection reasons are reported distinctly, with matching
// per-reason counters and telemetry labels.
TEST(RtRuntimeTest, OfferReportsRejectReason) {
  WallClock clock(WallClock::Options{/*time_scale=*/1.0});
  BlackholeFrontend frontend;
  obs::Telemetry telemetry;
  GatewayOptions options;
  options.queue_capacity = 2;
  // Workers never started: the queue fills and stays full.
  Gateway gateway(&clock, &frontend, options, &telemetry);

  workload::TpccWorkloadParams tpcc;
  workload::TpccWorkload oltp(tpcc, /*seed=*/5);
  EXPECT_TRUE(gateway.Offer(oltp.Next()));
  EXPECT_TRUE(gateway.Offer(oltp.Next()));
  RejectReason reason = RejectReason::kShuttingDown;
  EXPECT_FALSE(gateway.Offer(oltp.Next(), nullptr, &reason));
  EXPECT_EQ(reason, RejectReason::kQueueFull);
  EXPECT_EQ(gateway.rejected_queue_full(), 1u);
  EXPECT_EQ(gateway.rejected_shutting_down(), 0u);

  gateway.Drain();
  reason = RejectReason::kQueueFull;
  EXPECT_FALSE(gateway.Offer(oltp.Next(), nullptr, &reason));
  EXPECT_EQ(reason, RejectReason::kShuttingDown);
  EXPECT_FALSE(gateway.Submit(oltp.Next(), nullptr, &reason));
  EXPECT_EQ(reason, RejectReason::kShuttingDown);
  EXPECT_EQ(gateway.rejected_shutting_down(), 2u);
  EXPECT_EQ(gateway.rejected(), 3u);

  obs::Registry& reg = telemetry.registry;
  EXPECT_EQ(reg.GetCounter("qsched_rt_rejected_total")->value(), 3u);
  EXPECT_EQ(reg.GetCounter("qsched_rt_rejected_by_reason_total",
                           "reason=\"queue_full\"")
                ->value(),
            1u);
  EXPECT_EQ(reg.GetCounter("qsched_rt_rejected_by_reason_total",
                           "reason=\"shutting_down\"")
                ->value(),
            2u);
}

// The per-query completion hook fires exactly once per accepted query,
// before the global observer, and never for rejected submissions.
TEST(RtRuntimeTest, PerQueryCompletionHookFiresExactlyOnce) {
  RuntimeOptions options;
  options.time_scale = 120.0;
  sched::ServiceClassSet classes = sched::MakePaperClasses();
  Runtime runtime(classes, options);

  std::atomic<uint64_t> global_calls{0};
  runtime.gateway().set_on_complete(
      [&](const workload::QueryRecord&) { global_calls.fetch_add(1); });
  runtime.Start();

  workload::TpccWorkloadParams tpcc;
  workload::TpccWorkload oltp(tpcc, /*seed=*/6);
  constexpr int kQueries = 20;
  std::atomic<uint64_t> hook_calls{0};
  std::atomic<uint64_t> hook_before_global{0};
  for (int i = 0; i < kQueries; ++i) {
    workload::Query query = oltp.Next();
    query.class_id = 3;
    query.client_id = i % 4;
    ASSERT_TRUE(runtime.gateway().Submit(
        std::move(query), [&](const workload::QueryRecord& record) {
          EXPECT_GT(record.query_id, 0u);
          hook_calls.fetch_add(1);
          // The per-query hook runs before the global observer sees
          // this completion.
          if (global_calls.load() < kQueries) {
            hook_before_global.fetch_add(1);
          }
        }));
  }
  Runtime::Stats stats =
      runtime.Shutdown(/*drain_timeout_wall_seconds=*/60.0);
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(hook_calls.load(), static_cast<uint64_t>(kQueries));
  EXPECT_EQ(global_calls.load(), static_cast<uint64_t>(kQueries));
  EXPECT_EQ(hook_before_global.load(), static_cast<uint64_t>(kQueries));
}

}  // namespace
}  // namespace qsched::rt
