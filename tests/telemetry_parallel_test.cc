// Hammers one shared obs::Telemetry from a ThreadPool's workers — the
// exact sharing pattern the parallel replication runner uses — and
// asserts the final counts are exact. Built into the normal test binary
// and additionally run under -DQSCHED_SANITIZE=thread as part of the
// parallel_replication_tsan gate, where TSan turns any missing lock in
// the telemetry sinks into a hard failure.

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/parallel.h"
#include "obs/telemetry.h"

namespace qsched::obs {
namespace {

constexpr int kWorkers = 8;
constexpr int kOpsPerWorker = 400;

TEST(TelemetryParallelTest, RegistryCountsStayExactUnderContention) {
  Telemetry telemetry;
  // Pre-register the shared handles once, like instrumented components
  // do, so workers exercise the hot (pointer-cached) path as well as
  // the registry lookup path.
  Counter* shared_counter =
      telemetry.registry.GetCounter("par_events_total");
  Gauge* shared_gauge = telemetry.registry.GetGauge("par_gauge");
  Histogram* shared_hist =
      telemetry.registry.GetHistogram("par_latency_seconds");

  harness::ThreadPool pool(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    pool.Submit([&, w] {
      // Per-worker labelled metric, looked up through the registry on
      // every iteration to contend on the registry mutex too.
      const std::string label = "worker=\"" + std::to_string(w) + "\"";
      for (int i = 0; i < kOpsPerWorker; ++i) {
        shared_counter->Inc();
        shared_gauge->Add(1.0);
        shared_hist->Record(0.001 * (i + 1));
        telemetry.registry.GetCounter("par_events_total", label)->Inc();
      }
    });
  }
  pool.Wait();

  const uint64_t expected =
      static_cast<uint64_t>(kWorkers) * kOpsPerWorker;
  EXPECT_EQ(shared_counter->value(), expected);
  EXPECT_DOUBLE_EQ(shared_gauge->value(), static_cast<double>(expected));
  EXPECT_EQ(shared_hist->count(), expected);
  EXPECT_DOUBLE_EQ(shared_hist->min(), 0.001);
  for (int w = 0; w < kWorkers; ++w) {
    const std::string label = "worker=\"" + std::to_string(w) + "\"";
    EXPECT_EQ(
        telemetry.registry.GetCounter("par_events_total", label)->value(),
        static_cast<uint64_t>(kOpsPerWorker));
  }
  // Shared counter + gauge + histogram + one labelled counter per worker.
  EXPECT_EQ(telemetry.registry.size(), 3u + kWorkers);
}

TEST(TelemetryParallelTest, AuditAndRecorderAcceptConcurrentWriters) {
  Telemetry telemetry;

  harness::ThreadPool pool(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    pool.Submit([&, w] {
      for (int i = 0; i < kOpsPerWorker; ++i) {
        PlannerAuditRecord record;
        record.interval = static_cast<uint64_t>(i + 1);
        record.sim_time = 60.0 * (i + 1);
        record.system_cost_limit = 300000.0;
        record.allocator = "utility-search";
        PlannerAuditClass cls;
        cls.class_id = w + 1;
        cls.enforced_limit = 1000.0 * (w + 1);
        record.classes.push_back(cls);
        telemetry.audit.Add(std::move(record));

        IntervalRow row;
        row.interval = static_cast<uint64_t>(i + 1);
        row.sim_time = 60.0 * (i + 1);
        IntervalClassSample sample;
        sample.class_id = w + 1;
        sample.cost_limit = 1000.0 * (w + 1);
        sample.measured = 0.5;
        row.classes.push_back(sample);
        telemetry.recorder.Append(std::move(row));
      }
    });
  }
  pool.Wait();

  const size_t expected = static_cast<size_t>(kWorkers) * kOpsPerWorker;
  EXPECT_EQ(telemetry.audit.size(), expected);
  EXPECT_EQ(telemetry.audit.dropped(), 0u);
  EXPECT_EQ(telemetry.recorder.size(), expected);
  EXPECT_EQ(telemetry.recorder.dropped(), 0u);
  // Every row survived intact: per-class totals match what was written.
  std::vector<int> rows_per_class(kWorkers + 1, 0);
  for (const IntervalRow& row : telemetry.recorder.Rows()) {
    ASSERT_EQ(row.classes.size(), 1u);
    const int id = row.classes[0].class_id;
    ASSERT_GE(id, 1);
    ASSERT_LE(id, kWorkers);
    EXPECT_DOUBLE_EQ(row.classes[0].cost_limit, 1000.0 * id);
    ++rows_per_class[id];
  }
  for (int w = 1; w <= kWorkers; ++w) {
    EXPECT_EQ(rows_per_class[w], kOpsPerWorker);
  }
}

TEST(TelemetryParallelTest, LedgerAndSloMonitorPartitionByClass) {
  Telemetry telemetry;

  // Each worker owns one class id and walks its own interval sequence —
  // the per-class monotonicity contract — while all of them share the
  // ledger's and monitor's internal state.
  harness::ThreadPool pool(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    pool.Submit([&, w] {
      const int class_id = w + 1;
      const bool is_oltp = (w % 2 == 1);
      for (int i = 1; i <= kOpsPerWorker; ++i) {
        const uint64_t interval = static_cast<uint64_t>(i);
        // Resolve the previous interval's prediction, then record the
        // next one — the planner's per-cycle order.
        telemetry.ledger.Observe(interval, class_id, 1.0);
        telemetry.ledger.Predict(interval, class_id, is_oltp,
                                 /*predicted=*/1.25,
                                 /*model_slope=*/1e-5);
        // Alternate met/missed so attainment and violation events are
        // both exercised.
        const double ratio = (i % 2 == 0) ? 1.1 : 0.8;
        telemetry.slo.Observe(class_id, interval, 60.0 * i, ratio);
      }
    });
  }
  pool.Wait();

  const size_t expected = static_cast<size_t>(kWorkers) * kOpsPerWorker;
  EXPECT_EQ(telemetry.ledger.size(), expected);
  EXPECT_EQ(telemetry.ledger.dropped(), 0u);
  for (int w = 0; w < kWorkers; ++w) {
    const int class_id = w + 1;
    // Every prediction except the last resolved against the next
    // interval's Observe, with |1.0 - 1.25| = 0.25 residual each time.
    const ResidualStats stats = telemetry.ledger.StatsFor(class_id);
    EXPECT_EQ(stats.count,
              static_cast<uint64_t>(kOpsPerWorker - 1));
    EXPECT_NEAR(stats.mean_abs_error, 0.25, 1e-12);
    EXPECT_NEAR(stats.bias, -0.25, 1e-12);

    EXPECT_EQ(telemetry.slo.intervals_observed(class_id),
              static_cast<uint64_t>(kOpsPerWorker));
    EXPECT_NEAR(telemetry.slo.OverallAttainment(class_id), 0.5, 1e-12);
    // Odd intervals violate, even ones recover: one single-interval
    // event per odd interval.
    EXPECT_EQ(telemetry.slo.EventsFor(class_id).size(),
              static_cast<size_t>(kOpsPerWorker / 2));
  }
  // The OLTP classes all logged one slope point per prediction.
  EXPECT_EQ(telemetry.ledger.SlopeTrajectory().size(),
            static_cast<size_t>(kWorkers / 2) * kOpsPerWorker);
}

}  // namespace
}  // namespace qsched::obs
