#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "engine/buffer_pool.h"
#include "engine/execution_engine.h"
#include "engine/resources.h"
#include "sim/simulator.h"

namespace qsched::engine {
namespace {

TEST(ProcessorSharingTest, SingleJobRunsAtFullSpeed) {
  sim::Simulator simulator;
  ProcessorSharingPool pool(&simulator, 2);
  double done_at = -1.0;
  pool.Submit(3.0, [&] { done_at = simulator.Now(); });
  simulator.RunToCompletion();
  EXPECT_NEAR(done_at, 3.0, 1e-9);
}

TEST(ProcessorSharingTest, TwoJobsOnTwoServersDoNotInterfere) {
  sim::Simulator simulator;
  ProcessorSharingPool pool(&simulator, 2);
  double a = -1, b = -1;
  pool.Submit(2.0, [&] { a = simulator.Now(); });
  pool.Submit(3.0, [&] { b = simulator.Now(); });
  simulator.RunToCompletion();
  EXPECT_NEAR(a, 2.0, 1e-9);
  EXPECT_NEAR(b, 3.0, 1e-9);
}

TEST(ProcessorSharingTest, OverloadSharesFairly) {
  sim::Simulator simulator;
  ProcessorSharingPool pool(&simulator, 1);
  double a = -1, b = -1;
  pool.Submit(1.0, [&] { a = simulator.Now(); });
  pool.Submit(1.0, [&] { b = simulator.Now(); });
  simulator.RunToCompletion();
  // Two equal jobs sharing one core both finish at t=2.
  EXPECT_NEAR(a, 2.0, 1e-9);
  EXPECT_NEAR(b, 2.0, 1e-9);
}

TEST(ProcessorSharingTest, ShortJobFinishesFirstUnderSharing) {
  sim::Simulator simulator;
  ProcessorSharingPool pool(&simulator, 1);
  double small = -1, large = -1;
  pool.Submit(1.0, [&] { small = simulator.Now(); });
  pool.Submit(3.0, [&] { large = simulator.Now(); });
  simulator.RunToCompletion();
  // Shared until t=2 (each got 1.0), then the large job finishes alone.
  EXPECT_NEAR(small, 2.0, 1e-9);
  EXPECT_NEAR(large, 4.0, 1e-9);
}

TEST(ProcessorSharingTest, ZeroDemandCompletesImmediately) {
  sim::Simulator simulator;
  ProcessorSharingPool pool(&simulator, 2);
  bool done = false;
  pool.Submit(0.0, [&] { done = true; });
  simulator.RunToCompletion();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(simulator.Now(), 0.0);
}

TEST(ProcessorSharingTest, LateArrivalSharesRemainder) {
  sim::Simulator simulator;
  ProcessorSharingPool pool(&simulator, 1);
  double first = -1, second = -1;
  pool.Submit(2.0, [&] { first = simulator.Now(); });
  simulator.ScheduleAt(1.0, [&] {
    pool.Submit(0.5, [&] { second = simulator.Now(); });
  });
  simulator.RunToCompletion();
  // First runs alone during [0,1): 1.0 served, 1.0 left. Then sharing:
  // second needs 0.5 at rate 1/2 -> done at t=2; first also done at 2.5.
  EXPECT_NEAR(second, 2.0, 1e-9);
  EXPECT_NEAR(first, 2.5, 1e-9);
}

class PsConservationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PsConservationTest, BusyCoreSecondsEqualTotalDemand) {
  Rng rng(GetParam());
  sim::Simulator simulator;
  ProcessorSharingPool pool(&simulator, 2);
  double total_demand = 0.0;
  int completed = 0;
  const int jobs = 200;
  for (int i = 0; i < jobs; ++i) {
    double at = rng.Uniform(0.0, 50.0);
    double demand = rng.Uniform(0.01, 2.0);
    total_demand += demand;
    simulator.ScheduleAt(at, [&pool, &completed, demand] {
      pool.Submit(demand, [&completed] { ++completed; });
    });
  }
  simulator.RunToCompletion();
  EXPECT_EQ(completed, jobs);
  EXPECT_NEAR(pool.busy_core_seconds(), total_demand,
              total_demand * 1e-6 + 1e-6);
  EXPECT_EQ(pool.active_jobs(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PsConservationTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST(DiskArrayTest, SingleReadServiceTime) {
  sim::Simulator simulator;
  DiskArray disks(&simulator, 4, 0.001, 0.002, Rng(1));
  double done_at = -1.0;
  disks.SubmitRead(100.0, IoPriority::kHigh,
                  [&] { done_at = simulator.Now(); });
  simulator.RunToCompletion();
  EXPECT_NEAR(done_at, 0.102, 1e-9);
  EXPECT_DOUBLE_EQ(disks.pages_transferred(), 100.0);
}

TEST(DiskArrayTest, ZeroPagesCompletesImmediately) {
  sim::Simulator simulator;
  DiskArray disks(&simulator, 4, 0.001, 0.002, Rng(1));
  bool done = false;
  disks.SubmitRead(0.0, IoPriority::kHigh, [&] { done = true; });
  simulator.RunToCompletion();
  EXPECT_TRUE(done);
}

TEST(DiskArrayTest, SameDiskRequestsQueueFcfs) {
  sim::Simulator simulator;
  DiskArray disks(&simulator, 1, 0.001, 0.0, Rng(1));
  std::vector<double> completions;
  for (int i = 0; i < 3; ++i) {
    disks.SubmitRead(100.0, IoPriority::kLow,
                     [&] { completions.push_back(simulator.Now()); });
  }
  simulator.RunToCompletion();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_NEAR(completions[0], 0.1, 1e-9);
  EXPECT_NEAR(completions[1], 0.2, 1e-9);
  EXPECT_NEAR(completions[2], 0.3, 1e-9);
}

TEST(DiskArrayTest, DetachedWritesDelaySubsequentReads) {
  sim::Simulator simulator;
  DiskArray disks(&simulator, 1, 0.001, 0.0, Rng(1));
  disks.SubmitDetachedWrite(500.0);
  double done_at = -1.0;
  disks.SubmitRead(100.0, IoPriority::kHigh,
                  [&] { done_at = simulator.Now(); });
  simulator.RunToCompletion();
  EXPECT_NEAR(done_at, 0.6, 1e-9);
}

TEST(DiskArrayTest, HighPriorityJumpsQueuedLowWork) {
  sim::Simulator simulator;
  DiskArray disks(&simulator, 1, 0.001, 0.0, Rng(1));
  std::vector<int> order;
  // One burst in service, two bursts queued behind it.
  disks.SubmitRead(500.0, IoPriority::kLow, [&] { order.push_back(1); });
  disks.SubmitRead(500.0, IoPriority::kLow, [&] { order.push_back(2); });
  disks.SubmitRead(500.0, IoPriority::kLow, [&] { order.push_back(3); });
  EXPECT_EQ(disks.queued_requests(), 2u);
  // A synchronous read arrives: it must run right after the in-service
  // burst, ahead of the queued ones.
  double sync_done = -1.0;
  disks.SubmitRead(10.0, IoPriority::kHigh,
                   [&] { sync_done = simulator.Now(); });
  simulator.RunToCompletion();
  EXPECT_NEAR(sync_done, 0.51, 1e-9);  // 0.5 in-service + 0.01 own
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
  EXPECT_EQ(disks.queued_requests(), 0u);
}

TEST(DiskArrayTest, InServiceRequestNeverPreempted) {
  sim::Simulator simulator;
  DiskArray disks(&simulator, 1, 0.001, 0.0, Rng(1));
  double low_done = -1.0;
  disks.SubmitRead(1000.0, IoPriority::kLow,
                   [&] { low_done = simulator.Now(); });
  simulator.RunUntil(0.2);
  disks.SubmitRead(10.0, IoPriority::kHigh, [] {});
  simulator.RunToCompletion();
  // The low burst keeps its full 1.0 s of service.
  EXPECT_NEAR(low_done, 1.0, 1e-9);
}

TEST(DiskArrayTest, UtilizationReflectsBusyTime) {
  sim::Simulator simulator;
  DiskArray disks(&simulator, 2, 0.001, 0.0, Rng(1));
  disks.SubmitRead(1000.0, IoPriority::kLow, [] {});
  simulator.RunUntil(2.0);
  // 1 disk busy for 1s of a 2-disk array over 2s -> 0.25.
  EXPECT_NEAR(disks.Utilization(), 0.25, 1e-9);
}

TEST(DiskArrayTest, QueuedRequestsAccounting) {
  sim::Simulator simulator;
  DiskArray disks(&simulator, 1, 0.001, 0.0, Rng(1));
  disks.SubmitRead(100.0, IoPriority::kLow, [] {});
  disks.SubmitRead(100.0, IoPriority::kLow, [] {});
  disks.SubmitRead(100.0, IoPriority::kHigh, [] {});
  EXPECT_EQ(disks.queued_requests(), 2u);
  simulator.RunToCompletion();
  EXPECT_EQ(disks.queued_requests(), 0u);
}

TEST(ProcessorSharingTest, UtilizationMatchesLoad) {
  sim::Simulator simulator;
  ProcessorSharingPool pool(&simulator, 2);
  pool.Submit(1.0, [] {});
  simulator.RunUntil(2.0);
  // One core busy for 1 s out of 2 cores x 2 s.
  EXPECT_NEAR(pool.Utilization(), 0.25, 1e-9);
}

TEST(ExecutionEngineTest, ChunkingBoundsDiskRequestCount) {
  sim::Simulator simulator;
  EngineConfig config;
  config.io_parallelism = 1;
  ExecutionEngine engine(&simulator, config, Rng(21));
  QueryJob job;
  job.cpu_seconds = 0.1;
  job.logical_pages = 1.0e6;  // far more than max_chunks * min_chunk
  job.hit_ratio = 0.0;
  engine.Execute(job, [](const ExecStats&) {});
  simulator.RunToCompletion();
  // One request per chunk at parallelism 1, capped by max_chunks.
  EXPECT_LE(engine.disk_array().pages_transferred(), 1.0e6 + 1.0);
  EXPECT_GT(engine.disk_array().pages_transferred(), 0.99e6);
}

TEST(BufferPoolTest, HitProbabilityDecreasesWithFootprint) {
  BufferPool pool(10000, 2.0, 0.95);
  double small = pool.HitProbability(1000.0);
  double medium = pool.HitProbability(50000.0);
  double large = pool.HitProbability(500000.0);
  EXPECT_GE(small, medium);
  EXPECT_GT(medium, large);
  EXPECT_LE(small, 0.95);
  EXPECT_GE(large, 0.0);
}

TEST(BufferPoolTest, ZeroFootprintGetsMaxHit) {
  BufferPool pool(10000, 2.0, 0.9);
  EXPECT_DOUBLE_EQ(pool.HitProbability(0.0), 0.9);
}

TEST(BufferPoolTest, DeterministicSampleWithoutRng) {
  BufferPool pool(10000);
  EXPECT_DOUBLE_EQ(pool.SamplePhysicalPages(100.0, 0.8, nullptr), 20.0);
  EXPECT_DOUBLE_EQ(pool.SamplePhysicalPages(100.0, 1.0, nullptr), 0.0);
  EXPECT_DOUBLE_EQ(pool.SamplePhysicalPages(100.0, 0.0, nullptr), 100.0);
}

TEST(BufferPoolTest, SampledPhysicalWithinBounds) {
  BufferPool pool(10000);
  Rng rng(3);
  for (double n : {1.0, 10.0, 64.0, 100.0, 5000.0}) {
    for (int i = 0; i < 100; ++i) {
      double physical = pool.SamplePhysicalPages(n, 0.7, &rng);
      EXPECT_GE(physical, 0.0);
      EXPECT_LE(physical, n);
    }
  }
}

TEST(BufferPoolTest, SampleMeanMatchesMissRate) {
  BufferPool pool(10000);
  Rng rng(7);
  double total = 0.0;
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    total += pool.SamplePhysicalPages(200.0, 0.75, &rng);
  }
  EXPECT_NEAR(total / n, 50.0, 2.0);
}

TEST(BufferPoolTest, ObservedHitRatioAccounting) {
  BufferPool pool(10000);
  EXPECT_DOUBLE_EQ(pool.ObservedHitRatio(), 1.0);
  pool.RecordReads(100.0, 25.0);
  EXPECT_NEAR(pool.ObservedHitRatio(), 0.75, 1e-9);
  EXPECT_EQ(pool.logical_reads(), 100u);
  EXPECT_EQ(pool.physical_reads(), 25u);
}

EngineConfig TestEngineConfig() {
  EngineConfig config;
  return config;
}

TEST(ExecutionEngineTest, QueryCompletesWithSaneStats) {
  sim::Simulator simulator;
  ExecutionEngine engine(&simulator, TestEngineConfig(), Rng(11));
  QueryJob job;
  job.query_id = 1;
  job.database = DatabaseId::kOlap;
  job.cpu_seconds = 1.0;
  job.logical_pages = 10000.0;
  job.hit_ratio = 0.2;
  ExecStats stats;
  bool done = false;
  engine.Execute(job, [&](const ExecStats& s) {
    stats = s;
    done = true;
  });
  simulator.RunToCompletion();
  ASSERT_TRUE(done);
  EXPECT_EQ(stats.query_id, 1u);
  EXPECT_GT(stats.end_time, stats.start_time);
  EXPECT_NEAR(stats.cpu_seconds, 1.0, 1e-6);
  // ~80% of logical pages miss at hit ratio 0.2.
  EXPECT_NEAR(stats.physical_pages, 8000.0, 500.0);
  EXPECT_EQ(engine.queries_completed(), 1u);
  EXPECT_EQ(engine.active_queries(), 0u);
}

TEST(ExecutionEngineTest, CpuOnlyQueryTakesCpuTime) {
  sim::Simulator simulator;
  ExecutionEngine engine(&simulator, TestEngineConfig(), Rng(11));
  QueryJob job;
  job.cpu_seconds = 0.5;
  job.logical_pages = 0.0;
  double end = -1.0;
  engine.Execute(job, [&](const ExecStats& s) { end = s.end_time; });
  simulator.RunToCompletion();
  EXPECT_NEAR(end, 0.5, 1e-9);
}

TEST(ExecutionEngineTest, PerfectHitRatioNeverTouchesDisk) {
  sim::Simulator simulator;
  ExecutionEngine engine(&simulator, TestEngineConfig(), Rng(11));
  QueryJob job;
  job.cpu_seconds = 0.1;
  job.logical_pages = 1000.0;
  job.hit_ratio = 1.0;
  ExecStats stats;
  engine.Execute(job, [&](const ExecStats& s) { stats = s; });
  simulator.RunToCompletion();
  EXPECT_DOUBLE_EQ(stats.physical_pages, 0.0);
  EXPECT_DOUBLE_EQ(engine.disk_array().pages_transferred(), 0.0);
}

TEST(ExecutionEngineTest, ConcurrentScansSlowEachOtherDown) {
  // One big scan alone vs. the same scan with 8 competitors.
  auto run = [](int competitors) {
    sim::Simulator simulator;
    ExecutionEngine engine(&simulator, TestEngineConfig(), Rng(13));
    QueryJob job;
    job.cpu_seconds = 2.0;
    job.logical_pages = 50000.0;
    job.hit_ratio = 0.2;
    double target_end = -1.0;
    engine.Execute(job, [&](const ExecStats& s) { target_end = s.end_time; });
    for (int i = 0; i < competitors; ++i) {
      engine.Execute(job, [](const ExecStats&) {});
    }
    simulator.RunToCompletion();
    return target_end;
  };
  double alone = run(0);
  double crowded = run(8);
  EXPECT_GT(crowded, alone * 1.5);
}

TEST(ExecutionEngineTest, WritesGoToDiskAfterCompletion) {
  sim::Simulator simulator;
  ExecutionEngine engine(&simulator, TestEngineConfig(), Rng(17));
  QueryJob job;
  job.cpu_seconds = 0.01;
  job.logical_pages = 0.0;
  job.write_pages = 500.0;
  engine.Execute(job, [](const ExecStats&) {});
  simulator.RunToCompletion();
  EXPECT_DOUBLE_EQ(engine.disk_array().pages_transferred(), 500.0);
}

TEST(ExecutionEngineTest, SeparateBufferPoolsPerDatabase) {
  sim::Simulator simulator;
  ExecutionEngine engine(&simulator, TestEngineConfig(), Rng(19));
  QueryJob job;
  job.cpu_seconds = 0.01;
  job.logical_pages = 100.0;
  job.hit_ratio = 0.5;
  job.database = DatabaseId::kOltp;
  engine.Execute(job, [](const ExecStats&) {});
  simulator.RunToCompletion();
  EXPECT_GT(engine.buffer_pool(DatabaseId::kOltp).logical_reads(), 0u);
  EXPECT_EQ(engine.buffer_pool(DatabaseId::kOlap).logical_reads(), 0u);
}

class EngineConservationTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(EngineConservationTest, AllSubmittedQueriesComplete) {
  Rng rng(GetParam());
  sim::Simulator simulator;
  ExecutionEngine engine(&simulator, TestEngineConfig(), Rng(GetParam()));
  int completed = 0;
  const int queries = 60;
  for (int i = 0; i < queries; ++i) {
    QueryJob job;
    job.query_id = static_cast<uint64_t>(i);
    job.database = rng.Bernoulli(0.5) ? DatabaseId::kOlap
                                      : DatabaseId::kOltp;
    job.cpu_seconds = rng.Uniform(0.001, 1.0);
    job.logical_pages = rng.Uniform(0.0, 20000.0);
    job.write_pages = rng.Uniform(0.0, 100.0);
    job.hit_ratio = rng.Uniform(0.0, 1.0);
    double at = rng.Uniform(0.0, 30.0);
    simulator.ScheduleAt(at, [&engine, &completed, job] {
      engine.Execute(job, [&completed](const ExecStats&) { ++completed; });
    });
  }
  simulator.RunToCompletion();
  EXPECT_EQ(completed, queries);
  EXPECT_EQ(engine.active_queries(), 0u);
  EXPECT_EQ(engine.queries_completed(), static_cast<uint64_t>(queries));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineConservationTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace qsched::engine
