#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace qsched {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie(), 42);
  EXPECT_EQ(result.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.ValueOr(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> result(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(result).ValueOrDie();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ReturnNotOkTest, PropagatesError) {
  auto inner = []() { return Status::OutOfRange("too big"); };
  auto outer = [&]() -> Status {
    QSCHED_RETURN_NOT_OK(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kOutOfRange);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(9);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
  EXPECT_EQ(rng.UniformInt(8, 2), 8);  // inverted clamps to lo
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal(10.0, 3.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(RngTest, BoundedParetoStaysInBounds) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.BoundedPareto(1.3, 2.0, 500.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LE(x, 500.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, CategoricalProportionalToWeights) {
  Rng rng(29);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.Categorical(weights)];
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, CategoricalDegenerateInputs) {
  Rng rng(31);
  EXPECT_EQ(rng.Categorical({}), 0u);
  EXPECT_EQ(rng.Categorical({5.0}), 0u);
  EXPECT_EQ(rng.Categorical({0.0, 0.0}), 0u);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(77);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 4);
}

class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, UniformMeanNearHalf) {
  Rng rng(GetParam());
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(StringsTest, StrPrintfFormats) {
  EXPECT_EQ(StrPrintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrPrintf("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrPrintf("plain"), "plain");
}

TEST(StringsTest, StrPrintfLongOutput) {
  std::string big(500, 'a');
  EXPECT_EQ(StrPrintf("%s", big.c_str()).size(), 500u);
}

TEST(StringsTest, JoinAndSplitRoundTrip) {
  std::vector<std::string> parts = {"a", "", "c"};
  std::string joined = Join(parts, ",");
  EXPECT_EQ(joined, "a,,c");
  EXPECT_EQ(Split(joined, ','), parts);
}

TEST(StringsTest, JoinEmpty) { EXPECT_EQ(Join({}, ","), ""); }

TEST(StringsTest, SplitKeepsTrailingEmpty) {
  auto parts = Split("a,b,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "");
}

TEST(LoggingTest, LevelFilteringRoundTrip) {
  LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  QSCHED_LOG(Info) << "suppressed at error level";
  SetLogLevel(old_level);
}

/// Captures log lines emitted while in scope (restores stderr + the
/// previous level on destruction).
class LogCapture {
 public:
  LogCapture() : old_level_(GetLogLevel()) {
    lines().clear();
    SetLogSinkForTesting(
        [](const std::string& line) { lines().push_back(line); });
  }
  ~LogCapture() {
    SetLogSinkForTesting(nullptr);
    SetLogLevel(old_level_);
  }

  static std::vector<std::string>& lines() {
    static std::vector<std::string> storage;
    return storage;
  }

 private:
  LogLevel old_level_;
};

/// Emits one message at every level and returns how many got through.
int EmitAtEveryLevel() {
  size_t before = LogCapture::lines().size();
  QSCHED_LOG(Debug) << "debug message";
  QSCHED_LOG(Info) << "info message";
  QSCHED_LOG(Warning) << "warning message";
  QSCHED_LOG(Error) << "error message";
  return static_cast<int>(LogCapture::lines().size() - before);
}

TEST(LoggingTest, ThresholdAtEveryLevel) {
  LogCapture capture;
  // A message passes iff its level >= the configured minimum, so the
  // count of surviving messages falls by one per threshold step.
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(EmitAtEveryLevel(), 4);
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(EmitAtEveryLevel(), 3);
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(EmitAtEveryLevel(), 2);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(EmitAtEveryLevel(), 1);
}

TEST(LoggingTest, DebugAtDebugLevelIsLogged) {
  LogCapture capture;
  SetLogLevel(LogLevel::kDebug);
  QSCHED_LOG(Debug) << "must appear";
  ASSERT_EQ(LogCapture::lines().size(), 1u);
  EXPECT_NE(LogCapture::lines()[0].find("must appear"), std::string::npos);
  EXPECT_NE(LogCapture::lines()[0].find("DEBUG"), std::string::npos);
}

TEST(LoggingTest, SuppressedMessageDoesNotReachSink) {
  LogCapture capture;
  SetLogLevel(LogLevel::kError);
  QSCHED_LOG(Debug) << "no";
  QSCHED_LOG(Info) << "no";
  QSCHED_LOG(Warning) << "no";
  EXPECT_TRUE(LogCapture::lines().empty());
}

TEST(LoggingTest, LinePrefixCarriesLevelAndLocation) {
  LogCapture capture;
  SetLogLevel(LogLevel::kInfo);
  QSCHED_LOG(Warning) << "prefixed";
  ASSERT_EQ(LogCapture::lines().size(), 1u);
  const std::string& line = LogCapture::lines()[0];
  EXPECT_EQ(line.find("[WARN common_test.cc:"), 0u);
  EXPECT_NE(line.find("] prefixed"), std::string::npos);
}

TEST(LoggingTest, CheckPassesOnTrue) {
  QSCHED_CHECK(1 + 1 == 2) << "never printed";
}

}  // namespace
}  // namespace qsched
