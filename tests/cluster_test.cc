// Cluster-layer tests: SLO-aware routing across loopback backends,
// failover on backend death with zero lost COMPLETEDs, the per-backend
// circuit breaker lifecycle, and attainment-deficit rerouting. These
// run in the TSan and ASan gates (tests/CMakeLists.txt): the router's
// callbacks cross the front reactors, the channel threads and the
// backends' completion threads, so the handoffs are checked for races
// and memory errors, not just behavior.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/backend.h"
#include "cluster/backend_channel.h"
#include "cluster/backend_pool.h"
#include "cluster/router.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "obs/telemetry.h"
#include "rt/runtime.h"
#include "scheduler/service_class.h"
#include "workload/tpcc_workload.h"

namespace qsched::cluster {
namespace {

using std::chrono::steady_clock;

/// One qsched backend (runtime + net::Server) at a fast time scale, so
/// OLTP queries complete in milliseconds of wall time. Restartable on a
/// fixed port for the failover and breaker tests.
struct Backend {
  explicit Backend(uint16_t port = 0)
      : runtime(sched::MakePaperClasses(), MakeRuntimeOptions()) {
    runtime.Start();
    net::ServerOptions options;
    options.port = port;
    options.reactors = 1;
    server = std::make_unique<net::Server>(&runtime.gateway(), options,
                                           &telemetry);
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  ~Backend() {
    server->Stop();
    runtime.Shutdown();
  }

  static rt::RuntimeOptions MakeRuntimeOptions() {
    rt::RuntimeOptions options;
    options.time_scale = 120.0;
    options.horizon_model_seconds = 7200.0;
    options.seed = 7;
    options.gateway.queue_capacity = 8192;
    options.gateway.workers = 2;
    return options;
  }

  BackendAddress address() const { return {"127.0.0.1", server->port()}; }

  obs::Telemetry telemetry;
  rt::Runtime runtime;
  std::unique_ptr<net::Server> server;
};

/// Short intervals so breaker transitions happen in test time.
BackendTuning FastTuning() {
  BackendTuning tuning;
  tuning.connect_timeout_seconds = 0.5;
  tuning.probe_interval_seconds = 0.05;
  tuning.probe_timeout_seconds = 0.15;
  tuning.eject_after_failures = 2;
  tuning.backoff_initial_seconds = 0.02;
  tuning.backoff_max_seconds = 0.2;
  tuning.seed = 99;
  return tuning;
}

workload::Query NextOltp(workload::TpccWorkload* gen, int client_id) {
  workload::Query query = gen->Next();
  query.class_id = 3;
  query.client_id = client_id;
  return query;
}

bool WaitFor(const std::function<bool()>& cond, double timeout_seconds) {
  const auto deadline =
      steady_clock::now() + std::chrono::duration<double>(timeout_seconds);
  while (steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return cond();
}

TEST(ClusterTest, RejectReasonAndStateStrings) {
  EXPECT_STREQ(rt::RejectReasonToString(rt::RejectReason::kQueueFull),
               "queue_full");
  EXPECT_STREQ(rt::RejectReasonToString(rt::RejectReason::kShuttingDown),
               "shutting_down");
  EXPECT_STREQ(
      rt::RejectReasonToString(rt::RejectReason::kBackendUnavailable),
      "backend_unavailable");
  EXPECT_STREQ(BackendHealthToString(BackendHealth::kHealthy), "healthy");
  EXPECT_STREQ(BackendHealthToString(BackendHealth::kDegraded), "degraded");
  EXPECT_STREQ(BackendHealthToString(BackendHealth::kEjected), "ejected");
  EXPECT_STREQ(CircuitStateToString(CircuitState::kClosed), "closed");
  EXPECT_STREQ(CircuitStateToString(CircuitState::kOpen), "open");
  EXPECT_STREQ(CircuitStateToString(CircuitState::kHalfOpen), "half_open");
}

TEST(ClusterTest, BackendUnavailableSurvivesTheWire) {
  net::Frame frame;
  frame.type = net::FrameType::kRejected;
  frame.request_id = 77;
  frame.reject_reason = rt::RejectReason::kBackendUnavailable;
  std::vector<uint8_t> wire;
  net::EncodeFrame(frame, &wire);
  net::Frame decoded;
  size_t consumed = 0;
  ASSERT_EQ(net::DecodeFrame(wire.data(), wire.size(), &decoded, &consumed),
            net::DecodeStatus::kOk);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(decoded.type, net::FrameType::kRejected);
  EXPECT_EQ(decoded.reject_reason, rt::RejectReason::kBackendUnavailable);
}

TEST(ClusterTest, BackendScoreWeighsLoadAndDeficit) {
  // Equal load: the backend missing its SLO scores strictly worse.
  EXPECT_LT(BackendScore(2.0, 0.0, 4.0), BackendScore(2.0, 0.5, 4.0));
  // Equal deficit: the less loaded backend wins.
  EXPECT_LT(BackendScore(1.0, 0.3, 4.0), BackendScore(5.0, 0.3, 4.0));
  // Deficit is clamped to [0, 1]: over-attainment is not a bonus.
  EXPECT_EQ(BackendScore(1.0, -0.5, 4.0), BackendScore(1.0, 0.0, 4.0));
}

// Full stack: wire client -> front net::Server -> Router -> 3 loopback
// backends. Every query routes, completes exactly once, and the
// conservation identity holds at shutdown.
TEST(ClusterTest, RouteThenCompleteAcrossThreeBackends) {
  Backend b0, b1, b2;
  obs::Telemetry telemetry;
  RouterOptions options;
  options.tuning = FastTuning();
  Router router({b0.address(), b1.address(), b2.address()}, options,
                &telemetry);
  router.Start();
  ASSERT_EQ(router.pool().WaitUsable(3, 5.0), 3u);

  net::ServerOptions front_options;
  front_options.reactors = 1;
  net::Server front(&router, front_options, &telemetry);
  ASSERT_TRUE(front.Start().ok());

  Result<std::unique_ptr<net::Client>> connected =
      net::Client::Connect("127.0.0.1", front.port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  std::unique_ptr<net::Client> client = std::move(connected).ValueOrDie();
  ASSERT_TRUE(client->Ping().ok());

  workload::TpccWorkload oltp(workload::TpccWorkloadParams{}, /*seed=*/5);
  constexpr int kQueries = 90;
  for (int i = 0; i < kQueries; ++i) {
    ASSERT_TRUE(client->SubmitNoWait(NextOltp(&oltp, i)).ok());
  }
  int accepted = 0;
  for (int i = 0; i < kQueries; ++i) {
    Result<net::Client::SubmitResult> verdict = client->NextVerdict();
    ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
    if (verdict.ValueOrDie().accepted) ++accepted;
  }
  EXPECT_EQ(accepted, kQueries);
  for (int i = 0; i < accepted; ++i) {
    Result<net::ClientCompletion> completion = client->NextCompletion();
    ASSERT_TRUE(completion.ok()) << completion.status().ToString();
    EXPECT_EQ(completion.ValueOrDie().class_id, 3);
  }
  EXPECT_EQ(client->outstanding(), 0u);

  // STATS through the router aggregates the pool.
  Result<net::WireStats> stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.ValueOrDie().accepted, static_cast<uint64_t>(accepted));

  uint64_t forwarded = 0;
  int backends_used = 0;
  for (const BackendSnapshot& snap : router.pool().Snapshots()) {
    forwarded += snap.forwarded;
    if (snap.forwarded > 0) ++backends_used;
  }
  EXPECT_EQ(forwarded, static_cast<uint64_t>(kQueries));
  // Least-loaded scoring spreads a pipelined burst over the pool.
  EXPECT_GE(backends_used, 2);

  client.reset();
  front.Stop();
  router.Stop();
  EXPECT_TRUE(router.ConservationHolds());
  const RouterAccounting acc = router.Accounting();
  EXPECT_EQ(acc.offered, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(acc.accepted, static_cast<uint64_t>(accepted));
  EXPECT_EQ(acc.completions_relayed, static_cast<uint64_t>(accepted));

  // The route stage was stamped for every verdict.
  obs::Histogram* route_hist = telemetry.registry.GetHistogram(
      "qsched_stage_seconds", "class=\"3\",stage=\"route\"");
  EXPECT_GE(route_hist->count(), static_cast<uint64_t>(kQueries));
}

// Kill one of two backends mid-stream: in-flight queries fail over or
// resolve as cancelled completions, later queries route around the dead
// backend, and not a single accepted query loses its COMPLETED.
TEST(ClusterTest, KillOneBackendFailoverLosesNothing) {
  auto b0 = std::make_unique<Backend>();
  Backend b1;
  obs::Telemetry telemetry;
  RouterOptions options;
  options.tuning = FastTuning();
  Router router({b0->address(), b1.address()}, options, &telemetry);
  router.Start();
  ASSERT_EQ(router.pool().WaitUsable(2, 5.0), 2u);

  net::ServerOptions front_options;
  front_options.reactors = 1;
  net::Server front(&router, front_options, &telemetry);
  ASSERT_TRUE(front.Start().ok());

  Result<std::unique_ptr<net::Client>> connected =
      net::Client::Connect("127.0.0.1", front.port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  std::unique_ptr<net::Client> client = std::move(connected).ValueOrDie();

  workload::TpccWorkload oltp(workload::TpccWorkloadParams{}, /*seed=*/21);
  constexpr int kBefore = 60;
  constexpr int kAfter = 60;
  int accepted = 0;
  int completions = 0;

  auto drain_buffered = [&] {
    Result<net::Client::PolledCompletion> polled =
        client->PollCompletion(0.0);
    while (polled.ok() && polled.ValueOrDie().found) {
      ++completions;
      polled = client->PollCompletion(0.0);
    }
  };

  for (int i = 0; i < kBefore; ++i) {
    Result<net::Client::SubmitResult> verdict =
        client->Submit(NextOltp(&oltp, i));
    ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
    if (verdict.ValueOrDie().accepted) ++accepted;
    drain_buffered();
  }

  // Backend 0 goes away (graceful stop: its in-flight queries complete,
  // then the channel sees EOF, ejects it and re-routes).
  b0.reset();

  for (int i = 0; i < kAfter; ++i) {
    Result<net::Client::SubmitResult> verdict =
        client->Submit(NextOltp(&oltp, kBefore + i));
    ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
    if (verdict.ValueOrDie().accepted) ++accepted;
    drain_buffered();
  }

  // Post-kill queries must keep being accepted: backend 1 covers.
  EXPECT_GE(accepted, kAfter);

  // Zero lost COMPLETEDs: every accepted query yields exactly one
  // completion frame (real or cancelled).
  while (completions < accepted) {
    Result<net::ClientCompletion> completion = client->NextCompletion();
    ASSERT_TRUE(completion.ok()) << completion.status().ToString();
    ++completions;
  }
  EXPECT_EQ(completions, accepted);
  EXPECT_EQ(client->outstanding(), 0u);

  // The breaker needs a couple of failed reconnects to reach the
  // ejection threshold; the routing shift happened regardless.
  EXPECT_TRUE(WaitFor(
      [&] {
        const BackendSnapshot snap = router.pool().Snapshots()[0];
        return snap.health == BackendHealth::kEjected && !snap.connected;
      },
      5.0));
  EXPECT_GT(router.pool().Snapshots()[1].forwarded, 0u);

  client.reset();
  front.Stop();
  router.Stop();
  EXPECT_TRUE(router.ConservationHolds());
}

// A channel asked to forward while unusable hands the query back for
// re-routing instead of dropping it.
TEST(ClusterTest, UnusableChannelFailsOverInsteadOfDropping) {
  std::atomic<int> failovers{0};
  std::atomic<int> rejects{0};
  BackendChannel channel(
      {"127.0.0.1", 1}, FastTuning(), /*index=*/0,
      [&](RoutedQuery item, BackendChannel*) {
        failovers.fetch_add(1);
        item.on_verdict(false, rt::RejectReason::kBackendUnavailable);
      });
  channel.Start();
  ASSERT_FALSE(channel.Usable());

  workload::TpccWorkload oltp(workload::TpccWorkloadParams{}, /*seed=*/9);
  RoutedQuery item;
  item.query = NextOltp(&oltp, 0);
  item.on_verdict = [&](bool accepted, rt::RejectReason reason) {
    EXPECT_FALSE(accepted);
    EXPECT_EQ(reason, rt::RejectReason::kBackendUnavailable);
    rejects.fetch_add(1);
  };
  item.on_complete = [](const net::ServiceCompletion&) { FAIL(); };
  channel.Forward(std::move(item));

  EXPECT_TRUE(WaitFor([&] { return rejects.load() == 1; }, 5.0));
  EXPECT_EQ(failovers.load(), 1);
  channel.Stop();
}

// Circuit breaker lifecycle against a half-dead peer: a listener that
// accepts TCP but never answers a probe holds the circuit half-open;
// probe timeouts then eject the backend (open); a real backend on the
// same port closes it again.
TEST(ClusterTest, CircuitBreakerLifecycle) {
  // Dumb listener: accepts connections, never speaks the protocol.
  int listener = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  int one = 1;
  setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(bind(listener, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)),
            0);
  ASSERT_EQ(listen(listener, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const uint16_t port = ntohs(addr.sin_port);

  BackendChannel channel({"127.0.0.1", port}, FastTuning(), /*index=*/0,
                         [](RoutedQuery, BackendChannel*) { FAIL(); });
  channel.Start();

  // Connected but unanswered probe: half-open, not usable.
  EXPECT_TRUE(WaitFor(
      [&] {
        const BackendSnapshot snap = channel.Snapshot();
        return snap.connected && snap.circuit == CircuitState::kHalfOpen;
      },
      5.0));
  EXPECT_FALSE(channel.Usable());

  // Probe timeouts accumulate to the ejection threshold: open + ejected.
  EXPECT_TRUE(WaitFor(
      [&] {
        const BackendSnapshot snap = channel.Snapshot();
        return snap.health == BackendHealth::kEjected &&
               snap.circuit == CircuitState::kOpen && !snap.connected;
      },
      5.0));

  // A real backend takes over the port: reconnect, answered probe,
  // circuit closes, backend healthy and usable again.
  close(listener);
  Backend backend(port);
  EXPECT_TRUE(WaitFor(
      [&] {
        const BackendSnapshot snap = channel.Snapshot();
        return snap.health == BackendHealth::kHealthy &&
               snap.circuit == CircuitState::kClosed && snap.connected;
      },
      10.0));
  EXPECT_TRUE(channel.Usable());
  EXPECT_GE(channel.Snapshot().reconnects, 2u);
  channel.Stop();
}

// A backend reporting an OLTP attainment deficit stops receiving OLTP
// traffic: routing shifts to the backend meeting its SLO.
TEST(ClusterTest, SloDeficitShiftsRouting) {
  Backend b0, b1;
  obs::Telemetry telemetry;
  RouterOptions options;
  options.tuning = FastTuning();
  options.tuning.attainment_weight = 8.0;
  Router router({b0.address(), b1.address()}, options, &telemetry);
  router.Start();
  ASSERT_EQ(router.pool().WaitUsable(2, 5.0), 2u);

  // Starve backend 0's OLTP attainment; backend 1 meets its goal.
  router.pool().channel(0)->InjectStatsForTest(0, {{3, 0.2}});
  router.pool().channel(1)->InjectStatsForTest(0, {{3, 1.0}});

  workload::TpccWorkload oltp(workload::TpccWorkloadParams{}, /*seed=*/31);
  constexpr int kQueries = 80;
  std::atomic<int> verdicts{0};
  std::atomic<int> accepted{0};
  std::atomic<int> completions{0};
  for (int i = 0; i < kQueries; ++i) {
    net::SubmitDisposition disposition = router.Submit(
        NextOltp(&oltp, i), /*want_trace=*/false,
        [&](bool ok, rt::RejectReason) {
          if (ok) accepted.fetch_add(1);
          verdicts.fetch_add(1);
        },
        [&](const net::ServiceCompletion&) { completions.fetch_add(1); });
    ASSERT_EQ(disposition.kind, net::SubmitDisposition::Kind::kDeferred);
  }
  ASSERT_TRUE(WaitFor(
      [&] {
        return verdicts.load() == kQueries &&
               completions.load() == accepted.load();
      },
      10.0));

  const std::vector<BackendSnapshot> snaps = router.pool().Snapshots();
  // The deficit-weighted score keeps OLTP off the missing backend.
  EXPECT_GT(snaps[1].forwarded, snaps[0].forwarded * 3);

  router.Stop();
  EXPECT_TRUE(router.ConservationHolds());
}

}  // namespace
}  // namespace qsched::cluster
