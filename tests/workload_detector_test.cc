#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "scheduler/workload_detector.h"

namespace qsched::sched {
namespace {

TEST(WorkloadDetectorTest, CountsArrivalsPerInterval) {
  WorkloadDetector detector;
  for (int i = 0; i < 30; ++i) detector.RecordArrival(1);
  for (int i = 0; i < 10; ++i) detector.RecordArrival(2);
  auto signals = detector.Harvest(10.0);
  ASSERT_EQ(signals.size(), 2u);
  EXPECT_DOUBLE_EQ(signals[1].arrival_rate, 3.0);
  EXPECT_DOUBLE_EQ(signals[2].arrival_rate, 1.0);
  EXPECT_EQ(detector.arrivals_total(), 40u);
  // Counters reset between harvests.
  auto next = detector.Harvest(10.0);
  EXPECT_DOUBLE_EQ(next[1].arrival_rate, 0.0);
}

TEST(WorkloadDetectorTest, FirstHarvestInitializesLevel) {
  WorkloadDetector detector;
  for (int i = 0; i < 20; ++i) detector.RecordArrival(7);
  auto signals = detector.Harvest(10.0);
  EXPECT_DOUBLE_EQ(signals[7].level, 2.0);
  EXPECT_DOUBLE_EQ(signals[7].trend, 0.0);
  EXPECT_FALSE(signals[7].change_detected);
}

TEST(WorkloadDetectorTest, TrendTracksLinearGrowth) {
  WorkloadDetector detector;
  // Arrival rate grows by exactly 1/s each interval.
  for (int k = 1; k <= 30; ++k) {
    for (int i = 0; i < k * 10; ++i) detector.RecordArrival(1);
    detector.Harvest(10.0);
  }
  WorkloadSignal signal = detector.SignalFor(1);
  EXPECT_NEAR(signal.trend, 1.0, 0.3);
  // Prediction extrapolates ahead of the current level.
  EXPECT_GT(signal.predicted_rate, signal.level);
}

TEST(WorkloadDetectorTest, StableRateHasNoTrendOrAlarms) {
  WorkloadDetector detector;
  Rng rng(5);
  for (int k = 0; k < 50; ++k) {
    int arrivals = static_cast<int>(100 + rng.UniformInt(-5, 5));
    for (int i = 0; i < arrivals; ++i) detector.RecordArrival(1);
    detector.Harvest(10.0);
  }
  WorkloadSignal signal = detector.SignalFor(1);
  EXPECT_NEAR(signal.level, 10.0, 1.0);
  EXPECT_NEAR(signal.trend, 0.0, 0.2);
  EXPECT_EQ(detector.changes_detected(), 0u);
}

TEST(WorkloadDetectorTest, DetectsAbruptShift) {
  WorkloadDetector detector;
  Rng rng(9);
  // Settle at ~10/s.
  for (int k = 0; k < 20; ++k) {
    int arrivals = static_cast<int>(100 + rng.UniformInt(-5, 5));
    for (int i = 0; i < arrivals; ++i) detector.RecordArrival(1);
    detector.Harvest(10.0);
  }
  // Jump to ~40/s.
  bool alarmed = false;
  for (int k = 0; k < 5; ++k) {
    int arrivals = static_cast<int>(400 + rng.UniformInt(-5, 5));
    for (int i = 0; i < arrivals; ++i) detector.RecordArrival(1);
    auto signals = detector.Harvest(10.0);
    alarmed = alarmed || signals[1].change_detected;
  }
  EXPECT_TRUE(alarmed);
  EXPECT_GE(detector.changes_detected(), 1u);
  // After re-anchoring, the level reflects the new regime.
  EXPECT_NEAR(detector.SignalFor(1).level, 40.0, 8.0);
}

TEST(WorkloadDetectorTest, PredictionFlooredAtZero) {
  WorkloadDetector::Options options;
  options.horizon_intervals = 10;
  WorkloadDetector detector(options);
  // Sharply shrinking workload: trend is negative and large.
  for (int k = 10; k >= 1; k -= 3) {
    for (int i = 0; i < k * 10; ++i) detector.RecordArrival(1);
    detector.Harvest(10.0);
  }
  EXPECT_GE(detector.SignalFor(1).predicted_rate, 0.0);
}

TEST(WorkloadDetectorTest, ZeroIntervalYieldsNothing) {
  WorkloadDetector detector;
  detector.RecordArrival(1);
  EXPECT_TRUE(detector.Harvest(0.0).empty());
}

TEST(WorkloadDetectorTest, UnseenClassGivesZeroSignal) {
  WorkloadDetector detector;
  WorkloadSignal signal = detector.SignalFor(42);
  EXPECT_DOUBLE_EQ(signal.arrival_rate, 0.0);
  EXPECT_DOUBLE_EQ(signal.predicted_rate, 0.0);
}

class DetectorSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DetectorSeedSweep, NoFalseAlarmsOnStationaryPoisson) {
  Rng rng(GetParam());
  WorkloadDetector detector;
  // Stationary Poisson(lambda=8/s) arrivals for 60 intervals: CUSUM set
  // at 4 sigma should essentially never alarm.
  for (int k = 0; k < 60; ++k) {
    double t = 0.0;
    while (true) {
      t += rng.Exponential(1.0 / 8.0);
      if (t >= 10.0) break;
      detector.RecordArrival(1);
    }
    detector.Harvest(10.0);
  }
  EXPECT_LE(detector.changes_detected(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectorSeedSweep,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace qsched::sched
