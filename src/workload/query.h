#ifndef QSCHED_WORKLOAD_QUERY_H_
#define QSCHED_WORKLOAD_QUERY_H_

#include <cstdint>
#include <string>

#include "engine/execution_engine.h"

namespace qsched::workload {

/// OLAP = long, I/O-intensive, widely varying cost (TPC-H-like);
/// OLTP = sub-second, CPU-intensive, low variance (TPC-C-like).
enum class WorkloadType { kOlap, kOltp };

const char* WorkloadTypeToString(WorkloadType type);

/// One query instance travelling from a client through a controller into
/// the engine. The controller sees the optimizer estimate
/// (`cost_timerons`); the engine executes the true demand (`job`).
struct Query {
  /// Globally unique, assigned by the client pool at submission.
  uint64_t id = 0;
  /// Service class (the experiments use 1, 2 = OLAP and 3 = OLTP).
  int class_id = 0;
  WorkloadType type = WorkloadType::kOlap;
  /// Template the instance was drawn from, e.g. "q6" or "new_order".
  std::string template_name;
  /// Optimizer cost estimate in timerons (what cost-based control sees).
  double cost_timerons = 0.0;
  /// True resource demand handed to the engine.
  engine::QueryJob job;
  /// Client that issued the query (for per-client snapshot monitoring).
  int client_id = -1;
};

/// A generator of query instances for one workload type. Implementations
/// are deterministic given their seed.
class QueryGenerator {
 public:
  virtual ~QueryGenerator() = default;

  /// Draws the next query instance (id/class/client fields left for the
  /// caller to fill).
  virtual Query Next() = 0;

  virtual WorkloadType type() const = 0;
};

}  // namespace qsched::workload

#endif  // QSCHED_WORKLOAD_QUERY_H_
