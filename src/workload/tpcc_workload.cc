#include "workload/tpcc_workload.h"

#include <set>
#include <utility>

#include "common/logging.h"

namespace qsched::workload {

using optimizer::IndexScan;
using optimizer::Insert;
using optimizer::PlanNodePtr;
using optimizer::Update;

TpccWorkload::TpccWorkload(const TpccWorkloadParams& params, uint64_t seed)
    : params_(params),
      catalog_(catalog::MakeTpccCatalog(params.warehouses)),
      cost_model_(&catalog_, [&params] {
        optimizer::CostModelParams p = params.cost_params;
        p.estimation_noise_sigma = params.estimation_noise_sigma;
        // OLTP probes hit the buffer pool most of the time and the DB2
        // optimizer prices that in.
        p.assumed_hit_ratio = 0.85;
        return p;
      }()),
      pool_model_(params.buffer_pool_pages, /*reuse_factor=*/4.0,
                  /*max_hit_ratio=*/0.86),
      rng_(seed) {
  RegisterTransactions();
}

void TpccWorkload::RegisterTransactions() {
  auto add = [this](std::string name, double weight,
                    std::function<std::vector<PlanNodePtr>(Rng*)> build) {
    transactions_.push_back(
        Transaction{std::move(name), weight, std::move(build)});
    mix_weights_.push_back(weight);
  };

  // NewOrder: read customer/warehouse/district, then per order line
  // (5-15) probe item + stock and update stock; insert orders/new_order/
  // order_line rows.
  add("new_order", 0.45, [](Rng* rng) {
    std::vector<PlanNodePtr> stmts;
    stmts.push_back(IndexScan("warehouse", "w_id", 1.0));
    stmts.push_back(IndexScan("customer", "c_w_id", 1.0));
    stmts.push_back(Update("district", 1.0));  // bump d_next_o_id
    int lines = static_cast<int>(rng->UniformInt(5, 15));
    for (int i = 0; i < lines; ++i) {
      stmts.push_back(IndexScan("item", "i_id", 1.0));
      stmts.push_back(Update("stock", 1.0));
    }
    stmts.push_back(Insert("orders", 1.0));
    stmts.push_back(Insert("new_order", 1.0));
    stmts.push_back(Insert("order_line", static_cast<double>(lines)));
    return stmts;
  });

  // Payment: update warehouse/district/customer balances, insert history.
  add("payment", 0.43, [](Rng* rng) {
    std::vector<PlanNodePtr> stmts;
    stmts.push_back(Update("warehouse", 1.0));
    stmts.push_back(Update("district", 1.0));
    if (rng->Bernoulli(0.6)) {
      // Lookup by last name scans a few matching customers.
      stmts.push_back(
          IndexScan("customer", "c_last", rng->Uniform(1.0, 4.0)));
    }
    stmts.push_back(Update("customer", 1.0));
    stmts.push_back(Insert("history", 1.0));
    return stmts;
  });

  // OrderStatus: read-only — customer, last order, its lines.
  add("order_status", 0.04, [](Rng* rng) {
    std::vector<PlanNodePtr> stmts;
    stmts.push_back(IndexScan("customer", "c_w_id", 1.0));
    stmts.push_back(IndexScan("orders", "o_w_id", 1.0));
    stmts.push_back(
        IndexScan("order_line", "ol_w_id", rng->Uniform(5.0, 15.0)));
    return stmts;
  });

  // Delivery: batch over the 10 districts of a warehouse.
  add("delivery", 0.04, [](Rng* rng) {
    std::vector<PlanNodePtr> stmts;
    for (int d = 0; d < 10; ++d) {
      stmts.push_back(IndexScan("new_order", "no_w_id", 1.0));
      stmts.push_back(Update("orders", 1.0));
      stmts.push_back(
          Update("order_line", rng->Uniform(5.0, 15.0)));
      stmts.push_back(Update("customer", 1.0));
    }
    return stmts;
  });

  // StockLevel: district probe plus a join of recent order lines to stock.
  add("stock_level", 0.04, [](Rng* rng) {
    std::vector<PlanNodePtr> stmts;
    stmts.push_back(IndexScan("district", "d_w_id", 1.0));
    stmts.push_back(
        IndexScan("order_line", "ol_w_id", rng->Uniform(180.0, 220.0)));
    stmts.push_back(IndexScan("stock", "s_w_id", rng->Uniform(180.0, 220.0)));
    return stmts;
  });

  QSCHED_CHECK(transactions_.size() == 5);
}

double TpccWorkload::HitRatioFor(
    const std::vector<PlanNodePtr>& stmts) const {
  std::set<std::string> tables;
  for (const auto& stmt : stmts) {
    if (!stmt->table.empty()) tables.insert(stmt->table);
  }
  double footprint = 0.0;
  for (const std::string& name : tables) {
    const catalog::Table* table = catalog_.FindTable(name);
    if (table != nullptr) {
      footprint += static_cast<double>(
          table->PageCount(params_.cost_params.page_size_bytes));
    }
  }
  // Transactions touch the hot working set, not whole tables.
  return pool_model_.HitProbability(footprint * params_.hot_set_fraction);
}

Query TpccWorkload::Next() {
  return MakeTransaction(rng_.Categorical(mix_weights_));
}

Query TpccWorkload::MakeTransaction(size_t index) {
  QSCHED_CHECK(index < transactions_.size());
  const Transaction& txn = transactions_[index];
  std::vector<PlanNodePtr> stmts = txn.build(&rng_);

  double timerons = 0.0;
  double cpu_seconds = 0.0;
  double logical_pages = 0.0;
  double write_pages = 0.0;
  for (const auto& stmt : stmts) {
    auto cost = cost_model_.Estimate(*stmt, &rng_);
    QSCHED_CHECK(cost.ok()) << "cost model failed for " << txn.name << ": "
                            << cost.status().ToString();
    const optimizer::QueryCost& qc = cost.ValueOrDie();
    timerons += qc.timerons;
    cpu_seconds += qc.cpu_seconds;
    logical_pages += qc.logical_pages;
    write_pages += qc.write_pages;
  }
  double statement_cpu =
      static_cast<double>(stmts.size()) * params_.per_statement_cpu_seconds;
  cpu_seconds += statement_cpu;
  timerons += statement_cpu / params_.cost_params.seconds_per_cpu_unit *
              params_.cost_params.timerons_per_cpu_unit;

  Query query;
  query.type = WorkloadType::kOltp;
  query.template_name = txn.name;
  query.cost_timerons = timerons;
  query.job.database = engine::DatabaseId::kOltp;
  query.job.cpu_seconds = cpu_seconds;
  query.job.logical_pages = logical_pages;
  query.job.write_pages = write_pages;
  query.job.hit_ratio = HitRatioFor(stmts);
  return query;
}

std::vector<double> TpccWorkload::SampleCosts(int n) {
  std::vector<double> costs;
  costs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) costs.push_back(Next().cost_timerons);
  return costs;
}

}  // namespace qsched::workload
