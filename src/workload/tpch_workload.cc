#include "workload/tpch_workload.h"

#include <set>
#include <utility>

#include "common/logging.h"

namespace qsched::workload {

using optimizer::Aggregate;
using optimizer::Filter;
using optimizer::HashJoin;
using optimizer::IndexScan;
using optimizer::NestedLoopJoin;
using optimizer::PlanNode;
using optimizer::PlanNodePtr;
using optimizer::Sort;
using optimizer::TableScan;
using optimizer::TopN;

TpchWorkload::TpchWorkload(const TpchWorkloadParams& params, uint64_t seed)
    : params_(params),
      catalog_(catalog::MakeTpchCatalog(params.scale_factor)),
      cost_model_(&catalog_, [&params] {
        optimizer::CostModelParams p = params.cost_params;
        p.estimation_noise_sigma = params.estimation_noise_sigma;
        return p;
      }()),
      pool_model_(params.buffer_pool_pages),
      rng_(seed) {
  RegisterTemplates();
}

void TpchWorkload::RegisterTemplates() {
  // Each builder mirrors the table mix and plan shape of the TPC-H query
  // it is named after; selectivities are randomized per draw like the
  // benchmark's substitution parameters.
  auto add = [this](std::string name,
                    std::function<PlanNodePtr(Rng*)> build) {
    templates_.push_back(Template{std::move(name), std::move(build)});
  };

  // Q1: pricing summary — full lineitem scan + small group-by.
  add("q1", [](Rng* rng) {
    return Aggregate(TableScan("lineitem", rng->Uniform(0.92, 0.99)), 4);
  });
  // Q2: minimum cost supplier — partsupp/part/supplier joins.
  add("q2", [](Rng* rng) {
    auto ps = TableScan("partsupp", 1.0);
    auto part = Filter(TableScan("part", 1.0), rng->Uniform(0.003, 0.02));
    auto join = HashJoin(std::move(part), std::move(ps), 0.02);
    auto with_supp = HashJoin(TableScan("supplier", 1.0), std::move(join),
                              rng->Uniform(0.5, 1.0));
    return TopN(Sort(std::move(with_supp)), 100);
  });
  // Q3: shipping priority — customer ⋈ orders ⋈ lineitem, top 10.
  add("q3", [](Rng* rng) {
    auto cust = Filter(TableScan("customer", 1.0), 0.2);
    auto ord = Filter(TableScan("orders", 1.0), rng->Uniform(0.4, 0.55));
    auto co = HashJoin(std::move(cust), std::move(ord), 0.2);
    auto li = Filter(TableScan("lineitem", 1.0), rng->Uniform(0.5, 0.6));
    auto col = HashJoin(std::move(co), std::move(li), 0.25);
    return TopN(Aggregate(std::move(col), 10000), 10);
  });
  // Q4: order priority checking — orders semijoin lineitem.
  add("q4", [](Rng* rng) {
    auto ord = Filter(TableScan("orders", 1.0), rng->Uniform(0.03, 0.05));
    auto li = Filter(TableScan("lineitem", 1.0), 0.63);
    return Aggregate(HashJoin(std::move(ord), std::move(li), 0.05), 5);
  });
  // Q5: local supplier volume — 5-way join pruned by region.
  add("q5", [](Rng* rng) {
    auto cust = TableScan("customer", 0.2);
    auto ord = Filter(TableScan("orders", 1.0), rng->Uniform(0.12, 0.18));
    auto co = HashJoin(std::move(cust), std::move(ord), 0.15);
    auto li = TableScan("lineitem", 1.0);
    auto col = HashJoin(std::move(co), std::move(li), 0.12);
    auto supp = HashJoin(TableScan("supplier", 1.0), std::move(col), 0.2);
    return Aggregate(std::move(supp), 25);
  });
  // Q6: forecasting revenue change — highly selective lineitem scan.
  add("q6", [](Rng* rng) {
    return Aggregate(
        Filter(TableScan("lineitem", 1.0), rng->Uniform(0.01, 0.03)), 1);
  });
  // Q7: volume shipping — two-nation flow over joined orders/lineitem.
  add("q7", [](Rng* rng) {
    auto li = Filter(TableScan("lineitem", 1.0), rng->Uniform(0.28, 0.33));
    auto ord = TableScan("orders", 1.0);
    auto lo = HashJoin(std::move(ord), std::move(li), 0.3);
    auto cust = HashJoin(TableScan("customer", 1.0), std::move(lo), 0.08);
    return Aggregate(std::move(cust), 4);
  });
  // Q8: national market share.
  add("q8", [](Rng* rng) {
    auto part = Filter(TableScan("part", 1.0), rng->Uniform(0.001, 0.004));
    auto li = TableScan("lineitem", 1.0);
    auto pl = HashJoin(std::move(part), std::move(li), 0.003);
    auto ord = HashJoin(TableScan("orders", 1.0), std::move(pl), 0.01);
    return Aggregate(std::move(ord), 2);
  });
  // Q9: product type profit — the heaviest retained query.
  add("q9", [](Rng* rng) {
    auto part = Filter(TableScan("part", 1.0), rng->Uniform(0.04, 0.06));
    auto li = TableScan("lineitem", 1.0);
    auto pl = HashJoin(std::move(part), std::move(li), 0.055);
    auto ps = HashJoin(TableScan("partsupp", 1.0), std::move(pl), 1.0);
    auto ord = HashJoin(TableScan("orders", 1.0), std::move(ps), 1.0);
    return Aggregate(std::move(ord), 175);
  });
  // Q10: returned item reporting.
  add("q10", [](Rng* rng) {
    auto ord = Filter(TableScan("orders", 1.0), rng->Uniform(0.03, 0.05));
    auto li = Filter(TableScan("lineitem", 1.0), 0.25);
    auto lo = HashJoin(std::move(ord), std::move(li), 0.04);
    auto cust = HashJoin(TableScan("customer", 1.0), std::move(lo), 1.0);
    return TopN(Aggregate(std::move(cust), 37000), 20);
  });
  // Q11: important stock identification — partsupp only.
  add("q11", [](Rng* rng) {
    auto ps = Filter(TableScan("partsupp", 1.0), rng->Uniform(0.03, 0.05));
    auto supp = HashJoin(TableScan("supplier", 1.0), std::move(ps), 1.0);
    return Sort(Aggregate(std::move(supp), 1000));
  });
  // Q12: shipping modes — orders ⋈ lineitem on two ship modes.
  add("q12", [](Rng* rng) {
    auto li = Filter(TableScan("lineitem", 1.0), rng->Uniform(0.008, 0.012));
    auto ord = TableScan("orders", 1.0);
    return Aggregate(HashJoin(std::move(ord), std::move(li), 0.01), 2);
  });
  // Q13: customer distribution — customer left join orders.
  add("q13", [](Rng* rng) {
    auto ord = Filter(TableScan("orders", 1.0), rng->Uniform(0.95, 1.0));
    auto cust = TableScan("customer", 1.0);
    auto join = HashJoin(std::move(cust), std::move(ord), 1.0);
    return Aggregate(std::move(join), 42);
  });
  // Q14: promotion effect — one-month lineitem ⋈ part.
  add("q14", [](Rng* rng) {
    auto li = Filter(TableScan("lineitem", 1.0), rng->Uniform(0.012, 0.016));
    auto part = TableScan("part", 1.0);
    return Aggregate(HashJoin(std::move(part), std::move(li), 0.014), 1);
  });
  // Q15: top supplier — quarter of lineitem grouped by supplier.
  add("q15", [](Rng* rng) {
    auto li = Filter(TableScan("lineitem", 1.0), rng->Uniform(0.035, 0.045));
    auto agg = Aggregate(std::move(li), 10000);
    auto supp = NestedLoopJoin(TableScan("supplier", 1.0),
                               IndexScan("orders", "o_orderkey", 1.0), 1.0);
    return HashJoin(std::move(agg), std::move(supp), 1.0);
  });
  // Q17: small-quantity-order revenue — part ⋈ lineitem with agg subquery.
  add("q17", [](Rng* rng) {
    auto part = Filter(TableScan("part", 1.0), rng->Uniform(0.0008, 0.0012));
    auto li = TableScan("lineitem", 1.0);
    auto join = HashJoin(std::move(part), std::move(li), 0.001);
    return Aggregate(std::move(join), 1);
  });
  // Q18: large volume customer — full lineitem group-by then joins.
  add("q18", [](Rng* rng) {
    auto li_agg = Aggregate(TableScan("lineitem", 1.0),
                            static_cast<uint64_t>(
                                rng->Uniform(900000.0, 1100000.0)));
    auto ord = HashJoin(TableScan("orders", 1.0), std::move(li_agg), 0.001);
    auto cust = HashJoin(TableScan("customer", 1.0), std::move(ord), 1.0);
    return TopN(Sort(std::move(cust)), 100);
  });
  // Q22: global sales opportunity — customer-only anti-join, the lightest.
  add("q22", [](Rng* rng) {
    auto cust = Filter(TableScan("customer", 1.0), rng->Uniform(0.25, 0.35));
    auto ord = Filter(TableScan("orders", 1.0), 0.1);
    return Aggregate(HashJoin(std::move(cust), std::move(ord), 0.3), 7);
  });

  QSCHED_CHECK(templates_.size() == 18)
      << "expected 18 OLAP templates, have " << templates_.size();
}

double TpchWorkload::HitRatioFor(const PlanNode& plan) const {
  // Footprint = distinct base tables the plan touches.
  std::set<std::string> tables;
  std::function<void(const PlanNode&)> walk = [&](const PlanNode& node) {
    if (!node.table.empty()) tables.insert(node.table);
    for (const auto& child : node.children) walk(*child);
  };
  walk(plan);
  double footprint = 0.0;
  for (const std::string& name : tables) {
    const catalog::Table* table = catalog_.FindTable(name);
    if (table != nullptr) {
      footprint += static_cast<double>(
          table->PageCount(params_.cost_params.page_size_bytes));
    }
  }
  return pool_model_.HitProbability(footprint);
}

Query TpchWorkload::Next() {
  size_t index =
      static_cast<size_t>(rng_.UniformInt(0, templates_.size() - 1));
  return MakeFromTemplate(index);
}

Query TpchWorkload::MakeFromTemplate(size_t index) {
  QSCHED_CHECK(index < templates_.size());
  const Template& tmpl = templates_[index];
  PlanNodePtr plan = tmpl.build(&rng_);

  auto cost = cost_model_.Estimate(*plan, &rng_);
  QSCHED_CHECK(cost.ok()) << "cost model failed for " << tmpl.name << ": "
                          << cost.status().ToString();
  const optimizer::QueryCost& qc = cost.ValueOrDie();

  Query query;
  query.type = WorkloadType::kOlap;
  query.template_name = tmpl.name;
  query.cost_timerons = qc.timerons;
  query.job.database = engine::DatabaseId::kOlap;
  query.job.cpu_seconds = qc.cpu_seconds;
  query.job.logical_pages = qc.logical_pages;
  query.job.write_pages = qc.write_pages;
  query.job.hit_ratio = HitRatioFor(*plan);
  return query;
}

std::vector<double> TpchWorkload::SampleCosts(int n) {
  std::vector<double> costs;
  costs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) costs.push_back(Next().cost_timerons);
  return costs;
}

}  // namespace qsched::workload
