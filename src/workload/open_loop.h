#ifndef QSCHED_WORKLOAD_OPEN_LOOP_H_
#define QSCHED_WORKLOAD_OPEN_LOOP_H_

#include <cstdint>

#include "common/rng.h"
#include "sim/clock.h"
#include "workload/client.h"
#include "workload/schedule.h"

namespace qsched::workload {

/// Open-loop (Poisson) query source for one service class: arrivals at a
/// scheduled rate, independent of completions. The paper's experiments
/// are closed-loop (interactive clients, zero think time), but admission
/// control behaves very differently under open arrivals — queues grow
/// without bound past saturation instead of self-throttling — so the
/// open-loop source is provided for sensitivity studies (cf. Schroeder
/// et al.'s closed/open discussion).
///
/// The workload schedule is reused: `ClientsAt(t)` is interpreted as the
/// target number of "virtual clients", each issuing at
/// `per_client_rate_per_second`.
class OpenLoopSource {
 public:
  OpenLoopSource(sim::Clock* simulator,
                 const WorkloadSchedule* schedule, int class_id,
                 QueryGenerator* generator, QueryFrontend* frontend,
                 ClientPool::RecordSink sink,
                 double per_client_rate_per_second, uint64_t seed);

  OpenLoopSource(const OpenLoopSource&) = delete;
  OpenLoopSource& operator=(const OpenLoopSource&) = delete;

  /// Starts the arrival process; it stops at the schedule's end.
  void Start();

  uint64_t queries_submitted() const { return queries_submitted_; }
  uint64_t queries_completed() const { return queries_completed_; }
  /// Submitted but not yet finished.
  uint64_t queries_outstanding() const {
    return queries_submitted_ - queries_completed_;
  }

 private:
  void ScheduleNextArrival();
  void OnArrival();
  double CurrentRate() const;

  sim::Clock* simulator_;
  const WorkloadSchedule* schedule_;
  int class_id_;
  QueryGenerator* generator_;
  QueryFrontend* frontend_;
  ClientPool::RecordSink sink_;
  double per_client_rate_;
  Rng rng_;
  uint64_t next_query_seq_ = 1;
  uint64_t queries_submitted_ = 0;
  uint64_t queries_completed_ = 0;
};

}  // namespace qsched::workload

#endif  // QSCHED_WORKLOAD_OPEN_LOOP_H_
