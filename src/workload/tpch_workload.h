#ifndef QSCHED_WORKLOAD_TPCH_WORKLOAD_H_
#define QSCHED_WORKLOAD_TPCH_WORKLOAD_H_

#include <functional>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/rng.h"
#include "engine/buffer_pool.h"
#include "optimizer/cost_model.h"
#include "workload/query.h"

namespace qsched::workload {

struct TpchWorkloadParams {
  /// The paper's TPC-H database was 500 MB (scale factor 0.5).
  double scale_factor = 0.5;
  /// Optimizer estimation error (lognormal sigma).
  double estimation_noise_sigma = 0.2;
  /// Buffer pool the OLAP database runs against (pages); used to derive
  /// per-template expected hit ratios.
  uint64_t buffer_pool_pages = 20000;
  /// Timeron weights, shared with the engine-side cost model.
  optimizer::CostModelParams cost_params;
};

/// TPC-H-like OLAP workload: 18 query templates over the TPC-H-shaped
/// catalog, mirroring the paper's setup where the four largest queries
/// (Q16, Q19, Q20, Q21) are excluded. Each draw randomizes template choice
/// and predicate selectivities, producing the heavy-tailed cost mix
/// (hundreds to tens of thousands of timerons) that cost-based control
/// relies on.
class TpchWorkload : public QueryGenerator {
 public:
  TpchWorkload(const TpchWorkloadParams& params, uint64_t seed);

  Query Next() override;
  WorkloadType type() const override { return WorkloadType::kOlap; }

  /// Draws an instance of a specific template (testing / calibration).
  Query MakeFromTemplate(size_t index);

  size_t num_templates() const { return templates_.size(); }
  const std::string& template_name(size_t i) const {
    return templates_[i].name;
  }
  const catalog::Catalog& catalog() const { return catalog_; }

  /// Draws `n` queries and returns their timeron costs; used to derive the
  /// Query Patroller large/medium/small thresholds and for calibration.
  std::vector<double> SampleCosts(int n);

 private:
  struct Template {
    std::string name;
    std::function<optimizer::PlanNodePtr(Rng*)> build;
  };

  /// Expected hit ratio for a plan: working-set model over the distinct
  /// tables the plan touches.
  double HitRatioFor(const optimizer::PlanNode& plan) const;

  void RegisterTemplates();

  TpchWorkloadParams params_;
  catalog::Catalog catalog_;
  optimizer::CostModel cost_model_;
  engine::BufferPool pool_model_;
  Rng rng_;
  std::vector<Template> templates_;
};

}  // namespace qsched::workload

#endif  // QSCHED_WORKLOAD_TPCH_WORKLOAD_H_
