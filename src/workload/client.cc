#include "workload/client.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"

namespace qsched::workload {

const char* WorkloadTypeToString(WorkloadType type) {
  return type == WorkloadType::kOlap ? "OLAP" : "OLTP";
}

ClientPool::ClientPool(sim::Clock* simulator,
                       const WorkloadSchedule* schedule, int class_id,
                       QueryGenerator* generator, QueryFrontend* frontend,
                       RecordSink sink)
    : simulator_(simulator),
      schedule_(schedule),
      class_id_(class_id),
      generator_(generator),
      frontend_(frontend),
      sink_(std::move(sink)) {}

void ClientPool::set_telemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) return;
  obs::Registry& reg = telemetry_->registry;
  std::string labels = StrPrintf("class=\"%d\"", class_id_);
  submitted_counter_ =
      reg.GetCounter("qsched_client_queries_submitted_total", labels);
  completed_counter_ =
      reg.GetCounter("qsched_client_queries_completed_total", labels);
  active_clients_gauge_ =
      reg.GetGauge("qsched_client_active_clients", labels);
}

uint64_t ClientPool::NextQueryId() {
  // Brand ids with the class id so records are self-describing in logs.
  return (static_cast<uint64_t>(class_id_) << 48) | next_query_seq_++;
}

void ClientPool::Start() {
  AdjustPopulation();
  // Re-adjust at every period boundary.
  for (int p = 1; p < schedule_->num_periods(); ++p) {
    double when = schedule_->period_seconds() * p;
    simulator_->ScheduleAt(when, [this] { AdjustPopulation(); });
  }
}

void ClientPool::AdjustPopulation() {
  int target = schedule_->ClientsAt(simulator_->Now(), class_id_);
  // Grow: start new client loops immediately.
  while (active_clients_ < target) {
    int client_id = next_client_id_++;
    client_active_[client_id] = true;
    ++active_clients_;
    IssueNext(client_id);
  }
  // Shrink: flag the newest active clients to retire after their
  // in-flight query. (Which client retires does not matter statistically;
  // newest-first keeps ids compact.)
  if (active_clients_ > target) {
    int to_retire = active_clients_ - target;
    std::vector<int> active_ids;
    for (const auto& [id, active] : client_active_) {
      if (active) active_ids.push_back(id);
    }
    std::sort(active_ids.begin(), active_ids.end());
    for (int i = 0; i < to_retire && !active_ids.empty(); ++i) {
      int id = active_ids.back();
      active_ids.pop_back();
      client_active_[id] = false;
      --active_clients_;
    }
  }
  if (active_clients_gauge_ != nullptr) {
    active_clients_gauge_->Set(static_cast<double>(active_clients_));
  }
}

void ClientPool::IssueNext(int client_id) {
  auto it = client_active_.find(client_id);
  if (it == client_active_.end() || !it->second) {
    // Retired between completion and reissue.
    client_active_.erase(client_id);
    return;
  }
  Query query = generator_->Next();
  query.id = NextQueryId();
  query.class_id = class_id_;
  query.client_id = client_id;
  query.job.query_id = query.id;
  ++queries_submitted_;
  if (submitted_counter_ != nullptr) submitted_counter_->Inc();
  frontend_->Submit(query, [this, client_id](const QueryRecord& record) {
    OnComplete(client_id, record);
  });
}

void ClientPool::OnComplete(int client_id, const QueryRecord& record) {
  ++queries_completed_;
  if (completed_counter_ != nullptr) completed_counter_->Inc();
  if (sink_) sink_(record);
  auto it = client_active_.find(client_id);
  if (it != client_active_.end() && !it->second) {
    client_active_.erase(it);
    return;
  }
  // Zero think time: immediately issue the next query.
  IssueNext(client_id);
}

}  // namespace qsched::workload
