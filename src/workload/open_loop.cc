#include "workload/open_loop.h"

#include <algorithm>

namespace qsched::workload {

OpenLoopSource::OpenLoopSource(sim::Clock* simulator,
                               const WorkloadSchedule* schedule,
                               int class_id, QueryGenerator* generator,
                               QueryFrontend* frontend,
                               ClientPool::RecordSink sink,
                               double per_client_rate_per_second,
                               uint64_t seed)
    : simulator_(simulator),
      schedule_(schedule),
      class_id_(class_id),
      generator_(generator),
      frontend_(frontend),
      sink_(std::move(sink)),
      per_client_rate_(std::max(0.0, per_client_rate_per_second)),
      rng_(seed) {}

double OpenLoopSource::CurrentRate() const {
  return per_client_rate_ *
         schedule_->ClientsAt(simulator_->Now(), class_id_);
}

void OpenLoopSource::Start() { ScheduleNextArrival(); }

void OpenLoopSource::ScheduleNextArrival() {
  // Thinning-free approximation: draw from the current period's rate; a
  // rate of zero skips ahead to the next period boundary.
  double now = simulator_->Now();
  if (now >= schedule_->total_seconds()) return;
  double rate = CurrentRate();
  double gap;
  if (rate <= 0.0) {
    int period = schedule_->PeriodAt(now);
    gap = (period + 1) * schedule_->period_seconds() - now + 1e-9;
  } else {
    gap = rng_.Exponential(1.0 / rate);
  }
  double when = now + gap;
  if (when >= schedule_->total_seconds()) return;
  simulator_->ScheduleAt(when, [this] { OnArrival(); });
}

void OpenLoopSource::OnArrival() {
  if (CurrentRate() > 0.0) {
    Query query = generator_->Next();
    query.id = (static_cast<uint64_t>(class_id_) << 48) |
               (0x8000000000000ULL + next_query_seq_++);
    query.class_id = class_id_;
    query.client_id = -1;  // open-loop: no persistent client identity
    query.job.query_id = query.id;
    ++queries_submitted_;
    frontend_->Submit(query, [this](const QueryRecord& record) {
      ++queries_completed_;
      if (sink_) sink_(record);
    });
  }
  ScheduleNextArrival();
}

}  // namespace qsched::workload
