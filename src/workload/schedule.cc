#include "workload/schedule.h"

#include <algorithm>

#include "common/strings.h"

namespace qsched::workload {

WorkloadSchedule::WorkloadSchedule(double period_seconds,
                                   std::vector<int> class_ids)
    : period_seconds_(period_seconds > 0.0 ? period_seconds : 1.0),
      class_ids_(std::move(class_ids)) {
  for (size_t i = 0; i < class_ids_.size(); ++i) {
    class_index_[class_ids_[i]] = i;
  }
}

Status WorkloadSchedule::AddPeriod(std::vector<int> clients) {
  if (clients.size() != class_ids_.size()) {
    return Status::InvalidArgument(StrPrintf(
        "period has %zu client counts, schedule has %zu classes",
        clients.size(), class_ids_.size()));
  }
  for (int c : clients) {
    if (c < 0) return Status::InvalidArgument("negative client count");
  }
  periods_.push_back(std::move(clients));
  return Status::OK();
}

int WorkloadSchedule::PeriodAt(sim::SimTime t) const {
  if (periods_.empty()) return 0;
  if (t < 0.0) return 0;
  int period = static_cast<int>(t / period_seconds_);
  return std::min(period, num_periods() - 1);
}

int WorkloadSchedule::ClientsFor(int period, int class_id) const {
  if (period < 0 || period >= num_periods()) return 0;
  auto it = class_index_.find(class_id);
  if (it == class_index_.end()) return 0;
  return periods_[static_cast<size_t>(period)][it->second];
}

int WorkloadSchedule::ClientsAt(sim::SimTime t, int class_id) const {
  return ClientsFor(PeriodAt(t), class_id);
}

WorkloadSchedule MakeFigure3Schedule(double period_seconds) {
  // Reconstruction of the paper's Figure 3 honoring every constraint the
  // text states: OLAP classes vary within [2, 6] clients, the OLTP class
  // cycles 15/20/25 so periods 3,6,9,12,15,18 (1-based) are OLTP-heavy and
  // 2,5,8,...,17 are medium; period 17 pairs medium OLTP with high OLAP;
  // period 18 is the heaviest overall with (2, 6, 25) clients and more
  // OLAP work than periods 3, 6 and 9.
  const int kClass1[18] = {2, 3, 4, 2, 3, 4, 2, 3, 4,
                           2, 3, 4, 2, 3, 4, 2, 3, 2};
  const int kClass2[18] = {2, 2, 2, 3, 3, 3, 3, 3, 3,
                           4, 4, 4, 4, 4, 4, 5, 4, 6};
  const int kClass3[18] = {15, 20, 25, 15, 20, 25, 15, 20, 25,
                           15, 20, 25, 15, 20, 25, 15, 20, 25};

  WorkloadSchedule schedule(period_seconds, {1, 2, 3});
  for (int p = 0; p < 18; ++p) {
    schedule.AddPeriod({kClass1[p], kClass2[p], kClass3[p]});
  }
  return schedule;
}

}  // namespace qsched::workload
