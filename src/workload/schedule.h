#ifndef QSCHED_WORKLOAD_SCHEDULE_H_
#define QSCHED_WORKLOAD_SCHEDULE_H_

#include <map>
#include <vector>

#include "common/status.h"
#include "sim/clock.h"

namespace qsched::workload {

/// Per-period client counts for each service class: the experiment's
/// workload-intensity script (the paper's Figure 3: 18 periods, OLAP
/// classes between 2 and 6 clients, the OLTP class between 15 and 25).
class WorkloadSchedule {
 public:
  WorkloadSchedule(double period_seconds, std::vector<int> class_ids);

  /// Appends one period; `clients` must line up with class_ids().
  Status AddPeriod(std::vector<int> clients);

  int num_periods() const { return static_cast<int>(periods_.size()); }
  double period_seconds() const { return period_seconds_; }
  const std::vector<int>& class_ids() const { return class_ids_; }
  double total_seconds() const { return period_seconds_ * num_periods(); }

  /// Period index (0-based) active at simulated time `t`; times past the
  /// end clamp to the last period.
  int PeriodAt(sim::SimTime t) const;

  /// Client count for `class_id` during `period` (0-based).
  int ClientsFor(int period, int class_id) const;

  /// Client count for `class_id` at simulated time `t`.
  int ClientsAt(sim::SimTime t, int class_id) const;

 private:
  double period_seconds_;
  std::vector<int> class_ids_;
  std::map<int, size_t> class_index_;
  std::vector<std::vector<int>> periods_;
};

/// The paper's Figure 3 schedule: classes {1, 2} are OLAP, class 3 is
/// OLTP. OLAP client counts cycle through {2,...,6}; OLTP cycles
/// {15, 20, 25} so that every third period (3, 6, 9, 12, 15, 18 in the
/// paper's 1-based numbering) is OLTP-heavy, and period 18 is the overall
/// heaviest (2, 6, 25).
WorkloadSchedule MakeFigure3Schedule(double period_seconds);

}  // namespace qsched::workload

#endif  // QSCHED_WORKLOAD_SCHEDULE_H_
