#ifndef QSCHED_WORKLOAD_CLIENT_H_
#define QSCHED_WORKLOAD_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "obs/stage_trace.h"
#include "obs/telemetry.h"
#include "sim/clock.h"
#include "workload/query.h"
#include "workload/schedule.h"

namespace qsched::workload {

/// Everything known about one finished query; the unit every metric and
/// model in the system is computed from.
struct QueryRecord {
  uint64_t query_id = 0;
  int class_id = 0;
  int client_id = -1;
  WorkloadType type = WorkloadType::kOlap;
  double cost_timerons = 0.0;
  /// Client-side submission time.
  sim::SimTime submit_time = 0.0;
  /// When the engine started executing (after any controller queueing).
  sim::SimTime exec_start_time = 0.0;
  /// Completion time.
  sim::SimTime end_time = 0.0;
  /// True when the query was cancelled (QP admin action) while queued;
  /// such records carry no execution time.
  bool cancelled = false;
  /// Wall-clock stage trace carried through from the submitted query's
  /// job; null on the pure-DES path. See obs/stage_trace.h.
  std::shared_ptr<obs::QueryStageTrace> trace;

  /// Execution_Time of the paper: time actually running in the DBMS.
  double ExecSeconds() const { return end_time - exec_start_time; }
  /// Response_Time of the paper: submission to completion, including the
  /// time held by the workload adaptation mechanism.
  double ResponseSeconds() const { return end_time - submit_time; }
  /// Query velocity = Execution_Time / Response_Time, in (0, 1].
  double Velocity() const {
    double response = ResponseSeconds();
    if (response <= 0.0) return 1.0;
    double v = ExecSeconds() / response;
    return v > 1.0 ? 1.0 : v;
  }
};

/// The submission side every controller implements: take a query, decide
/// when to run it, execute it on the engine, and report completion.
class QueryFrontend {
 public:
  using CompleteFn = std::function<void(const QueryRecord&)>;

  virtual ~QueryFrontend() = default;

  /// Submits one query. `query.submit_time`-relevant fields (id, class,
  /// client) are already filled by the caller. `on_complete` must be
  /// invoked exactly once with the finished record.
  virtual void Submit(const Query& query, CompleteFn on_complete) = 0;
};

/// A closed-loop client population for one service class: each client
/// issues queries back-to-back with zero think time (as in the paper), and
/// the population tracks the workload schedule at period boundaries.
/// Clients added mid-run start immediately; clients removed mid-run retire
/// after their in-flight query finishes.
class ClientPool {
 public:
  using RecordSink = std::function<void(const QueryRecord&)>;

  ClientPool(sim::Clock* simulator, const WorkloadSchedule* schedule,
             int class_id, QueryGenerator* generator,
             QueryFrontend* frontend, RecordSink sink);

  ClientPool(const ClientPool&) = delete;
  ClientPool& operator=(const ClientPool&) = delete;

  /// Installs the period-boundary adjustments and starts the initial
  /// clients. Call once before running the simulator.
  void Start();

  int active_clients() const { return active_clients_; }
  uint64_t queries_submitted() const { return queries_submitted_; }
  uint64_t queries_completed() const { return queries_completed_; }

  /// Global id assignment shared by all pools in a process would hide
  /// state; instead each pool brands ids with its class in the high bits.
  uint64_t NextQueryId();

  /// Enables telemetry (nullptr = off): per-class submitted/completed
  /// counters and an active-clients gauge. Call before Start().
  void set_telemetry(obs::Telemetry* telemetry);

 private:
  /// Brings the population to the scheduled size for the current time.
  void AdjustPopulation();
  /// One client's issue-wait-repeat loop.
  void IssueNext(int client_id);
  void OnComplete(int client_id, const QueryRecord& record);

  sim::Clock* simulator_;
  const WorkloadSchedule* schedule_;
  int class_id_;
  QueryGenerator* generator_;
  QueryFrontend* frontend_;
  RecordSink sink_;

  int active_clients_ = 0;
  int next_client_id_ = 0;
  /// client_id -> should keep issuing after current query completes.
  std::unordered_map<int, bool> client_active_;
  uint64_t next_query_seq_ = 1;
  uint64_t queries_submitted_ = 0;
  uint64_t queries_completed_ = 0;

  obs::Telemetry* telemetry_ = nullptr;
  obs::Counter* submitted_counter_ = nullptr;
  obs::Counter* completed_counter_ = nullptr;
  obs::Gauge* active_clients_gauge_ = nullptr;
};

}  // namespace qsched::workload

#endif  // QSCHED_WORKLOAD_CLIENT_H_
