#ifndef QSCHED_WORKLOAD_TPCC_WORKLOAD_H_
#define QSCHED_WORKLOAD_TPCC_WORKLOAD_H_

#include <functional>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/rng.h"
#include "engine/buffer_pool.h"
#include "optimizer/cost_model.h"
#include "workload/query.h"

namespace qsched::workload {

struct TpccWorkloadParams {
  /// The paper's TPC-C database had 50 warehouses.
  int warehouses = 50;
  /// Fixed per-SQL-statement CPU cost (parse/optimize/latch/log), the
  /// dominant CPU term for short transactions.
  double per_statement_cpu_seconds = 0.0006;
  /// Fraction of touched tables that is hot (recent orders, popular
  /// items); determines the OLTP buffer hit ratio.
  double hot_set_fraction = 0.05;
  /// OLTP buffer pool used for the hit-ratio model (pages).
  uint64_t buffer_pool_pages = 16000;
  double estimation_noise_sigma = 0.15;
  optimizer::CostModelParams cost_params;
};

/// TPC-C-like OLTP workload: the five standard transaction types with the
/// standard mix (45% NewOrder, 43% Payment, 4% each OrderStatus, Delivery,
/// StockLevel). Transactions are multi-statement: each statement is a tiny
/// plan (index probes, updates, inserts), and their costs are summed.
/// The result is the paper's sub-second, CPU-intensive, low-variance class.
class TpccWorkload : public QueryGenerator {
 public:
  TpccWorkload(const TpccWorkloadParams& params, uint64_t seed);

  Query Next() override;
  WorkloadType type() const override { return WorkloadType::kOltp; }

  /// Draws an instance of a specific transaction type (testing).
  Query MakeTransaction(size_t index);

  size_t num_transaction_types() const { return transactions_.size(); }
  const std::string& transaction_name(size_t i) const {
    return transactions_[i].name;
  }
  const catalog::Catalog& catalog() const { return catalog_; }

  /// Draws `n` transactions and returns their timeron costs.
  std::vector<double> SampleCosts(int n);

 private:
  struct Transaction {
    std::string name;
    double mix_weight;
    /// Produces the statements (small plans) of one instance.
    std::function<std::vector<optimizer::PlanNodePtr>(Rng*)> build;
  };

  void RegisterTransactions();
  double HitRatioFor(const std::vector<optimizer::PlanNodePtr>& stmts) const;

  TpccWorkloadParams params_;
  catalog::Catalog catalog_;
  optimizer::CostModel cost_model_;
  engine::BufferPool pool_model_;
  Rng rng_;
  std::vector<Transaction> transactions_;
  std::vector<double> mix_weights_;
};

}  // namespace qsched::workload

#endif  // QSCHED_WORKLOAD_TPCC_WORKLOAD_H_
