#ifndef QSCHED_OPTIMIZER_PLAN_H_
#define QSCHED_OPTIMIZER_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace qsched::optimizer {

/// Physical plan operators. The set covers what the TPC-H-style and
/// TPC-C-style template workloads need; the cost model prices each kind.
enum class OperatorKind {
  kTableScan,       // full scan of `table`, keeps `selectivity` of rows
  kIndexScan,       // probe index on `column`, returns `probe_rows` rows
  kFilter,          // keeps `selectivity` of child rows
  kHashJoin,        // build on left child, probe with right child
  kNestedLoopJoin,  // inner (right) assumed index-driven per outer row
  kSort,            // full sort of child output
  kAggregate,       // group-by producing `group_count` rows
  kTopN,            // keeps first `limit` rows of child
  kInsert,          // writes `probe_rows` rows into `table`
  kUpdate,          // reads+writes `probe_rows` rows of `table`
};

const char* OperatorKindToString(OperatorKind kind);

/// A node of a physical plan tree. Plain data: the cardinality estimator
/// and the cost model annotate copies of the numbers they derive, the tree
/// itself is immutable after construction.
struct PlanNode {
  OperatorKind kind = OperatorKind::kTableScan;
  /// Referenced table (scans and DML).
  std::string table;
  /// Probe column for index scans.
  std::string column;
  /// Fraction of input rows kept (scans and filters).
  double selectivity = 1.0;
  /// Rows touched by index scans / DML.
  double probe_rows = 1.0;
  /// Output rows of an aggregate.
  uint64_t group_count = 1;
  /// Row limit of a TopN.
  uint64_t limit = 0;
  /// Join fan-out: output rows = max(inputs) * fanout.
  double fanout = 1.0;
  std::vector<std::unique_ptr<PlanNode>> children;

  /// Number of nodes in this subtree.
  size_t TreeSize() const;
  /// One-line s-expression, e.g. "(HashJoin (TableScan lineitem) ...)".
  std::string ToString() const;
};

using PlanNodePtr = std::unique_ptr<PlanNode>;

/// Builder helpers so workload templates read like plans.
PlanNodePtr TableScan(std::string table, double selectivity);
PlanNodePtr IndexScan(std::string table, std::string column,
                      double probe_rows);
PlanNodePtr Filter(PlanNodePtr child, double selectivity);
PlanNodePtr HashJoin(PlanNodePtr build, PlanNodePtr probe,
                     double fanout = 1.0);
PlanNodePtr NestedLoopJoin(PlanNodePtr outer, PlanNodePtr inner,
                           double fanout = 1.0);
PlanNodePtr Sort(PlanNodePtr child);
PlanNodePtr Aggregate(PlanNodePtr child, uint64_t group_count);
PlanNodePtr TopN(PlanNodePtr child, uint64_t limit);
PlanNodePtr Insert(std::string table, double rows);
PlanNodePtr Update(std::string table, double rows);

}  // namespace qsched::optimizer

#endif  // QSCHED_OPTIMIZER_PLAN_H_
