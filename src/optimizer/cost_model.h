#ifndef QSCHED_OPTIMIZER_COST_MODEL_H_
#define QSCHED_OPTIMIZER_COST_MODEL_H_

#include <cstdint>

#include "catalog/schema.h"
#include "common/rng.h"
#include "common/status.h"
#include "optimizer/plan.h"

namespace qsched::optimizer {

/// Tunable constants of the timeron-style cost model. Defaults are
/// calibrated so that TPC-H-shaped queries at SF 0.5 land in the
/// 1K-200K timeron range the paper works with (system cost limit 300K).
struct CostModelParams {
  int page_size_bytes = 4096;
  /// Width assumed for intermediate (join/sort) rows.
  int intermediate_row_bytes = 64;
  /// Sort/hash memory budget before spilling to temp pages.
  int64_t work_mem_bytes = 32LL * 1024 * 1024;
  /// Seconds of CPU per abstract "cpu unit" (one unit ~ touching a row).
  double seconds_per_cpu_unit = 0.4e-6;
  /// Buffer-pool hit ratio the *optimizer* assumes when pricing I/O.
  /// The engine's buffer pool decides actual hits at run time.
  double assumed_hit_ratio = 0.2;
  /// Timerons per physical page read/written. Calibrated together with
  /// `timerons_per_cpu_unit` so the under-saturation knee of the simulated
  /// engine sits near the paper's 300K-timeron system cost limit.
  double timerons_per_page = 0.45;
  /// Timerons per cpu unit.
  double timerons_per_cpu_unit = 1.0 / 20000.0;
  /// Lognormal sigma of the optimizer's estimation error; 0 disables it.
  /// Models the paper's "cost-based resource allocation is somehow
  /// inaccurate" caveat.
  double estimation_noise_sigma = 0.0;
};

/// The planner-visible price and the engine-visible true demand of a query.
struct QueryCost {
  /// Optimizer estimate in timerons (includes estimation noise when
  /// configured) — this is what admission control reasons about.
  double timerons = 0.0;
  /// True CPU demand in seconds of one simulated core.
  double cpu_seconds = 0.0;
  /// True logical page accesses; the buffer pool decides which of these
  /// become physical I/O.
  double logical_pages = 0.0;
  /// Logical pages that are writes (flushed asynchronously; priced but not
  /// blocking reads in the engine).
  double write_pages = 0.0;
  /// Estimated output rows of the plan root.
  double output_rows = 0.0;
};

/// Per-node cardinality estimation over a catalog. Split out from the cost
/// model so tests can pin down the row math independently.
class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(const catalog::Catalog* catalog)
      : catalog_(catalog) {}

  /// Estimated output rows of the subtree rooted at `node`.
  /// Unknown tables estimate as 0 rows.
  double OutputRows(const PlanNode& node) const;

 private:
  const catalog::Catalog* catalog_;
};

/// Timeron-style cost model: walks a plan tree and produces both the
/// optimizer's estimate (timerons) and the true resource demand the engine
/// will execute. One CostModel instance serves one database catalog.
class CostModel {
 public:
  CostModel(const catalog::Catalog* catalog, CostModelParams params);

  const CostModelParams& params() const { return params_; }

  /// Prices the plan. When `noise_rng` is non-null and
  /// `estimation_noise_sigma > 0`, the timeron estimate is perturbed
  /// multiplicatively while the true demand stays exact.
  Result<QueryCost> Estimate(const PlanNode& plan, Rng* noise_rng) const;

 private:
  struct NodeCost {
    double rows = 0.0;
    double cpu_units = 0.0;
    double read_pages = 0.0;
    double write_pages = 0.0;
  };

  Result<NodeCost> Walk(const PlanNode& node) const;

  double PagesForRows(double rows, int row_bytes) const;

  const catalog::Catalog* catalog_;
  CardinalityEstimator estimator_;
  CostModelParams params_;
};

}  // namespace qsched::optimizer

#endif  // QSCHED_OPTIMIZER_COST_MODEL_H_
