#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace qsched::optimizer {

namespace {

// Per-row CPU weights (in abstract cpu units) for each operator.
constexpr double kScanUnitPerRow = 1.0;
constexpr double kIndexUnitPerRow = 1.5;
constexpr double kFilterUnitPerRow = 0.3;
constexpr double kHashBuildUnitPerRow = 2.0;
constexpr double kHashProbeUnitPerRow = 1.5;
constexpr double kNljOuterUnitPerRow = 1.0;
constexpr double kSortUnitPerRowLog = 0.5;
constexpr double kAggUnitPerRow = 1.2;
constexpr double kTopNUnitPerRow = 0.4;
constexpr double kDmlUnitPerRow = 3.0;

// When the inner side of a nested-loop join repeats per outer row, most of
// its pages stay hot; only this fraction is re-fetched.
constexpr double kNljInnerIoRefetch = 0.1;

}  // namespace

double CardinalityEstimator::OutputRows(const PlanNode& node) const {
  switch (node.kind) {
    case OperatorKind::kTableScan: {
      const catalog::Table* table = catalog_->FindTable(node.table);
      if (table == nullptr) return 0.0;
      return static_cast<double>(table->row_count()) *
             std::clamp(node.selectivity, 0.0, 1.0);
    }
    case OperatorKind::kIndexScan:
      return std::max(0.0, node.probe_rows);
    case OperatorKind::kFilter:
      return OutputRows(*node.children.at(0)) *
             std::clamp(node.selectivity, 0.0, 1.0);
    case OperatorKind::kHashJoin:
    case OperatorKind::kNestedLoopJoin: {
      double left = OutputRows(*node.children.at(0));
      double right = OutputRows(*node.children.at(1));
      return std::max(left, right) * std::max(0.0, node.fanout);
    }
    case OperatorKind::kSort:
      return OutputRows(*node.children.at(0));
    case OperatorKind::kAggregate: {
      double child = OutputRows(*node.children.at(0));
      return std::min(child, static_cast<double>(node.group_count));
    }
    case OperatorKind::kTopN: {
      double child = OutputRows(*node.children.at(0));
      return std::min(child, static_cast<double>(node.limit));
    }
    case OperatorKind::kInsert:
    case OperatorKind::kUpdate:
      return std::max(0.0, node.probe_rows);
  }
  return 0.0;
}

CostModel::CostModel(const catalog::Catalog* catalog, CostModelParams params)
    : catalog_(catalog), estimator_(catalog), params_(params) {}

double CostModel::PagesForRows(double rows, int row_bytes) const {
  if (rows <= 0.0) return 0.0;
  double rows_per_page = std::max(
      1.0, static_cast<double>(params_.page_size_bytes) / row_bytes);
  return std::ceil(rows / rows_per_page);
}

Result<CostModel::NodeCost> CostModel::Walk(const PlanNode& node) const {
  NodeCost cost;
  // Aggregate children first.
  std::vector<NodeCost> child_costs;
  child_costs.reserve(node.children.size());
  for (const auto& child : node.children) {
    auto child_cost = Walk(*child);
    if (!child_cost.ok()) return child_cost.status();
    child_costs.push_back(child_cost.ValueOrDie());
  }

  auto require_table = [&]() -> Result<const catalog::Table*> {
    const catalog::Table* table = catalog_->FindTable(node.table);
    if (table == nullptr) {
      return Status::NotFound("table not in catalog '" +
                              catalog_->database_name() + "': " + node.table);
    }
    return table;
  };

  switch (node.kind) {
    case OperatorKind::kTableScan: {
      auto table = require_table();
      if (!table.ok()) return table.status();
      double rows = static_cast<double>(table.ValueOrDie()->row_count());
      cost.read_pages = static_cast<double>(
          table.ValueOrDie()->PageCount(params_.page_size_bytes));
      cost.cpu_units = rows * kScanUnitPerRow;
      cost.rows = rows * std::clamp(node.selectivity, 0.0, 1.0);
      break;
    }
    case OperatorKind::kIndexScan: {
      auto table = require_table();
      if (!table.ok()) return table.status();
      const catalog::Table* t = table.ValueOrDie();
      const catalog::Index* index = t->FindIndexOn(node.column);
      double height = index != nullptr ? index->height : 3.0;
      double rows = std::max(0.0, node.probe_rows);
      double data_pages =
          std::min(PagesForRows(rows, t->row_bytes()),
                   static_cast<double>(t->PageCount(params_.page_size_bytes)));
      cost.read_pages = height + data_pages;
      cost.cpu_units = rows * kIndexUnitPerRow + height;
      cost.rows = rows;
      break;
    }
    case OperatorKind::kFilter: {
      cost = child_costs.at(0);
      cost.cpu_units += cost.rows * kFilterUnitPerRow;
      cost.rows *= std::clamp(node.selectivity, 0.0, 1.0);
      break;
    }
    case OperatorKind::kHashJoin: {
      const NodeCost& build = child_costs.at(0);
      const NodeCost& probe = child_costs.at(1);
      cost.read_pages = build.read_pages + probe.read_pages;
      cost.write_pages = build.write_pages + probe.write_pages;
      cost.cpu_units = build.cpu_units + probe.cpu_units +
                       build.rows * kHashBuildUnitPerRow +
                       probe.rows * kHashProbeUnitPerRow;
      double build_bytes = build.rows * params_.intermediate_row_bytes;
      if (build_bytes > static_cast<double>(params_.work_mem_bytes)) {
        // Grace-hash spill: both sides written once and re-read once.
        double spill_pages =
            PagesForRows(build.rows, params_.intermediate_row_bytes) +
            PagesForRows(probe.rows, params_.intermediate_row_bytes);
        cost.write_pages += spill_pages;
        cost.read_pages += spill_pages;
      }
      cost.rows =
          std::max(build.rows, probe.rows) * std::max(0.0, node.fanout);
      break;
    }
    case OperatorKind::kNestedLoopJoin: {
      const NodeCost& outer = child_costs.at(0);
      const NodeCost& inner = child_costs.at(1);
      double repeats = std::max(1.0, outer.rows);
      cost.read_pages = outer.read_pages + inner.read_pages +
                        inner.read_pages * (repeats - 1.0) *
                            kNljInnerIoRefetch;
      cost.write_pages = outer.write_pages + inner.write_pages;
      cost.cpu_units = outer.cpu_units + inner.cpu_units * repeats +
                       outer.rows * kNljOuterUnitPerRow;
      cost.rows =
          std::max(outer.rows, inner.rows) * std::max(0.0, node.fanout);
      break;
    }
    case OperatorKind::kSort: {
      cost = child_costs.at(0);
      double n = std::max(2.0, cost.rows);
      cost.cpu_units += n * std::log2(n) * kSortUnitPerRowLog;
      double bytes = cost.rows * params_.intermediate_row_bytes;
      if (bytes > static_cast<double>(params_.work_mem_bytes)) {
        // External merge sort: one spill write + one re-read.
        double pages = PagesForRows(cost.rows, params_.intermediate_row_bytes);
        cost.write_pages += pages;
        cost.read_pages += pages;
      }
      break;
    }
    case OperatorKind::kAggregate: {
      cost = child_costs.at(0);
      cost.cpu_units += cost.rows * kAggUnitPerRow;
      cost.rows = std::min(cost.rows, static_cast<double>(node.group_count));
      break;
    }
    case OperatorKind::kTopN: {
      cost = child_costs.at(0);
      cost.cpu_units += cost.rows * kTopNUnitPerRow;
      cost.rows = std::min(cost.rows, static_cast<double>(node.limit));
      break;
    }
    case OperatorKind::kInsert:
    case OperatorKind::kUpdate: {
      auto table = require_table();
      if (!table.ok()) return table.status();
      const catalog::Table* t = table.ValueOrDie();
      double rows = std::max(0.0, node.probe_rows);
      // Each touched row lands on (at worst) its own page, plus the log.
      double touched_pages = std::min(
          rows, static_cast<double>(t->PageCount(params_.page_size_bytes)));
      if (node.kind == OperatorKind::kUpdate) {
        cost.read_pages = touched_pages + 2.0;  // index descent amortized
      }
      cost.write_pages = touched_pages + 1.0;  // +1 for the log page
      cost.cpu_units = rows * kDmlUnitPerRow;
      cost.rows = rows;
      break;
    }
  }
  return cost;
}

Result<QueryCost> CostModel::Estimate(const PlanNode& plan,
                                      Rng* noise_rng) const {
  auto walked = Walk(plan);
  if (!walked.ok()) return walked.status();
  const NodeCost& total = walked.ValueOrDie();

  QueryCost out;
  out.cpu_seconds = total.cpu_units * params_.seconds_per_cpu_unit;
  out.logical_pages = total.read_pages;
  out.write_pages = total.write_pages;
  out.output_rows = total.rows;

  double est_read = total.read_pages;
  double est_cpu = total.cpu_units;
  if (noise_rng != nullptr && params_.estimation_noise_sigma > 0.0) {
    double sigma = params_.estimation_noise_sigma;
    // Centered lognormal: median multiplier 1.
    est_read *= noise_rng->LogNormal(-0.5 * sigma * sigma, sigma);
    est_cpu *= noise_rng->LogNormal(-0.5 * sigma * sigma, sigma);
  }
  double physical_read = est_read * (1.0 - params_.assumed_hit_ratio);
  out.timerons = (physical_read + total.write_pages) *
                     params_.timerons_per_page +
                 est_cpu * params_.timerons_per_cpu_unit;
  if (out.timerons < 1.0) out.timerons = 1.0;
  return out;
}

}  // namespace qsched::optimizer
