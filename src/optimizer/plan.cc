#include "optimizer/plan.h"

#include <utility>

namespace qsched::optimizer {

const char* OperatorKindToString(OperatorKind kind) {
  switch (kind) {
    case OperatorKind::kTableScan:
      return "TableScan";
    case OperatorKind::kIndexScan:
      return "IndexScan";
    case OperatorKind::kFilter:
      return "Filter";
    case OperatorKind::kHashJoin:
      return "HashJoin";
    case OperatorKind::kNestedLoopJoin:
      return "NestedLoopJoin";
    case OperatorKind::kSort:
      return "Sort";
    case OperatorKind::kAggregate:
      return "Aggregate";
    case OperatorKind::kTopN:
      return "TopN";
    case OperatorKind::kInsert:
      return "Insert";
    case OperatorKind::kUpdate:
      return "Update";
  }
  return "Unknown";
}

size_t PlanNode::TreeSize() const {
  size_t n = 1;
  for (const auto& child : children) n += child->TreeSize();
  return n;
}

std::string PlanNode::ToString() const {
  std::string out = "(";
  out += OperatorKindToString(kind);
  if (!table.empty()) {
    out += " ";
    out += table;
  }
  for (const auto& child : children) {
    out += " ";
    out += child->ToString();
  }
  out += ")";
  return out;
}

namespace {

PlanNodePtr MakeNode(OperatorKind kind) {
  auto node = std::make_unique<PlanNode>();
  node->kind = kind;
  return node;
}

}  // namespace

PlanNodePtr TableScan(std::string table, double selectivity) {
  auto node = MakeNode(OperatorKind::kTableScan);
  node->table = std::move(table);
  node->selectivity = selectivity;
  return node;
}

PlanNodePtr IndexScan(std::string table, std::string column,
                      double probe_rows) {
  auto node = MakeNode(OperatorKind::kIndexScan);
  node->table = std::move(table);
  node->column = std::move(column);
  node->probe_rows = probe_rows;
  return node;
}

PlanNodePtr Filter(PlanNodePtr child, double selectivity) {
  auto node = MakeNode(OperatorKind::kFilter);
  node->selectivity = selectivity;
  node->children.push_back(std::move(child));
  return node;
}

PlanNodePtr HashJoin(PlanNodePtr build, PlanNodePtr probe, double fanout) {
  auto node = MakeNode(OperatorKind::kHashJoin);
  node->fanout = fanout;
  node->children.push_back(std::move(build));
  node->children.push_back(std::move(probe));
  return node;
}

PlanNodePtr NestedLoopJoin(PlanNodePtr outer, PlanNodePtr inner,
                           double fanout) {
  auto node = MakeNode(OperatorKind::kNestedLoopJoin);
  node->fanout = fanout;
  node->children.push_back(std::move(outer));
  node->children.push_back(std::move(inner));
  return node;
}

PlanNodePtr Sort(PlanNodePtr child) {
  auto node = MakeNode(OperatorKind::kSort);
  node->children.push_back(std::move(child));
  return node;
}

PlanNodePtr Aggregate(PlanNodePtr child, uint64_t group_count) {
  auto node = MakeNode(OperatorKind::kAggregate);
  node->group_count = group_count == 0 ? 1 : group_count;
  node->children.push_back(std::move(child));
  return node;
}

PlanNodePtr TopN(PlanNodePtr child, uint64_t limit) {
  auto node = MakeNode(OperatorKind::kTopN);
  node->limit = limit;
  node->children.push_back(std::move(child));
  return node;
}

PlanNodePtr Insert(std::string table, double rows) {
  auto node = MakeNode(OperatorKind::kInsert);
  node->table = std::move(table);
  node->probe_rows = rows;
  return node;
}

PlanNodePtr Update(std::string table, double rows) {
  auto node = MakeNode(OperatorKind::kUpdate);
  node->table = std::move(table);
  node->probe_rows = rows;
  return node;
}

}  // namespace qsched::optimizer
