#ifndef QSCHED_REPLAY_TEMPLATE_CODEC_H_
#define QSCHED_REPLAY_TEMPLATE_CODEC_H_

#include <string>
#include <unordered_map>

#include "replay/trace_format.h"
#include "workload/tpcc_workload.h"
#include "workload/tpch_workload.h"
#include "workload/query.h"

namespace qsched::replay {

/// Maps between template names ("q6", "new_order") and the compact
/// template_id stored in trace records, and rebuilds full query instances
/// from records. Both workload families enumerate their templates in a
/// fixed order, so ids are stable across processes.
///
/// Encode is cheap (one hash lookup) and const — safe to call from many
/// producer threads concurrently. Materialize draws a fresh instance from
/// the codec's own generators (deterministic given the codec seed) and is
/// NOT thread-safe: give each replay connection / shadow world its own
/// codec.
class TemplateCodec {
 public:
  TemplateCodec(const workload::TpchWorkloadParams& tpch,
                const workload::TpccWorkloadParams& tpcc, uint64_t seed);

  TemplateCodec(const TemplateCodec&) = delete;
  TemplateCodec& operator=(const TemplateCodec&) = delete;

  /// Template id for a live query; kUnknownTemplate (with the family bit
  /// for OLTP) when the name is not a known template.
  uint16_t Encode(const workload::Query& query) const;

  /// Rebuilds a query instance for a record: regenerates the template's
  /// resource demand from this codec's deterministic generators, then
  /// restores the captured class id and cost estimate. Unknown templates
  /// fall back to template 0 of the record's family.
  workload::Query Materialize(const TraceRecord& record);

  /// Human-readable name ("q6", "new_order", or "unknown").
  std::string TemplateName(uint16_t template_id) const;

 private:
  workload::TpchWorkload olap_;
  workload::TpccWorkload oltp_;
  std::unordered_map<std::string, uint16_t> by_name_;
};

}  // namespace qsched::replay

#endif  // QSCHED_REPLAY_TEMPLATE_CODEC_H_
