#ifndef QSCHED_REPLAY_TRACE_FORMAT_H_
#define QSCHED_REPLAY_TRACE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace qsched::replay {

/// CRC-32 (IEEE 802.3 polynomial, reflected, table-driven). `seed` lets
/// callers chain calls over split buffers; pass the previous return value.
uint32_t Crc32(const uint8_t* data, size_t len, uint32_t seed = 0);

/// One captured arrival. Everything the replayer and the shadow planner
/// need to reconstruct the query: when it arrived (relative to capture
/// start), what class it belonged to, which workload template it was
/// drawn from, and the optimizer cost estimate the control plane saw.
/// The true resource demand is NOT stored — it is regenerated
/// deterministically from (template_id, replay seed), which keeps records
/// at 28 bytes and shadow runs bit-reproducible.
struct TraceRecord {
  /// Wall nanoseconds since the recorder started.
  uint64_t arrival_ns = 0;
  /// The gateway-assigned query id (0 when unknown).
  uint64_t trace_id = 0;
  /// Optimizer estimate in timerons, as captured.
  double cost_timerons = 0.0;
  uint16_t class_id = 0;
  /// Template index; bit 15 set = OLTP transaction type, clear = OLAP
  /// query template (see TemplateCodec).
  uint16_t template_id = 0;

  /// Encoded size on the wire.
  static constexpr size_t kWireBytes = 28;

  bool operator==(const TraceRecord& other) const {
    return arrival_ns == other.arrival_ns && trace_id == other.trace_id &&
           cost_timerons == other.cost_timerons &&
           class_id == other.class_id && template_id == other.template_id;
  }
};

/// Marks a template_id as belonging to the OLTP transaction family.
inline constexpr uint16_t kOltpTemplateBit = 0x8000;
/// Template could not be resolved by name at capture time; the replayer
/// substitutes template 0 of the record's family.
inline constexpr uint16_t kUnknownTemplate = 0x7FFF;

/// Fixed per-file header, written once at the start of every trace file
/// (including rotation continuations).
struct TraceHeader {
  uint32_t version = 1;
  /// Model seconds per wall second of the capturing runtime — what maps
  /// captured wall gaps onto shadow-planner model time.
  double time_scale = 1.0;
  /// Seed of the capturing process, echoed for provenance.
  uint64_t seed = 0;
};

/// Live-run context appended as a trailing summary segment when the
/// capturing CLI shuts down cleanly: per-class measured performance and
/// SLO attainment during capture plus the plan that was live, so a
/// what-if report can put predicted candidate utility side by side with
/// what actually happened. Truncated traces simply lack it.
struct TraceSummaryClass {
  uint32_t class_id = 0;
  /// Rolling SLO attainment over the capture's control intervals.
  double attainment = 0.0;
  /// Velocity (OLAP) or average response seconds (OLTP) at capture end.
  double measured = 0.0;
  /// The class cost limit of the plan live at capture end.
  double cost_limit = 0.0;
};

struct TraceSummary {
  double control_interval_seconds = 0.0;
  double system_cost_limit = 0.0;
  /// Total utility of the measured per-class performance under the
  /// capture-side utility function.
  double total_utility = 0.0;
  /// 0 = utility search, 1 = greedy auction.
  uint32_t allocator = 0;
  std::vector<TraceSummaryClass> classes;
};

struct TraceWriterOptions {
  std::string path;
  /// Rotate to `<path>.1`, `<path>.2`, ... once the current file exceeds
  /// this many bytes (checked at segment boundaries); 0 = never rotate.
  uint64_t rotate_bytes = 0;
  /// Records buffered per CRC'd segment; a crash loses at most one
  /// segment's worth.
  size_t records_per_segment = 1024;
  TraceHeader header;
};

/// Sequential trace writer. Not thread-safe: the recorder serializes all
/// appends onto its dedicated writer thread.
class TraceWriter {
 public:
  static Result<std::unique_ptr<TraceWriter>> Open(
      const TraceWriterOptions& options);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  Status Append(const TraceRecord& record);
  /// Seals the pending records into a CRC'd segment and flushes it.
  Status Flush();
  /// Flushes, then appends the summary as its own segment (always to the
  /// newest file).
  Status WriteSummary(const TraceSummary& summary);
  /// Flush + close. Idempotent; the destructor calls it.
  Status Close();

  uint64_t records_written() const { return records_written_; }
  uint64_t segments_written() const { return segments_written_; }
  /// Bytes written across all files so far.
  uint64_t bytes_written() const { return bytes_total_; }
  /// All files produced, oldest first (`path`, then rotations).
  const std::vector<std::string>& files() const { return files_; }

 private:
  explicit TraceWriter(const TraceWriterOptions& options);

  Status OpenFile(const std::string& path);
  Status WriteSegment(uint32_t type, const std::vector<uint8_t>& payload,
                      uint32_t count);

  TraceWriterOptions options_;
  std::ofstream out_;
  std::vector<TraceRecord> pending_;
  std::vector<std::string> files_;
  uint64_t bytes_current_file_ = 0;
  uint64_t bytes_total_ = 0;
  uint64_t records_written_ = 0;
  uint64_t segments_written_ = 0;
  int rotations_ = 0;
  bool closed_ = false;
};

/// Everything parsed out of one trace file. Reads are truncation- and
/// corruption-tolerant: a segment whose CRC fails is skipped (counted in
/// segments_corrupt), a segment cut off by EOF ends the parse — records
/// from intact segments survive either way.
struct TraceReadResult {
  TraceHeader header;
  std::vector<TraceRecord> records;
  bool has_summary = false;
  TraceSummary summary;
  uint64_t segments_ok = 0;
  uint64_t segments_corrupt = 0;
  uint64_t bytes_read = 0;
};

/// Parses one trace file. Fails only when the file cannot be read or its
/// fixed header is missing/foreign; damage past the header degrades to
/// partial data instead of an error.
Result<TraceReadResult> ReadTraceFile(const std::string& path);

/// Reads `path` plus any rotation continuations (`path.1`, `path.2`, ...)
/// into one result, concatenating records in file order. The summary (if
/// any) is taken from the newest file that has one.
Result<TraceReadResult> ReadTraceChain(const std::string& path);

}  // namespace qsched::replay

#endif  // QSCHED_REPLAY_TRACE_FORMAT_H_
