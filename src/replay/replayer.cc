#include "replay/replayer.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/client.h"
#include "replay/template_codec.h"

namespace qsched::replay {

namespace {

using SteadyClock = std::chrono::steady_clock;

}  // namespace

Replayer::Replayer(const TraceReadResult& trace,
                   const ReplayOptions& options, obs::Telemetry* telemetry)
    : trace_(trace), options_(options), telemetry_(telemetry) {
  if (options_.connections < 1) options_.connections = 1;
  if (options_.speed <= 0.0) options_.speed = 1.0;
  if (telemetry_ != nullptr) {
    rtt_hist_ =
        telemetry_->registry.GetHistogram("qsched_replay_rtt_seconds");
  }
}

Result<ReplayReport> Replayer::Run() {
  std::vector<std::thread> threads;
  std::vector<Status> statuses(
      static_cast<size_t>(options_.connections), Status::OK());
  threads.reserve(static_cast<size_t>(options_.connections));
  for (int i = 0; i < options_.connections; ++i) {
    threads.emplace_back(
        [this, i, &statuses] { statuses[static_cast<size_t>(i)] =
                                   RunConnection(i); });
  }
  for (std::thread& t : threads) t.join();
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }

  ReplayReport report;
  report.offered = offered_.load();
  report.accepted = accepted_.load();
  report.rejected_queue_full = rejected_queue_full_.load();
  report.rejected_shutting_down = rejected_shutting_down_.load();
  report.rejected_backend_unavailable =
      rejected_backend_unavailable_.load();
  report.completed = completed_.load();
  report.lost = lost_.load();
  report.unmatched = unmatched_.load();
  {
    std::lock_guard<std::mutex> lock(phase_mu_);
    report.feed_seconds = feed_seconds_;
    report.drain_seconds = drain_seconds_;
    report.mean_lag_seconds =
        report.offered > 0
            ? lag_sum_seconds_ / static_cast<double>(report.offered)
            : 0.0;
  }
  return report;
}

Status Replayer::RunConnection(int index) {
  // The trace is replayed in arrival order; each connection owns the
  // records whose rank % connections == index, so the partition is
  // deterministic regardless of capture-side thread interleaving.
  std::vector<const TraceRecord*> ordered;
  ordered.reserve(trace_.records.size());
  for (const TraceRecord& record : trace_.records) {
    ordered.push_back(&record);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceRecord* a, const TraceRecord* b) {
                     return a->arrival_ns < b->arrival_ns;
                   });
  const uint64_t base_ns = ordered.empty() ? 0 : ordered[0]->arrival_ns;

  Result<std::unique_ptr<net::Client>> connected =
      net::Client::Connect(options_.host, options_.port, 5.0);
  if (!connected.ok()) return connected.status();
  std::unique_ptr<net::Client> client = std::move(connected).ValueOrDie();

  TemplateCodec codec(options_.tpch, options_.tpcc,
                      options_.seed + static_cast<uint64_t>(index));

  // request_id -> submit wall time, for RTT + conservation accounting.
  std::unordered_map<uint64_t, SteadyClock::time_point> pending;
  double lag_sum = 0.0;

  auto absorb = [&](const net::ClientCompletion& completion) {
    auto it = pending.find(completion.request_id);
    if (it == pending.end()) {
      unmatched_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const double rtt =
        std::chrono::duration<double>(SteadyClock::now() - it->second)
            .count();
    pending.erase(it);
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (rtt_hist_ != nullptr) rtt_hist_->Record(rtt);
  };
  auto process_verdict = [&](const net::Client::SubmitResult& sr) {
    if (sr.accepted) {
      accepted_.fetch_add(1, std::memory_order_relaxed);
    } else {
      pending.erase(sr.request_id);
      if (sr.reject_reason == rt::RejectReason::kShuttingDown) {
        rejected_shutting_down_.fetch_add(1, std::memory_order_relaxed);
      } else if (sr.reject_reason ==
                 rt::RejectReason::kBackendUnavailable) {
        rejected_backend_unavailable_.fetch_add(1,
                                                std::memory_order_relaxed);
      } else {
        rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  auto drain_verdicts = [&]() {
    net::Client::SubmitResult sr;
    while (client->PopVerdict(&sr)) process_verdict(sr);
  };

  const size_t depth_limit = static_cast<size_t>(
      options_.max_outstanding > 0 ? options_.max_outstanding : 256);
  const SteadyClock::time_point start = SteadyClock::now();

  size_t since_flush = 0;
  for (size_t rank = static_cast<size_t>(index); rank < ordered.size();
       rank += static_cast<size_t>(options_.connections)) {
    const TraceRecord& record = *ordered[rank];
    // Original gap, compressed by the speed multiplier.
    const double target_offset =
        static_cast<double>(record.arrival_ns - base_ns) / 1e9 /
        options_.speed;
    const SteadyClock::time_point due =
        start + std::chrono::duration_cast<SteadyClock::duration>(
                    std::chrono::duration<double>(target_offset));

    // Wait out the gap, absorbing whatever the server sends meanwhile.
    while (true) {
      const double wait =
          std::chrono::duration<double>(due - SteadyClock::now()).count();
      if (wait <= 0.0) break;
      if (since_flush > 0) {
        QSCHED_RETURN_NOT_OK(client->Flush());
        since_flush = 0;
      }
      Result<net::Client::PolledCompletion> polled =
          client->PollCompletion(wait);
      if (!polled.ok()) return polled.status();
      drain_verdicts();
      if (polled.ValueOrDie().found) absorb(polled.ValueOrDie().completion);
    }

    // Backpressure: bound the pipeline depth so an overloaded server
    // slows the replay down instead of queueing it client-side.
    while (client->outstanding() + client->verdicts_pending() >=
           depth_limit) {
      QSCHED_RETURN_NOT_OK(client->Flush());
      since_flush = 0;
      Result<net::Client::PolledCompletion> polled =
          client->PollCompletion(0.050);
      if (!polled.ok()) return polled.status();
      drain_verdicts();
      if (polled.ValueOrDie().found) absorb(polled.ValueOrDie().completion);
    }

    workload::Query query = codec.Materialize(record);
    query.client_id = index;
    lag_sum += std::chrono::duration<double>(SteadyClock::now() - due)
                   .count();
    offered_.fetch_add(1, std::memory_order_relaxed);
    Result<uint64_t> rid = client->SubmitNoWait(query);
    if (!rid.ok()) return rid.status();
    pending.emplace(rid.ValueOrDie(), SteadyClock::now());
    ++since_flush;
    // A burst of due records rides one send(); anything that has been
    // sitting unsent for a poll cycle goes out on the next wait.
    if (since_flush >= 32) {
      QSCHED_RETURN_NOT_OK(client->Flush());
      since_flush = 0;
    }

    // Absorb whatever already came back, without blocking.
    while (true) {
      Result<net::Client::PolledCompletion> polled =
          client->PollCompletion(0.0);
      if (!polled.ok()) return polled.status();
      drain_verdicts();
      if (!polled.ValueOrDie().found) break;
      absorb(polled.ValueOrDie().completion);
    }
  }

  // Resolve every still-owed verdict before draining, so rejected
  // queries are out of `pending` and accepted ones are counted.
  QSCHED_RETURN_NOT_OK(client->Flush());
  while (client->verdicts_pending() > 0) {
    Result<net::Client::SubmitResult> verdict = client->NextVerdict();
    if (!verdict.ok()) return verdict.status();
    process_verdict(verdict.ValueOrDie());
  }
  const SteadyClock::time_point feed_end = SteadyClock::now();

  Status drained = client->Drain();
  if (!drained.ok()) return drained;
  while (true) {
    Result<net::Client::PolledCompletion> polled =
        client->PollCompletion(0.0);
    if (!polled.ok()) return polled.status();
    if (!polled.ValueOrDie().found) break;
    absorb(polled.ValueOrDie().completion);
  }
  drain_verdicts();
  lost_.fetch_add(pending.size(), std::memory_order_relaxed);

  const double feed_s =
      std::chrono::duration<double>(feed_end - start).count();
  const double drain_s =
      std::chrono::duration<double>(SteadyClock::now() - feed_end).count();
  {
    std::lock_guard<std::mutex> lock(phase_mu_);
    if (feed_s > feed_seconds_) feed_seconds_ = feed_s;
    if (drain_s > drain_seconds_) drain_seconds_ = drain_s;
    lag_sum_seconds_ += lag_sum;
  }
  return Status::OK();
}

}  // namespace qsched::replay
