#include "replay/trace_format.h"

#include <array>
#include <cstring>

#include "common/strings.h"

namespace qsched::replay {

namespace {

// File magic "QSRT" and segment magic "QSEG", little-endian u32.
constexpr uint32_t kFileMagic = 0x54525351u;
constexpr uint32_t kSegmentMagic = 0x47455351u;
constexpr uint32_t kSegmentRecords = 0;
constexpr uint32_t kSegmentSummary = 1;
// magic + version + record_bytes + reserved + time_scale + seed.
constexpr size_t kFileHeaderBytes = 4 + 4 + 4 + 4 + 8 + 8;
// magic + type + count + payload_bytes + crc.
constexpr size_t kSegmentHeaderBytes = 4 + 4 + 4 + 4 + 4;
// control_interval + system_cost_limit + total_utility + allocator + n.
constexpr size_t kSummaryFixedBytes = 8 + 8 + 8 + 4 + 4;
// class_id + attainment + measured + cost_limit.
constexpr size_t kSummaryClassBytes = 4 + 8 + 8 + 8;

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutF64(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

/// Bounds-checked little-endian cursor over a parsed buffer.
struct Cursor {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;

  size_t remaining() const { return size - pos; }

  bool ReadU16(uint16_t* v) {
    if (remaining() < 2) return false;
    *v = static_cast<uint16_t>(data[pos]) |
         static_cast<uint16_t>(data[pos + 1]) << 8;
    pos += 2;
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(data[pos + i]) << (8 * i);
    }
    pos += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (remaining() < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(data[pos + i]) << (8 * i);
    }
    pos += 8;
    return true;
  }
  bool ReadF64(double* v) {
    uint64_t bits;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
};

void EncodeRecord(std::vector<uint8_t>* out, const TraceRecord& record) {
  PutU64(out, record.arrival_ns);
  PutU64(out, record.trace_id);
  PutF64(out, record.cost_timerons);
  PutU16(out, record.class_id);
  PutU16(out, record.template_id);
}

std::vector<uint8_t> EncodeSummary(const TraceSummary& summary) {
  std::vector<uint8_t> payload;
  payload.reserve(kSummaryFixedBytes +
                  summary.classes.size() * kSummaryClassBytes);
  PutF64(&payload, summary.control_interval_seconds);
  PutF64(&payload, summary.system_cost_limit);
  PutF64(&payload, summary.total_utility);
  PutU32(&payload, summary.allocator);
  PutU32(&payload, static_cast<uint32_t>(summary.classes.size()));
  for (const TraceSummaryClass& cls : summary.classes) {
    PutU32(&payload, cls.class_id);
    PutF64(&payload, cls.attainment);
    PutF64(&payload, cls.measured);
    PutF64(&payload, cls.cost_limit);
  }
  return payload;
}

bool DecodeSummary(const uint8_t* data, size_t size, TraceSummary* out) {
  Cursor cur{data, size};
  uint32_t n = 0;
  if (!cur.ReadF64(&out->control_interval_seconds) ||
      !cur.ReadF64(&out->system_cost_limit) ||
      !cur.ReadF64(&out->total_utility) || !cur.ReadU32(&out->allocator) ||
      !cur.ReadU32(&n)) {
    return false;
  }
  out->classes.clear();
  out->classes.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    TraceSummaryClass cls;
    if (!cur.ReadU32(&cls.class_id) || !cur.ReadF64(&cls.attainment) ||
        !cur.ReadF64(&cls.measured) || !cur.ReadF64(&cls.cost_limit)) {
      return false;
    }
    out->classes.push_back(cls);
  }
  return true;
}

const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t len, uint32_t seed) {
  const std::array<uint32_t, 256>& table = Crc32Table();
  uint32_t crc = ~seed;
  for (size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ data[i]) & 0xFFu];
  }
  return ~crc;
}

TraceWriter::TraceWriter(const TraceWriterOptions& options)
    : options_(options) {
  if (options_.records_per_segment == 0) options_.records_per_segment = 1;
}

TraceWriter::~TraceWriter() { Close(); }

Result<std::unique_ptr<TraceWriter>> TraceWriter::Open(
    const TraceWriterOptions& options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("trace path is empty");
  }
  std::unique_ptr<TraceWriter> writer(new TraceWriter(options));
  Status opened = writer->OpenFile(options.path);
  if (!opened.ok()) return opened;
  return writer;
}

Status TraceWriter::OpenFile(const std::string& path) {
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) {
    return Status::Internal("cannot open trace file " + path);
  }
  std::vector<uint8_t> header;
  header.reserve(kFileHeaderBytes);
  PutU32(&header, kFileMagic);
  PutU32(&header, options_.header.version);
  PutU32(&header, static_cast<uint32_t>(TraceRecord::kWireBytes));
  PutU32(&header, 0);  // reserved
  PutF64(&header, options_.header.time_scale);
  PutU64(&header, options_.header.seed);
  out_.write(reinterpret_cast<const char*>(header.data()),
             static_cast<std::streamsize>(header.size()));
  bytes_current_file_ = header.size();
  bytes_total_ += header.size();
  files_.push_back(path);
  return out_ ? Status::OK()
              : Status::Internal("cannot write trace header to " + path);
}

Status TraceWriter::Append(const TraceRecord& record) {
  if (closed_) return Status::FailedPrecondition("trace writer closed");
  pending_.push_back(record);
  if (pending_.size() >= options_.records_per_segment) return Flush();
  return Status::OK();
}

Status TraceWriter::WriteSegment(uint32_t type,
                                 const std::vector<uint8_t>& payload,
                                 uint32_t count) {
  std::vector<uint8_t> header;
  header.reserve(kSegmentHeaderBytes);
  PutU32(&header, kSegmentMagic);
  PutU32(&header, type);
  PutU32(&header, count);
  PutU32(&header, static_cast<uint32_t>(payload.size()));
  PutU32(&header, Crc32(payload.data(), payload.size()));
  out_.write(reinterpret_cast<const char*>(header.data()),
             static_cast<std::streamsize>(header.size()));
  out_.write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(payload.size()));
  out_.flush();
  if (!out_) return Status::Internal("trace segment write failed");
  bytes_current_file_ += header.size() + payload.size();
  bytes_total_ += header.size() + payload.size();
  ++segments_written_;
  // Rotation happens between segments so every file is independently
  // parseable: header + whole segments.
  if (options_.rotate_bytes > 0 &&
      bytes_current_file_ >= options_.rotate_bytes) {
    out_.close();
    ++rotations_;
    return OpenFile(options_.path + "." + std::to_string(rotations_));
  }
  return Status::OK();
}

Status TraceWriter::Flush() {
  if (closed_) return Status::FailedPrecondition("trace writer closed");
  if (pending_.empty()) return Status::OK();
  std::vector<uint8_t> payload;
  payload.reserve(pending_.size() * TraceRecord::kWireBytes);
  for (const TraceRecord& record : pending_) {
    EncodeRecord(&payload, record);
  }
  const uint32_t count = static_cast<uint32_t>(pending_.size());
  records_written_ += pending_.size();
  pending_.clear();
  return WriteSegment(kSegmentRecords, payload, count);
}

Status TraceWriter::WriteSummary(const TraceSummary& summary) {
  Status flushed = Flush();
  if (!flushed.ok()) return flushed;
  return WriteSegment(kSegmentSummary, EncodeSummary(summary),
                      static_cast<uint32_t>(summary.classes.size()));
}

Status TraceWriter::Close() {
  if (closed_) return Status::OK();
  Status flushed = Flush();
  closed_ = true;
  out_.close();
  return flushed;
}

Result<TraceReadResult> ReadTraceFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open trace file " + path);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  in.close();

  TraceReadResult result;
  result.bytes_read = bytes.size();
  Cursor cur{bytes.data(), bytes.size()};
  uint32_t magic = 0, version = 0, record_bytes = 0, reserved = 0;
  if (!cur.ReadU32(&magic) || magic != kFileMagic) {
    return Status::InvalidArgument(path + " is not a qsched trace");
  }
  if (!cur.ReadU32(&version) || !cur.ReadU32(&record_bytes) ||
      !cur.ReadU32(&reserved) || !cur.ReadF64(&result.header.time_scale) ||
      !cur.ReadU64(&result.header.seed)) {
    return Status::InvalidArgument(path + ": truncated trace header");
  }
  result.header.version = version;
  if (version != 1 || record_bytes != TraceRecord::kWireBytes) {
    return Status::InvalidArgument(
        StrPrintf("%s: unsupported trace version %u / record size %u",
                  path.c_str(), version, record_bytes));
  }

  while (cur.remaining() >= kSegmentHeaderBytes) {
    uint32_t seg_magic = 0, type = 0, count = 0, payload_bytes = 0,
             crc = 0;
    cur.ReadU32(&seg_magic);
    cur.ReadU32(&type);
    cur.ReadU32(&count);
    cur.ReadU32(&payload_bytes);
    cur.ReadU32(&crc);
    if (seg_magic != kSegmentMagic) {
      // The stream lost sync (overwritten or garbage tail): nothing after
      // this point can be trusted to be segment-aligned.
      ++result.segments_corrupt;
      break;
    }
    if (cur.remaining() < payload_bytes) {
      // Truncated mid-segment (crash during write): keep what we have.
      ++result.segments_corrupt;
      break;
    }
    const uint8_t* payload = cur.data + cur.pos;
    cur.pos += payload_bytes;
    if (Crc32(payload, payload_bytes) != crc) {
      ++result.segments_corrupt;
      continue;  // skip the damaged segment, later ones are still aligned
    }
    if (type == kSegmentRecords) {
      if (payload_bytes != count * TraceRecord::kWireBytes) {
        ++result.segments_corrupt;
        continue;
      }
      Cursor rec_cur{payload, payload_bytes};
      for (uint32_t i = 0; i < count; ++i) {
        TraceRecord record;
        rec_cur.ReadU64(&record.arrival_ns);
        rec_cur.ReadU64(&record.trace_id);
        rec_cur.ReadF64(&record.cost_timerons);
        rec_cur.ReadU16(&record.class_id);
        rec_cur.ReadU16(&record.template_id);
        result.records.push_back(record);
      }
      ++result.segments_ok;
    } else if (type == kSegmentSummary) {
      TraceSummary summary;
      if (DecodeSummary(payload, payload_bytes, &summary)) {
        result.summary = std::move(summary);
        result.has_summary = true;
        ++result.segments_ok;
      } else {
        ++result.segments_corrupt;
      }
    } else {
      // Unknown segment type from a newer writer: skip, stay aligned.
      ++result.segments_ok;
    }
  }
  return result;
}

Result<TraceReadResult> ReadTraceChain(const std::string& path) {
  Result<TraceReadResult> first = ReadTraceFile(path);
  if (!first.ok()) return first;
  TraceReadResult merged = std::move(first).ValueOrDie();
  for (int i = 1;; ++i) {
    const std::string next = path + "." + std::to_string(i);
    std::ifstream probe(next, std::ios::binary);
    if (!probe) break;
    probe.close();
    Result<TraceReadResult> part = ReadTraceFile(next);
    if (!part.ok()) return part;
    TraceReadResult piece = std::move(part).ValueOrDie();
    merged.records.insert(merged.records.end(), piece.records.begin(),
                          piece.records.end());
    merged.segments_ok += piece.segments_ok;
    merged.segments_corrupt += piece.segments_corrupt;
    merged.bytes_read += piece.bytes_read;
    if (piece.has_summary) {
      merged.summary = std::move(piece.summary);
      merged.has_summary = true;
    }
  }
  return merged;
}

}  // namespace qsched::replay
