#include "replay/shadow_planner.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <utility>

#include "common/rng.h"
#include "common/strings.h"
#include "harness/parallel.h"
#include "replay/template_codec.h"
#include "scheduler/utility.h"
#include "sim/simulator.h"
#include "workload/client.h"

namespace qsched::replay {

namespace {

/// Report names must stay key=value parseable in WHATIF lines, so the
/// '=' and ',' of candidate specs become ':' and ';'.
std::string SanitizeName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '=') c = ':';
    if (c == ',') c = ';';
    if (c == ' ') c = '_';
  }
  return out.empty() ? std::string("unnamed") : out;
}

struct ClassAccumulator {
  double metric_sum = 0.0;
  uint64_t completed = 0;
  /// interval bucket -> (metric sum, count) for attainment.
  std::map<int64_t, std::pair<double, uint64_t>> buckets;
};

}  // namespace

ShadowPlanner::ShadowPlanner(const TraceReadResult& trace,
                             const ShadowPlannerOptions& options)
    : trace_(trace),
      options_(options),
      classes_(sched::MakePaperClasses()),
      sorted_(trace.records) {
  std::stable_sort(sorted_.begin(), sorted_.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.arrival_ns < b.arrival_ns;
                   });
}

ShadowOutcome ShadowPlanner::EvaluateOne(
    const PlanCandidate& candidate) const {
  ShadowOutcome out;
  out.name = SanitizeName(candidate.name);

  // A fully private world per candidate: same seed everywhere, so two
  // candidates differ only by the plan they run under.
  sim::Simulator sim;
  Rng master(options_.seed);
  engine::ExecutionEngine engine(&sim, options_.engine, master.Fork(1));
  sched::QuerySchedulerConfig config = candidate.config;
  config.telemetry = nullptr;
  sched::QueryScheduler scheduler(&sim, &engine, &classes_, config);
  if (candidate.frozen_plan) {
    sched::SchedulingPlan plan;
    plan.cost_limits = candidate.frozen_limits;
    scheduler.dispatcher().SetPlan(plan);
  }

  // Materialize every query up front, in arrival order: the codec's
  // generators are stateful, and a fixed call sequence is what makes
  // materialization deterministic.
  TemplateCodec codec(options_.tpch, options_.tpcc, options_.seed + 1);
  const uint64_t base_ns = sorted_.empty() ? 0 : sorted_.front().arrival_ns;
  const double time_scale =
      trace_.header.time_scale > 0.0 ? trace_.header.time_scale : 1.0;
  std::vector<workload::QueryRecord> completions;
  completions.reserve(sorted_.size());
  double last_arrival = 0.0;
  for (const TraceRecord& record : sorted_) {
    workload::Query query = codec.Materialize(record);
    query.id = record.trace_id;
    // The captured wall offset, mapped onto the model clock the live
    // scheduler planned against.
    const double at = static_cast<double>(record.arrival_ns - base_ns) /
                      1e9 * time_scale;
    if (at > last_arrival) last_arrival = at;
    sim.ScheduleAt(at, [&scheduler, &completions,
                        query = std::move(query)]() mutable {
      scheduler.Submit(std::move(query),
                       [&completions](const workload::QueryRecord& r) {
                         completions.push_back(r);
                       });
    });
  }
  if (!candidate.frozen_plan) {
    // Keep planning a couple of intervals past the last arrival so the
    // tail of the workload still gets replanned.
    scheduler.Start(last_arrival + 2.0 * config.control_interval_seconds);
  }
  sim.RunToCompletion();
  out.planning_cycles = scheduler.planning_cycles();

  const double interval = options_.report_interval_seconds > 0.0
                              ? options_.report_interval_seconds
                              : config.control_interval_seconds;
  std::map<int, ClassAccumulator> acc;
  for (const workload::QueryRecord& record : completions) {
    if (record.cancelled) {
      ++out.cancelled;
      continue;
    }
    ++out.completed;
    const sched::ServiceClassSpec* spec = classes_.Find(record.class_id);
    if (spec == nullptr) continue;
    const double value = spec->goal_kind == sched::GoalKind::kVelocityFloor
                             ? record.Velocity()
                             : record.ResponseSeconds();
    ClassAccumulator& a = acc[record.class_id];
    a.metric_sum += value;
    ++a.completed;
    const int64_t bucket =
        static_cast<int64_t>(std::floor(record.end_time / interval));
    auto& slot = a.buckets[bucket];
    slot.first += value;
    ++slot.second;
  }

  const sched::UtilityFunction utility;
  for (const sched::ServiceClassSpec& spec : classes_.classes()) {
    ShadowClassOutcome cls;
    cls.class_id = spec.class_id;
    auto it = acc.find(spec.class_id);
    if (it != acc.end() && it->second.completed > 0) {
      const ClassAccumulator& a = it->second;
      cls.completed = a.completed;
      cls.measured = a.metric_sum / static_cast<double>(a.completed);
      cls.goal_ratio = spec.GoalRatio(cls.measured);
      cls.utility = utility.Evaluate(spec, cls.measured);
      uint64_t met = 0;
      for (const auto& [bucket, sums] : a.buckets) {
        const double bucket_measured =
            sums.first / static_cast<double>(sums.second);
        if (spec.GoalRatio(bucket_measured) >= 1.0) ++met;
      }
      cls.attainment = a.buckets.empty()
                           ? 0.0
                           : static_cast<double>(met) /
                                 static_cast<double>(a.buckets.size());
    } else {
      // No completions: score the class at goal ratio 0 — a silent class
      // must read as a violated one, not a free one.
      cls.utility = utility.FromGoalRatio(spec, 0.0);
    }
    out.total_utility += cls.utility;
    out.classes.push_back(cls);
  }
  return out;
}

std::vector<ShadowOutcome> ShadowPlanner::Evaluate(
    const std::vector<PlanCandidate>& candidates, int jobs) const {
  std::vector<ShadowOutcome> results(candidates.size());
  harness::ParallelFor(
      static_cast<int>(candidates.size()), jobs, [&](int i) {
        results[static_cast<size_t>(i)] =
            EvaluateOne(candidates[static_cast<size_t>(i)]);
      });
  return results;
}

ShadowOutcome ShadowPlanner::LiveOutcome() const {
  ShadowOutcome out;
  out.name = "live";
  const sched::UtilityFunction utility;
  for (const TraceSummaryClass& sc : trace_.summary.classes) {
    ShadowClassOutcome cls;
    cls.class_id = static_cast<int>(sc.class_id);
    cls.measured = sc.measured;
    cls.attainment = sc.attainment;
    const sched::ServiceClassSpec* spec = classes_.Find(cls.class_id);
    if (spec != nullptr && sc.measured > 0.0) {
      cls.goal_ratio = spec->GoalRatio(sc.measured);
      cls.utility = utility.Evaluate(*spec, sc.measured);
    } else if (spec != nullptr) {
      cls.utility = utility.FromGoalRatio(*spec, 0.0);
    }
    out.total_utility += cls.utility;
    out.classes.push_back(cls);
  }
  return out;
}

std::string ShadowPlanner::FormatReport(
    const ShadowOutcome* live, const std::vector<ShadowOutcome>& shadow) {
  std::string report;
  auto append_outcome = [&report](const ShadowOutcome& o, bool simulated) {
    report += StrPrintf("plan %-28s utility %10.4f", o.name.c_str(),
                        o.total_utility);
    if (simulated) {
      report += StrPrintf("  completed %6llu  cycles %4llu",
                          static_cast<unsigned long long>(o.completed),
                          static_cast<unsigned long long>(o.planning_cycles));
    } else {
      report += "  (measured live run)";
    }
    report += "\n";
    for (const ShadowClassOutcome& c : o.classes) {
      report += StrPrintf(
          "  class %d: measured=%.6f goal_ratio=%.4f attainment=%.4f "
          "utility=%.4f\n",
          c.class_id, c.measured, c.goal_ratio, c.attainment, c.utility);
    }
  };
  if (live != nullptr) append_outcome(*live, /*simulated=*/false);
  for (const ShadowOutcome& o : shadow) append_outcome(o, /*simulated=*/true);

  // Machine-parseable lines, one per outcome, live first.
  auto append_line = [&report](const ShadowOutcome& o) {
    report += StrPrintf("WHATIF plan=%s utility=%.6f completed=%llu "
                        "cycles=%llu",
                        o.name.c_str(), o.total_utility,
                        static_cast<unsigned long long>(o.completed),
                        static_cast<unsigned long long>(o.planning_cycles));
    for (const ShadowClassOutcome& c : o.classes) {
      report += StrPrintf(
          " c%d_measured=%.6f c%d_ratio=%.4f c%d_att=%.4f", c.class_id,
          c.measured, c.class_id, c.goal_ratio, c.class_id, c.attainment);
    }
    report += "\n";
  };
  if (live != nullptr) append_line(*live);
  for (const ShadowOutcome& o : shadow) append_line(o);
  return report;
}

Result<std::vector<PlanCandidate>> ParsePlanCandidates(
    const std::string& spec, const sched::QuerySchedulerConfig& base,
    const sched::ServiceClassSet& classes) {
  std::vector<PlanCandidate> candidates;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    std::string one = spec.substr(start, end - start);
    start = end + 1;
    if (one.empty()) continue;

    PlanCandidate candidate;
    candidate.name = one;
    candidate.config = base;
    size_t tstart = 0;
    while (tstart <= one.size()) {
      size_t tend = one.find('+', tstart);
      if (tend == std::string::npos) tend = one.size();
      const std::string token = one.substr(tstart, tend - tstart);
      tstart = tend + 1;
      if (token.empty()) continue;

      const size_t eq = token.find('=');
      const std::string key = token.substr(0, eq);
      double value = 0.0;
      if (eq != std::string::npos) {
        const std::string value_text = token.substr(eq + 1);
        char* parse_end = nullptr;
        value = std::strtod(value_text.c_str(), &parse_end);
        if (parse_end == value_text.c_str() || *parse_end != '\0') {
          return Status::InvalidArgument(
              StrPrintf("bad plan token value: '%s'", token.c_str()));
        }
      }

      if (key == "base" || key == "live") {
        // The capture-side config unchanged.
      } else if (key == "greedy") {
        candidate.config.allocator =
            sched::QuerySchedulerConfig::Allocator::kGreedyAuction;
      } else if (key == "utility") {
        candidate.config.allocator =
            sched::QuerySchedulerConfig::Allocator::kUtilitySearch;
      } else if (eq == std::string::npos) {
        return Status::InvalidArgument(
            StrPrintf("unknown plan token: '%s'", token.c_str()));
      } else if (key == "interval") {
        if (value <= 0.0) {
          return Status::InvalidArgument("interval must be > 0");
        }
        candidate.config.control_interval_seconds = value;
      } else if (key == "step") {
        if (value <= 0.0 || value > 1.0) {
          return Status::InvalidArgument("step must be in (0, 1]");
        }
        candidate.config.plan_step_fraction = value;
      } else if (key == "limit") {
        if (value <= 0.0) {
          return Status::InvalidArgument("limit must be > 0");
        }
        candidate.config.system_cost_limit = value;
      } else if (key == "olap") {
        if (value <= 0.0) {
          return Status::InvalidArgument("olap must be > 0");
        }
        candidate.frozen_plan = true;
        const std::vector<int> olap = classes.OlapClassIds();
        const std::vector<int> oltp = classes.OltpClassIds();
        const double per_olap =
            olap.empty() ? 0.0 : value / static_cast<double>(olap.size());
        const double remainder =
            candidate.config.system_cost_limit > value
                ? candidate.config.system_cost_limit - value
                : 0.0;
        const double per_oltp =
            oltp.empty() ? 0.0
                         : remainder / static_cast<double>(oltp.size());
        for (int id : olap) candidate.frozen_limits[id] = per_olap;
        for (int id : oltp) candidate.frozen_limits[id] = per_oltp;
      } else {
        return Status::InvalidArgument(
            StrPrintf("unknown plan token: '%s'", token.c_str()));
      }
    }
    candidates.push_back(std::move(candidate));
  }
  if (candidates.empty()) {
    return Status::InvalidArgument("no plan candidates given");
  }
  return candidates;
}

}  // namespace qsched::replay
