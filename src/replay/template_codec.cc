#include "replay/template_codec.h"

namespace qsched::replay {

TemplateCodec::TemplateCodec(const workload::TpchWorkloadParams& tpch,
                             const workload::TpccWorkloadParams& tpcc,
                             uint64_t seed)
    : olap_(tpch, seed), oltp_(tpcc, seed + 1) {
  for (size_t i = 0; i < olap_.num_templates(); ++i) {
    by_name_.emplace(olap_.template_name(i), static_cast<uint16_t>(i));
  }
  for (size_t i = 0; i < oltp_.num_transaction_types(); ++i) {
    by_name_.emplace(oltp_.transaction_name(i),
                     static_cast<uint16_t>(i) | kOltpTemplateBit);
  }
}

uint16_t TemplateCodec::Encode(const workload::Query& query) const {
  auto it = by_name_.find(query.template_name);
  if (it != by_name_.end()) return it->second;
  return query.type == workload::WorkloadType::kOltp
             ? static_cast<uint16_t>(kUnknownTemplate | kOltpTemplateBit)
             : kUnknownTemplate;
}

workload::Query TemplateCodec::Materialize(const TraceRecord& record) {
  const bool oltp = (record.template_id & kOltpTemplateBit) != 0;
  size_t index = record.template_id & ~kOltpTemplateBit;
  workload::Query query;
  if (oltp) {
    if (index >= oltp_.num_transaction_types()) index = 0;
    query = oltp_.MakeTransaction(index);
  } else {
    if (index >= olap_.num_templates()) index = 0;
    query = olap_.MakeFromTemplate(index);
  }
  query.class_id = record.class_id;
  query.cost_timerons = record.cost_timerons;
  return query;
}

std::string TemplateCodec::TemplateName(uint16_t template_id) const {
  const bool oltp = (template_id & kOltpTemplateBit) != 0;
  const size_t index = template_id & ~kOltpTemplateBit;
  if (oltp) {
    if (index < oltp_.num_transaction_types()) {
      return oltp_.transaction_name(index);
    }
  } else if (index < olap_.num_templates()) {
    return olap_.template_name(index);
  }
  return "unknown";
}

}  // namespace qsched::replay
