#ifndef QSCHED_REPLAY_REPLAYER_H_
#define QSCHED_REPLAY_REPLAYER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"
#include "obs/telemetry.h"
#include "replay/trace_format.h"
#include "workload/tpcc_workload.h"
#include "workload/tpch_workload.h"

namespace qsched::replay {

struct ReplayOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Playback speed multiplier over the recorded inter-arrival gaps:
  /// 2.0 replays in half the original wall time.
  double speed = 1.0;
  /// Connections the trace is partitioned over (record i goes to
  /// connection i % connections), each with its own thread and pipelined
  /// net::Client.
  int connections = 1;
  /// Pipeline depth bound per connection; submission backpressures above
  /// it rather than racing ahead of the recorded schedule unboundedly.
  int max_outstanding = 256;
  /// Seed for regenerating the queries' resource demands from their
  /// captured template ids.
  uint64_t seed = 42;
  workload::TpchWorkloadParams tpch;
  workload::TpccWorkloadParams tpcc;
};

/// What one replay run did, mirroring the NETLOAD accounting so the same
/// conservation identity applies: offered == accepted + rejected, every
/// accepted query completed exactly once.
struct ReplayReport {
  uint64_t offered = 0;
  uint64_t accepted = 0;
  uint64_t rejected_queue_full = 0;
  uint64_t rejected_shutting_down = 0;
  uint64_t rejected_backend_unavailable = 0;
  uint64_t completed = 0;
  uint64_t lost = 0;
  uint64_t unmatched = 0;
  /// Wall seconds of the paced feed phase and the trailing drain.
  double feed_seconds = 0.0;
  double drain_seconds = 0.0;
  /// Mean lag between a record's scheduled send time and its actual
  /// send (positive = behind schedule), a fidelity measure.
  double mean_lag_seconds = 0.0;

  uint64_t rejected() const {
    return rejected_queue_full + rejected_shutting_down +
           rejected_backend_unavailable;
  }
  bool conserved() const {
    return offered == accepted + rejected() && completed == accepted &&
           lost == 0 && unmatched == 0;
  }
};

/// Plays a captured trace against a live endpoint through pipelined
/// net::Clients, preserving the recorded inter-arrival gaps scaled by
/// `speed`, then drains and reconciles completions client-side. The
/// round-trip of every completion lands in `qsched_replay_rtt_seconds`;
/// offered/completed counters are exported as `qsched_replay_*_total`.
class Replayer {
 public:
  Replayer(const TraceReadResult& trace, const ReplayOptions& options,
           obs::Telemetry* telemetry = nullptr);

  Replayer(const Replayer&) = delete;
  Replayer& operator=(const Replayer&) = delete;

  /// Runs the replay, blocking. Returns the first connection-level error
  /// or the report; per-query rejections are not errors.
  Result<ReplayReport> Run();

 private:
  Status RunConnection(int index);

  const TraceReadResult& trace_;
  ReplayOptions options_;
  obs::Telemetry* telemetry_;

  std::atomic<uint64_t> offered_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_queue_full_{0};
  std::atomic<uint64_t> rejected_shutting_down_{0};
  std::atomic<uint64_t> rejected_backend_unavailable_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> unmatched_{0};
  std::atomic<uint64_t> lost_{0};

  std::mutex phase_mu_;
  double feed_seconds_ = 0.0;
  double drain_seconds_ = 0.0;
  double lag_sum_seconds_ = 0.0;

  obs::Histogram* rtt_hist_ = nullptr;
};

}  // namespace qsched::replay

#endif  // QSCHED_REPLAY_REPLAYER_H_
