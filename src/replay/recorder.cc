#include "replay/recorder.h"

#include <unordered_map>
#include <utility>

namespace qsched::replay {

namespace {

std::atomic<uint64_t> g_next_recorder_id{1};

/// Thread-local cache: recorder id -> that thread's buffer. Keyed by the
/// process-unique recorder id (not the pointer), so entries left behind
/// by a destroyed recorder can never alias a new recorder that happens
/// to reuse the same address.
thread_local std::unordered_map<uint64_t, void*> t_buffer_cache;

}  // namespace

TraceRecorder::TraceRecorder(const RecorderOptions& options,
                             obs::Telemetry* telemetry)
    : options_(options),
      codec_(workload::TpchWorkloadParams(), workload::TpccWorkloadParams(),
             /*seed=*/1),
      id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)) {
  if (options_.buffer_records == 0) options_.buffer_records = 1;
  if (telemetry != nullptr) {
    obs::Registry& reg = telemetry->registry;
    captured_counter_ =
        reg.GetCounter("qsched_replay_captured_records_total");
    dropped_counter_ =
        reg.GetCounter("qsched_replay_dropped_records_total");
    segments_counter_ =
        reg.GetCounter("qsched_replay_segments_written_total");
    bytes_gauge_ = reg.GetGauge("qsched_replay_trace_bytes");
  }
}

TraceRecorder::~TraceRecorder() { Stop(); }

Status TraceRecorder::Start() {
  if (running_.load(std::memory_order_acquire)) return Status::OK();
  Result<std::unique_ptr<TraceWriter>> opened =
      TraceWriter::Open(options_.writer);
  if (!opened.ok()) return opened.status();
  writer_ = std::move(opened).ValueOrDie();
  start_ = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    stop_writer_ = false;
  }
  running_.store(true, std::memory_order_release);
  writer_thread_ = std::thread([this] { WriterLoop(); });
  return Status::OK();
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  auto it = t_buffer_cache.find(id_);
  if (it != t_buffer_cache.end()) {
    return static_cast<ThreadBuffer*>(it->second);
  }
  auto owned = std::make_unique<ThreadBuffer>();
  owned->records.reserve(options_.buffer_records);
  ThreadBuffer* buffer = owned.get();
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffers_.push_back(std::move(owned));
  }
  t_buffer_cache.emplace(id_, buffer);
  return buffer;
}

void TraceRecorder::Record(const workload::Query& query) {
  if (!running_.load(std::memory_order_acquire)) return;
  TraceRecord record;
  record.arrival_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  record.trace_id = query.id;
  record.cost_timerons = query.cost_timerons;
  record.class_id = static_cast<uint16_t>(query.class_id);
  record.template_id = codec_.Encode(query);

  ThreadBuffer* buffer = BufferForThisThread();
  bool accepted = false;
  {
    std::lock_guard<std::mutex> lock(buffer->mu);
    // Re-check under the lock: once Stop()'s final sweep has passed this
    // buffer, nothing may be added behind it.
    if (running_.load(std::memory_order_acquire) &&
        buffer->records.size() < options_.buffer_records) {
      buffer->records.push_back(record);
      accepted = true;
    }
  }
  if (accepted) {
    captured_.fetch_add(1, std::memory_order_relaxed);
    if (captured_counter_ != nullptr) captured_counter_->Inc();
  } else {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    if (dropped_counter_ != nullptr) dropped_counter_->Inc();
  }
}

void TraceRecorder::WriterLoop() {
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(options_.flush_interval_seconds));
  std::unique_lock<std::mutex> lock(writer_mu_);
  while (!stop_writer_) {
    writer_cv_.wait_for(lock, interval,
                        [this] { return stop_writer_; });
    if (stop_writer_) break;
    lock.unlock();
    Sweep();
    lock.lock();
  }
}

void TraceRecorder::Sweep() {
  // Snapshot the buffer list; buffers are append-only and never freed
  // before Stop, so the pointers stay valid outside registry_mu_.
  std::vector<ThreadBuffer*> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffers.reserve(buffers_.size());
    for (const auto& owned : buffers_) buffers.push_back(owned.get());
  }
  const uint64_t segments_before = writer_->segments_written();
  for (ThreadBuffer* buffer : buffers) {
    scratch_.clear();
    {
      std::lock_guard<std::mutex> lock(buffer->mu);
      scratch_.swap(buffer->records);
    }
    for (const TraceRecord& record : scratch_) {
      // Append failures (disk full) surface at Stop via Close; records
      // are still counted captured — the capture metrics describe the
      // hot path, not the disk.
      (void)writer_->Append(record);
    }
  }
  if (segments_counter_ != nullptr) {
    const uint64_t delta = writer_->segments_written() - segments_before;
    for (uint64_t i = 0; i < delta; ++i) segments_counter_->Inc();
  }
  if (bytes_gauge_ != nullptr) {
    bytes_gauge_->Set(static_cast<double>(writer_->bytes_written()));
  }
}

Status TraceRecorder::Stop(const TraceSummary* summary) {
  if (!running_.load(std::memory_order_acquire)) return Status::OK();
  // Close intake first: Record() holding a buffer lock right now will
  // finish its push and be picked up by the final sweep; later calls see
  // running_ == false and count as dropped.
  running_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    stop_writer_ = true;
  }
  writer_cv_.notify_all();
  if (writer_thread_.joinable()) writer_thread_.join();
  Sweep();
  Status result = Status::OK();
  if (summary != nullptr) {
    result = writer_->WriteSummary(*summary);
  }
  Status closed = writer_->Close();
  if (result.ok()) result = closed;
  if (bytes_gauge_ != nullptr) {
    bytes_gauge_->Set(static_cast<double>(writer_->bytes_written()));
  }
  return result;
}

}  // namespace qsched::replay
