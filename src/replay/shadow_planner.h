#ifndef QSCHED_REPLAY_SHADOW_PLANNER_H_
#define QSCHED_REPLAY_SHADOW_PLANNER_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/execution_engine.h"
#include "replay/trace_format.h"
#include "scheduler/query_scheduler.h"
#include "scheduler/service_class.h"
#include "workload/tpcc_workload.h"
#include "workload/tpch_workload.h"

namespace qsched::replay {

/// One candidate plan for a what-if evaluation: a full scheduler config
/// (solver variant, control interval, cost limits) or a frozen static
/// plan that never replans.
struct PlanCandidate {
  /// Display name; '=' is rendered as ':' in reports so WHATIF lines
  /// stay key=value parseable.
  std::string name;
  sched::QuerySchedulerConfig config;
  /// When set, the dispatcher runs the fixed `frozen_limits` plan and no
  /// planning cycle ever fires.
  bool frozen_plan = false;
  std::map<int, double> frozen_limits;
};

struct ShadowClassOutcome {
  int class_id = 0;
  /// Velocity (OLAP) or mean response seconds (OLTP) over the whole run.
  double measured = 0.0;
  /// ServiceClassSpec::GoalRatio of `measured` (>= 1 == goal met).
  double goal_ratio = 0.0;
  /// Fraction of report intervals (with >= 1 completion) meeting the goal.
  double attainment = 0.0;
  double utility = 0.0;
  uint64_t completed = 0;
};

struct ShadowOutcome {
  std::string name;
  double total_utility = 0.0;
  uint64_t completed = 0;
  uint64_t cancelled = 0;
  uint64_t planning_cycles = 0;
  std::vector<ShadowClassOutcome> classes;
};

struct ShadowPlannerOptions {
  /// Seed for regenerating resource demands; every candidate world uses
  /// the same seed, so candidates differ only by plan.
  uint64_t seed = 42;
  workload::TpchWorkloadParams tpch;
  workload::TpccWorkloadParams tpcc;
  engine::EngineConfig engine;
  /// Scheduler config candidates derive from (typically rebuilt from the
  /// trace summary: the capture-side control interval, cost limit and
  /// allocator).
  sched::QuerySchedulerConfig base;
  /// Attainment bucketing interval in model seconds; 0 = use
  /// base.control_interval_seconds.
  double report_interval_seconds = 0.0;
};

/// Feeds a captured trace interval into the DES-backed engine/scheduler
/// stack — the same model components the live runtime runs on the wall
/// clock — once per candidate plan, and scores each candidate with the
/// capture-side utility function. Arrival model time is the captured
/// wall offset scaled by the trace's time_scale, so the shadow run sees
/// the same model-time arrival process the live scheduler saw.
///
/// Every candidate world is fully self-contained (own Simulator, engine,
/// scheduler, generators, all seeded identically), so Evaluate() is
/// bit-identical at any `jobs` value: ParallelFor only changes which
/// host thread runs which world, never what a world computes.
class ShadowPlanner {
 public:
  ShadowPlanner(const TraceReadResult& trace,
                const ShadowPlannerOptions& options);

  ShadowPlanner(const ShadowPlanner&) = delete;
  ShadowPlanner& operator=(const ShadowPlanner&) = delete;

  /// Runs one isolated DES world under `candidate` and scores it.
  ShadowOutcome EvaluateOne(const PlanCandidate& candidate) const;

  /// Evaluates all candidates across `jobs` threads (0 = all cores,
  /// <= 1 = inline); results are in candidate order.
  std::vector<ShadowOutcome> Evaluate(
      const std::vector<PlanCandidate>& candidates, int jobs) const;

  /// Whether the trace carries a live-run summary to baseline against.
  bool has_live() const { return trace_.has_summary; }
  /// The live run's measured outcome, rebuilt from the trace summary and
  /// scored with the same utility function as the candidates.
  ShadowOutcome LiveOutcome() const;

  const sched::ServiceClassSet& classes() const { return classes_; }

  /// Deterministic what-if report: a human table plus one machine-
  /// parseable "WHATIF plan=... utility=..." line per outcome (live
  /// first when present). Byte-identical across --jobs values.
  static std::string FormatReport(const ShadowOutcome* live,
                                  const std::vector<ShadowOutcome>& shadow);

 private:
  const TraceReadResult& trace_;
  ShadowPlannerOptions options_;
  sched::ServiceClassSet classes_;
  /// Records sorted by arrival_ns (stable), shared by all worlds.
  std::vector<TraceRecord> sorted_;
};

/// Parses a candidate list: candidates separated by ',', each a '+'-
/// joined set of overrides applied to `base`:
///   base            the capture-side config unchanged
///   interval=S      control interval (model seconds)
///   greedy          greedy-auction allocator
///   utility         utility-search allocator
///   step=F          plan step fraction
///   limit=X         system cost limit (timerons)
///   olap=X          frozen static plan: X split evenly over OLAP
///                   classes, remainder to OLTP; no replanning
Result<std::vector<PlanCandidate>> ParsePlanCandidates(
    const std::string& spec, const sched::QuerySchedulerConfig& base,
    const sched::ServiceClassSet& classes);

}  // namespace qsched::replay

#endif  // QSCHED_REPLAY_SHADOW_PLANNER_H_
