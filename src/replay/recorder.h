#ifndef QSCHED_REPLAY_RECORDER_H_
#define QSCHED_REPLAY_RECORDER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/telemetry.h"
#include "replay/template_codec.h"
#include "replay/trace_format.h"
#include "workload/query.h"

namespace qsched::replay {

struct RecorderOptions {
  TraceWriterOptions writer;
  /// Per-producer-thread buffer capacity (records). When the writer
  /// thread falls behind and a buffer fills, further records from that
  /// thread are dropped-and-counted — the hot path never blocks on I/O.
  size_t buffer_records = 8192;
  /// Writer-thread sweep cadence.
  double flush_interval_seconds = 0.05;
};

/// Lock-cheap live trace recorder, hooked at gateway/router offer time.
///
/// Threading model: each producer thread lazily registers a private
/// buffer guarded by its own mutex. The only contention on that mutex is
/// the writer thread's periodic swap — producers otherwise take an
/// uncontended lock, encode 28 bytes, and return. File I/O happens
/// exclusively on the dedicated writer thread. Overflow policy is
/// drop-and-count (`qsched_replay_dropped_records_total`), preserving
/// the invariant captured + dropped == offered.
class TraceRecorder {
 public:
  explicit TraceRecorder(const RecorderOptions& options,
                         obs::Telemetry* telemetry = nullptr);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Opens the trace file and spawns the writer thread. The capture
  /// clock (arrival_ns = 0) starts here.
  Status Start();

  /// Hot path: records one offered query. Safe from any thread; never
  /// blocks on I/O. No-op before Start() or after Stop().
  void Record(const workload::Query& query);

  /// Stops the writer thread, performs a final sweep of every buffer,
  /// appends `summary` (optional) and closes the file. Idempotent.
  Status Stop(const TraceSummary* summary = nullptr);

  uint64_t captured() const {
    return captured_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  const TraceWriter* writer() const { return writer_.get(); }

 private:
  struct ThreadBuffer {
    std::mutex mu;
    std::vector<TraceRecord> records;
  };

  ThreadBuffer* BufferForThisThread();
  void WriterLoop();
  /// Swaps every buffer out and appends the drained records (in buffer
  /// registration order) to the writer. Writer-thread only.
  void Sweep();

  RecorderOptions options_;
  TemplateCodec codec_;
  std::unique_ptr<TraceWriter> writer_;
  std::chrono::steady_clock::time_point start_;
  /// Process-unique id; keys the thread-local buffer cache so a stale
  /// entry for a destroyed recorder can never alias a new one.
  const uint64_t id_;

  std::mutex registry_mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;

  std::atomic<bool> running_{false};
  std::atomic<uint64_t> captured_{0};
  std::atomic<uint64_t> dropped_{0};

  std::thread writer_thread_;
  std::mutex writer_mu_;
  std::condition_variable writer_cv_;
  bool stop_writer_ = false;
  std::vector<TraceRecord> scratch_;

  obs::Counter* captured_counter_ = nullptr;
  obs::Counter* dropped_counter_ = nullptr;
  obs::Counter* segments_counter_ = nullptr;
  obs::Gauge* bytes_gauge_ = nullptr;
};

}  // namespace qsched::replay

#endif  // QSCHED_REPLAY_RECORDER_H_
