#include "catalog/schema.h"

namespace qsched::catalog {
namespace {

Column Key(std::string name, uint64_t distinct) {
  return Column{std::move(name), ColumnType::kInt32, 4, distinct};
}
Column Money(std::string name) {
  return Column{std::move(name), ColumnType::kDecimal, 8, 100000};
}
Column Text(std::string name, int width) {
  return Column{std::move(name), ColumnType::kVarchar, width, 100000};
}

}  // namespace

Catalog MakeTpccCatalog(int warehouses) {
  uint64_t w = warehouses <= 0 ? 1 : static_cast<uint64_t>(warehouses);
  Catalog catalog("tpcc");

  Table warehouse("warehouse", w,
                  {Key("w_id", w), Text("w_name", 10), Text("w_street", 40),
                   Money("w_tax"), Money("w_ytd")});
  warehouse.AddIndex(Index{"w_pk", "w_id", true, 1});
  catalog.AddTable(std::move(warehouse));

  Table district("district", w * 10,
                 {Key("d_id", 10), Key("d_w_id", w), Text("d_name", 10),
                  Money("d_tax"), Money("d_ytd"), Key("d_next_o_id", 3000)});
  district.AddIndex(Index{"d_pk", "d_w_id", true, 2});
  catalog.AddTable(std::move(district));

  Table customer("customer", w * 30000,
                 {Key("c_id", 3000), Key("c_d_id", 10), Key("c_w_id", w),
                  Text("c_last", 16), Text("c_first", 16),
                  Text("c_street", 40), Money("c_balance"),
                  Money("c_ytd_payment"), Text("c_data", 300)});
  customer.AddIndex(Index{"c_pk", "c_w_id", true, 3});
  customer.AddIndex(Index{"c_last_idx", "c_last", false, 3});
  catalog.AddTable(std::move(customer));

  Table history("history", w * 30000,
                {Key("h_c_id", 3000), Key("h_c_d_id", 10), Key("h_c_w_id", w),
                 Money("h_amount"), Text("h_data", 24)});
  catalog.AddTable(std::move(history));

  Table neworder("new_order", w * 9000,
                 {Key("no_o_id", 3000), Key("no_d_id", 10),
                  Key("no_w_id", w)});
  neworder.AddIndex(Index{"no_pk", "no_w_id", true, 2});
  catalog.AddTable(std::move(neworder));

  Table orders("orders", w * 30000,
               {Key("o_id", 3000), Key("o_d_id", 10), Key("o_w_id", w),
                Key("o_c_id", 3000), Key("o_carrier_id", 10),
                Key("o_ol_cnt", 11)});
  orders.AddIndex(Index{"o_pk", "o_w_id", true, 3});
  catalog.AddTable(std::move(orders));

  Table orderline("order_line", w * 300000,
                  {Key("ol_o_id", 3000), Key("ol_d_id", 10),
                   Key("ol_w_id", w), Key("ol_number", 15),
                   Key("ol_i_id", 100000), Money("ol_amount"),
                   Text("ol_dist_info", 24)});
  orderline.AddIndex(Index{"ol_pk", "ol_w_id", true, 3});
  catalog.AddTable(std::move(orderline));

  Table item("item", 100000,
             {Key("i_id", 100000), Text("i_name", 24), Money("i_price"),
              Text("i_data", 50)});
  item.AddIndex(Index{"i_pk", "i_id", true, 3});
  catalog.AddTable(std::move(item));

  Table stock("stock", w * 100000,
              {Key("s_i_id", 100000), Key("s_w_id", w),
               Key("s_quantity", 100), Text("s_dist_01", 24),
               Money("s_ytd"), Key("s_order_cnt", 1000),
               Text("s_data", 50)});
  stock.AddIndex(Index{"s_pk", "s_w_id", true, 3});
  catalog.AddTable(std::move(stock));

  return catalog;
}

}  // namespace qsched::catalog
