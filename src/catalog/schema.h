#ifndef QSCHED_CATALOG_SCHEMA_H_
#define QSCHED_CATALOG_SCHEMA_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace qsched::catalog {

/// Storage column types; only the width matters to the cost model, but the
/// type is kept for schema fidelity and index selection.
enum class ColumnType { kInt32, kInt64, kDecimal, kDate, kChar, kVarchar };

struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt32;
  /// Average stored width in bytes.
  int width_bytes = 4;
  /// Number of distinct values; used by the cardinality estimator for
  /// equality predicates and group-by widths.
  uint64_t distinct_values = 1;
};

struct Index {
  std::string name;
  /// Leading column the index is keyed on.
  std::string column;
  bool unique = false;
  /// B-tree height estimate used for index probe I/O cost.
  int height = 3;
};

/// Table statistics as the optimizer sees them (names and magnitudes are
/// modeled after the TPC-H / TPC-C schemas).
class Table {
 public:
  Table() = default;
  Table(std::string name, uint64_t row_count, std::vector<Column> columns);

  const std::string& name() const { return name_; }
  uint64_t row_count() const { return row_count_; }
  void set_row_count(uint64_t rows) { row_count_ = rows; }

  const std::vector<Column>& columns() const { return columns_; }
  /// Returns nullptr when the column does not exist.
  const Column* FindColumn(const std::string& column_name) const;

  /// Sum of column widths plus per-row overhead.
  int row_bytes() const;

  /// Number of data pages at the given page size.
  uint64_t PageCount(int page_size_bytes) const;

  void AddIndex(Index index) { indexes_.push_back(std::move(index)); }
  const std::vector<Index>& indexes() const { return indexes_; }
  /// Returns nullptr when no index leads on `column_name`.
  const Index* FindIndexOn(const std::string& column_name) const;

 private:
  std::string name_;
  uint64_t row_count_ = 0;
  std::vector<Column> columns_;
  std::vector<Index> indexes_;
};

/// A database schema: a named set of tables with statistics. The engine
/// hosts the OLAP and OLTP catalogs as separate databases, mirroring the
/// paper's setup (separate databases to isolate buffer/lock contention).
class Catalog {
 public:
  explicit Catalog(std::string database_name)
      : database_name_(std::move(database_name)) {}

  const std::string& database_name() const { return database_name_; }

  Status AddTable(Table table);
  /// Returns nullptr when absent.
  const Table* FindTable(const std::string& name) const;
  Table* FindMutableTable(const std::string& name);

  std::vector<std::string> TableNames() const;
  size_t num_tables() const { return tables_.size(); }

  /// Total data pages across all tables.
  uint64_t TotalPages(int page_size_bytes) const;

 private:
  std::string database_name_;
  std::map<std::string, Table> tables_;
};

/// TPC-H-shaped catalog (8 tables) at the given scale factor; SF 1.0 is
/// ~1 GB of raw data. The paper used a 500 MB database (SF 0.5).
Catalog MakeTpchCatalog(double scale_factor);

/// TPC-C-shaped catalog (9 tables) for the given warehouse count. The
/// paper used 50 warehouses.
Catalog MakeTpccCatalog(int warehouses);

}  // namespace qsched::catalog

#endif  // QSCHED_CATALOG_SCHEMA_H_
