#include "catalog/schema.h"

#include <algorithm>

namespace qsched::catalog {

namespace {
// Tuple header + slot directory overhead per stored row.
constexpr int kPerRowOverheadBytes = 8;
}  // namespace

Table::Table(std::string name, uint64_t row_count,
             std::vector<Column> columns)
    : name_(std::move(name)),
      row_count_(row_count),
      columns_(std::move(columns)) {}

const Column* Table::FindColumn(const std::string& column_name) const {
  for (const Column& c : columns_) {
    if (c.name == column_name) return &c;
  }
  return nullptr;
}

int Table::row_bytes() const {
  int width = kPerRowOverheadBytes;
  for (const Column& c : columns_) width += c.width_bytes;
  return width;
}

uint64_t Table::PageCount(int page_size_bytes) const {
  if (page_size_bytes <= 0) return 0;
  uint64_t rows_per_page =
      std::max<uint64_t>(1, static_cast<uint64_t>(page_size_bytes) /
                                static_cast<uint64_t>(row_bytes()));
  return (row_count_ + rows_per_page - 1) / rows_per_page;
}

const Index* Table::FindIndexOn(const std::string& column_name) const {
  for (const Index& idx : indexes_) {
    if (idx.column == column_name) return &idx;
  }
  return nullptr;
}

Status Catalog::AddTable(Table table) {
  const std::string& name = table.name();
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table already in catalog: " + name);
  }
  tables_.emplace(name, std::move(table));
  return Status::OK();
}

const Table* Catalog::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it != tables_.end() ? &it->second : nullptr;
}

Table* Catalog::FindMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  return it != tables_.end() ? &it->second : nullptr;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

uint64_t Catalog::TotalPages(int page_size_bytes) const {
  uint64_t total = 0;
  for (const auto& [name, table] : tables_) {
    total += table.PageCount(page_size_bytes);
  }
  return total;
}

}  // namespace qsched::catalog
