#include <cmath>

#include "catalog/schema.h"

namespace qsched::catalog {
namespace {

uint64_t Scaled(double base_rows, double sf) {
  double rows = base_rows * sf;
  return rows < 1.0 ? 1 : static_cast<uint64_t>(std::llround(rows));
}

Column Int32Col(std::string name, uint64_t distinct) {
  return Column{std::move(name), ColumnType::kInt32, 4, distinct};
}
Column DecimalCol(std::string name, uint64_t distinct) {
  return Column{std::move(name), ColumnType::kDecimal, 8, distinct};
}
Column DateCol(std::string name, uint64_t distinct) {
  return Column{std::move(name), ColumnType::kDate, 4, distinct};
}
Column CharCol(std::string name, int width, uint64_t distinct) {
  return Column{std::move(name), ColumnType::kChar, width, distinct};
}
Column VarcharCol(std::string name, int width, uint64_t distinct) {
  return Column{std::move(name), ColumnType::kVarchar, width, distinct};
}

}  // namespace

Catalog MakeTpchCatalog(double scale_factor) {
  double sf = scale_factor <= 0.0 ? 1.0 : scale_factor;
  Catalog catalog("tpch");

  Table lineitem("lineitem", Scaled(6000000, sf),
                 {Int32Col("l_orderkey", Scaled(1500000, sf)),
                  Int32Col("l_partkey", Scaled(200000, sf)),
                  Int32Col("l_suppkey", Scaled(10000, sf)),
                  Int32Col("l_linenumber", 7),
                  DecimalCol("l_quantity", 50),
                  DecimalCol("l_extendedprice", Scaled(1000000, sf)),
                  DecimalCol("l_discount", 11),
                  DecimalCol("l_tax", 9),
                  CharCol("l_returnflag", 1, 3),
                  CharCol("l_linestatus", 1, 2),
                  DateCol("l_shipdate", 2526),
                  DateCol("l_commitdate", 2466),
                  DateCol("l_receiptdate", 2554),
                  CharCol("l_shipinstruct", 25, 4),
                  CharCol("l_shipmode", 10, 7),
                  VarcharCol("l_comment", 27, Scaled(4500000, sf))});
  lineitem.AddIndex(Index{"l_orderkey_idx", "l_orderkey", false, 4});
  catalog.AddTable(std::move(lineitem));

  Table orders("orders", Scaled(1500000, sf),
               {Int32Col("o_orderkey", Scaled(1500000, sf)),
                Int32Col("o_custkey", Scaled(99996, sf)),
                CharCol("o_orderstatus", 1, 3),
                DecimalCol("o_totalprice", Scaled(1400000, sf)),
                DateCol("o_orderdate", 2406),
                CharCol("o_orderpriority", 15, 5),
                CharCol("o_clerk", 15, Scaled(1000, sf)),
                Int32Col("o_shippriority", 1),
                VarcharCol("o_comment", 49, Scaled(1400000, sf))});
  orders.AddIndex(Index{"o_orderkey_pk", "o_orderkey", true, 4});
  orders.AddIndex(Index{"o_custkey_idx", "o_custkey", false, 4});
  catalog.AddTable(std::move(orders));

  Table customer("customer", Scaled(150000, sf),
                 {Int32Col("c_custkey", Scaled(150000, sf)),
                  VarcharCol("c_name", 18, Scaled(150000, sf)),
                  VarcharCol("c_address", 25, Scaled(150000, sf)),
                  Int32Col("c_nationkey", 25),
                  CharCol("c_phone", 15, Scaled(150000, sf)),
                  DecimalCol("c_acctbal", Scaled(140000, sf)),
                  CharCol("c_mktsegment", 10, 5),
                  VarcharCol("c_comment", 73, Scaled(150000, sf))});
  customer.AddIndex(Index{"c_custkey_pk", "c_custkey", true, 3});
  catalog.AddTable(std::move(customer));

  Table part("part", Scaled(200000, sf),
             {Int32Col("p_partkey", Scaled(200000, sf)),
              VarcharCol("p_name", 33, Scaled(200000, sf)),
              CharCol("p_mfgr", 25, 5),
              CharCol("p_brand", 10, 25),
              VarcharCol("p_type", 21, 150),
              Int32Col("p_size", 50),
              CharCol("p_container", 10, 40),
              DecimalCol("p_retailprice", Scaled(20000, sf)),
              VarcharCol("p_comment", 14, Scaled(130000, sf))});
  part.AddIndex(Index{"p_partkey_pk", "p_partkey", true, 3});
  catalog.AddTable(std::move(part));

  Table partsupp("partsupp", Scaled(800000, sf),
                 {Int32Col("ps_partkey", Scaled(200000, sf)),
                  Int32Col("ps_suppkey", Scaled(10000, sf)),
                  Int32Col("ps_availqty", 9999),
                  DecimalCol("ps_supplycost", 99901),
                  VarcharCol("ps_comment", 124, Scaled(800000, sf))});
  partsupp.AddIndex(Index{"ps_partkey_idx", "ps_partkey", false, 3});
  catalog.AddTable(std::move(partsupp));

  Table supplier("supplier", Scaled(10000, sf),
                 {Int32Col("s_suppkey", Scaled(10000, sf)),
                  CharCol("s_name", 25, Scaled(10000, sf)),
                  VarcharCol("s_address", 25, Scaled(10000, sf)),
                  Int32Col("s_nationkey", 25),
                  CharCol("s_phone", 15, Scaled(10000, sf)),
                  DecimalCol("s_acctbal", Scaled(10000, sf)),
                  VarcharCol("s_comment", 62, Scaled(10000, sf))});
  supplier.AddIndex(Index{"s_suppkey_pk", "s_suppkey", true, 2});
  catalog.AddTable(std::move(supplier));

  Table nation("nation", 25,
               {Int32Col("n_nationkey", 25), CharCol("n_name", 25, 25),
                Int32Col("n_regionkey", 5),
                VarcharCol("n_comment", 74, 25)});
  catalog.AddTable(std::move(nation));

  Table region("region", 5,
               {Int32Col("r_regionkey", 5), CharCol("r_name", 25, 5),
                VarcharCol("r_comment", 77, 5)});
  catalog.AddTable(std::move(region));

  return catalog;
}

}  // namespace qsched::catalog
