#ifndef QSCHED_NET_SERVICE_H_
#define QSCHED_NET_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <functional>

#include "net/frame.h"
#include "rt/gateway.h"
#include "workload/query.h"

namespace qsched::net {

/// One finished query on its way back to the submitting connection, in
/// plain-value form: whoever produces it (the local gateway's clock
/// thread, a cluster backend channel) copies everything the wire
/// COMPLETED frame needs out of its own data structures, so the reactor
/// that delivers it never touches foreign state.
struct ServiceCompletion {
  int32_t class_id = 0;
  double response_seconds = 0.0;
  double exec_seconds = 0.0;
  bool cancelled = false;
  /// Stage breakdown (v2 trace context). has_trace gates the local
  /// flush-stage histogram; want_trace additionally gates the wire
  /// context (the client asked for it on the SUBMIT and speaks v2).
  bool has_trace = false;
  bool want_trace = false;
  uint64_t trace_id = 0;
  double stage_gateway_queue_seconds = 0.0;
  double stage_dispatch_seconds = 0.0;
  double stage_execute_seconds = 0.0;
  std::chrono::steady_clock::time_point completed_wall{};
};

/// What a QueryService did with one SUBMIT, synchronously. kDeferred
/// means the verdict is not known yet (a router still probing backends);
/// the service promises to invoke the verdict callback exactly once,
/// later, from any thread.
struct SubmitDisposition {
  enum class Kind : uint8_t {
    kAccepted = 0,
    kRejected = 1,
    kDeferred = 2,
  };
  Kind kind = Kind::kRejected;
  rt::RejectReason reason = rt::RejectReason::kQueueFull;

  static SubmitDisposition Accepted() {
    return {Kind::kAccepted, rt::RejectReason::kQueueFull};
  }
  static SubmitDisposition Rejected(rt::RejectReason why) {
    return {Kind::kRejected, why};
  }
  static SubmitDisposition Deferred() {
    return {Kind::kDeferred, rt::RejectReason::kQueueFull};
  }
};

/// The pluggable back half of net::Server: where SUBMITs go. The direct
/// runtime path (GatewayService below) answers verdicts inline and
/// completes on the clock thread; the cluster router answers both
/// asynchronously after a backend round-trip. The server guarantees the
/// peer still observes per-connection submission-order verdicts either
/// way (DESIGN.md §12).
class QueryService {
 public:
  /// Delivers the admission verdict of a deferred SUBMIT. Must be
  /// invoked exactly once, from any thread; `accepted` false carries the
  /// reject reason.
  using VerdictFn = std::function<void(bool accepted, rt::RejectReason)>;
  /// Delivers the COMPLETED payload of an accepted query. Must be
  /// invoked exactly once per accepted query, from any thread, after the
  /// verdict.
  using CompleteFn = std::function<void(const ServiceCompletion&)>;

  virtual ~QueryService() = default;

  /// Hands one query over. A kAccepted/kRejected disposition is final
  /// and immediate — the callbacks' ownership stays with the caller only
  /// until this returns, and `on_verdict` is then never invoked (the
  /// caller already knows). kDeferred transfers both callbacks to the
  /// service: `on_verdict` fires exactly once when the verdict is known,
  /// and `on_complete` exactly once more if that verdict was accepted.
  /// `want_trace` asks for the v2 stage breakdown in the completion.
  virtual SubmitDisposition Submit(const workload::Query& query,
                                   bool want_trace, VerdictFn on_verdict,
                                   CompleteFn on_complete) = 0;

  /// Snapshot for STATS_REPLY. `connections` is filled by the server.
  virtual WireStats Stats() = 0;

  /// Whether new SUBMITs should be turned away with kShuttingDown (the
  /// service is draining for good, as opposed to transient rejects).
  virtual bool shutting_down() = 0;
};

/// The direct path: adapts rt::Gateway (plus its telemetry's SloMonitor
/// for the v2 stats) to QueryService. Verdicts are synchronous — exactly
/// the pre-refactor behavior and cost — and completions arrive on the
/// runtime's clock thread, where the stage trace is copied into the
/// plain ServiceCompletion.
class GatewayService : public QueryService {
 public:
  /// `gateway` (started) must outlive the service; `telemetry` may be
  /// null (stats then omit class attainment).
  explicit GatewayService(rt::Gateway* gateway,
                          obs::Telemetry* telemetry = nullptr)
      : gateway_(gateway), telemetry_(telemetry) {}

  SubmitDisposition Submit(const workload::Query& query, bool want_trace,
                           VerdictFn on_verdict,
                           CompleteFn on_complete) override;
  WireStats Stats() override;
  bool shutting_down() override;

 private:
  rt::Gateway* gateway_;
  obs::Telemetry* telemetry_;
};

}  // namespace qsched::net

#endif  // QSCHED_NET_SERVICE_H_
