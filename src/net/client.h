#ifndef QSCHED_NET_CLIENT_H_
#define QSCHED_NET_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/frame.h"
#include "obs/telemetry.h"
#include "rt/loadgen.h"
#include "workload/query.h"

namespace qsched::net {

/// Resolves host:port (IPv4) and connects a TCP socket, returning the
/// connected fd in blocking mode with TCP_NODELAY set. With
/// `connect_timeout_seconds > 0` the connect itself is bounded: a dead
/// or blackholed address fails with DeadlineExceeded after the timeout
/// instead of hanging for the kernel's minutes-long default — which is
/// what the cluster layer's backend prober needs to notice a downed
/// backend quickly. `<= 0` keeps the old fully-blocking behavior.
Result<int> ConnectFd(const std::string& host, uint16_t port,
                      double connect_timeout_seconds = 0.0);

/// One finished query as seen by a client. The trace fields are filled
/// when the server attached the v2 per-stage breakdown (has_trace);
/// otherwise they stay 0.
struct ClientCompletion {
  uint64_t request_id = 0;
  int32_t class_id = 0;
  double response_seconds = 0.0;
  double exec_seconds = 0.0;
  bool cancelled = false;
  bool has_trace = false;
  uint64_t trace_id = 0;
  double stage_gateway_queue_seconds = 0.0;
  double stage_dispatch_seconds = 0.0;
  double stage_execute_seconds = 0.0;

  /// Sum of the three wire stages — equals the server-side wall-clock
  /// end-to-end latency (gateway enqueue to completion callback).
  double StageTotalSeconds() const {
    return stage_gateway_queue_seconds + stage_dispatch_seconds +
           stage_execute_seconds;
  }
};

/// Blocking client for the wire protocol: one TCP connection, one owning
/// thread (the class is not thread-safe). Submit() returns the admission
/// verdict; COMPLETED frames arriving while waiting for something else
/// are buffered and handed out by NextCompletion()/PollCompletion().
class Client {
 public:
  /// Connects to host:port. `connect_timeout_seconds` as in ConnectFd:
  /// > 0 bounds the TCP connect, <= 0 (default) blocks indefinitely.
  static Result<std::unique_ptr<Client>> Connect(
      const std::string& host, uint16_t port,
      double connect_timeout_seconds = 0.0);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  struct SubmitResult {
    bool accepted = false;
    rt::RejectReason reject_reason = rt::RejectReason::kQueueFull;
    uint64_t request_id = 0;
  };

  /// Sends SUBMIT and blocks until the ACCEPTED / REJECTED verdict for
  /// it arrives (completions of earlier queries are buffered en route).
  Result<SubmitResult> Submit(const workload::Query& query);

  /// Pipelined submission: encodes SUBMIT into the client's output
  /// buffer (no syscall, no waiting) and returns its request_id. Call
  /// Flush() to put the queued bytes on the wire — one send() can carry
  /// many SUBMITs — and PopVerdict()/NextVerdict() to collect the
  /// verdicts, which the server returns in submission order. This is
  /// what decouples offered throughput from the per-query round-trip:
  /// a blocking Submit() caps a connection at 1/RTT queries per second,
  /// a pipelined connection at the server's processing rate.
  Result<uint64_t> SubmitNoWait(const workload::Query& query);

  /// Sends everything queued by SubmitNoWait. No-op when empty.
  Status Flush();

  /// Non-blocking: pops the next pipelined verdict if one has been
  /// received. Verdicts surface in submission order.
  bool PopVerdict(SubmitResult* out);

  /// Blocking variant: flushes, then reads until the next pipelined
  /// verdict arrives (completions en route are buffered). Fails when no
  /// SubmitNoWait is awaiting a verdict.
  Result<SubmitResult> NextVerdict();

  /// Next completion: from the buffer, else blocks reading the socket.
  Result<ClientCompletion> NextCompletion();

  /// Non-blocking-ish variant: waits at most `timeout_seconds` for a
  /// completion to become available. ok() with found=false on timeout.
  struct PolledCompletion {
    bool found = false;
    ClientCompletion completion;
  };
  Result<PolledCompletion> PollCompletion(double timeout_seconds);

  /// PING round-trip.
  Status Ping();

  /// STATS round-trip.
  Result<WireStats> Stats();

  /// Sends DRAIN and blocks until the server's DRAINED, buffering every
  /// COMPLETED that precedes it; after this the server closes the
  /// connection and submissions fail. Buffered completions remain
  /// readable via PollCompletion/NextCompletion (which no longer block).
  Status Drain();

  /// Accepted-but-not-yet-completed queries on this connection.
  size_t outstanding() const { return outstanding_; }
  /// Completions received and buffered but not yet handed out.
  size_t buffered_completions() const { return completions_.size(); }
  /// Pipelined submits whose verdict has not been handed out yet
  /// (awaiting wire + buffered).
  size_t verdicts_pending() const {
    return awaiting_verdict_.size() + verdicts_.size();
  }

  /// Whether SUBMITs ask the server for the per-stage trace context in
  /// COMPLETED frames (on by default; it costs 33 bytes per completion).
  void set_want_trace(bool want) { want_trace_ = want; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// One non-blocking decode attempt against the input buffer: sets
  /// *got_frame when a complete frame was decoded (and consumed).
  Status ReadFrameInternal(Frame* frame, bool* got_frame);
  Status ReadUntilType(FrameType want, uint64_t request_id, Frame* out);
  Status SendAll(const std::vector<uint8_t>& bytes);
  /// Routes a frame to the completion or pipelined-verdict buffer;
  /// false when the caller should interpret it itself.
  bool AbsorbFrame(const Frame& frame);

  int fd_ = -1;
  bool drained_ = false;
  bool want_trace_ = true;
  uint64_t next_request_id_ = 1;
  size_t outstanding_ = 0;
  std::vector<uint8_t> inbuf_;
  /// SUBMITs queued by SubmitNoWait, flushed by Flush().
  std::vector<uint8_t> outbuf_;
  std::deque<ClientCompletion> completions_;
  /// request_ids of pipelined SUBMITs whose verdict is still on the wire
  /// (FIFO — the server answers in submission order).
  std::deque<uint64_t> awaiting_verdict_;
  /// Verdicts received but not yet popped.
  std::deque<SubmitResult> verdicts_;
};

/// Mix entry for the remote load generator: a service class, its weight
/// in the draw, and which generator family feeds it.
struct RemoteMixEntry {
  int class_id = 0;
  double weight = 1.0;
  workload::WorkloadType type = workload::WorkloadType::kOlap;
};

struct RemoteLoadOptions {
  int connections = 4;
  /// Total offered rate across all connections (queries/wall second).
  double qps = 1000.0;
  double duration_wall_seconds = 2.0;
  uint64_t seed = 42;
  rt::ArrivalPattern pattern = rt::ArrivalPattern::kConstant;
  /// Pattern shape knobs, as in rt::LoadGenOptions.
  double burst_period_seconds = 0.5;
  double burst_duty = 0.3;
  double burst_factor = 4.0;
  double diurnal_period_seconds = 2.0;
  double diurnal_amplitude = 0.8;
  /// Synthetic client ids are spread over this many ids per connection.
  int num_clients = 16;
  /// TPC-H scale for the OLAP entries' generators.
  double tpch_scale_factor = 0.1;
  /// Class mix; empty = the paper's 1:3 / 2:3 / 3:94 default.
  std::vector<RemoteMixEntry> mix;
  /// Pipelined submission: queue SUBMITs via SubmitNoWait and batch
  /// them onto the wire instead of blocking for each verdict. Offered
  /// throughput then scales with the server, not with 1/RTT.
  bool pipeline = false;
  /// Pipeline depth bound per connection (accepted-but-not-completed +
  /// verdicts in flight); submission backpressures above it.
  int max_outstanding = 128;
};

/// Multi-connection remote load generator: each connection gets its own
/// thread, generators (seeded seed + index) and open-loop Poisson
/// arrival process at qps/connections; at the end every connection
/// DRAINs and reconciles its completions. The on-wire round-trip of
/// every completed query (submit to COMPLETED arrival, wall seconds)
/// lands in the `qsched_net_rtt_seconds` histogram.
class RemoteLoadGenerator {
 public:
  RemoteLoadGenerator(std::string host, uint16_t port,
                      const RemoteLoadOptions& options,
                      obs::Telemetry* telemetry = nullptr);

  RemoteLoadGenerator(const RemoteLoadGenerator&) = delete;
  RemoteLoadGenerator& operator=(const RemoteLoadGenerator&) = delete;

  /// Runs the full generation + drain phase, blocking. Returns the first
  /// connection-level error, or OK; per-query rejections are not errors.
  Status Run();

  // Totals across connections (valid after Run; atomics, so mid-run
  // reads from another thread see a consistent monotonic view).
  uint64_t offered() const { return offered_; }
  uint64_t accepted() const { return accepted_; }
  uint64_t rejected_queue_full() const { return rejected_queue_full_; }
  uint64_t rejected_shutting_down() const {
    return rejected_shutting_down_;
  }
  /// REJECTED{BACKEND_UNAVAILABLE} verdicts — only a cluster router
  /// emits these; a direct backend always stays 0.
  uint64_t rejected_backend_unavailable() const {
    return rejected_backend_unavailable_;
  }
  uint64_t completed() const { return completed_; }
  /// Completions that did not match an outstanding accepted request
  /// (duplicates or unknown ids) — must stay 0.
  uint64_t unmatched_completions() const { return unmatched_; }
  /// Accepted queries that never got a COMPLETED — must end 0.
  uint64_t lost_completions() const { return lost_; }

  /// Wall seconds of the arrival (feed) phase and of the trailing drain
  /// phase, maxed over connections. Valid after Run(). Sustained
  /// throughput is offered()/feed_seconds() — the drain tail (waiting
  /// out the last OLAP executions) is not offered load and is reported
  /// separately.
  double feed_seconds() const;
  double drain_seconds() const;

 private:
  Status RunConnection(int index);

  std::string host_;
  uint16_t port_;
  RemoteLoadOptions options_;
  obs::Telemetry* telemetry_;

  std::atomic<uint64_t> offered_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_queue_full_{0};
  std::atomic<uint64_t> rejected_shutting_down_{0};
  std::atomic<uint64_t> rejected_backend_unavailable_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> unmatched_{0};
  std::atomic<uint64_t> lost_{0};

  mutable std::mutex phase_mu_;
  double feed_seconds_ = 0.0;
  double drain_seconds_ = 0.0;

  obs::Histogram* rtt_hist_ = nullptr;
  obs::Counter* offered_counter_ = nullptr;
  obs::Counter* completed_counter_ = nullptr;
};

/// Adversarial probe for the protocol-hardening acceptance criterion:
/// opens a connection and sends `count` deliberately broken frames
/// (truncated bodies, bad versions, unknown types, oversized lengths,
/// random garbage — seeded by `seed`), expecting the server to answer
/// with an ERROR frame and close, never crash. Returns OK when the
/// server survived (responded and/or closed); Internal when the
/// connection behaved unexpectedly.
Status InjectMalformedFrames(const std::string& host, uint16_t port,
                             int count, uint64_t seed);

}  // namespace qsched::net

#endif  // QSCHED_NET_CLIENT_H_
