#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "common/strings.h"

namespace qsched::net {

namespace {

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

void Server::Mailbox::Post(PendingCompletion completion) {
  std::lock_guard<std::mutex> lock(mu);
  if (closed) return;  // server gone; the gateway still accounted it
  items.push_back(completion);
  if (wakeup_fd >= 0) {
    // One byte is enough to make poll() return; a full pipe already
    // guarantees a pending wakeup, so EAGAIN is fine.
    char byte = 1;
    ssize_t ignored = write(wakeup_fd, &byte, 1);
    (void)ignored;
  }
}

Server::Server(rt::Gateway* gateway, const ServerOptions& options,
               obs::Telemetry* telemetry)
    : gateway_(gateway),
      options_(options),
      telemetry_(telemetry),
      mailbox_(std::make_shared<Mailbox>()) {
  if (telemetry_ != nullptr) {
    obs::Registry& reg = telemetry_->registry;
    connections_gauge_ = reg.GetGauge("qsched_net_connections");
    connections_counter_ = reg.GetCounter("qsched_net_connections_total");
    frames_in_counter_ = reg.GetCounter("qsched_net_frames_in_total");
    frames_out_counter_ = reg.GetCounter("qsched_net_frames_out_total");
    protocol_errors_counter_ =
        reg.GetCounter("qsched_net_protocol_errors_total");
    submit_accepted_counter_ =
        reg.GetCounter("qsched_net_submit_accepted_total");
    submit_rejected_full_counter_ = reg.GetCounter(
        "qsched_net_submit_rejected_total", "reason=\"queue_full\"");
    submit_rejected_shutdown_counter_ = reg.GetCounter(
        "qsched_net_submit_rejected_total", "reason=\"shutting_down\"");
    completions_dropped_counter_ =
        reg.GetCounter("qsched_net_completions_dropped_total");
    turnaround_hist_ =
        reg.GetHistogram("qsched_net_server_turnaround_seconds");
  }
}

Server::~Server() { Stop(); }

Status Server::Start() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (started_) return Status::FailedPrecondition("server already started");
  }

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(StrPrintf("socket: %s", strerror(errno)));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument(
        StrPrintf("bad bind address %s", options_.bind_address.c_str()));
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Status::Internal(StrPrintf(
        "bind %s:%u: %s", options_.bind_address.c_str(),
        static_cast<unsigned>(options_.port), strerror(errno)));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                  &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  if (listen(listen_fd_, 128) < 0 || !SetNonBlocking(listen_fd_)) {
    Status status =
        Status::Internal(StrPrintf("listen: %s", strerror(errno)));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }

  int pipe_fds[2];
  if (pipe(pipe_fds) < 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(StrPrintf("pipe: %s", strerror(errno)));
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  SetNonBlocking(wake_read_fd_);
  SetNonBlocking(wake_write_fd_);
  {
    std::lock_guard<std::mutex> lock(mailbox_->mu);
    mailbox_->wakeup_fd = wake_write_fd_;
  }

  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    started_ = true;
    reactor_done_ = false;
  }
  reactor_ = std::thread([this] { ReactorLoop(); });
  return Status::OK();
}

void Server::Stop() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (!started_ || stopped_) return;
    stopped_ = true;
  }
  stop_requested_.store(true);
  Wakeup();
  {
    std::unique_lock<std::mutex> lock(lifecycle_mu_);
    bool drained = lifecycle_cv_.wait_for(
        lock,
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::duration<double>(
                options_.stop_drain_timeout_seconds)),
        [this] { return reactor_done_; });
    if (!drained) {
      force_stop_.store(true);
      Wakeup();
      lifecycle_cv_.wait(lock, [this] { return reactor_done_; });
    }
  }
  if (reactor_.joinable()) reactor_.join();

  {
    std::lock_guard<std::mutex> lock(mailbox_->mu);
    mailbox_->closed = true;
    mailbox_->wakeup_fd = -1;
  }
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_read_fd_ >= 0) close(wake_read_fd_);
  if (wake_write_fd_ >= 0) close(wake_write_fd_);
  listen_fd_ = wake_read_fd_ = wake_write_fd_ = -1;
}

void Server::Wakeup() {
  std::lock_guard<std::mutex> lock(mailbox_->mu);
  if (mailbox_->wakeup_fd >= 0) {
    char byte = 1;
    ssize_t ignored = write(mailbox_->wakeup_fd, &byte, 1);
    (void)ignored;
  }
}

void Server::ReactorLoop() {
  std::vector<pollfd> fds;
  std::vector<uint64_t> fd_conn;  // conn_id per pollfd (0 = listen/wake)

  while (true) {
    if (force_stop_.load()) break;
    bool stopping = stop_requested_.load();

    // Graceful exit: stopping, nothing in flight anywhere, all flushed.
    if (stopping) {
      bool busy = false;
      for (const auto& [id, conn] : conns_) {
        if (conn.in_flight > 0 ||
            conn.outbuf.size() > conn.out_offset) {
          busy = true;
          break;
        }
      }
      if (!busy) break;
    }

    fds.clear();
    fd_conn.clear();
    if (!stopping) {
      fds.push_back({listen_fd_, POLLIN, 0});
      fd_conn.push_back(0);
    }
    fds.push_back({wake_read_fd_, POLLIN, 0});
    fd_conn.push_back(0);
    for (const auto& [id, conn] : conns_) {
      short events = 0;
      if (!conn.input_done && !conn.closing) events |= POLLIN;
      if (conn.outbuf.size() > conn.out_offset) events |= POLLOUT;
      if (events == 0) continue;
      fds.push_back({conn.fd, events, 0});
      fd_conn.push_back(id);
    }

    // 100 ms cap so stop/force flags are rechecked even with no traffic.
    poll(fds.data(), fds.size(), 100);

    for (size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      if (fds[i].fd == wake_read_fd_) {
        char buf[256];
        while (read(wake_read_fd_, buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (fds[i].fd == listen_fd_) {
        AcceptNew();
        continue;
      }
      uint64_t conn_id = fd_conn[i];
      if (conns_.find(conn_id) == conns_.end()) continue;
      // POLLHUP can coexist with buffered readable data (half-close
      // after a DRAIN, say) — always let recv() discover the EOF.
      if (fds[i].revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL)) {
        ReadFromConnection(conn_id);
      }
      if (conns_.count(conn_id) && (fds[i].revents & POLLOUT)) {
        FlushConnection(conn_id);
      }
    }

    // Completions can arrive at any moment; drain after I/O so frames
    // queued here are flushed either immediately below or next round.
    DrainMailbox();

    // Opportunistic flush + deferred closes.
    std::vector<uint64_t> to_close;
    for (auto& [id, conn] : conns_) {
      FlushConnection(id);
    }
    for (auto& [id, conn] : conns_) {
      bool flushed = conn.outbuf.size() <= conn.out_offset;
      if (conn.closing && flushed) to_close.push_back(id);
      // Peer hung up and nothing is coming back to it anymore.
      if (conn.input_done && conn.in_flight == 0 && flushed) {
        to_close.push_back(id);
      }
    }
    for (uint64_t id : to_close) CloseConnection(id);
  }

  // Reactor exit: close whatever is left (force stop or drained stop).
  std::vector<uint64_t> remaining;
  remaining.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) remaining.push_back(id);
  for (uint64_t id : remaining) CloseConnection(id);

  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    reactor_done_ = true;
  }
  lifecycle_cv_.notify_all();
}

void Server::AcceptNew() {
  while (true) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: try next round
    if (conns_.size() >=
            static_cast<size_t>(options_.max_connections < 1
                                    ? 1
                                    : options_.max_connections) ||
        stop_requested_.load()) {
      close(fd);
      connections_refused_.fetch_add(1);
      continue;
    }
    SetNonBlocking(fd);
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    uint64_t id = next_conn_id_++;
    Connection conn;
    conn.fd = fd;
    conns_.emplace(id, std::move(conn));
    connections_accepted_.fetch_add(1);
    active_connections_.store(conns_.size());
    if (connections_counter_ != nullptr) connections_counter_->Inc();
    if (connections_gauge_ != nullptr) {
      connections_gauge_->Set(static_cast<double>(conns_.size()));
    }
  }
}

void Server::ReadFromConnection(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection& conn = it->second;

  char buf[64 * 1024];
  while (true) {
    ssize_t n = recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.inbuf.insert(conn.inbuf.end(), buf, buf + n);
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (n == 0) {
      conn.input_done = true;  // EOF; keep delivering completions
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn.input_done = true;
    break;
  }

  size_t offset = 0;
  while (!conn.closing) {
    Frame frame;
    size_t consumed = 0;
    DecodeStatus status =
        DecodeFrame(conn.inbuf.data() + offset, conn.inbuf.size() - offset,
                    &frame, &consumed, options_.max_frame_payload);
    if (status == DecodeStatus::kNeedMore) break;
    if (status != DecodeStatus::kOk) {
      // Framing is lost: tell the peer exactly why, then drop it.
      protocol_errors_.fetch_add(1);
      if (protocol_errors_counter_ != nullptr) {
        protocol_errors_counter_->Inc();
      }
      Frame error;
      error.type = FrameType::kError;
      error.error_code = DecodeStatusToWireError(status);
      error.error_message = DecodeStatusToString(status);
      SendFrame(&conn, error);
      conn.closing = true;
      conn.input_done = true;
      break;
    }
    offset += consumed;
    // The peer's latest frame sets the reply version for this
    // connection: a v1 client keeps getting v1 frames it can decode.
    conn.version = frame.version;
    frames_received_.fetch_add(1);
    if (frames_in_counter_ != nullptr) frames_in_counter_->Inc();
    if (!HandleFrame(conn_id, frame)) break;
    // HandleFrame may have invalidated the iterator's connection.
    auto again = conns_.find(conn_id);
    if (again == conns_.end()) return;
  }
  if (offset > 0) {
    conn.inbuf.erase(conn.inbuf.begin(),
                     conn.inbuf.begin() + static_cast<ptrdiff_t>(offset));
  }
}

bool Server::HandleFrame(uint64_t conn_id, const Frame& frame) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return false;
  Connection& conn = it->second;

  switch (frame.type) {
    case FrameType::kSubmit: {
      Frame reply;
      reply.request_id = frame.request_id;
      if (conn.draining || stop_requested_.load()) {
        reply.type = FrameType::kRejected;
        reply.reject_reason = rt::RejectReason::kShuttingDown;
        submits_rejected_.fetch_add(1);
        if (submit_rejected_shutdown_counter_ != nullptr) {
          submit_rejected_shutdown_counter_->Inc();
        }
        SendFrame(&conn, reply);
        return true;
      }
      auto submitted = std::chrono::steady_clock::now();
      rt::RejectReason reason = rt::RejectReason::kQueueFull;
      bool want_trace = frame.want_trace;
      bool accepted = gateway_->Offer(
          frame.query,
          [mailbox = mailbox_, conn_id, request_id = frame.request_id,
           submitted, want_trace](const workload::QueryRecord& record) {
            PendingCompletion completion;
            completion.conn_id = conn_id;
            completion.request_id = request_id;
            completion.class_id = record.class_id;
            completion.response_seconds = record.ResponseSeconds();
            completion.exec_seconds = record.ExecSeconds();
            completion.cancelled = record.cancelled;
            completion.submitted_wall = submitted;
            if (record.trace != nullptr) {
              // Copy the stage durations here, on the clock thread where
              // the trace was just finalized; the reactor only sees the
              // plain doubles.
              const obs::QueryStageTrace& trace = *record.trace;
              completion.has_trace = true;
              completion.want_trace = want_trace;
              completion.trace_id = trace.trace_id;
              completion.stage_gateway_queue_seconds =
                  trace.GatewayQueueSeconds();
              completion.stage_dispatch_seconds = trace.DispatchSeconds();
              completion.stage_execute_seconds = trace.ExecuteSeconds();
              completion.completed_wall = trace.completed;
            }
            mailbox->Post(std::move(completion));
          },
          &reason);
      if (accepted) {
        conn.in_flight += 1;
        reply.type = FrameType::kAccepted;
        submits_accepted_.fetch_add(1);
        if (submit_accepted_counter_ != nullptr) {
          submit_accepted_counter_->Inc();
        }
      } else {
        reply.type = FrameType::kRejected;
        reply.reject_reason = reason;
        submits_rejected_.fetch_add(1);
        if (reason == rt::RejectReason::kQueueFull) {
          if (submit_rejected_full_counter_ != nullptr) {
            submit_rejected_full_counter_->Inc();
          }
        } else if (submit_rejected_shutdown_counter_ != nullptr) {
          submit_rejected_shutdown_counter_->Inc();
        }
      }
      SendFrame(&conn, reply);
      return true;
    }
    case FrameType::kPing: {
      Frame reply;
      reply.type = FrameType::kPong;
      reply.request_id = frame.request_id;
      SendFrame(&conn, reply);
      return true;
    }
    case FrameType::kStats: {
      Frame reply;
      reply.type = FrameType::kStatsReply;
      reply.request_id = frame.request_id;
      reply.stats.accepted = gateway_->accepted();
      reply.stats.rejected_queue_full = gateway_->rejected_queue_full();
      reply.stats.rejected_shutting_down =
          gateway_->rejected_shutting_down();
      reply.stats.completed = gateway_->completed();
      reply.stats.queue_depth = gateway_->queue_depth();
      reply.stats.connections = conns_.size();
      reply.stats.admitted = gateway_->admitted();
      if (telemetry_ != nullptr) {
        for (int class_id : telemetry_->slo.ObservedClasses()) {
          reply.stats.class_attainment.push_back(
              {class_id, telemetry_->slo.RollingAttainment(class_id)});
        }
      }
      SendFrame(&conn, reply);
      return true;
    }
    case FrameType::kDrain: {
      conn.draining = true;
      conn.drain_request_id = frame.request_id;
      MaybeFinishDrain(conn_id);
      return true;
    }
    case FrameType::kAccepted:
    case FrameType::kRejected:
    case FrameType::kCompleted:
    case FrameType::kPong:
    case FrameType::kDrained:
    case FrameType::kStatsReply:
    case FrameType::kError: {
      // Response frames are server-to-client only.
      protocol_errors_.fetch_add(1);
      if (protocol_errors_counter_ != nullptr) {
        protocol_errors_counter_->Inc();
      }
      Frame error;
      error.type = FrameType::kError;
      error.request_id = frame.request_id;
      error.error_code = WireError::kBadState;
      error.error_message = StrPrintf(
          "%s is a response type", FrameTypeToString(frame.type));
      SendFrame(&conn, error);
      conn.closing = true;
      conn.input_done = true;
      return false;
    }
  }
  return true;
}

void Server::DrainMailbox() {
  std::vector<PendingCompletion> batch;
  {
    std::lock_guard<std::mutex> lock(mailbox_->mu);
    batch.swap(mailbox_->items);
  }
  for (const PendingCompletion& completion : batch) {
    auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) {
      completions_dropped_.fetch_add(1);
      if (completions_dropped_counter_ != nullptr) {
        completions_dropped_counter_->Inc();
      }
      continue;
    }
    Connection& conn = it->second;
    Frame frame;
    frame.type = FrameType::kCompleted;
    frame.request_id = completion.request_id;
    frame.class_id = completion.class_id;
    frame.response_seconds = completion.response_seconds;
    frame.exec_seconds = completion.exec_seconds;
    frame.cancelled = completion.cancelled;
    // The encoder drops the trace context again when the connection
    // negotiated v1.
    if (completion.has_trace && completion.want_trace) {
      frame.has_trace = true;
      frame.trace_id = completion.trace_id;
      frame.stage_gateway_queue_seconds =
          completion.stage_gateway_queue_seconds;
      frame.stage_dispatch_seconds = completion.stage_dispatch_seconds;
      frame.stage_execute_seconds = completion.stage_execute_seconds;
    }
    SendFrame(&conn, frame);
    if (conn.in_flight > 0) conn.in_flight -= 1;
    completions_delivered_.fetch_add(1);
    auto now = std::chrono::steady_clock::now();
    if (turnaround_hist_ != nullptr) {
      turnaround_hist_->Record(
          std::chrono::duration<double>(now - completion.submitted_wall)
              .count());
    }
    // Fourth stage of the trace: completion callback to COMPLETED bytes
    // entering the socket buffer.
    if (completion.has_trace && telemetry_ != nullptr) {
      FlushStageHistogram(completion.class_id)
          ->Record(std::chrono::duration<double>(
                       now - completion.completed_wall)
                       .count());
    }
    MaybeFinishDrain(completion.conn_id);
  }
}

obs::Histogram* Server::FlushStageHistogram(int class_id) {
  auto it = flush_stage_hists_.find(class_id);
  if (it != flush_stage_hists_.end()) return it->second;
  obs::Histogram* hist = telemetry_->registry.GetHistogram(
      "qsched_stage_seconds",
      StrPrintf("class=\"%d\",stage=\"flush\"", class_id));
  flush_stage_hists_.emplace(class_id, hist);
  return hist;
}

void Server::MaybeFinishDrain(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  if (!conn.draining || conn.in_flight > 0 || conn.closing) return;
  Frame frame;
  frame.type = FrameType::kDrained;
  frame.request_id = conn.drain_request_id;
  SendFrame(&conn, frame);
  conn.closing = true;
}

void Server::SendFrame(Connection* conn, Frame frame) {
  frame.version = conn->version;
  EncodeFrame(frame, &conn->outbuf);
  frames_sent_.fetch_add(1);
  if (frames_out_counter_ != nullptr) frames_out_counter_->Inc();
}

void Server::FlushConnection(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  while (conn.out_offset < conn.outbuf.size()) {
    ssize_t n = send(conn.fd, conn.outbuf.data() + conn.out_offset,
                     conn.outbuf.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    // Peer is unreachable; everything still buffered is undeliverable.
    conn.outbuf.clear();
    conn.out_offset = 0;
    conn.input_done = true;
    conn.closing = true;
    return;
  }
  if (conn.out_offset > 0) {
    conn.outbuf.clear();
    conn.out_offset = 0;
  }
}

void Server::CloseConnection(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  // Completions still in flight for this connection will be dropped by
  // DrainMailbox when they surface.
  close(it->second.fd);
  conns_.erase(it);
  active_connections_.store(conns_.size());
  if (connections_gauge_ != nullptr) {
    connections_gauge_->Set(static_cast<double>(conns_.size()));
  }
}

}  // namespace qsched::net
