#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "common/strings.h"

namespace qsched::net {

namespace {

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

void Server::Mailbox::Post(PendingCompletion completion) {
  std::lock_guard<std::mutex> lock(mu);
  if (closed) return;  // server gone; the service still accounted it
  items.push_back(completion);
  if (wakeup_fd >= 0) {
    // One byte is enough to make poll() return; a full pipe already
    // guarantees a pending wakeup, so EAGAIN is fine.
    char byte = 1;
    ssize_t ignored = write(wakeup_fd, &byte, 1);
    (void)ignored;
  }
}

void Server::Mailbox::PostVerdict(PendingVerdict verdict) {
  std::lock_guard<std::mutex> lock(mu);
  if (closed) return;
  verdicts.push_back(verdict);
  if (wakeup_fd >= 0) {
    char byte = 1;
    ssize_t ignored = write(wakeup_fd, &byte, 1);
    (void)ignored;
  }
}

Server::Server(rt::Gateway* gateway, const ServerOptions& options,
               obs::Telemetry* telemetry)
    : Server(static_cast<QueryService*>(nullptr), options, telemetry) {
  owned_service_ = std::make_unique<GatewayService>(gateway, telemetry);
  service_ = owned_service_.get();
}

Server::Server(QueryService* service, const ServerOptions& options,
               obs::Telemetry* telemetry)
    : service_(service), options_(options), telemetry_(telemetry) {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  num_reactors_ = options_.reactors > 0
                      ? options_.reactors
                      : static_cast<int>(std::min<unsigned>(4, hw));
  if (telemetry_ != nullptr) {
    obs::Registry& reg = telemetry_->registry;
    reg.GetGauge("qsched_net_reactors")
        ->Set(static_cast<double>(num_reactors_));
    connections_gauge_ = reg.GetGauge("qsched_net_connections");
    connections_counter_ = reg.GetCounter("qsched_net_connections_total");
    frames_in_counter_ = reg.GetCounter("qsched_net_frames_in_total");
    frames_out_counter_ = reg.GetCounter("qsched_net_frames_out_total");
    protocol_errors_counter_ =
        reg.GetCounter("qsched_net_protocol_errors_total");
    submit_accepted_counter_ =
        reg.GetCounter("qsched_net_submit_accepted_total");
    submit_rejected_full_counter_ = reg.GetCounter(
        "qsched_net_submit_rejected_total", "reason=\"queue_full\"");
    submit_rejected_shutdown_counter_ = reg.GetCounter(
        "qsched_net_submit_rejected_total", "reason=\"shutting_down\"");
    submit_rejected_unavailable_counter_ =
        reg.GetCounter("qsched_net_submit_rejected_total",
                       "reason=\"backend_unavailable\"");
    completions_dropped_counter_ =
        reg.GetCounter("qsched_net_completions_dropped_total");
    turnaround_hist_ =
        reg.GetHistogram("qsched_net_server_turnaround_seconds");
  }
}

Server::~Server() { Stop(); }

Status Server::Start() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (started_) return Status::FailedPrecondition("server already started");
  }

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(StrPrintf("socket: %s", strerror(errno)));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument(
        StrPrintf("bad bind address %s", options_.bind_address.c_str()));
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Status::Internal(StrPrintf(
        "bind %s:%u: %s", options_.bind_address.c_str(),
        static_cast<unsigned>(options_.port), strerror(errno)));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                  &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  if (listen(listen_fd_, 128) < 0 || !SetNonBlocking(listen_fd_)) {
    Status status =
        Status::Internal(StrPrintf("listen: %s", strerror(errno)));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }

  reactors_.clear();
  for (int i = 0; i < num_reactors_; ++i) {
    auto reactor = std::make_unique<Reactor>();
    reactor->index = i;
    reactor->mailbox = std::make_shared<Mailbox>();
    int pipe_fds[2];
    if (pipe(pipe_fds) < 0) {
      Status status = Status::Internal(StrPrintf("pipe: %s", strerror(errno)));
      for (auto& created : reactors_) {
        close(created->wake_read_fd);
        close(created->wake_write_fd);
      }
      reactors_.clear();
      close(listen_fd_);
      listen_fd_ = -1;
      return status;
    }
    reactor->wake_read_fd = pipe_fds[0];
    reactor->wake_write_fd = pipe_fds[1];
    SetNonBlocking(reactor->wake_read_fd);
    SetNonBlocking(reactor->wake_write_fd);
    {
      std::lock_guard<std::mutex> lock(reactor->mailbox->mu);
      reactor->mailbox->wakeup_fd = reactor->wake_write_fd;
    }
    reactors_.push_back(std::move(reactor));
  }

  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    started_ = true;
    reactors_done_ = 0;
  }
  for (auto& reactor : reactors_) {
    Reactor* raw = reactor.get();
    raw->thread = std::thread([this, raw] { ReactorLoop(raw); });
  }
  return Status::OK();
}

void Server::Stop() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (!started_ || stopped_) return;
    stopped_ = true;
  }
  stop_requested_.store(true);
  WakeupAll();
  {
    std::unique_lock<std::mutex> lock(lifecycle_mu_);
    bool drained = lifecycle_cv_.wait_for(
        lock,
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::duration<double>(
                options_.stop_drain_timeout_seconds)),
        [this] { return reactors_done_ == reactors_.size(); });
    if (!drained) {
      force_stop_.store(true);
      WakeupAll();
      lifecycle_cv_.wait(
          lock, [this] { return reactors_done_ == reactors_.size(); });
    }
  }
  for (auto& reactor : reactors_) {
    if (reactor->thread.joinable()) reactor->thread.join();
  }
  for (auto& reactor : reactors_) {
    {
      std::lock_guard<std::mutex> lock(reactor->mailbox->mu);
      reactor->mailbox->closed = true;
      reactor->mailbox->wakeup_fd = -1;
    }
    if (reactor->wake_read_fd >= 0) close(reactor->wake_read_fd);
    if (reactor->wake_write_fd >= 0) close(reactor->wake_write_fd);
    reactor->wake_read_fd = reactor->wake_write_fd = -1;
  }
  if (listen_fd_ >= 0) close(listen_fd_);
  listen_fd_ = -1;
}

void Server::WakeupAll() {
  for (auto& reactor : reactors_) {
    std::lock_guard<std::mutex> lock(reactor->mailbox->mu);
    if (reactor->mailbox->wakeup_fd >= 0) {
      char byte = 1;
      ssize_t ignored = write(reactor->mailbox->wakeup_fd, &byte, 1);
      (void)ignored;
    }
  }
}

void Server::ReactorLoop(Reactor* reactor) {
  std::vector<pollfd> fds;
  std::vector<uint64_t> fd_conn;  // conn_id per pollfd (0 = listen/wake)
  const bool acceptor = reactor->index == 0;

  while (true) {
    if (force_stop_.load()) break;
    bool stopping = stop_requested_.load();

    AdoptHandoff(reactor);

    // Graceful exit: stopping, nothing in flight on THIS reactor, all
    // flushed. Each reactor drains independently; Stop() waits for all.
    if (stopping) {
      bool busy;
      {
        std::lock_guard<std::mutex> lock(reactor->handoff_mu);
        busy = !reactor->handoff.empty();
      }
      for (const auto& [id, conn] : reactor->conns) {
        if (busy) break;
        if (conn.in_flight > 0 || !conn.outq.empty() ||
            !conn.verdict_order.empty()) {
          busy = true;
        }
      }
      if (!busy) break;
    }

    fds.clear();
    fd_conn.clear();
    if (acceptor && !stopping) {
      fds.push_back({listen_fd_, POLLIN, 0});
      fd_conn.push_back(0);
    }
    fds.push_back({reactor->wake_read_fd, POLLIN, 0});
    fd_conn.push_back(0);
    for (const auto& [id, conn] : reactor->conns) {
      short events = 0;
      if (!conn.input_done && !conn.closing) events |= POLLIN;
      if (!conn.outq.empty()) events |= POLLOUT;
      if (events == 0) continue;
      fds.push_back({conn.fd, events, 0});
      fd_conn.push_back(id);
    }

    // 100 ms cap so stop/force flags are rechecked even with no traffic.
    poll(fds.data(), fds.size(), 100);

    for (size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      if (fds[i].fd == reactor->wake_read_fd) {
        char buf[256];
        while (read(reactor->wake_read_fd, buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (acceptor && fds[i].fd == listen_fd_) {
        AcceptNew(reactor);
        continue;
      }
      uint64_t conn_id = fd_conn[i];
      if (reactor->conns.find(conn_id) == reactor->conns.end()) continue;
      // POLLHUP can coexist with buffered readable data (half-close
      // after a DRAIN, say) — always let recv() discover the EOF.
      if (fds[i].revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL)) {
        ReadFromConnection(reactor, conn_id);
      }
      if (reactor->conns.count(conn_id) && (fds[i].revents & POLLOUT)) {
        FlushConnection(reactor, conn_id);
      }
    }

    // Connections dealt to us while we slept in poll().
    AdoptHandoff(reactor);

    // Completions can arrive at any moment; drain after I/O so frames
    // queued here are flushed either immediately below or next round.
    DrainMailbox(reactor);

    // Opportunistic flush + deferred closes.
    std::vector<uint64_t> to_close;
    for (auto& [id, conn] : reactor->conns) {
      FlushConnection(reactor, id);
    }
    for (auto& [id, conn] : reactor->conns) {
      bool flushed = conn.outq.empty();
      if (conn.closing && flushed) to_close.push_back(id);
      // Peer hung up and nothing is coming back to it anymore.
      if (conn.input_done && conn.in_flight == 0 &&
          conn.verdict_order.empty() && flushed) {
        to_close.push_back(id);
      }
    }
    for (uint64_t id : to_close) CloseConnection(reactor, id);
  }

  // Reactor exit: close whatever is left (force stop or drained stop),
  // including accepted connections never adopted from the hand-off.
  std::vector<uint64_t> remaining;
  remaining.reserve(reactor->conns.size());
  for (const auto& [id, conn] : reactor->conns) remaining.push_back(id);
  for (uint64_t id : remaining) CloseConnection(reactor, id);
  {
    std::lock_guard<std::mutex> lock(reactor->handoff_mu);
    for (const auto& [id, fd] : reactor->handoff) {
      close(fd);
      active_connections_.fetch_sub(1);
    }
    reactor->handoff.clear();
  }
  if (connections_gauge_ != nullptr) {
    connections_gauge_->Set(static_cast<double>(active_connections_.load()));
  }

  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    ++reactors_done_;
  }
  lifecycle_cv_.notify_all();
}

void Server::AcceptNew(Reactor* reactor) {
  while (true) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: try next round
    size_t cap = static_cast<size_t>(
        options_.max_connections < 1 ? 1 : options_.max_connections);
    // The cap is global across reactors: active_connections_ counts
    // every accepted-and-not-yet-closed connection, including ones
    // parked in a hand-off queue.
    if (active_connections_.load() >= cap || stop_requested_.load()) {
      // Count before close: the peer observes the refusal the instant
      // the fd closes, and a caller reacting to it must already see a
      // non-zero refused counter.
      connections_refused_.fetch_add(1);
      close(fd);
      continue;
    }
    SetNonBlocking(fd);
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    uint64_t id = next_conn_id_.fetch_add(1);
    active_connections_.fetch_add(1);
    connections_accepted_.fetch_add(1);
    if (connections_counter_ != nullptr) connections_counter_->Inc();
    if (connections_gauge_ != nullptr) {
      connections_gauge_->Set(
          static_cast<double>(active_connections_.load()));
    }
    // Deal round-robin: our own shard adopts inline, any other gets the
    // fd parked in its hand-off queue and a wakeup byte.
    Reactor* target = reactors_[next_reactor_++ % reactors_.size()].get();
    if (target == reactor) {
      Connection conn;
      conn.fd = fd;
      reactor->conns.emplace(id, std::move(conn));
    } else {
      {
        std::lock_guard<std::mutex> lock(target->handoff_mu);
        target->handoff.emplace_back(id, fd);
      }
      char byte = 1;
      ssize_t ignored = write(target->wake_write_fd, &byte, 1);
      (void)ignored;
    }
  }
}

void Server::AdoptHandoff(Reactor* reactor) {
  std::vector<std::pair<uint64_t, int>> batch;
  {
    std::lock_guard<std::mutex> lock(reactor->handoff_mu);
    batch.swap(reactor->handoff);
  }
  for (const auto& [id, fd] : batch) {
    Connection conn;
    conn.fd = fd;
    reactor->conns.emplace(id, std::move(conn));
  }
}

void Server::ReadFromConnection(Reactor* reactor, uint64_t conn_id) {
  auto it = reactor->conns.find(conn_id);
  if (it == reactor->conns.end()) return;
  Connection& conn = it->second;

  char buf[64 * 1024];
  while (true) {
    ssize_t n = recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.inbuf.insert(conn.inbuf.end(), buf, buf + n);
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (n == 0) {
      conn.input_done = true;  // EOF; keep delivering completions
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn.input_done = true;
    break;
  }

  // Drain every complete frame this read produced before returning to
  // poll(): a pipelining client may have dozens of SUBMITs in one
  // segment, and each loop turn below costs no syscall.
  size_t offset = 0;
  while (!conn.closing) {
    Frame frame;
    size_t consumed = 0;
    DecodeStatus status =
        DecodeFrame(conn.inbuf.data() + offset, conn.inbuf.size() - offset,
                    &frame, &consumed, options_.max_frame_payload);
    if (status == DecodeStatus::kNeedMore) break;
    if (status != DecodeStatus::kOk) {
      // Framing is lost: tell the peer exactly why, then drop it.
      protocol_errors_.fetch_add(1);
      if (protocol_errors_counter_ != nullptr) {
        protocol_errors_counter_->Inc();
      }
      Frame error;
      error.type = FrameType::kError;
      error.error_code = DecodeStatusToWireError(status);
      error.error_message = DecodeStatusToString(status);
      SendFrame(&conn, error);
      conn.closing = true;
      conn.input_done = true;
      break;
    }
    offset += consumed;
    // The peer's latest frame sets the reply version for this
    // connection: a v1 client keeps getting v1 frames it can decode.
    conn.version = frame.version;
    frames_received_.fetch_add(1);
    if (frames_in_counter_ != nullptr) frames_in_counter_->Inc();
    if (!HandleFrame(reactor, conn_id, frame)) break;
    // HandleFrame may have invalidated the iterator's connection.
    auto again = reactor->conns.find(conn_id);
    if (again == reactor->conns.end()) return;
  }
  if (offset > 0) {
    conn.inbuf.erase(conn.inbuf.begin(),
                     conn.inbuf.begin() + static_cast<ptrdiff_t>(offset));
  }
}

bool Server::HandleFrame(Reactor* reactor, uint64_t conn_id,
                         const Frame& frame) {
  auto it = reactor->conns.find(conn_id);
  if (it == reactor->conns.end()) return false;
  Connection& conn = it->second;

  switch (frame.type) {
    case FrameType::kSubmit: {
      Frame reply;
      reply.request_id = frame.request_id;
      if (conn.draining || stop_requested_.load()) {
        reply.type = FrameType::kRejected;
        reply.reject_reason = rt::RejectReason::kShuttingDown;
        submits_rejected_.fetch_add(1);
        if (submit_rejected_shutdown_counter_ != nullptr) {
          submit_rejected_shutdown_counter_->Inc();
        }
        SendFrame(&conn, reply);
        return true;
      }
      auto submitted = std::chrono::steady_clock::now();
      const uint64_t request_id = frame.request_id;
      // Both hooks capture THIS reactor's mailbox, which is what routes
      // the verdict/completion back to the reactor that owns the
      // connection.
      SubmitDisposition disposition = service_->Submit(
          frame.query, frame.want_trace,
          [mailbox = reactor->mailbox, conn_id, request_id](
              bool accepted, rt::RejectReason why) {
            mailbox->PostVerdict({conn_id, request_id, accepted, why});
          },
          [mailbox = reactor->mailbox, conn_id, request_id,
           submitted](const ServiceCompletion& payload) {
            PendingCompletion completion;
            completion.conn_id = conn_id;
            completion.request_id = request_id;
            completion.submitted_wall = submitted;
            completion.payload = payload;
            mailbox->Post(std::move(completion));
          });
      if (disposition.kind == SubmitDisposition::Kind::kDeferred) {
        // The verdict will surface through the mailbox; park the slot so
        // verdicts still go out in submission order.
        conn.verdict_order.push_back(request_id);
        return true;
      }
      const bool accepted =
          disposition.kind == SubmitDisposition::Kind::kAccepted;
      if (conn.verdict_order.empty()) {
        // Fast path (always taken on the direct gateway path): nothing
        // older is awaiting a verdict, so answer inline.
        EmitVerdict(&conn, request_id, accepted, disposition.reason);
      } else {
        // A deferred verdict is still owed for an older SUBMIT: even a
        // synchronous verdict must queue behind it.
        conn.verdict_order.push_back(request_id);
        conn.verdicts_ready.emplace(
            request_id, std::make_pair(accepted, disposition.reason));
      }
      return true;
    }
    case FrameType::kPing: {
      Frame reply;
      reply.type = FrameType::kPong;
      reply.request_id = frame.request_id;
      SendFrame(&conn, reply);
      return true;
    }
    case FrameType::kStats: {
      Frame reply;
      reply.type = FrameType::kStatsReply;
      reply.request_id = frame.request_id;
      reply.stats = service_->Stats();
      reply.stats.connections = active_connections_.load();
      SendFrame(&conn, reply);
      return true;
    }
    case FrameType::kDrain: {
      conn.draining = true;
      conn.drain_request_id = frame.request_id;
      MaybeFinishDrain(reactor, conn_id);
      return true;
    }
    case FrameType::kAccepted:
    case FrameType::kRejected:
    case FrameType::kCompleted:
    case FrameType::kPong:
    case FrameType::kDrained:
    case FrameType::kStatsReply:
    case FrameType::kError: {
      // Response frames are server-to-client only.
      protocol_errors_.fetch_add(1);
      if (protocol_errors_counter_ != nullptr) {
        protocol_errors_counter_->Inc();
      }
      Frame error;
      error.type = FrameType::kError;
      error.request_id = frame.request_id;
      error.error_code = WireError::kBadState;
      error.error_message = StrPrintf(
          "%s is a response type", FrameTypeToString(frame.type));
      SendFrame(&conn, error);
      conn.closing = true;
      conn.input_done = true;
      return false;
    }
  }
  return true;
}

void Server::DrainMailbox(Reactor* reactor) {
  std::vector<PendingVerdict> verdict_batch;
  std::vector<PendingCompletion> batch;
  {
    std::lock_guard<std::mutex> lock(reactor->mailbox->mu);
    verdict_batch.swap(reactor->mailbox->verdicts);
    batch.swap(reactor->mailbox->items);
  }
  // Verdicts first: a service fires a query's verdict strictly before
  // its completion, and both land in the same mutex-ordered mailbox, so
  // after this loop every completion in `batch` has its verdict either
  // already emitted or parked in verdicts_ready.
  for (const PendingVerdict& verdict : verdict_batch) {
    auto it = reactor->conns.find(verdict.conn_id);
    if (it == reactor->conns.end()) continue;  // conn gone; see below
    it->second.verdicts_ready.emplace(
        verdict.request_id,
        std::make_pair(verdict.accepted, verdict.reason));
    ReleaseReadyVerdicts(reactor, verdict.conn_id);
  }
  for (PendingCompletion& completion : batch) {
    auto it = reactor->conns.find(completion.conn_id);
    if (it == reactor->conns.end()) {
      completions_dropped_.fetch_add(1);
      if (completions_dropped_counter_ != nullptr) {
        completions_dropped_counter_->Inc();
      }
      continue;
    }
    Connection& conn = it->second;
    if (conn.verdicts_ready.count(completion.request_id) > 0) {
      // Its ACCEPTED frame has not gone out yet (an older SUBMIT's
      // verdict is still owed); the completion rides out right behind
      // the verdict in ReleaseReadyVerdicts.
      conn.held_completions.emplace(completion.request_id,
                                    std::move(completion));
      continue;
    }
    DeliverCompletion(reactor, &conn, completion);
    MaybeFinishDrain(reactor, completion.conn_id);
  }
}

void Server::EmitVerdict(Connection* conn, uint64_t request_id,
                         bool accepted, rt::RejectReason reason) {
  Frame reply;
  reply.request_id = request_id;
  if (accepted) {
    conn->in_flight += 1;
    reply.type = FrameType::kAccepted;
    submits_accepted_.fetch_add(1);
    if (submit_accepted_counter_ != nullptr) {
      submit_accepted_counter_->Inc();
    }
  } else {
    reply.type = FrameType::kRejected;
    reply.reject_reason = reason;
    submits_rejected_.fetch_add(1);
    if (reason == rt::RejectReason::kQueueFull) {
      if (submit_rejected_full_counter_ != nullptr) {
        submit_rejected_full_counter_->Inc();
      }
    } else if (reason == rt::RejectReason::kBackendUnavailable) {
      if (submit_rejected_unavailable_counter_ != nullptr) {
        submit_rejected_unavailable_counter_->Inc();
      }
    } else if (submit_rejected_shutdown_counter_ != nullptr) {
      submit_rejected_shutdown_counter_->Inc();
    }
  }
  SendFrame(conn, reply);
}

void Server::ReleaseReadyVerdicts(Reactor* reactor, uint64_t conn_id) {
  auto it = reactor->conns.find(conn_id);
  if (it == reactor->conns.end()) return;
  Connection& conn = it->second;
  while (!conn.verdict_order.empty()) {
    const uint64_t request_id = conn.verdict_order.front();
    auto ready = conn.verdicts_ready.find(request_id);
    if (ready == conn.verdicts_ready.end()) break;  // still deferred
    const auto [accepted, reason] = ready->second;
    conn.verdicts_ready.erase(ready);
    conn.verdict_order.pop_front();
    EmitVerdict(&conn, request_id, accepted, reason);
    auto held = conn.held_completions.find(request_id);
    if (held != conn.held_completions.end()) {
      PendingCompletion completion = std::move(held->second);
      conn.held_completions.erase(held);
      DeliverCompletion(reactor, &conn, completion);
    }
  }
  MaybeFinishDrain(reactor, conn_id);
}

void Server::DeliverCompletion(Reactor* reactor, Connection* conn,
                               const PendingCompletion& completion) {
  const ServiceCompletion& payload = completion.payload;
  Frame frame;
  frame.type = FrameType::kCompleted;
  frame.request_id = completion.request_id;
  frame.class_id = payload.class_id;
  frame.response_seconds = payload.response_seconds;
  frame.exec_seconds = payload.exec_seconds;
  frame.cancelled = payload.cancelled;
  // The encoder drops the trace context again when the connection
  // negotiated v1.
  if (payload.has_trace && payload.want_trace) {
    frame.has_trace = true;
    frame.trace_id = payload.trace_id;
    frame.stage_gateway_queue_seconds =
        payload.stage_gateway_queue_seconds;
    frame.stage_dispatch_seconds = payload.stage_dispatch_seconds;
    frame.stage_execute_seconds = payload.stage_execute_seconds;
  }
  SendFrame(conn, frame);
  if (conn->in_flight > 0) conn->in_flight -= 1;
  completions_delivered_.fetch_add(1);
  auto now = std::chrono::steady_clock::now();
  if (turnaround_hist_ != nullptr) {
    turnaround_hist_->Record(
        std::chrono::duration<double>(now - completion.submitted_wall)
            .count());
  }
  // Fourth stage of the trace: completion callback to COMPLETED bytes
  // entering the socket buffer.
  if (payload.has_trace && telemetry_ != nullptr) {
    FlushStageHistogram(reactor, payload.class_id)
        ->Record(
            std::chrono::duration<double>(now - payload.completed_wall)
                .count());
  }
}

obs::Histogram* Server::FlushStageHistogram(Reactor* reactor, int class_id) {
  auto it = reactor->flush_stage_hists.find(class_id);
  if (it != reactor->flush_stage_hists.end()) return it->second;
  obs::Histogram* hist = telemetry_->registry.GetHistogram(
      "qsched_stage_seconds",
      StrPrintf("class=\"%d\",stage=\"flush\"", class_id));
  reactor->flush_stage_hists.emplace(class_id, hist);
  return hist;
}

void Server::MaybeFinishDrain(Reactor* reactor, uint64_t conn_id) {
  auto it = reactor->conns.find(conn_id);
  if (it == reactor->conns.end()) return;
  Connection& conn = it->second;
  if (!conn.draining || conn.in_flight > 0 ||
      !conn.verdict_order.empty() || conn.closing) {
    return;
  }
  Frame frame;
  frame.type = FrameType::kDrained;
  frame.request_id = conn.drain_request_id;
  SendFrame(&conn, frame);
  conn.closing = true;
}

void Server::SendFrame(Connection* conn, Frame frame) {
  frame.version = conn->version;
  // Coalesce into the open tail buffer. Only the front buffer can be
  // partially flushed, so appending to the back is safe — unless the
  // back IS the partially-flushed front, in which case open a new one.
  if (conn->outq.empty() ||
      (conn->outq.size() == 1 && conn->front_offset > 0)) {
    conn->outq.emplace_back();
  }
  EncodeFrame(frame, &conn->outq.back());
  frames_sent_.fetch_add(1);
  if (frames_out_counter_ != nullptr) frames_out_counter_->Inc();
}

void Server::FlushConnection(Reactor* reactor, uint64_t conn_id) {
  auto it = reactor->conns.find(conn_id);
  if (it == reactor->conns.end()) return;
  Connection& conn = it->second;
  while (!conn.outq.empty()) {
    // Gather the queued buffers into one syscall (sendmsg is writev
    // with MSG_NOSIGNAL): one call can carry many COMPLETED frames.
    constexpr int kMaxIov = 64;
    struct iovec iov[kMaxIov];
    int iovcnt = 0;
    for (auto buf = conn.outq.begin();
         buf != conn.outq.end() && iovcnt < kMaxIov; ++buf, ++iovcnt) {
      size_t skip = iovcnt == 0 ? conn.front_offset : 0;
      iov[iovcnt].iov_base = buf->data() + skip;
      iov[iovcnt].iov_len = buf->size() - skip;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(iovcnt);
    ssize_t n = sendmsg(conn.fd, &msg, MSG_NOSIGNAL);
    if (n > 0) {
      size_t left = static_cast<size_t>(n);
      while (left > 0) {
        size_t remaining = conn.outq.front().size() - conn.front_offset;
        if (left >= remaining) {
          left -= remaining;
          conn.outq.pop_front();
          conn.front_offset = 0;
        } else {
          conn.front_offset += left;
          left = 0;
        }
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    // Peer is unreachable; everything still buffered is undeliverable.
    conn.outq.clear();
    conn.front_offset = 0;
    conn.input_done = true;
    conn.closing = true;
    return;
  }
}

void Server::CloseConnection(Reactor* reactor, uint64_t conn_id) {
  auto it = reactor->conns.find(conn_id);
  if (it == reactor->conns.end()) return;
  // Completions still in flight for this connection will be dropped by
  // DrainMailbox when they surface.
  close(it->second.fd);
  reactor->conns.erase(it);
  active_connections_.fetch_sub(1);
  if (connections_gauge_ != nullptr) {
    connections_gauge_->Set(
        static_cast<double>(active_connections_.load()));
  }
}

}  // namespace qsched::net
