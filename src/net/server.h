#ifndef QSCHED_NET_SERVER_H_
#define QSCHED_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/frame.h"
#include "obs/telemetry.h"
#include "rt/gateway.h"

namespace qsched::net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; the bound port is available via port() after Start().
  uint16_t port = 0;
  /// Connections beyond this are accepted and immediately closed.
  int max_connections = 64;
  /// Decoder payload ceiling (bytes) for inbound frames.
  size_t max_frame_payload = kMaxPayloadBytes;
  /// How long Stop() waits for in-flight queries to complete and their
  /// COMPLETED frames to flush before force-closing.
  double stop_drain_timeout_seconds = 30.0;
};

/// TCP front-end of the real-time runtime: one reactor thread multiplexes
/// N client connections with poll(), decodes length-prefixed frames
/// (net/frame.h), and feeds SUBMITs into the rt::Gateway. Admission
/// verdicts go back immediately (ACCEPTED, or REJECTED{reason} straight
/// from the gateway's backpressure — a full queue is never a silent
/// drop), and each query's COMPLETED frame is routed to the connection
/// that submitted it via the gateway's per-query completion hook.
///
/// Threading model (see DESIGN.md §9): the reactor thread owns every
/// connection object and all socket I/O. Completion callbacks fire on the
/// runtime's clock thread, under the core lock — they must not touch
/// sockets, so they post {connection, request_id, outcome} records to a
/// mutex-guarded completion mailbox and tickle the reactor through a
/// wakeup pipe; the reactor drains the mailbox and writes the frames.
/// The mailbox is shared via shared_ptr with every pending callback, so a
/// completion that outlives Stop() lands in a closed mailbox instead of
/// freed memory.
///
/// Shutdown is drain-then-close: Stop() ends accepting, rejects new
/// SUBMITs (REJECTED{SHUTTING_DOWN}), waits until every in-flight query
/// has completed and every outbound byte has flushed, then closes all
/// connections. A client that got ACCEPTED therefore gets its COMPLETED
/// even when Stop() races its submission.
///
/// Protocol errors (malformed / truncated / oversized / bad-version
/// frames) never crash the server: the offender gets an ERROR frame with
/// the specific code and its connection is closed; other connections are
/// unaffected.
class Server {
 public:
  /// `gateway` (started) and `telemetry` (optional) must outlive the
  /// server. The runtime that owns the gateway must stay up until Stop()
  /// returns, so completions can drain.
  Server(rt::Gateway* gateway, const ServerOptions& options,
         obs::Telemetry* telemetry = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the reactor thread.
  Status Start();

  /// The actually-bound port (after Start(); 0 before).
  uint16_t port() const { return port_; }

  /// Graceful drain-then-close (see class comment). Idempotent.
  void Stop();

  // Accounting (safe from any thread).
  uint64_t connections_accepted() const { return connections_accepted_; }
  uint64_t connections_refused() const { return connections_refused_; }
  size_t active_connections() const { return active_connections_; }
  uint64_t frames_received() const { return frames_received_; }
  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t protocol_errors() const { return protocol_errors_; }
  uint64_t submits_accepted() const { return submits_accepted_; }
  uint64_t submits_rejected() const { return submits_rejected_; }
  uint64_t completions_delivered() const { return completions_delivered_; }
  /// Completions whose connection was already gone (client disconnected
  /// with queries in flight); the queries still ran and are accounted by
  /// the gateway.
  uint64_t completions_dropped() const { return completions_dropped_; }

 private:
  /// One finished query on its way back to a connection. Posted by the
  /// gateway completion callback (clock thread), consumed by the reactor.
  struct PendingCompletion {
    uint64_t conn_id = 0;
    uint64_t request_id = 0;
    int32_t class_id = 0;
    double response_seconds = 0.0;
    double exec_seconds = 0.0;
    bool cancelled = false;
    std::chrono::steady_clock::time_point submitted_wall;
    /// Stage breakdown copied from the query's obs::QueryStageTrace on
    /// the clock thread (the trace object itself stays there). has_trace
    /// gates the local flush-stage histogram; want_trace additionally
    /// gates the wire trace context (the client asked for it and speaks
    /// v2).
    bool has_trace = false;
    bool want_trace = false;
    uint64_t trace_id = 0;
    double stage_gateway_queue_seconds = 0.0;
    double stage_dispatch_seconds = 0.0;
    double stage_execute_seconds = 0.0;
    std::chrono::steady_clock::time_point completed_wall;
  };

  /// The completion mailbox shared with in-flight callbacks (see class
  /// comment). `wakeup_fd` is the pipe's write end; -1 once closed.
  struct Mailbox {
    std::mutex mu;
    std::vector<PendingCompletion> items;
    int wakeup_fd = -1;
    bool closed = false;

    void Post(PendingCompletion completion);
  };

  struct Connection {
    int fd = -1;
    std::vector<uint8_t> inbuf;
    std::vector<uint8_t> outbuf;
    size_t out_offset = 0;
    uint64_t in_flight = 0;
    /// Wire version negotiated per connection: every reply is encoded in
    /// the version of the last frame the peer sent. Starts at v1 (the
    /// safe choice — every decoder accepts v1) until the first frame
    /// arrives.
    uint8_t version = kMinProtocolVersion;
    /// DRAIN received: no more SUBMITs; DRAINED + close once idle.
    bool draining = false;
    uint64_t drain_request_id = 0;
    /// Flush outbuf, then close (protocol error or completed drain).
    bool closing = false;
    /// Input is done (peer EOF or error); stop polling POLLIN.
    bool input_done = false;
  };

  void ReactorLoop();
  void AcceptNew();
  void ReadFromConnection(uint64_t conn_id);
  /// Returns false when the connection errored and should stop reading.
  bool HandleFrame(uint64_t conn_id, const Frame& frame);
  void DrainMailbox();
  /// Per-class qsched_stage_seconds{stage="flush"} histogram (reactor
  /// thread only).
  obs::Histogram* FlushStageHistogram(int class_id);
  /// Stamps the connection's negotiated version on the frame, encodes it
  /// into the outbuf and counts it.
  void SendFrame(Connection* conn, Frame frame);
  void FlushConnection(uint64_t conn_id);
  void CloseConnection(uint64_t conn_id);
  void MaybeFinishDrain(uint64_t conn_id);
  void Wakeup();

  rt::Gateway* gateway_;
  ServerOptions options_;
  obs::Telemetry* telemetry_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  uint16_t port_ = 0;
  std::thread reactor_;
  std::shared_ptr<Mailbox> mailbox_;

  std::mutex lifecycle_mu_;
  std::condition_variable lifecycle_cv_;
  bool started_ = false;
  bool stopped_ = false;
  bool reactor_done_ = false;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> force_stop_{false};

  /// Reactor-owned; only sizes/counters leak out through atomics.
  std::map<uint64_t, Connection> conns_;
  uint64_t next_conn_id_ = 1;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_refused_{0};
  std::atomic<size_t> active_connections_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> submits_accepted_{0};
  std::atomic<uint64_t> submits_rejected_{0};
  std::atomic<uint64_t> completions_delivered_{0};
  std::atomic<uint64_t> completions_dropped_{0};

  obs::Gauge* connections_gauge_ = nullptr;
  obs::Counter* connections_counter_ = nullptr;
  obs::Counter* frames_in_counter_ = nullptr;
  obs::Counter* frames_out_counter_ = nullptr;
  obs::Counter* protocol_errors_counter_ = nullptr;
  obs::Counter* submit_accepted_counter_ = nullptr;
  obs::Counter* submit_rejected_full_counter_ = nullptr;
  obs::Counter* submit_rejected_shutdown_counter_ = nullptr;
  obs::Counter* completions_dropped_counter_ = nullptr;
  obs::Histogram* turnaround_hist_ = nullptr;
  /// Reactor-owned cache for FlushStageHistogram.
  std::map<int, obs::Histogram*> flush_stage_hists_;
};

}  // namespace qsched::net

#endif  // QSCHED_NET_SERVER_H_
