#ifndef QSCHED_NET_SERVER_H_
#define QSCHED_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/frame.h"
#include "net/service.h"
#include "obs/telemetry.h"
#include "rt/gateway.h"

namespace qsched::net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; the bound port is available via port() after Start().
  uint16_t port = 0;
  /// Connections beyond this (across all reactors) are accepted and
  /// immediately closed.
  int max_connections = 64;
  /// Reactor threads multiplexing connections. 0 = auto:
  /// min(4, hardware_concurrency).
  int reactors = 0;
  /// Decoder payload ceiling (bytes) for inbound frames.
  size_t max_frame_payload = kMaxPayloadBytes;
  /// How long Stop() waits for in-flight queries to complete and their
  /// COMPLETED frames to flush before force-closing.
  double stop_drain_timeout_seconds = 30.0;
};

/// TCP front-end of the real-time runtime: N reactor threads multiplex
/// client connections with poll(), decode length-prefixed frames
/// (net/frame.h), and feed SUBMITs into a QueryService — normally the
/// local rt::Gateway (GatewayService), or a cluster Router fanning out
/// to remote backends. Admission verdicts go back as soon as the
/// service knows them (ACCEPTED, or REJECTED{reason} — a full queue or
/// a dead backend is never a silent drop), and each query's COMPLETED
/// frame is routed to the connection that submitted it via the
/// service's per-query completion hook.
///
/// A service may defer a verdict (SubmitDisposition::kDeferred — the
/// router waiting on a backend round-trip). The wire contract that
/// verdicts surface in per-connection submission order still holds: a
/// resolved verdict for a younger SUBMIT is parked until every older
/// SUBMIT's verdict has been sent, and a COMPLETED whose verdict frame
/// has not gone out yet is parked behind it the same way. On the
/// direct gateway path verdicts are synchronous, nothing is ever
/// parked, and the fast path is byte-for-byte the pre-cluster one.
///
/// Threading model (see DESIGN.md §8-§9). Connections are sharded across
/// reactors: reactor 0 owns the listening socket and hands each accepted
/// fd round-robin to a reactor over that reactor's hand-off queue +
/// wakeup pipe; from then on, exactly one reactor thread owns the
/// connection object and all its socket I/O — reactors share no
/// connection state, so they never lock against each other on the data
/// path. A connection's read loop drains every complete frame per
/// read(), and its responses are queued as per-frame buffers and flushed
/// with one writev()-style gathered syscall, so one syscall can carry
/// many COMPLETED frames.
///
/// Completion callbacks fire on the runtime's clock thread, under the
/// core lock — they must not touch sockets, so they post {connection,
/// request_id, outcome} records to the owning reactor's mutex-guarded
/// completion mailbox and tickle that reactor through its wakeup pipe;
/// the reactor drains the mailbox and writes the frames. Each mailbox is
/// shared via shared_ptr with every pending callback, so a completion
/// that outlives Stop() lands in a closed mailbox instead of freed
/// memory.
///
/// Shutdown is drain-then-close: Stop() ends accepting, rejects new
/// SUBMITs (REJECTED{SHUTTING_DOWN}), waits until every reactor's
/// in-flight queries have completed and every outbound byte has flushed,
/// then closes all connections. A client that got ACCEPTED therefore
/// gets its COMPLETED even when Stop() races its submission.
///
/// Protocol errors (malformed / truncated / oversized / bad-version
/// frames) never crash the server: the offender gets an ERROR frame with
/// the specific code and its connection is closed; other connections —
/// on the same reactor or any other — are unaffected.
class Server {
 public:
  /// Direct-path convenience: serves a local rt::Gateway (started),
  /// which — like `telemetry` (optional) — must outlive the server. The
  /// runtime that owns the gateway must stay up until Stop() returns,
  /// so completions can drain.
  Server(rt::Gateway* gateway, const ServerOptions& options,
         obs::Telemetry* telemetry = nullptr);

  /// Generic front: serves any QueryService (must outlive the server,
  /// and keep honoring its exactly-once callback contract until Stop()
  /// returns).
  Server(QueryService* service, const ServerOptions& options,
         obs::Telemetry* telemetry = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the reactor threads.
  Status Start();

  /// The actually-bound port (after Start(); 0 before).
  uint16_t port() const { return port_; }

  /// The resolved reactor count (never 0).
  int reactors() const { return num_reactors_; }

  /// Graceful drain-then-close (see class comment). Idempotent.
  void Stop();

  // Accounting (safe from any thread).
  uint64_t connections_accepted() const { return connections_accepted_; }
  uint64_t connections_refused() const { return connections_refused_; }
  size_t active_connections() const { return active_connections_; }
  uint64_t frames_received() const { return frames_received_; }
  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t protocol_errors() const { return protocol_errors_; }
  uint64_t submits_accepted() const { return submits_accepted_; }
  uint64_t submits_rejected() const { return submits_rejected_; }
  uint64_t completions_delivered() const { return completions_delivered_; }
  /// Completions whose connection was already gone (client disconnected
  /// with queries in flight); the queries still ran and are accounted by
  /// the gateway.
  uint64_t completions_dropped() const { return completions_dropped_; }

 private:
  /// One finished query on its way back to a connection. Posted by the
  /// service's completion callback (clock thread or a cluster channel
  /// thread), consumed by the owning reactor.
  struct PendingCompletion {
    uint64_t conn_id = 0;
    uint64_t request_id = 0;
    std::chrono::steady_clock::time_point submitted_wall;
    ServiceCompletion payload;
  };

  /// A deferred admission verdict on its way back to a connection.
  struct PendingVerdict {
    uint64_t conn_id = 0;
    uint64_t request_id = 0;
    bool accepted = false;
    rt::RejectReason reason = rt::RejectReason::kQueueFull;
  };

  /// A reactor's mailbox, shared with in-flight callbacks (see class
  /// comment). `wakeup_fd` is that reactor's pipe write end; -1 once
  /// closed. Verdicts and completions share the mutex, so posting order
  /// (a service fires the verdict strictly before the completion) is
  /// preserved across the swap in DrainMailbox.
  struct Mailbox {
    std::mutex mu;
    std::vector<PendingCompletion> items;
    std::vector<PendingVerdict> verdicts;
    int wakeup_fd = -1;
    bool closed = false;

    void Post(PendingCompletion completion);
    void PostVerdict(PendingVerdict verdict);
  };

  struct Connection {
    int fd = -1;
    std::vector<uint8_t> inbuf;
    /// Outbound frames as queued buffers: SendFrame appends into the
    /// open tail buffer, FlushConnection gathers the queue into one
    /// sendmsg (writev) call. Only the front buffer can be partially
    /// sent; `front_offset` is how much of it already went out.
    std::deque<std::vector<uint8_t>> outq;
    size_t front_offset = 0;
    uint64_t in_flight = 0;
    /// Wire version negotiated per connection: every reply is encoded in
    /// the version of the last frame the peer sent. Starts at v1 (the
    /// safe choice — every decoder accepts v1) until the first frame
    /// arrives.
    uint8_t version = kMinProtocolVersion;
    /// DRAIN received: no more SUBMITs; DRAINED + close once idle.
    bool draining = false;
    uint64_t drain_request_id = 0;
    /// Flush outq, then close (protocol error or completed drain).
    bool closing = false;
    /// Input is done (peer EOF or error); stop polling POLLIN.
    bool input_done = false;
    /// Deferred-verdict ordering (empty on the direct gateway path).
    /// request_ids whose verdict frame has not been sent yet, in
    /// submission order; verdicts that resolved out of order wait in
    /// `verdicts_ready`, and completions that beat their own verdict
    /// frame wait in `held_completions`, keyed the same way.
    std::deque<uint64_t> verdict_order;
    std::map<uint64_t, std::pair<bool, rt::RejectReason>> verdicts_ready;
    std::map<uint64_t, PendingCompletion> held_completions;
  };

  /// One reactor shard. Everything below the hand-off queue is owned by
  /// the reactor's own thread; only sizes/counters leak out through the
  /// server-level atomics.
  struct Reactor {
    int index = 0;
    int wake_read_fd = -1;
    int wake_write_fd = -1;
    std::shared_ptr<Mailbox> mailbox;
    std::thread thread;

    /// Accepted fds (paired with their conn ids) parked by reactor 0
    /// until this reactor adopts them.
    std::mutex handoff_mu;
    std::vector<std::pair<uint64_t, int>> handoff;

    // Reactor-thread-owned.
    std::map<uint64_t, Connection> conns;
    std::map<int, obs::Histogram*> flush_stage_hists;
  };

  void ReactorLoop(Reactor* reactor);
  /// Accepts new connections (reactor 0 only) and deals them round-robin
  /// to all reactors.
  void AcceptNew(Reactor* reactor);
  /// Registers fds parked in the reactor's hand-off queue.
  void AdoptHandoff(Reactor* reactor);
  void ReadFromConnection(Reactor* reactor, uint64_t conn_id);
  /// Returns false when the connection errored and should stop reading.
  bool HandleFrame(Reactor* reactor, uint64_t conn_id, const Frame& frame);
  void DrainMailbox(Reactor* reactor);
  /// Sends the verdict frame for one SUBMIT and does its accounting
  /// (counter bumps, in_flight on accept).
  void EmitVerdict(Connection* conn, uint64_t request_id, bool accepted,
                   rt::RejectReason reason);
  /// Releases every in-order verdict that has resolved, and any held
  /// completion riding right behind its verdict frame.
  void ReleaseReadyVerdicts(Reactor* reactor, uint64_t conn_id);
  /// Sends one COMPLETED frame and does its accounting.
  void DeliverCompletion(Reactor* reactor, Connection* conn,
                         const PendingCompletion& completion);
  /// Per-class qsched_stage_seconds{stage="flush"} histogram (owning
  /// reactor thread only).
  obs::Histogram* FlushStageHistogram(Reactor* reactor, int class_id);
  /// Stamps the connection's negotiated version on the frame, encodes it
  /// into the outq and counts it.
  void SendFrame(Connection* conn, Frame frame);
  void FlushConnection(Reactor* reactor, uint64_t conn_id);
  void CloseConnection(Reactor* reactor, uint64_t conn_id);
  void MaybeFinishDrain(Reactor* reactor, uint64_t conn_id);
  /// Tickles every reactor's wakeup pipe.
  void WakeupAll();

  QueryService* service_;
  /// Backing GatewayService when constructed from a bare gateway.
  std::unique_ptr<GatewayService> owned_service_;
  ServerOptions options_;
  obs::Telemetry* telemetry_;
  int num_reactors_ = 1;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::vector<std::unique_ptr<Reactor>> reactors_;
  /// Round-robin accept cursor (reactor 0 only).
  size_t next_reactor_ = 0;

  std::mutex lifecycle_mu_;
  std::condition_variable lifecycle_cv_;
  bool started_ = false;
  bool stopped_ = false;
  size_t reactors_done_ = 0;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> force_stop_{false};

  std::atomic<uint64_t> next_conn_id_{1};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_refused_{0};
  std::atomic<size_t> active_connections_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> submits_accepted_{0};
  std::atomic<uint64_t> submits_rejected_{0};
  std::atomic<uint64_t> completions_delivered_{0};
  std::atomic<uint64_t> completions_dropped_{0};

  obs::Gauge* connections_gauge_ = nullptr;
  obs::Counter* connections_counter_ = nullptr;
  obs::Counter* frames_in_counter_ = nullptr;
  obs::Counter* frames_out_counter_ = nullptr;
  obs::Counter* protocol_errors_counter_ = nullptr;
  obs::Counter* submit_accepted_counter_ = nullptr;
  obs::Counter* submit_rejected_full_counter_ = nullptr;
  obs::Counter* submit_rejected_shutdown_counter_ = nullptr;
  obs::Counter* submit_rejected_unavailable_counter_ = nullptr;
  obs::Counter* completions_dropped_counter_ = nullptr;
  obs::Histogram* turnaround_hist_ = nullptr;
};

}  // namespace qsched::net

#endif  // QSCHED_NET_SERVER_H_
