#include "net/frame.h"

#include <cstring>

namespace qsched::net {

namespace {

/// Little-endian append helpers. The payload-length word is patched in
/// after the body is written, so encoding is single-pass.
void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutI32(std::vector<uint8_t>* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutF64(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::vector<uint8_t>* out, const std::string& s,
               size_t max_bytes) {
  size_t n = s.size() > max_bytes ? max_bytes : s.size();
  PutU16(out, static_cast<uint16_t>(n));
  out->insert(out->end(), s.begin(), s.begin() + n);
}

/// Bounds-checked little-endian cursor over one frame's payload. Every
/// getter fails (returns false) instead of reading past the end; the
/// caller maps any failure to kMalformed.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }

  bool GetU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = data_[pos_++];
    return true;
  }

  bool GetU16(uint16_t* v) {
    if (remaining() < 2) return false;
    *v = static_cast<uint16_t>(data_[pos_]) |
         static_cast<uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return true;
  }

  bool GetU64(uint64_t* v) {
    if (remaining() < 8) return false;
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i) {
      r |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    *v = r;
    return true;
  }

  bool GetI32(int32_t* v) {
    if (remaining() < 4) return false;
    uint32_t r = 0;
    for (int i = 0; i < 4; ++i) {
      r |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    *v = static_cast<int32_t>(r);
    return true;
  }

  bool GetF64(double* v) {
    uint64_t bits;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool GetString(std::string* s, size_t max_bytes) {
    uint16_t n;
    if (!GetU16(&n)) return false;
    if (n > max_bytes || remaining() < n) return false;
    s->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

void EncodeBody(const Frame& frame, uint8_t version,
                std::vector<uint8_t>* out) {
  switch (frame.type) {
    case FrameType::kSubmit: {
      const workload::Query& q = frame.query;
      PutI32(out, q.class_id);
      PutU8(out, q.type == workload::WorkloadType::kOltp ? 1 : 0);
      PutU8(out, q.job.database == engine::DatabaseId::kOltp ? 1 : 0);
      PutI32(out, q.client_id);
      PutF64(out, q.cost_timerons);
      PutF64(out, q.job.cpu_seconds);
      PutF64(out, q.job.logical_pages);
      PutF64(out, q.job.write_pages);
      PutF64(out, q.job.hit_ratio);
      PutString(out, q.template_name, kMaxTemplateNameBytes);
      if (version >= 2) PutU8(out, frame.want_trace ? 1 : 0);
      break;
    }
    case FrameType::kRejected:
      PutU8(out, static_cast<uint8_t>(frame.reject_reason));
      break;
    case FrameType::kCompleted:
      PutI32(out, frame.class_id);
      PutF64(out, frame.response_seconds);
      PutF64(out, frame.exec_seconds);
      PutU8(out, frame.cancelled ? 1 : 0);
      if (version >= 2) {
        PutU8(out, frame.has_trace ? 1 : 0);
        if (frame.has_trace) {
          PutU64(out, frame.trace_id);
          PutF64(out, frame.stage_gateway_queue_seconds);
          PutF64(out, frame.stage_dispatch_seconds);
          PutF64(out, frame.stage_execute_seconds);
        }
      }
      break;
    case FrameType::kStatsReply:
      PutU64(out, frame.stats.accepted);
      PutU64(out, frame.stats.rejected_queue_full);
      PutU64(out, frame.stats.rejected_shutting_down);
      PutU64(out, frame.stats.completed);
      PutU64(out, frame.stats.queue_depth);
      PutU64(out, frame.stats.connections);
      if (version >= 2) {
        PutU64(out, frame.stats.admitted);
        size_t n = frame.stats.class_attainment.size();
        if (n > kMaxStatsClasses) n = kMaxStatsClasses;
        PutU16(out, static_cast<uint16_t>(n));
        for (size_t i = 0; i < n; ++i) {
          PutI32(out, frame.stats.class_attainment[i].class_id);
          PutF64(out, frame.stats.class_attainment[i].rolling_attainment);
        }
      }
      break;
    case FrameType::kError:
      PutU8(out, static_cast<uint8_t>(frame.error_code));
      PutString(out, frame.error_message, kMaxErrorMessageBytes);
      break;
    case FrameType::kPing:
    case FrameType::kDrain:
    case FrameType::kStats:
    case FrameType::kAccepted:
    case FrameType::kPong:
    case FrameType::kDrained:
      break;  // header-only frames
  }
}

bool DecodeBody(Reader* reader, uint8_t version, Frame* frame) {
  switch (frame->type) {
    case FrameType::kSubmit: {
      workload::Query& q = frame->query;
      uint8_t workload_type, database;
      if (!reader->GetI32(&q.class_id)) return false;
      if (!reader->GetU8(&workload_type) || workload_type > 1) return false;
      if (!reader->GetU8(&database) || database > 1) return false;
      if (!reader->GetI32(&q.client_id)) return false;
      if (!reader->GetF64(&q.cost_timerons)) return false;
      if (!reader->GetF64(&q.job.cpu_seconds)) return false;
      if (!reader->GetF64(&q.job.logical_pages)) return false;
      if (!reader->GetF64(&q.job.write_pages)) return false;
      if (!reader->GetF64(&q.job.hit_ratio)) return false;
      if (!reader->GetString(&q.template_name, kMaxTemplateNameBytes)) {
        return false;
      }
      if (version >= 2) {
        uint8_t want_trace;
        if (!reader->GetU8(&want_trace) || want_trace > 1) return false;
        frame->want_trace = want_trace == 1;
      }
      q.type = workload_type == 1 ? workload::WorkloadType::kOltp
                                  : workload::WorkloadType::kOlap;
      q.job.database = database == 1 ? engine::DatabaseId::kOltp
                                     : engine::DatabaseId::kOlap;
      return true;
    }
    case FrameType::kRejected: {
      uint8_t reason;
      if (!reader->GetU8(&reason)) return false;
      if (reason != static_cast<uint8_t>(rt::RejectReason::kQueueFull) &&
          reason !=
              static_cast<uint8_t>(rt::RejectReason::kShuttingDown) &&
          reason != static_cast<uint8_t>(
                        rt::RejectReason::kBackendUnavailable)) {
        return false;
      }
      frame->reject_reason = static_cast<rt::RejectReason>(reason);
      return true;
    }
    case FrameType::kCompleted: {
      uint8_t cancelled;
      if (!reader->GetI32(&frame->class_id)) return false;
      if (!reader->GetF64(&frame->response_seconds)) return false;
      if (!reader->GetF64(&frame->exec_seconds)) return false;
      if (!reader->GetU8(&cancelled) || cancelled > 1) return false;
      frame->cancelled = cancelled == 1;
      if (version >= 2) {
        uint8_t has_trace;
        if (!reader->GetU8(&has_trace) || has_trace > 1) return false;
        frame->has_trace = has_trace == 1;
        if (frame->has_trace) {
          if (!reader->GetU64(&frame->trace_id)) return false;
          if (!reader->GetF64(&frame->stage_gateway_queue_seconds)) {
            return false;
          }
          if (!reader->GetF64(&frame->stage_dispatch_seconds)) return false;
          if (!reader->GetF64(&frame->stage_execute_seconds)) return false;
        }
      }
      return true;
    }
    case FrameType::kStatsReply: {
      if (!reader->GetU64(&frame->stats.accepted) ||
          !reader->GetU64(&frame->stats.rejected_queue_full) ||
          !reader->GetU64(&frame->stats.rejected_shutting_down) ||
          !reader->GetU64(&frame->stats.completed) ||
          !reader->GetU64(&frame->stats.queue_depth) ||
          !reader->GetU64(&frame->stats.connections)) {
        return false;
      }
      if (version >= 2) {
        if (!reader->GetU64(&frame->stats.admitted)) return false;
        uint16_t count;
        if (!reader->GetU16(&count) || count > kMaxStatsClasses) {
          return false;
        }
        frame->stats.class_attainment.resize(count);
        for (uint16_t i = 0; i < count; ++i) {
          WireClassAttainment& entry = frame->stats.class_attainment[i];
          if (!reader->GetI32(&entry.class_id)) return false;
          if (!reader->GetF64(&entry.rolling_attainment)) return false;
        }
      }
      return true;
    }
    case FrameType::kError: {
      uint8_t code;
      if (!reader->GetU8(&code) || code < 1 ||
          code > static_cast<uint8_t>(WireError::kBadState)) {
        return false;
      }
      frame->error_code = static_cast<WireError>(code);
      return reader->GetString(&frame->error_message,
                               kMaxErrorMessageBytes);
    }
    case FrameType::kPing:
    case FrameType::kDrain:
    case FrameType::kStats:
    case FrameType::kAccepted:
    case FrameType::kPong:
    case FrameType::kDrained:
      return true;
  }
  return false;
}

}  // namespace

bool FrameTypeIsKnown(uint8_t raw) {
  switch (static_cast<FrameType>(raw)) {
    case FrameType::kSubmit:
    case FrameType::kPing:
    case FrameType::kDrain:
    case FrameType::kStats:
    case FrameType::kAccepted:
    case FrameType::kRejected:
    case FrameType::kCompleted:
    case FrameType::kPong:
    case FrameType::kDrained:
    case FrameType::kStatsReply:
    case FrameType::kError:
      return true;
  }
  return false;
}

const char* FrameTypeToString(FrameType type) {
  switch (type) {
    case FrameType::kSubmit:
      return "SUBMIT";
    case FrameType::kPing:
      return "PING";
    case FrameType::kDrain:
      return "DRAIN";
    case FrameType::kStats:
      return "STATS";
    case FrameType::kAccepted:
      return "ACCEPTED";
    case FrameType::kRejected:
      return "REJECTED";
    case FrameType::kCompleted:
      return "COMPLETED";
    case FrameType::kPong:
      return "PONG";
    case FrameType::kDrained:
      return "DRAINED";
    case FrameType::kStatsReply:
      return "STATS_REPLY";
    case FrameType::kError:
      return "ERROR";
  }
  return "unknown";
}

const char* WireErrorToString(WireError error) {
  switch (error) {
    case WireError::kBadVersion:
      return "bad_version";
    case WireError::kBadType:
      return "bad_type";
    case WireError::kMalformed:
      return "malformed";
    case WireError::kOversized:
      return "oversized";
    case WireError::kBadState:
      return "bad_state";
  }
  return "unknown";
}

const char* DecodeStatusToString(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk:
      return "ok";
    case DecodeStatus::kNeedMore:
      return "need_more";
    case DecodeStatus::kBadVersion:
      return "bad_version";
    case DecodeStatus::kBadType:
      return "bad_type";
    case DecodeStatus::kMalformed:
      return "malformed";
    case DecodeStatus::kOversized:
      return "oversized";
  }
  return "unknown";
}

WireError DecodeStatusToWireError(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kBadVersion:
      return WireError::kBadVersion;
    case DecodeStatus::kBadType:
      return WireError::kBadType;
    case DecodeStatus::kOversized:
      return WireError::kOversized;
    case DecodeStatus::kOk:
    case DecodeStatus::kNeedMore:
    case DecodeStatus::kMalformed:
      break;
  }
  return WireError::kMalformed;
}

void EncodeFrame(const Frame& frame, std::vector<uint8_t>* out) {
  // Anything other than an explicit v1 request encodes as the current
  // version; there is no v0 and no future version to speak.
  uint8_t version =
      frame.version == kMinProtocolVersion ? kMinProtocolVersion
                                           : kProtocolVersion;
  size_t length_at = out->size();
  PutU32(out, 0);  // patched below
  size_t payload_at = out->size();
  PutU8(out, version);
  PutU8(out, static_cast<uint8_t>(frame.type));
  PutU64(out, frame.request_id);
  EncodeBody(frame, version, out);
  uint32_t payload_length = static_cast<uint32_t>(out->size() - payload_at);
  (*out)[length_at] = static_cast<uint8_t>(payload_length);
  (*out)[length_at + 1] = static_cast<uint8_t>(payload_length >> 8);
  (*out)[length_at + 2] = static_cast<uint8_t>(payload_length >> 16);
  (*out)[length_at + 3] = static_cast<uint8_t>(payload_length >> 24);
}

DecodeStatus DecodeFrame(const uint8_t* data, size_t size, Frame* frame,
                         size_t* consumed, size_t max_payload) {
  if (size < 4) return DecodeStatus::kNeedMore;
  uint32_t payload_length = static_cast<uint32_t>(data[0]) |
                            static_cast<uint32_t>(data[1]) << 8 |
                            static_cast<uint32_t>(data[2]) << 16 |
                            static_cast<uint32_t>(data[3]) << 24;
  // Validate the length word before waiting for the payload: a hostile
  // length must fail now, not stall the connection "needing more".
  if (payload_length > max_payload) return DecodeStatus::kOversized;
  // version + type + request_id is the minimum payload of any frame.
  if (payload_length < 1 + 1 + 8) return DecodeStatus::kMalformed;
  if (size < 4 + static_cast<size_t>(payload_length)) {
    return DecodeStatus::kNeedMore;
  }

  const uint8_t* payload = data + 4;
  if (payload[0] < kMinProtocolVersion || payload[0] > kProtocolVersion) {
    return DecodeStatus::kBadVersion;
  }
  if (!FrameTypeIsKnown(payload[1])) return DecodeStatus::kBadType;

  Frame decoded;
  decoded.version = payload[0];
  decoded.type = static_cast<FrameType>(payload[1]);
  Reader reader(payload + 2, payload_length - 2);
  if (!reader.GetU64(&decoded.request_id)) return DecodeStatus::kMalformed;
  if (!DecodeBody(&reader, decoded.version, &decoded)) {
    return DecodeStatus::kMalformed;
  }
  // The body must account for every payload byte: trailing garbage means
  // the peer and we disagree about the layout — fail loudly.
  if (reader.remaining() != 0) return DecodeStatus::kMalformed;

  *frame = std::move(decoded);
  *consumed = 4 + static_cast<size_t>(payload_length);
  return DecodeStatus::kOk;
}

}  // namespace qsched::net
