#ifndef QSCHED_NET_FRAME_H_
#define QSCHED_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "rt/gateway.h"
#include "workload/query.h"

namespace qsched::net {

/// Wire protocol of the TCP front-end. Framing:
///
///   u32  payload_length   little-endian, bytes after this field
///   u8   version          kProtocolVersion
///   u8   type             FrameType
///   u64  request_id       client-chosen correlation id
///   ...  body             type-specific, fixed little-endian layout
///
/// All multi-byte integers are little-endian; doubles travel as the
/// little-endian bytes of their IEEE-754 bit pattern. A frame's payload
/// must be exactly header + body — trailing bytes are malformed, as is a
/// body that ends early. Oversized payload lengths are rejected before
/// any allocation, so a hostile length field cannot balloon memory.
///
/// Versioning: v2 extends three bodies with trace context and richer
/// stats (SUBMIT gains a trace-flags byte, COMPLETED an optional
/// per-stage latency breakdown, STATS_REPLY the admitted counter and
/// rolling per-class SLO attainment). Decoders accept v1 and v2 and
/// parse each body by the version stamped in its own header; encoders
/// honor Frame::version, so a server answers a v1 client in v1. The
/// exact-payload rule still holds per version: a v2 body on a v1 frame
/// (or vice versa) is malformed, never silently truncated.
inline constexpr uint8_t kProtocolVersion = 2;
/// Oldest version a decoder still accepts.
inline constexpr uint8_t kMinProtocolVersion = 1;

/// Hard ceiling on payload_length a decoder will accept. SUBMIT (the
/// largest frame) is well under 1 KiB; anything bigger is a corrupt or
/// hostile stream.
inline constexpr size_t kMaxPayloadBytes = 64 * 1024;

/// Longest template_name accepted in a SUBMIT body.
inline constexpr size_t kMaxTemplateNameBytes = 256;
/// Longest message accepted in an ERROR body.
inline constexpr size_t kMaxErrorMessageBytes = 512;
/// Most per-class attainment entries a v2 STATS_REPLY may carry; bounds
/// decoder allocation the same way the string limits do.
inline constexpr size_t kMaxStatsClasses = 256;

enum class FrameType : uint8_t {
  // Requests (client -> server).
  kSubmit = 1,  // one query; server replies ACCEPTED or REJECTED now,
                // COMPLETED later on the same connection
  kPing = 2,    // liveness; server replies PONG
  kDrain = 3,   // stop intake on this connection; server replies DRAINED
                // once every in-flight query has COMPLETED, then closes
  kStats = 4,   // server replies STATS_REPLY with gateway accounting

  // Responses (server -> client).
  kAccepted = 16,
  kRejected = 17,  // body: reason (rt::RejectReason)
  kCompleted = 18,
  kPong = 19,
  kDrained = 20,
  kStatsReply = 21,
  kError = 22,  // protocol error; server closes the connection after it
};

bool FrameTypeIsKnown(uint8_t raw);
const char* FrameTypeToString(FrameType type);

/// Protocol error codes carried in an ERROR frame body.
enum class WireError : uint8_t {
  kBadVersion = 1,
  kBadType = 2,
  kMalformed = 3,  // body inconsistent with payload_length
  kOversized = 4,  // payload_length above the decoder's limit
  kBadState = 5,   // e.g. SUBMIT after DRAIN on the same connection
};

const char* WireErrorToString(WireError error);

/// Rolling SLO attainment of one service class, as published by the
/// control loop's SloMonitor (fraction of recent intervals meeting goal).
struct WireClassAttainment {
  int32_t class_id = 0;
  double rolling_attainment = 0.0;
};

/// Gateway accounting snapshot carried by STATS_REPLY. The v2 fields
/// (`admitted`, `class_attainment`) decode to their defaults from a v1
/// peer.
struct WireStats {
  uint64_t accepted = 0;
  uint64_t rejected_queue_full = 0;
  uint64_t rejected_shutting_down = 0;
  uint64_t completed = 0;
  uint64_t queue_depth = 0;
  uint64_t connections = 0;
  // v2 only.
  uint64_t admitted = 0;
  std::vector<WireClassAttainment> class_attainment;
};

/// One decoded frame: `type` + `request_id` are always meaningful; the
/// remaining fields only for the frame types that carry them.
struct Frame {
  FrameType type = FrameType::kPing;
  uint64_t request_id = 0;
  /// Wire version this frame was decoded from / will be encoded as.
  /// Anything other than kMinProtocolVersion encodes as v2.
  uint8_t version = kProtocolVersion;

  // kSubmit: the query to run. `query.id` / `query.job.query_id` are
  // server-assigned and not transmitted. `want_trace` (v2) asks the
  // server to attach the per-stage breakdown to this query's COMPLETED.
  workload::Query query;
  bool want_trace = false;

  // kRejected.
  rt::RejectReason reject_reason = rt::RejectReason::kQueueFull;

  // kCompleted. The trace fields travel only in v2 and only when
  // has_trace is set (the server echoes want_trace).
  int32_t class_id = 0;
  double response_seconds = 0.0;
  double exec_seconds = 0.0;
  bool cancelled = false;
  bool has_trace = false;
  uint64_t trace_id = 0;
  double stage_gateway_queue_seconds = 0.0;
  double stage_dispatch_seconds = 0.0;
  double stage_execute_seconds = 0.0;

  // kStatsReply.
  WireStats stats;

  // kError.
  WireError error_code = WireError::kMalformed;
  std::string error_message;
};

/// Appends the encoded frame to `out`. Strings longer than the wire
/// limits are truncated at encode time, so every encoded frame decodes.
void EncodeFrame(const Frame& frame, std::vector<uint8_t>* out);

enum class DecodeStatus {
  kOk,         // *frame and *consumed are set
  kNeedMore,   // the buffer holds a prefix of a valid-so-far frame
  kBadVersion,
  kBadType,
  kMalformed,  // length/body inconsistency inside a complete frame
  kOversized,  // payload_length above max_payload
};

const char* DecodeStatusToString(DecodeStatus status);

/// Attempts to decode one frame from the first `size` bytes of `data`.
/// kOk fills *frame and sets *consumed to the bytes eaten; every other
/// status leaves both untouched. kNeedMore means "wait for more bytes";
/// the error statuses mean the stream is unrecoverable (framing is lost)
/// and the connection should be errored out and closed. Never reads past
/// `size`, never allocates proportionally to a hostile length field.
DecodeStatus DecodeFrame(const uint8_t* data, size_t size, Frame* frame,
                         size_t* consumed,
                         size_t max_payload = kMaxPayloadBytes);

/// Maps a decode error (not kOk/kNeedMore) to the WireError an ERROR
/// reply should carry.
WireError DecodeStatusToWireError(DecodeStatus status);

}  // namespace qsched::net

#endif  // QSCHED_NET_FRAME_H_
