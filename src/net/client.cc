#include "net/client.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/rng.h"
#include "common/strings.h"
#include "workload/tpcc_workload.h"
#include "workload/tpch_workload.h"

namespace qsched::net {

namespace {

using SteadyClock = std::chrono::steady_clock;

double SecondsSince(SteadyClock::time_point t0) {
  return std::chrono::duration<double>(SteadyClock::now() - t0).count();
}

bool SetBlockingMode(int fd, bool non_blocking) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  if (non_blocking) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  return fcntl(fd, F_SETFL, flags) == 0;
}

ClientCompletion CompletionFromFrame(const Frame& frame) {
  ClientCompletion c;
  c.request_id = frame.request_id;
  c.class_id = frame.class_id;
  c.response_seconds = frame.response_seconds;
  c.exec_seconds = frame.exec_seconds;
  c.cancelled = frame.cancelled;
  c.has_trace = frame.has_trace;
  c.trace_id = frame.trace_id;
  c.stage_gateway_queue_seconds = frame.stage_gateway_queue_seconds;
  c.stage_dispatch_seconds = frame.stage_dispatch_seconds;
  c.stage_execute_seconds = frame.stage_execute_seconds;
  return c;
}

}  // namespace

Result<int> ConnectFd(const std::string& host, uint16_t port,
                      double connect_timeout_seconds) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  int rc = getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
  if (rc != 0 || res == nullptr) {
    return Status::InvalidArgument(StrPrintf(
        "cannot resolve %s: %s", host.c_str(), gai_strerror(rc)));
  }
  int fd = socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd < 0) {
    freeaddrinfo(res);
    return Status::Internal(StrPrintf("socket: %s", std::strerror(errno)));
  }
  auto fail = [&](Status status) -> Result<int> {
    close(fd);
    freeaddrinfo(res);
    return status;
  };
  const bool bounded = connect_timeout_seconds > 0.0;
  if (bounded && !SetBlockingMode(fd, /*non_blocking=*/true)) {
    return fail(
        Status::Internal(StrPrintf("fcntl: %s", std::strerror(errno))));
  }
  if (connect(fd, res->ai_addr, res->ai_addrlen) != 0) {
    if (!bounded || errno != EINPROGRESS) {
      const int err = errno;
      return fail(Status::Internal(StrPrintf("connect %s:%s: %s",
                                             host.c_str(), port_str.c_str(),
                                             std::strerror(err))));
    }
    // Bounded connect in flight: wait for writability, then read the
    // outcome from SO_ERROR — poll() success alone does not mean the
    // handshake succeeded (a refused connect is also "writable").
    const auto deadline =
        SteadyClock::now() +
        std::chrono::duration_cast<SteadyClock::duration>(
            std::chrono::duration<double>(connect_timeout_seconds));
    while (true) {
      const double remaining =
          std::chrono::duration<double>(deadline - SteadyClock::now())
              .count();
      if (remaining <= 0.0) {
        return fail(Status::Internal(
            StrPrintf("connect %s:%s: timed out after %.3fs", host.c_str(),
                      port_str.c_str(), connect_timeout_seconds)));
      }
      pollfd pfd{fd, POLLOUT, 0};
      int prc = poll(&pfd, 1, static_cast<int>(remaining * 1000.0) + 1);
      if (prc < 0) {
        if (errno == EINTR) continue;
        return fail(
            Status::Internal(StrPrintf("poll: %s", std::strerror(errno))));
      }
      if (prc == 0) continue;  // re-check the deadline
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) {
        return fail(Status::Internal(
            StrPrintf("getsockopt: %s", std::strerror(errno))));
      }
      if (so_error != 0) {
        return fail(Status::Internal(
            StrPrintf("connect %s:%s: %s", host.c_str(), port_str.c_str(),
                      std::strerror(so_error))));
      }
      break;  // connected
    }
  }
  if (bounded && !SetBlockingMode(fd, /*non_blocking=*/false)) {
    return fail(
        Status::Internal(StrPrintf("fcntl: %s", std::strerror(errno))));
  }
  freeaddrinfo(res);
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<std::unique_ptr<Client>> Client::Connect(
    const std::string& host, uint16_t port,
    double connect_timeout_seconds) {
  Result<int> fd = ConnectFd(host, port, connect_timeout_seconds);
  if (!fd.ok()) return fd.status();
  return std::unique_ptr<Client>(new Client(fd.ValueOrDie()));
}

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

Status Client::SendAll(const std::vector<uint8_t>& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = send(fd_, bytes.data() + sent, bytes.size() - sent,
                     MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrPrintf("send: %s", std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Client::ReadFrameInternal(Frame* frame, bool* got_frame) {
  // One decode attempt from whatever is buffered; callers recv() more
  // bytes when this reports no complete frame yet.
  size_t consumed = 0;
  DecodeStatus ds =
      DecodeFrame(inbuf_.data(), inbuf_.size(), frame, &consumed);
  if (ds == DecodeStatus::kOk) {
    inbuf_.erase(inbuf_.begin(),
                 inbuf_.begin() + static_cast<long>(consumed));
    *got_frame = true;
    return Status::OK();
  }
  if (ds != DecodeStatus::kNeedMore) {
    return Status::Internal(StrPrintf("protocol error from server: %s",
                                      DecodeStatusToString(ds)));
  }
  *got_frame = false;
  return Status::OK();
}

bool Client::AbsorbFrame(const Frame& frame) {
  if (frame.type == FrameType::kCompleted) {
    completions_.push_back(CompletionFromFrame(frame));
    if (outstanding_ > 0) --outstanding_;
    return true;
  }
  // A verdict for the oldest pipelined SUBMIT: the server answers in
  // submission order, so it always surfaces as awaiting_verdict_.front().
  if ((frame.type == FrameType::kAccepted ||
       frame.type == FrameType::kRejected) &&
      !awaiting_verdict_.empty() &&
      frame.request_id == awaiting_verdict_.front()) {
    awaiting_verdict_.pop_front();
    SubmitResult result;
    result.request_id = frame.request_id;
    if (frame.type == FrameType::kAccepted) {
      result.accepted = true;
      ++outstanding_;
    } else {
      result.accepted = false;
      result.reject_reason = frame.reject_reason;
    }
    verdicts_.push_back(result);
    return true;
  }
  return false;
}

Status Client::ReadUntilType(FrameType want, uint64_t request_id,
                             Frame* out) {
  while (true) {
    Frame frame;
    bool got = false;
    QSCHED_RETURN_NOT_OK(ReadFrameInternal(&frame, &got));
    if (!got) {
      // Need more bytes; block on the socket.
      uint8_t chunk[16 * 1024];
      ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(
            StrPrintf("recv: %s", std::strerror(errno)));
      }
      if (n == 0) {
        return Status::Internal(
            "connection closed by server while awaiting reply");
      }
      inbuf_.insert(inbuf_.end(), chunk, chunk + n);
      continue;
    }
    if (AbsorbFrame(frame)) continue;
    if (frame.type == FrameType::kError) {
      return Status::Internal(
          StrPrintf("server error %s: %s",
                    WireErrorToString(frame.error_code),
                    frame.error_message.c_str()));
    }
    if (frame.type == want &&
        (request_id == 0 || frame.request_id == request_id)) {
      *out = frame;
      return Status::OK();
    }
    return Status::Internal(StrPrintf("unexpected frame %s while awaiting %s",
                                      FrameTypeToString(frame.type),
                                      FrameTypeToString(want)));
  }
}

Result<Client::SubmitResult> Client::Submit(const workload::Query& query) {
  if (drained_) {
    return Status::FailedPrecondition("connection is drained");
  }
  Frame request;
  request.type = FrameType::kSubmit;
  request.request_id = next_request_id_++;
  request.query = query;
  request.want_trace = want_trace_;
  QSCHED_RETURN_NOT_OK(Flush());  // Queued pipelined SUBMITs go first.
  std::vector<uint8_t> bytes;
  EncodeFrame(request, &bytes);
  QSCHED_RETURN_NOT_OK(SendAll(bytes));

  // The verdict for this submit is the next non-COMPLETED frame (after
  // any still-owed pipelined verdicts): the server acks admissions in
  // submission order on each connection.
  while (true) {
    Frame reply;
    bool got = false;
    QSCHED_RETURN_NOT_OK(ReadFrameInternal(&reply, &got));
    if (!got) {
      uint8_t chunk[16 * 1024];
      ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(
            StrPrintf("recv: %s", std::strerror(errno)));
      }
      if (n == 0) {
        return Status::Internal(
            "connection closed by server while awaiting verdict");
      }
      inbuf_.insert(inbuf_.end(), chunk, chunk + n);
      continue;
    }
    if (AbsorbFrame(reply)) continue;
    if (reply.type == FrameType::kError) {
      return Status::Internal(
          StrPrintf("server error %s: %s",
                    WireErrorToString(reply.error_code),
                    reply.error_message.c_str()));
    }
    if (reply.request_id != request.request_id) {
      return Status::Internal("verdict for a different request_id");
    }
    SubmitResult result;
    result.request_id = request.request_id;
    if (reply.type == FrameType::kAccepted) {
      result.accepted = true;
      ++outstanding_;
      return result;
    }
    if (reply.type == FrameType::kRejected) {
      result.accepted = false;
      result.reject_reason = reply.reject_reason;
      return result;
    }
    return Status::Internal(StrPrintf("unexpected verdict frame %s",
                                      FrameTypeToString(reply.type)));
  }
}

Result<uint64_t> Client::SubmitNoWait(const workload::Query& query) {
  if (drained_) {
    return Status::FailedPrecondition("connection is drained");
  }
  Frame request;
  request.type = FrameType::kSubmit;
  request.request_id = next_request_id_++;
  request.query = query;
  request.want_trace = want_trace_;
  EncodeFrame(request, &outbuf_);
  awaiting_verdict_.push_back(request.request_id);
  return request.request_id;
}

Status Client::Flush() {
  if (outbuf_.empty()) return Status::OK();
  Status sent = SendAll(outbuf_);
  outbuf_.clear();
  return sent;
}

bool Client::PopVerdict(SubmitResult* out) {
  if (verdicts_.empty()) return false;
  *out = verdicts_.front();
  verdicts_.pop_front();
  return true;
}

Result<Client::SubmitResult> Client::NextVerdict() {
  while (verdicts_.empty()) {
    if (awaiting_verdict_.empty()) {
      return Status::FailedPrecondition(
          "no pipelined submit is awaiting a verdict");
    }
    QSCHED_RETURN_NOT_OK(Flush());
    Frame frame;
    bool got = false;
    QSCHED_RETURN_NOT_OK(ReadFrameInternal(&frame, &got));
    if (!got) {
      uint8_t chunk[16 * 1024];
      ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(
            StrPrintf("recv: %s", std::strerror(errno)));
      }
      if (n == 0) {
        return Status::Internal(
            "connection closed by server while awaiting verdict");
      }
      inbuf_.insert(inbuf_.end(), chunk, chunk + n);
      continue;
    }
    if (AbsorbFrame(frame)) continue;
    if (frame.type == FrameType::kError) {
      return Status::Internal(
          StrPrintf("server error %s: %s",
                    WireErrorToString(frame.error_code),
                    frame.error_message.c_str()));
    }
    return Status::Internal(
        StrPrintf("unexpected frame %s while awaiting a pipelined verdict",
                  FrameTypeToString(frame.type)));
  }
  SubmitResult result = verdicts_.front();
  verdicts_.pop_front();
  return result;
}

Result<ClientCompletion> Client::NextCompletion() {
  Result<PolledCompletion> polled = PollCompletion(-1.0);
  if (!polled.ok()) return polled.status();
  if (!polled.ValueOrDie().found) {
    return Status::NotFound("no completion available");
  }
  return polled.ValueOrDie().completion;
}

Result<Client::PolledCompletion> Client::PollCompletion(
    double timeout_seconds) {
  PolledCompletion result;
  if (!completions_.empty()) {
    result.found = true;
    result.completion = completions_.front();
    completions_.pop_front();
    return result;
  }
  if (drained_) return result;  // Nothing buffered, nothing coming.

  const SteadyClock::time_point t0 = SteadyClock::now();
  while (true) {
    Frame frame;
    bool got = false;
    QSCHED_RETURN_NOT_OK(ReadFrameInternal(&frame, &got));
    if (got) {
      if (AbsorbFrame(frame)) {
        if (!completions_.empty()) {
          result.found = true;
          result.completion = completions_.front();
          completions_.pop_front();
          return result;
        }
        continue;  // A pipelined verdict; keep waiting for a completion.
      }
      if (frame.type == FrameType::kError) {
        return Status::Internal(
            StrPrintf("server error %s: %s",
                      WireErrorToString(frame.error_code),
                      frame.error_message.c_str()));
      }
      return Status::Internal(
          StrPrintf("unexpected frame %s while polling completions",
                    FrameTypeToString(frame.type)));
    }
    // Wait for readability, bounded by what remains of the timeout.
    int poll_ms = -1;
    if (timeout_seconds >= 0.0) {
      const double remaining = timeout_seconds - SecondsSince(t0);
      if (remaining <= 0.0) return result;  // found=false
      poll_ms = static_cast<int>(remaining * 1000.0) + 1;
    }
    pollfd pfd{fd_, POLLIN, 0};
    int rc = poll(&pfd, 1, poll_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrPrintf("poll: %s", std::strerror(errno)));
    }
    if (rc == 0) return result;  // found=false
    uint8_t chunk[16 * 1024];
    ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return Status::Internal(StrPrintf("recv: %s", std::strerror(errno)));
    }
    if (n == 0) {
      return Status::Internal(
          "connection closed by server with completions outstanding");
    }
    inbuf_.insert(inbuf_.end(), chunk, chunk + n);
  }
}

Status Client::Ping() {
  Frame request;
  request.type = FrameType::kPing;
  request.request_id = next_request_id_++;
  QSCHED_RETURN_NOT_OK(Flush());
  std::vector<uint8_t> bytes;
  EncodeFrame(request, &bytes);
  QSCHED_RETURN_NOT_OK(SendAll(bytes));
  Frame reply;
  return ReadUntilType(FrameType::kPong, request.request_id, &reply);
}

Result<WireStats> Client::Stats() {
  Frame request;
  request.type = FrameType::kStats;
  request.request_id = next_request_id_++;
  QSCHED_RETURN_NOT_OK(Flush());
  std::vector<uint8_t> bytes;
  EncodeFrame(request, &bytes);
  QSCHED_RETURN_NOT_OK(SendAll(bytes));
  Frame reply;
  QSCHED_RETURN_NOT_OK(
      ReadUntilType(FrameType::kStatsReply, request.request_id, &reply));
  return reply.stats;
}

Status Client::Drain() {
  if (drained_) return Status::OK();
  Frame request;
  request.type = FrameType::kDrain;
  request.request_id = next_request_id_++;
  QSCHED_RETURN_NOT_OK(Flush());  // Pipelined SUBMITs precede the DRAIN.
  std::vector<uint8_t> bytes;
  EncodeFrame(request, &bytes);
  QSCHED_RETURN_NOT_OK(SendAll(bytes));
  Frame reply;
  QSCHED_RETURN_NOT_OK(
      ReadUntilType(FrameType::kDrained, request.request_id, &reply));
  drained_ = true;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// RemoteLoadGenerator
// ---------------------------------------------------------------------------

RemoteLoadGenerator::RemoteLoadGenerator(std::string host, uint16_t port,
                                         const RemoteLoadOptions& options,
                                         obs::Telemetry* telemetry)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      telemetry_(telemetry) {
  if (options_.mix.empty()) {
    // The paper's mix: two OLAP service classes and the OLTP class, with
    // OLTP dominating the arrival count (Section V).
    options_.mix = {{1, 3.0, workload::WorkloadType::kOlap},
                    {2, 3.0, workload::WorkloadType::kOlap},
                    {3, 94.0, workload::WorkloadType::kOltp}};
  }
  if (telemetry_ != nullptr) {
    auto& reg = telemetry_->registry;
    rtt_hist_ = reg.GetHistogram("qsched_net_rtt_seconds");
    offered_counter_ = reg.GetCounter("qsched_net_client_offered_total");
    completed_counter_ =
        reg.GetCounter("qsched_net_client_completed_total");
  }
}

Status RemoteLoadGenerator::Run() {
  const int n = options_.connections > 0 ? options_.connections : 1;
  std::vector<std::thread> threads;
  std::vector<Status> statuses(static_cast<size_t>(n));
  threads.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads.emplace_back(
        [this, i, &statuses] { statuses[static_cast<size_t>(i)] = RunConnection(i); });
  }
  for (auto& t : threads) t.join();
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Status RemoteLoadGenerator::RunConnection(int index) {
  Result<std::unique_ptr<Client>> connected = Client::Connect(host_, port_);
  if (!connected.ok()) return connected.status();
  std::unique_ptr<Client> client = std::move(connected).ValueOrDie();

  // Per-connection generators, independently seeded so connections do not
  // replay each other's draw sequences.
  const uint64_t seed = options_.seed + static_cast<uint64_t>(index) * 7919;
  workload::TpchWorkloadParams tpch_params;
  tpch_params.scale_factor = options_.tpch_scale_factor;
  workload::TpchWorkload olap(tpch_params, seed);
  workload::TpccWorkload oltp(workload::TpccWorkloadParams{}, seed + 1);
  Rng rng(seed, 0x9e3779b97f4a7c15ULL);

  std::vector<double> weights;
  weights.reserve(options_.mix.size());
  for (const RemoteMixEntry& entry : options_.mix) {
    weights.push_back(entry.weight);
  }

  // Reuse the in-process generator's rate envelope so --pattern shapes the
  // remote load the same way it shapes rt::LoadGenerator.
  rt::LoadGenOptions envelope;
  envelope.pattern = options_.pattern;
  envelope.burst_period_seconds = options_.burst_period_seconds;
  envelope.burst_duty = options_.burst_duty;
  envelope.burst_factor = options_.burst_factor;
  envelope.diurnal_period_seconds = options_.diurnal_period_seconds;
  envelope.diurnal_amplitude = options_.diurnal_amplitude;

  const double per_conn_qps =
      options_.qps / static_cast<double>(options_.connections > 0
                                             ? options_.connections
                                             : 1);
  const SteadyClock::time_point start = SteadyClock::now();
  SteadyClock::time_point next_arrival = start;
  uint64_t submitted = 0;

  // request_id -> submit wall time, for RTT + conservation accounting.
  std::unordered_map<uint64_t, SteadyClock::time_point> pending;

  auto absorb = [&](const ClientCompletion& completion) {
    auto it = pending.find(completion.request_id);
    if (it == pending.end()) {
      unmatched_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const double rtt =
        std::chrono::duration<double>(SteadyClock::now() - it->second)
            .count();
    pending.erase(it);
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (completed_counter_ != nullptr) completed_counter_->Inc();
    if (rtt_hist_ != nullptr) rtt_hist_->Record(rtt);
  };

  auto draw_query = [&]() {
    const size_t pick = rng.Categorical(weights);
    const RemoteMixEntry& entry = options_.mix[pick];
    workload::Query query =
        entry.type == workload::WorkloadType::kOlap ? olap.Next()
                                                    : oltp.Next();
    query.class_id = entry.class_id;
    query.client_id =
        index * options_.num_clients +
        static_cast<int>(submitted % static_cast<uint64_t>(
                                         options_.num_clients > 0
                                             ? options_.num_clients
                                             : 1));
    ++submitted;
    return query;
  };

  auto schedule_next_arrival = [&]() {
    // From the pattern's current rate; an overloaded client falls
    // behind, so do not let the backlog of arrivals explode unboundedly.
    const double rate = per_conn_qps * rt::LoadGenerator::RateFactorAt(
                                           SecondsSince(start), envelope);
    const double dt = rate > 0.0 ? rng.Exponential(1.0 / rate) : 0.010;
    next_arrival += std::chrono::duration_cast<SteadyClock::duration>(
        std::chrono::duration<double>(dt));
    const SteadyClock::time_point now = SteadyClock::now();
    if (next_arrival < now) next_arrival = now;
  };

  // In pipeline mode a query is counted pending at SubmitNoWait time; a
  // later REJECTED verdict takes it back out. In blocking mode verdicts
  // arrive inline and this sees only its own entries.
  auto process_verdict = [&](const Client::SubmitResult& sr) {
    if (sr.accepted) {
      accepted_.fetch_add(1, std::memory_order_relaxed);
    } else {
      pending.erase(sr.request_id);
      if (sr.reject_reason == rt::RejectReason::kShuttingDown) {
        rejected_shutting_down_.fetch_add(1, std::memory_order_relaxed);
      } else if (sr.reject_reason ==
                 rt::RejectReason::kBackendUnavailable) {
        rejected_backend_unavailable_.fetch_add(1,
                                                std::memory_order_relaxed);
      } else {
        rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  auto drain_verdicts = [&]() {
    Client::SubmitResult sr;
    while (client->PopVerdict(&sr)) process_verdict(sr);
  };

  if (options_.pipeline) {
    const size_t depth_limit = static_cast<size_t>(
        options_.max_outstanding > 0 ? options_.max_outstanding : 128);
    while (SecondsSince(start) < options_.duration_wall_seconds) {
      // Wait out the gap to the next arrival, absorbing whatever the
      // server sends meanwhile.
      while (true) {
        const double wait = std::chrono::duration<double>(
                                next_arrival - SteadyClock::now())
                                .count();
        Result<Client::PolledCompletion> polled =
            client->PollCompletion(wait > 0.0 ? wait : 0.0);
        if (!polled.ok()) return polled.status();
        drain_verdicts();
        if (polled.ValueOrDie().found) {
          absorb(polled.ValueOrDie().completion);
          continue;
        }
        break;  // Timed out: the arrival is due (or overdue).
      }

      // Queue every due arrival; one Flush() then carries the whole
      // burst in a single send(). This is what lets offered throughput
      // exceed connections/RTT.
      size_t batched = 0;
      while (SteadyClock::now() >= next_arrival &&
             SecondsSince(start) < options_.duration_wall_seconds) {
        // Backpressure: bound the per-connection pipeline depth.
        while (client->outstanding() + client->verdicts_pending() >=
               depth_limit) {
          QSCHED_RETURN_NOT_OK(client->Flush());
          Result<Client::PolledCompletion> polled =
              client->PollCompletion(0.050);
          if (!polled.ok()) return polled.status();
          drain_verdicts();
          if (polled.ValueOrDie().found) {
            absorb(polled.ValueOrDie().completion);
          }
        }
        workload::Query query = draw_query();
        offered_.fetch_add(1, std::memory_order_relaxed);
        if (offered_counter_ != nullptr) offered_counter_->Inc();
        Result<uint64_t> rid = client->SubmitNoWait(query);
        if (!rid.ok()) return rid.status();
        pending.emplace(rid.ValueOrDie(), SteadyClock::now());
        ++batched;
        schedule_next_arrival();
      }
      if (batched > 0) QSCHED_RETURN_NOT_OK(client->Flush());

      // Absorb whatever already came back, without blocking.
      while (true) {
        Result<Client::PolledCompletion> polled =
            client->PollCompletion(0.0);
        if (!polled.ok()) return polled.status();
        drain_verdicts();
        if (!polled.ValueOrDie().found) break;
        absorb(polled.ValueOrDie().completion);
      }
    }

    // Resolve every still-owed verdict before draining, so rejected
    // queries are out of `pending` and accepted ones are counted.
    QSCHED_RETURN_NOT_OK(client->Flush());
    while (client->verdicts_pending() > 0) {
      Result<Client::SubmitResult> verdict = client->NextVerdict();
      if (!verdict.ok()) return verdict.status();
      process_verdict(verdict.ValueOrDie());
    }
  } else {
    while (SecondsSince(start) < options_.duration_wall_seconds) {
      // Drain any completions that arrived, then wait out the gap to the
      // next arrival doing the same.
      while (true) {
        const double wait = std::chrono::duration<double>(
                                next_arrival - SteadyClock::now())
                                .count();
        Result<Client::PolledCompletion> polled =
            client->PollCompletion(wait > 0.0 ? wait : 0.0);
        if (!polled.ok()) return polled.status();
        if (polled.ValueOrDie().found) {
          absorb(polled.ValueOrDie().completion);
          continue;
        }
        break;  // Timed out: the arrival is due (or overdue).
      }
      if (SteadyClock::now() < next_arrival) continue;

      // Draw and submit one query, blocking for its verdict.
      workload::Query query = draw_query();
      offered_.fetch_add(1, std::memory_order_relaxed);
      if (offered_counter_ != nullptr) offered_counter_->Inc();
      const SteadyClock::time_point sent_at = SteadyClock::now();
      Result<Client::SubmitResult> verdict = client->Submit(query);
      if (!verdict.ok()) return verdict.status();
      const Client::SubmitResult& sr = verdict.ValueOrDie();
      if (sr.accepted) pending.emplace(sr.request_id, sent_at);
      process_verdict(sr);
      schedule_next_arrival();
    }
  }
  const SteadyClock::time_point feed_end = SteadyClock::now();

  // Drain: collect every outstanding completion, then reconcile.
  Status drained = client->Drain();
  if (!drained.ok()) return drained;
  while (true) {
    Result<Client::PolledCompletion> polled = client->PollCompletion(0.0);
    if (!polled.ok()) return polled.status();
    if (!polled.ValueOrDie().found) break;
    absorb(polled.ValueOrDie().completion);
  }
  drain_verdicts();
  lost_.fetch_add(pending.size(), std::memory_order_relaxed);

  const double feed_s =
      std::chrono::duration<double>(feed_end - start).count();
  const double drain_s =
      std::chrono::duration<double>(SteadyClock::now() - feed_end).count();
  {
    std::lock_guard<std::mutex> lock(phase_mu_);
    if (feed_s > feed_seconds_) feed_seconds_ = feed_s;
    if (drain_s > drain_seconds_) drain_seconds_ = drain_s;
  }
  return Status::OK();
}

double RemoteLoadGenerator::feed_seconds() const {
  std::lock_guard<std::mutex> lock(phase_mu_);
  return feed_seconds_;
}

double RemoteLoadGenerator::drain_seconds() const {
  std::lock_guard<std::mutex> lock(phase_mu_);
  return drain_seconds_;
}

// ---------------------------------------------------------------------------
// Malformed-frame injection
// ---------------------------------------------------------------------------

namespace {

/// Sends `bytes` then reads until EOF or an ERROR frame, with a deadline.
/// OK when the server answered with ERROR and/or closed the connection.
Status ProbeOnce(const std::string& host, uint16_t port,
                 const std::vector<uint8_t>& bytes) {
  Result<int> connected = ConnectFd(host, port);
  if (!connected.ok()) return connected.status();
  const int fd = connected.ValueOrDie();
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n =
        send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      // The server may already have closed on us mid-send; that counts
      // as surviving the injection.
      close(fd);
      return Status::OK();
    }
    sent += static_cast<size_t>(n);
  }
  // Half-close so a probe the server legitimately treats as a truncated
  // stream prefix (waiting for more bytes) resolves to EOF + close.
  shutdown(fd, SHUT_WR);
  std::vector<uint8_t> inbuf;
  const SteadyClock::time_point t0 = SteadyClock::now();
  bool saw_error_frame = false;
  while (SecondsSince(t0) < 5.0) {
    pollfd pfd{fd, POLLIN, 0};
    int rc = poll(&pfd, 1, 200);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) continue;
    uint8_t chunk[4096];
    ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // RST etc. — the server dropped us, which is fine.
    }
    if (n == 0) {
      close(fd);
      return Status::OK();  // Clean close after (optionally) the ERROR.
    }
    inbuf.insert(inbuf.end(), chunk, chunk + n);
    Frame frame;
    size_t consumed = 0;
    if (DecodeFrame(inbuf.data(), inbuf.size(), &frame, &consumed) ==
            DecodeStatus::kOk &&
        frame.type == FrameType::kError) {
      saw_error_frame = true;
      inbuf.erase(inbuf.begin(), inbuf.begin() + static_cast<long>(consumed));
    }
  }
  close(fd);
  if (saw_error_frame) return Status::OK();
  return Status::Internal(
      "server neither replied with ERROR nor closed the connection "
      "within 5s of a malformed frame");
}

}  // namespace

Status InjectMalformedFrames(const std::string& host, uint16_t port,
                             int count, uint64_t seed) {
  Rng rng(seed, 0xda3e39cb94b95bdbULL);
  for (int i = 0; i < count; ++i) {
    std::vector<uint8_t> bytes;
    switch (i % 5) {
      case 0: {
        // Bad version.
        Frame frame;
        frame.type = FrameType::kPing;
        frame.request_id = 1;
        EncodeFrame(frame, &bytes);
        bytes[4] = 0xEE;  // version byte
        break;
      }
      case 1: {
        // Unknown frame type.
        Frame frame;
        frame.type = FrameType::kPing;
        frame.request_id = 2;
        EncodeFrame(frame, &bytes);
        bytes[5] = 0xC8;  // type byte
        break;
      }
      case 2: {
        // Oversized payload_length (claims 16 MiB).
        const uint32_t huge = 16u * 1024u * 1024u;
        bytes = {static_cast<uint8_t>(huge & 0xFF),
                 static_cast<uint8_t>((huge >> 8) & 0xFF),
                 static_cast<uint8_t>((huge >> 16) & 0xFF),
                 static_cast<uint8_t>((huge >> 24) & 0xFF),
                 kProtocolVersion,
                 static_cast<uint8_t>(FrameType::kSubmit)};
        break;
      }
      case 3: {
        // SUBMIT whose payload_length covers only the header: the body
        // is missing, which is malformed (not merely short).
        bytes = {10, 0, 0, 0, kProtocolVersion,
                 static_cast<uint8_t>(FrameType::kSubmit),
                 0, 0, 0, 0, 0, 0, 0, 7};
        break;
      }
      default: {
        // Random garbage with a random claimed length.
        const size_t len = static_cast<size_t>(rng.UniformInt(4, 64));
        bytes.resize(len);
        for (auto& b : bytes) {
          b = static_cast<uint8_t>(rng.NextU32() & 0xFF);
        }
        // Claim exactly the bytes that follow the length field, so the
        // frame is complete and judged rather than waited for.
        bytes[0] = static_cast<uint8_t>(len - 4);
        bytes[1] = 0;
        bytes[2] = 0;
        bytes[3] = 0;
        break;
      }
    }
    QSCHED_RETURN_NOT_OK(ProbeOnce(host, port, bytes));
  }
  return Status::OK();
}

}  // namespace qsched::net
