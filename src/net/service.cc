#include "net/service.h"

#include <utility>

#include "obs/stage_trace.h"

namespace qsched::net {

SubmitDisposition GatewayService::Submit(const workload::Query& query,
                                         bool want_trace,
                                         VerdictFn on_verdict,
                                         CompleteFn on_complete) {
  (void)on_verdict;  // verdicts are synchronous on the direct path
  rt::RejectReason reason = rt::RejectReason::kQueueFull;
  bool accepted = gateway_->Offer(
      query,
      [want_trace, on_complete = std::move(on_complete)](
          const workload::QueryRecord& record) {
        ServiceCompletion completion;
        completion.class_id = record.class_id;
        completion.response_seconds = record.ResponseSeconds();
        completion.exec_seconds = record.ExecSeconds();
        completion.cancelled = record.cancelled;
        if (record.trace != nullptr) {
          // Copy the stage durations here, on the clock thread where the
          // trace was just finalized; the consumer only sees plain
          // doubles. want_trace=false still fills has_trace so the
          // server's flush-stage histogram works; the encoder never puts
          // the context on the wire unless the client asked.
          const obs::QueryStageTrace& trace = *record.trace;
          completion.has_trace = true;
          completion.want_trace = want_trace;
          completion.trace_id = trace.trace_id;
          completion.stage_gateway_queue_seconds =
              trace.GatewayQueueSeconds();
          completion.stage_dispatch_seconds = trace.DispatchSeconds();
          completion.stage_execute_seconds = trace.ExecuteSeconds();
          completion.completed_wall = trace.completed;
        }
        on_complete(completion);
      },
      &reason);
  return accepted ? SubmitDisposition::Accepted()
                  : SubmitDisposition::Rejected(reason);
}

WireStats GatewayService::Stats() {
  WireStats stats;
  stats.accepted = gateway_->accepted();
  stats.rejected_queue_full = gateway_->rejected_queue_full();
  stats.rejected_shutting_down = gateway_->rejected_shutting_down();
  stats.completed = gateway_->completed();
  stats.queue_depth = gateway_->queue_depth();
  stats.admitted = gateway_->admitted();
  if (telemetry_ != nullptr) {
    for (int class_id : telemetry_->slo.ObservedClasses()) {
      stats.class_attainment.push_back(
          {class_id, telemetry_->slo.RollingAttainment(class_id)});
    }
  }
  return stats;
}

bool GatewayService::shutting_down() {
  return gateway_->health() != rt::GatewayHealth::kAccepting;
}

}  // namespace qsched::net
