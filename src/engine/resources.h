#ifndef QSCHED_ENGINE_RESOURCES_H_
#define QSCHED_ENGINE_RESOURCES_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "common/rng.h"
#include "sim/clock.h"

namespace qsched::engine {

/// Event-driven generalized processor sharing (GPS) CPU pool with
/// `num_servers` cores: with n active jobs each runs at rate
/// min(1, num_servers / n) cores. This is the standard fluid approximation
/// of a DBMS's round-robin CPU scheduling, and is what makes concurrent
/// OLAP work slow down OLTP transactions in the simulated engine.
class ProcessorSharingPool {
 public:
  ProcessorSharingPool(sim::Clock* simulator, int num_servers);

  ProcessorSharingPool(const ProcessorSharingPool&) = delete;
  ProcessorSharingPool& operator=(const ProcessorSharingPool&) = delete;

  /// Submits `demand_seconds` of single-core work; `done` fires when the
  /// job has accumulated that much service. Zero/negative demand completes
  /// via an immediate event. Returns a job id (diagnostic only).
  uint64_t Submit(double demand_seconds, std::function<void()> done);

  size_t active_jobs() const { return jobs_.size(); }
  int num_servers() const { return num_servers_; }

  /// Core-seconds of service delivered so far.
  double busy_core_seconds() const;

  /// Mean utilization in [0,1] over the run so far.
  double Utilization() const;

 private:
  struct Job {
    double remaining;
    std::function<void()> done;
  };

  /// Credits service for the time elapsed since the last update.
  void Advance();
  /// Reschedules the completion event for the job finishing soonest.
  void ScheduleNextCompletion();
  void OnCompletionEvent();
  double RatePerJob() const;

  sim::Clock* simulator_;
  int num_servers_;
  std::map<uint64_t, Job> jobs_;
  uint64_t next_job_id_ = 1;
  double last_update_time_ = 0.0;
  double busy_core_seconds_ = 0.0;
  sim::EventId completion_event_ = 0;
};

/// Request class for the two-priority disk queues: synchronous reads
/// (transaction index probes) jump ahead of queued bulk work (prefetch
/// bursts, spills), exactly as DB2 services synchronous I/O ahead of the
/// prefetch queue. A request already in service is never preempted, so a
/// high-priority read can still wait out one in-flight burst — that
/// bounded wait is the OLAP-to-OLTP coupling the paper measures in
/// Fig. 2, without unbounded convoy pile-ups.
enum class IoPriority { kHigh, kLow };

/// Array of independent disks, each with a two-priority FIFO queue. A
/// request occupies its disk for `overhead + pages * seconds_per_page`.
/// Requests are routed to a *uniformly random* disk: pages live where
/// data placement put them.
class DiskArray {
 public:
  DiskArray(sim::Clock* simulator, int num_disks,
            double seconds_per_page, double request_overhead_seconds,
            Rng rng);

  DiskArray(const DiskArray&) = delete;
  DiskArray& operator=(const DiskArray&) = delete;

  /// Enqueues a read of `pages` pages; `done` fires at completion.
  /// Zero-page reads complete via an immediate event.
  void SubmitRead(double pages, IoPriority priority,
                  std::function<void()> done);

  /// Enqueues background write traffic (no completion callback) at low
  /// priority; it only adds load ahead of subsequent low-priority work.
  void SubmitDetachedWrite(double pages);

  int num_disks() const { return static_cast<int>(disks_.size()); }

  /// Pages transferred so far (reads + writes).
  double pages_transferred() const { return pages_transferred_; }

  /// Mean utilization in [0,1] over the run so far.
  double Utilization() const;

  /// Requests currently queued (not in service) across all disks.
  size_t queued_requests() const { return queued_requests_; }

 private:
  struct Request {
    double pages;
    std::function<void()> done;
  };
  struct Disk {
    bool busy = false;
    std::deque<Request> high;
    std::deque<Request> low;
  };

  /// Uniformly random disk (models fixed data placement).
  size_t PickDisk();
  double ServiceSeconds(double pages) const;
  /// Starts the next queued request on disk `d`, if any.
  void StartNext(size_t d);
  void BeginService(size_t d, Request request);

  sim::Clock* simulator_;
  double seconds_per_page_;
  double request_overhead_seconds_;
  Rng rng_;
  std::vector<Disk> disks_;
  double pages_transferred_ = 0.0;
  double busy_disk_seconds_ = 0.0;
  size_t queued_requests_ = 0;
};

}  // namespace qsched::engine

#endif  // QSCHED_ENGINE_RESOURCES_H_
