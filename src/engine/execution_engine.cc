#include "engine/execution_engine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"

namespace qsched::engine {

ExecutionEngine::ExecutionEngine(sim::Clock* simulator,
                                 const EngineConfig& config, Rng rng)
    : simulator_(simulator),
      config_(config),
      rng_(rng),
      cpu_pool_(simulator, config.num_cpus),
      disk_array_(simulator, config.num_disks, config.disk_seconds_per_page,
                  config.disk_request_overhead_seconds, rng_.Fork(0x5d15c)),
      olap_pool_(config.olap_pool_pages),
      oltp_pool_(config.oltp_pool_pages) {}

BufferPool& ExecutionEngine::buffer_pool(DatabaseId id) {
  return id == DatabaseId::kOlap ? olap_pool_ : oltp_pool_;
}

void ExecutionEngine::set_telemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) return;
  obs::Registry& reg = telemetry_->registry;
  completed_counter_ = reg.GetCounter("qsched_engine_queries_completed_total");
  exec_seconds_hist_ = reg.GetHistogram("qsched_engine_exec_seconds");
  physical_pages_hist_ =
      reg.GetHistogram("qsched_engine_physical_pages_per_query");
  active_queries_gauge_ = reg.GetGauge("qsched_engine_active_queries");
  cpu_active_jobs_gauge_ = reg.GetGauge("qsched_engine_cpu_active_jobs");
  cpu_utilization_gauge_ = reg.GetGauge("qsched_engine_cpu_utilization");
  disk_queued_gauge_ = reg.GetGauge("qsched_engine_disk_queued_requests");
  disk_utilization_gauge_ = reg.GetGauge("qsched_engine_disk_utilization");
  olap_hit_ratio_gauge_ =
      reg.GetGauge("qsched_engine_bufferpool_hit_ratio", "db=\"olap\"");
  oltp_hit_ratio_gauge_ =
      reg.GetGauge("qsched_engine_bufferpool_hit_ratio", "db=\"oltp\"");
  RefreshTelemetryGauges();
}

void ExecutionEngine::RefreshTelemetryGauges() {
  if (telemetry_ == nullptr) return;
  active_queries_gauge_->Set(static_cast<double>(agents_.size()));
  cpu_active_jobs_gauge_->Set(static_cast<double>(cpu_pool_.active_jobs()));
  cpu_utilization_gauge_->Set(cpu_pool_.Utilization());
  disk_queued_gauge_->Set(
      static_cast<double>(disk_array_.queued_requests()));
  disk_utilization_gauge_->Set(disk_array_.Utilization());
  olap_hit_ratio_gauge_->Set(olap_pool_.ObservedHitRatio());
  oltp_hit_ratio_gauge_->Set(oltp_pool_.ObservedHitRatio());
}

void ExecutionEngine::Execute(const QueryJob& job, DoneCallback on_done) {
  uint64_t agent_id = next_agent_id_++;
  Agent agent;
  agent.job = job;
  agent.on_done = std::move(on_done);
  agent.stats.query_id = job.query_id;
  agent.stats.start_time = simulator_->Now();
  if (job.trace != nullptr) {
    job.trace->exec_start = obs::QueryStageTrace::Clock::now();
  }

  double pages = std::max(0.0, job.logical_pages);
  int chunks = 1;
  if (pages > 0.0) {
    chunks = static_cast<int>(pages / config_.min_chunk_pages);
    chunks = std::clamp(chunks, 1, config_.max_chunks_per_query);
  }
  agent.chunks_total = chunks;
  agent.pages_per_chunk = pages / chunks;
  agent.cpu_per_chunk = std::max(0.0, job.cpu_seconds) / chunks;

  agents_.emplace(agent_id, std::move(agent));
  StartChunk(agent_id);
}

void ExecutionEngine::StartChunk(uint64_t agent_id) {
  auto it = agents_.find(agent_id);
  QSCHED_CHECK(it != agents_.end()) << "unknown agent " << agent_id;
  Agent& agent = it->second;
  if (agent.chunks_done >= agent.chunks_total) {
    FinishQuery(agent_id);
    return;
  }
  BufferPool& pool = buffer_pool(agent.job.database);
  double physical = pool.SamplePhysicalPages(agent.pages_per_chunk,
                                             agent.job.hit_ratio, &rng_);
  pool.RecordReads(agent.pages_per_chunk, physical);
  agent.stats.physical_pages += physical;
  if (physical <= 0.0) {
    OnChunkRead(agent_id);
    return;
  }
  // Stripe large chunks across parallel prefetch requests; proceed when
  // the slowest one completes.
  int ways = 1;
  if (physical >= config_.parallel_min_pages) {
    ways = std::max(1, config_.io_parallelism);
  }
  agent.io_outstanding = ways;
  double per_request = physical / ways;
  // Transactional (OLTP-database) reads are synchronous and served ahead
  // of queued bulk work, as in DB2.
  IoPriority priority = agent.job.database == DatabaseId::kOltp
                            ? IoPriority::kHigh
                            : IoPriority::kLow;
  for (int w = 0; w < ways; ++w) {
    disk_array_.SubmitRead(per_request, priority, [this, agent_id] {
      auto agent_it = agents_.find(agent_id);
      QSCHED_CHECK(agent_it != agents_.end());
      if (--agent_it->second.io_outstanding == 0) {
        OnChunkRead(agent_id);
      }
    });
  }
}

void ExecutionEngine::OnChunkRead(uint64_t agent_id) {
  auto it = agents_.find(agent_id);
  QSCHED_CHECK(it != agents_.end()) << "unknown agent " << agent_id;
  Agent& agent = it->second;
  agent.stats.cpu_seconds += agent.cpu_per_chunk;
  cpu_pool_.Submit(agent.cpu_per_chunk,
                   [this, agent_id] { OnChunkCpu(agent_id); });
}

void ExecutionEngine::OnChunkCpu(uint64_t agent_id) {
  auto it = agents_.find(agent_id);
  QSCHED_CHECK(it != agents_.end()) << "unknown agent " << agent_id;
  Agent& agent = it->second;
  ++agent.chunks_done;
  StartChunk(agent_id);
}

void ExecutionEngine::FinishQuery(uint64_t agent_id) {
  auto it = agents_.find(agent_id);
  QSCHED_CHECK(it != agents_.end()) << "unknown agent " << agent_id;
  Agent& agent = it->second;
  if (agent.job.write_pages > 0.0) {
    disk_array_.SubmitDetachedWrite(agent.job.write_pages);
  }
  agent.stats.end_time = simulator_->Now();
  ExecStats stats = agent.stats;
  DoneCallback done = std::move(agent.on_done);
  agents_.erase(it);
  ++queries_completed_;
  if (telemetry_ != nullptr) {
    completed_counter_->Inc();
    exec_seconds_hist_->Record(stats.end_time - stats.start_time);
    physical_pages_hist_->Record(stats.physical_pages);
    RefreshTelemetryGauges();
  }
  if (done) done(stats);
}

}  // namespace qsched::engine
