#ifndef QSCHED_ENGINE_EXECUTION_ENGINE_H_
#define QSCHED_ENGINE_EXECUTION_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "common/rng.h"
#include "engine/buffer_pool.h"
#include "engine/resources.h"
#include "obs/stage_trace.h"
#include "obs/telemetry.h"
#include "sim/clock.h"

namespace qsched::engine {

/// The two databases of the paper's testbed: TPC-H and TPC-C tables were
/// placed in separate databases so the only contention between workloads
/// is CPU and I/O. Each id gets its own buffer pool.
enum class DatabaseId { kOlap = 0, kOltp = 1 };

/// Everything the engine needs to run one query: the *true* resource
/// demand produced by the cost model (the optimizer's timeron estimate is
/// control-plane information and never reaches the engine).
struct QueryJob {
  uint64_t query_id = 0;
  DatabaseId database = DatabaseId::kOlap;
  /// Single-core CPU demand.
  double cpu_seconds = 0.0;
  /// Logical page reads; the buffer pool decides which miss.
  double logical_pages = 0.0;
  /// Page writes, flushed asynchronously after the query completes.
  double write_pages = 0.0;
  /// Expected buffer-pool hit ratio for this query's footprint.
  double hit_ratio = 0.0;
  /// Wall-clock stage trace, allocated by the rt gateway at admission
  /// (null on the pure-DES path). The engine stamps exec_start when the
  /// query's agent starts running.
  std::shared_ptr<obs::QueryStageTrace> trace;
};

/// Completion record handed to the submitter.
struct ExecStats {
  uint64_t query_id = 0;
  sim::SimTime start_time = 0.0;
  sim::SimTime end_time = 0.0;
  double physical_pages = 0.0;
  double cpu_seconds = 0.0;
};

struct EngineConfig {
  /// The paper's IBM xSeries 240: dual 1 GHz CPUs, 17 SCSI disks.
  int num_cpus = 2;
  int num_disks = 17;
  /// Sequential-ish page transfer time (prefetching amortizes seeks);
  /// ~5 MB/s effective per spindle, period-appropriate for 2001 SCSI
  /// disks serving concurrent scan streams.
  double disk_seconds_per_page = 0.0008;
  /// Fixed cost per I/O request (seek + dispatch).
  double disk_request_overhead_seconds = 0.002;
  /// Execution interleaves I/O and CPU in up to this many chunks. Large
  /// scans therefore issue sizable sequential bursts (hundreds of pages
  /// per request), whose long service times are what short transactions
  /// queue behind — the physical mechanism behind the paper's Fig. 2.
  int max_chunks_per_query = 96;
  /// Chunks are at least this many logical pages; short transactions end
  /// up with a handful of small I/O requests, like real index probes.
  double min_chunk_pages = 16.0;
  /// Prefetch parallelism: a chunk's reads are striped over this many
  /// concurrent disk requests (DB2-style prefetchers). This is what lets
  /// one OLAP scan keep ~2 spindles busy.
  int io_parallelism = 2;
  /// Chunks smaller than this many physical pages use a single request.
  double parallel_min_pages = 64.0;
  /// Buffer pool sizes (4 KB pages). OLAP data is much larger than its
  /// pool; the OLTP hot set fits mostly in its pool.
  uint64_t olap_pool_pages = 20000;
  uint64_t oltp_pool_pages = 16000;
};

/// Simulated DBMS engine: agents execute queries by alternating buffer
/// reads (misses go to the disk array) with CPU bursts on the shared
/// processor-sharing pool. This is the substrate standing in for DB2 UDB.
class ExecutionEngine {
 public:
  using DoneCallback = std::function<void(const ExecStats&)>;

  ExecutionEngine(sim::Clock* simulator, const EngineConfig& config,
                  Rng rng);

  ExecutionEngine(const ExecutionEngine&) = delete;
  ExecutionEngine& operator=(const ExecutionEngine&) = delete;

  /// Starts executing `job`; `on_done` fires at completion with stats.
  /// Admission control happens *before* this call (in a controller);
  /// the engine itself never queues or rejects.
  void Execute(const QueryJob& job, DoneCallback on_done);

  size_t active_queries() const { return agents_.size(); }
  uint64_t queries_completed() const { return queries_completed_; }

  /// Enables telemetry (nullptr = off, the default): completion counters,
  /// execution-time histograms, and CPU/disk/buffer-pool gauges refreshed
  /// on every query completion. `telemetry` must outlive the engine.
  void set_telemetry(obs::Telemetry* telemetry);
  /// Re-reads the utilization/queue/hit-ratio gauges now (they normally
  /// refresh on query completion); no-op with telemetry off. Call before
  /// snapshotting the registry at end of run.
  void RefreshTelemetryGauges();

  const EngineConfig& config() const { return config_; }
  ProcessorSharingPool& cpu_pool() { return cpu_pool_; }
  const ProcessorSharingPool& cpu_pool() const { return cpu_pool_; }
  DiskArray& disk_array() { return disk_array_; }
  const DiskArray& disk_array() const { return disk_array_; }
  BufferPool& buffer_pool(DatabaseId id);

 private:
  struct Agent {
    QueryJob job;
    ExecStats stats;
    DoneCallback on_done;
    int chunks_total = 1;
    int chunks_done = 0;
    double pages_per_chunk = 0.0;
    double cpu_per_chunk = 0.0;
    int io_outstanding = 0;
  };

  void StartChunk(uint64_t agent_id);
  void OnChunkRead(uint64_t agent_id);
  void OnChunkCpu(uint64_t agent_id);
  void FinishQuery(uint64_t agent_id);

  sim::Clock* simulator_;
  EngineConfig config_;
  Rng rng_;
  ProcessorSharingPool cpu_pool_;
  DiskArray disk_array_;
  BufferPool olap_pool_;
  BufferPool oltp_pool_;
  std::unordered_map<uint64_t, Agent> agents_;
  uint64_t next_agent_id_ = 1;
  uint64_t queries_completed_ = 0;

  /// Telemetry handles, cached once so the completion path records
  /// without registry lookups. All nullptr when telemetry is off.
  obs::Telemetry* telemetry_ = nullptr;
  obs::Counter* completed_counter_ = nullptr;
  obs::Histogram* exec_seconds_hist_ = nullptr;
  obs::Histogram* physical_pages_hist_ = nullptr;
  obs::Gauge* active_queries_gauge_ = nullptr;
  obs::Gauge* cpu_active_jobs_gauge_ = nullptr;
  obs::Gauge* cpu_utilization_gauge_ = nullptr;
  obs::Gauge* disk_queued_gauge_ = nullptr;
  obs::Gauge* disk_utilization_gauge_ = nullptr;
  obs::Gauge* olap_hit_ratio_gauge_ = nullptr;
  obs::Gauge* oltp_hit_ratio_gauge_ = nullptr;
};

}  // namespace qsched::engine

#endif  // QSCHED_ENGINE_EXECUTION_ENGINE_H_
