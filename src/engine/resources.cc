#include "engine/resources.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"

namespace qsched::engine {

namespace {
// Service below this remainder counts as complete (guards float drift).
constexpr double kServiceEpsilon = 1e-9;
}  // namespace

ProcessorSharingPool::ProcessorSharingPool(sim::Clock* simulator,
                                           int num_servers)
    : simulator_(simulator), num_servers_(std::max(1, num_servers)) {
  last_update_time_ = simulator_->Now();
}

double ProcessorSharingPool::RatePerJob() const {
  if (jobs_.empty()) return 0.0;
  double n = static_cast<double>(jobs_.size());
  return std::min(1.0, static_cast<double>(num_servers_) / n);
}

void ProcessorSharingPool::Advance() {
  double now = simulator_->Now();
  double dt = now - last_update_time_;
  last_update_time_ = now;
  if (dt <= 0.0 || jobs_.empty()) return;
  double rate = RatePerJob();
  double credited = dt * rate;
  busy_core_seconds_ += credited * static_cast<double>(jobs_.size());
  for (auto& [id, job] : jobs_) {
    job.remaining -= credited;
  }
}

void ProcessorSharingPool::ScheduleNextCompletion() {
  if (completion_event_ != 0) {
    simulator_->Cancel(completion_event_);
    completion_event_ = 0;
  }
  if (jobs_.empty()) return;
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const auto& [id, job] : jobs_) {
    min_remaining = std::min(min_remaining, job.remaining);
  }
  double rate = RatePerJob();
  double delay = std::max(0.0, min_remaining) / rate;
  completion_event_ =
      simulator_->ScheduleAfter(delay, [this] { OnCompletionEvent(); });
}

void ProcessorSharingPool::OnCompletionEvent() {
  completion_event_ = 0;
  Advance();
  // Collect finished jobs first: their callbacks may resubmit work.
  std::vector<std::function<void()>> finished;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (it->second.remaining <= kServiceEpsilon) {
      finished.push_back(std::move(it->second.done));
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  ScheduleNextCompletion();
  for (auto& done : finished) {
    if (done) done();
  }
}

uint64_t ProcessorSharingPool::Submit(double demand_seconds,
                                      std::function<void()> done) {
  uint64_t id = next_job_id_++;
  if (demand_seconds <= 0.0) {
    simulator_->ScheduleAfter(0.0, std::move(done));
    return id;
  }
  Advance();
  jobs_.emplace(id, Job{demand_seconds, std::move(done)});
  ScheduleNextCompletion();
  return id;
}

double ProcessorSharingPool::busy_core_seconds() const {
  // Include service accrued since the last event.
  double accrued = busy_core_seconds_;
  double dt = simulator_->Now() - last_update_time_;
  if (dt > 0.0 && !jobs_.empty()) {
    accrued += dt * RatePerJob() * static_cast<double>(jobs_.size());
  }
  return accrued;
}

double ProcessorSharingPool::Utilization() const {
  double elapsed = simulator_->Now();
  if (elapsed <= 0.0) return 0.0;
  return busy_core_seconds() /
         (elapsed * static_cast<double>(num_servers_));
}

DiskArray::DiskArray(sim::Clock* simulator, int num_disks,
                     double seconds_per_page,
                     double request_overhead_seconds, Rng rng)
    : simulator_(simulator),
      seconds_per_page_(seconds_per_page),
      request_overhead_seconds_(request_overhead_seconds),
      rng_(rng),
      disks_(static_cast<size_t>(std::max(1, num_disks))) {}

size_t DiskArray::PickDisk() {
  return static_cast<size_t>(
      rng_.UniformInt(0, static_cast<int64_t>(disks_.size()) - 1));
}

double DiskArray::ServiceSeconds(double pages) const {
  return request_overhead_seconds_ + std::max(0.0, pages) * seconds_per_page_;
}

void DiskArray::BeginService(size_t d, Request request) {
  Disk& disk = disks_[d];
  disk.busy = true;
  double service = ServiceSeconds(request.pages);
  pages_transferred_ += request.pages;
  busy_disk_seconds_ += service;
  simulator_->ScheduleAfter(
      service, [this, d, done = std::move(request.done)] {
        disks_[d].busy = false;
        if (done) done();
        StartNext(d);
      });
}

void DiskArray::StartNext(size_t d) {
  Disk& disk = disks_[d];
  if (disk.busy) return;
  Request next;
  if (!disk.high.empty()) {
    next = std::move(disk.high.front());
    disk.high.pop_front();
  } else if (!disk.low.empty()) {
    next = std::move(disk.low.front());
    disk.low.pop_front();
  } else {
    return;
  }
  --queued_requests_;
  BeginService(d, std::move(next));
}

void DiskArray::SubmitRead(double pages, IoPriority priority,
                           std::function<void()> done) {
  if (pages <= 0.0) {
    simulator_->ScheduleAfter(0.0, std::move(done));
    return;
  }
  size_t d = PickDisk();
  Disk& disk = disks_[d];
  Request request{pages, std::move(done)};
  if (disk.busy) {
    ++queued_requests_;
    if (priority == IoPriority::kHigh) {
      disk.high.push_back(std::move(request));
    } else {
      disk.low.push_back(std::move(request));
    }
    return;
  }
  BeginService(d, std::move(request));
}

void DiskArray::SubmitDetachedWrite(double pages) {
  if (pages <= 0.0) return;
  SubmitRead(pages, IoPriority::kLow, nullptr);
}

double DiskArray::Utilization() const {
  double elapsed = simulator_->Now();
  if (elapsed <= 0.0) return 0.0;
  return busy_disk_seconds_ /
         (elapsed * static_cast<double>(disks_.size()));
}

}  // namespace qsched::engine
