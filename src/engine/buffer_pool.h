#ifndef QSCHED_ENGINE_BUFFER_POOL_H_
#define QSCHED_ENGINE_BUFFER_POOL_H_

#include <cstdint>

#include "common/rng.h"

namespace qsched::engine {

/// Analytic buffer-pool model for one database. Rather than simulating
/// page-level LRU (millions of events per OLAP scan), it prices a query's
/// expected hit ratio from the footprint it touches, and samples the
/// number of physical reads for each chunk of logical reads.
///
/// The hit-ratio curve is the standard working-set approximation
///   hit = min(max_hit, reuse * pool_pages / (pool_pages + footprint))
/// which yields ~0.9 for OLTP (small hot footprint) and ~0.2 for OLAP
/// scans over data much larger than the pool, matching the paper's setup
/// of separate OLTP/OLAP databases with independent pools.
class BufferPool {
 public:
  /// `reuse_factor` captures access locality (index traversals revisit hot
  /// pages); `max_hit_ratio` caps hits since some fraction of pages is
  /// always cold (first touch).
  BufferPool(uint64_t pool_pages, double reuse_factor = 2.0,
             double max_hit_ratio = 0.97);

  uint64_t pool_pages() const { return pool_pages_; }

  /// Expected hit probability for accesses over `footprint_pages` of data.
  double HitProbability(double footprint_pages) const;

  /// Samples physical reads for `logical_pages` accesses at hit ratio
  /// `hit_ratio` (binomial, with a normal approximation above 64 pages).
  double SamplePhysicalPages(double logical_pages, double hit_ratio,
                             Rng* rng) const;

  // Cumulative accounting.
  uint64_t logical_reads() const { return logical_reads_; }
  uint64_t physical_reads() const { return physical_reads_; }
  /// Observed hit ratio so far (1.0 when no reads yet).
  double ObservedHitRatio() const;

  /// Adds to the cumulative counters (called by the execution engine).
  void RecordReads(double logical, double physical);

 private:
  uint64_t pool_pages_;
  double reuse_factor_;
  double max_hit_ratio_;
  uint64_t logical_reads_ = 0;
  uint64_t physical_reads_ = 0;
};

}  // namespace qsched::engine

#endif  // QSCHED_ENGINE_BUFFER_POOL_H_
