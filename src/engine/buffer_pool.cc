#include "engine/buffer_pool.h"

#include <algorithm>
#include <cmath>

namespace qsched::engine {

BufferPool::BufferPool(uint64_t pool_pages, double reuse_factor,
                       double max_hit_ratio)
    : pool_pages_(std::max<uint64_t>(1, pool_pages)),
      reuse_factor_(std::max(0.0, reuse_factor)),
      max_hit_ratio_(std::clamp(max_hit_ratio, 0.0, 1.0)) {}

double BufferPool::HitProbability(double footprint_pages) const {
  if (footprint_pages <= 0.0) return max_hit_ratio_;
  double pool = static_cast<double>(pool_pages_);
  double hit = reuse_factor_ * pool / (pool + footprint_pages);
  return std::clamp(hit, 0.0, max_hit_ratio_);
}

double BufferPool::SamplePhysicalPages(double logical_pages,
                                       double hit_ratio, Rng* rng) const {
  if (logical_pages <= 0.0) return 0.0;
  double miss = std::clamp(1.0 - hit_ratio, 0.0, 1.0);
  double n = logical_pages;
  if (rng == nullptr) return n * miss;
  if (n <= 64.0) {
    // Exact Bernoulli draws for small chunks.
    int64_t whole = static_cast<int64_t>(n);
    double misses = 0.0;
    for (int64_t i = 0; i < whole; ++i) {
      if (rng->Bernoulli(miss)) misses += 1.0;
    }
    misses += (n - static_cast<double>(whole)) * miss;
    return misses;
  }
  // Normal approximation of Binomial(n, miss).
  double mean = n * miss;
  double stddev = std::sqrt(std::max(0.0, n * miss * (1.0 - miss)));
  double sample = rng->Normal(mean, stddev);
  return std::clamp(sample, 0.0, n);
}

double BufferPool::ObservedHitRatio() const {
  if (logical_reads_ == 0) return 1.0;
  return 1.0 - static_cast<double>(physical_reads_) /
                   static_cast<double>(logical_reads_);
}

void BufferPool::RecordReads(double logical, double physical) {
  logical_reads_ += static_cast<uint64_t>(std::llround(std::max(0.0, logical)));
  physical_reads_ +=
      static_cast<uint64_t>(std::llround(std::max(0.0, physical)));
}

}  // namespace qsched::engine
