#include "engine/clock_buffer_pool.h"

#include <algorithm>
#include <cmath>

namespace qsched::engine {

ClockBufferPool::ClockBufferPool(uint64_t capacity_pages,
                                 int pages_per_extent)
    : capacity_pages_(std::max<uint64_t>(1, capacity_pages)),
      pages_per_extent_(std::max(1, pages_per_extent)) {
  max_frames_ = static_cast<size_t>(
      std::max<uint64_t>(1, capacity_pages_ / pages_per_extent_));
  frames_.reserve(max_frames_);
}

size_t ClockBufferPool::EvictOne() {
  // Classic CLOCK: sweep, clearing reference bits, until an unreferenced
  // frame is found.
  for (;;) {
    if (clock_hand_ >= frames_.size()) clock_hand_ = 0;
    Frame& frame = frames_[clock_hand_];
    if (frame.referenced) {
      frame.referenced = false;
      ++clock_hand_;
      continue;
    }
    resident_.erase(frame.key);
    return clock_hand_++;
  }
}

double ClockBufferPool::Access(uint64_t object_id, double first_page,
                               double pages) {
  if (pages <= 0.0) return 0.0;
  uint64_t begin = static_cast<uint64_t>(std::max(0.0, first_page)) /
                   pages_per_extent_;
  uint64_t end = static_cast<uint64_t>(
                     std::max(0.0, first_page) +
                     std::ceil(pages)) /
                 pages_per_extent_;
  double missed_pages = 0.0;
  double remaining = pages;
  for (uint64_t e = begin; e <= end && remaining > 0.0; ++e) {
    double in_extent = std::min(remaining,
                                static_cast<double>(pages_per_extent_));
    remaining -= in_extent;
    logical_pages_ += static_cast<uint64_t>(std::llround(in_extent));
    uint64_t key = Key(object_id, e);
    auto it = resident_.find(key);
    if (it != resident_.end()) {
      frames_[it->second].referenced = true;
      continue;
    }
    // Miss: fault the extent in.
    missed_pages += in_extent;
    size_t slot;
    if (frames_.size() < max_frames_) {
      frames_.push_back(Frame{key, true});
      slot = frames_.size() - 1;
    } else {
      slot = EvictOne();
      frames_[slot] = Frame{key, true};
    }
    resident_[key] = slot;
  }
  physical_pages_ += static_cast<uint64_t>(std::llround(missed_pages));
  return missed_pages;
}

double ClockBufferPool::HitRatio() const {
  if (logical_pages_ == 0) return 1.0;
  return 1.0 - static_cast<double>(physical_pages_) /
                   static_cast<double>(logical_pages_);
}

}  // namespace qsched::engine
