#ifndef QSCHED_ENGINE_CLOCK_BUFFER_POOL_H_
#define QSCHED_ENGINE_CLOCK_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace qsched::engine {

/// Reference-granular CLOCK (second-chance) buffer pool over *extents*
/// (fixed groups of pages). Where `BufferPool` prices hits analytically,
/// this one actually tracks residency, so scan thrashing, working-set
/// displacement and cold starts emerge instead of being assumed. The
/// engine simulates I/O in chunks of hundreds of pages, so extent
/// granularity (default 32 pages) keeps the simulation fast while
/// preserving replacement dynamics.
///
/// Objects (tables) are identified by caller-chosen ids; accesses name
/// an (object, extent-range) and return how many pages missed.
class ClockBufferPool {
 public:
  /// `capacity_pages` is the pool size; extents of `pages_per_extent`.
  explicit ClockBufferPool(uint64_t capacity_pages,
                           int pages_per_extent = 32);

  /// Touches `pages` pages of `object_id` starting at page offset
  /// `first_page`. Returns the number of pages that missed (and were
  /// faulted in, evicting victims by CLOCK).
  double Access(uint64_t object_id, double first_page, double pages);

  uint64_t capacity_pages() const { return capacity_pages_; }
  int pages_per_extent() const { return pages_per_extent_; }
  size_t resident_extents() const { return resident_.size(); }

  uint64_t logical_pages() const { return logical_pages_; }
  uint64_t physical_pages() const { return physical_pages_; }
  /// Observed hit ratio so far (1.0 before any access).
  double HitRatio() const;

 private:
  struct Frame {
    uint64_t key;
    bool referenced;
  };

  /// Packs (object, extent index) into one key.
  static uint64_t Key(uint64_t object_id, uint64_t extent_index) {
    return (object_id << 40) ^ extent_index;
  }

  /// Evicts one extent by CLOCK and returns its frame slot.
  size_t EvictOne();

  uint64_t capacity_pages_;
  int pages_per_extent_;
  size_t max_frames_;
  std::vector<Frame> frames_;
  /// key -> index into frames_.
  std::unordered_map<uint64_t, size_t> resident_;
  size_t clock_hand_ = 0;
  uint64_t logical_pages_ = 0;
  uint64_t physical_pages_ = 0;
};

}  // namespace qsched::engine

#endif  // QSCHED_ENGINE_CLOCK_BUFFER_POOL_H_
