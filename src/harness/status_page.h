#ifndef QSCHED_HARNESS_STATUS_PAGE_H_
#define QSCHED_HARNESS_STATUS_PAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/svg.h"
#include "obs/telemetry.h"
#include "obs/timeseries.h"

namespace qsched::harness {

/// Per-stage latency breakdown chart from the interval recorder: for
/// each control interval, the completion-weighted mean of the per-class
/// stage columns, as three series (gateway queue / dispatch / execute)
/// meant for obs::RenderStackedAreaChart — stacked they read as mean
/// end-to-end latency. Returns a spec with no series when the rows carry
/// no stage data (pure DES runs).
obs::SvgChartSpec BuildLatencyBreakdownSpec(
    const std::vector<obs::IntervalRow>& rows);

/// Header facts for the live status page, read from the serving runtime
/// at request time.
struct StatusPageInfo {
  std::string title = "qsched live status";
  /// Gateway lifecycle: "accepting" / "draining" / "stopped".
  std::string health = "accepting";
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t completed = 0;
  uint64_t queue_depth = 0;
  double uptime_seconds = 0.0;
};

/// Renders the GET /statusz document: a fully self-contained HTML
/// snapshot of the live run — serving state and intake tiles, the SLO
/// attainment chart, the stacked per-stage latency breakdown, and the
/// full metric table — styled identically to the offline run report
/// (same stylesheet, inline SVG, no scripts, no external assets).
/// `telemetry` may be nullptr; the page then carries the tiles only.
std::string RenderStatusPage(const StatusPageInfo& info,
                             const obs::Telemetry* telemetry);

}  // namespace qsched::harness

#endif  // QSCHED_HARNESS_STATUS_PAGE_H_
