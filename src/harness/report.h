#ifndef QSCHED_HARNESS_REPORT_H_
#define QSCHED_HARNESS_REPORT_H_

#include <ostream>

#include "harness/experiment.h"
#include "scheduler/service_class.h"

namespace qsched::harness {

/// Rendering options for the paper-style figure tables.
struct ReportOptions {
  /// Per-period table (Figures 4-6 style: velocity for OLAP classes,
  /// mean response for OLTP classes, goal-met markers).
  bool per_period = true;
  /// Per-period cost limits (Figure 7 style), when the run recorded them.
  bool cost_limits = false;
  /// Goal-attainment and engine-utilization summary lines.
  bool summary = true;
};

/// Writes the standard performance figure for `result` under the class
/// definitions in `classes` (velocity classes print velocity, response
/// classes print mean response seconds).
void PrintPerformanceReport(const ExperimentResult& result,
                            const sched::ServiceClassSet& classes,
                            const ReportOptions& options,
                            std::ostream& out);

}  // namespace qsched::harness

#endif  // QSCHED_HARNESS_REPORT_H_
