#include "harness/parallel.h"

#include <atomic>
#include <exception>
#include <utility>

namespace qsched::harness {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

int DefaultJobs() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ResolveJobs(int jobs) {
  if (jobs == 0) return DefaultJobs();
  return jobs < 1 ? 1 : jobs;
}

void ParallelFor(int n, int jobs, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  jobs = ResolveJobs(jobs);
  if (jobs <= 1 || n <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  std::exception_ptr first_error;
  std::mutex error_mu;
  ThreadPool pool(jobs < n ? jobs : n);
  for (int i = 0; i < n; ++i) {
    pool.Submit([&fn, &first_error, &error_mu, i] {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  pool.Wait();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace qsched::harness
