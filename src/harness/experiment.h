#ifndef QSCHED_HARNESS_EXPERIMENT_H_
#define QSCHED_HARNESS_EXPERIMENT_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include <memory>

#include "engine/execution_engine.h"
#include "metrics/trace_writer.h"
#include "obs/telemetry.h"
#include "qp/interceptor.h"
#include "qp/qp_controller.h"
#include "scheduler/mpl_controller.h"
#include "scheduler/query_scheduler.h"
#include "scheduler/service_class.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "workload/schedule.h"
#include "workload/tpcc_workload.h"
#include "workload/tpch_workload.h"

namespace qsched::harness {

/// Which workload controller fronts the engine — the paper's three
/// experiments plus the extensions.
enum class ControllerKind {
  kNoControl,       // Fig. 4: system cost limit only
  kQpNoPriority,    // mentioned in §4.1.2: behaves like no control
  kQpPriority,      // Fig. 5: DB2 QP static groups + priority
  kQueryScheduler,  // Fig. 6/7: the paper's contribution
  kMpl,             // extension: Schroeder-style MPL control
  kQsDirectOltp,    // extension: future-work direct OLTP control
};

const char* ControllerKindToString(ControllerKind kind);

/// Everything one experiment run needs. Defaults reproduce the paper's
/// testbed at the reproduction's time scale.
struct ExperimentConfig {
  uint64_t seed = 42;
  /// Period length. The paper ran 18 x 80 min; the reproduction default
  /// compresses to 18 x 600 s, which still gives each period ten control
  /// intervals (enough for the planner to settle) and thousands of OLTP
  /// completions.
  double period_seconds = 600.0;
  double system_cost_limit = 300000.0;

  engine::EngineConfig engine;
  workload::TpchWorkloadParams tpch;
  workload::TpccWorkloadParams tpcc;
  qp::InterceptorConfig interceptor;
  sched::QuerySchedulerConfig qs;
  sched::MplController::Options mpl;

  /// DB2 QP static strategy: fraction of the system cost limit granted to
  /// OLAP, and group concurrency caps. Thresholds (top 5% large, next 15%
  /// medium) are derived by sampling the workload's cost distribution.
  double qp_olap_limit_fraction = 0.7;
  int qp_max_large = 2;
  int qp_max_medium = 4;
  int qp_max_small = 16;

  /// When true, every finished query is also kept in a bounded record
  /// log (ExperimentResult::trace) for CSV export / offline analysis.
  bool capture_trace = false;
  size_t trace_capacity = 1 << 20;

  /// Telemetry sink (nullptr = observability off, the default). When set,
  /// the engine, client pools and (for the Query Scheduler controllers)
  /// the whole control loop record metrics, per-query spans and planner
  /// audit records into it; RunExperiment also copies a final registry
  /// snapshot into ExperimentResult::metric_snapshot. Must outlive the
  /// run.
  obs::Telemetry* telemetry = nullptr;

  /// Overrides; default to the paper's Figure 3 schedule / classes.
  std::optional<workload::WorkloadSchedule> schedule;
  std::optional<sched::ServiceClassSet> classes;

  /// Sanity-checks the configuration (positive durations/limits, engine
  /// parameters, class min-shares summing below 1, schedule/class id
  /// agreement). RunExperiment aborts on an invalid config; callers
  /// accepting external input should Validate first.
  Status Validate() const;
};

/// Plain-data outcome of a run: the per-period series each figure plots,
/// plus engine/system accounting.
struct ExperimentResult {
  ControllerKind controller = ControllerKind::kNoControl;
  int num_periods = 0;
  double period_seconds = 0.0;

  /// Per class id.
  std::map<int, std::vector<double>> velocity_series;
  std::map<int, std::vector<double>> response_series;
  std::map<int, std::vector<int>> completed_series;
  std::map<int, int> periods_meeting_goal;
  /// SLO attainment per class: periods_meeting_goal over the periods
  /// that completed at least one query of the class.
  std::map<int, double> attainment_ratio;
  std::map<int, double> overall_velocity;
  std::map<int, double> overall_response;
  std::map<int, int> overall_completed;

  /// Query Scheduler only: cost-limit decisions over time (Fig. 7) and
  /// the per-period mean limit per class.
  std::map<int, sim::TimeSeries> limit_history;
  std::map<int, std::vector<double>> period_mean_limits;
  double oltp_model_slope = 0.0;

  double cpu_utilization = 0.0;
  double disk_utilization = 0.0;
  uint64_t total_completed = 0;
  uint64_t engine_queries_completed = 0;

  /// Simulator events executed during the run — the DES hot-path work.
  uint64_t sim_events_processed = 0;
  /// Host wall-clock seconds spent inside the simulation loop. The only
  /// non-deterministic field in the result; reported as the
  /// `qsched_sim_wall_seconds` / `qsched_sim_events_per_second` telemetry
  /// gauges and by bench/perf_bench.
  double wall_seconds = 0.0;

  /// Set when ExperimentConfig::capture_trace was true.
  std::shared_ptr<metrics::RecordLog> trace;

  /// End-of-run metrics registry snapshot (empty unless
  /// ExperimentConfig::telemetry was set).
  std::vector<obs::MetricSnapshot> metric_snapshot;

  /// Derived control-loop observability, filled only for telemetry-enabled
  /// Query Scheduler runs (empty otherwise): per-class SLO attainment at
  /// control-interval granularity, violation-event counts, and the
  /// prediction ledger's residual summaries.
  std::map<int, double> interval_attainment;
  std::map<int, int> slo_violation_events;
  std::map<int, obs::ResidualStats> prediction_residuals;
};

/// Runs one full experiment (schedule x controller) and extracts the
/// figure series. Deterministic for a given config.
ExperimentResult RunExperiment(const ExperimentConfig& config,
                               ControllerKind kind);

/// A Fig. 2-style measurement: constant client mix, static OLAP cost
/// limit, measured after warmup. Returns the OLTP class's mean response
/// time (seconds), and through `out_olap_throughput` (optional) the OLAP
/// completion rate — the system-cost-limit curve uses the same runner.
double MeasureOltpResponse(const ExperimentConfig& base, int oltp_clients,
                           int olap_clients, double olap_cost_limit,
                           double duration_seconds,
                           double* out_olap_throughput = nullptr);

/// Derives DB2 QP's large/medium thresholds (95th/80th cost percentiles)
/// by sampling the OLAP workload's cost distribution.
void DeriveQpThresholds(const ExperimentConfig& config,
                        double* large_threshold, double* medium_threshold);

}  // namespace qsched::harness

#endif  // QSCHED_HARNESS_EXPERIMENT_H_
