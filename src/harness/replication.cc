#include "harness/replication.h"

#include <cmath>
#include <utility>

#include "common/strings.h"
#include "harness/parallel.h"

namespace qsched::harness {
namespace {

SeriesSummary Summarize(const std::vector<std::vector<double>>& runs) {
  SeriesSummary summary;
  if (runs.empty()) return summary;
  size_t periods = runs.front().size();
  double n = static_cast<double>(runs.size());
  for (size_t p = 0; p < periods; ++p) {
    double sum = 0.0;
    for (const auto& run : runs) sum += run[p];
    double mean = sum / n;
    double sq = 0.0;
    for (const auto& run : runs) {
      sq += (run[p] - mean) * (run[p] - mean);
    }
    summary.mean.push_back(mean);
    summary.stddev.push_back(n > 1.0 ? std::sqrt(sq / (n - 1.0)) : 0.0);
  }
  return summary;
}

}  // namespace

ReplicatedResult RunReplicated(const ExperimentConfig& config,
                               ControllerKind kind, int replications,
                               const ReplicationOptions& options) {
  ReplicatedResult result;
  result.controller = kind;
  result.replications = replications;
  if (replications <= 0) return result;

  // Each replica owns its whole simulation; the only shared state is the
  // pre-sized results vector, written at distinct indices. Merging in
  // seed (= index) order makes the aggregate independent of `jobs`.
  std::vector<ExperimentResult> runs(static_cast<size_t>(replications));
  ParallelFor(replications, options.jobs, [&](int r) {
    ExperimentConfig run_config = config;
    run_config.seed = config.seed + 7919u * static_cast<uint64_t>(r);
    run_config.telemetry = nullptr;
    runs[static_cast<size_t>(r)] = RunExperiment(run_config, kind);
  });
  result.runs = std::move(runs);
  result.num_periods = result.runs.front().num_periods;

  for (const auto& [class_id, series] :
       result.runs.front().velocity_series) {
    std::vector<std::vector<double>> velocity_runs;
    std::vector<std::vector<double>> response_runs;
    std::vector<double> goals;
    for (const ExperimentResult& run : result.runs) {
      velocity_runs.push_back(run.velocity_series.at(class_id));
      response_runs.push_back(run.response_series.at(class_id));
      goals.push_back(
          static_cast<double>(run.periods_meeting_goal.at(class_id)));
    }
    result.velocity[class_id] = Summarize(velocity_runs);
    result.response[class_id] = Summarize(response_runs);
    double sum = 0.0;
    for (double g : goals) sum += g;
    double mean = sum / goals.size();
    double sq = 0.0;
    for (double g : goals) sq += (g - mean) * (g - mean);
    result.goal_periods_mean[class_id] = mean;
    result.goal_periods_stddev[class_id] =
        goals.size() > 1
            ? std::sqrt(sq / (static_cast<double>(goals.size()) - 1.0))
            : 0.0;
    (void)series;
  }

  if (options.telemetry != nullptr) {
    obs::Registry& registry = options.telemetry->registry;
    for (int r = 0; r < replications; ++r) {
      const ExperimentResult& run = result.runs[static_cast<size_t>(r)];
      std::string label = StrPrintf("replica=\"%d\"", r);
      registry.GetGauge("qsched_replica_wall_seconds", label)
          ->Set(run.wall_seconds);
      registry.GetGauge("qsched_replica_events_per_second", label)
          ->Set(run.wall_seconds > 0.0
                    ? static_cast<double>(run.sim_events_processed) /
                          run.wall_seconds
                    : 0.0);
    }
  }
  return result;
}

ReplicatedResult RunReplicated(const ExperimentConfig& config,
                               ControllerKind kind, int replications) {
  return RunReplicated(config, kind, replications, ReplicationOptions{});
}

}  // namespace qsched::harness
