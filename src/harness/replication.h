#ifndef QSCHED_HARNESS_REPLICATION_H_
#define QSCHED_HARNESS_REPLICATION_H_

#include <map>
#include <vector>

#include "harness/experiment.h"

namespace qsched::harness {

/// How a batch of replicated runs is executed.
struct ReplicationOptions {
  /// Worker threads for the replica fan-out: 1 = serial in the calling
  /// thread, 0 = one per hardware thread. Each replica owns its entire
  /// world (Simulator, RNGs, collectors) and results are merged in seed
  /// order, so aggregates are byte-identical for every jobs value.
  int jobs = 1;
  /// When set, per-replica wall-clock and events/sec gauges
  /// (`qsched_replica_wall_seconds{replica="r"}` etc.) are recorded after
  /// the merge, from the calling thread. Replicas themselves always run
  /// with telemetry disabled: a shared registry is not thread-safe, and
  /// keeping serial and parallel runs identical requires treating them
  /// the same way.
  obs::Telemetry* telemetry = nullptr;
};

/// Mean and sample standard deviation of one per-period metric across
/// replicated runs.
struct SeriesSummary {
  std::vector<double> mean;
  std::vector<double> stddev;
};

/// Aggregate of `replications` runs of the same experiment under
/// different seeds: the honest version of a single-trajectory figure
/// (the paper plots one 24-hour run; replication quantifies how much of
/// the wiggle is noise).
struct ReplicatedResult {
  ControllerKind controller = ControllerKind::kNoControl;
  int replications = 0;
  int num_periods = 0;
  std::map<int, SeriesSummary> velocity;
  std::map<int, SeriesSummary> response;
  /// Mean periods-meeting-goal per class, with stddev across seeds.
  std::map<int, double> goal_periods_mean;
  std::map<int, double> goal_periods_stddev;
  /// The individual runs, for callers that need more.
  std::vector<ExperimentResult> runs;
};

/// Runs the experiment `replications` times with seeds derived from
/// `config.seed` and aggregates the figure series. Replications are
/// independent simulations, so `options.jobs` fans them out across
/// worker threads with byte-identical aggregates.
ReplicatedResult RunReplicated(const ExperimentConfig& config,
                               ControllerKind kind, int replications,
                               const ReplicationOptions& options);

/// Serial convenience overload (jobs = 1).
ReplicatedResult RunReplicated(const ExperimentConfig& config,
                               ControllerKind kind, int replications);

}  // namespace qsched::harness

#endif  // QSCHED_HARNESS_REPLICATION_H_
