#ifndef QSCHED_HARNESS_REPLICATION_H_
#define QSCHED_HARNESS_REPLICATION_H_

#include <map>
#include <vector>

#include "harness/experiment.h"

namespace qsched::harness {

/// Mean and sample standard deviation of one per-period metric across
/// replicated runs.
struct SeriesSummary {
  std::vector<double> mean;
  std::vector<double> stddev;
};

/// Aggregate of `replications` runs of the same experiment under
/// different seeds: the honest version of a single-trajectory figure
/// (the paper plots one 24-hour run; replication quantifies how much of
/// the wiggle is noise).
struct ReplicatedResult {
  ControllerKind controller = ControllerKind::kNoControl;
  int replications = 0;
  int num_periods = 0;
  std::map<int, SeriesSummary> velocity;
  std::map<int, SeriesSummary> response;
  /// Mean periods-meeting-goal per class, with stddev across seeds.
  std::map<int, double> goal_periods_mean;
  std::map<int, double> goal_periods_stddev;
  /// The individual runs, for callers that need more.
  std::vector<ExperimentResult> runs;
};

/// Runs the experiment `replications` times with seeds derived from
/// `config.seed` and aggregates the figure series.
ReplicatedResult RunReplicated(const ExperimentConfig& config,
                               ControllerKind kind, int replications);

}  // namespace qsched::harness

#endif  // QSCHED_HARNESS_REPLICATION_H_
