#include "harness/experiment.h"

#include <chrono>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "metrics/period_collector.h"
#include "workload/client.h"

namespace qsched::harness {

const char* ControllerKindToString(ControllerKind kind) {
  switch (kind) {
    case ControllerKind::kNoControl:
      return "no-control";
    case ControllerKind::kQpNoPriority:
      return "qp-static";
    case ControllerKind::kQpPriority:
      return "qp-priority";
    case ControllerKind::kQueryScheduler:
      return "query-scheduler";
    case ControllerKind::kMpl:
      return "mpl";
    case ControllerKind::kQsDirectOltp:
      return "qs-direct-oltp";
  }
  return "unknown";
}

Status ExperimentConfig::Validate() const {
  if (period_seconds <= 0.0) {
    return Status::InvalidArgument("period_seconds must be positive");
  }
  if (system_cost_limit <= 0.0) {
    return Status::InvalidArgument("system_cost_limit must be positive");
  }
  if (engine.num_cpus < 1 || engine.num_disks < 1) {
    return Status::InvalidArgument("engine needs >=1 CPU and >=1 disk");
  }
  if (engine.disk_seconds_per_page <= 0.0 ||
      engine.min_chunk_pages <= 0.0 || engine.max_chunks_per_query < 1) {
    return Status::InvalidArgument("engine I/O parameters out of range");
  }
  if (tpch.scale_factor <= 0.0) {
    return Status::InvalidArgument("tpch.scale_factor must be positive");
  }
  if (tpcc.warehouses < 1) {
    return Status::InvalidArgument("tpcc.warehouses must be >= 1");
  }
  if (qs.control_interval_seconds <= 0.0) {
    return Status::InvalidArgument("control interval must be positive");
  }
  if (qp_olap_limit_fraction <= 0.0 || qp_olap_limit_fraction > 1.0) {
    return Status::InvalidArgument(
        "qp_olap_limit_fraction outside (0, 1]");
  }
  const sched::ServiceClassSet& class_set =
      classes.has_value() ? *classes : sched::MakePaperClasses();
  if (class_set.size() == 0) {
    return Status::InvalidArgument("no service classes defined");
  }
  double min_share_sum = 0.0;
  for (const sched::ServiceClassSpec& spec : class_set.classes()) {
    if (spec.goal_value <= 0.0) {
      return Status::InvalidArgument(
          StrPrintf("class %d has non-positive goal", spec.class_id));
    }
    if (spec.importance < 1) {
      return Status::InvalidArgument(
          StrPrintf("class %d importance must be >= 1", spec.class_id));
    }
    min_share_sum += spec.min_share;
  }
  if (min_share_sum > 1.0 + 1e-9) {
    return Status::InvalidArgument("class min shares exceed the total");
  }
  if (schedule.has_value()) {
    if (schedule->num_periods() == 0) {
      return Status::InvalidArgument("schedule has no periods");
    }
    for (const sched::ServiceClassSpec& spec : class_set.classes()) {
      bool listed = false;
      for (int id : schedule->class_ids()) {
        if (id == spec.class_id) listed = true;
      }
      if (!listed) {
        return Status::InvalidArgument(
            StrPrintf("class %d missing from schedule", spec.class_id));
      }
    }
  }
  return Status::OK();
}

void DeriveQpThresholds(const ExperimentConfig& config,
                        double* large_threshold, double* medium_threshold) {
  workload::TpchWorkload sampler(config.tpch, config.seed ^ 0x9d7f3u);
  std::vector<double> costs = sampler.SampleCosts(2000);
  // Top 5% of queries are "large", the next 15% "medium" (paper §4.1.2).
  *large_threshold = sim::Percentile(costs, 0.95);
  *medium_threshold = sim::Percentile(costs, 0.80);
}

namespace {

/// Owns every live object of one run; keeps construction order safe.
struct Bench {
  sim::Simulator simulator;
  std::unique_ptr<engine::ExecutionEngine> engine;
  workload::WorkloadSchedule schedule{1.0, {}};
  sched::ServiceClassSet classes;
  std::map<int, std::unique_ptr<workload::QueryGenerator>> generators;
  std::unique_ptr<workload::QueryFrontend> frontend;
  // Non-owning views into `frontend` (one is set by BuildController).
  sched::QueryScheduler* qs = nullptr;
  sched::MplController* mpl = nullptr;
  qp::QpController* qp = nullptr;
  std::vector<std::unique_ptr<workload::ClientPool>> pools;
};

void BuildController(const ExperimentConfig& config, ControllerKind kind,
                     Bench* bench) {
  double total_seconds = bench->schedule.total_seconds();
  switch (kind) {
    case ControllerKind::kNoControl: {
      auto controller = std::make_unique<qp::QpController>(
          &bench->simulator, bench->engine.get(), config.interceptor,
          qp::QpStaticConfig::NoControl(config.system_cost_limit));
      bench->qp = controller.get();
      bench->frontend = std::move(controller);
      return;
    }
    case ControllerKind::kQpNoPriority:
    case ControllerKind::kQpPriority: {
      qp::QpStaticConfig qp_config;
      qp_config.system_cost_limit = config.system_cost_limit;
      qp_config.olap_cost_limit =
          config.qp_olap_limit_fraction * config.system_cost_limit;
      DeriveQpThresholds(config, &qp_config.large_cost_threshold,
                         &qp_config.medium_cost_threshold);
      qp_config.max_large_concurrent = config.qp_max_large;
      qp_config.max_medium_concurrent = config.qp_max_medium;
      qp_config.max_small_concurrent = config.qp_max_small;
      if (kind == ControllerKind::kQpPriority) {
        qp_config.priority_enabled = true;
        for (const sched::ServiceClassSpec& spec :
             bench->classes.classes()) {
          // Importance doubles as QP priority in the static baseline.
          qp_config.class_priority[spec.class_id] = spec.importance;
        }
      }
      auto controller = std::make_unique<qp::QpController>(
          &bench->simulator, bench->engine.get(), config.interceptor,
          qp_config);
      bench->qp = controller.get();
      bench->frontend = std::move(controller);
      return;
    }
    case ControllerKind::kQueryScheduler:
    case ControllerKind::kQsDirectOltp: {
      sched::QuerySchedulerConfig qs_config = config.qs;
      qs_config.system_cost_limit = config.system_cost_limit;
      qs_config.interceptor = config.interceptor;
      qs_config.telemetry = config.telemetry;
      if (kind == ControllerKind::kQsDirectOltp) {
        qs_config.control_oltp_directly = true;
        // Future-work assumption: control inside the DBMS is ~free.
        qs_config.interceptor.oltp_interception_delay_seconds = 0.002;
        qs_config.interceptor.oltp_interception_cpu_seconds = 0.0005;
      }
      auto controller = std::make_unique<sched::QueryScheduler>(
          &bench->simulator, bench->engine.get(), &bench->classes,
          qs_config);
      controller->Start(total_seconds);
      bench->qs = controller.get();
      bench->frontend = std::move(controller);
      return;
    }
    case ControllerKind::kMpl: {
      sched::MplController::Options options = config.mpl;
      options.interceptor = config.interceptor;
      auto controller = std::make_unique<sched::MplController>(
          &bench->simulator, bench->engine.get(), &bench->classes, options);
      controller->Start(total_seconds);
      bench->mpl = controller.get();
      bench->frontend = std::move(controller);
      return;
    }
  }
  QSCHED_CHECK(false) << "unhandled controller kind";
}

void BuildBench(const ExperimentConfig& config, ControllerKind kind,
                metrics::PeriodCollector** collector_out, Bench* bench,
                std::unique_ptr<metrics::PeriodCollector>* collector_box,
                std::shared_ptr<metrics::RecordLog> trace = nullptr) {
  Rng master(config.seed);
  bench->engine = std::make_unique<engine::ExecutionEngine>(
      &bench->simulator, config.engine, master.Fork(1));
  if (config.telemetry != nullptr) {
    bench->engine->set_telemetry(config.telemetry);
  }
  bench->schedule = config.schedule.has_value()
                        ? *config.schedule
                        : workload::MakeFigure3Schedule(
                              config.period_seconds);
  bench->classes = config.classes.has_value() ? *config.classes
                                              : sched::MakePaperClasses();

  for (const sched::ServiceClassSpec& spec : bench->classes.classes()) {
    uint64_t seed = config.seed + 1000u * static_cast<uint64_t>(
                                              spec.class_id + 1);
    if (spec.type == workload::WorkloadType::kOlap) {
      bench->generators[spec.class_id] =
          std::make_unique<workload::TpchWorkload>(config.tpch, seed);
    } else {
      bench->generators[spec.class_id] =
          std::make_unique<workload::TpccWorkload>(config.tpcc, seed);
    }
  }

  BuildController(config, kind, bench);

  *collector_box =
      std::make_unique<metrics::PeriodCollector>(&bench->schedule);
  metrics::PeriodCollector* collector = collector_box->get();
  *collector_out = collector;

  for (const sched::ServiceClassSpec& spec : bench->classes.classes()) {
    bench->pools.push_back(std::make_unique<workload::ClientPool>(
        &bench->simulator, &bench->schedule, spec.class_id,
        bench->generators[spec.class_id].get(), bench->frontend.get(),
        [collector, trace](const workload::QueryRecord& record) {
          collector->Add(record);
          if (trace != nullptr) trace->Add(record);
        }));
    if (config.telemetry != nullptr) {
      bench->pools.back()->set_telemetry(config.telemetry);
    }
  }
  for (auto& pool : bench->pools) pool->Start();
}

}  // namespace

ExperimentResult RunExperiment(const ExperimentConfig& config,
                               ControllerKind kind) {
  Status valid = config.Validate();
  QSCHED_CHECK(valid.ok()) << valid.ToString();
  Bench bench;
  std::unique_ptr<metrics::PeriodCollector> collector_box;
  metrics::PeriodCollector* collector = nullptr;
  std::shared_ptr<metrics::RecordLog> trace;
  if (config.capture_trace) {
    trace = std::make_shared<metrics::RecordLog>(config.trace_capacity);
  }
  BuildBench(config, kind, &collector, &bench, &collector_box, trace);

  double total_seconds = bench.schedule.total_seconds();
  auto run_start = std::chrono::steady_clock::now();
  bench.simulator.RunUntil(total_seconds);
  double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    run_start)
          .count();

  ExperimentResult result;
  result.controller = kind;
  result.num_periods = bench.schedule.num_periods();
  result.period_seconds = bench.schedule.period_seconds();
  for (const sched::ServiceClassSpec& spec : bench.classes.classes()) {
    int id = spec.class_id;
    result.velocity_series[id] = collector->VelocitySeries(id);
    result.response_series[id] = collector->ResponseSeries(id);
    result.completed_series[id] = collector->CompletedSeries(id);
    result.periods_meeting_goal[id] = collector->PeriodsMeetingGoal(spec);
    result.attainment_ratio[id] = collector->AttainmentRatio(spec);
    metrics::PeriodClassStats overall = collector->Overall(id);
    result.overall_velocity[id] = overall.MeanVelocity();
    result.overall_response[id] = overall.MeanResponse();
    result.overall_completed[id] = overall.completed;
  }
  if (bench.qs != nullptr) {
    result.limit_history = bench.qs->limit_history();
    result.oltp_model_slope = bench.qs->oltp_model().slope();
    for (const auto& [class_id, series] : result.limit_history) {
      std::vector<double> means;
      for (int p = 0; p < result.num_periods; ++p) {
        double t0 = p * result.period_seconds;
        double t1 = t0 + result.period_seconds;
        double mean = series.MeanInWindow(t0, t1);
        if (mean <= 0.0) mean = series.LastBefore(t1, 0.0);
        means.push_back(mean);
      }
      result.period_mean_limits[class_id] = std::move(means);
    }
  }
  result.cpu_utilization = bench.engine->cpu_pool().Utilization();
  result.disk_utilization = bench.engine->disk_array().Utilization();
  result.total_completed = collector->total_records();
  result.engine_queries_completed = bench.engine->queries_completed();
  result.sim_events_processed = bench.simulator.events_processed();
  result.wall_seconds = wall_seconds;
  result.trace = std::move(trace);
  if (config.telemetry != nullptr) {
    // Simulator throughput for --metrics-out: how fast the DES core
    // chewed through this run on the host.
    config.telemetry->registry.GetGauge("qsched_sim_wall_seconds")
        ->Set(wall_seconds);
    config.telemetry->registry.GetGauge("qsched_sim_events_per_second")
        ->Set(wall_seconds > 0.0
                  ? static_cast<double>(result.sim_events_processed) /
                        wall_seconds
                  : 0.0);
    // Final gauge refresh so the snapshot carries end-of-run utilization.
    bench.engine->RefreshTelemetryGauges();
    if (bench.qs != nullptr) {
      for (const sched::ServiceClassSpec& spec : bench.classes.classes()) {
        int id = spec.class_id;
        result.interval_attainment[id] =
            config.telemetry->slo.OverallAttainment(id);
        result.slo_violation_events[id] =
            static_cast<int>(config.telemetry->slo.EventsFor(id).size());
        result.prediction_residuals[id] =
            config.telemetry->ledger.StatsFor(id);
      }
    }
    result.metric_snapshot = config.telemetry->registry.Snapshot();
  }
  return result;
}

double MeasureOltpResponse(const ExperimentConfig& base, int oltp_clients,
                           int olap_clients, double olap_cost_limit,
                           double duration_seconds,
                           double* out_olap_throughput) {
  ExperimentConfig config = base;

  // Two equal periods: warmup + measurement window.
  workload::WorkloadSchedule schedule(duration_seconds / 2.0, {1, 3});
  schedule.AddPeriod({olap_clients, oltp_clients});
  schedule.AddPeriod({olap_clients, oltp_clients});
  config.schedule = schedule;

  sched::ServiceClassSet classes;
  sched::ServiceClassSpec olap;
  olap.class_id = 1;
  olap.name = "olap";
  olap.type = workload::WorkloadType::kOlap;
  olap.goal_kind = sched::GoalKind::kVelocityFloor;
  olap.goal_value = 0.5;
  classes.Add(olap);
  sched::ServiceClassSpec oltp;
  oltp.class_id = 3;
  oltp.name = "oltp";
  oltp.type = workload::WorkloadType::kOltp;
  oltp.goal_kind = sched::GoalKind::kAvgResponseCeiling;
  oltp.goal_value = 0.25;
  classes.Add(oltp);
  config.classes = classes;

  Bench bench;
  std::unique_ptr<metrics::PeriodCollector> collector_box;
  metrics::PeriodCollector* collector = nullptr;

  // Static OLAP cost limit via the QP mechanism, groups unlimited.
  qp::QpStaticConfig qp_config;
  qp_config.system_cost_limit = olap_cost_limit;
  qp_config.olap_cost_limit = olap_cost_limit;

  // Manual build so the custom QP config is used.
  Rng master(config.seed);
  bench.engine = std::make_unique<engine::ExecutionEngine>(
      &bench.simulator, config.engine, master.Fork(1));
  bench.schedule = *config.schedule;
  bench.classes = *config.classes;
  bench.generators[1] =
      std::make_unique<workload::TpchWorkload>(config.tpch, config.seed + 7);
  bench.generators[3] =
      std::make_unique<workload::TpccWorkload>(config.tpcc, config.seed + 9);
  auto controller = std::make_unique<qp::QpController>(
      &bench.simulator, bench.engine.get(), config.interceptor, qp_config);
  bench.frontend = std::move(controller);
  collector_box =
      std::make_unique<metrics::PeriodCollector>(&bench.schedule);
  collector = collector_box.get();
  for (const sched::ServiceClassSpec& spec : bench.classes.classes()) {
    bench.pools.push_back(std::make_unique<workload::ClientPool>(
        &bench.simulator, &bench.schedule, spec.class_id,
        bench.generators[spec.class_id].get(), bench.frontend.get(),
        [collector](const workload::QueryRecord& record) {
          collector->Add(record);
        }));
  }
  for (auto& pool : bench.pools) pool->Start();

  bench.simulator.RunUntil(bench.schedule.total_seconds());

  // Read only the second (post-warmup) period.
  const metrics::PeriodClassStats& oltp_cell = collector->Get(1, 3);
  if (out_olap_throughput != nullptr) {
    const metrics::PeriodClassStats& olap_cell = collector->Get(1, 1);
    *out_olap_throughput =
        olap_cell.completed / bench.schedule.period_seconds();
  }
  return oltp_cell.MeanResponse();
}

}  // namespace qsched::harness
