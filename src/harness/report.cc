#include "harness/report.h"

#include "common/strings.h"
#include "obs/metrics.h"

namespace qsched::harness {

void PrintPerformanceReport(const ExperimentResult& result,
                            const sched::ServiceClassSet& classes,
                            const ReportOptions& options,
                            std::ostream& out) {
  if (options.per_period) {
    out << "period";
    for (const sched::ServiceClassSpec& spec : classes.classes()) {
      const char* unit =
          spec.goal_kind == sched::GoalKind::kVelocityFloor ? "vel"
                                                            : "resp_s";
      out << StrPrintf("  class%d_%s", spec.class_id, unit);
    }
    out << "  goals_met\n";
    for (int p = 0; p < result.num_periods; ++p) {
      out << StrPrintf("%6d", p + 1);
      std::string markers;
      for (const sched::ServiceClassSpec& spec : classes.classes()) {
        double value =
            spec.goal_kind == sched::GoalKind::kVelocityFloor
                ? result.velocity_series.at(spec.class_id)[p]
                : result.response_series.at(spec.class_id)[p];
        out << StrPrintf("  %10.3f", value);
        bool has_data = result.completed_series.at(spec.class_id)[p] > 0;
        bool met = has_data && spec.GoalRatio(value) >= 1.0;
        markers += met ? static_cast<char>('0' + spec.class_id % 10)
                       : '-';
      }
      out << "  " << markers << "\n";
    }
  }
  if (options.cost_limits && !result.period_mean_limits.empty()) {
    out << "period";
    for (const auto& [class_id, limits] : result.period_mean_limits) {
      out << StrPrintf("  class%d_limit", class_id);
    }
    out << "\n";
    for (int p = 0; p < result.num_periods; ++p) {
      out << StrPrintf("%6d", p + 1);
      for (const auto& [class_id, limits] : result.period_mean_limits) {
        out << StrPrintf("  %12.0f", limits[p]);
      }
      out << "\n";
    }
  }
  if (options.summary) {
    out << "periods_meeting_goal:";
    for (const sched::ServiceClassSpec& spec : classes.classes()) {
      out << StrPrintf(" class%d=%d/%d", spec.class_id,
                       result.periods_meeting_goal.at(spec.class_id),
                       result.num_periods);
    }
    out << "\n";
    out << "slo_attainment:";
    for (const sched::ServiceClassSpec& spec : classes.classes()) {
      auto it = result.attainment_ratio.find(spec.class_id);
      out << StrPrintf(" class%d=%.3f", spec.class_id,
                       it != result.attainment_ratio.end() ? it->second
                                                           : 0.0);
    }
    out << "\n";
    if (!result.interval_attainment.empty()) {
      // Control-interval-granularity view (telemetry-enabled Query
      // Scheduler runs): finer than the per-period figures above.
      out << "interval_attainment:";
      for (const auto& [class_id, ratio] : result.interval_attainment) {
        auto events_it = result.slo_violation_events.find(class_id);
        int events = events_it != result.slo_violation_events.end()
                         ? events_it->second
                         : 0;
        out << StrPrintf(" class%d=%.3f(violations=%d)", class_id, ratio,
                         events);
      }
      out << "\n";
    }
    if (!result.prediction_residuals.empty()) {
      out << "model_residuals:";
      for (const auto& [class_id, stats] : result.prediction_residuals) {
        out << StrPrintf(" class%d=mae:%.4g,p95:%.4g,bias:%+.4g,n=%llu",
                         class_id, stats.mean_abs_error,
                         stats.p95_abs_error, stats.bias,
                         static_cast<unsigned long long>(stats.count));
      }
      out << "\n";
    }
    out << StrPrintf(
        "cpu_util=%.2f disk_util=%.2f total_completed=%llu\n",
        result.cpu_utilization, result.disk_utilization,
        static_cast<unsigned long long>(result.total_completed));
    if (!result.metric_snapshot.empty()) {
      // End-of-run registry gauges (telemetry-enabled runs only):
      // engine utilization, buffer-pool hit ratios, queue depths,
      // current cost limits and SLO standing.
      out << "gauges:\n";
      for (const obs::MetricSnapshot& metric : result.metric_snapshot) {
        if (metric.kind != obs::MetricKind::kGauge) continue;
        out << "  " << metric.name;
        if (!metric.labels.empty()) out << "{" << metric.labels << "}";
        out << StrPrintf(" = %.6g\n", metric.value);
      }
    }
  }
}

}  // namespace qsched::harness
