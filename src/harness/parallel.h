#ifndef QSCHED_HARNESS_PARALLEL_H_
#define QSCHED_HARNESS_PARALLEL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qsched::harness {

/// Fixed-size worker pool for fanning independent simulations out across
/// host threads. The simulator itself stays single-threaded: each
/// submitted task owns its whole world (Simulator, RNGs, telemetry), so
/// the pool needs no synchronization beyond the task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Safe to call from any thread.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished running.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: task or stop
  std::condition_variable idle_cv_;   // signals Wait(): all tasks done
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently running
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Worker count meaning "one per hardware thread" (>= 1 even when the
/// runtime cannot tell).
int DefaultJobs();

/// Resolves a user-facing --jobs value: 0 means DefaultJobs(), anything
/// else is clamped to >= 1.
int ResolveJobs(int jobs);

/// Runs fn(0), ..., fn(n-1) across `jobs` worker threads and returns when
/// all calls finished. `jobs <= 1` (or n <= 1) runs inline on the caller,
/// bit-identically to a plain loop. If any call throws, the first
/// exception is rethrown after all tasks complete.
void ParallelFor(int n, int jobs, const std::function<void(int)>& fn);

}  // namespace qsched::harness

#endif  // QSCHED_HARNESS_PARALLEL_H_
