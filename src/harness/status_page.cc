#include "harness/status_page.h"

#include <algorithm>
#include <sstream>

#include "common/strings.h"
#include "harness/html_report.h"
#include "obs/metrics.h"

namespace qsched::harness {

namespace {

using obs::HtmlEscape;

void WriteTile(std::ostream& out, const std::string& value,
               const std::string& label) {
  out << "<div class=\"tile\"><div class=\"value\">" << HtmlEscape(value)
      << "</div><div class=\"label\">" << HtmlEscape(label)
      << "</div></div>\n";
}

std::string UptimeText(double seconds) {
  if (seconds >= 3600.0) return StrPrintf("%.1fh", seconds / 3600.0);
  if (seconds >= 60.0) return StrPrintf("%.1fm", seconds / 60.0);
  return StrPrintf("%.1fs", seconds);
}

}  // namespace

obs::SvgChartSpec BuildLatencyBreakdownSpec(
    const std::vector<obs::IntervalRow>& rows) {
  obs::SvgChartSpec spec;
  spec.x_label = "sim time (min)";
  spec.y_label = "mean latency (s)";
  const char* labels[3] = {"gateway queue", "dispatch", "execute"};
  obs::SvgSeries stages[3];
  for (int k = 0; k < 3; ++k) {
    stages[k].label = labels[k];
    stages[k].color_slot = k + 1;
  }
  bool any_stage_data = false;
  for (const obs::IntervalRow& row : rows) {
    double weight = 0.0;
    double sums[3] = {0.0, 0.0, 0.0};
    for (const obs::IntervalClassSample& cls : row.classes) {
      double w = static_cast<double>(std::max(cls.completed_in_interval, 0));
      weight += w;
      sums[0] += w * cls.stage_gateway_queue_seconds;
      sums[1] += w * cls.stage_dispatch_seconds;
      sums[2] += w * cls.stage_execute_seconds;
    }
    if (weight <= 0.0) continue;
    for (int k = 0; k < 3; ++k) {
      double mean = sums[k] / weight;
      if (mean > 0.0) any_stage_data = true;
      stages[k].xs.push_back(row.sim_time / 60.0);
      stages[k].ys.push_back(mean);
    }
  }
  if (!any_stage_data) return spec;
  for (int k = 0; k < 3; ++k) spec.series.push_back(std::move(stages[k]));
  return spec;
}

std::string RenderStatusPage(const StatusPageInfo& info,
                             const obs::Telemetry* telemetry) {
  std::ostringstream out;
  out << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
      << "<meta charset=\"utf-8\">\n"
      << "<meta name=\"viewport\" content=\"width=device-width, "
         "initial-scale=1\">\n"
      << "<title>" << HtmlEscape(info.title) << "</title>\n<style>"
      << HtmlReportStyle() << "</style>\n</head>\n<body>\n";
  out << "<h1>" << HtmlEscape(info.title) << "</h1>\n";
  out << "<p class=\"subtitle\">state: " << HtmlEscape(info.health)
      << " &middot; uptime " << UptimeText(info.uptime_seconds)
      << " &middot; point-in-time snapshot, reload for a fresh one</p>\n";

  out << "<div class=\"tiles\">\n";
  WriteTile(out,
            StrPrintf("%llu",
                      static_cast<unsigned long long>(info.accepted)),
            "queries accepted");
  WriteTile(out,
            StrPrintf("%llu",
                      static_cast<unsigned long long>(info.completed)),
            "queries completed");
  WriteTile(out,
            StrPrintf("%llu",
                      static_cast<unsigned long long>(info.rejected)),
            "queries rejected");
  WriteTile(out,
            StrPrintf("%llu",
                      static_cast<unsigned long long>(info.queue_depth)),
            "gateway queue depth");
  out << "</div>\n";

  if (telemetry == nullptr) {
    out << "<p class=\"note\">No telemetry attached to this runtime — "
           "tiles only.</p>\n</body>\n</html>\n";
    return out.str();
  }

  // ---- SLO attainment (live rolling windows) --------------------------
  {
    obs::SvgChartSpec spec;
    spec.x_label = "sim time (min)";
    spec.y_label = "attainment";
    spec.y_min = 0.0;
    spec.y_max = 1.05;
    std::vector<int> class_ids = telemetry->slo.ObservedClasses();
    for (size_t i = 0; i < class_ids.size(); ++i) {
      obs::SvgSeries series;
      series.label = StrPrintf("class %d", class_ids[i]);
      series.color_slot = static_cast<int>(std::min<size_t>(i, 7)) + 1;
      for (const auto& [time, ratio] :
           telemetry->slo.AttainmentSeries(class_ids[i])) {
        series.xs.push_back(time / 60.0);
        series.ys.push_back(ratio);
      }
      if (!series.xs.empty()) spec.series.push_back(std::move(series));
    }
    if (!spec.series.empty()) {
      out << "<h2>SLO attainment</h2>\n<figure>\n"
          << obs::RenderLineChart(spec)
          << "\n<figcaption>Rolling fraction of recent control intervals "
             "in which each class met its goal.</figcaption>\n"
             "</figure>\n";
    }
  }

  // ---- Latency breakdown (stacked stages) -----------------------------
  {
    obs::SvgChartSpec spec =
        BuildLatencyBreakdownSpec(telemetry->recorder.Rows());
    if (!spec.series.empty()) {
      out << "<h2>Latency breakdown by stage</h2>\n<figure>\n"
          << obs::RenderStackedAreaChart(spec)
          << "\n<figcaption>Completion-weighted mean wall-clock time per "
             "stage each control interval; the stacked height is the "
             "mean end-to-end latency.</figcaption>\n</figure>\n";
    }
  }

  // ---- Full metric table ----------------------------------------------
  std::vector<obs::MetricSnapshot> snaps = telemetry->registry.Snapshot();
  if (!snaps.empty()) {
    out << "<h2>Metrics</h2>\n<table>\n"
        << "<tr><th>metric</th><th>value / count</th><th>p50</th>"
        << "<th>p95</th><th>p99</th></tr>\n";
    for (const obs::MetricSnapshot& snap : snaps) {
      std::string name = snap.labels.empty()
                             ? snap.name
                             : snap.name + "{" + snap.labels + "}";
      out << "<tr><td>" << HtmlEscape(name) << "</td>";
      if (snap.kind == obs::MetricKind::kHistogram) {
        out << "<td>"
            << StrPrintf("%llu",
                         static_cast<unsigned long long>(snap.count))
            << "</td><td>" << StrPrintf("%.4g", snap.p50) << "</td><td>"
            << StrPrintf("%.4g", snap.p95) << "</td><td>"
            << StrPrintf("%.4g", snap.p99) << "</td>";
      } else {
        out << "<td>" << StrPrintf("%.9g", snap.value)
            << "</td><td></td><td></td><td></td>";
      }
      out << "</tr>\n";
    }
    out << "</table>\n";
  }

  out << "</body>\n</html>\n";
  return out.str();
}

}  // namespace qsched::harness
