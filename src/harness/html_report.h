#ifndef QSCHED_HARNESS_HTML_REPORT_H_
#define QSCHED_HARNESS_HTML_REPORT_H_

#include <ostream>
#include <string>

#include "harness/experiment.h"
#include "obs/telemetry.h"
#include "scheduler/service_class.h"

namespace qsched::harness {

/// Options for the self-contained HTML run report.
struct HtmlReportOptions {
  std::string title = "qsched run report";
};

/// Writes a single-file HTML report for one experiment run: stat tiles,
/// inline-SVG charts (cost limits, velocity, response, SLO attainment,
/// model residuals), and the residual / violation-event tables. The file
/// is fully self-contained — inline CSS, no scripts, no external assets —
/// and honors prefers-color-scheme for dark mode.
///
/// `telemetry` may be nullptr: the control-interval charts (attainment at
/// interval granularity, residuals, solver timings) then fall back to the
/// per-period series in `result`, or are omitted when no equivalent
/// exists. Pass the same Telemetry the run used for the full report.
void WriteHtmlRunReport(const ExperimentResult& result,
                        const sched::ServiceClassSet& classes,
                        const obs::Telemetry* telemetry,
                        const HtmlReportOptions& options,
                        std::ostream& out);

/// The shared document stylesheet (chart chrome + categorical palette as
/// CSS custom properties) used by both the offline run report and the
/// live /statusz page, so the two render identically.
const char* HtmlReportStyle();

}  // namespace qsched::harness

#endif  // QSCHED_HARNESS_HTML_REPORT_H_
