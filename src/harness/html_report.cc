#include "harness/html_report.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/strings.h"
#include "harness/status_page.h"
#include "obs/svg.h"

namespace qsched::harness {

namespace {

using obs::HtmlEscape;
using obs::SvgChartSpec;
using obs::SvgReferenceLine;
using obs::SvgSeries;

/// Categorical palette slot for the i-th class (insertion order). Slots
/// are fixed per entity and never cycled; class sets larger than the
/// 8-slot palette share the last slot rather than inventing hues.
int SlotFor(size_t index) {
  return static_cast<int>(std::min<size_t>(index, 7)) + 1;
}

std::string ClassLabel(const sched::ServiceClassSpec& spec) {
  if (!spec.name.empty()) return spec.name;
  return StrPrintf("class %d", spec.class_id);
}

std::string GoalText(const sched::ServiceClassSpec& spec) {
  if (spec.goal_kind == sched::GoalKind::kVelocityFloor) {
    return StrPrintf("velocity ≥ %.3g", spec.goal_value);
  }
  return StrPrintf("response ≤ %.3gs", spec.goal_value);
}

/// The document-level stylesheet: chart chrome and the categorical
/// palette as CSS custom properties, with a dark scheme selected from the
/// same ramps (not an automatic flip). The inline SVGs reference these
/// variables, so one definition themes every chart.
const char kStyle[] = R"(
:root {
  --surface: #fcfcfb;
  --ink: #1a1a19;
  --ink-secondary: #52514e;
  --ink-muted: #898781;
  --grid: #e1e0d9;
  --axis: #c3c2b7;
  --tile: #f4f3f0;
  --series-1: #2a78d6;
  --series-2: #eb6834;
  --series-3: #1baf7a;
  --series-4: #8a63d2;
  --series-5: #b88609;
  --series-6: #d44f7f;
  --series-7: #0f9bb5;
  --series-8: #737165;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19;
    --ink: #e7e6e1;
    --ink-secondary: #c3c2b7;
    --ink-muted: #898781;
    --grid: #2c2c2a;
    --axis: #383835;
    --tile: #232322;
    --series-1: #3987e5;
    --series-2: #d95926;
    --series-3: #199e70;
    --series-4: #9b7ae0;
    --series-5: #a87e14;
    --series-6: #e0679a;
    --series-7: #22acc7;
    --series-8: #8a887c;
  }
}
[data-theme="dark"] {
  --surface: #1a1a19;
  --ink: #e7e6e1;
  --ink-secondary: #c3c2b7;
  --ink-muted: #898781;
  --grid: #2c2c2a;
  --axis: #383835;
  --tile: #232322;
  --series-1: #3987e5;
  --series-2: #d95926;
  --series-3: #199e70;
  --series-4: #9b7ae0;
  --series-5: #a87e14;
  --series-6: #e0679a;
  --series-7: #22acc7;
  --series-8: #8a887c;
}
html { background: var(--surface); }
body {
  margin: 0 auto;
  padding: 24px 20px 48px;
  max-width: 840px;
  background: var(--surface);
  color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; color: var(--ink); }
.subtitle { color: var(--ink-secondary); margin: 0 0 20px; }
.tiles {
  display: grid;
  grid-template-columns: repeat(auto-fit, minmax(150px, 1fr));
  gap: 10px;
  margin: 16px 0;
}
.tile { background: var(--tile); border-radius: 8px; padding: 10px 12px; }
.tile .value { font-size: 20px; font-weight: 600; }
.tile .label { color: var(--ink-muted); font-size: 12px; }
figure { margin: 0 0 8px; }
figcaption { color: var(--ink-secondary); font-size: 13px; margin: 4px 0 12px; }
svg { max-width: 100%; height: auto; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th, td { text-align: right; padding: 4px 10px; border-bottom: 1px solid var(--grid); }
th { color: var(--ink-secondary); font-weight: 600; }
th:first-child, td:first-child { text-align: left; }
td .dot {
  display: inline-block;
  width: 9px; height: 9px;
  border-radius: 50%;
  margin-right: 6px;
}
.note { color: var(--ink-muted); font-size: 12px; }
)";

void WriteTile(std::ostream& out, const std::string& value,
               const std::string& label) {
  out << "<div class=\"tile\"><div class=\"value\">" << HtmlEscape(value)
      << "</div><div class=\"label\">" << HtmlEscape(label)
      << "</div></div>\n";
}

void WriteChart(std::ostream& out, const std::string& heading,
                const SvgChartSpec& spec, const std::string& caption) {
  out << "<h2>" << HtmlEscape(heading) << "</h2>\n<figure>\n"
      << obs::RenderLineChart(spec) << "\n<figcaption>"
      << HtmlEscape(caption) << "</figcaption>\n</figure>\n";
}

/// Per-period x axis: periods numbered from 1.
std::vector<double> PeriodAxis(size_t n) {
  std::vector<double> xs(n);
  for (size_t i = 0; i < n; ++i) xs[i] = static_cast<double>(i + 1);
  return xs;
}

}  // namespace

const char* HtmlReportStyle() { return kStyle; }

void WriteHtmlRunReport(const ExperimentResult& result,
                        const sched::ServiceClassSet& classes,
                        const obs::Telemetry* telemetry,
                        const HtmlReportOptions& options,
                        std::ostream& out) {
  // Fixed slot per class, shared by every chart and table row so color
  // follows the entity.
  std::vector<int> slots;
  for (size_t i = 0; i < classes.classes().size(); ++i) {
    slots.push_back(SlotFor(i));
  }
  std::vector<obs::IntervalRow> rows;
  if (telemetry != nullptr) rows = telemetry->recorder.Rows();

  out << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
      << "<meta charset=\"utf-8\">\n"
      << "<meta name=\"viewport\" content=\"width=device-width, "
         "initial-scale=1\">\n"
      << "<title>" << HtmlEscape(options.title) << "</title>\n<style>"
      << kStyle << "</style>\n</head>\n<body>\n";
  out << "<h1>" << HtmlEscape(options.title) << "</h1>\n";
  out << "<p class=\"subtitle\">controller: "
      << HtmlEscape(ControllerKindToString(result.controller))
      << " &middot; " << result.num_periods << " periods &times; "
      << StrPrintf("%.0f", result.period_seconds) << "s</p>\n";

  // ---- Stat tiles ------------------------------------------------------
  out << "<div class=\"tiles\">\n";
  WriteTile(out,
            StrPrintf("%llu", static_cast<unsigned long long>(
                                  result.total_completed)),
            "queries completed");
  WriteTile(out, StrPrintf("%.0f%%", 100.0 * result.cpu_utilization),
            "CPU utilization");
  WriteTile(out, StrPrintf("%.0f%%", 100.0 * result.disk_utilization),
            "disk utilization");
  if (!rows.empty()) {
    WriteTile(out, StrPrintf("%zu", rows.size()), "control intervals");
  }
  if (result.oltp_model_slope > 0.0) {
    WriteTile(out, StrPrintf("%.3g", result.oltp_model_slope),
              "fitted OLTP slope s (s/timeron)");
  }
  out << "</div>\n";

  // ---- SLO summary table ----------------------------------------------
  out << "<h2>SLO attainment</h2>\n<table>\n"
      << "<tr><th>class</th><th>goal</th><th>periods met</th>"
      << "<th>period attainment</th>";
  bool have_intervals = !result.interval_attainment.empty();
  if (have_intervals) {
    out << "<th>interval attainment</th><th>violation events</th>";
  }
  out << "</tr>\n";
  for (size_t i = 0; i < classes.classes().size(); ++i) {
    const sched::ServiceClassSpec& spec = classes.classes()[i];
    int id = spec.class_id;
    auto met_it = result.periods_meeting_goal.find(id);
    auto ratio_it = result.attainment_ratio.find(id);
    out << "<tr><td><span class=\"dot\" style=\"background:var(--series-"
        << slots[i] << ")\"></span>" << HtmlEscape(ClassLabel(spec))
        << "</td><td>" << HtmlEscape(GoalText(spec)) << "</td><td>"
        << (met_it != result.periods_meeting_goal.end() ? met_it->second
                                                        : 0)
        << "/" << result.num_periods << "</td><td>"
        << StrPrintf("%.1f%%",
                     100.0 * (ratio_it != result.attainment_ratio.end()
                                  ? ratio_it->second
                                  : 0.0))
        << "</td>";
    if (have_intervals) {
      auto ia_it = result.interval_attainment.find(id);
      auto ev_it = result.slo_violation_events.find(id);
      out << "<td>"
          << StrPrintf("%.1f%%",
                       100.0 *
                           (ia_it != result.interval_attainment.end()
                                ? ia_it->second
                                : 0.0))
          << "</td><td>"
          << (ev_it != result.slo_violation_events.end() ? ev_it->second
                                                         : 0)
          << "</td>";
    }
    out << "</tr>\n";
  }
  out << "</table>\n";

  // ---- Chart 1: cost limits -------------------------------------------
  {
    SvgChartSpec spec;
    spec.x_label = "sim time (min)";
    spec.y_label = "cost limit (timerons)";
    for (size_t i = 0; i < classes.classes().size(); ++i) {
      int id = classes.classes()[i].class_id;
      SvgSeries series;
      series.label = ClassLabel(classes.classes()[i]);
      series.color_slot = slots[i];
      if (!rows.empty()) {
        for (const obs::IntervalRow& row : rows) {
          for (const obs::IntervalClassSample& s : row.classes) {
            if (s.class_id != id) continue;
            series.xs.push_back(row.sim_time / 60.0);
            series.ys.push_back(s.cost_limit);
          }
        }
      } else {
        auto it = result.limit_history.find(id);
        if (it != result.limit_history.end()) {
          for (const sim::TimeSeries::Point& p : it->second.points()) {
            series.xs.push_back(p.time / 60.0);
            series.ys.push_back(p.value);
          }
        }
      }
      if (!series.xs.empty()) spec.series.push_back(std::move(series));
    }
    WriteChart(out, "Cost limits per control interval", spec,
               "Per-class cost limits the Dispatcher enforced each "
               "control interval (the Fig. 7 view). An OLTP class's "
               "limit is the share reserved for it by holding OLAP "
               "back.");
  }

  // ---- Chart 2: OLAP velocity -----------------------------------------
  {
    SvgChartSpec spec;
    spec.x_label = rows.empty() ? "period" : "sim time (min)";
    spec.y_label = "velocity";
    spec.y_min = 0.0;
    spec.y_max = 1.05;
    for (size_t i = 0; i < classes.classes().size(); ++i) {
      const sched::ServiceClassSpec& cls = classes.classes()[i];
      if (cls.goal_kind != sched::GoalKind::kVelocityFloor) continue;
      SvgSeries series;
      series.label = ClassLabel(cls);
      series.color_slot = slots[i];
      if (!rows.empty()) {
        for (const obs::IntervalRow& row : rows) {
          for (const obs::IntervalClassSample& s : row.classes) {
            if (s.class_id != cls.class_id) continue;
            series.xs.push_back(row.sim_time / 60.0);
            series.ys.push_back(s.measured);
          }
        }
      } else {
        auto it = result.velocity_series.find(cls.class_id);
        if (it != result.velocity_series.end()) {
          series.xs = PeriodAxis(it->second.size());
          series.ys = it->second;
        }
      }
      if (!series.xs.empty()) spec.series.push_back(std::move(series));
      spec.reference_lines.push_back(
          {StrPrintf("%s goal", ClassLabel(cls).c_str()), cls.goal_value,
           slots[i]});
    }
    WriteChart(out, "OLAP velocity vs. goals", spec,
               rows.empty()
                   ? "Mean velocity per period for each OLAP class; "
                     "dashed lines mark the velocity-floor SLOs."
                   : "Smoothed velocity the planner accepted each "
                     "control interval; dashed lines mark the "
                     "velocity-floor SLOs.");
  }

  // ---- Chart 3: OLTP response -----------------------------------------
  {
    SvgChartSpec spec;
    spec.x_label = rows.empty() ? "period" : "sim time (min)";
    spec.y_label = "response (s)";
    for (size_t i = 0; i < classes.classes().size(); ++i) {
      const sched::ServiceClassSpec& cls = classes.classes()[i];
      if (cls.goal_kind != sched::GoalKind::kAvgResponseCeiling) continue;
      SvgSeries series;
      series.label = ClassLabel(cls);
      series.color_slot = slots[i];
      if (!rows.empty()) {
        for (const obs::IntervalRow& row : rows) {
          for (const obs::IntervalClassSample& s : row.classes) {
            if (s.class_id != cls.class_id) continue;
            series.xs.push_back(row.sim_time / 60.0);
            series.ys.push_back(s.measured);
          }
        }
      } else {
        auto it = result.response_series.find(cls.class_id);
        if (it != result.response_series.end()) {
          series.xs = PeriodAxis(it->second.size());
          series.ys = it->second;
        }
      }
      if (!series.xs.empty()) spec.series.push_back(std::move(series));
      spec.reference_lines.push_back(
          {StrPrintf("%s goal", ClassLabel(cls).c_str()), cls.goal_value,
           slots[i]});
    }
    WriteChart(out, "OLTP response vs. goal", spec,
               rows.empty()
                   ? "Mean response time per period for each OLTP class; "
                     "dashed lines mark the response-ceiling SLOs."
                   : "Smoothed response time the planner accepted each "
                     "control interval; dashed lines mark the "
                     "response-ceiling SLOs.");
  }

  // ---- Chart 4: SLO attainment ----------------------------------------
  {
    SvgChartSpec spec;
    spec.y_label = "attainment";
    spec.y_min = 0.0;
    spec.y_max = 1.05;
    if (telemetry != nullptr) {
      spec.x_label = "sim time (min)";
      for (size_t i = 0; i < classes.classes().size(); ++i) {
        int id = classes.classes()[i].class_id;
        SvgSeries series;
        series.label = ClassLabel(classes.classes()[i]);
        series.color_slot = slots[i];
        for (const auto& [time, ratio] :
             telemetry->slo.AttainmentSeries(id)) {
          series.xs.push_back(time / 60.0);
          series.ys.push_back(ratio);
        }
        if (!series.xs.empty()) spec.series.push_back(std::move(series));
      }
    } else {
      // Fallback: cumulative per-period attainment from the figure
      // series.
      spec.x_label = "period";
      for (size_t i = 0; i < classes.classes().size(); ++i) {
        const sched::ServiceClassSpec& cls = classes.classes()[i];
        const auto& values =
            cls.goal_kind == sched::GoalKind::kVelocityFloor
                ? result.velocity_series
                : result.response_series;
        auto it = values.find(cls.class_id);
        auto completed_it = result.completed_series.find(cls.class_id);
        if (it == values.end()) continue;
        SvgSeries series;
        series.label = ClassLabel(cls);
        series.color_slot = slots[i];
        int met = 0;
        int with_data = 0;
        for (size_t p = 0; p < it->second.size(); ++p) {
          bool has_data =
              completed_it != result.completed_series.end() &&
              p < completed_it->second.size() &&
              completed_it->second[p] > 0;
          if (has_data) {
            ++with_data;
            if (cls.GoalRatio(it->second[p]) >= 1.0) ++met;
          }
          series.xs.push_back(static_cast<double>(p + 1));
          series.ys.push_back(
              with_data > 0 ? static_cast<double>(met) / with_data : 0.0);
        }
        if (!series.xs.empty()) spec.series.push_back(std::move(series));
      }
    }
    WriteChart(out, "SLO attainment", spec,
               telemetry != nullptr
                   ? "Rolling fraction of recent control intervals in "
                     "which each class met its goal (1.0 = goal met "
                     "throughout the window)."
                   : "Cumulative fraction of data-bearing periods in "
                     "which each class met its goal.");
  }

  // ---- Chart 5: model residuals (telemetry only) ----------------------
  bool wrote_residuals = false;
  if (telemetry != nullptr) {
    SvgChartSpec spec;
    spec.x_label = "control interval";
    spec.y_label = "|observed - predicted|";
    for (size_t i = 0; i < classes.classes().size(); ++i) {
      int id = classes.classes()[i].class_id;
      SvgSeries series;
      series.label = ClassLabel(classes.classes()[i]);
      series.color_slot = slots[i];
      for (const obs::PredictionRecord& rec :
           telemetry->ledger.Records()) {
        if (!rec.resolved || rec.class_id != id) continue;
        series.xs.push_back(static_cast<double>(rec.target_interval));
        series.ys.push_back(std::abs(rec.observed - rec.predicted));
      }
      if (!series.xs.empty()) spec.series.push_back(std::move(series));
    }
    if (!spec.series.empty()) {
      wrote_residuals = true;
      WriteChart(out, "Model fidelity: prediction residuals", spec,
                 "Absolute error of the planner's one-interval-ahead "
                 "performance predictions (velocity for OLAP classes, "
                 "response seconds for OLTP), from the prediction "
                 "ledger.");
    }
  }

  // ---- Chart 6: fitted OLTP slope trajectory (telemetry only) ---------
  if (telemetry != nullptr) {
    std::vector<std::pair<uint64_t, double>> slope =
        telemetry->ledger.SlopeTrajectory();
    if (!slope.empty()) {
      SvgChartSpec spec;
      spec.x_label = "control interval";
      spec.y_label = "slope s (s/timeron)";
      SvgSeries series;
      series.label = "fitted slope";
      series.color_slot = 1;
      for (const auto& [interval, value] : slope) {
        series.xs.push_back(static_cast<double>(interval));
        series.ys.push_back(value);
      }
      spec.series.push_back(std::move(series));
      WriteChart(out, "OLTP model slope trajectory", spec,
                 "Online-fitted slope s of the OLTP response model "
                 "t' = t + s(C' - C), per control interval.");
    }
  }

  // ---- Chart 7: latency breakdown by stage (rt runs only) -------------
  {
    SvgChartSpec spec = BuildLatencyBreakdownSpec(rows);
    if (!spec.series.empty()) {
      out << "<h2>Latency breakdown by stage</h2>\n<figure>\n"
          << obs::RenderStackedAreaChart(spec)
          << "\n<figcaption>Completion-weighted mean wall-clock time a "
             "query spent in each stage (gateway queue, dispatch through "
             "admission control, execution) per control interval; the "
             "stacked height is the mean end-to-end latency. Only "
             "real-time runs carry stage traces.</figcaption>\n"
             "</figure>\n";
    }
  }

  // ---- Residual summary table -----------------------------------------
  if (wrote_residuals) {
    out << "<h2>Prediction residual summary</h2>\n<table>\n"
        << "<tr><th>class</th><th>resolved predictions</th>"
        << "<th>mean |error|</th><th>p95 |error|</th><th>bias</th></tr>\n";
    for (size_t i = 0; i < classes.classes().size(); ++i) {
      const sched::ServiceClassSpec& spec = classes.classes()[i];
      obs::ResidualStats stats =
          telemetry->ledger.StatsFor(spec.class_id);
      out << "<tr><td><span class=\"dot\" "
             "style=\"background:var(--series-"
          << slots[i] << ")\"></span>" << HtmlEscape(ClassLabel(spec))
          << "</td><td>" << stats.count << "</td><td>"
          << StrPrintf("%.4g", stats.mean_abs_error) << "</td><td>"
          << StrPrintf("%.4g", stats.p95_abs_error) << "</td><td>"
          << StrPrintf("%+.4g", stats.bias) << "</td></tr>\n";
    }
    out << "</table>\n<p class=\"note\">Bias is mean (observed - "
           "predicted): positive means the model underpredicts.</p>\n";
  }

  // ---- Violation events table -----------------------------------------
  if (telemetry != nullptr) {
    std::vector<obs::SloViolationEvent> events = telemetry->slo.Events();
    if (!events.empty()) {
      constexpr size_t kMaxEventRows = 40;
      out << "<h2>SLO violation events</h2>\n<table>\n"
          << "<tr><th>class</th><th>start</th><th>end</th>"
          << "<th>intervals</th><th>worst ratio</th>"
          << "<th>duration (min)</th></tr>\n";
      size_t shown = 0;
      for (const obs::SloViolationEvent& event : events) {
        if (shown++ >= kMaxEventRows) break;
        const sched::ServiceClassSpec* spec =
            classes.Find(event.class_id);
        size_t index = 0;
        for (size_t i = 0; i < classes.classes().size(); ++i) {
          if (classes.classes()[i].class_id == event.class_id) index = i;
        }
        out << "<tr><td><span class=\"dot\" "
               "style=\"background:var(--series-"
            << slots[index] << ")\"></span>"
            << HtmlEscape(spec != nullptr
                              ? ClassLabel(*spec)
                              : StrPrintf("class %d", event.class_id))
            << "</td><td>#" << event.start_interval << "</td><td>#"
            << event.end_interval << (event.open ? " (open)" : "")
            << "</td><td>" << event.intervals << "</td><td>"
            << StrPrintf("%.3f", event.worst_ratio) << "</td><td>"
            << StrPrintf("%.1f", event.duration / 60.0) << "</td></tr>\n";
      }
      out << "</table>\n";
      if (events.size() > kMaxEventRows) {
        out << "<p class=\"note\">Showing the first " << kMaxEventRows
            << " of " << events.size()
            << " events; the full list is in the audit JSONL.</p>\n";
      }
    } else {
      out << "<h2>SLO violation events</h2>\n"
          << "<p class=\"note\">No violation events: every class met "
             "its goal in every observed control interval.</p>\n";
    }
  }

  // ---- Network front-end ----------------------------------------------
  // Rendered only when the run was served over TCP (src/net registers
  // qsched_net_* metrics; a pure in-process run has none).
  if (telemetry != nullptr) {
    std::vector<obs::MetricSnapshot> net;
    for (obs::MetricSnapshot& snap : telemetry->registry.Snapshot()) {
      if (snap.name.rfind("qsched_net_", 0) == 0) {
        net.push_back(std::move(snap));
      }
    }
    if (!net.empty()) {
      out << "<h2>Network front-end</h2>\n<table>\n"
          << "<tr><th>metric</th><th>value</th>"
          << "<th>p50</th><th>p99</th><th>max</th></tr>\n";
      for (const obs::MetricSnapshot& snap : net) {
        out << "<tr><td>" << HtmlEscape(snap.name);
        if (!snap.labels.empty()) {
          out << "{" << HtmlEscape(snap.labels) << "}";
        }
        out << "</td>";
        if (snap.kind == obs::MetricKind::kHistogram) {
          out << "<td>" << snap.count << " samples</td><td>"
              << StrPrintf("%.4g", snap.p50) << "</td><td>"
              << StrPrintf("%.4g", snap.p99) << "</td><td>"
              << StrPrintf("%.4g", snap.max) << "</td>";
        } else {
          out << "<td>" << StrPrintf("%.0f", snap.value)
              << "</td><td></td><td></td><td></td>";
        }
        out << "</tr>\n";
      }
      out << "</table>\n<p class=\"note\">qsched_net_* families from "
             "the TCP front-end (DESIGN.md &sect;9): wire frame and "
             "rejection accounting, on-wire round-trip and in-server "
             "turnaround seconds.</p>\n";
    }
  }

  out << "</body>\n</html>\n";
}

}  // namespace qsched::harness
