#ifndef QSCHED_CLUSTER_ROUTER_H_
#define QSCHED_CLUSTER_ROUTER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/backend_pool.h"
#include "net/service.h"
#include "obs/telemetry.h"

namespace qsched::cluster {

struct RouterOptions {
  BackendTuning tuning;
  /// Placements attempted per query before giving up with
  /// kBackendUnavailable (initial dispatch counts as the first).
  int max_attempts = 3;
};

/// Lifetime accounting of the router, read for NETLOAD-style reporting
/// and the conservation identity. Every SUBMIT the router accepts from
/// its front server (`offered`) resolves exactly one way:
///
///   offered == accepted + rejected_relayed + rejected_unroutable
///
/// `failovers` and `retries` are event counters layered on top (a query
/// that fails over and then lands counts once in accepted), so they do
/// not appear in the identity.
struct RouterAccounting {
  uint64_t offered = 0;
  uint64_t accepted = 0;
  /// Backend said no (queue full / shutting down); relayed verbatim.
  uint64_t rejected_relayed = 0;
  /// The router itself said no: no usable backend, or attempts
  /// exhausted — surfaced as REJECTED{BACKEND_UNAVAILABLE}.
  uint64_t rejected_unroutable = 0;
  uint64_t completions_relayed = 0;
  /// Completions synthesized as cancelled because the owning backend
  /// died after accepting.
  uint64_t cancelled_completions = 0;
  uint64_t failovers = 0;
  uint64_t retries = 0;
};

/// The cluster front: a net::QueryService that fans SUBMITs over a
/// BackendPool. Mounted behind a net::Server, so the router speaks the
/// same v1/v2 wire protocol on its front socket that each backend
/// speaks on its back sockets — clients cannot tell a router from a
/// single backend.
///
/// Every Submit is deferred: the verdict arrives once a backend has
/// ruled (or routing gave up). The router wraps the caller's callbacks
/// with its accounting before handing them to a channel, so the
/// conservation identity holds no matter which thread or channel
/// resolves the query.
class Router : public net::QueryService {
 public:
  Router(const std::vector<BackendAddress>& backends,
         const RouterOptions& options, obs::Telemetry* telemetry = nullptr);
  ~Router() override;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  void Start();

  /// Stops routing. Call AFTER the front net::Server has stopped (its
  /// drain needs the channels alive to relay verdicts). Remaining
  /// in-flight queries resolve per the channel Stop contract; then the
  /// conservation identity is checked (violations log to stderr and
  /// make ConservationHolds() return false).
  void Stop();

  // net::QueryService:
  net::SubmitDisposition Submit(const workload::Query& query,
                                bool want_trace, VerdictFn on_verdict,
                                CompleteFn on_complete) override;
  net::WireStats Stats() override;
  bool shutting_down() override;

  RouterAccounting Accounting() const;

  /// offered == accepted + rejected_relayed + rejected_unroutable, with
  /// every in-flight query resolved. Meaningful after Stop().
  bool ConservationHolds() const;

  BackendPool& pool() { return *pool_; }

  /// Plain-text backend table for /statusz: one row per backend with
  /// health, circuit, in-flight, queue depth, attainment and lifetime
  /// counters, followed by the accounting summary.
  std::string StatuszTable() const;

  /// Observer invoked synchronously for every query the router takes in
  /// (counted `offered`), before routing — the trace-capture point, the
  /// same contract as rt::Gateway::set_on_offer. Must be cheap and
  /// non-blocking. Set before Start().
  void set_on_offer(std::function<void(const workload::Query&)> fn) {
    on_offer_ = std::move(fn);
  }

 private:
  using SteadyClock = std::chrono::steady_clock;

  /// Places `item` on the best usable backend, skipping `exclude` when
  /// possible. Rejects with kBackendUnavailable when nothing is usable.
  void Dispatch(RoutedQuery item, const BackendChannel* exclude);
  /// Channel hand-back for verdict-pending queries on a dead backend.
  void OnFailover(RoutedQuery item, BackendChannel* from);

  obs::Histogram* RouteStageHist(int class_id);
  obs::Counter* RoutedCounter(const BackendChannel* target, int class_id);

  RouterOptions options_;
  obs::Telemetry* telemetry_;
  std::function<void(const workload::Query&)> on_offer_;
  std::unique_ptr<BackendPool> pool_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};

  std::atomic<uint64_t> offered_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_relayed_{0};
  std::atomic<uint64_t> rejected_unroutable_{0};
  std::atomic<uint64_t> completions_relayed_{0};
  std::atomic<uint64_t> cancelled_completions_{0};
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> retries_{0};

  obs::Counter* failover_counter_ = nullptr;
  obs::Counter* retry_counter_ = nullptr;
  obs::Counter* unroutable_counter_ = nullptr;

  std::mutex metric_mu_;
  std::map<int, obs::Histogram*> route_stage_hists_;
  std::map<std::pair<int, int>, obs::Counter*> routed_counters_;
};

}  // namespace qsched::cluster

#endif  // QSCHED_CLUSTER_ROUTER_H_
