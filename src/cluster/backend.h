#ifndef QSCHED_CLUSTER_BACKEND_H_
#define QSCHED_CLUSTER_BACKEND_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>

#include "net/service.h"
#include "workload/query.h"

namespace qsched::cluster {

/// One qsched backend (a net::Server speaking the v1/v2 wire protocol).
struct BackendAddress {
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  std::string ToString() const {
    return host + ":" + std::to_string(port);
  }
};

/// Per-backend health state machine, driven by PING probes and
/// consecutive failure counts (DESIGN.md §12):
///
///   healthy --failure--> degraded --failures >= eject--> ejected
///      ^                    |                               |
///      +----probe reply-----+          reconnect + probe ---+
///
/// healthy: connected, last probe answered. degraded: connected but
/// accumulating failures (still routable when no healthy backend
/// remains). ejected: disconnected; the circuit breaker gates when a
/// reconnect may be attempted.
enum class BackendHealth : uint8_t {
  kHealthy = 0,
  kDegraded = 1,
  kEjected = 2,
};

const char* BackendHealthToString(BackendHealth health);

/// Classic circuit breaker around the reconnect path. kClosed: traffic
/// flows. kOpen: no connection, no attempts until the backoff expires.
/// kHalfOpen: one trial connection is probing; a PONG closes the
/// circuit, any failure reopens it with a doubled (jittered) backoff.
enum class CircuitState : uint8_t {
  kClosed = 0,
  kOpen = 1,
  kHalfOpen = 2,
};

const char* CircuitStateToString(CircuitState state);

/// Knobs of the health prober and circuit breaker. The defaults suit a
/// live deployment; tests shrink the intervals to keep wall time low.
struct BackendTuning {
  /// Bound on each TCP connect (see net::ConnectFd).
  double connect_timeout_seconds = 1.0;
  /// PING + STATS probe cadence while connected.
  double probe_interval_seconds = 0.25;
  /// A probe unanswered for this long counts as one failure.
  double probe_timeout_seconds = 1.0;
  /// Consecutive failures that eject the backend (and open the
  /// circuit). Below the threshold the backend is merely degraded.
  int eject_after_failures = 3;
  /// Reconnect backoff: initial, doubling per failed attempt up to the
  /// cap, with +/- jitter_fraction uniform jitter so a fleet of routers
  /// does not thunder back in lockstep.
  double backoff_initial_seconds = 0.05;
  double backoff_max_seconds = 2.0;
  double backoff_jitter_fraction = 0.2;
  /// Weight of the SLO-attainment deficit in the routing score.
  double attainment_weight = 4.0;
  /// Seeds the jitter draw (per channel: seed + backend index).
  uint64_t seed = 1;
};

/// Routing score of one backend for one service class — lower is
/// better. `load` is what the backend already owes (the router's
/// in-flight count toward it plus its last reported gateway queue
/// depth); `deficit` is how far the class's rolling SLO attainment is
/// below 1.0 on that backend. A backend missing its OLTP goal scores
/// worse for OLTP by (1 + weight * deficit), so it stops receiving
/// OLTP traffic before it collapses while still taking classes it is
/// meeting.
inline double BackendScore(double load, double deficit,
                           double attainment_weight) {
  const double clamped = std::clamp(deficit, 0.0, 1.0);
  return (1.0 + load) * (1.0 + attainment_weight * clamped);
}

/// Read-only view of one backend channel, for routing decisions and the
/// /statusz table.
struct BackendSnapshot {
  int index = 0;
  BackendAddress address;
  BackendHealth health = BackendHealth::kEjected;
  CircuitState circuit = CircuitState::kOpen;
  bool connected = false;
  int consecutive_failures = 0;
  /// Router-side queries owed to this backend (awaiting verdict or
  /// COMPLETED).
  uint64_t router_in_flight = 0;
  /// Last STATS_REPLY: gateway queue depth, admitted count and rolling
  /// per-class SLO attainment.
  uint64_t queue_depth = 0;
  uint64_t admitted = 0;
  uint64_t accepted = 0;
  uint64_t completed = 0;
  std::map<int, double> attainment;
  // Lifetime counters.
  uint64_t forwarded = 0;
  uint64_t failed_over_out = 0;
  uint64_t cancelled_completions = 0;
  uint64_t reconnects = 0;
};

/// One SUBMIT traveling through the router: the query, the front
/// connection's callbacks (already wrapped with the router's accounting)
/// and how many placements were attempted. The holder owes exactly one
/// on_verdict call, plus one on_complete call iff that verdict was
/// accepted.
struct RoutedQuery {
  workload::Query query;
  bool want_trace = false;
  net::QueryService::VerdictFn on_verdict;
  net::QueryService::CompleteFn on_complete;
  int attempts = 0;
};

}  // namespace qsched::cluster

#endif  // QSCHED_CLUSTER_BACKEND_H_
