#ifndef QSCHED_CLUSTER_BACKEND_CHANNEL_H_
#define QSCHED_CLUSTER_BACKEND_CHANNEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/backend.h"
#include "common/rng.h"
#include "net/frame.h"
#include "obs/telemetry.h"

namespace qsched::cluster {

/// One backend's dedicated I/O channel: a single thread that owns the
/// TCP connection to that backend, forwards routed SUBMITs (pipelined —
/// many queries in flight, matched back by request_id), probes health
/// with PING + STATS every probe interval, and runs the backend's
/// circuit breaker and reconnect backoff.
///
/// Threading: Forward() and Stop() may be called from any thread — they
/// enqueue under the command mutex and tickle the channel's wakeup
/// pipe. Everything else (socket, buffers, in-flight maps) is owned by
/// the channel thread. Snapshot() returns a consistent copy under the
/// snapshot mutex, which the channel thread updates at transition
/// points.
///
/// Exactly-once contract: every RoutedQuery handed to Forward() gets
/// its on_verdict invoked exactly once — with the backend's verdict,
/// or by the router after a failover hand-back (FailoverFn), or with
/// kBackendUnavailable at Stop(). An accepted query additionally gets
/// exactly one on_complete: the backend's COMPLETED relayed, or — when
/// the backend dies first — a synthesized cancelled completion, so an
/// ACCEPTED front client never waits forever (zero lost COMPLETEDs).
class BackendChannel {
 public:
  /// Hands back a query this channel can no longer place (its verdict
  /// was still pending when the connection died). Invoked on the
  /// channel thread; the router re-routes it to another backend or
  /// rejects it with kBackendUnavailable. Never invoked for accepted
  /// queries — those get a cancelled completion instead, because the
  /// backend may still be executing them and re-running would
  /// duplicate work.
  using FailoverFn =
      std::function<void(RoutedQuery item, BackendChannel* from)>;

  BackendChannel(const BackendAddress& address, const BackendTuning& tuning,
                 int index, FailoverFn on_failover,
                 obs::Telemetry* telemetry = nullptr);
  ~BackendChannel();

  BackendChannel(const BackendChannel&) = delete;
  BackendChannel& operator=(const BackendChannel&) = delete;

  /// Spawns the channel thread (which immediately starts connecting).
  void Start();

  /// Stops the thread. Pending unaccepted queries are rejected with
  /// kBackendUnavailable; accepted ones get cancelled completions.
  /// Idempotent.
  void Stop();

  /// Enqueues one routed query for forwarding. Safe from any thread.
  /// If the channel turns out to be unusable the query is failed over,
  /// never dropped.
  void Forward(RoutedQuery item);

  const BackendAddress& address() const { return address_; }
  int index() const { return index_; }
  const BackendTuning& tuning() const { return tuning_; }

  /// Queries owed to this backend right now (cheap atomic read).
  uint64_t router_in_flight() const { return in_flight_.load(); }

  /// Whether the router should place new queries here: connected with
  /// the circuit closed.
  bool Usable() const;

  BackendSnapshot Snapshot() const;

  /// Test hook: pins the stats part of the snapshot (queue depth +
  /// attainment), so tests can starve one backend's OLTP attainment
  /// without building a whole SLO history; real STATS_REPLYs stop
  /// overwriting it.
  void InjectStatsForTest(uint64_t queue_depth,
                          const std::map<int, double>& attainment);

 private:
  using SteadyClock = std::chrono::steady_clock;

  void ThreadLoop();
  /// One reconnect attempt (bounded by connect_timeout). On success the
  /// circuit goes half-open and a probe is sent; only a PONG closes it.
  void TryConnect();
  /// Tears the connection down: verdict-pending queries are handed to
  /// the failover callback, accepted ones get synthesized cancelled
  /// completions, the circuit opens and the backoff (re)arms.
  void HandleDisconnect(const char* why);
  /// Encodes every newly enqueued SUBMIT onto the out buffer (or fails
  /// it over when the channel is not usable).
  void PumpForwarding();
  /// Sends PING + STATS when the probe interval elapsed; times out an
  /// unanswered probe (one failure; ejection threshold applies).
  void MaybeProbe();
  void HandleFrame(const net::Frame& frame);
  /// Reads and decodes everything available. Disconnects on EOF/error.
  void PumpIncoming();
  void FlushOut();
  /// Marks the backend alive: failures reset, circuit closes (from
  /// half-open), health returns to healthy.
  void MarkAlive();
  void SetHealth(BackendHealth health);
  double NextBackoffSeconds();

  BackendAddress address_;
  BackendTuning tuning_;
  int index_;
  FailoverFn on_failover_;
  obs::Telemetry* telemetry_;
  obs::Gauge* health_gauge_ = nullptr;
  obs::Counter* reconnects_counter_ = nullptr;
  obs::Counter* cancelled_counter_ = nullptr;

  // Command side (any thread -> channel thread).
  std::mutex cmd_mu_;
  std::deque<RoutedQuery> incoming_;
  bool stop_requested_ = false;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;

  std::thread thread_;
  std::atomic<bool> started_{false};

  // Channel-thread-owned connection state.
  int fd_ = -1;
  std::vector<uint8_t> inbuf_;
  std::vector<uint8_t> outbuf_;
  size_t out_offset_ = 0;
  uint64_t next_request_id_ = 1;
  /// SUBMITs on the wire awaiting their verdict, by request_id.
  std::unordered_map<uint64_t, RoutedQuery> awaiting_verdict_;
  /// Accepted queries awaiting COMPLETED, by request_id.
  std::unordered_map<uint64_t, RoutedQuery> awaiting_completion_;
  Rng jitter_rng_;
  double current_backoff_seconds_ = 0.0;
  SteadyClock::time_point next_connect_attempt_{};
  SteadyClock::time_point last_probe_{};
  uint64_t outstanding_ping_id_ = 0;  // 0 = none
  SteadyClock::time_point probe_deadline_{};

  // Shared snapshot (snapshot_mu_) + cheap atomics.
  mutable std::mutex snapshot_mu_;
  BackendSnapshot snapshot_;
  bool stats_injected_ = false;
  std::atomic<uint64_t> in_flight_{0};
  std::atomic<bool> usable_{false};
};

}  // namespace qsched::cluster

#endif  // QSCHED_CLUSTER_BACKEND_CHANNEL_H_
