#include "cluster/backend_pool.h"

#include <chrono>
#include <limits>
#include <thread>
#include <utility>

namespace qsched::cluster {

BackendPool::BackendPool(const std::vector<BackendAddress>& addresses,
                         const BackendTuning& tuning,
                         BackendChannel::FailoverFn on_failover,
                         obs::Telemetry* telemetry) {
  channels_.reserve(addresses.size());
  for (size_t i = 0; i < addresses.size(); ++i) {
    channels_.push_back(std::make_unique<BackendChannel>(
        addresses[i], tuning, static_cast<int>(i), on_failover, telemetry));
  }
  if (telemetry != nullptr) {
    score_hist_ =
        telemetry->registry.GetHistogram("qsched_cluster_backend_score");
  }
}

void BackendPool::Start() {
  for (auto& channel : channels_) channel->Start();
}

void BackendPool::Stop() {
  for (auto& channel : channels_) channel->Stop();
}

BackendChannel* BackendPool::Pick(int class_id,
                                  const BackendChannel* exclude) {
  BackendChannel* best = nullptr;
  double best_score = std::numeric_limits<double>::infinity();
  bool best_healthy = false;
  for (auto& channel : channels_) {
    if (channel.get() == exclude) continue;
    if (!channel->Usable()) continue;
    const BackendSnapshot snap = channel->Snapshot();
    if (snap.health == BackendHealth::kEjected) continue;
    const bool healthy = snap.health == BackendHealth::kHealthy;
    const double load = static_cast<double>(snap.router_in_flight) +
                        static_cast<double>(snap.queue_depth);
    double deficit = 0.0;
    auto it = snap.attainment.find(class_id);
    if (it != snap.attainment.end()) deficit = 1.0 - it->second;
    const double score =
        BackendScore(load, deficit, channel->tuning().attainment_weight);
    if (score_hist_ != nullptr) score_hist_->Record(score);
    // Healthy strictly outranks degraded; score breaks ties within the
    // same tier.
    if (healthy && !best_healthy) {
      best = channel.get();
      best_score = score;
      best_healthy = true;
    } else if (healthy == best_healthy && score < best_score) {
      best = channel.get();
      best_score = score;
    }
  }
  return best;
}

std::vector<BackendSnapshot> BackendPool::Snapshots() const {
  std::vector<BackendSnapshot> out;
  out.reserve(channels_.size());
  for (const auto& channel : channels_) out.push_back(channel->Snapshot());
  return out;
}

size_t BackendPool::WaitUsable(size_t min_usable,
                               double timeout_seconds) const {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  while (true) {
    size_t usable = 0;
    for (const auto& channel : channels_) {
      if (channel->Usable()) ++usable;
    }
    if (usable >= min_usable || std::chrono::steady_clock::now() >= deadline) {
      return usable;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

}  // namespace qsched::cluster
