#ifndef QSCHED_CLUSTER_BACKEND_POOL_H_
#define QSCHED_CLUSTER_BACKEND_POOL_H_

#include <memory>
#include <vector>

#include "cluster/backend.h"
#include "cluster/backend_channel.h"
#include "obs/telemetry.h"

namespace qsched::cluster {

/// Owns one BackendChannel per configured backend and answers the
/// routing question: "which backend should take the next query of class
/// C?" Selection is least-loaded weighted by SLO-attainment deficit
/// (see BackendScore): among healthy backends the lowest score wins;
/// when none is healthy a degraded-but-connected backend is used;
/// ejected / circuit-open backends are never picked.
class BackendPool {
 public:
  BackendPool(const std::vector<BackendAddress>& addresses,
              const BackendTuning& tuning,
              BackendChannel::FailoverFn on_failover,
              obs::Telemetry* telemetry = nullptr);

  BackendPool(const BackendPool&) = delete;
  BackendPool& operator=(const BackendPool&) = delete;

  void Start();
  void Stop();

  /// Picks the best usable backend for `class_id`, skipping `exclude`
  /// (the channel a failover came from). Returns nullptr when no usable
  /// backend exists — including when only `exclude` is usable, so a
  /// failed-over query is not bounced straight back to the backend that
  /// just dropped it; the caller may re-Pick without the exclusion
  /// before giving up.
  BackendChannel* Pick(int class_id, const BackendChannel* exclude);

  std::vector<BackendSnapshot> Snapshots() const;

  /// Blocks until at least `min_usable` backends are usable or the
  /// timeout elapses. Returns the usable count at exit.
  size_t WaitUsable(size_t min_usable, double timeout_seconds) const;

  size_t size() const { return channels_.size(); }
  BackendChannel* channel(size_t i) { return channels_[i].get(); }

 private:
  std::vector<std::unique_ptr<BackendChannel>> channels_;
  obs::Histogram* score_hist_ = nullptr;
};

}  // namespace qsched::cluster

#endif  // QSCHED_CLUSTER_BACKEND_POOL_H_
