#include "cluster/backend_channel.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "net/client.h"

namespace qsched::cluster {

namespace {

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

const char* BackendHealthToString(BackendHealth health) {
  switch (health) {
    case BackendHealth::kHealthy:
      return "healthy";
    case BackendHealth::kDegraded:
      return "degraded";
    case BackendHealth::kEjected:
      return "ejected";
  }
  return "unknown";
}

const char* CircuitStateToString(CircuitState state) {
  switch (state) {
    case CircuitState::kClosed:
      return "closed";
    case CircuitState::kOpen:
      return "open";
    case CircuitState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

BackendChannel::BackendChannel(const BackendAddress& address,
                               const BackendTuning& tuning, int index,
                               FailoverFn on_failover,
                               obs::Telemetry* telemetry)
    : address_(address),
      tuning_(tuning),
      index_(index),
      on_failover_(std::move(on_failover)),
      telemetry_(telemetry),
      jitter_rng_(tuning.seed + static_cast<uint64_t>(index),
                  0xb5ad4eceda1ce2a9ULL) {
  snapshot_.index = index_;
  snapshot_.address = address_;
  if (telemetry_ != nullptr) {
    obs::Registry& reg = telemetry_->registry;
    const std::string label =
        StrPrintf("backend=\"%s\"", address_.ToString().c_str());
    health_gauge_ = reg.GetGauge("qsched_cluster_backend_health", label);
    health_gauge_->Set(
        static_cast<double>(BackendHealth::kEjected));
    reconnects_counter_ =
        reg.GetCounter("qsched_cluster_reconnects_total", label);
    cancelled_counter_ = reg.GetCounter(
        "qsched_cluster_cancelled_completions_total", label);
  }
}

BackendChannel::~BackendChannel() { Stop(); }

void BackendChannel::Start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) return;
  int pipe_fds[2];
  if (pipe(pipe_fds) == 0) {
    wake_read_fd_ = pipe_fds[0];
    wake_write_fd_ = pipe_fds[1];
    SetNonBlocking(wake_read_fd_);
    SetNonBlocking(wake_write_fd_);
  }
  // First connect attempt is due immediately.
  next_connect_attempt_ = SteadyClock::now();
  thread_ = std::thread([this] { ThreadLoop(); });
}

void BackendChannel::Stop() {
  {
    std::lock_guard<std::mutex> lock(cmd_mu_);
    if (stop_requested_) {
      // Already stopping; fall through to join below.
    }
    stop_requested_ = true;
    if (wake_write_fd_ >= 0) {
      char byte = 1;
      ssize_t ignored = write(wake_write_fd_, &byte, 1);
      (void)ignored;
    }
  }
  if (thread_.joinable()) thread_.join();
  if (wake_read_fd_ >= 0) close(wake_read_fd_);
  if (wake_write_fd_ >= 0) close(wake_write_fd_);
  wake_read_fd_ = wake_write_fd_ = -1;
}

void BackendChannel::Forward(RoutedQuery item) {
  {
    std::lock_guard<std::mutex> lock(cmd_mu_);
    if (!stop_requested_) {
      // Counted from enqueue, not from encode: the router's scoring
      // must see queued-but-unpumped queries as load, or a burst all
      // lands on one backend before its channel thread runs once.
      in_flight_.fetch_add(1);
      incoming_.push_back(std::move(item));
      if (wake_write_fd_ >= 0) {
        char byte = 1;
        ssize_t ignored = write(wake_write_fd_, &byte, 1);
        (void)ignored;
      }
      return;
    }
  }
  // Stopping: the channel thread will never see it — reject here so the
  // query is never silently dropped.
  item.on_verdict(false, rt::RejectReason::kBackendUnavailable);
}

bool BackendChannel::Usable() const { return usable_.load(); }

BackendSnapshot BackendChannel::Snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  BackendSnapshot copy = snapshot_;
  copy.router_in_flight = in_flight_.load();
  return copy;
}

void BackendChannel::InjectStatsForTest(
    uint64_t queue_depth, const std::map<int, double>& attainment) {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  stats_injected_ = true;
  snapshot_.queue_depth = queue_depth;
  snapshot_.attainment = attainment;
}

void BackendChannel::SetHealth(BackendHealth health) {
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_.health = health;
  }
  if (health_gauge_ != nullptr) {
    health_gauge_->Set(static_cast<double>(health));
  }
}

double BackendChannel::NextBackoffSeconds() {
  if (current_backoff_seconds_ <= 0.0) {
    current_backoff_seconds_ = tuning_.backoff_initial_seconds;
  } else {
    current_backoff_seconds_ = std::min(current_backoff_seconds_ * 2.0,
                                        tuning_.backoff_max_seconds);
  }
  const double jitter = tuning_.backoff_jitter_fraction;
  const double factor =
      jitter > 0.0 ? jitter_rng_.Uniform(1.0 - jitter, 1.0 + jitter) : 1.0;
  return current_backoff_seconds_ * factor;
}

void BackendChannel::ThreadLoop() {
  while (true) {
    {
      std::lock_guard<std::mutex> lock(cmd_mu_);
      if (stop_requested_) break;
    }

    if (fd_ < 0 && SteadyClock::now() >= next_connect_attempt_) {
      TryConnect();
    }

    PumpForwarding();
    MaybeProbe();
    FlushOut();

    // Sleep until the next timed event (probe, probe timeout, reconnect
    // attempt), capped so stop flags are rechecked regularly.
    double wait_s = 0.050;
    const SteadyClock::time_point now = SteadyClock::now();
    if (fd_ < 0) {
      wait_s = std::min(
          wait_s, std::chrono::duration<double>(next_connect_attempt_ - now)
                      .count());
    } else if (outstanding_ping_id_ != 0) {
      wait_s = std::min(
          wait_s,
          std::chrono::duration<double>(probe_deadline_ - now).count());
    }
    const int poll_ms =
        wait_s <= 0.0 ? 0 : static_cast<int>(wait_s * 1000.0) + 1;

    pollfd fds[2];
    nfds_t nfds = 0;
    fds[nfds++] = {wake_read_fd_, POLLIN, 0};
    if (fd_ >= 0) {
      short events = POLLIN;
      if (out_offset_ < outbuf_.size()) events |= POLLOUT;
      fds[nfds++] = {fd_, events, 0};
    }
    poll(fds, nfds, poll_ms);

    if (fds[0].revents & POLLIN) {
      char buf[256];
      while (read(wake_read_fd_, buf, sizeof(buf)) > 0) {
      }
    }
    if (nfds > 1 && fd_ >= 0 &&
        (fds[1].revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL))) {
      PumpIncoming();
    }
    FlushOut();
  }

  // Stop: close the socket, then resolve everything still owed. Items
  // awaiting a verdict are rejected (never re-routed — the router is
  // stopping too); accepted items get cancelled completions.
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  usable_.store(false);
  std::deque<RoutedQuery> leftover;
  {
    std::lock_guard<std::mutex> lock(cmd_mu_);
    leftover.swap(incoming_);
  }
  for (RoutedQuery& item : leftover) {
    item.on_verdict(false, rt::RejectReason::kBackendUnavailable);
    in_flight_.fetch_sub(1);
  }
  for (auto& [rid, item] : awaiting_verdict_) {
    item.on_verdict(false, rt::RejectReason::kBackendUnavailable);
    in_flight_.fetch_sub(1);
  }
  awaiting_verdict_.clear();
  for (auto& [rid, item] : awaiting_completion_) {
    net::ServiceCompletion completion;
    completion.class_id = item.query.class_id;
    completion.cancelled = true;
    completion.completed_wall = SteadyClock::now();
    if (cancelled_counter_ != nullptr) cancelled_counter_->Inc();
    {
      std::lock_guard<std::mutex> lock(snapshot_mu_);
      ++snapshot_.cancelled_completions;
    }
    item.on_complete(completion);
    in_flight_.fetch_sub(1);
  }
  awaiting_completion_.clear();
}

void BackendChannel::TryConnect() {
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_.circuit = CircuitState::kHalfOpen;
  }
  Result<int> connected = net::ConnectFd(address_.host, address_.port,
                                         tuning_.connect_timeout_seconds);
  if (!connected.ok()) {
    int failures;
    {
      std::lock_guard<std::mutex> lock(snapshot_mu_);
      failures = ++snapshot_.consecutive_failures;
      snapshot_.circuit = CircuitState::kOpen;
      snapshot_.connected = false;
    }
    SetHealth(failures >= tuning_.eject_after_failures
                  ? BackendHealth::kEjected
                  : BackendHealth::kDegraded);
    next_connect_attempt_ =
        SteadyClock::now() +
        std::chrono::duration_cast<SteadyClock::duration>(
            std::chrono::duration<double>(NextBackoffSeconds()));
    return;
  }
  fd_ = connected.ValueOrDie();
  SetNonBlocking(fd_);
  inbuf_.clear();
  outbuf_.clear();
  out_offset_ = 0;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_.connected = true;
    ++snapshot_.reconnects;
  }
  if (reconnects_counter_ != nullptr) reconnects_counter_->Inc();
  // The circuit stays half-open (no traffic) until the trial PING is
  // answered; MarkAlive on the PONG closes it.
  last_probe_ = SteadyClock::time_point{};
  outstanding_ping_id_ = 0;
  MaybeProbe();
}

void BackendChannel::MarkAlive() {
  CircuitState circuit;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_.consecutive_failures = 0;
    snapshot_.circuit = CircuitState::kClosed;
    circuit = CircuitState::kClosed;
  }
  (void)circuit;
  current_backoff_seconds_ = 0.0;
  SetHealth(BackendHealth::kHealthy);
  usable_.store(true);
}

void BackendChannel::HandleDisconnect(const char* why) {
  (void)why;
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  usable_.store(false);
  inbuf_.clear();
  outbuf_.clear();
  out_offset_ = 0;
  outstanding_ping_id_ = 0;

  int failures;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    failures = ++snapshot_.consecutive_failures;
    snapshot_.connected = false;
    snapshot_.circuit = CircuitState::kOpen;
  }
  SetHealth(failures >= tuning_.eject_after_failures
                ? BackendHealth::kEjected
                : BackendHealth::kDegraded);
  next_connect_attempt_ =
      SteadyClock::now() +
      std::chrono::duration_cast<SteadyClock::duration>(
          std::chrono::duration<double>(NextBackoffSeconds()));

  // Queries whose verdict is still pending were never admitted anywhere:
  // hand them back for re-routing (failover). Accepted queries may still
  // be executing on the (possibly wedged, possibly just slow) backend —
  // re-running them elsewhere could duplicate work, so they resolve as
  // cancelled completions instead. Either way nothing is dropped.
  std::vector<RoutedQuery> to_failover;
  to_failover.reserve(awaiting_verdict_.size());
  for (auto& [rid, item] : awaiting_verdict_) {
    to_failover.push_back(std::move(item));
    in_flight_.fetch_sub(1);
  }
  awaiting_verdict_.clear();
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_.failed_over_out += to_failover.size();
  }
  for (RoutedQuery& item : to_failover) {
    on_failover_(std::move(item), this);
  }

  for (auto& [rid, item] : awaiting_completion_) {
    net::ServiceCompletion completion;
    completion.class_id = item.query.class_id;
    completion.cancelled = true;
    completion.completed_wall = SteadyClock::now();
    if (cancelled_counter_ != nullptr) cancelled_counter_->Inc();
    {
      std::lock_guard<std::mutex> lock(snapshot_mu_);
      ++snapshot_.cancelled_completions;
    }
    item.on_complete(completion);
    in_flight_.fetch_sub(1);
  }
  awaiting_completion_.clear();
}

void BackendChannel::PumpForwarding() {
  std::deque<RoutedQuery> batch;
  {
    std::lock_guard<std::mutex> lock(cmd_mu_);
    batch.swap(incoming_);
  }
  const bool can_send = fd_ >= 0 && usable_.load();
  for (RoutedQuery& item : batch) {
    if (!can_send) {
      // Raced a disconnect (the router picked us just before the
      // breaker opened): hand it straight back.
      in_flight_.fetch_sub(1);
      {
        std::lock_guard<std::mutex> lock(snapshot_mu_);
        ++snapshot_.failed_over_out;
      }
      on_failover_(std::move(item), this);
      continue;
    }
    net::Frame frame;
    frame.type = net::FrameType::kSubmit;
    frame.request_id = next_request_id_++;
    frame.query = item.query;
    frame.want_trace = item.want_trace;
    net::EncodeFrame(frame, &outbuf_);
    {
      std::lock_guard<std::mutex> lock(snapshot_mu_);
      ++snapshot_.forwarded;
    }
    awaiting_verdict_.emplace(frame.request_id, std::move(item));
  }
}

void BackendChannel::MaybeProbe() {
  if (fd_ < 0) return;
  const SteadyClock::time_point now = SteadyClock::now();
  if (outstanding_ping_id_ != 0 && now >= probe_deadline_) {
    // Unanswered probe: one failure. Past the ejection threshold the
    // connection is torn down (which re-routes pending queries); below
    // it the backend keeps serving as degraded and the next probe gets
    // a fresh chance.
    int failures;
    {
      std::lock_guard<std::mutex> lock(snapshot_mu_);
      failures = ++snapshot_.consecutive_failures;
    }
    outstanding_ping_id_ = 0;
    if (failures >= tuning_.eject_after_failures) {
      HandleDisconnect("probe timeout");
      return;
    }
    SetHealth(BackendHealth::kDegraded);
  }
  const double since_probe =
      std::chrono::duration<double>(now - last_probe_).count();
  if (last_probe_ != SteadyClock::time_point{} &&
      since_probe < tuning_.probe_interval_seconds) {
    return;
  }
  if (outstanding_ping_id_ != 0) return;  // one probe at a time
  last_probe_ = now;
  net::Frame ping;
  ping.type = net::FrameType::kPing;
  ping.request_id = next_request_id_++;
  outstanding_ping_id_ = ping.request_id;
  probe_deadline_ =
      now + std::chrono::duration_cast<SteadyClock::duration>(
                std::chrono::duration<double>(tuning_.probe_timeout_seconds));
  net::EncodeFrame(ping, &outbuf_);
  net::Frame stats;
  stats.type = net::FrameType::kStats;
  stats.request_id = next_request_id_++;
  net::EncodeFrame(stats, &outbuf_);
}

void BackendChannel::HandleFrame(const net::Frame& frame) {
  switch (frame.type) {
    case net::FrameType::kAccepted:
    case net::FrameType::kRejected: {
      auto it = awaiting_verdict_.find(frame.request_id);
      if (it == awaiting_verdict_.end()) return;  // probe reply raced
      RoutedQuery item = std::move(it->second);
      awaiting_verdict_.erase(it);
      if (frame.type == net::FrameType::kAccepted) {
        item.on_verdict(true, rt::RejectReason::kQueueFull);
        awaiting_completion_.emplace(frame.request_id, std::move(item));
      } else {
        item.on_verdict(false, frame.reject_reason);
        in_flight_.fetch_sub(1);
      }
      return;
    }
    case net::FrameType::kCompleted: {
      auto it = awaiting_completion_.find(frame.request_id);
      if (it == awaiting_completion_.end()) return;
      RoutedQuery item = std::move(it->second);
      awaiting_completion_.erase(it);
      net::ServiceCompletion completion;
      completion.class_id = frame.class_id;
      completion.response_seconds = frame.response_seconds;
      completion.exec_seconds = frame.exec_seconds;
      completion.cancelled = frame.cancelled;
      completion.has_trace = frame.has_trace;
      completion.want_trace = frame.has_trace;
      completion.trace_id = frame.trace_id;
      completion.stage_gateway_queue_seconds =
          frame.stage_gateway_queue_seconds;
      completion.stage_dispatch_seconds = frame.stage_dispatch_seconds;
      completion.stage_execute_seconds = frame.stage_execute_seconds;
      completion.completed_wall = SteadyClock::now();
      item.on_complete(completion);
      in_flight_.fetch_sub(1);
      return;
    }
    case net::FrameType::kPong: {
      if (frame.request_id == outstanding_ping_id_) {
        outstanding_ping_id_ = 0;
      }
      MarkAlive();
      return;
    }
    case net::FrameType::kStatsReply: {
      std::lock_guard<std::mutex> lock(snapshot_mu_);
      snapshot_.admitted = frame.stats.admitted;
      snapshot_.accepted = frame.stats.accepted;
      snapshot_.completed = frame.stats.completed;
      if (!stats_injected_) {
        snapshot_.queue_depth = frame.stats.queue_depth;
        for (const net::WireClassAttainment& entry :
             frame.stats.class_attainment) {
          snapshot_.attainment[entry.class_id] = entry.rolling_attainment;
        }
      }
      return;
    }
    case net::FrameType::kError: {
      HandleDisconnect("server ERROR frame");
      return;
    }
    default:
      return;  // DRAINED etc. — nothing owed
  }
}

void BackendChannel::PumpIncoming() {
  char buf[64 * 1024];
  while (fd_ >= 0) {
    ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      inbuf_.insert(inbuf_.end(), buf, buf + n);
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (n == 0) {
      HandleDisconnect("EOF");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    HandleDisconnect("recv error");
    return;
  }
  size_t offset = 0;
  while (fd_ >= 0) {
    net::Frame frame;
    size_t consumed = 0;
    net::DecodeStatus status =
        net::DecodeFrame(inbuf_.data() + offset, inbuf_.size() - offset,
                         &frame, &consumed);
    if (status == net::DecodeStatus::kNeedMore) break;
    if (status != net::DecodeStatus::kOk) {
      HandleDisconnect("protocol error");
      return;
    }
    offset += consumed;
    HandleFrame(frame);
  }
  if (offset > 0 && !inbuf_.empty()) {
    inbuf_.erase(inbuf_.begin(),
                 inbuf_.begin() + static_cast<ptrdiff_t>(
                                      std::min(offset, inbuf_.size())));
  }
}

void BackendChannel::FlushOut() {
  while (fd_ >= 0 && out_offset_ < outbuf_.size()) {
    ssize_t n = send(fd_, outbuf_.data() + out_offset_,
                     outbuf_.size() - out_offset_, MSG_NOSIGNAL);
    if (n > 0) {
      out_offset_ += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    HandleDisconnect("send error");
    return;
  }
  if (out_offset_ > 0 && out_offset_ == outbuf_.size()) {
    outbuf_.clear();
    out_offset_ = 0;
  }
}

}  // namespace qsched::cluster
