#include "cluster/router.h"

#include <cstdio>
#include <limits>
#include <sstream>
#include <utility>

#include "common/strings.h"

namespace qsched::cluster {

Router::Router(const std::vector<BackendAddress>& backends,
               const RouterOptions& options, obs::Telemetry* telemetry)
    : options_(options), telemetry_(telemetry) {
  pool_ = std::make_unique<BackendPool>(
      backends, options_.tuning,
      [this](RoutedQuery item, BackendChannel* from) {
        OnFailover(std::move(item), from);
      },
      telemetry_);
  if (telemetry_ != nullptr) {
    obs::Registry& reg = telemetry_->registry;
    failover_counter_ = reg.GetCounter("qsched_cluster_failover_total");
    retry_counter_ = reg.GetCounter("qsched_cluster_retries_total");
    unroutable_counter_ =
        reg.GetCounter("qsched_cluster_unroutable_total");
  }
}

Router::~Router() { Stop(); }

void Router::Start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) return;
  pool_->Start();
}

void Router::Stop() {
  if (!started_.load()) return;
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  pool_->Stop();
  if (!ConservationHolds()) {
    const RouterAccounting acc = Accounting();
    fprintf(stderr,
            "cluster::Router conservation VIOLATED: offered=%llu != "
            "accepted=%llu + rejected_relayed=%llu + "
            "rejected_unroutable=%llu\n",
            static_cast<unsigned long long>(acc.offered),
            static_cast<unsigned long long>(acc.accepted),
            static_cast<unsigned long long>(acc.rejected_relayed),
            static_cast<unsigned long long>(acc.rejected_unroutable));
  }
}

net::SubmitDisposition Router::Submit(const workload::Query& query,
                                      bool want_trace, VerdictFn on_verdict,
                                      CompleteFn on_complete) {
  if (stopping_.load()) {
    return net::SubmitDisposition::Rejected(rt::RejectReason::kShuttingDown);
  }
  offered_.fetch_add(1);
  if (on_offer_) on_offer_(query);
  const int class_id = query.class_id;
  const SteadyClock::time_point submitted = SteadyClock::now();

  RoutedQuery item;
  item.query = query;
  item.want_trace = want_trace;
  item.attempts = 1;
  // Accounting wraps the caller's callbacks here, before any channel
  // sees them, so the conservation identity holds regardless of which
  // thread resolves the query (backend verdict, failover re-route, or
  // channel shutdown).
  item.on_verdict = [this, class_id, submitted,
                     verdict = std::move(on_verdict)](
                        bool accepted, rt::RejectReason reason) {
    if (accepted) {
      accepted_.fetch_add(1);
    } else if (reason == rt::RejectReason::kBackendUnavailable) {
      rejected_unroutable_.fetch_add(1);
      if (unroutable_counter_ != nullptr) unroutable_counter_->Inc();
    } else {
      rejected_relayed_.fetch_add(1);
    }
    obs::Histogram* hist = RouteStageHist(class_id);
    if (hist != nullptr) {
      hist->Record(
          std::chrono::duration<double>(SteadyClock::now() - submitted)
              .count());
    }
    verdict(accepted, reason);
  };
  item.on_complete = [this, complete = std::move(on_complete)](
                         const net::ServiceCompletion& completion) {
    completions_relayed_.fetch_add(1);
    if (completion.cancelled) cancelled_completions_.fetch_add(1);
    complete(completion);
  };

  Dispatch(std::move(item), nullptr);
  return net::SubmitDisposition::Deferred();
}

void Router::Dispatch(RoutedQuery item, const BackendChannel* exclude) {
  BackendChannel* target = pool_->Pick(item.query.class_id, exclude);
  if (target == nullptr && exclude != nullptr) {
    // Only the backend the query just failed over from is usable (or it
    // recovered first). Better there than a reject.
    target = pool_->Pick(item.query.class_id, nullptr);
  }
  if (target == nullptr) {
    item.on_verdict(false, rt::RejectReason::kBackendUnavailable);
    return;
  }
  obs::Counter* routed = RoutedCounter(target, item.query.class_id);
  if (routed != nullptr) routed->Inc();
  target->Forward(std::move(item));
}

void Router::OnFailover(RoutedQuery item, BackendChannel* from) {
  failovers_.fetch_add(1);
  if (failover_counter_ != nullptr) failover_counter_->Inc();
  if (stopping_.load() || item.attempts >= options_.max_attempts) {
    item.on_verdict(false, rt::RejectReason::kBackendUnavailable);
    return;
  }
  ++item.attempts;
  retries_.fetch_add(1);
  if (retry_counter_ != nullptr) retry_counter_->Inc();
  Dispatch(std::move(item), from);
}

net::WireStats Router::Stats() {
  net::WireStats stats;
  stats.accepted = accepted_.load();
  stats.completed = completions_relayed_.load();
  // Approximation for the wire shape: backend rejections relayed map to
  // queue_full, router-generated kBackendUnavailable to shutting_down
  // (the wire stats body predates the cluster layer; exact per-reason
  // counts live in /varz).
  stats.rejected_queue_full = rejected_relayed_.load();
  stats.rejected_shutting_down = rejected_unroutable_.load();
  std::map<int, double> worst;
  for (const BackendSnapshot& snap : pool_->Snapshots()) {
    stats.queue_depth += snap.queue_depth + snap.router_in_flight;
    stats.admitted += snap.admitted;
    if (!snap.connected) continue;
    for (const auto& [class_id, attainment] : snap.attainment) {
      auto it = worst.find(class_id);
      if (it == worst.end() || attainment < it->second) {
        worst[class_id] = attainment;
      }
    }
  }
  for (const auto& [class_id, attainment] : worst) {
    stats.class_attainment.push_back({class_id, attainment});
  }
  return stats;
}

bool Router::shutting_down() { return stopping_.load(); }

RouterAccounting Router::Accounting() const {
  RouterAccounting acc;
  acc.offered = offered_.load();
  acc.accepted = accepted_.load();
  acc.rejected_relayed = rejected_relayed_.load();
  acc.rejected_unroutable = rejected_unroutable_.load();
  acc.completions_relayed = completions_relayed_.load();
  acc.cancelled_completions = cancelled_completions_.load();
  acc.failovers = failovers_.load();
  acc.retries = retries_.load();
  return acc;
}

bool Router::ConservationHolds() const {
  const RouterAccounting acc = Accounting();
  return acc.offered ==
         acc.accepted + acc.rejected_relayed + acc.rejected_unroutable;
}

std::string Router::StatuszTable() const {
  std::ostringstream out;
  out << "cluster backends\n";
  out << StrPrintf("%-4s %-21s %-8s %-9s %-9s %-6s %-9s %-9s %-6s %s\n",
                   "idx", "address", "health", "circuit", "inflight",
                   "depth", "forwarded", "failover", "recon", "attainment");
  for (const BackendSnapshot& snap : pool_->Snapshots()) {
    std::string attainment;
    for (const auto& [class_id, value] : snap.attainment) {
      attainment += StrPrintf("%d:%.2f ", class_id, value);
    }
    out << StrPrintf(
        "%-4d %-21s %-8s %-9s %-9llu %-6llu %-9llu %-9llu %-6llu %s\n",
        snap.index, snap.address.ToString().c_str(),
        BackendHealthToString(snap.health),
        CircuitStateToString(snap.circuit),
        static_cast<unsigned long long>(snap.router_in_flight),
        static_cast<unsigned long long>(snap.queue_depth),
        static_cast<unsigned long long>(snap.forwarded),
        static_cast<unsigned long long>(snap.failed_over_out),
        static_cast<unsigned long long>(snap.reconnects),
        attainment.c_str());
  }
  const RouterAccounting acc = Accounting();
  out << StrPrintf(
      "\nrouter offered=%llu accepted=%llu rejected_relayed=%llu "
      "rejected_unroutable=%llu completions=%llu cancelled=%llu "
      "failovers=%llu retries=%llu\n",
      static_cast<unsigned long long>(acc.offered),
      static_cast<unsigned long long>(acc.accepted),
      static_cast<unsigned long long>(acc.rejected_relayed),
      static_cast<unsigned long long>(acc.rejected_unroutable),
      static_cast<unsigned long long>(acc.completions_relayed),
      static_cast<unsigned long long>(acc.cancelled_completions),
      static_cast<unsigned long long>(acc.failovers),
      static_cast<unsigned long long>(acc.retries));
  return out.str();
}

obs::Histogram* Router::RouteStageHist(int class_id) {
  if (telemetry_ == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(metric_mu_);
  auto it = route_stage_hists_.find(class_id);
  if (it != route_stage_hists_.end()) return it->second;
  obs::Histogram* hist = telemetry_->registry.GetHistogram(
      "qsched_stage_seconds",
      StrPrintf("class=\"%d\",stage=\"route\"", class_id));
  route_stage_hists_[class_id] = hist;
  return hist;
}

obs::Counter* Router::RoutedCounter(const BackendChannel* target,
                                    int class_id) {
  if (telemetry_ == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(metric_mu_);
  const std::pair<int, int> key{target->index(), class_id};
  auto it = routed_counters_.find(key);
  if (it != routed_counters_.end()) return it->second;
  obs::Counter* counter = telemetry_->registry.GetCounter(
      "qsched_cluster_routed_total",
      StrPrintf("backend=\"%s\",class=\"%d\"",
                target->address().ToString().c_str(), class_id));
  routed_counters_[key] = counter;
  return counter;
}

}  // namespace qsched::cluster
