#ifndef QSCHED_METRICS_PERIOD_COLLECTOR_H_
#define QSCHED_METRICS_PERIOD_COLLECTOR_H_

#include <map>
#include <string>
#include <vector>

#include "scheduler/service_class.h"
#include "workload/client.h"
#include "workload/schedule.h"

namespace qsched::metrics {

/// Aggregates for one (period, class) cell of a figure.
struct PeriodClassStats {
  int completed = 0;
  /// Queries cancelled by administration; excluded from the means.
  int cancelled = 0;
  double velocity_sum = 0.0;
  double response_sum = 0.0;
  double exec_sum = 0.0;

  double MeanVelocity() const {
    return completed > 0 ? velocity_sum / completed : 0.0;
  }
  double MeanResponse() const {
    return completed > 0 ? response_sum / completed : 0.0;
  }
  double MeanExec() const {
    return completed > 0 ? exec_sum / completed : 0.0;
  }
};

/// Buckets finished queries into the experiment's periods (by completion
/// time) — the quantity Figures 4-6 plot per period.
class PeriodCollector {
 public:
  explicit PeriodCollector(const workload::WorkloadSchedule* schedule);

  void Add(const workload::QueryRecord& record);

  int num_periods() const { return schedule_->num_periods(); }
  const PeriodClassStats& Get(int period, int class_id) const;

  /// Per-class aggregate over all periods.
  PeriodClassStats Overall(int class_id) const;

  /// The figure's per-period series for one class: velocity means for
  /// OLAP classes, response means for OLTP classes.
  std::vector<double> VelocitySeries(int class_id) const;
  std::vector<double> ResponseSeries(int class_id) const;
  std::vector<int> CompletedSeries(int class_id) const;

  /// Number of periods in which `spec`'s goal was met, judging velocity
  /// goals against mean velocity and response goals against mean response.
  int PeriodsMeetingGoal(const sched::ServiceClassSpec& spec) const;

  /// SLO attainment: PeriodsMeetingGoal over the periods that completed
  /// at least one query of the class (idle periods are neither met nor
  /// missed). 0 when no period has data.
  double AttainmentRatio(const sched::ServiceClassSpec& spec) const;

  uint64_t total_records() const { return total_records_; }

 private:
  const workload::WorkloadSchedule* schedule_;
  /// (period, class) -> stats.
  std::map<std::pair<int, int>, PeriodClassStats> cells_;
  uint64_t total_records_ = 0;
};

}  // namespace qsched::metrics

#endif  // QSCHED_METRICS_PERIOD_COLLECTOR_H_
