#include "metrics/period_collector.h"

namespace qsched::metrics {

namespace {
const PeriodClassStats kEmptyStats;
}  // namespace

PeriodCollector::PeriodCollector(const workload::WorkloadSchedule* schedule)
    : schedule_(schedule) {}

void PeriodCollector::Add(const workload::QueryRecord& record) {
  ++total_records_;
  int period = schedule_->PeriodAt(record.end_time);
  PeriodClassStats& cell = cells_[{period, record.class_id}];
  if (record.cancelled) {
    cell.cancelled += 1;
    return;
  }
  cell.completed += 1;
  cell.velocity_sum += record.Velocity();
  cell.response_sum += record.ResponseSeconds();
  cell.exec_sum += record.ExecSeconds();
}

const PeriodClassStats& PeriodCollector::Get(int period,
                                             int class_id) const {
  auto it = cells_.find({period, class_id});
  return it != cells_.end() ? it->second : kEmptyStats;
}

PeriodClassStats PeriodCollector::Overall(int class_id) const {
  PeriodClassStats total;
  for (const auto& [key, cell] : cells_) {
    if (key.second != class_id) continue;
    total.cancelled += cell.cancelled;
    total.completed += cell.completed;
    total.velocity_sum += cell.velocity_sum;
    total.response_sum += cell.response_sum;
    total.exec_sum += cell.exec_sum;
  }
  return total;
}

std::vector<double> PeriodCollector::VelocitySeries(int class_id) const {
  std::vector<double> out;
  for (int p = 0; p < num_periods(); ++p) {
    out.push_back(Get(p, class_id).MeanVelocity());
  }
  return out;
}

std::vector<double> PeriodCollector::ResponseSeries(int class_id) const {
  std::vector<double> out;
  for (int p = 0; p < num_periods(); ++p) {
    out.push_back(Get(p, class_id).MeanResponse());
  }
  return out;
}

std::vector<int> PeriodCollector::CompletedSeries(int class_id) const {
  std::vector<int> out;
  for (int p = 0; p < num_periods(); ++p) {
    out.push_back(Get(p, class_id).completed);
  }
  return out;
}

int PeriodCollector::PeriodsMeetingGoal(
    const sched::ServiceClassSpec& spec) const {
  int met = 0;
  for (int p = 0; p < num_periods(); ++p) {
    const PeriodClassStats& cell = Get(p, spec.class_id);
    double measured = spec.goal_kind == sched::GoalKind::kVelocityFloor
                          ? cell.MeanVelocity()
                          : cell.MeanResponse();
    if (cell.completed == 0) continue;
    if (spec.GoalRatio(measured) >= 1.0) ++met;
  }
  return met;
}

double PeriodCollector::AttainmentRatio(
    const sched::ServiceClassSpec& spec) const {
  int with_data = 0;
  for (int p = 0; p < num_periods(); ++p) {
    if (Get(p, spec.class_id).completed > 0) ++with_data;
  }
  if (with_data == 0) return 0.0;
  return static_cast<double>(PeriodsMeetingGoal(spec)) / with_data;
}

}  // namespace qsched::metrics
