#ifndef QSCHED_METRICS_TRACE_WRITER_H_
#define QSCHED_METRICS_TRACE_WRITER_H_

#include <cstddef>
#include <deque>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "workload/client.h"

namespace qsched::metrics {

/// Bounded in-memory log of finished queries, for offline analysis and
/// CSV export. Install its Sink() alongside (or instead of) the period
/// collector; when the capacity is reached the oldest records are
/// dropped (and counted).
class RecordLog {
 public:
  /// A capacity of 0 is clamped to 1: the log always retains at least the
  /// newest record, so readers can rely on records().back() being the
  /// most recent Add() even under the tightest bound.
  explicit RecordLog(size_t capacity = 1 << 20);

  /// Appends `record`. At capacity, the oldest record is evicted first
  /// (drop-oldest) and dropped() increments — so after N adds to a log of
  /// capacity C, size() == min(N, C) and dropped() == max(0, N - C).
  void Add(const workload::QueryRecord& record);

  /// Adaptor usable as a ClientPool record sink.
  workload::ClientPool::RecordSink Sink();

  size_t size() const { return records_.size(); }
  uint64_t dropped() const { return dropped_; }
  const std::deque<workload::QueryRecord>& records() const {
    return records_;
  }

 private:
  size_t capacity_;
  std::deque<workload::QueryRecord> records_;
  uint64_t dropped_ = 0;
};

/// Writes finished-query records as CSV with a header row:
/// query_id,class_id,client_id,type,cost_timerons,submit_time,
/// exec_start_time,end_time,exec_seconds,response_seconds,velocity
void WriteQueryRecordsCsv(const RecordLog& log, std::ostream& out);

/// Writes one figure-style series (one row per period, one column per
/// class) as CSV. `series` maps class id -> per-period values; all
/// vectors must be the same length.
void WriteSeriesCsv(const std::map<int, std::vector<double>>& series,
                    const std::string& value_name, std::ostream& out);

}  // namespace qsched::metrics

#endif  // QSCHED_METRICS_TRACE_WRITER_H_
