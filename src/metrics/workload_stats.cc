#include "metrics/workload_stats.h"

#include "common/strings.h"

namespace qsched::metrics {

WorkloadCharacterizer::ClassProfile::ClassProfile()
    : cost_histogram(1.0, 1e7, 10),
      response_histogram(1e-4, 1e4, 10) {}

WorkloadCharacterizer::WorkloadCharacterizer() = default;

void WorkloadCharacterizer::Add(const workload::QueryRecord& record) {
  ClassProfile& profile = profiles_[record.class_id];
  profile.queries += 1;
  profile.cost.Add(record.cost_timerons);
  profile.exec_seconds.Add(record.ExecSeconds());
  profile.response_seconds.Add(record.ResponseSeconds());
  profile.velocity.Add(record.Velocity());
  profile.cost_histogram.Add(record.cost_timerons);
  profile.response_histogram.Add(record.ResponseSeconds());
}

workload::ClientPool::RecordSink WorkloadCharacterizer::Sink() {
  return [this](const workload::QueryRecord& record) { Add(record); };
}

const WorkloadCharacterizer::ClassProfile* WorkloadCharacterizer::Profile(
    int class_id) const {
  auto it = profiles_.find(class_id);
  return it != profiles_.end() ? &it->second : nullptr;
}

double WorkloadCharacterizer::CostPercentile(int class_id,
                                             double q) const {
  const ClassProfile* profile = Profile(class_id);
  return profile != nullptr ? profile->cost_histogram.Quantile(q) : 0.0;
}

double WorkloadCharacterizer::ResponsePercentile(int class_id,
                                                 double q) const {
  const ClassProfile* profile = Profile(class_id);
  return profile != nullptr ? profile->response_histogram.Quantile(q)
                            : 0.0;
}

void WorkloadCharacterizer::PrintSummary(std::ostream& out) const {
  out << "class  queries  cost_mean  cost_p95  exec_mean_s  resp_mean_s  "
         "resp_p95_s  velocity\n";
  for (const auto& [class_id, profile] : profiles_) {
    out << StrPrintf(
        "%5d  %7llu  %9.0f  %8.0f  %11.3f  %11.3f  %10.3f  %8.3f\n",
        class_id, static_cast<unsigned long long>(profile.queries),
        profile.cost.mean(), profile.cost_histogram.Quantile(0.95),
        profile.exec_seconds.mean(), profile.response_seconds.mean(),
        profile.response_histogram.Quantile(0.95),
        profile.velocity.mean());
  }
}

}  // namespace qsched::metrics
