#include "metrics/trace_writer.h"

#include <map>

#include "common/strings.h"

namespace qsched::metrics {

RecordLog::RecordLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void RecordLog::Add(const workload::QueryRecord& record) {
  if (records_.size() >= capacity_) {
    records_.pop_front();
    ++dropped_;
  }
  records_.push_back(record);
}

workload::ClientPool::RecordSink RecordLog::Sink() {
  return [this](const workload::QueryRecord& record) { Add(record); };
}

void WriteQueryRecordsCsv(const RecordLog& log, std::ostream& out) {
  out << "query_id,class_id,client_id,type,cost_timerons,submit_time,"
         "exec_start_time,end_time,exec_seconds,response_seconds,"
         "velocity\n";
  for (const workload::QueryRecord& r : log.records()) {
    out << StrPrintf(
        "%llu,%d,%d,%s,%.3f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f\n",
        static_cast<unsigned long long>(r.query_id), r.class_id,
        r.client_id, workload::WorkloadTypeToString(r.type),
        r.cost_timerons, r.submit_time, r.exec_start_time, r.end_time,
        r.ExecSeconds(), r.ResponseSeconds(), r.Velocity());
  }
}

void WriteSeriesCsv(const std::map<int, std::vector<double>>& series,
                    const std::string& value_name, std::ostream& out) {
  out << "period";
  size_t periods = 0;
  for (const auto& [class_id, values] : series) {
    out << "," << value_name << "_class" << class_id;
    periods = std::max(periods, values.size());
  }
  out << "\n";
  for (size_t p = 0; p < periods; ++p) {
    out << (p + 1);
    for (const auto& [class_id, values] : series) {
      out << ",";
      if (p < values.size()) out << StrPrintf("%.6f", values[p]);
    }
    out << "\n";
  }
}

}  // namespace qsched::metrics
