#ifndef QSCHED_METRICS_WORKLOAD_STATS_H_
#define QSCHED_METRICS_WORKLOAD_STATS_H_

#include <map>
#include <ostream>
#include <string>

#include "sim/stats.h"
#include "workload/client.h"

namespace qsched::metrics {

/// Workload characterization — the "characterizing current workloads"
/// half of the framework's workload-detection process. Summarizes the
/// cost and performance distribution of each service class from its
/// finished queries: cost percentiles (what the QP group thresholds are
/// cut from), execution/response statistics, and velocity spread.
class WorkloadCharacterizer {
 public:
  WorkloadCharacterizer();

  void Add(const workload::QueryRecord& record);

  /// Adaptor usable as a ClientPool record sink.
  workload::ClientPool::RecordSink Sink();

  struct ClassProfile {
    uint64_t queries = 0;
    sim::WelfordAccumulator cost;
    sim::WelfordAccumulator exec_seconds;
    sim::WelfordAccumulator response_seconds;
    sim::WelfordAccumulator velocity;
    sim::Histogram cost_histogram;
    sim::Histogram response_histogram;

    ClassProfile();
  };

  /// Returns nullptr for classes never seen.
  const ClassProfile* Profile(int class_id) const;
  size_t num_classes() const { return profiles_.size(); }

  /// Approximate cost percentile for a class (0 when unseen).
  double CostPercentile(int class_id, double q) const;
  /// Approximate response-time percentile for a class (0 when unseen).
  double ResponsePercentile(int class_id, double q) const;

  /// Human-readable per-class summary table.
  void PrintSummary(std::ostream& out) const;

 private:
  std::map<int, ClassProfile> profiles_;
};

}  // namespace qsched::metrics

#endif  // QSCHED_METRICS_WORKLOAD_STATS_H_
