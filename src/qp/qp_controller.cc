#include "qp/qp_controller.h"

#include <algorithm>

#include "common/logging.h"

namespace qsched::qp {

QpStaticConfig QpStaticConfig::NoControl(double system_cost_limit) {
  QpStaticConfig config;
  config.system_cost_limit = system_cost_limit;
  return config;
}

QpController::QpController(sim::Clock* simulator,
                           engine::ExecutionEngine* engine,
                           const InterceptorConfig& interceptor_config,
                           const QpStaticConfig& config)
    : simulator_(simulator),
      config_(config),
      interceptor_(simulator, engine, interceptor_config) {
  interceptor_.set_on_arrived(
      [this](const QueryInfoRecord& record) { OnArrived(record); });
  interceptor_.set_on_finished(
      [this](const QueryInfoRecord& record) { OnFinished(record); });
  interceptor_.set_on_cancelled(
      [this](const QueryInfoRecord& record) { OnCancelled(record); });
}

void QpController::OnCancelled(const QueryInfoRecord& record) {
  for (auto& queue : waiting_) {
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      if (it->query_id == record.query_id) {
        queue.erase(it);
        TryDispatch();
        return;
      }
    }
  }
}

void QpController::Submit(const workload::Query& query,
                          CompleteFn on_complete) {
  if (query.type == workload::WorkloadType::kOltp &&
      !config_.intercept_oltp) {
    // The paper turns QP off for the OLTP class: the overhead outweighs
    // sub-second execution times.
    interceptor_.Bypass(query, std::move(on_complete));
    return;
  }
  interceptor_.Intercept(query, std::move(on_complete));
}

QpController::Group QpController::GroupFor(double cost) const {
  if (cost >= config_.large_cost_threshold) return kLarge;
  if (cost >= config_.medium_cost_threshold) return kMedium;
  return kSmall;
}

int QpController::GroupCap(Group group) const {
  switch (group) {
    case kLarge:
      return config_.max_large_concurrent;
    case kMedium:
      return config_.max_medium_concurrent;
    case kSmall:
      return config_.max_small_concurrent;
  }
  return QpStaticConfig::kUnlimitedCount;
}

int QpController::PriorityOf(int class_id) const {
  auto it = config_.class_priority.find(class_id);
  return it != config_.class_priority.end() ? it->second : 0;
}

void QpController::OnArrived(const QueryInfoRecord& record) {
  // Intercepted OLTP is auto-released: the experiment measures only the
  // interception overhead, not queueing, for that class.
  if (record.is_oltp) {
    Status st = interceptor_.Release(record.query_id);
    QSCHED_CHECK(st.ok()) << st.ToString();
    return;
  }
  Group group = GroupFor(record.cost_timerons);
  waiting_[group].push_back(Waiting{record.query_id, record.class_id,
                                    record.cost_timerons, next_seq_++});
  TryDispatch();
}

void QpController::OnFinished(const QueryInfoRecord& record) {
  auto it = running_group_.find(record.query_id);
  if (it != running_group_.end()) {
    group_running_[it->second] -= 1;
    running_cost_ -= record.cost_timerons;
    running_group_.erase(it);
  }
  TryDispatch();
}

void QpController::TryDispatch() {
  double cost_limit =
      std::min(config_.olap_cost_limit, config_.system_cost_limit);
  // Groups are served independently (a blocked large query does not block
  // small ones). Within a group: priority first (when enabled), FIFO
  // otherwise; the head is never bypassed.
  bool released = true;
  while (released) {
    released = false;
    for (int g = 0; g < 3; ++g) {
      Group group = static_cast<Group>(g);
      std::vector<Waiting>& queue = waiting_[g];
      if (queue.empty()) continue;
      if (group_running_[g] >= GroupCap(group)) continue;
      // Pick the head by (priority desc, seq asc).
      size_t best = 0;
      for (size_t i = 1; i < queue.size(); ++i) {
        int pb = config_.priority_enabled ? PriorityOf(queue[best].class_id)
                                          : 0;
        int pi = config_.priority_enabled ? PriorityOf(queue[i].class_id)
                                          : 0;
        if (pi > pb || (pi == pb && queue[i].seq < queue[best].seq)) {
          best = i;
        }
      }
      const Waiting& head = queue[best];
      bool fits = running_cost_ + head.cost <= cost_limit;
      // Never starve: an over-limit query may run alone.
      if (!fits && running_group_.empty()) fits = true;
      if (!fits) continue;
      uint64_t id = head.query_id;
      double cost = head.cost;
      queue.erase(queue.begin() + static_cast<long>(best));
      group_running_[g] += 1;
      running_cost_ += cost;
      running_group_[id] = group;
      Status st = interceptor_.Release(id);
      QSCHED_CHECK(st.ok()) << st.ToString();
      released = true;
    }
  }
  (void)simulator_;
}

int QpController::TotalQueued() const {
  int total = 0;
  for (const auto& queue : waiting_) {
    total += static_cast<int>(queue.size());
  }
  return total;
}

}  // namespace qsched::qp
