#include "qp/interceptor.h"

#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace qsched::qp {

Interceptor::Interceptor(sim::Clock* simulator,
                         engine::ExecutionEngine* engine,
                         const InterceptorConfig& config)
    : simulator_(simulator), engine_(engine), config_(config) {}

void Interceptor::set_telemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) return;
  obs::Registry& reg = telemetry_->registry;
  intercepted_counter_ = reg.GetCounter("qsched_qp_intercepted_total");
  bypassed_counter_ = reg.GetCounter("qsched_qp_bypassed_total");
  released_counter_ = reg.GetCounter("qsched_qp_released_total");
  cancelled_counter_ = reg.GetCounter("qsched_qp_cancelled_total");
}

obs::Histogram* Interceptor::QueueWaitHistogram(int class_id) {
  auto it = queue_wait_hists_.find(class_id);
  if (it != queue_wait_hists_.end()) return it->second;
  obs::Histogram* hist = telemetry_->registry.GetHistogram(
      "qsched_qp_queue_wait_seconds",
      StrPrintf("class=\"%d\"", class_id));
  queue_wait_hists_.emplace(class_id, hist);
  return hist;
}

obs::Histogram* Interceptor::ResponseHistogram(int class_id) {
  auto it = response_hists_.find(class_id);
  if (it != response_hists_.end()) return it->second;
  obs::Histogram* hist = telemetry_->registry.GetHistogram(
      "qsched_response_seconds", StrPrintf("class=\"%d\"", class_id));
  response_hists_.emplace(class_id, hist);
  return hist;
}

double Interceptor::running_cost(int class_id) const {
  auto it = ledgers_.find(class_id);
  return it != ledgers_.end() ? it->second.running_cost : 0.0;
}

int Interceptor::running_count(int class_id) const {
  auto it = ledgers_.find(class_id);
  return it != ledgers_.end() ? it->second.running : 0;
}

int Interceptor::queued_count(int class_id) const {
  auto it = ledgers_.find(class_id);
  return it != ledgers_.end() ? it->second.queued : 0;
}

void Interceptor::Intercept(const workload::Query& query,
                            CompleteFn on_complete) {
  ++intercepted_total_;
  if (telemetry_ != nullptr) intercepted_counter_->Inc();
  PendingQuery pending;
  pending.query = query;
  pending.on_complete = std::move(on_complete);
  pending.submit_time = simulator_->Now();

  bool is_oltp = query.type == workload::WorkloadType::kOltp;
  // Interception consumes server CPU (control-table writes, messaging);
  // it is billed to the engine but does not block the query's own path
  // beyond the configured delay.
  double cpu = config_.CpuFor(is_oltp);
  if (cpu > 0.0) {
    engine_->cpu_pool().Submit(cpu, [] {});
  }

  uint64_t query_id = query.id;
  simulator_->ScheduleAfter(
      config_.DelayFor(is_oltp),
      [this, query_id, pending = std::move(pending)]() mutable {
        QueryInfoRecord record;
        record.query_id = query_id;
        record.class_id = pending.query.class_id;
        record.cost_timerons = pending.query.cost_timerons;
        record.is_oltp =
            pending.query.type == workload::WorkloadType::kOltp;
        record.state = QueryState::kQueued;
        record.intercept_time = simulator_->Now();
        Status st = table_.Insert(record);
        QSCHED_CHECK(st.ok()) << st.ToString();
        ledgers_[record.class_id].queued += 1;
        queued_.emplace(query_id, std::move(pending));
        if (telemetry_ != nullptr) {
          telemetry_->spans.OnEnqueue(query_id, simulator_->Now());
        }
        if (on_arrived_) on_arrived_(record);
      });

  // Periodically bound control-table growth.
  sim::SimTime now = simulator_->Now();
  if (now - last_prune_time_ > config_.control_table_retention_seconds) {
    table_.PruneDone(now - config_.control_table_retention_seconds);
    last_prune_time_ = now;
  }
}

Status Interceptor::Release(uint64_t query_id) {
  auto it = queued_.find(query_id);
  if (it == queued_.end()) {
    return Status::NotFound("query not blocked in interceptor");
  }
  QSCHED_RETURN_NOT_OK(table_.MarkReleased(query_id, simulator_->Now()));
  PendingQuery pending = std::move(it->second);
  queued_.erase(it);
  if (telemetry_ != nullptr) {
    sim::SimTime now = simulator_->Now();
    telemetry_->spans.OnDispatch(query_id, now);
    released_counter_->Inc();
    std::optional<QueryInfoRecord> row = table_.Find(query_id);
    if (row.has_value()) {
      QueueWaitHistogram(row->class_id)
          ->Record(now - row->intercept_time);
    }
  }
  ClassLedger& ledger = ledgers_[pending.query.class_id];
  ledger.queued -= 1;
  ledger.running += 1;
  ledger.running_cost += pending.query.cost_timerons;
  StartOnEngine(query_id, std::move(pending));
  return Status::OK();
}

Status Interceptor::CancelQueued(uint64_t query_id) {
  auto it = queued_.find(query_id);
  if (it == queued_.end()) {
    return Status::NotFound("query not blocked in interceptor");
  }
  QSCHED_RETURN_NOT_OK(table_.MarkCancelled(query_id, simulator_->Now()));
  PendingQuery pending = std::move(it->second);
  queued_.erase(it);
  ledgers_[pending.query.class_id].queued -= 1;
  ++cancelled_total_;
  if (telemetry_ != nullptr) {
    cancelled_counter_->Inc();
    telemetry_->spans.OnCancel(query_id, simulator_->Now());
  }

  if (on_cancelled_) {
    std::optional<QueryInfoRecord> row = table_.Find(query_id);
    QSCHED_CHECK(row.has_value());
    on_cancelled_(*row);
  }

  workload::QueryRecord record;
  record.query_id = query_id;
  record.class_id = pending.query.class_id;
  record.client_id = pending.query.client_id;
  record.type = pending.query.type;
  record.cost_timerons = pending.query.cost_timerons;
  record.submit_time = pending.submit_time;
  record.exec_start_time = simulator_->Now();
  record.end_time = simulator_->Now();
  record.cancelled = true;
  record.trace = pending.query.job.trace;
  if (pending.on_complete) pending.on_complete(record);
  return Status::OK();
}

void Interceptor::StartOnEngine(uint64_t query_id, PendingQuery pending) {
  int class_id = pending.query.class_id;
  double cost = pending.query.cost_timerons;
  workload::QueryRecord base;
  base.query_id = query_id;
  base.class_id = class_id;
  base.client_id = pending.query.client_id;
  base.type = pending.query.type;
  base.cost_timerons = cost;
  base.submit_time = pending.submit_time;
  base.trace = pending.query.job.trace;

  engine_->Execute(
      pending.query.job,
      [this, base, cost, class_id,
       on_complete = std::move(pending.on_complete)](
          const engine::ExecStats& stats) {
        Status st = table_.MarkDone(base.query_id, simulator_->Now());
        QSCHED_CHECK(st.ok()) << st.ToString();
        ClassLedger& ledger = ledgers_[class_id];
        ledger.running -= 1;
        ledger.running_cost -= cost;

        workload::QueryRecord record = base;
        record.exec_start_time = stats.start_time;
        record.end_time = stats.end_time;
        if (telemetry_ != nullptr) {
          telemetry_->spans.OnComplete(base.query_id, stats.start_time,
                                       stats.end_time);
          ResponseHistogram(base.class_id)
              ->Record(record.ResponseSeconds());
        }
        std::optional<QueryInfoRecord> row = table_.Find(base.query_id);
        if (on_finished_ && row.has_value()) on_finished_(*row);
        if (on_complete) on_complete(record);
      });
}

void Interceptor::Bypass(const workload::Query& query,
                         CompleteFn on_complete) {
  ++bypassed_total_;
  if (telemetry_ != nullptr) bypassed_counter_->Inc();
  workload::QueryRecord base;
  base.query_id = query.id;
  base.class_id = query.class_id;
  base.client_id = query.client_id;
  base.type = query.type;
  base.cost_timerons = query.cost_timerons;
  base.submit_time = simulator_->Now();
  base.trace = query.job.trace;

  engine_->Execute(query.job,
                   [this, base, on_complete = std::move(on_complete)](
                       const engine::ExecStats& stats) {
                     workload::QueryRecord record = base;
                     record.exec_start_time = stats.start_time;
                     record.end_time = stats.end_time;
                     if (telemetry_ != nullptr) {
                       telemetry_->spans.OnComplete(
                           base.query_id, stats.start_time, stats.end_time);
                       ResponseHistogram(base.class_id)
                           ->Record(record.ResponseSeconds());
                     }
                     if (on_complete) on_complete(record);
                   });
}

}  // namespace qsched::qp
