#include "qp/control_table.h"

#include "common/strings.h"

namespace qsched::qp {

Status ControlTable::Insert(const QueryInfoRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = rows_.emplace(record.query_id, record);
  if (!inserted) {
    return Status::AlreadyExists(
        StrPrintf("query %llu already in control table",
                  static_cast<unsigned long long>(record.query_id)));
  }
  return Status::OK();
}

Status ControlTable::MarkReleased(uint64_t query_id, sim::SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rows_.find(query_id);
  if (it == rows_.end()) {
    return Status::NotFound("query not in control table");
  }
  if (it->second.state != QueryState::kQueued) {
    return Status::FailedPrecondition("query not queued");
  }
  it->second.state = QueryState::kRunning;
  it->second.release_time = now;
  return Status::OK();
}

Status ControlTable::MarkDone(uint64_t query_id, sim::SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rows_.find(query_id);
  if (it == rows_.end()) {
    return Status::NotFound("query not in control table");
  }
  if (it->second.state != QueryState::kRunning) {
    return Status::FailedPrecondition("query not running");
  }
  it->second.state = QueryState::kDone;
  it->second.end_time = now;
  return Status::OK();
}

Status ControlTable::MarkCancelled(uint64_t query_id, sim::SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rows_.find(query_id);
  if (it == rows_.end()) {
    return Status::NotFound("query not in control table");
  }
  if (it->second.state != QueryState::kQueued) {
    return Status::FailedPrecondition("only queued queries can cancel");
  }
  it->second.state = QueryState::kCancelled;
  it->second.end_time = now;
  return Status::OK();
}

std::optional<QueryInfoRecord> ControlTable::Find(uint64_t query_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rows_.find(query_id);
  if (it == rows_.end()) return std::nullopt;
  return it->second;
}

double ControlTable::RunningCost(int class_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0.0;
  for (const auto& [id, row] : rows_) {
    if (row.state == QueryState::kRunning &&
        (class_id < 0 || row.class_id == class_id)) {
      total += row.cost_timerons;
    }
  }
  return total;
}

int ControlTable::RunningCount(int class_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  int n = 0;
  for (const auto& [id, row] : rows_) {
    if (row.state == QueryState::kRunning &&
        (class_id < 0 || row.class_id == class_id)) {
      ++n;
    }
  }
  return n;
}

int ControlTable::QueuedCount(int class_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  int n = 0;
  for (const auto& [id, row] : rows_) {
    if (row.state == QueryState::kQueued &&
        (class_id < 0 || row.class_id == class_id)) {
      ++n;
    }
  }
  return n;
}

std::vector<QueryInfoRecord> ControlTable::DoneInWindow(
    sim::SimTime t_begin, sim::SimTime t_end) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryInfoRecord> out;
  for (const auto& [id, row] : rows_) {
    if (row.state == QueryState::kDone && row.end_time >= t_begin &&
        row.end_time < t_end) {
      out.push_back(row);
    }
  }
  return out;
}

void ControlTable::ForEachQueued(
    const std::function<void(const QueryInfoRecord&)>& visit) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, row] : rows_) {
    if (row.state == QueryState::kQueued) visit(row);
  }
}

size_t ControlTable::PruneDone(sim::SimTime before) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t removed = 0;
  for (auto it = rows_.begin(); it != rows_.end();) {
    if (it->second.state == QueryState::kDone &&
        it->second.end_time < before) {
      it = rows_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

size_t ControlTable::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_.size();
}

}  // namespace qsched::qp
