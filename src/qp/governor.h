#ifndef QSCHED_QP_GOVERNOR_H_
#define QSCHED_QP_GOVERNOR_H_

#include <cstdint>

#include "qp/interceptor.h"
#include "sim/clock.h"

namespace qsched::qp {

/// Reactive rule engine in the spirit of the DB2 Governor, which runs
/// alongside Query Patroller and applies rules to misbehaving work. The
/// reproduction implements the queue-hygiene rule QP deployments rely
/// on: a query held in the queue longer than `max_queue_seconds` is
/// cancelled (its client gets an immediate error-style completion and,
/// being closed-loop, resubmits fresh work). This bounds the staleness
/// of queued OLAP work under a controller that has squeezed a class to
/// near zero.
class Governor {
 public:
  struct Options {
    /// Queued queries older than this are cancelled.
    double max_queue_seconds = 600.0;
    /// Sweep interval.
    double sweep_interval_seconds = 30.0;
  };

  Governor(sim::Clock* simulator, Interceptor* interceptor,
           const Options& options);

  Governor(const Governor&) = delete;
  Governor& operator=(const Governor&) = delete;

  /// Starts periodic sweeps until simulated time `until`.
  void Start(sim::SimTime until);

  /// One sweep over the control table; returns queries cancelled.
  int SweepOnce();

  uint64_t total_cancelled() const { return total_cancelled_; }

 private:
  sim::Clock* simulator_;
  Interceptor* interceptor_;
  Options options_;
  uint64_t total_cancelled_ = 0;
};

}  // namespace qsched::qp

#endif  // QSCHED_QP_GOVERNOR_H_
