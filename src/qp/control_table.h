#ifndef QSCHED_QP_CONTROL_TABLE_H_
#define QSCHED_QP_CONTROL_TABLE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "common/status.h"
#include "sim/clock.h"

namespace qsched::qp {

/// Lifecycle of an intercepted query inside Query Patroller.
enum class QueryState {
  kQueued,     // intercepted, agent blocked, waiting for Release
  kRunning,    // released to the engine
  kDone,       // finished
  kCancelled,  // cancelled by an operator while queued
};

/// One row of the Query Patroller control tables: the query information
/// the paper's Monitor reads (identification, optimizer cost, execution
/// state and times).
struct QueryInfoRecord {
  uint64_t query_id = 0;
  int class_id = 0;
  double cost_timerons = 0.0;
  /// True when the query belongs to the OLTP workload type.
  bool is_oltp = false;
  QueryState state = QueryState::kQueued;
  sim::SimTime intercept_time = 0.0;
  sim::SimTime release_time = 0.0;
  sim::SimTime end_time = 0.0;
};

/// In-memory stand-in for the DB2 QP control tables. Keyed by query id;
/// supports the scans the Monitor and the dispatchers need.
///
/// Thread-safety contract: every method takes an internal mutex, so rows
/// may be inserted, transitioned and scanned from concurrent threads (the
/// real-time runtime's gateway workers and clock thread both touch the
/// table). Find() returns a copy — never a pointer into the map — so a
/// concurrent Prune cannot invalidate what a reader holds. ForEachQueued
/// holds the lock while visiting: visitors must be short and must not
/// call back into the same ControlTable (self-deadlock). Compound
/// check-then-act sequences across calls (e.g. Find then MarkReleased)
/// still need external serialization — in the rt runtime that is the
/// core lock; the DES is single-threaded.
class ControlTable {
 public:
  Status Insert(const QueryInfoRecord& record);
  Status MarkReleased(uint64_t query_id, sim::SimTime now);
  Status MarkDone(uint64_t query_id, sim::SimTime now);
  /// Marks a *queued* query cancelled (the QP admin "cancel" action).
  Status MarkCancelled(uint64_t query_id, sim::SimTime now);

  /// Returns a copy of the row, or nullopt when absent.
  std::optional<QueryInfoRecord> Find(uint64_t query_id) const;

  /// Sum of cost over running queries of `class_id` (all classes when
  /// class_id < 0) — the dispatcher's admission ledger.
  double RunningCost(int class_id = -1) const;
  /// Number of running queries of `class_id` (all when < 0).
  int RunningCount(int class_id = -1) const;
  /// Number of queued queries of `class_id` (all when < 0).
  int QueuedCount(int class_id = -1) const;

  /// All done records with end_time in [t_begin, t_end); what the Monitor
  /// reads once per control interval.
  std::vector<QueryInfoRecord> DoneInWindow(sim::SimTime t_begin,
                                            sim::SimTime t_end) const;

  /// Visits every queued row (the Governor's sweep) under the table lock;
  /// see the class contract for visitor restrictions.
  void ForEachQueued(
      const std::function<void(const QueryInfoRecord&)>& visit) const;

  /// Drops done records with end_time < `before` (bounded memory on long
  /// runs). Returns the number removed.
  size_t PruneDone(sim::SimTime before);

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, QueryInfoRecord> rows_;
};

}  // namespace qsched::qp

#endif  // QSCHED_QP_CONTROL_TABLE_H_
