#ifndef QSCHED_QP_INTERCEPTOR_H_
#define QSCHED_QP_INTERCEPTOR_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/status.h"
#include "engine/execution_engine.h"
#include "obs/telemetry.h"
#include "qp/control_table.h"
#include "sim/clock.h"
#include "workload/client.h"
#include "workload/query.h"

namespace qsched::qp {

struct InterceptorConfig {
  /// Latency added by interception (agent block, control-table writes,
  /// communication with the controller). The paper found this overhead
  /// "significantly larger than the execution time" of sub-second OLTP
  /// queries — which is why OLTP is managed indirectly.
  double interception_delay_seconds = 0.35;
  /// CPU consumed on the server per intercepted query (control-table
  /// bookkeeping), billed to the engine's CPU pool.
  double interception_cpu_seconds = 0.02;
  /// Overrides for intercepted OLTP queries. They default to the general
  /// values; the "control inside the DBMS" future-work extension sets
  /// them near zero.
  double oltp_interception_delay_seconds = -1.0;
  double oltp_interception_cpu_seconds = -1.0;
  /// Done rows older than this are pruned from the control table.
  double control_table_retention_seconds = 3600.0;

  double DelayFor(bool is_oltp) const {
    if (is_oltp && oltp_interception_delay_seconds >= 0.0) {
      return oltp_interception_delay_seconds;
    }
    return interception_delay_seconds;
  }
  double CpuFor(bool is_oltp) const {
    if (is_oltp && oltp_interception_cpu_seconds >= 0.0) {
      return oltp_interception_cpu_seconds;
    }
    return interception_cpu_seconds;
  }
};

/// The Query Patroller mechanism: intercept a query, record it in the
/// control tables, block its agent until an explicit Release, then run it
/// on the engine. Controllers (the static QP policy or the external Query
/// Scheduler) decide *when* to call Release; the interceptor is pure
/// mechanism, mirroring how the paper drives DB2 QP through its
/// block/unblock API.
///
/// Thread-safety: the interceptor itself is NOT internally synchronized
/// (its queued-query map and per-class ledgers are plain state mutated by
/// Intercept/Release/completion callbacks). The DES drives it from one
/// thread; the rt runtime serializes every entry point — submissions,
/// clock callbacks, planner cycles — under its core lock. Only the
/// embedded ControlTable is independently thread-safe (the Monitor scans
/// it off the hot path).
class Interceptor {
 public:
  using CompleteFn = workload::QueryFrontend::CompleteFn;
  /// Invoked when an intercepted query becomes visible (after overhead).
  using ArrivedFn = std::function<void(const QueryInfoRecord&)>;
  /// Invoked when a released query finishes.
  using FinishedFn = std::function<void(const QueryInfoRecord&)>;

  Interceptor(sim::Clock* simulator, engine::ExecutionEngine* engine,
              const InterceptorConfig& config);

  Interceptor(const Interceptor&) = delete;
  Interceptor& operator=(const Interceptor&) = delete;

  void set_on_arrived(ArrivedFn fn) { on_arrived_ = std::move(fn); }
  void set_on_finished(FinishedFn fn) { on_finished_ = std::move(fn); }

  /// Intercepts `query`: stamps submission now, applies the interception
  /// overhead, inserts a control-table row, then fires on_arrived. The
  /// query stays blocked until Release().
  void Intercept(const workload::Query& query, CompleteFn on_complete);

  /// Unblocks a queued query and starts it on the engine.
  Status Release(uint64_t query_id);

  /// QP administration: cancels a *queued* query. Its completion callback
  /// fires immediately with a record flagged `cancelled`; the registered
  /// on_cancelled hook lets controllers prune their queues.
  Status CancelQueued(uint64_t query_id);

  /// Invoked when a queued query is cancelled (before its completion
  /// callback), so policies can drop it from their queues.
  using CancelledFn = std::function<void(const QueryInfoRecord&)>;
  void set_on_cancelled(CancelledFn fn) { on_cancelled_ = std::move(fn); }

  uint64_t cancelled_total() const { return cancelled_total_; }

  /// Un-intercepted path (the paper turns QP off for the OLTP class):
  /// stamps submission now and executes immediately; no overhead, no
  /// control-table row. Completion records still flow to `on_complete`.
  void Bypass(const workload::Query& query, CompleteFn on_complete);

  const ControlTable& control_table() const { return table_; }

  /// Incremental ledgers (O(1); the control-table scans are for the
  /// Monitor, not the dispatch path).
  double running_cost(int class_id) const;
  int running_count(int class_id) const;
  int queued_count(int class_id) const;

  uint64_t intercepted_total() const { return intercepted_total_; }
  uint64_t bypassed_total() const { return bypassed_total_; }

  /// Enables telemetry (nullptr = off): interception counters, per-class
  /// queue-wait and response histograms, and span transitions for
  /// enqueue / dispatch / complete / cancel. `telemetry` must outlive
  /// the interceptor.
  void set_telemetry(obs::Telemetry* telemetry);

 private:
  struct PendingQuery {
    workload::Query query;
    CompleteFn on_complete;
    sim::SimTime submit_time = 0.0;
  };
  struct ClassLedger {
    double running_cost = 0.0;
    int running = 0;
    int queued = 0;
  };

  void StartOnEngine(uint64_t query_id, PendingQuery pending);
  /// Cached per-class histogram handles (registered on first use so the
  /// per-query path never builds label strings).
  obs::Histogram* QueueWaitHistogram(int class_id);
  obs::Histogram* ResponseHistogram(int class_id);

  sim::Clock* simulator_;
  engine::ExecutionEngine* engine_;
  InterceptorConfig config_;
  ControlTable table_;
  std::unordered_map<uint64_t, PendingQuery> queued_;
  std::unordered_map<int, ClassLedger> ledgers_;
  ArrivedFn on_arrived_;
  FinishedFn on_finished_;
  CancelledFn on_cancelled_;
  uint64_t intercepted_total_ = 0;
  uint64_t bypassed_total_ = 0;
  uint64_t cancelled_total_ = 0;
  sim::SimTime last_prune_time_ = 0.0;

  obs::Telemetry* telemetry_ = nullptr;
  obs::Counter* intercepted_counter_ = nullptr;
  obs::Counter* bypassed_counter_ = nullptr;
  obs::Counter* released_counter_ = nullptr;
  obs::Counter* cancelled_counter_ = nullptr;
  std::unordered_map<int, obs::Histogram*> queue_wait_hists_;
  std::unordered_map<int, obs::Histogram*> response_hists_;
};

}  // namespace qsched::qp

#endif  // QSCHED_QP_INTERCEPTOR_H_
