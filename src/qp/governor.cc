#include "qp/governor.h"

#include <vector>

namespace qsched::qp {

Governor::Governor(sim::Clock* simulator, Interceptor* interceptor,
                   const Options& options)
    : simulator_(simulator), interceptor_(interceptor), options_(options) {}

void Governor::Start(sim::SimTime until) {
  double interval = options_.sweep_interval_seconds;
  if (interval <= 0.0) return;
  for (double t = interval; t <= until; t += interval) {
    simulator_->ScheduleAt(t, [this] { SweepOnce(); });
  }
}

int Governor::SweepOnce() {
  double now = simulator_->Now();
  // Collect first: cancelling mutates the table under our feet.
  std::vector<uint64_t> expired;
  interceptor_->control_table().ForEachQueued(
      [&](const QueryInfoRecord& record) {
        if (now - record.intercept_time > options_.max_queue_seconds) {
          expired.push_back(record.query_id);
        }
      });
  int cancelled = 0;
  for (uint64_t id : expired) {
    if (interceptor_->CancelQueued(id).ok()) {
      ++cancelled;
      ++total_cancelled_;
    }
  }
  return cancelled;
}

}  // namespace qsched::qp
