#ifndef QSCHED_QP_QP_CONTROLLER_H_
#define QSCHED_QP_QP_CONTROLLER_H_

#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "engine/execution_engine.h"
#include "qp/interceptor.h"
#include "sim/clock.h"
#include "workload/client.h"
#include "workload/query.h"

namespace qsched::qp {

/// Configuration of DB2 Query Patroller's *static* control strategy:
/// queries are partitioned into large / medium / small groups by optimizer
/// cost (top 5% large, next 15% medium in the paper), each group has a
/// fixed concurrency cap, the OLAP workload as a whole has a static cost
/// limit, and an optional class priority orders releases.
///
/// Setting the caps to "unlimited" and keeping only `system_cost_limit`
/// expresses the paper's "no class control" baseline.
struct QpStaticConfig {
  static constexpr double kUnlimited =
      std::numeric_limits<double>::infinity();
  static constexpr int kUnlimitedCount = std::numeric_limits<int>::max();

  /// Cost at or above which a query is "large" (the workload's 95th cost
  /// percentile in the paper's setup).
  double large_cost_threshold = kUnlimited;
  /// Cost at or above which a query is "medium" (80th percentile).
  double medium_cost_threshold = kUnlimited;
  int max_large_concurrent = kUnlimitedCount;
  int max_medium_concurrent = kUnlimitedCount;
  int max_small_concurrent = kUnlimitedCount;
  /// Static cost limit over all intercepted (OLAP) work.
  double olap_cost_limit = kUnlimited;
  /// The under-saturation system cost limit (applies in every mode).
  double system_cost_limit = 300000.0;
  /// When true, queued queries are released in descending class priority.
  bool priority_enabled = false;
  /// class id -> priority (higher runs first); missing ids priority 0.
  std::map<int, int> class_priority;
  /// When true, OLTP queries are intercepted too (the paper shows this is
  /// impractical: the overhead dwarfs sub-second execution). Intercepted
  /// OLTP queries are auto-released, so they pay overhead but aren't
  /// queued. Default false = the paper's bypass.
  bool intercept_oltp = false;

  /// Baseline preset: no class control, only the system cost limit.
  static QpStaticConfig NoControl(double system_cost_limit);
};

/// DB2 Query Patroller as a workload controller: the static baseline the
/// paper compares Query Scheduler against (Figures 4 and 5).
class QpController : public workload::QueryFrontend {
 public:
  QpController(sim::Clock* simulator, engine::ExecutionEngine* engine,
               const InterceptorConfig& interceptor_config,
               const QpStaticConfig& config);

  void Submit(const workload::Query& query, CompleteFn on_complete) override;

  Interceptor& interceptor() { return interceptor_; }
  const QpStaticConfig& config() const { return config_; }

  /// Queue depth across groups (diagnostics).
  int TotalQueued() const;

 private:
  enum Group { kSmall = 0, kMedium = 1, kLarge = 2 };
  struct Waiting {
    uint64_t query_id;
    int class_id;
    double cost;
    uint64_t seq;
  };

  Group GroupFor(double cost) const;
  int GroupCap(Group group) const;
  int PriorityOf(int class_id) const;
  void OnArrived(const QueryInfoRecord& record);
  void OnFinished(const QueryInfoRecord& record);
  void OnCancelled(const QueryInfoRecord& record);
  void TryDispatch();

  sim::Clock* simulator_;
  QpStaticConfig config_;
  Interceptor interceptor_;
  std::vector<Waiting> waiting_[3];
  int group_running_[3] = {0, 0, 0};
  std::map<uint64_t, Group> running_group_;
  double running_cost_ = 0.0;
  uint64_t next_seq_ = 1;
};

}  // namespace qsched::qp

#endif  // QSCHED_QP_QP_CONTROLLER_H_
