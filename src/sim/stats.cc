#include "sim/stats.h"

#include <algorithm>
#include <cmath>

namespace qsched::sim {

void WelfordAccumulator::Add(double value) {
  ++count_;
  sum_ += value;
  double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void WelfordAccumulator::Reset() { *this = WelfordAccumulator(); }

double WelfordAccumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double WelfordAccumulator::stddev() const { return std::sqrt(variance()); }

void WelfordAccumulator::Merge(const WelfordAccumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double n1 = static_cast<double>(count_);
  double n2 = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double min_value, double max_value,
                     int buckets_per_decade)
    : min_value_(std::max(min_value, 1e-12)) {
  if (max_value < min_value_ * 10.0) max_value = min_value_ * 10.0;
  log_min_ = std::log10(min_value_);
  double decades = std::log10(max_value) - log_min_;
  size_t n = static_cast<size_t>(
      std::ceil(decades * std::max(buckets_per_decade, 1)));
  counts_.assign(std::max<size_t>(n, 1) + 1, 0);
  log_step_ = decades / static_cast<double>(counts_.size() - 1 == 0
                                                ? 1
                                                : counts_.size() - 1);
  if (log_step_ <= 0.0) log_step_ = 1.0;
}

size_t Histogram::BucketIndex(double value) const {
  if (value <= min_value_) return 0;
  double idx = (std::log10(value) - log_min_) / log_step_;
  if (idx < 0.0) return 0;
  size_t i = static_cast<size_t>(idx);
  return std::min(i, counts_.size() - 1);
}

void Histogram::Add(double value) {
  ++counts_[BucketIndex(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

double Histogram::bucket_lower(size_t i) const {
  return std::pow(10.0, log_min_ + log_step_ * static_cast<double>(i));
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    double next = static_cast<double>(seen + counts_[i]);
    if (next >= target) {
      double lo = bucket_lower(i);
      double hi = (i + 1 < counts_.size()) ? bucket_lower(i + 1) : max_;
      double within =
          (target - static_cast<double>(seen)) /
          static_cast<double>(counts_[i]);
      double value = lo + (hi - lo) * within;
      return std::clamp(value, min_, max_);
    }
    seen += counts_[i];
  }
  return max_;
}

void TimeSeries::Append(double time, double value) {
  points_.push_back(Point{time, value});
}

double TimeSeries::MeanInWindow(double t_begin, double t_end) const {
  double sum = 0.0;
  size_t n = 0;
  for (const Point& p : points_) {
    if (p.time >= t_begin && p.time < t_end) {
      sum += p.value;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  double pos = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double TimeSeries::LastBefore(double t, double fallback) const {
  double best_time = -std::numeric_limits<double>::infinity();
  double best_value = fallback;
  for (const Point& p : points_) {
    if (p.time < t && p.time >= best_time) {
      best_time = p.time;
      best_value = p.value;
    }
  }
  return best_value;
}

}  // namespace qsched::sim
