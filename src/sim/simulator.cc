#include "sim/simulator.h"

#include <utility>

namespace qsched::sim {

namespace {
// Typical experiments keep a few hundred events in flight (one per
// client plus controller timers); reserving up front keeps the hot path
// free of vector growth.
constexpr size_t kInitialCapacity = 256;
}  // namespace

Simulator::Simulator() { Reserve(kInitialCapacity); }

void Simulator::Reserve(size_t events) {
  slots_.reserve(events);
  free_slots_.reserve(events);
  heap_.reserve(events);
}

uint32_t Simulator::AllocSlot() {
  if (!free_slots_.empty()) {
    uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void Simulator::FreeSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.Reset();
  s.heap_pos = kNoHeapPos;
  // Wrapping past 32 bits would resurrect ~4 billion-cancel-old handles;
  // skip 0 so packed ids never collide with the never-issued id 0.
  if (++s.generation == 0) s.generation = 1;
  free_slots_.push_back(slot);
}

void Simulator::SiftUp(uint32_t pos) {
  uint32_t moving = heap_[pos];
  while (pos > 0) {
    uint32_t parent = (pos - 1) >> 2;
    if (!Before(moving, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slots_[heap_[pos]].heap_pos = pos;
    pos = parent;
  }
  heap_[pos] = moving;
  slots_[moving].heap_pos = pos;
}

void Simulator::SiftDown(uint32_t pos) {
  uint32_t moving = heap_[pos];
  const uint32_t size = static_cast<uint32_t>(heap_.size());
  for (;;) {
    uint32_t first_child = 4 * pos + 1;
    if (first_child >= size) break;
    uint32_t last_child = first_child + 4 < size ? first_child + 4 : size;
    uint32_t best = first_child;
    for (uint32_t c = first_child + 1; c < last_child; ++c) {
      if (Before(heap_[c], heap_[best])) best = c;
    }
    if (!Before(heap_[best], moving)) break;
    heap_[pos] = heap_[best];
    slots_[heap_[pos]].heap_pos = pos;
    pos = best;
  }
  heap_[pos] = moving;
  slots_[moving].heap_pos = pos;
}

void Simulator::RemoveAt(uint32_t pos) {
  uint32_t last = static_cast<uint32_t>(heap_.size()) - 1;
  if (pos != last) {
    heap_[pos] = heap_[last];
    slots_[heap_[pos]].heap_pos = pos;
    heap_.pop_back();
    // The displaced element may belong above or below its new position.
    if (pos > 0 && Before(heap_[pos], heap_[(pos - 1) >> 2])) {
      SiftUp(pos);
    } else {
      SiftDown(pos);
    }
  } else {
    heap_.pop_back();
  }
}

EventId Simulator::ScheduleAt(SimTime when, EventFn fn) {
  if (when < now_) when = now_;
  uint32_t slot = AllocSlot();
  Slot& s = slots_[slot];
  s.when = when;
  s.seq = next_seq_++;
  s.fn = std::move(fn);
  s.heap_pos = static_cast<uint32_t>(heap_.size());
  heap_.push_back(slot);
  SiftUp(s.heap_pos);
  return PackId(s.generation, slot);
}

EventId Simulator::ScheduleAfter(SimTime delay, EventFn fn) {
  if (delay < 0.0) delay = 0.0;
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool Simulator::Cancel(EventId id) {
  uint32_t slot = static_cast<uint32_t>(id & 0xffffffffu);
  uint32_t generation = static_cast<uint32_t>(id >> 32);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (s.generation != generation || s.heap_pos == kNoHeapPos) return false;
  RemoveAt(s.heap_pos);
  FreeSlot(slot);
  return true;
}

bool Simulator::Step() {
  if (heap_.empty()) return false;
  uint32_t slot = heap_[0];
  Slot& s = slots_[slot];
  now_ = s.when;
  // Move the callback out and release the slot before invoking: the
  // callback may schedule, cancel, and reuse this very slot.
  EventFn fn = std::move(s.fn);
  RemoveAt(0);
  FreeSlot(slot);
  ++events_processed_;
  fn();
  return true;
}

size_t Simulator::RunUntil(SimTime until) {
  size_t processed = 0;
  while (!heap_.empty() && slots_[heap_[0]].when <= until) {
    Step();
    ++processed;
  }
  if (now_ < until) now_ = until;
  return processed;
}

size_t Simulator::RunToCompletion() {
  size_t processed = 0;
  while (Step()) ++processed;
  return processed;
}

}  // namespace qsched::sim
