#include "sim/simulator.h"

#include <utility>

namespace qsched::sim {

EventId Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  if (when < now_) when = now_;
  EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(fn)});
  pending_ids_.insert(id);
  return id;
}

EventId Simulator::ScheduleAfter(SimTime delay, std::function<void()> fn) {
  if (delay < 0.0) delay = 0.0;
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool Simulator::Cancel(EventId id) {
  auto it = pending_ids_.find(id);
  if (it == pending_ids_.end()) return false;
  pending_ids_.erase(it);
  // Lazy deletion: the heap entry is skipped when it reaches the top.
  cancelled_.insert(id);
  return true;
}

void Simulator::SkimCancelled() {
  while (!queue_.empty()) {
    auto it = cancelled_.find(queue_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    queue_.pop();
  }
}

bool Simulator::Step() {
  SkimCancelled();
  if (queue_.empty()) return false;
  // Move the callback out before popping: the callback may schedule events
  // and mutate the heap.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  pending_ids_.erase(event.id);
  now_ = event.when;
  ++events_processed_;
  event.fn();
  return true;
}

size_t Simulator::RunUntil(SimTime until) {
  size_t processed = 0;
  for (;;) {
    SkimCancelled();
    if (queue_.empty() || queue_.top().when > until) break;
    Step();
    ++processed;
  }
  if (now_ < until) now_ = until;
  return processed;
}

size_t Simulator::RunToCompletion() {
  size_t processed = 0;
  while (Step()) ++processed;
  return processed;
}

}  // namespace qsched::sim
