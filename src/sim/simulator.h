#ifndef QSCHED_SIM_SIMULATOR_H_
#define QSCHED_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace qsched::sim {

/// Simulated time in seconds since the start of the run.
using SimTime = double;

/// Opaque handle for cancelling a scheduled event. Id 0 is never issued.
using EventId = uint64_t;

/// Discrete-event simulation core: a clock plus an ordered queue of
/// callbacks. Events at equal timestamps fire in scheduling order (FIFO),
/// which makes runs deterministic.
///
/// All simulated components (clients, controllers, the engine) hold a
/// Simulator* and express waiting as `ScheduleAfter(delay, callback)`.
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` at absolute time `when`. Times in the past are clamped
  /// to Now(). Returns an id usable with Cancel().
  EventId ScheduleAt(SimTime when, std::function<void()> fn);

  /// Schedules `fn` after `delay` seconds (negative delays clamp to 0).
  EventId ScheduleAfter(SimTime delay, std::function<void()> fn);

  /// Cancels a pending event. Returns false if it already fired, was
  /// already cancelled, or never existed.
  bool Cancel(EventId id);

  /// Runs a single event. Returns false when the queue is empty.
  bool Step();

  /// Runs events with timestamp <= `until`, then advances the clock to
  /// exactly `until`. Returns the number of events processed.
  size_t RunUntil(SimTime until);

  /// Runs until the queue drains. Returns the number of events processed.
  size_t RunToCompletion();

  /// Number of events currently pending (cancelled events excluded).
  size_t pending_events() const { return pending_ids_.size(); }

  /// Total events executed so far.
  uint64_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    SimTime when;
    EventId id;  // also the FIFO tie-breaker: lower id scheduled earlier
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  /// Pops cancelled events off the top of the heap.
  void SkimCancelled();

  SimTime now_ = 0.0;
  EventId next_id_ = 1;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::unordered_set<EventId> pending_ids_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace qsched::sim

#endif  // QSCHED_SIM_SIMULATOR_H_
