#ifndef QSCHED_SIM_SIMULATOR_H_
#define QSCHED_SIM_SIMULATOR_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace qsched::sim {

/// Simulated time in seconds since the start of the run.
using SimTime = double;

/// Opaque handle for cancelling a scheduled event. Id 0 is never issued.
/// Internally packs (generation << 32 | slot index); a stale handle whose
/// slot has been reused fails the generation check, so Cancel() needs no
/// hash-set lookup.
using EventId = uint64_t;

/// Move-only callable with a small-buffer optimization: callables whose
/// state fits kInlineCapacity bytes (and are nothrow-movable) live inside
/// the EventFn itself, so scheduling a typical lambda performs no heap
/// allocation. Larger callables fall back to a heap box whose pointer is
/// relocated (not the callable) on move.
class EventFn {
 public:
  static constexpr size_t kInlineCapacity = 48;

  EventFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  EventFn(F&& f) {  // NOLINT: implicit so lambdas convert at call sites
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCapacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      Fn* boxed = new Fn(std::forward<F>(f));
      std::memcpy(storage_, &boxed, sizeof(boxed));
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.storage_, storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  /// Destroys the held callable (if any); the EventFn becomes empty.
  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(unsigned char* storage);
    /// Move-constructs into `to` and destroys `from` (for the heap case,
    /// only the box pointer moves — the callable itself stays put).
    void (*relocate)(unsigned char* from, unsigned char* to);
    void (*destroy)(unsigned char* storage);
  };

  template <typename Fn>
  static Fn* Inline(unsigned char* storage) {
    return std::launder(reinterpret_cast<Fn*>(storage));
  }
  template <typename Fn>
  static Fn* Boxed(unsigned char* storage) {
    Fn* boxed;
    std::memcpy(&boxed, storage, sizeof(boxed));
    return boxed;
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](unsigned char* s) { (*Inline<Fn>(s))(); },
      [](unsigned char* from, unsigned char* to) {
        ::new (static_cast<void*>(to)) Fn(std::move(*Inline<Fn>(from)));
        Inline<Fn>(from)->~Fn();
      },
      [](unsigned char* s) { Inline<Fn>(s)->~Fn(); },
  };
  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](unsigned char* s) { (*Boxed<Fn>(s))(); },
      [](unsigned char* from, unsigned char* to) {
        std::memcpy(to, from, sizeof(Fn*));
      },
      [](unsigned char* s) { delete Boxed<Fn>(s); },
  };

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

/// Discrete-event simulation core: a clock plus an ordered queue of
/// callbacks. Events at equal timestamps fire in scheduling order (FIFO),
/// which makes runs deterministic.
///
/// Implementation: a flat 4-ary heap of indices into a pooled slot array.
/// Each slot carries its heap position, so Cancel() finds and removes the
/// event in O(1) lookup + one sift — no lazy tombstones, no hash sets —
/// and the slot (including its callback's memory) is reclaimed
/// immediately. Slots are generation-stamped; freed slots are reused and
/// a stale EventId fails the generation check. The FIFO tie-break uses a
/// separate monotonic sequence number, so ordering is bit-for-bit
/// identical to the historical (time, schedule-order) rule.
///
/// All simulated components (clients, controllers, the engine) hold a
/// Simulator* and express waiting as `ScheduleAfter(delay, callback)`.
class Simulator {
 public:
  Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` at absolute time `when`. Times in the past are clamped
  /// to Now(). Returns an id usable with Cancel().
  EventId ScheduleAt(SimTime when, EventFn fn);

  /// Schedules `fn` after `delay` seconds (negative delays clamp to 0).
  EventId ScheduleAfter(SimTime delay, EventFn fn);

  /// Cancels a pending event and reclaims its slot immediately. Returns
  /// false if it already fired, was already cancelled, or never existed.
  bool Cancel(EventId id);

  /// Runs a single event. Returns false when the queue is empty.
  bool Step();

  /// Runs events with timestamp <= `until`, then advances the clock to
  /// exactly `until`. Returns the number of events processed.
  size_t RunUntil(SimTime until);

  /// Runs until the queue drains. Returns the number of events processed.
  size_t RunToCompletion();

  /// Pre-sizes the slot pool and heap for `events` concurrent events.
  void Reserve(size_t events);

  /// Number of events currently pending (cancelled events excluded).
  size_t pending_events() const { return heap_.size(); }

  /// Total events executed so far.
  uint64_t events_processed() const { return events_processed_; }

  /// Slots ever allocated — the high-water mark of concurrently pending
  /// events. Stays flat under schedule/cancel churn (slot reuse).
  size_t slot_capacity() const { return slots_.size(); }

 private:
  static constexpr uint32_t kNoHeapPos = UINT32_MAX;

  struct Slot {
    SimTime when = 0.0;
    uint64_t seq = 0;  // FIFO tie-breaker: lower seq scheduled earlier
    EventFn fn;
    uint32_t generation = 1;  // bumped on free; 0 never stamped into ids
    uint32_t heap_pos = kNoHeapPos;  // kNoHeapPos = slot is free
  };

  static EventId PackId(uint32_t generation, uint32_t slot) {
    return (static_cast<uint64_t>(generation) << 32) | slot;
  }

  /// True when slot `a`'s event fires strictly before slot `b`'s.
  bool Before(uint32_t a, uint32_t b) const {
    const Slot& sa = slots_[a];
    const Slot& sb = slots_[b];
    if (sa.when != sb.when) return sa.when < sb.when;
    return sa.seq < sb.seq;
  }

  uint32_t AllocSlot();
  void FreeSlot(uint32_t slot);
  void SiftUp(uint32_t pos);
  void SiftDown(uint32_t pos);
  /// Removes the heap entry at `pos`, restoring heap order.
  void RemoveAt(uint32_t pos);

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 1;
  uint64_t events_processed_ = 0;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  /// 4-ary heap of slot indices ordered by (when, seq).
  std::vector<uint32_t> heap_;
};

}  // namespace qsched::sim

#endif  // QSCHED_SIM_SIMULATOR_H_
