#ifndef QSCHED_SIM_SIMULATOR_H_
#define QSCHED_SIM_SIMULATOR_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/clock.h"

namespace qsched::sim {

// EventId here packs (generation << 32 | slot index); a stale handle
// whose slot has been reused fails the generation check, so Cancel()
// needs no hash-set lookup.

/// Discrete-event simulation core: a clock plus an ordered queue of
/// callbacks. Events at equal timestamps fire in scheduling order (FIFO),
/// which makes runs deterministic.
///
/// Implementation: a flat 4-ary heap of indices into a pooled slot array.
/// Each slot carries its heap position, so Cancel() finds and removes the
/// event in O(1) lookup + one sift — no lazy tombstones, no hash sets —
/// and the slot (including its callback's memory) is reclaimed
/// immediately. Slots are generation-stamped; freed slots are reused and
/// a stale EventId fails the generation check. The FIFO tie-break uses a
/// separate monotonic sequence number, so ordering is bit-for-bit
/// identical to the historical (time, schedule-order) rule.
///
/// All simulated components (clients, controllers, the engine) hold a
/// sim::Clock* (this class in DES mode) and express waiting as
/// `ScheduleAfter(delay, callback)`. Single-threaded: all scheduling and
/// stepping must happen on the thread driving the event loop.
class Simulator final : public Clock {
 public:
  Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime Now() const override { return now_; }

  /// Schedules `fn` at absolute time `when`. Times in the past are clamped
  /// to Now(). Returns an id usable with Cancel().
  EventId ScheduleAt(SimTime when, EventFn fn) override;

  /// Schedules `fn` after `delay` seconds (negative delays clamp to 0).
  EventId ScheduleAfter(SimTime delay, EventFn fn) override;

  /// Cancels a pending event and reclaims its slot immediately. Returns
  /// false if it already fired, was already cancelled, or never existed.
  bool Cancel(EventId id) override;

  /// Runs a single event. Returns false when the queue is empty.
  bool Step();

  /// Runs events with timestamp <= `until`, then advances the clock to
  /// exactly `until`. Returns the number of events processed.
  size_t RunUntil(SimTime until);

  /// Runs until the queue drains. Returns the number of events processed.
  size_t RunToCompletion();

  /// Pre-sizes the slot pool and heap for `events` concurrent events.
  void Reserve(size_t events);

  /// Number of events currently pending (cancelled events excluded).
  size_t pending_events() const { return heap_.size(); }

  /// Total events executed so far.
  uint64_t events_processed() const { return events_processed_; }

  /// Slots ever allocated — the high-water mark of concurrently pending
  /// events. Stays flat under schedule/cancel churn (slot reuse).
  size_t slot_capacity() const { return slots_.size(); }

 private:
  static constexpr uint32_t kNoHeapPos = UINT32_MAX;

  struct Slot {
    SimTime when = 0.0;
    uint64_t seq = 0;  // FIFO tie-breaker: lower seq scheduled earlier
    EventFn fn;
    uint32_t generation = 1;  // bumped on free; 0 never stamped into ids
    uint32_t heap_pos = kNoHeapPos;  // kNoHeapPos = slot is free
  };

  static EventId PackId(uint32_t generation, uint32_t slot) {
    return (static_cast<uint64_t>(generation) << 32) | slot;
  }

  /// True when slot `a`'s event fires strictly before slot `b`'s.
  bool Before(uint32_t a, uint32_t b) const {
    const Slot& sa = slots_[a];
    const Slot& sb = slots_[b];
    if (sa.when != sb.when) return sa.when < sb.when;
    return sa.seq < sb.seq;
  }

  uint32_t AllocSlot();
  void FreeSlot(uint32_t slot);
  void SiftUp(uint32_t pos);
  void SiftDown(uint32_t pos);
  /// Removes the heap entry at `pos`, restoring heap order.
  void RemoveAt(uint32_t pos);

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 1;
  uint64_t events_processed_ = 0;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  /// 4-ary heap of slot indices ordered by (when, seq).
  std::vector<uint32_t> heap_;
};

}  // namespace qsched::sim

#endif  // QSCHED_SIM_SIMULATOR_H_
