#ifndef QSCHED_SIM_CLOCK_H_
#define QSCHED_SIM_CLOCK_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace qsched::sim {

/// Model time in seconds since the start of the run. In the discrete-event
/// simulator this is virtual time; in the real-time runtime it is scaled
/// wall-clock time — components cannot tell the difference.
using SimTime = double;

/// Opaque handle for cancelling a scheduled event. Id 0 is never issued.
using EventId = uint64_t;

/// Move-only callable with a small-buffer optimization: callables whose
/// state fits kInlineCapacity bytes (and are nothrow-movable) live inside
/// the EventFn itself, so scheduling a typical lambda performs no heap
/// allocation. Larger callables fall back to a heap box whose pointer is
/// relocated (not the callable) on move.
class EventFn {
 public:
  static constexpr size_t kInlineCapacity = 48;

  EventFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  EventFn(F&& f) {  // NOLINT: implicit so lambdas convert at call sites
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCapacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      Fn* boxed = new Fn(std::forward<F>(f));
      std::memcpy(storage_, &boxed, sizeof(boxed));
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.storage_, storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  /// Destroys the held callable (if any); the EventFn becomes empty.
  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(unsigned char* storage);
    /// Move-constructs into `to` and destroys `from` (for the heap case,
    /// only the box pointer moves — the callable itself stays put).
    void (*relocate)(unsigned char* from, unsigned char* to);
    void (*destroy)(unsigned char* storage);
  };

  template <typename Fn>
  static Fn* Inline(unsigned char* storage) {
    return std::launder(reinterpret_cast<Fn*>(storage));
  }
  template <typename Fn>
  static Fn* Boxed(unsigned char* storage) {
    Fn* boxed;
    std::memcpy(&boxed, storage, sizeof(boxed));
    return boxed;
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](unsigned char* s) { (*Inline<Fn>(s))(); },
      [](unsigned char* from, unsigned char* to) {
        ::new (static_cast<void*>(to)) Fn(std::move(*Inline<Fn>(from)));
        Inline<Fn>(from)->~Fn();
      },
      [](unsigned char* s) { Inline<Fn>(s)->~Fn(); },
  };
  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](unsigned char* s) { (*Boxed<Fn>(s))(); },
      [](unsigned char* from, unsigned char* to) {
        std::memcpy(to, from, sizeof(Fn*));
      },
      [](unsigned char* s) { delete Boxed<Fn>(s); },
  };

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

/// The time source every model component (engine, Query Patroller,
/// scheduler, clients) is written against: read the current model time,
/// schedule a callback for later, cancel a pending one. Two
/// implementations exist:
///
///  * `sim::Simulator` — virtual time; callbacks fire when the
///    single-threaded event loop reaches their timestamp. Deterministic.
///  * `rt::WallClock` — model time derived from `std::chrono::steady_clock`
///    (optionally compressed by a time-scale factor); callbacks fire on
///    the real-time runtime's clock thread when the wall deadline passes.
///
/// Semantics shared by both: times in the past clamp to Now(); events at
/// equal timestamps fire in scheduling order (FIFO); Cancel() returns
/// false once the callback has fired (or the id never existed). Whether
/// calls may come from multiple threads is an implementation property:
/// the Simulator is single-threaded, the WallClock is thread-safe.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current model time.
  virtual SimTime Now() const = 0;

  /// Schedules `fn` at absolute model time `when` (past times clamp to
  /// Now()). Returns an id usable with Cancel().
  virtual EventId ScheduleAt(SimTime when, EventFn fn) = 0;

  /// Schedules `fn` after `delay` model seconds (negative delays clamp
  /// to 0).
  virtual EventId ScheduleAfter(SimTime delay, EventFn fn) = 0;

  /// Cancels a pending event. Returns false if it already fired, was
  /// already cancelled, or never existed.
  virtual bool Cancel(EventId id) = 0;
};

}  // namespace qsched::sim

#endif  // QSCHED_SIM_CLOCK_H_
