#ifndef QSCHED_SIM_STATS_H_
#define QSCHED_SIM_STATS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace qsched::sim {

/// Streaming mean/variance accumulator (Welford's algorithm).
class WelfordAccumulator {
 public:
  WelfordAccumulator() = default;

  void Add(double value);
  void Reset();

  uint64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Pools another accumulator into this one (Chan's parallel update).
  void Merge(const WelfordAccumulator& other);

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Histogram over a log-spaced grid of non-negative values, RocksDB-style:
/// approximate quantiles with bounded memory regardless of sample count.
class Histogram {
 public:
  /// Buckets span [min_value, max_value] with `buckets_per_decade`
  /// log-spaced buckets per factor of 10. Values outside the range clamp
  /// into the first/last bucket.
  Histogram(double min_value, double max_value, int buckets_per_decade = 20);

  void Add(double value);
  void Reset();

  uint64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? sum_ / count_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  /// Approximate quantile (q in [0,1]) by linear interpolation within the
  /// containing bucket. Returns 0 when empty.
  double Quantile(double q) const;

  size_t num_buckets() const { return counts_.size(); }
  uint64_t bucket_count(size_t i) const { return counts_[i]; }
  /// Lower bound of bucket i.
  double bucket_lower(size_t i) const;

 private:
  size_t BucketIndex(double value) const;

  double min_value_;
  double log_min_;
  double log_step_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Append-only series of (time, value) points with basic reductions,
/// used to record per-interval controller decisions and measurements.
class TimeSeries {
 public:
  struct Point {
    double time;
    double value;
  };

  void Append(double time, double value);

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const Point& at(size_t i) const { return points_[i]; }
  const std::vector<Point>& points() const { return points_; }

  /// Mean of values with time in [t_begin, t_end); 0 when no points match.
  double MeanInWindow(double t_begin, double t_end) const;
  /// Last value with time < t, or `fallback` when none.
  double LastBefore(double t, double fallback) const;

 private:
  std::vector<Point> points_;
};

/// Exact percentile (q in [0,1]) of a sample by sorting a copy; linear
/// interpolation between order statistics. Returns 0 for empty input.
double Percentile(std::vector<double> values, double q);

}  // namespace qsched::sim

#endif  // QSCHED_SIM_STATS_H_
