#ifndef QSCHED_OBS_TELEMETRY_H_
#define QSCHED_OBS_TELEMETRY_H_

#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace qsched::obs {

/// The three observability pillars bundled as one injectable unit.
/// Components accept a `Telemetry*` (nullptr by default = telemetry off;
/// instrumented call sites guard on the pointer, so a disabled run pays
/// nothing but the branch). The owner — typically the experiment driver —
/// outlives every component it hands the pointer to.
struct Telemetry {
  Registry registry;
  SpanLog spans;
  PlannerAuditLog audit;
};

}  // namespace qsched::obs

#endif  // QSCHED_OBS_TELEMETRY_H_
