#ifndef QSCHED_OBS_TELEMETRY_H_
#define QSCHED_OBS_TELEMETRY_H_

#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/prediction.h"
#include "obs/slo_monitor.h"
#include "obs/span.h"
#include "obs/timeseries.h"

namespace qsched::obs {

/// The observability pillars bundled as one injectable unit: the raw
/// plumbing (metrics registry, per-query spans, planner audit log) plus
/// the derived analytics layer (per-interval time-series table,
/// prediction-vs-actual ledger, SLO attainment monitor). Components
/// accept a `Telemetry*` (nullptr by default = telemetry off;
/// instrumented call sites guard on the pointer, so a disabled run pays
/// nothing but the branch). The owner — typically the experiment driver —
/// outlives every component it hands the pointer to.
///
/// Thread-safety: registry, audit, recorder, ledger and slo accept
/// concurrent writers (replication workers may share one sink); spans
/// remain single-writer.
struct Telemetry {
  Registry registry;
  SpanLog spans;
  PlannerAuditLog audit;
  TimeSeriesRecorder recorder;
  PredictionLedger ledger;
  SloMonitor slo;
};

}  // namespace qsched::obs

#endif  // QSCHED_OBS_TELEMETRY_H_
