#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/strings.h"

namespace qsched::obs {

void Histogram::Record(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[static_cast<size_t>(BucketIndex(value))];
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0 : min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0 : max_;
}

double Histogram::Mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::array<uint64_t, Histogram::kNumBuckets> Histogram::buckets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_;
}

int Histogram::BucketIndex(double value) {
  if (!(value > kMinValue)) return 0;  // also catches NaN and negatives
  int index =
      1 + static_cast<int>(kBucketsPerOctave * std::log2(value / kMinValue));
  return std::clamp(index, 1, kNumBuckets - 1);
}

double Histogram::BucketLowerEdge(int index) {
  if (index <= 0) return 0.0;
  return kMinValue *
         std::exp2(static_cast<double>(index - 1) / kBucketsPerOctave);
}

double Histogram::BucketUpperEdge(int index) {
  if (index <= 0) return kMinValue;
  return kMinValue *
         std::exp2(static_cast<double>(index) / kBucketsPerOctave);
}

double Histogram::Quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  return QuantileLocked(q);
}

double Histogram::QuantileLocked(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(count_);
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    double before = static_cast<double>(seen);
    seen += buckets_[i];
    if (static_cast<double>(seen) < target) continue;
    // Log-linear interpolation inside the winning bucket.
    double frac = (target - before) / static_cast<double>(buckets_[i]);
    double lo = std::max(BucketLowerEdge(i), kMinValue);
    double hi = BucketUpperEdge(i);
    double estimate = lo * std::pow(hi / lo, std::clamp(frac, 0.0, 1.0));
    return std::clamp(estimate, min_, max_);
  }
  return max_;
}

Registry::Entry* Registry::FindOrCreate(const std::string& name,
                                        const std::string& labels,
                                        MetricKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto key = std::make_pair(name, labels);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    QSCHED_CHECK(it->second.kind == kind)
        << "metric " << name << " re-registered with a different kind";
    return &it->second;
  }
  Entry entry;
  entry.kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      entry.histogram = std::make_unique<Histogram>();
      break;
  }
  return &entries_.emplace(std::move(key), std::move(entry)).first->second;
}

Counter* Registry::GetCounter(const std::string& name,
                              const std::string& labels) {
  return FindOrCreate(name, labels, MetricKind::kCounter)->counter.get();
}

Gauge* Registry::GetGauge(const std::string& name,
                          const std::string& labels) {
  return FindOrCreate(name, labels, MetricKind::kGauge)->gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::string& labels) {
  return FindOrCreate(name, labels, MetricKind::kHistogram)
      ->histogram.get();
}

size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<MetricSnapshot> Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    MetricSnapshot snap;
    snap.name = key.first;
    snap.labels = key.second;
    snap.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        snap.value = static_cast<double>(entry.counter->value());
        break;
      case MetricKind::kGauge:
        snap.value = entry.gauge->value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *entry.histogram;
        snap.count = h.count();
        snap.sum = h.sum();
        snap.min = h.min();
        snap.max = h.max();
        snap.p50 = h.Quantile(0.50);
        snap.p95 = h.Quantile(0.95);
        snap.p99 = h.Quantile(0.99);
        break;
      }
    }
    out.push_back(std::move(snap));
  }
  return out;
}

void Registry::AddAlias(const std::string& alias,
                        const std::string& canonical) {
  std::lock_guard<std::mutex> lock(mu_);
  QSCHED_CHECK(alias != canonical)
      << "metric alias " << alias << " points at itself";
  aliases_[alias] = canonical;
}

namespace {

std::string SampleName(const std::string& name, const std::string& labels,
                       const std::string& extra_label = "") {
  std::string all = labels;
  if (!extra_label.empty()) {
    if (!all.empty()) all += ",";
    all += extra_label;
  }
  if (all.empty()) return name;
  return name + "{" + all + "}";
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 2);
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Renders a finite double, mapping nan/inf to 0 so output stays JSON.
std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  return StrPrintf("%.9g", value);
}

}  // namespace

void Registry::WritePrometheus(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto emit_samples = [&out](const std::string& name,
                             const std::string& labels, const Entry& entry) {
    switch (entry.kind) {
      case MetricKind::kCounter:
        out << SampleName(name, labels) << " " << entry.counter->value()
            << "\n";
        break;
      case MetricKind::kGauge:
        out << SampleName(name, labels) << " "
            << StrPrintf("%.9g", entry.gauge->value()) << "\n";
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out << SampleName(name, labels, "quantile=\"0.5\"") << " "
            << StrPrintf("%.9g", h.Quantile(0.50)) << "\n";
        out << SampleName(name, labels, "quantile=\"0.95\"") << " "
            << StrPrintf("%.9g", h.Quantile(0.95)) << "\n";
        out << SampleName(name, labels, "quantile=\"0.99\"") << " "
            << StrPrintf("%.9g", h.Quantile(0.99)) << "\n";
        out << SampleName(name, labels, "quantile=\"1\"") << " "
            << StrPrintf("%.9g", h.max()) << "\n";
        out << SampleName(name + "_sum", labels) << " "
            << StrPrintf("%.9g", h.sum()) << "\n";
        out << SampleName(name + "_count", labels) << " " << h.count()
            << "\n";
        break;
      }
    }
  };
  auto type_string = [](MetricKind kind) {
    return kind == MetricKind::kCounter ? "counter"
           : kind == MetricKind::kGauge ? "gauge"
                                        : "summary";
  };
  const std::string* last_family = nullptr;
  for (const auto& [key, entry] : entries_) {
    const std::string& name = key.first;
    const std::string& labels = key.second;
    if (last_family == nullptr || *last_family != name) {
      out << "# TYPE " << name << " " << type_string(entry.kind) << "\n";
      last_family = &name;
    }
    emit_samples(name, labels, entry);
  }
  // Deprecated aliases come after every canonical family, each one its
  // own family (so the one-#-TYPE-per-family invariant holds as long as
  // alias names never collide with live canonical names).
  for (const auto& [alias, canonical] : aliases_) {
    auto it = entries_.lower_bound(std::make_pair(canonical, std::string()));
    if (it == entries_.end() || it->first.first != canonical) continue;
    out << "# HELP " << alias << " Deprecated alias for " << canonical
        << ".\n";
    out << "# TYPE " << alias << " " << type_string(it->second.kind)
        << "\n";
    for (; it != entries_.end() && it->first.first == canonical; ++it) {
      emit_samples(alias, it->first.second, it->second);
    }
  }
}

void Registry::WriteVarzJson(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto emit_value = [&out](const Entry& entry) {
    switch (entry.kind) {
      case MetricKind::kCounter:
        out << entry.counter->value();
        break;
      case MetricKind::kGauge:
        out << JsonNumber(entry.gauge->value());
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out << "{\"count\":" << h.count() << ",\"sum\":"
            << JsonNumber(h.sum()) << ",\"min\":" << JsonNumber(h.min())
            << ",\"max\":" << JsonNumber(h.max())
            << ",\"p50\":" << JsonNumber(h.Quantile(0.50))
            << ",\"p95\":" << JsonNumber(h.Quantile(0.95))
            << ",\"p99\":" << JsonNumber(h.Quantile(0.99)) << "}";
        break;
      }
    }
  };
  out << "{\n  \"metrics\": {";
  bool first = true;
  for (const auto& [key, entry] : entries_) {
    out << (first ? "\n" : ",\n") << "    \""
        << JsonEscape(SampleName(key.first, key.second)) << "\": ";
    emit_value(entry);
    first = false;
  }
  out << "\n  },\n  \"aliases\": {";
  first = true;
  for (const auto& [alias, canonical] : aliases_) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(alias)
        << "\": \"" << JsonEscape(canonical) << "\"";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

}  // namespace qsched::obs
