#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <thread>

#include "common/logging.h"
#include "common/strings.h"

namespace qsched::obs {

size_t Histogram::StripeIndex() {
  // Hashed once per thread: a given thread always writes one stripe, so
  // its increments stay core-local and its per-stripe sum accumulates in
  // a deterministic order.
  thread_local const size_t index =
      std::hash<std::thread::id>()(std::this_thread::get_id()) %
      static_cast<size_t>(kStripes);
  return index;
}

void Histogram::Record(double value) {
  // Extremes first, bucket last: once a reader sees the bucket count,
  // the min/max that clamp its quantile estimate are already in place
  // (best-effort under relaxed ordering; exact once writers quiesce).
  double seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
  Stripe& stripe = stripes_[StripeIndex()];
  seen = stripe.sum.load(std::memory_order_relaxed);
  while (!stripe.sum.compare_exchange_weak(seen, seen + value,
                                           std::memory_order_relaxed)) {
  }
  stripe.buckets[static_cast<size_t>(BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
}

uint64_t Histogram::AggregateBuckets(
    std::array<uint64_t, kNumBuckets>* out) const {
  out->fill(0);
  uint64_t total = 0;
  for (const Stripe& stripe : stripes_) {
    for (int i = 0; i < kNumBuckets; ++i) {
      uint64_t n = stripe.buckets[static_cast<size_t>(i)].load(
          std::memory_order_relaxed);
      (*out)[static_cast<size_t>(i)] += n;
      total += n;
    }
  }
  return total;
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (const Stripe& stripe : stripes_) {
    for (const auto& bucket : stripe.buckets) {
      total += bucket.load(std::memory_order_relaxed);
    }
  }
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const Stripe& stripe : stripes_) {
    total += stripe.sum.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::min() const {
  double value = min_.load(std::memory_order_relaxed);
  return std::isfinite(value) ? value : 0.0;
}

double Histogram::max() const {
  double value = max_.load(std::memory_order_relaxed);
  return std::isfinite(value) ? value : 0.0;
}

double Histogram::Mean() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::array<uint64_t, Histogram::kNumBuckets> Histogram::buckets() const {
  std::array<uint64_t, kNumBuckets> out;
  AggregateBuckets(&out);
  return out;
}

int Histogram::BucketIndex(double value) {
  if (!(value > kMinValue)) return 0;  // also catches NaN and negatives
  int index =
      1 + static_cast<int>(kBucketsPerOctave * std::log2(value / kMinValue));
  return std::clamp(index, 1, kNumBuckets - 1);
}

double Histogram::BucketLowerEdge(int index) {
  if (index <= 0) return 0.0;
  return kMinValue *
         std::exp2(static_cast<double>(index - 1) / kBucketsPerOctave);
}

double Histogram::BucketUpperEdge(int index) {
  if (index <= 0) return kMinValue;
  return kMinValue *
         std::exp2(static_cast<double>(index) / kBucketsPerOctave);
}

double Histogram::Quantile(double q) const {
  std::array<uint64_t, kNumBuckets> agg;
  uint64_t n = AggregateBuckets(&agg);
  return QuantileFromBuckets(agg, n, min(), max(), q);
}

double Histogram::QuantileFromBuckets(
    const std::array<uint64_t, kNumBuckets>& buckets, uint64_t count,
    double min, double max, double q) {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(count);
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets[static_cast<size_t>(i)] == 0) continue;
    double before = static_cast<double>(seen);
    seen += buckets[static_cast<size_t>(i)];
    if (static_cast<double>(seen) < target) continue;
    // Log-linear interpolation inside the winning bucket.
    double frac = (target - before) /
                  static_cast<double>(buckets[static_cast<size_t>(i)]);
    double lo = std::max(BucketLowerEdge(i), kMinValue);
    double hi = BucketUpperEdge(i);
    double estimate = lo * std::pow(hi / lo, std::clamp(frac, 0.0, 1.0));
    return std::clamp(estimate, min, max);
  }
  return max;
}

Histogram::Digest Histogram::GetDigest() const {
  std::array<uint64_t, kNumBuckets> agg;
  Digest digest;
  digest.count = AggregateBuckets(&agg);
  digest.sum = sum();
  digest.min = min();
  digest.max = max();
  digest.p50 = QuantileFromBuckets(agg, digest.count, digest.min,
                                   digest.max, 0.50);
  digest.p95 = QuantileFromBuckets(agg, digest.count, digest.min,
                                   digest.max, 0.95);
  digest.p99 = QuantileFromBuckets(agg, digest.count, digest.min,
                                   digest.max, 0.99);
  return digest;
}

Registry::Entry* Registry::FindOrCreate(const std::string& name,
                                        const std::string& labels,
                                        MetricKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto key = std::make_pair(name, labels);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    QSCHED_CHECK(it->second.kind == kind)
        << "metric " << name << " re-registered with a different kind";
    return &it->second;
  }
  Entry entry;
  entry.kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      entry.histogram = std::make_unique<Histogram>();
      break;
  }
  return &entries_.emplace(std::move(key), std::move(entry)).first->second;
}

Counter* Registry::GetCounter(const std::string& name,
                              const std::string& labels) {
  return FindOrCreate(name, labels, MetricKind::kCounter)->counter.get();
}

Gauge* Registry::GetGauge(const std::string& name,
                          const std::string& labels) {
  return FindOrCreate(name, labels, MetricKind::kGauge)->gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::string& labels) {
  return FindOrCreate(name, labels, MetricKind::kHistogram)
      ->histogram.get();
}

size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<MetricSnapshot> Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    MetricSnapshot snap;
    snap.name = key.first;
    snap.labels = key.second;
    snap.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        snap.value = static_cast<double>(entry.counter->value());
        break;
      case MetricKind::kGauge:
        snap.value = entry.gauge->value();
        break;
      case MetricKind::kHistogram: {
        Histogram::Digest digest = entry.histogram->GetDigest();
        snap.count = digest.count;
        snap.sum = digest.sum;
        snap.min = digest.min;
        snap.max = digest.max;
        snap.p50 = digest.p50;
        snap.p95 = digest.p95;
        snap.p99 = digest.p99;
        break;
      }
    }
    out.push_back(std::move(snap));
  }
  return out;
}

void Registry::AddAlias(const std::string& alias,
                        const std::string& canonical) {
  std::lock_guard<std::mutex> lock(mu_);
  QSCHED_CHECK(alias != canonical)
      << "metric alias " << alias << " points at itself";
  aliases_[alias] = canonical;
}

namespace {

std::string SampleName(const std::string& name, const std::string& labels,
                       const std::string& extra_label = "") {
  std::string all = labels;
  if (!extra_label.empty()) {
    if (!all.empty()) all += ",";
    all += extra_label;
  }
  if (all.empty()) return name;
  return name + "{" + all + "}";
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 2);
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Renders a finite double, mapping nan/inf to 0 so output stays JSON.
std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  return StrPrintf("%.9g", value);
}

}  // namespace

void Registry::WritePrometheus(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto emit_samples = [&out](const std::string& name,
                             const std::string& labels, const Entry& entry) {
    switch (entry.kind) {
      case MetricKind::kCounter:
        out << SampleName(name, labels) << " " << entry.counter->value()
            << "\n";
        break;
      case MetricKind::kGauge:
        out << SampleName(name, labels) << " "
            << StrPrintf("%.9g", entry.gauge->value()) << "\n";
        break;
      case MetricKind::kHistogram: {
        Histogram::Digest d = entry.histogram->GetDigest();
        out << SampleName(name, labels, "quantile=\"0.5\"") << " "
            << StrPrintf("%.9g", d.p50) << "\n";
        out << SampleName(name, labels, "quantile=\"0.95\"") << " "
            << StrPrintf("%.9g", d.p95) << "\n";
        out << SampleName(name, labels, "quantile=\"0.99\"") << " "
            << StrPrintf("%.9g", d.p99) << "\n";
        out << SampleName(name, labels, "quantile=\"1\"") << " "
            << StrPrintf("%.9g", d.max) << "\n";
        out << SampleName(name + "_sum", labels) << " "
            << StrPrintf("%.9g", d.sum) << "\n";
        out << SampleName(name + "_count", labels) << " " << d.count
            << "\n";
        break;
      }
    }
  };
  auto type_string = [](MetricKind kind) {
    return kind == MetricKind::kCounter ? "counter"
           : kind == MetricKind::kGauge ? "gauge"
                                        : "summary";
  };
  const std::string* last_family = nullptr;
  for (const auto& [key, entry] : entries_) {
    const std::string& name = key.first;
    const std::string& labels = key.second;
    if (last_family == nullptr || *last_family != name) {
      out << "# TYPE " << name << " " << type_string(entry.kind) << "\n";
      last_family = &name;
    }
    emit_samples(name, labels, entry);
  }
  // Deprecated aliases come after every canonical family, each one its
  // own family (so the one-#-TYPE-per-family invariant holds as long as
  // alias names never collide with live canonical names).
  for (const auto& [alias, canonical] : aliases_) {
    auto it = entries_.lower_bound(std::make_pair(canonical, std::string()));
    if (it == entries_.end() || it->first.first != canonical) continue;
    out << "# HELP " << alias << " Deprecated alias for " << canonical
        << ".\n";
    out << "# TYPE " << alias << " " << type_string(it->second.kind)
        << "\n";
    for (; it != entries_.end() && it->first.first == canonical; ++it) {
      emit_samples(alias, it->first.second, it->second);
    }
  }
}

void Registry::WriteVarzJson(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto emit_value = [&out](const Entry& entry) {
    switch (entry.kind) {
      case MetricKind::kCounter:
        out << entry.counter->value();
        break;
      case MetricKind::kGauge:
        out << JsonNumber(entry.gauge->value());
        break;
      case MetricKind::kHistogram: {
        Histogram::Digest d = entry.histogram->GetDigest();
        out << "{\"count\":" << d.count << ",\"sum\":"
            << JsonNumber(d.sum) << ",\"min\":" << JsonNumber(d.min)
            << ",\"max\":" << JsonNumber(d.max)
            << ",\"p50\":" << JsonNumber(d.p50)
            << ",\"p95\":" << JsonNumber(d.p95)
            << ",\"p99\":" << JsonNumber(d.p99) << "}";
        break;
      }
    }
  };
  out << "{\n  \"metrics\": {";
  bool first = true;
  for (const auto& [key, entry] : entries_) {
    out << (first ? "\n" : ",\n") << "    \""
        << JsonEscape(SampleName(key.first, key.second)) << "\": ";
    emit_value(entry);
    first = false;
  }
  out << "\n  },\n  \"aliases\": {";
  first = true;
  for (const auto& [alias, canonical] : aliases_) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(alias)
        << "\": \"" << JsonEscape(canonical) << "\"";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

}  // namespace qsched::obs
