#ifndef QSCHED_OBS_AUDIT_H_
#define QSCHED_OBS_AUDIT_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace qsched::obs {

/// Everything the Scheduling Planner knew about one class during one
/// control interval, plus what it decided. Values the planner did not
/// observe that interval stay negative.
struct PlannerAuditClass {
  int class_id = 0;
  bool is_oltp = false;
  /// SLO: velocity floor (OLAP) or response ceiling seconds (OLTP).
  double goal = 0.0;
  /// Raw interval measurement (-1 when no completion landed).
  double measured_raw = -1.0;
  /// Accepted (EWMA-smoothed) measurement the solver saw.
  double measured_smoothed = 0.0;
  /// measured_smoothed relative to goal; >= 1 means the SLO is met.
  double goal_ratio = 0.0;
  int completed_in_interval = 0;
  int queue_depth = 0;
  int running = 0;
  double running_cost = 0.0;
  /// Workload-detector view.
  double arrival_rate = 0.0;
  double predicted_rate = 0.0;
  bool change_detected = false;
  /// Solver's optimal limit vs. the rate-limited limit actually handed to
  /// the Dispatcher.
  double target_limit = 0.0;
  double enforced_limit = 0.0;
};

/// One structured record per Scheduling Planner cycle: the measurement
/// inputs and the plan outputs, so every control decision can be traced
/// back to what the Performance Solver saw.
struct PlannerAuditRecord {
  uint64_t interval = 0;
  double sim_time = 0.0;
  double system_cost_limit = 0.0;
  /// OLTP class response fed to the regression model (-1 when unknown).
  double oltp_response = -1.0;
  double solver_utility = 0.0;
  /// "utility-search" or "greedy-auction".
  std::string allocator;
  std::vector<PlannerAuditClass> classes;
};

/// Single-line JSON encoding of one record (no trailing newline).
std::string ToJson(const PlannerAuditRecord& record);

/// Parses a line produced by ToJson. Returns false on malformed input.
/// This is a minimal reader for the emitter's own output (round-trip
/// tests, output validation), not a general JSON parser.
bool ParsePlannerAuditRecord(const std::string& json,
                             PlannerAuditRecord* out);

/// Bounded decision log (drop-oldest with a counter), exportable as
/// JSONL. Add and the counters are thread-safe; records() hands back a
/// reference, so only read it after concurrent writers have quiesced.
class PlannerAuditLog {
 public:
  explicit PlannerAuditLog(size_t capacity = 1 << 16);

  PlannerAuditLog(const PlannerAuditLog&) = delete;
  PlannerAuditLog& operator=(const PlannerAuditLog&) = delete;

  void Add(PlannerAuditRecord record);

  size_t size() const;
  uint64_t dropped() const;
  const std::deque<PlannerAuditRecord>& records() const { return records_; }

  /// One ToJson line per record.
  void WriteJsonl(std::ostream& out) const;

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  std::deque<PlannerAuditRecord> records_;
  uint64_t dropped_ = 0;
};

}  // namespace qsched::obs

#endif  // QSCHED_OBS_AUDIT_H_
