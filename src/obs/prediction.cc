#include "obs/prediction.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace qsched::obs {

PredictionLedger::PredictionLedger(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void PredictionLedger::Predict(uint64_t interval, int class_id,
                               bool is_oltp, double predicted,
                               double model_slope) {
  std::lock_guard<std::mutex> lock(mu_);
  if (records_.size() >= capacity_) {
    // Drop-oldest; detach it from pending_ first if still unresolved.
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->second == &records_.front()) {
        pending_.erase(it);
        break;
      }
    }
    records_.pop_front();
    ++dropped_;
  }
  PredictionRecord record;
  record.predicted_at = interval;
  record.target_interval = interval + 1;
  record.class_id = class_id;
  record.is_oltp = is_oltp;
  record.predicted = predicted;
  record.model_slope = model_slope;
  records_.push_back(record);
  // push_back never moves existing deque elements, so stored pointers
  // stay valid until their element is popped.
  pending_[class_id] = &records_.back();
}

void PredictionLedger::Observe(uint64_t interval, int class_id,
                               double observed) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pending_.find(class_id);
  if (it == pending_.end()) return;
  PredictionRecord* record = it->second;
  if (record->target_interval != interval) return;
  record->observed = observed;
  record->resolved = true;
  pending_.erase(it);
  double error = observed - record->predicted;
  abs_errors_[class_id].push_back(std::abs(error));
  signed_error_sum_[class_id] += error;
}

size_t PredictionLedger::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

uint64_t PredictionLedger::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<PredictionRecord> PredictionLedger::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<PredictionRecord>(records_.begin(), records_.end());
}

ResidualStats PredictionLedger::StatsFor(int class_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  ResidualStats stats;
  auto it = abs_errors_.find(class_id);
  if (it == abs_errors_.end() || it->second.empty()) return stats;
  const std::vector<double>& errors = it->second;
  stats.count = errors.size();
  double sum = 0.0;
  for (double e : errors) sum += e;
  stats.mean_abs_error = sum / static_cast<double>(errors.size());
  std::vector<double> sorted = errors;
  std::sort(sorted.begin(), sorted.end());
  // Exact p95 with linear interpolation between order statistics.
  double rank = 0.95 * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  stats.p95_abs_error = sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  stats.bias = signed_error_sum_.at(class_id) /
               static_cast<double>(errors.size());
  return stats;
}

std::vector<std::pair<uint64_t, double>>
PredictionLedger::SlopeTrajectory() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<uint64_t, double>> trajectory;
  for (const PredictionRecord& record : records_) {
    if (record.is_oltp) {
      trajectory.emplace_back(record.predicted_at, record.model_slope);
    }
  }
  return trajectory;
}

void PredictionLedger::WriteCsv(std::ostream& out) const {
  std::vector<PredictionRecord> records = Records();
  out << "predicted_at,target_interval,class_id,is_oltp,predicted,"
         "observed,resolved,residual,model_slope\n";
  for (const PredictionRecord& r : records) {
    out << StrPrintf(
        "%llu,%llu,%d,%d,%.9g,%.9g,%d,%.9g,%.9g\n",
        static_cast<unsigned long long>(r.predicted_at),
        static_cast<unsigned long long>(r.target_interval), r.class_id,
        r.is_oltp ? 1 : 0, r.predicted, r.resolved ? r.observed : -1.0,
        r.resolved ? 1 : 0,
        r.resolved ? r.observed - r.predicted : 0.0, r.model_slope);
  }
}

void PredictionLedger::WriteJsonl(std::ostream& out) const {
  std::vector<PredictionRecord> records = Records();
  for (const PredictionRecord& r : records) {
    out << StrPrintf(
        "{\"predicted_at\":%llu,\"target_interval\":%llu,"
        "\"class_id\":%d,\"is_oltp\":%s,\"predicted\":%.9g,"
        "\"observed\":%.9g,\"resolved\":%s,\"model_slope\":%.9g}\n",
        static_cast<unsigned long long>(r.predicted_at),
        static_cast<unsigned long long>(r.target_interval), r.class_id,
        r.is_oltp ? "true" : "false", r.predicted,
        r.resolved ? r.observed : -1.0, r.resolved ? "true" : "false",
        r.model_slope);
  }
}

}  // namespace qsched::obs
