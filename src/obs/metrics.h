#ifndef QSCHED_OBS_METRICS_H_
#define QSCHED_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace qsched::obs {

/// Monotonically increasing event count. Recording is O(1) and
/// allocation-free; handles returned by Registry stay valid for its
/// lifetime, so hot paths cache the pointer once and increment directly.
/// Increments are relaxed atomics, so concurrent writers lose nothing.
class Counter {
 public:
  void Inc(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time value (queue depth, utilization, current limit).
/// Atomic set/add so concurrent writers never tear the double.
class Gauge {
 public:
  void Set(double value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-bucketed histogram: fixed bucket array whose edges grow
/// geometrically (4 buckets per factor of two, ~19% wide), covering
/// [1e-6, ~3e6) — microseconds to weeks of simulated time, or page and
/// byte counts. Record() is O(1), allocation-free and LOCK-FREE: bucket
/// counts live in kStripes cacheline-aligned stripes (a writer picks its
/// stripe by thread id, so unrelated threads never contend on a line)
/// and every update is a relaxed atomic add / CAS. Readers aggregate the
/// stripes on demand — the scrape path pays the O(stripes × buckets)
/// walk, the sample path pays nothing. The total count is derived from
/// the bucket sums, so count and buckets can never disagree; sum and the
/// exact min/max extremes are separate atomics, which under concurrent
/// writers may trail the bucket counts by the handful of samples still
/// mid-Record (exact again once writers quiesce, e.g. after a join).
/// Quantiles are estimated by log-linear interpolation inside the
/// winning bucket, within one bucket width (<19%) of the true value.
class Histogram {
 public:
  static constexpr double kMinValue = 1e-6;
  static constexpr int kBucketsPerOctave = 4;
  /// Bucket 0 is the underflow bucket (<= kMinValue); the top bucket
  /// absorbs overflow.
  static constexpr int kNumBuckets = 168;
  /// Bucket stripes; writers hash their thread id to one.
  static constexpr int kStripes = 8;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(double value);

  uint64_t count() const;
  double sum() const;
  /// Exact observed extremes (0 when empty).
  double min() const;
  double max() const;
  double Mean() const;

  /// Estimated q-quantile, q in [0, 1]; clamped to [min(), max()].
  /// Returns 0 when empty.
  double Quantile(double q) const;

  /// One aggregation pass feeding every derived statistic: the scrape
  /// path calls this once instead of re-walking the stripes per field.
  struct Digest {
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  Digest GetDigest() const;

  /// Index of the bucket `value` falls in.
  static int BucketIndex(double value);
  /// Lower/upper value edges of bucket `index` (bucket 0 starts at 0).
  static double BucketLowerEdge(int index);
  static double BucketUpperEdge(int index);
  /// Aggregated copy of the bucket counts.
  std::array<uint64_t, kNumBuckets> buckets() const;

 private:
  /// One writer shard. alignas(64) keeps stripes on distinct cache
  /// lines so two threads recording concurrently never false-share.
  struct alignas(64) Stripe {
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
    std::atomic<double> sum{0.0};
  };

  static size_t StripeIndex();
  /// Sums the stripes into `*out`; returns the total count.
  uint64_t AggregateBuckets(std::array<uint64_t, kNumBuckets>* out) const;
  static double QuantileFromBuckets(
      const std::array<uint64_t, kNumBuckets>& buckets, uint64_t count,
      double min, double max, double q);

  std::array<Stripe, kStripes> stripes_;
  /// Running extremes; +/-inf sentinels until the first Record lands.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Point-in-time copy of one metric, for reports and tests.
struct MetricSnapshot {
  std::string name;
  /// Prometheus-style label block without braces, e.g. `class="1"`.
  std::string labels;
  MetricKind kind = MetricKind::kCounter;
  /// Counter or gauge value.
  double value = 0.0;
  /// Histogram-only fields.
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Named metric store. Get* registers on first use and returns the same
/// stable pointer on every later call with the same (name, labels) pair;
/// asking for an existing name with a different kind aborts. Lookup and
/// export take an internal mutex, but the metric objects themselves are
/// lock-free (atomic counters/gauges, striped-atomic histograms), so the
/// registry mutex is off the sample path entirely: hot paths cache the
/// Get* pointer once and record with relaxed atomics, and many
/// replication workers may hammer one shared registry.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name,
                      const std::string& labels = "");
  Gauge* GetGauge(const std::string& name, const std::string& labels = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& labels = "");

  size_t size() const;

  std::vector<MetricSnapshot> Snapshot() const;

  /// Registers `alias` as a deprecated exposition-only alias of the
  /// family `canonical`: WritePrometheus and WriteVarzJson re-emit every
  /// (canonical, labels) sample under the alias name, marked deprecated.
  /// Snapshot() stays canonical-only, so internal consumers never see
  /// doubled series. Used to keep one release of backward compatibility
  /// across metric renames.
  void AddAlias(const std::string& alias, const std::string& canonical);

  /// Prometheus text exposition: `# TYPE` per family, one sample line per
  /// metric; histograms are rendered as summaries with quantile labels
  /// (0.5 / 0.95 / 0.99 / 1 = max) plus _sum and _count. Aliased families
  /// are appended after the canonical ones.
  void WritePrometheus(std::ostream& out) const;

  /// JSON dump for `GET /varz` and scripts: an object keyed by sample
  /// name (labels inline, JSON-escaped); counters/gauges map to numbers,
  /// histograms to {count, sum, min, max, p50, p95, p99} objects. An
  /// `aliases` object maps deprecated names to canonical ones.
  void WriteVarzJson(std::ostream& out) const;

 private:
  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(const std::string& name, const std::string& labels,
                      MetricKind kind);

  mutable std::mutex mu_;
  /// Ordered by (name, labels) so exposition groups families naturally.
  std::map<std::pair<std::string, std::string>, Entry> entries_;
  /// alias family name -> canonical family name.
  std::map<std::string, std::string> aliases_;
};

}  // namespace qsched::obs

#endif  // QSCHED_OBS_METRICS_H_
