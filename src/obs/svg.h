#ifndef QSCHED_OBS_SVG_H_
#define QSCHED_OBS_SVG_H_

#include <string>
#include <vector>

namespace qsched::obs {

/// One plotted series. `color_slot` indexes the document's categorical
/// palette (CSS custom properties --series-1..--series-8); the slot is
/// assigned to the entity (service class) once and reused across every
/// chart so color follows identity.
struct SvgSeries {
  std::string label;
  std::vector<double> xs;
  std::vector<double> ys;
  int color_slot = 1;
  bool dashed = false;
};

/// Horizontal reference line (an SLO goal). Colored like the series of
/// the class it belongs to; drawn dashed so it never reads as data.
struct SvgReferenceLine {
  std::string label;
  double y = 0.0;
  int color_slot = 1;
};

/// A single line chart rendered as one self-contained inline <svg>.
/// Axes, gridlines and text use the document's chrome custom properties
/// (--grid, --axis, --ink-muted, --ink-secondary).
struct SvgChartSpec {
  std::string x_label;
  std::string y_label;
  std::vector<SvgSeries> series;
  std::vector<SvgReferenceLine> reference_lines;
  int width = 760;
  int height = 300;
  /// Force the y range; when min >= max the range is derived from data
  /// (padded, zero-anchored when all values are non-negative and near 0).
  double y_min = 0.0;
  double y_max = 0.0;
  /// Draw circle markers with native <title> hover tooltips when a
  /// series has at most this many points (dense series stay line-only).
  int max_marker_points = 96;
};

/// Escapes &, <, >, " for text nodes and attribute values.
std::string HtmlEscape(const std::string& text);

/// Renders the chart. Empty/degenerate input produces a valid empty
/// chart frame rather than failing.
std::string RenderLineChart(const SvgChartSpec& spec);

/// Renders the series as a stacked area chart: series[0] is the bottom
/// band, each later series stacks on the running total — made for
/// additive breakdowns (per-stage latency summing to end-to-end). Every
/// series is sampled at series[0].xs; shorter series are treated as 0
/// beyond their length. Same axes/legend/empty-input behavior as
/// RenderLineChart; reference lines apply to the stacked total.
std::string RenderStackedAreaChart(const SvgChartSpec& spec);

}  // namespace qsched::obs

#endif  // QSCHED_OBS_SVG_H_
