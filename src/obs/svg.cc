#include "obs/svg.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "common/strings.h"

namespace qsched::obs {

namespace {

constexpr double kMarginLeft = 56.0;
constexpr double kMarginRight = 16.0;
constexpr double kMarginTop = 22.0;
constexpr double kMarginBottom = 40.0;

/// Largest "nice" step (1/2/5 x 10^k) giving at most `max_ticks` ticks
/// over `span`.
double NiceStep(double span, int max_ticks) {
  if (span <= 0.0) return 1.0;
  double rough = span / static_cast<double>(max_ticks);
  double magnitude = std::pow(10.0, std::floor(std::log10(rough)));
  for (double mult : {1.0, 2.0, 5.0, 10.0}) {
    if (magnitude * mult >= rough) return magnitude * mult;
  }
  return magnitude * 10.0;
}

/// Tick label: trims trailing zeros, switches to scientific form for
/// very large/small magnitudes (cost limits in timerons).
std::string TickLabel(double value) {
  double magnitude = std::abs(value);
  if (magnitude >= 1e5) {
    return StrPrintf("%.3gk", value / 1000.0);
  }
  if (magnitude > 0.0 && magnitude < 1e-3) {
    return StrPrintf("%.1e", value);
  }
  std::string text = StrPrintf("%.4g", value);
  return text;
}

struct Range {
  double min = 0.0;
  double max = 1.0;
};

Range DataRange(const SvgChartSpec& spec) {
  Range range;
  if (spec.y_min < spec.y_max) {
    range.min = spec.y_min;
    range.max = spec.y_max;
    return range;
  }
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const SvgSeries& series : spec.series) {
    for (double y : series.ys) {
      lo = std::min(lo, y);
      hi = std::max(hi, y);
    }
  }
  for (const SvgReferenceLine& line : spec.reference_lines) {
    lo = std::min(lo, line.y);
    hi = std::max(hi, line.y);
  }
  if (!(lo <= hi)) return range;  // no data
  // Zero-anchor non-negative data (bars-law honesty also suits lines
  // whose magnitude matters); pad 8% headroom at the top.
  if (lo >= 0.0) lo = 0.0;
  double pad = 0.08 * (hi - lo);
  if (pad <= 0.0) pad = hi != 0.0 ? 0.08 * std::abs(hi) : 1.0;
  range.min = lo;
  range.max = hi + pad;
  return range;
}

Range XRange(const SvgChartSpec& spec) {
  Range range;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const SvgSeries& series : spec.series) {
    for (double x : series.xs) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
  }
  if (!(lo < hi)) {
    range.min = lo <= hi ? lo - 0.5 : 0.0;
    range.max = lo <= hi ? hi + 0.5 : 1.0;
    return range;
  }
  range.min = lo;
  range.max = hi;
  return range;
}

}  // namespace

std::string HtmlEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string RenderLineChart(const SvgChartSpec& spec) {
  double w = static_cast<double>(spec.width);
  double h = static_cast<double>(spec.height);
  double plot_w = w - kMarginLeft - kMarginRight;
  double plot_h = h - kMarginTop - kMarginBottom;
  Range xr = XRange(spec);
  Range yr = DataRange(spec);

  auto x_of = [&](double x) {
    return kMarginLeft + (x - xr.min) / (xr.max - xr.min) * plot_w;
  };
  auto y_of = [&](double y) {
    return kMarginTop + (1.0 - (y - yr.min) / (yr.max - yr.min)) * plot_h;
  };

  std::string svg = StrPrintf(
      "<svg viewBox=\"0 0 %d %d\" width=\"%d\" height=\"%d\" "
      "style=\"max-width:100%%;height:auto\" role=\"img\" "
      "font-family=\"system-ui,-apple-system,'Segoe UI',sans-serif\">\n",
      spec.width, spec.height, spec.width, spec.height);

  // Horizontal gridlines + y tick labels (recessive hairlines).
  double y_step = NiceStep(yr.max - yr.min, 5);
  double first_tick = std::ceil(yr.min / y_step) * y_step;
  for (double tick = first_tick; tick <= yr.max + 1e-9 * y_step;
       tick += y_step) {
    double py = y_of(tick);
    svg += StrPrintf(
        "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
        "stroke=\"var(--grid)\" stroke-width=\"1\"/>\n",
        kMarginLeft, py, w - kMarginRight, py);
    svg += StrPrintf(
        "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"end\" "
        "font-size=\"11\" fill=\"var(--ink-muted)\">%s</text>\n",
        kMarginLeft - 6.0, py + 3.5, TickLabel(tick).c_str());
  }

  // X ticks along the baseline.
  double x_step = NiceStep(xr.max - xr.min, 7);
  double first_x = std::ceil(xr.min / x_step) * x_step;
  for (double tick = first_x; tick <= xr.max + 1e-9 * x_step;
       tick += x_step) {
    double px = x_of(tick);
    svg += StrPrintf(
        "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
        "stroke=\"var(--axis)\" stroke-width=\"1\"/>\n",
        px, h - kMarginBottom, px, h - kMarginBottom + 4.0);
    svg += StrPrintf(
        "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" "
        "font-size=\"11\" fill=\"var(--ink-muted)\">%s</text>\n",
        px, h - kMarginBottom + 16.0, TickLabel(tick).c_str());
  }

  // Baseline axis.
  svg += StrPrintf(
      "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
      "stroke=\"var(--axis)\" stroke-width=\"1\"/>\n",
      kMarginLeft, h - kMarginBottom, w - kMarginRight,
      h - kMarginBottom);

  // Axis titles: y horizontal at top-left, x centered underneath.
  if (!spec.y_label.empty()) {
    svg += StrPrintf(
        "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" "
        "fill=\"var(--ink-secondary)\">%s</text>\n",
        2.0, 12.0, HtmlEscape(spec.y_label).c_str());
  }
  if (!spec.x_label.empty()) {
    svg += StrPrintf(
        "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" "
        "font-size=\"11\" fill=\"var(--ink-secondary)\">%s</text>\n",
        kMarginLeft + plot_w / 2.0, h - 6.0,
        HtmlEscape(spec.x_label).c_str());
  }

  // Reference (goal) lines: dashed, entity-colored, labeled at the
  // right edge.
  for (const SvgReferenceLine& line : spec.reference_lines) {
    if (line.y < yr.min || line.y > yr.max) continue;
    double py = y_of(line.y);
    svg += StrPrintf(
        "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
        "stroke=\"var(--series-%d)\" stroke-width=\"1.5\" "
        "stroke-dasharray=\"6 4\" opacity=\"0.7\"/>\n",
        kMarginLeft, py, w - kMarginRight, py, line.color_slot);
    svg += StrPrintf(
        "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"end\" "
        "font-size=\"10\" fill=\"var(--ink-secondary)\">%s</text>\n",
        w - kMarginRight - 2.0, py - 4.0,
        HtmlEscape(line.label).c_str());
  }

  // Series polylines (2px) plus hover markers when sparse enough.
  for (const SvgSeries& series : spec.series) {
    size_t n = std::min(series.xs.size(), series.ys.size());
    if (n == 0) continue;
    std::string points;
    for (size_t i = 0; i < n; ++i) {
      points += StrPrintf("%.1f,%.1f ", x_of(series.xs[i]),
                          y_of(series.ys[i]));
    }
    svg += StrPrintf(
        "<polyline points=\"%s\" fill=\"none\" "
        "stroke=\"var(--series-%d)\" stroke-width=\"2\" "
        "stroke-linejoin=\"round\"%s><title>%s</title></polyline>\n",
        points.c_str(), series.color_slot,
        series.dashed ? " stroke-dasharray=\"4 3\"" : "",
        HtmlEscape(series.label).c_str());
    if (n <= static_cast<size_t>(spec.max_marker_points)) {
      for (size_t i = 0; i < n; ++i) {
        svg += StrPrintf(
            "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"3\" "
            "fill=\"var(--series-%d)\" stroke=\"var(--surface)\" "
            "stroke-width=\"1\"><title>%s: (%s, %s)</title></circle>\n",
            x_of(series.xs[i]), y_of(series.ys[i]), series.color_slot,
            HtmlEscape(series.label).c_str(),
            TickLabel(series.xs[i]).c_str(),
            TickLabel(series.ys[i]).c_str());
      }
    }
  }

  // Legend: always present for >= 2 series, top-right inside the plot;
  // a single series is named by the chart heading instead.
  if (spec.series.size() >= 2) {
    double lx = w - kMarginRight - 8.0;
    double ly = kMarginTop + 4.0;
    double row = 0.0;
    for (const SvgSeries& series : spec.series) {
      double ty = ly + row * 16.0;
      svg += StrPrintf(
          "<rect x=\"%.1f\" y=\"%.1f\" width=\"10\" height=\"10\" "
          "rx=\"2\" fill=\"var(--series-%d)\"/>\n",
          lx - 10.0, ty, series.color_slot);
      svg += StrPrintf(
          "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"end\" "
          "font-size=\"11\" fill=\"var(--ink-secondary)\">%s</text>\n",
          lx - 16.0, ty + 9.0, HtmlEscape(series.label).c_str());
      row += 1.0;
    }
  }

  svg += "</svg>\n";
  return svg;
}

std::string RenderStackedAreaChart(const SvgChartSpec& spec) {
  // The x grid is series[0]'s; band k fills between the cumulative sum
  // up to k-1 and up to k.
  size_t n = spec.series.empty() ? 0 : spec.series[0].xs.size();
  std::vector<double> cumulative(n, 0.0);
  std::vector<std::vector<double>> uppers;
  uppers.reserve(spec.series.size());
  for (const SvgSeries& series : spec.series) {
    for (size_t i = 0; i < n; ++i) {
      double y = i < series.ys.size() ? series.ys[i] : 0.0;
      cumulative[i] += std::max(y, 0.0);
    }
    uppers.push_back(cumulative);
  }

  // Borrow the line renderer for frame, axes, ticks and legend by
  // rendering the cumulative curves, then splice the filled bands in
  // front of the polylines' position in the document (SVG paints in
  // order, so bands must come before the lines and markers).
  SvgChartSpec frame_spec = spec;
  for (size_t k = 0; k < frame_spec.series.size(); ++k) {
    frame_spec.series[k].xs = std::vector<double>(
        spec.series[0].xs.begin(),
        spec.series[0].xs.begin() + static_cast<std::ptrdiff_t>(n));
    frame_spec.series[k].ys = uppers[k];
    frame_spec.series[k].dashed = false;
  }
  std::string svg = RenderLineChart(frame_spec);

  if (n < 2) return svg;
  double w = static_cast<double>(spec.width);
  double h = static_cast<double>(spec.height);
  double plot_w = w - kMarginLeft - kMarginRight;
  double plot_h = h - kMarginTop - kMarginBottom;
  Range xr = XRange(frame_spec);
  Range yr = DataRange(frame_spec);
  auto x_of = [&](double x) {
    return kMarginLeft + (x - xr.min) / (xr.max - xr.min) * plot_w;
  };
  auto y_of = [&](double y) {
    return kMarginTop + (1.0 - (y - yr.min) / (yr.max - yr.min)) * plot_h;
  };

  std::string bands;
  for (size_t k = 0; k < uppers.size(); ++k) {
    std::string points;
    for (size_t i = 0; i < n; ++i) {
      points += StrPrintf("%.1f,%.1f ", x_of(spec.series[0].xs[i]),
                          y_of(uppers[k][i]));
    }
    for (size_t i = n; i-- > 0;) {
      double lower = k == 0 ? 0.0 : uppers[k - 1][i];
      points += StrPrintf("%.1f,%.1f ", x_of(spec.series[0].xs[i]),
                          y_of(std::max(lower, yr.min)));
    }
    bands += StrPrintf(
        "<polygon points=\"%s\" fill=\"var(--series-%d)\" "
        "fill-opacity=\"0.55\" stroke=\"none\"><title>%s</title>"
        "</polygon>\n",
        points.c_str(), spec.series[k].color_slot,
        HtmlEscape(spec.series[k].label).c_str());
  }
  // Bands go right before the first polyline so gridlines stay beneath
  // them but series outlines and legend stay on top.
  size_t insert_at = svg.find("<polyline");
  if (insert_at == std::string::npos) insert_at = svg.find("</svg>");
  svg.insert(insert_at, bands);
  return svg;
}

}  // namespace qsched::obs
