#ifndef QSCHED_OBS_SPAN_H_
#define QSCHED_OBS_SPAN_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <ostream>
#include <unordered_map>

namespace qsched::obs {

/// Per-query timeline: the sim-time stamp of every lifecycle transition a
/// query goes through. Stages a query skipped (e.g. OLTP bypasses the
/// interceptor queue) stay at -1.
struct QuerySpan {
  uint64_t query_id = 0;
  int class_id = 0;
  bool is_oltp = false;
  double submit_time = -1.0;    // handed to the frontend
  double classify_time = -1.0;  // classifier accepted the class
  double enqueue_time = -1.0;   // visible in the control table, blocked
  double dispatch_time = -1.0;  // released by the dispatcher
  double exec_start_time = -1.0;
  double end_time = -1.0;  // completed or cancelled
  bool cancelled = false;

  bool Closed() const { return end_time >= 0.0; }
};

/// Collects QuerySpans: transitions update an open-span table keyed by
/// query id; completion/cancellation closes the span into a bounded log
/// (drop-oldest, with a dropped counter). Transition calls for unknown
/// ids are ignored, so partially instrumented paths degrade gracefully.
class SpanLog {
 public:
  explicit SpanLog(size_t capacity = 1 << 20);

  SpanLog(const SpanLog&) = delete;
  SpanLog& operator=(const SpanLog&) = delete;

  void OnSubmit(uint64_t query_id, int class_id, bool is_oltp, double now);
  void OnClassify(uint64_t query_id, double now);
  void OnEnqueue(uint64_t query_id, double now);
  void OnDispatch(uint64_t query_id, double now);
  /// Closes the span as completed. `exec_start` backfills the engine
  /// start stamp (completion records carry it; the engine itself is not
  /// span-aware).
  void OnComplete(uint64_t query_id, double exec_start, double end);
  /// Closes the span as cancelled.
  void OnCancel(uint64_t query_id, double now);

  size_t open_count() const { return open_.size(); }
  uint64_t closed_total() const { return closed_total_; }
  uint64_t dropped() const { return dropped_; }
  const std::deque<QuerySpan>& closed() const { return closed_; }
  /// nullptr when the id has no open span.
  const QuerySpan* FindOpen(uint64_t query_id) const;

  /// Chrome trace_event JSON (load in chrome://tracing or Perfetto).
  /// One track (tid) per service class; each query contributes up to
  /// three slices: `intercept` (submit -> enqueue), `queued`
  /// (enqueue -> dispatch; `cancelled` when it never ran) and `exec`
  /// (exec start -> end). Sim seconds map to trace microseconds.
  void WriteChromeTrace(std::ostream& out) const;

 private:
  void Close(uint64_t query_id, double end, bool cancelled);

  size_t capacity_;
  std::unordered_map<uint64_t, QuerySpan> open_;
  std::deque<QuerySpan> closed_;
  uint64_t closed_total_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace qsched::obs

#endif  // QSCHED_OBS_SPAN_H_
