#include "obs/slo_monitor.h"

#include <algorithm>

#include "common/strings.h"

namespace qsched::obs {

std::string ToJson(const SloViolationEvent& event) {
  return StrPrintf(
      "{\"type\":\"slo_violation\",\"class_id\":%d,"
      "\"start_interval\":%llu,\"start_time\":%.9g,"
      "\"end_interval\":%llu,\"end_time\":%.9g,\"intervals\":%d,"
      "\"worst_ratio\":%.9g,\"duration\":%.9g,\"open\":%s}",
      event.class_id,
      static_cast<unsigned long long>(event.start_interval),
      event.start_time,
      static_cast<unsigned long long>(event.end_interval), event.end_time,
      event.intervals, event.worst_ratio, event.duration,
      event.open ? "true" : "false");
}

SloMonitor::SloMonitor(Options options) : options_(options) {
  if (options_.window < 1) options_.window = 1;
}

void SloMonitor::Observe(int class_id, uint64_t interval, double sim_time,
                         double goal_ratio) {
  std::lock_guard<std::mutex> lock(mu_);
  ClassState& state = classes_[class_id];
  bool met = goal_ratio >= 1.0;
  ++state.observed;
  if (met) ++state.met;
  state.recent_met.push_back(met);
  while (state.recent_met.size() >
         static_cast<size_t>(options_.window)) {
    state.recent_met.pop_front();
  }
  size_t met_in_window = 0;
  for (bool m : state.recent_met) {
    if (m) ++met_in_window;
  }
  state.attainment_series.emplace_back(
      sim_time, static_cast<double>(met_in_window) /
                    static_cast<double>(state.recent_met.size()));

  if (!met) {
    if (!state.violating) {
      state.violating = true;
      state.current = SloViolationEvent();
      state.current.class_id = class_id;
      state.current.start_interval = interval;
      state.current.start_time = sim_time;
      state.current.worst_ratio = goal_ratio;
    }
    state.current.end_interval = interval;
    state.current.end_time = sim_time;
    state.current.duration =
        state.current.end_time - state.current.start_time;
    state.current.worst_ratio =
        std::min(state.current.worst_ratio, goal_ratio);
    ++state.current.intervals;
  } else if (state.violating) {
    state.violating = false;
    state.current.open = false;
    closed_.push_back(state.current);
  }
}

double SloMonitor::RollingAttainment(int class_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = classes_.find(class_id);
  if (it == classes_.end() || it->second.attainment_series.empty()) {
    return 0.0;
  }
  return it->second.attainment_series.back().second;
}

double SloMonitor::OverallAttainment(int class_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = classes_.find(class_id);
  if (it == classes_.end() || it->second.observed == 0) return 0.0;
  return static_cast<double>(it->second.met) /
         static_cast<double>(it->second.observed);
}

uint64_t SloMonitor::intervals_observed(int class_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = classes_.find(class_id);
  return it == classes_.end() ? 0 : it->second.observed;
}

std::vector<int> SloMonitor::ObservedClasses() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> ids;
  ids.reserve(classes_.size());
  for (const auto& [class_id, state] : classes_) {
    if (state.observed > 0) ids.push_back(class_id);
  }
  return ids;
}

std::vector<SloViolationEvent> SloMonitor::EventsLocked() const {
  std::vector<SloViolationEvent> events = closed_;
  for (const auto& [class_id, state] : classes_) {
    if (state.violating) {
      SloViolationEvent open_event = state.current;
      open_event.open = true;
      events.push_back(open_event);
    }
  }
  // Closed events accumulate across classes in time order already;
  // re-sort so per-class open events interleave deterministically.
  std::stable_sort(events.begin(), events.end(),
                   [](const SloViolationEvent& a,
                      const SloViolationEvent& b) {
                     if (a.start_interval != b.start_interval) {
                       return a.start_interval < b.start_interval;
                     }
                     return a.class_id < b.class_id;
                   });
  return events;
}

std::vector<SloViolationEvent> SloMonitor::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return EventsLocked();
}

std::vector<SloViolationEvent> SloMonitor::EventsFor(int class_id) const {
  std::vector<SloViolationEvent> all = Events();
  std::vector<SloViolationEvent> mine;
  for (const SloViolationEvent& event : all) {
    if (event.class_id == class_id) mine.push_back(event);
  }
  return mine;
}

std::vector<std::pair<double, double>> SloMonitor::AttainmentSeries(
    int class_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = classes_.find(class_id);
  if (it == classes_.end()) return {};
  return it->second.attainment_series;
}

void SloMonitor::WriteEventsJsonl(std::ostream& out) const {
  std::vector<SloViolationEvent> events = Events();
  for (const SloViolationEvent& event : events) {
    out << ToJson(event) << "\n";
  }
}

}  // namespace qsched::obs
