#include "obs/http_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/strings.h"
#include "obs/metrics.h"

namespace qsched::obs {

namespace {

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Internal Server Error";
  }
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out = StrPrintf(
      "HTTP/1.0 %d %s\r\n"
      "Content-Type: %s\r\n"
      "Content-Length: %zu\r\n"
      "Connection: close\r\n"
      "\r\n",
      response.status, StatusText(response.status),
      response.content_type.c_str(), response.body.size());
  out += response.body;
  return out;
}

}  // namespace

HttpServer::HttpServer(const HttpServerOptions& options)
    : options_(options) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::AddHandler(const std::string& path, Handler handler) {
  std::lock_guard<std::mutex> lock(handlers_mu_);
  handlers_[path] = std::move(handler);
}

Status HttpServer::Start() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (started_) {
      return Status::FailedPrecondition("http server already started");
    }
  }

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(StrPrintf("socket: %s", strerror(errno)));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument(
        StrPrintf("bad bind address %s", options_.bind_address.c_str()));
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Status::Internal(StrPrintf(
        "bind %s:%u: %s", options_.bind_address.c_str(),
        static_cast<unsigned>(options_.port), strerror(errno)));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                  &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  if (listen(listen_fd_, 64) < 0 || !SetNonBlocking(listen_fd_)) {
    Status status =
        Status::Internal(StrPrintf("listen: %s", strerror(errno)));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }

  int pipe_fds[2];
  if (pipe(pipe_fds) < 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(StrPrintf("pipe: %s", strerror(errno)));
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  SetNonBlocking(wake_read_fd_);
  SetNonBlocking(wake_write_fd_);

  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    started_ = true;
  }
  thread_ = std::thread([this] { ServerLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (!started_ || stopped_) return;
    stopped_ = true;
  }
  stop_requested_.store(true);
  if (wake_write_fd_ >= 0) {
    char byte = 1;
    ssize_t ignored = write(wake_write_fd_, &byte, 1);
    (void)ignored;
  }
  if (thread_.joinable()) thread_.join();
  if (wake_write_fd_ >= 0) close(wake_write_fd_);
  if (wake_read_fd_ >= 0) close(wake_read_fd_);
  wake_write_fd_ = -1;
  wake_read_fd_ = -1;
}

void HttpServer::ServerLoop() {
  while (!stop_requested_.load()) {
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_read_fd_, POLLIN, 0});
    for (const Connection& conn : conns_) {
      short events = conn.responding ? POLLOUT : POLLIN;
      fds.push_back({conn.fd, events, 0});
    }
    int ready = poll(fds.data(), fds.size(), /*timeout_ms=*/250);
    if (ready < 0 && errno != EINTR) break;
    if (stop_requested_.load()) break;
    if (ready <= 0) continue;

    if (fds[1].revents & POLLIN) {
      char drain[64];
      while (read(wake_read_fd_, drain, sizeof(drain)) > 0) {
      }
    }
    // Only the first `polled` connections have a pollfd this round;
    // AcceptNew appends past them, and those get polled next iteration.
    size_t polled = fds.size() - 2;
    if (fds[0].revents & POLLIN) AcceptNew();

    // Walk connections back to front so erasing is index-stable; fds[i+2]
    // pairs with conns_[i] because both were built together above.
    for (size_t i = polled; i-- > 0;) {
      Connection& conn = conns_[i];
      short revents = fds[i + 2].revents;
      if (revents == 0) continue;
      bool keep = true;
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
        keep = conn.responding && (revents & POLLHUP) == 0;
      }
      if (keep && !conn.responding && (revents & POLLIN)) {
        keep = ReadFromConnection(&conn);
      }
      if (keep && conn.responding) {
        keep = FlushConnection(&conn);
      }
      if (!keep) {
        close(conn.fd);
        conns_.erase(conns_.begin() + static_cast<ptrdiff_t>(i));
      }
    }
  }

  for (Connection& conn : conns_) close(conn.fd);
  conns_.clear();
  if (listen_fd_ >= 0) close(listen_fd_);
  listen_fd_ = -1;
}

void HttpServer::AcceptNew() {
  while (true) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    if (conns_.size() >=
            static_cast<size_t>(std::max(1, options_.max_connections)) ||
        !SetNonBlocking(fd)) {
      close(fd);
      ++connections_refused_;
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Connection conn;
    conn.fd = fd;
    conns_.push_back(std::move(conn));
  }
}

bool HttpServer::ReadFromConnection(Connection* conn) {
  char buf[4096];
  while (true) {
    ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->inbuf.append(buf, static_cast<size_t>(n));
      if (conn->inbuf.size() > options_.max_request_bytes) {
        conn->outbuf = SerializeResponse(
            {400, "text/plain; charset=utf-8", "request too large\n"});
        conn->responding = true;
        ++requests_served_;
        ++requests_failed_;
        return true;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF or error before a complete request
  }
  // A request is complete once the header block ends; everything after
  // the request line is ignored (GET has no body).
  size_t header_end = conn->inbuf.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    header_end = conn->inbuf.find("\n\n");
  }
  size_t line_end = conn->inbuf.find('\n');
  if (header_end == std::string::npos || line_end == std::string::npos) {
    return true;  // keep reading
  }
  std::string request_line = conn->inbuf.substr(0, line_end);
  if (!request_line.empty() && request_line.back() == '\r') {
    request_line.pop_back();
  }
  conn->outbuf = RespondTo(request_line);
  conn->responding = true;
  return true;
}

std::string HttpServer::RespondTo(const std::string& request_line) {
  ++requests_served_;
  // "GET /path HTTP/1.x" — method, target, version.
  size_t method_end = request_line.find(' ');
  if (method_end == std::string::npos) {
    ++requests_failed_;
    return SerializeResponse(
        {400, "text/plain; charset=utf-8", "bad request\n"});
  }
  std::string method = request_line.substr(0, method_end);
  size_t target_start = method_end + 1;
  size_t target_end = request_line.find(' ', target_start);
  std::string target =
      target_end == std::string::npos
          ? request_line.substr(target_start)
          : request_line.substr(target_start, target_end - target_start);
  if (method != "GET" && method != "HEAD") {
    ++requests_failed_;
    return SerializeResponse(
        {405, "text/plain; charset=utf-8", "only GET is supported\n"});
  }
  // Exact path match, query string stripped.
  std::string path = target.substr(0, target.find('?'));
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(handlers_mu_);
    auto it = handlers_.find(path);
    if (it != handlers_.end()) handler = it->second;
  }
  if (!handler) {
    ++requests_failed_;
    std::string body = "not found; registered paths:\n";
    std::lock_guard<std::mutex> lock(handlers_mu_);
    for (const auto& [registered, unused] : handlers_) {
      body += "  " + registered + "\n";
    }
    return SerializeResponse({404, "text/plain; charset=utf-8", body});
  }
  HttpResponse response = handler();
  std::string bytes = SerializeResponse(response);
  // HEAD keeps the true Content-Length but sends no body.
  if (method == "HEAD") bytes.resize(bytes.size() - response.body.size());
  return bytes;
}

bool HttpServer::FlushConnection(Connection* conn) {
  while (conn->out_offset < conn->outbuf.size()) {
    ssize_t n = write(conn->fd, conn->outbuf.data() + conn->out_offset,
                      conn->outbuf.size() - conn->out_offset);
    if (n > 0) {
      conn->out_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;  // peer went away mid-response
  }
  return false;  // fully flushed; HTTP/1.0 close-after-response
}

void InstallRegistryHandlers(HttpServer* server, Registry* registry) {
  server->AddHandler("/metrics", [registry] {
    std::ostringstream out;
    registry->WritePrometheus(out);
    return HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                        out.str()};
  });
  server->AddHandler("/varz", [registry] {
    std::ostringstream out;
    registry->WriteVarzJson(out);
    return HttpResponse{200, "application/json", out.str()};
  });
}

void InstallHealthHandler(HttpServer* server,
                          std::function<std::string()> state_fn) {
  server->AddHandler("/healthz", [state_fn = std::move(state_fn)] {
    std::string state = state_fn();
    int status = state == "accepting" ? 200 : 503;
    return HttpResponse{status, "text/plain; charset=utf-8", state + "\n"};
  });
}

}  // namespace qsched::obs
