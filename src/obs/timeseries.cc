#include "obs/timeseries.h"

#include <utility>

#include "common/strings.h"

namespace qsched::obs {

TimeSeriesRecorder::TimeSeriesRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void TimeSeriesRecorder::Append(IntervalRow row) {
  std::lock_guard<std::mutex> lock(mu_);
  if (rows_.size() >= capacity_) {
    rows_.pop_front();
    ++dropped_;
  }
  rows_.push_back(std::move(row));
}

size_t TimeSeriesRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_.size();
}

uint64_t TimeSeriesRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<IntervalRow> TimeSeriesRecorder::Rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<IntervalRow>(rows_.begin(), rows_.end());
}

void TimeSeriesRecorder::WriteCsv(std::ostream& out) const {
  std::vector<IntervalRow> rows = Rows();
  out << "interval,sim_time,class_id,is_oltp,cost_limit,measured,"
         "goal_ratio,queue_depth,admitted_cost,completed_in_interval,"
         "solver_wall_seconds,solver_utility,"
         "stage_gateway_queue_seconds,stage_dispatch_seconds,"
         "stage_execute_seconds\n";
  for (const IntervalRow& row : rows) {
    for (const IntervalClassSample& cls : row.classes) {
      out << StrPrintf(
          "%llu,%.9g,%d,%d,%.9g,%.9g,%.9g,%d,%.9g,%d,%.9g,%.9g,"
          "%.9g,%.9g,%.9g\n",
          static_cast<unsigned long long>(row.interval), row.sim_time,
          cls.class_id, cls.is_oltp ? 1 : 0, cls.cost_limit, cls.measured,
          cls.goal_ratio, cls.queue_depth, cls.admitted_cost,
          cls.completed_in_interval, row.solver_wall_seconds,
          row.solver_utility, cls.stage_gateway_queue_seconds,
          cls.stage_dispatch_seconds, cls.stage_execute_seconds);
    }
  }
}

void TimeSeriesRecorder::WriteJson(std::ostream& out) const {
  std::vector<IntervalRow> rows = Rows();
  out << "[";
  for (size_t i = 0; i < rows.size(); ++i) {
    const IntervalRow& row = rows[i];
    if (i > 0) out << ",";
    out << StrPrintf(
        "\n{\"interval\":%llu,\"sim_time\":%.9g,"
        "\"solver_wall_seconds\":%.9g,\"solver_utility\":%.9g,"
        "\"classes\":[",
        static_cast<unsigned long long>(row.interval), row.sim_time,
        row.solver_wall_seconds, row.solver_utility);
    for (size_t c = 0; c < row.classes.size(); ++c) {
      const IntervalClassSample& cls = row.classes[c];
      if (c > 0) out << ",";
      out << StrPrintf(
          "{\"class_id\":%d,\"is_oltp\":%s,\"cost_limit\":%.9g,"
          "\"measured\":%.9g,\"goal_ratio\":%.9g,\"queue_depth\":%d,"
          "\"admitted_cost\":%.9g,\"completed_in_interval\":%d,"
          "\"stage_gateway_queue_seconds\":%.9g,"
          "\"stage_dispatch_seconds\":%.9g,"
          "\"stage_execute_seconds\":%.9g}",
          cls.class_id, cls.is_oltp ? "true" : "false", cls.cost_limit,
          cls.measured, cls.goal_ratio, cls.queue_depth,
          cls.admitted_cost, cls.completed_in_interval,
          cls.stage_gateway_queue_seconds, cls.stage_dispatch_seconds,
          cls.stage_execute_seconds);
    }
    out << "]}";
  }
  out << "\n]\n";
}

}  // namespace qsched::obs
