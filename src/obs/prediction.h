#ifndef QSCHED_OBS_PREDICTION_H_
#define QSCHED_OBS_PREDICTION_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <ostream>
#include <vector>

namespace qsched::obs {

/// One model prediction and (once the next interval lands) the value the
/// system actually delivered. The Scheduling Planner predicts at interval
/// k what each class's performance will be at interval k+1 under the plan
/// it just enforced; the record resolves when k+1's measurement arrives.
struct PredictionRecord {
  /// Interval the prediction was made at (k).
  uint64_t predicted_at = 0;
  /// Interval the prediction targets (k+1) and resolves against.
  uint64_t target_interval = 0;
  int class_id = 0;
  bool is_oltp = false;
  /// Predicted velocity (OLAP) or response seconds (OLTP) under the
  /// enforced plan.
  double predicted = 0.0;
  /// Observed value at target_interval; valid only when resolved.
  double observed = 0.0;
  bool resolved = false;
  /// Fitted OLTP slope s (seconds/timeron) at prediction time — the
  /// t^k = t^{k-1} + s*dC model parameter trajectory.
  double model_slope = 0.0;
};

/// Running residual summary for one class, over resolved records.
struct ResidualStats {
  uint64_t count = 0;
  /// mean |observed - predicted|.
  double mean_abs_error = 0.0;
  /// 95th percentile of |observed - predicted| (exact, by sorting).
  double p95_abs_error = 0.0;
  /// mean (observed - predicted): positive = model underpredicts.
  double bias = 0.0;
};

/// The prediction-vs-actual ledger: every per-class model prediction the
/// planner makes, matched against the next interval's measurement, with
/// running residual statistics. Thread-safe; bounded (drop-oldest).
class PredictionLedger {
 public:
  explicit PredictionLedger(size_t capacity = 1 << 16);

  PredictionLedger(const PredictionLedger&) = delete;
  PredictionLedger& operator=(const PredictionLedger&) = delete;

  /// Records a prediction made at `interval` for `interval + 1`. A still
  /// unresolved earlier prediction for the class is dropped (the planner
  /// predicts every interval, so at most one is pending per class).
  void Predict(uint64_t interval, int class_id, bool is_oltp,
               double predicted, double model_slope);

  /// Resolves the pending prediction targeting `interval` for the class
  /// with the observed measurement. No-op when none is pending (first
  /// interval) or the pending target differs.
  void Observe(uint64_t interval, int class_id, double observed);

  size_t size() const;
  uint64_t dropped() const;
  /// Copy of every retained record, oldest first (pending ones included,
  /// with resolved = false).
  std::vector<PredictionRecord> Records() const;

  ResidualStats StatsFor(int class_id) const;
  /// (interval, slope) trajectory of the fitted OLTP slope s, one point
  /// per OLTP-class prediction.
  std::vector<std::pair<uint64_t, double>> SlopeTrajectory() const;

  /// Long-format CSV of the resolved + pending records.
  void WriteCsv(std::ostream& out) const;
  /// One JSON object per record, JSONL.
  void WriteJsonl(std::ostream& out) const;

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  std::deque<PredictionRecord> records_;
  /// class_id -> index of the pending (unresolved) record, tracked by
  /// value identity via the record's target_interval.
  std::map<int, PredictionRecord*> pending_;
  /// Resolved absolute/signed errors per class, for exact percentiles.
  std::map<int, std::vector<double>> abs_errors_;
  std::map<int, double> signed_error_sum_;
  uint64_t dropped_ = 0;
};

}  // namespace qsched::obs

#endif  // QSCHED_OBS_PREDICTION_H_
