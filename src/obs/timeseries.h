#ifndef QSCHED_OBS_TIMESERIES_H_
#define QSCHED_OBS_TIMESERIES_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <vector>

namespace qsched::obs {

/// Per-class columns of one control-interval sample.
struct IntervalClassSample {
  int class_id = 0;
  bool is_oltp = false;
  /// Cost limit the Dispatcher enforces this interval (timerons).
  double cost_limit = 0.0;
  /// Accepted measurement: velocity (OLAP) or response seconds (OLTP).
  double measured = 0.0;
  /// measured relative to the SLO; >= 1 means the goal is met.
  double goal_ratio = 0.0;
  int queue_depth = 0;
  /// Cost (timerons) of queries running in the engine right now.
  double admitted_cost = 0.0;
  int completed_in_interval = 0;
  /// Mean wall-clock per-stage latency of this interval's completions
  /// (real-time runtime only — all 0 in pure DES runs, where queries
  /// carry no stage trace). Appended after the original columns so CSV
  /// consumers keyed on column order keep working.
  double stage_gateway_queue_seconds = 0.0;
  double stage_dispatch_seconds = 0.0;
  double stage_execute_seconds = 0.0;
};

/// One row per Scheduling Planner cycle: the compact per-interval table
/// every chart and CSV export reads. Rows are append-only and cheap to
/// copy out (plain data, one vector per row).
struct IntervalRow {
  uint64_t interval = 0;
  double sim_time = 0.0;
  /// Host wall-clock seconds the Performance Solver spent this cycle —
  /// the only host-dependent column.
  double solver_wall_seconds = 0.0;
  double solver_utility = 0.0;
  std::vector<IntervalClassSample> classes;
};

/// Bounded per-interval table (drop-oldest with a counter) with CSV and
/// JSON export. Append and the readers are thread-safe so parallel
/// harness code can share one recorder.
class TimeSeriesRecorder {
 public:
  explicit TimeSeriesRecorder(size_t capacity = 1 << 16);

  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

  void Append(IntervalRow row);

  size_t size() const;
  uint64_t dropped() const;
  /// Copy of every retained row, oldest first.
  std::vector<IntervalRow> Rows() const;

  /// Long-format CSV: one line per (interval, class) pair under a fixed
  /// header, interval-level columns repeated on each class line.
  void WriteCsv(std::ostream& out) const;
  /// One JSON object per row as a JSON array (pretty-printed one row per
  /// line).
  void WriteJson(std::ostream& out) const;

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  std::deque<IntervalRow> rows_;
  uint64_t dropped_ = 0;
};

}  // namespace qsched::obs

#endif  // QSCHED_OBS_TIMESERIES_H_
