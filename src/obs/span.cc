#include "obs/span.h"

#include <map>
#include <utility>

#include "common/strings.h"

namespace qsched::obs {

SpanLog::SpanLog(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

void SpanLog::OnSubmit(uint64_t query_id, int class_id, bool is_oltp,
                       double now) {
  QuerySpan span;
  span.query_id = query_id;
  span.class_id = class_id;
  span.is_oltp = is_oltp;
  span.submit_time = now;
  open_[query_id] = span;
}

void SpanLog::OnClassify(uint64_t query_id, double now) {
  auto it = open_.find(query_id);
  if (it != open_.end()) it->second.classify_time = now;
}

void SpanLog::OnEnqueue(uint64_t query_id, double now) {
  auto it = open_.find(query_id);
  if (it != open_.end()) it->second.enqueue_time = now;
}

void SpanLog::OnDispatch(uint64_t query_id, double now) {
  auto it = open_.find(query_id);
  if (it != open_.end()) it->second.dispatch_time = now;
}

void SpanLog::OnComplete(uint64_t query_id, double exec_start, double end) {
  auto it = open_.find(query_id);
  if (it == open_.end()) return;
  it->second.exec_start_time = exec_start;
  Close(query_id, end, /*cancelled=*/false);
}

void SpanLog::OnCancel(uint64_t query_id, double now) {
  Close(query_id, now, /*cancelled=*/true);
}

void SpanLog::Close(uint64_t query_id, double end, bool cancelled) {
  auto it = open_.find(query_id);
  if (it == open_.end()) return;
  QuerySpan span = it->second;
  open_.erase(it);
  span.end_time = end;
  span.cancelled = cancelled;
  if (closed_.size() >= capacity_) {
    closed_.pop_front();
    ++dropped_;
  }
  closed_.push_back(span);
  ++closed_total_;
}

const QuerySpan* SpanLog::FindOpen(uint64_t query_id) const {
  auto it = open_.find(query_id);
  return it != open_.end() ? &it->second : nullptr;
}

namespace {

constexpr double kMicrosPerSecond = 1e6;

void WriteSlice(std::ostream& out, bool* first, const char* name,
                int class_id, double t0, double t1, uint64_t query_id) {
  if (t0 < 0.0 || t1 < t0) return;
  if (!*first) out << ",\n";
  *first = false;
  out << StrPrintf(
      "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
      "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"query_id\":%llu}}",
      name, class_id, t0 * kMicrosPerSecond,
      (t1 - t0) * kMicrosPerSecond,
      static_cast<unsigned long long>(query_id));
}

}  // namespace

void SpanLog::WriteChromeTrace(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;

  // One named track per service class.
  std::map<int, bool> classes;  // class id -> is_oltp
  for (const QuerySpan& span : closed_) classes[span.class_id] = span.is_oltp;
  for (const auto& [id, span] : open_) classes[span.class_id] = span.is_oltp;
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
         "\"args\":{\"name\":\"qsched\"}}";
  first = false;
  for (const auto& [class_id, is_oltp] : classes) {
    out << ",\n"
        << StrPrintf(
               "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
               "\"tid\":%d,\"args\":{\"name\":\"class %d (%s)\"}},\n",
               class_id, class_id, is_oltp ? "OLTP" : "OLAP")
        << StrPrintf(
               "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,"
               "\"tid\":%d,\"args\":{\"sort_index\":%d}}",
               class_id, class_id);
  }

  for (const QuerySpan& span : closed_) {
    WriteSlice(out, &first, "intercept", span.class_id, span.submit_time,
               span.enqueue_time, span.query_id);
    if (span.cancelled) {
      double queued_from =
          span.enqueue_time >= 0.0 ? span.enqueue_time : span.submit_time;
      WriteSlice(out, &first, "cancelled", span.class_id, queued_from,
                 span.end_time, span.query_id);
      continue;
    }
    WriteSlice(out, &first, "queued", span.class_id, span.enqueue_time,
               span.dispatch_time, span.query_id);
    WriteSlice(out, &first, "exec", span.class_id, span.exec_start_time,
               span.end_time, span.query_id);
  }
  out << "\n]}\n";
}

}  // namespace qsched::obs
