#include "obs/audit.h"

#include <cstdlib>
#include <utility>

#include "common/strings.h"

namespace qsched::obs {

namespace {

std::string ClassToJson(const PlannerAuditClass& c) {
  return StrPrintf(
      "{\"class_id\":%d,\"is_oltp\":%s,\"goal\":%.9g,"
      "\"measured_raw\":%.9g,\"measured_smoothed\":%.9g,"
      "\"goal_ratio\":%.9g,\"completed_in_interval\":%d,"
      "\"queue_depth\":%d,\"running\":%d,\"running_cost\":%.9g,"
      "\"arrival_rate\":%.9g,\"predicted_rate\":%.9g,"
      "\"change_detected\":%s,\"target_limit\":%.9g,"
      "\"enforced_limit\":%.9g}",
      c.class_id, c.is_oltp ? "true" : "false", c.goal, c.measured_raw,
      c.measured_smoothed, c.goal_ratio, c.completed_in_interval,
      c.queue_depth, c.running, c.running_cost, c.arrival_rate,
      c.predicted_rate, c.change_detected ? "true" : "false",
      c.target_limit, c.enforced_limit);
}

/// Locates `"key":` in `json` starting at `from`; returns the index of
/// the first value character or npos.
size_t ValuePos(const std::string& json, const std::string& key,
                size_t from = 0) {
  std::string needle = "\"" + key + "\":";
  size_t at = json.find(needle, from);
  if (at == std::string::npos) return std::string::npos;
  return at + needle.size();
}

bool ReadNumber(const std::string& json, const std::string& key,
                double* out, size_t from = 0) {
  size_t at = ValuePos(json, key, from);
  if (at == std::string::npos) return false;
  const char* begin = json.c_str() + at;
  char* end = nullptr;
  double value = std::strtod(begin, &end);
  if (end == begin) return false;
  *out = value;
  return true;
}

bool ReadBool(const std::string& json, const std::string& key, bool* out,
              size_t from = 0) {
  size_t at = ValuePos(json, key, from);
  if (at == std::string::npos) return false;
  *out = json.compare(at, 4, "true") == 0;
  return true;
}

bool ReadString(const std::string& json, const std::string& key,
                std::string* out, size_t from = 0) {
  size_t at = ValuePos(json, key, from);
  if (at == std::string::npos || at >= json.size() || json[at] != '"') {
    return false;
  }
  size_t close = json.find('"', at + 1);
  if (close == std::string::npos) return false;
  *out = json.substr(at + 1, close - at - 1);
  return true;
}

bool ParseClass(const std::string& obj, PlannerAuditClass* c) {
  double value = 0.0;
  if (!ReadNumber(obj, "class_id", &value)) return false;
  c->class_id = static_cast<int>(value);
  if (!ReadBool(obj, "is_oltp", &c->is_oltp)) return false;
  if (!ReadNumber(obj, "goal", &c->goal)) return false;
  if (!ReadNumber(obj, "measured_raw", &c->measured_raw)) return false;
  if (!ReadNumber(obj, "measured_smoothed", &c->measured_smoothed)) {
    return false;
  }
  if (!ReadNumber(obj, "goal_ratio", &c->goal_ratio)) return false;
  if (!ReadNumber(obj, "completed_in_interval", &value)) return false;
  c->completed_in_interval = static_cast<int>(value);
  if (!ReadNumber(obj, "queue_depth", &value)) return false;
  c->queue_depth = static_cast<int>(value);
  if (!ReadNumber(obj, "running", &value)) return false;
  c->running = static_cast<int>(value);
  if (!ReadNumber(obj, "running_cost", &c->running_cost)) return false;
  if (!ReadNumber(obj, "arrival_rate", &c->arrival_rate)) return false;
  if (!ReadNumber(obj, "predicted_rate", &c->predicted_rate)) return false;
  if (!ReadBool(obj, "change_detected", &c->change_detected)) return false;
  if (!ReadNumber(obj, "target_limit", &c->target_limit)) return false;
  if (!ReadNumber(obj, "enforced_limit", &c->enforced_limit)) return false;
  return true;
}

}  // namespace

std::string ToJson(const PlannerAuditRecord& record) {
  std::string json = StrPrintf(
      "{\"interval\":%llu,\"sim_time\":%.9g,\"system_cost_limit\":%.9g,"
      "\"oltp_response\":%.9g,\"solver_utility\":%.9g,"
      "\"allocator\":\"%s\",\"classes\":[",
      static_cast<unsigned long long>(record.interval), record.sim_time,
      record.system_cost_limit, record.oltp_response, record.solver_utility,
      record.allocator.c_str());
  for (size_t i = 0; i < record.classes.size(); ++i) {
    if (i > 0) json += ",";
    json += ClassToJson(record.classes[i]);
  }
  json += "]}";
  return json;
}

bool ParsePlannerAuditRecord(const std::string& json,
                             PlannerAuditRecord* out) {
  *out = PlannerAuditRecord();
  double value = 0.0;
  if (!ReadNumber(json, "interval", &value)) return false;
  out->interval = static_cast<uint64_t>(value);
  if (!ReadNumber(json, "sim_time", &out->sim_time)) return false;
  if (!ReadNumber(json, "system_cost_limit", &out->system_cost_limit)) {
    return false;
  }
  if (!ReadNumber(json, "oltp_response", &out->oltp_response)) return false;
  if (!ReadNumber(json, "solver_utility", &out->solver_utility)) {
    return false;
  }
  if (!ReadString(json, "allocator", &out->allocator)) return false;

  size_t at = ValuePos(json, "classes");
  if (at == std::string::npos || json[at] != '[') return false;
  size_t cursor = at + 1;
  while (cursor < json.size() && json[cursor] != ']') {
    size_t open = json.find('{', cursor);
    if (open == std::string::npos) break;
    // Class objects are flat: the next '}' closes the object.
    size_t close = json.find('}', open);
    if (close == std::string::npos) return false;
    PlannerAuditClass c;
    if (!ParseClass(json.substr(open, close - open + 1), &c)) return false;
    out->classes.push_back(c);
    cursor = close + 1;
    while (cursor < json.size() &&
           (json[cursor] == ',' || json[cursor] == ' ')) {
      ++cursor;
    }
  }
  return true;
}

PlannerAuditLog::PlannerAuditLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void PlannerAuditLog::Add(PlannerAuditRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (records_.size() >= capacity_) {
    records_.pop_front();
    ++dropped_;
  }
  records_.push_back(std::move(record));
}

size_t PlannerAuditLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

uint64_t PlannerAuditLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void PlannerAuditLog::WriteJsonl(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const PlannerAuditRecord& record : records_) {
    out << ToJson(record) << "\n";
  }
}

}  // namespace qsched::obs
