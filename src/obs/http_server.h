#ifndef QSCHED_OBS_HTTP_SERVER_H_
#define QSCHED_OBS_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace qsched::obs {

/// What a handler hands back to the server; the server adds the status
/// line, Content-Type / Content-Length headers and `Connection: close`.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

struct HttpServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; the bound port is available via port() after Start().
  uint16_t port = 0;
  /// Connections beyond this are accepted and immediately closed.
  int max_connections = 32;
  /// Request (line + headers) ceiling; longer requests get 400.
  size_t max_request_bytes = 8192;
};

/// Minimal embedded exposition server: one thread multiplexes the
/// listening socket and every client connection with poll(), speaking
/// just enough HTTP/1.0 for scrapers and curl — GET only, exact path
/// match, `Connection: close` after every response. Handlers are
/// registered per path (AddHandler) and run on the server thread, so
/// they must be self-contained and fast (rendering a metrics snapshot,
/// not running a query); anything they read must be thread-safe, which
/// obs::Registry and the rt runtime accessors are.
///
/// This is deliberately not a general web server: no keep-alive, no
/// request bodies, no TLS, no chunked encoding. Its job is to make the
/// live registry and runtime state scrapable with zero dependencies,
/// reusing the same poll()-reactor shape as net::Server (DESIGN.md §10).
class HttpServer {
 public:
  /// Returns the full response for one GET of the registered path.
  using Handler = std::function<HttpResponse()>;

  explicit HttpServer(const HttpServerOptions& options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers (or replaces) the handler for an exact path, e.g.
  /// "/metrics". Safe at any time, also while serving. A request whose
  /// path (query string stripped) matches no handler gets 404.
  void AddHandler(const std::string& path, Handler handler);

  /// Binds, listens and spawns the server thread.
  Status Start();

  /// The actually-bound port (after Start(); 0 before).
  uint16_t port() const { return port_; }

  /// Closes the listener and every connection, joins the thread.
  /// Idempotent.
  void Stop();

  // Accounting (safe from any thread).
  /// Requests answered, whatever the status code.
  uint64_t requests_served() const { return requests_served_; }
  /// Subset answered with a non-2xx status (400/404/405).
  uint64_t requests_failed() const { return requests_failed_; }
  uint64_t connections_refused() const { return connections_refused_; }

 private:
  struct Connection {
    int fd = -1;
    std::string inbuf;
    std::string outbuf;
    size_t out_offset = 0;
    /// Request parsed and response queued; close once outbuf flushes.
    bool responding = false;
  };

  void ServerLoop();
  void AcceptNew();
  /// Reads from the connection; parses and answers once the header block
  /// is complete. Returns false when the connection should close now.
  bool ReadFromConnection(Connection* conn);
  /// Builds the full response bytes for one request line.
  std::string RespondTo(const std::string& request_line);
  /// Returns false once the connection is fully flushed (close it).
  bool FlushConnection(Connection* conn);

  HttpServerOptions options_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;

  std::mutex lifecycle_mu_;
  bool started_ = false;
  bool stopped_ = false;
  std::atomic<bool> stop_requested_{false};

  std::mutex handlers_mu_;
  std::map<std::string, Handler> handlers_;

  /// Server-thread-owned.
  std::vector<Connection> conns_;

  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> requests_failed_{0};
  std::atomic<uint64_t> connections_refused_{0};
};

class Registry;

/// Registers the two registry endpoints against a live registry (which
/// must outlive the server): GET /metrics — Prometheus text exposition —
/// and GET /varz — the registry's JSON dump.
void InstallRegistryHandlers(HttpServer* server, Registry* registry);

/// Registers GET /healthz: `state_fn` reports the serving state
/// ("accepting" / "draining" / "stopped"); "accepting" answers 200,
/// anything else 503, the body being the state plus a newline either
/// way — so load balancers and the smoke test read the same signal.
void InstallHealthHandler(HttpServer* server,
                          std::function<std::string()> state_fn);

}  // namespace qsched::obs

#endif  // QSCHED_OBS_HTTP_SERVER_H_
