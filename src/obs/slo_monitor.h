#ifndef QSCHED_OBS_SLO_MONITOR_H_
#define QSCHED_OBS_SLO_MONITOR_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace qsched::obs {

/// One contiguous run of control intervals in which a class violated its
/// SLO (goal ratio < 1). Open events (still violating when the run ends)
/// have end fields equal to the last observation.
struct SloViolationEvent {
  int class_id = 0;
  uint64_t start_interval = 0;
  double start_time = 0.0;
  uint64_t end_interval = 0;
  double end_time = 0.0;
  /// Number of violating intervals in the event.
  int intervals = 0;
  /// Worst (smallest) goal ratio seen during the event — the depth.
  double worst_ratio = 1.0;
  /// end_time - start_time; 0 for single-interval events.
  double duration = 0.0;
  bool open = false;
};

/// Single-line JSON encoding, tagged `"type":"slo_violation"` so the
/// events can share a JSONL stream with planner audit records.
std::string ToJson(const SloViolationEvent& event);

/// Per-class SLO attainment tracking at control-interval granularity:
/// rolling attainment over the last `window` intervals, overall
/// attainment, and violation events with start/end/depth/duration.
/// Thread-safe.
class SloMonitor {
 public:
  struct Options {
    /// Rolling attainment window, in control intervals.
    int window = 10;
  };

  SloMonitor() : SloMonitor(Options()) {}
  explicit SloMonitor(Options options);

  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  /// Feeds one interval's goal ratio for one class. Intervals must be
  /// observed in nondecreasing order per class.
  void Observe(int class_id, uint64_t interval, double sim_time,
               double goal_ratio);

  /// Fraction of the last `window` observed intervals with ratio >= 1;
  /// 0 when the class has no observations.
  double RollingAttainment(int class_id) const;
  /// Fraction of all observed intervals with ratio >= 1.
  double OverallAttainment(int class_id) const;
  uint64_t intervals_observed(int class_id) const;

  /// Ids of every class with at least one observation, ascending.
  std::vector<int> ObservedClasses() const;

  /// Closed events plus the open one (if any), oldest first.
  std::vector<SloViolationEvent> Events() const;
  /// Events for one class only.
  std::vector<SloViolationEvent> EventsFor(int class_id) const;

  /// (sim_time, rolling attainment) trajectory per class, one point per
  /// observation — the SLO-attainment chart series.
  std::vector<std::pair<double, double>> AttainmentSeries(
      int class_id) const;

  /// One ToJson line per event (closed then open), for appending to the
  /// planner audit JSONL.
  void WriteEventsJsonl(std::ostream& out) const;

 private:
  struct ClassState {
    std::deque<bool> recent_met;
    uint64_t observed = 0;
    uint64_t met = 0;
    std::vector<std::pair<double, double>> attainment_series;
    bool violating = false;
    SloViolationEvent current;
  };

  std::vector<SloViolationEvent> EventsLocked() const;

  mutable std::mutex mu_;
  Options options_;
  std::map<int, ClassState> classes_;
  std::vector<SloViolationEvent> closed_;
};

}  // namespace qsched::obs

#endif  // QSCHED_OBS_SLO_MONITOR_H_
