#ifndef QSCHED_OBS_STAGE_TRACE_H_
#define QSCHED_OBS_STAGE_TRACE_H_

#include <chrono>
#include <cstdint>

namespace qsched::obs {

/// Wall-clock stage timestamps for one query's trip through the runtime:
///
///   enqueued   — producer handed the query to rt::Gateway (Offer/Submit)
///   admitted   — a gateway worker popped it off the submission queue
///   exec_start — the engine actually started executing it (after the
///                interceptor delay, control-table insert, dispatcher
///                memory queue and MPL/cost gate)
///   completed  — the completion callback fired on the clock thread
///
/// The derived stage durations telescope by construction:
///
///   gateway_queue + dispatch + execute == completed - enqueued
///
/// so per-stage histograms always sum to the end-to-end latency exactly
/// (the stage_trace tests assert this to sub-millisecond tolerance over
/// the wire, where the durations survive an f64 round trip).
///
/// Thread-safety: each stamp happens on exactly one thread and every
/// handoff between stamping threads is already synchronized (MPMC queue
/// push/pop, WallClock::Run, completion mailbox mutex), so plain
/// time_points suffice — no atomics needed.
///
/// A null trace pointer (the DES/sim path never allocates one) costs
/// nothing: every stamping site is guarded.
struct QueryStageTrace {
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  /// Gateway-assigned query id; doubles as the wire trace id.
  uint64_t trace_id = 0;

  TimePoint enqueued{};
  TimePoint admitted{};
  TimePoint exec_start{};
  TimePoint completed{};

  static double Seconds(TimePoint from, TimePoint to) {
    return std::chrono::duration<double>(to - from).count();
  }

  bool HasExecStart() const {
    return exec_start.time_since_epoch().count() != 0;
  }

  /// Time spent in the gateway's bounded submission queue.
  double GatewayQueueSeconds() const { return Seconds(enqueued, admitted); }
  /// Admission to execution start: interceptor delay, control-table
  /// bookkeeping, dispatcher memory queue and MPL/cost-gate wait.
  double DispatchSeconds() const { return Seconds(admitted, exec_start); }
  /// Execution start to completion callback.
  double ExecuteSeconds() const { return Seconds(exec_start, completed); }
  /// End-to-end: identical to the sum of the three stages above.
  double TotalSeconds() const { return Seconds(enqueued, completed); }
};

}  // namespace qsched::obs

#endif  // QSCHED_OBS_STAGE_TRACE_H_
