#ifndef QSCHED_SCHEDULER_QUERY_SCHEDULER_H_
#define QSCHED_SCHEDULER_QUERY_SCHEDULER_H_

#include <map>

#include "engine/execution_engine.h"
#include "obs/telemetry.h"
#include "qp/interceptor.h"
#include "scheduler/dispatcher.h"
#include "scheduler/monitor.h"
#include "scheduler/perf_models.h"
#include "scheduler/service_class.h"
#include "scheduler/greedy_allocator.h"
#include "scheduler/snapshot_monitor.h"
#include "scheduler/solver.h"
#include "scheduler/workload_detector.h"
#include "sim/clock.h"
#include "sim/stats.h"
#include "workload/client.h"

namespace qsched::sched {

struct QuerySchedulerConfig {
  /// The system cost limit: sum of all class cost limits. Determined
  /// experimentally as the under-saturation knee of the throughput vs.
  /// cost-limit curve (the paper uses 300K timerons; see
  /// bench/system_cost_limit_curve).
  double system_cost_limit = 300000.0;
  /// The Scheduling Planner consults the Performance Solver at this
  /// interval. It must be long enough for a few OLAP completions to land
  /// per interval, or velocity measurements get noisy.
  double control_interval_seconds = 60.0;
  /// CPU billed to the engine per planning cycle (solver + monitoring).
  double planning_cpu_seconds = 0.005;
  /// EWMA weight on the newest interval measurement (1 = no smoothing).
  /// OLAP velocity measurements come from a handful of completions per
  /// interval, so some smoothing steadies the plans.
  double measurement_smoothing = 0.6;
  /// Fraction of the way the enforced plan moves toward the solver's
  /// optimum each interval (1 = jump immediately). Rate limiting prevents
  /// admission bursts: a big jump in an OLAP limit releases several
  /// queued scans at once, which slams the disks, spikes OLTP response,
  /// and sends the controller into a limit cycle.
  double plan_step_fraction = 0.5;
  /// Future-work extension: admit OLTP through the interceptor too
  /// (with the near-zero in-engine overhead overrides) instead of the
  /// paper's indirect control.
  bool control_oltp_directly = false;
  /// Workload-detection extension: when true, the planner biases its
  /// performance inputs by the detector's predicted arrival-rate change
  /// (a class about to get busier is planned for as if already slower),
  /// and a detected abrupt shift makes the planner trust the newest
  /// measurement outright instead of the smoothed one.
  bool proactive_planning = false;
  /// Which allocation algorithm the Scheduling Planner consults:
  /// the paper's utility-maximizing search, or the economic-model-style
  /// greedy marginal-utility auction (extension).
  enum class Allocator { kUtilitySearch, kGreedyAuction };
  Allocator allocator = Allocator::kUtilitySearch;
  GreedyAllocator::Options greedy;
  /// Strength of the proactive bias; the rate ratio is clamped to
  /// [1/(1+gain), 1+gain] before it scales the inputs.
  double proactive_gain = 0.5;
  WorkloadDetector::Options detector;
  /// Telemetry sink shared by the scheduler and all its sub-components
  /// (nullptr = observability off, the default). Must outlive the
  /// scheduler. When set: per-query spans, SLO/cost-limit gauges, and a
  /// planner audit record per control interval.
  obs::Telemetry* telemetry = nullptr;
  qp::InterceptorConfig interceptor;
  SnapshotMonitor::Options snapshot;
  PerformanceSolver::Options solver;
  OltpResponseModel::Options oltp_model;
};

/// The paper's Query Scheduler (Figure 1): Monitor, Classifier,
/// Dispatcher, Scheduling Planner and Performance Solver assembled on top
/// of the Query Patroller interception mechanism.
///
/// * OLAP queries are intercepted, classified into their service class
///   queue, and released under the class cost limits of the current plan.
/// * OLTP queries bypass interception (its overhead dwarfs their
///   execution time) and are controlled indirectly: the planner shrinks
///   the OLAP limits when the OLTP class misses its response-time goal.
class QueryScheduler : public workload::QueryFrontend {
 public:
  QueryScheduler(sim::Clock* simulator,
                 engine::ExecutionEngine* engine,
                 const ServiceClassSet* classes,
                 const QuerySchedulerConfig& config);

  /// Starts the planning loop and the snapshot sampler; both run until
  /// simulated time `until`.
  void Start(sim::SimTime until);

  /// Starts only the periodic snapshot sampler (until model time
  /// `until`). The real-time runtime uses this instead of Start(): its
  /// dedicated control-loop thread drives planning cycles itself via
  /// RunPlanningCycle(), so no planner timers are pre-scheduled.
  void StartSampling(sim::SimTime until) { snapshot_.Start(until); }

  /// Runs one Scheduling Planner cycle on demand: harvest measurements,
  /// solve, install the new plan (releasing whatever now fits). Under the
  /// DES this is what the Start()-scheduled timers call; the rt runtime's
  /// control-loop thread calls it under the core lock, which is what
  /// makes the new cost limits take effect atomically with respect to
  /// concurrent submissions.
  void RunPlanningCycle() { PlanOnce(); }

  void Submit(const workload::Query& query, CompleteFn on_complete) override;

  const SchedulingPlan& current_plan() const { return dispatcher_.plan(); }
  /// Cost-limit decisions over time, per class (the Fig. 7 series).
  const std::map<int, sim::TimeSeries>& limit_history() const {
    return limit_history_;
  }
  const OltpResponseModel& oltp_model() const { return oltp_model_; }
  qp::Interceptor& interceptor() { return interceptor_; }
  Dispatcher& dispatcher() { return dispatcher_; }
  Monitor& monitor() { return monitor_; }
  SnapshotMonitor& snapshot_monitor() { return snapshot_; }
  WorkloadDetector& workload_detector() { return detector_; }
  uint64_t planning_cycles() const { return planning_cycles_; }
  /// Latest accepted per-class measurements (velocity / response).
  const std::map<int, double>& measurements() const { return measured_; }

 private:
  /// Cached metric handles for one service class (registered once in the
  /// constructor; the per-query and per-interval paths never build label
  /// strings).
  struct ClassTelemetry {
    obs::Counter* submitted = nullptr;
    obs::Gauge* slo_goal = nullptr;
    obs::Gauge* slo_measured = nullptr;
    obs::Gauge* slo_goal_ratio = nullptr;
    obs::Gauge* cost_limit = nullptr;
    obs::Gauge* slo_attainment = nullptr;
  };

  /// One Scheduling Planner cycle: harvest measurements, update the OLTP
  /// model, solve for new limits, hand the plan to the Dispatcher.
  void PlanOnce();
  /// Builds the per-interval decision audit record, refreshes the SLO
  /// gauges, and feeds the derived observability layer: resolves last
  /// interval's predictions in the ledger, observes SLO attainment,
  /// appends the interval time-series row, and records this interval's
  /// model predictions for the enforced plan. `raw` holds the un-smoothed
  /// interval measurements (-1 when a class had none); `input` is the
  /// exact state the Performance Solver searched with.
  void RecordPlanAudit(const std::map<int, ClassIntervalStats>& stats,
                       const std::map<int, WorkloadSignal>& signals,
                       const std::map<int, double>& raw,
                       double oltp_response, const SolverInput& input,
                       const SchedulingPlan& target,
                       const SchedulingPlan& next,
                       double solver_wall_seconds);
  /// The Classifier: validates the query's class against the class set.
  bool Classify(const workload::Query& query) const;
  SchedulingPlan InitialPlan() const;
  double OlapTotalOf(const SchedulingPlan& plan) const;

  sim::Clock* simulator_;
  engine::ExecutionEngine* engine_;
  const ServiceClassSet* classes_;
  QuerySchedulerConfig config_;
  qp::Interceptor interceptor_;
  Dispatcher dispatcher_;
  Monitor monitor_;
  SnapshotMonitor snapshot_;
  WorkloadDetector detector_;
  OltpResponseModel oltp_model_;
  PerformanceSolver solver_;
  GreedyAllocator greedy_;

  /// Latest accepted measurement per class (velocity or response).
  std::map<int, double> measured_;
  /// Measurement and OLAP-limit state of the previous interval, for the
  /// regression update.
  double prev_oltp_response_ = -1.0;
  double prev_olap_total_ = -1.0;
  std::map<int, sim::TimeSeries> limit_history_;
  uint64_t planning_cycles_ = 0;

  obs::Telemetry* telemetry_ = nullptr;
  obs::Counter* planning_cycles_counter_ = nullptr;
  obs::Gauge* planner_utility_gauge_ = nullptr;
  std::map<int, ClassTelemetry> class_telemetry_;
};

}  // namespace qsched::sched

#endif  // QSCHED_SCHEDULER_QUERY_SCHEDULER_H_
