#ifndef QSCHED_SCHEDULER_MPL_CONTROLLER_H_
#define QSCHED_SCHEDULER_MPL_CONTROLLER_H_

#include <deque>
#include <map>

#include "engine/execution_engine.h"
#include "qp/interceptor.h"
#include "scheduler/monitor.h"
#include "scheduler/service_class.h"
#include "scheduler/snapshot_monitor.h"
#include "sim/clock.h"
#include "workload/client.h"

namespace qsched::sched {

/// Comparison baseline in the spirit of Schroeder et al. (ICDE'06),
/// which the paper cites as the MPL-based alternative to cost-based
/// control: each OLAP class gets a multiprogramming-level cap (max
/// concurrent queries) instead of a cost limit; OLTP bypasses as usual.
///
/// In adaptive mode a simple feedback loop nudges the caps: when the OLTP
/// class violates its response goal, every OLAP MPL drops by one; when
/// OLTP has comfortable slack, the OLAP class furthest below its velocity
/// goal gains one. This is deliberately simpler than the Query
/// Scheduler's model-based planner — the ablation bench contrasts the two.
class MplController : public workload::QueryFrontend {
 public:
  struct Options {
    std::map<int, int> initial_mpl;
    bool adaptive = true;
    double control_interval_seconds = 30.0;
    int min_mpl = 1;
    int max_mpl = 64;
    /// OLTP slack factor: raise OLAP MPLs only when response is below
    /// slack * goal.
    double oltp_slack = 0.8;
    qp::InterceptorConfig interceptor;
    SnapshotMonitor::Options snapshot;
  };

  MplController(sim::Clock* simulator, engine::ExecutionEngine* engine,
                const ServiceClassSet* classes, const Options& options);

  void Start(sim::SimTime until);

  void Submit(const workload::Query& query, CompleteFn on_complete) override;

  int MplFor(int class_id) const;
  qp::Interceptor& interceptor() { return interceptor_; }

 private:
  void OnArrived(const qp::QueryInfoRecord& record);
  void OnFinished(const qp::QueryInfoRecord& record);
  void TryRelease();
  void ControlOnce();

  sim::Clock* simulator_;
  const ServiceClassSet* classes_;
  Options options_;
  qp::Interceptor interceptor_;
  Monitor monitor_;
  SnapshotMonitor snapshot_;
  std::map<int, int> mpl_;
  std::map<int, std::deque<uint64_t>> queues_;
  std::map<int, double> measured_velocity_;
  double measured_oltp_response_ = -1.0;
};

}  // namespace qsched::sched

#endif  // QSCHED_SCHEDULER_MPL_CONTROLLER_H_
