#include "scheduler/greedy_allocator.h"

#include <algorithm>

#include "common/logging.h"

namespace qsched::sched {

GreedyAllocator::GreedyAllocator(Options options)
    : options_(std::move(options)) {}

double GreedyAllocator::Evaluate(const SolverInput& input,
                                 const std::vector<double>& limits) const {
  double olap_old = 0.0;
  double olap_new = 0.0;
  for (size_t i = 0; i < input.classes.size(); ++i) {
    const auto& cls = input.classes[i];
    if (cls.spec->type == workload::WorkloadType::kOlap) {
      olap_old += cls.current_limit;
      olap_new += limits[i];
    }
  }
  double utility = 0.0;
  for (size_t i = 0; i < input.classes.size(); ++i) {
    const auto& cls = input.classes[i];
    double predicted;
    if (cls.spec->type == workload::WorkloadType::kOlap) {
      predicted = OlapVelocityModel::Predict(cls.measured,
                                             cls.current_limit, limits[i]);
    } else if (cls.directly_controlled) {
      double old_limit = std::max(cls.current_limit, 1e-6);
      predicted = cls.measured * old_limit / std::max(limits[i], 1e-6);
    } else {
      QSCHED_CHECK(input.oltp_model != nullptr);
      predicted =
          input.oltp_model->Predict(cls.measured, olap_old, olap_new);
    }
    utility += options_.utility.Evaluate(*cls.spec, predicted);
  }
  return utility;
}

SchedulingPlan GreedyAllocator::Solve(const SolverInput& input) const {
  SchedulingPlan plan;
  size_t n = input.classes.size();
  if (n == 0 || input.total_cost_limit <= 0.0) return plan;

  double total = input.total_cost_limit;
  double increment =
      total * std::clamp(options_.increment_fraction, 0.001, 0.5);

  // Floor allocation at the min shares.
  std::vector<double> limits(n);
  double allocated = 0.0;
  for (size_t i = 0; i < n; ++i) {
    limits[i] = input.classes[i].spec->min_share * total;
    allocated += limits[i];
  }

  // Auction the remainder increment by increment.
  double base_utility = Evaluate(input, limits);
  while (allocated + increment <= total + 1e-9) {
    size_t winner = n;
    double best_gain = -1e18;
    for (size_t i = 0; i < n; ++i) {
      limits[i] += increment;
      double gain = Evaluate(input, limits) - base_utility;
      limits[i] -= increment;
      if (gain > best_gain) {
        best_gain = gain;
        winner = i;
      }
    }
    if (winner == n) break;
    limits[winner] += increment;
    allocated += increment;
    base_utility += best_gain;
  }
  // Hand any sub-increment remainder to the last winner's runner-up
  // logic: just give it proportionally (negligible).
  double leftover = total - allocated;
  if (leftover > 0.0 && n > 0) {
    for (size_t i = 0; i < n; ++i) limits[i] += leftover / n;
  }

  for (size_t i = 0; i < n; ++i) {
    plan.cost_limits[input.classes[i].spec->class_id] = limits[i];
  }
  plan.predicted_utility = Evaluate(input, limits);
  return plan;
}

}  // namespace qsched::sched
