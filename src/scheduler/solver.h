#ifndef QSCHED_SCHEDULER_SOLVER_H_
#define QSCHED_SCHEDULER_SOLVER_H_

#include <map>
#include <vector>

#include "scheduler/perf_models.h"
#include "scheduler/service_class.h"
#include "scheduler/utility.h"

namespace qsched::sched {

/// A scheduling plan: the class cost limits (timerons) the Dispatcher
/// enforces. OLAP limits gate admission directly; an OLTP class's "limit"
/// is the virtual remainder of the system cost limit — the resource share
/// reserved for it by holding OLAP back (this is what Fig. 7 plots).
struct SchedulingPlan {
  std::map<int, double> cost_limits;
  double predicted_utility = 0.0;

  double LimitFor(int class_id) const;
  double Total() const;
};

/// What the Performance Solver knows when it plans: per class, the spec,
/// the latest measured performance, and the cost limit under which that
/// measurement was taken.
struct SolverInput {
  struct ClassState {
    const ServiceClassSpec* spec = nullptr;
    /// Velocity (OLAP) or average response seconds (OLTP).
    double measured = 0.0;
    double current_limit = 0.0;
    /// Future-work extension: when an OLTP class is admission-controlled
    /// directly (in-engine control with negligible overhead), its response
    /// scales inversely with its own limit: t' = t * C / C'.
    bool directly_controlled = false;
  };

  double total_cost_limit = 0.0;
  std::vector<ClassState> classes;
  /// Model for predicting OLTP response under a changed OLAP total.
  const OltpResponseModel* oltp_model = nullptr;
};

/// Per-class performance predicted by the planner's models (OLAP velocity
/// scaling, OLTP linear response regression, or direct inverse scaling)
/// if `plan` were enforced, given the measurements in `input`. This is
/// the same model the solvers search with, exposed so the prediction
/// ledger can record exactly what the planner expected before the next
/// interval's measurements arrive. Keyed by class id; velocity for OLAP,
/// response seconds for OLTP.
std::map<int, double> PredictPerformance(const SolverInput& input,
                                         const SchedulingPlan& plan);

/// The paper's Performance Solver: chooses class cost limits summing to
/// the system cost limit that maximize total utility, using the OLAP
/// velocity model and the OLTP linear response model to predict each
/// class's performance under candidate allocations.
///
/// Search: exhaustive simplex grid for up to three classes (the paper's
/// experiment), followed by pairwise-transfer hill climbing that also
/// handles larger class sets.
class PerformanceSolver {
 public:
  struct Options {
    /// Grid resolution as a fraction of the total cost limit.
    double grid_step = 0.025;
    /// Hill-climbing transfer sizes tried during refinement.
    std::vector<double> refine_steps = {0.02, 0.005};
    /// Maximum refinement passes.
    int max_refine_passes = 40;
    /// Stability regularizer: utility charged per unit of L1 change in
    /// the allocation fractions versus the current plan. Without it the
    /// solver jumps between corners whenever every class meets its goal
    /// (flat utility), and the resulting limit swings cause violations.
    double change_penalty = 0.0;
    UtilityFunction utility;
  };

  PerformanceSolver() : PerformanceSolver(Options()) {}
  explicit PerformanceSolver(Options options);

  /// Computes the optimal plan. Falls back to proportional shares when
  /// the input is degenerate (no classes, zero total).
  SchedulingPlan Solve(const SolverInput& input) const;

  /// Total predicted utility of an allocation (exposed for tests and the
  /// ablation benches). `fractions` line up with input.classes.
  double EvaluateFractions(const SolverInput& input,
                           const std::vector<double>& fractions) const;

 private:
  std::vector<double> InitialFractions(const SolverInput& input) const;
  void GridSearch(const SolverInput& input,
                  std::vector<double>* best_fractions,
                  double* best_utility) const;
  void HillClimb(const SolverInput& input,
                 std::vector<double>* fractions, double* utility) const;

  Options options_;
};

}  // namespace qsched::sched

#endif  // QSCHED_SCHEDULER_SOLVER_H_
