#ifndef QSCHED_SCHEDULER_SERVICE_CLASS_H_
#define QSCHED_SCHEDULER_SERVICE_CLASS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "workload/query.h"

namespace qsched::sched {

/// The metric a class's SLO is expressed in. OLAP classes use query
/// velocity (higher is better, goal is a floor); the OLTP class uses
/// average response time (lower is better, goal is a ceiling).
enum class GoalKind { kVelocityFloor, kAvgResponseCeiling };

/// One service class of the mixed workload with its Service Level
/// Objective. Importance is *not* priority: it only matters while the
/// goal is violated (Section 4.2 of the paper).
struct ServiceClassSpec {
  int class_id = 0;
  std::string name;
  workload::WorkloadType type = workload::WorkloadType::kOlap;
  GoalKind goal_kind = GoalKind::kVelocityFloor;
  /// Velocity in (0,1] for kVelocityFloor, seconds for
  /// kAvgResponseCeiling.
  double goal_value = 0.5;
  /// Business importance; larger means violations cost more utility.
  int importance = 1;
  /// Smallest fraction of the system cost limit the solver may assign.
  double min_share = 0.05;

  /// Performance relative to goal: >= 1 means the SLO is met.
  double GoalRatio(double measured) const;
};

/// The class set of one experiment, with id lookup.
class ServiceClassSet {
 public:
  Status Add(ServiceClassSpec spec);

  const std::vector<ServiceClassSpec>& classes() const { return classes_; }
  size_t size() const { return classes_.size(); }
  /// Returns nullptr when absent.
  const ServiceClassSpec* Find(int class_id) const;

  /// Ids of OLAP classes (directly controlled via cost limits).
  std::vector<int> OlapClassIds() const;
  /// Ids of OLTP classes (indirectly controlled).
  std::vector<int> OltpClassIds() const;

 private:
  std::vector<ServiceClassSpec> classes_;
};

/// The paper's experimental classes: Class 1 (OLAP, importance 1,
/// velocity goal 0.4), Class 2 (OLAP, importance 2, velocity goal 0.6),
/// Class 3 (OLTP, importance 3, average response goal 0.25 s).
ServiceClassSet MakePaperClasses();

}  // namespace qsched::sched

#endif  // QSCHED_SCHEDULER_SERVICE_CLASS_H_
