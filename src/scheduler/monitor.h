#ifndef QSCHED_SCHEDULER_MONITOR_H_
#define QSCHED_SCHEDULER_MONITOR_H_

#include <map>
#include <mutex>

#include "obs/telemetry.h"
#include "sim/clock.h"
#include "workload/client.h"

namespace qsched::sched {

/// Aggregates of the queries of one class that finished during one
/// control interval.
struct ClassIntervalStats {
  int completed = 0;
  double mean_velocity = 0.0;
  double mean_response_seconds = 0.0;
  double mean_exec_seconds = 0.0;
  double throughput_per_second = 0.0;
  /// Mean wall-clock stage durations over the completions that carried a
  /// QueryStageTrace (the real-time runtime attaches one per query; pure
  /// DES runs leave all three 0). "Execute" here is measured up to the
  /// moment the record reached the monitor, a few microseconds before
  /// the gateway stamps the trace complete.
  double mean_stage_gateway_queue_seconds = 0.0;
  double mean_stage_dispatch_seconds = 0.0;
  double mean_stage_execute_seconds = 0.0;
};

/// The paper's Monitor: collects query information (here: completion
/// records carrying the control-table facts) and turns it into per-class
/// per-interval performance measurements for the Scheduling Planner.
///
/// Thread-safety contract: AddRecord, Harvest and records_total take an
/// internal mutex, so completion records may be fed from concurrent
/// threads (the rt runtime's clock thread and gateway workers) while the
/// control-loop thread harvests. Harvest atomically snapshots-and-resets
/// the accumulators: a record lands either in this interval or the next,
/// never both and never lost. set_telemetry is not synchronized — call
/// it before any concurrent use, like the other components.
class Monitor {
 public:
  explicit Monitor(sim::Clock* simulator);

  /// Feed one finished query. Safe to call from any thread.
  void AddRecord(const workload::QueryRecord& record);

  /// Returns the aggregates accumulated since the previous Harvest and
  /// resets the accumulators. Safe to call concurrently with AddRecord.
  std::map<int, ClassIntervalStats> Harvest();

  uint64_t records_total() const;

  /// Enables telemetry (nullptr = off): a record counter plus a per-class
  /// velocity histogram of everything fed to the planner.
  void set_telemetry(obs::Telemetry* telemetry);

 private:
  obs::Histogram* VelocityHistogram(int class_id);

  struct Accumulator {
    int completed = 0;
    double velocity_sum = 0.0;
    double response_sum = 0.0;
    double exec_sum = 0.0;
    /// Completions that carried a stage trace, and their stage sums.
    int traced = 0;
    double stage_gateway_queue_sum = 0.0;
    double stage_dispatch_sum = 0.0;
    double stage_execute_sum = 0.0;
  };

  sim::Clock* simulator_;
  /// Guards acc_, window_start_, records_total_ and velocity_hists_.
  mutable std::mutex mu_;
  std::map<int, Accumulator> acc_;
  sim::SimTime window_start_ = 0.0;
  uint64_t records_total_ = 0;

  obs::Telemetry* telemetry_ = nullptr;
  obs::Counter* records_counter_ = nullptr;
  std::map<int, obs::Histogram*> velocity_hists_;
};

}  // namespace qsched::sched

#endif  // QSCHED_SCHEDULER_MONITOR_H_
