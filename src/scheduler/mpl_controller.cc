#include "scheduler/mpl_controller.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace qsched::sched {

MplController::MplController(sim::Clock* simulator,
                             engine::ExecutionEngine* engine,
                             const ServiceClassSet* classes,
                             const Options& options)
    : simulator_(simulator),
      classes_(classes),
      options_(options),
      interceptor_(simulator, engine, options.interceptor),
      monitor_(simulator),
      snapshot_(simulator, engine, options.snapshot) {
  for (const ServiceClassSpec& spec : classes_->classes()) {
    if (spec.type != workload::WorkloadType::kOlap) continue;
    auto it = options_.initial_mpl.find(spec.class_id);
    mpl_[spec.class_id] =
        it != options_.initial_mpl.end() ? it->second : 4;
    measured_velocity_[spec.class_id] = spec.goal_value;
  }
  interceptor_.set_on_arrived(
      [this](const qp::QueryInfoRecord& record) { OnArrived(record); });
  interceptor_.set_on_finished(
      [this](const qp::QueryInfoRecord& record) { OnFinished(record); });
  interceptor_.set_on_cancelled(
      [this](const qp::QueryInfoRecord& record) {
        auto it = queues_.find(record.class_id);
        if (it == queues_.end()) return;
        for (auto q = it->second.begin(); q != it->second.end(); ++q) {
          if (*q == record.query_id) {
            it->second.erase(q);
            break;
          }
        }
      });
}

void MplController::Start(sim::SimTime until) {
  snapshot_.Start(until);
  if (!options_.adaptive) return;
  double interval = options_.control_interval_seconds;
  for (double t = interval; t <= until; t += interval) {
    simulator_->ScheduleAt(t, [this] { ControlOnce(); });
  }
}

void MplController::Submit(const workload::Query& query,
                           CompleteFn on_complete) {
  if (query.type == workload::WorkloadType::kOltp) {
    interceptor_.Bypass(
        query, [this, on_complete = std::move(on_complete)](
                   const workload::QueryRecord& record) {
          snapshot_.RecordCompletion(record);
          if (on_complete) on_complete(record);
        });
    return;
  }
  interceptor_.Intercept(
      query, [this, on_complete = std::move(on_complete)](
                 const workload::QueryRecord& record) {
        monitor_.AddRecord(record);
        if (on_complete) on_complete(record);
      });
}

int MplController::MplFor(int class_id) const {
  auto it = mpl_.find(class_id);
  return it != mpl_.end() ? it->second : 0;
}

void MplController::OnArrived(const qp::QueryInfoRecord& record) {
  queues_[record.class_id].push_back(record.query_id);
  TryRelease();
}

void MplController::OnFinished(const qp::QueryInfoRecord& record) {
  (void)record;
  TryRelease();
}

void MplController::TryRelease() {
  bool released = true;
  while (released) {
    released = false;
    for (auto& [class_id, queue] : queues_) {
      if (queue.empty()) continue;
      if (interceptor_.running_count(class_id) >= MplFor(class_id)) {
        continue;
      }
      uint64_t id = queue.front();
      queue.pop_front();
      Status st = interceptor_.Release(id);
      QSCHED_CHECK(st.ok()) << st.ToString();
      released = true;
    }
  }
}

void MplController::ControlOnce() {
  std::map<int, ClassIntervalStats> stats = monitor_.Harvest();
  for (auto& [class_id, velocity] : measured_velocity_) {
    auto it = stats.find(class_id);
    if (it != stats.end() && it->second.completed > 0) {
      velocity = it->second.mean_velocity;
    }
  }

  const ServiceClassSpec* oltp_spec = nullptr;
  for (const ServiceClassSpec& spec : classes_->classes()) {
    if (spec.type == workload::WorkloadType::kOltp) oltp_spec = &spec;
  }
  double fallback = oltp_spec != nullptr ? oltp_spec->goal_value : 0.25;
  measured_oltp_response_ = snapshot_.HarvestAvgResponse(fallback);

  if (oltp_spec != nullptr &&
      measured_oltp_response_ > oltp_spec->goal_value) {
    // OLTP violating: squeeze every OLAP class.
    for (auto& [class_id, mpl] : mpl_) {
      mpl = std::max(options_.min_mpl, mpl - 1);
    }
  } else if (oltp_spec == nullptr ||
             measured_oltp_response_ <
                 options_.oltp_slack * oltp_spec->goal_value) {
    // Comfortable OLTP slack: grow the OLAP class furthest below goal.
    int worst_class = -1;
    double worst_ratio = 1.0;
    for (const ServiceClassSpec& spec : classes_->classes()) {
      if (spec.type != workload::WorkloadType::kOlap) continue;
      double ratio = spec.GoalRatio(measured_velocity_[spec.class_id]);
      if (ratio < worst_ratio) {
        worst_ratio = ratio;
        worst_class = spec.class_id;
      }
    }
    if (worst_class >= 0) {
      mpl_[worst_class] =
          std::min(options_.max_mpl, mpl_[worst_class] + 1);
    }
  }
  TryRelease();
}

}  // namespace qsched::sched
