#include "scheduler/workload_detector.h"

#include <algorithm>
#include <cmath>

namespace qsched::sched {

WorkloadDetector::WorkloadDetector(const Options& options)
    : options_(options) {}

void WorkloadDetector::RecordArrival(int class_id) {
  classes_[class_id].pending_arrivals += 1;
  ++arrivals_total_;
}

std::map<int, WorkloadSignal> WorkloadDetector::Harvest(
    double interval_seconds) {
  std::map<int, WorkloadSignal> out;
  if (interval_seconds <= 0.0) return out;
  for (auto& [class_id, state] : classes_) {
    double rate = static_cast<double>(state.pending_arrivals) /
                  interval_seconds;
    state.pending_arrivals = 0;

    WorkloadSignal signal;
    signal.arrival_rate = rate;

    if (!state.initialized) {
      state.initialized = true;
      state.level = rate;
      state.trend = 0.0;
      state.residual_scale = std::max(rate * 0.25, 1e-6);
    } else {
      double predicted = state.level + state.trend;
      double residual = rate - predicted;

      // Track the residual scale so CUSUM units are workload-relative.
      state.residual_scale =
          (1.0 - options_.scale_alpha) * state.residual_scale +
          options_.scale_alpha * std::abs(residual);
      double scale = std::max(state.residual_scale, 1e-6);
      double z = residual / scale;

      // Two-sided CUSUM with drift allowance.
      state.cusum_pos =
          std::max(0.0, state.cusum_pos + z - options_.cusum_drift);
      state.cusum_neg =
          std::max(0.0, state.cusum_neg - z - options_.cusum_drift);
      if (state.cusum_pos > options_.cusum_threshold ||
          state.cusum_neg > options_.cusum_threshold) {
        signal.change_detected = true;
        ++changes_detected_;
        state.cusum_pos = 0.0;
        state.cusum_neg = 0.0;
        // Re-anchor quickly after a confirmed shift.
        state.level = rate;
        state.trend = 0.0;
      }

      if (!signal.change_detected) {
        // Holt's linear trend update.
        double prev_level = state.level;
        state.level = options_.level_alpha * rate +
                      (1.0 - options_.level_alpha) * (state.level +
                                                      state.trend);
        state.trend = options_.trend_beta * (state.level - prev_level) +
                      (1.0 - options_.trend_beta) * state.trend;
      }
    }

    signal.level = state.level;
    signal.trend = state.trend;
    signal.predicted_rate = std::max(
        0.0, state.level + state.trend * options_.horizon_intervals);
    state.last_signal = signal;
    out[class_id] = signal;
  }
  return out;
}

WorkloadSignal WorkloadDetector::SignalFor(int class_id) const {
  auto it = classes_.find(class_id);
  return it != classes_.end() ? it->second.last_signal : WorkloadSignal();
}

}  // namespace qsched::sched
