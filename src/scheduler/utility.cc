#include "scheduler/utility.h"

#include <algorithm>
#include <cmath>

namespace qsched::sched {

double UtilityFunction::FromGoalRatio(const ServiceClassSpec& spec,
                                      double ratio) const {
  ratio = std::max(-2.0, ratio);
  double importance = static_cast<double>(std::max(1, spec.importance));
  if (ratio <= 1.0) {
    double violation_slope = std::pow(importance, violation_exponent_);
    return importance * (1.0 - violation_slope * (1.0 - ratio));
  }
  if (ratio <= saturation_ratio_) {
    return importance * (1.0 + mid_slope_ * (ratio - 1.0));
  }
  double at_margin = 1.0 + mid_slope_ * (saturation_ratio_ - 1.0);
  // Cap the ratio so an absurdly over-served class cannot still dominate.
  double surplus = std::min(ratio, 4.0) - saturation_ratio_;
  return importance * (at_margin + surplus_slope_ * surplus);
}

double UtilityFunction::Evaluate(const ServiceClassSpec& spec,
                                 double measured) const {
  return FromGoalRatio(spec, spec.GoalRatio(measured));
}

}  // namespace qsched::sched
