#include "scheduler/dispatcher.h"

#include "common/logging.h"
#include "common/strings.h"

namespace qsched::sched {

Dispatcher::Dispatcher(qp::Interceptor* interceptor)
    : interceptor_(interceptor) {}

void Dispatcher::set_telemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) return;
  obs::Registry& reg = telemetry_->registry;
  arrived_counter_ = reg.GetCounter("qsched_dispatcher_arrived_total");
  released_counter_ = reg.GetCounter("qsched_dispatcher_released_total");
  cancelled_counter_ = reg.GetCounter("qsched_dispatcher_cancelled_total");
}

void Dispatcher::UpdateQueueGauge(int class_id) {
  if (telemetry_ == nullptr) return;
  auto it = queue_depth_gauges_.find(class_id);
  if (it == queue_depth_gauges_.end()) {
    obs::Gauge* gauge = telemetry_->registry.GetGauge(
        "qsched_dispatcher_queue_depth",
        StrPrintf("class=\"%d\"", class_id));
    it = queue_depth_gauges_.emplace(class_id, gauge).first;
  }
  it->second->Set(static_cast<double>(QueuedFor(class_id)));
}

void Dispatcher::SetPlan(const SchedulingPlan& plan) {
  plan_ = plan;
  TryRelease();
}

void Dispatcher::OnArrived(const qp::QueryInfoRecord& record) {
  queues_[record.class_id].push_back(
      Waiting{record.query_id, record.cost_timerons});
  if (telemetry_ != nullptr) {
    arrived_counter_->Inc();
    UpdateQueueGauge(record.class_id);
  }
  TryRelease();
}

void Dispatcher::OnFinished(const qp::QueryInfoRecord& record) {
  (void)record;
  TryRelease();
}

void Dispatcher::OnCancelled(const qp::QueryInfoRecord& record) {
  auto it = queues_.find(record.class_id);
  if (it == queues_.end()) return;
  for (auto q = it->second.begin(); q != it->second.end(); ++q) {
    if (q->query_id == record.query_id) {
      it->second.erase(q);
      if (telemetry_ != nullptr) {
        cancelled_counter_->Inc();
        UpdateQueueGauge(record.class_id);
      }
      break;
    }
  }
  // Cancelling frees no running budget, but keep the pipeline moving in
  // case the queue head changed.
  TryRelease();
}

void Dispatcher::TryRelease() {
  bool released = true;
  while (released) {
    released = false;
    for (auto& [class_id, queue] : queues_) {
      if (queue.empty()) continue;
      double limit = plan_.LimitFor(class_id);
      double running_cost = interceptor_->running_cost(class_id);
      int running = interceptor_->running_count(class_id);
      const Waiting& head = queue.front();
      bool fits = running_cost + head.cost <= limit;
      if (!fits && running == 0) fits = true;  // min-one rule
      if (!fits) continue;
      uint64_t id = head.query_id;
      queue.pop_front();
      Status st = interceptor_->Release(id);
      QSCHED_CHECK(st.ok()) << st.ToString();
      ++released_total_;
      if (telemetry_ != nullptr) {
        released_counter_->Inc();
        UpdateQueueGauge(class_id);
      }
      released = true;
    }
  }
}

int Dispatcher::QueuedFor(int class_id) const {
  auto it = queues_.find(class_id);
  return it != queues_.end() ? static_cast<int>(it->second.size()) : 0;
}

int Dispatcher::TotalQueued() const {
  int total = 0;
  for (const auto& [class_id, queue] : queues_) {
    total += static_cast<int>(queue.size());
  }
  return total;
}

}  // namespace qsched::sched
