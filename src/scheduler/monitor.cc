#include "scheduler/monitor.h"

#include "common/strings.h"
#include "obs/stage_trace.h"

namespace qsched::sched {

Monitor::Monitor(sim::Clock* simulator) : simulator_(simulator) {
  window_start_ = simulator_->Now();
}

void Monitor::set_telemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) return;
  records_counter_ =
      telemetry_->registry.GetCounter("qsched_monitor_records_total");
}

obs::Histogram* Monitor::VelocityHistogram(int class_id) {
  auto it = velocity_hists_.find(class_id);
  if (it == velocity_hists_.end()) {
    obs::Histogram* hist = telemetry_->registry.GetHistogram(
        "qsched_monitor_velocity_ratio",
        StrPrintf("class=\"%d\"", class_id));
    it = velocity_hists_.emplace(class_id, hist).first;
  }
  return it->second;
}

void Monitor::AddRecord(const workload::QueryRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  ++records_total_;
  if (telemetry_ != nullptr) {
    records_counter_->Inc();
    VelocityHistogram(record.class_id)->Record(record.Velocity());
  }
  Accumulator& acc = acc_[record.class_id];
  acc.completed += 1;
  acc.velocity_sum += record.Velocity();
  acc.response_sum += record.ResponseSeconds();
  acc.exec_sum += record.ExecSeconds();
  if (record.trace != nullptr && record.trace->HasExecStart()) {
    // The gateway stamps `completed` only after this callback returns,
    // so the execute stage is measured to "now" — the record is on the
    // completion path, microseconds short of the final stamp.
    const obs::QueryStageTrace& trace = *record.trace;
    acc.traced += 1;
    acc.stage_gateway_queue_sum += trace.GatewayQueueSeconds();
    acc.stage_dispatch_sum += trace.DispatchSeconds();
    acc.stage_execute_sum += obs::QueryStageTrace::Seconds(
        trace.exec_start, obs::QueryStageTrace::Clock::now());
  }
}

std::map<int, ClassIntervalStats> Monitor::Harvest() {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<int, ClassIntervalStats> out;
  double elapsed = simulator_->Now() - window_start_;
  for (const auto& [class_id, acc] : acc_) {
    ClassIntervalStats stats;
    stats.completed = acc.completed;
    if (acc.completed > 0) {
      double n = static_cast<double>(acc.completed);
      stats.mean_velocity = acc.velocity_sum / n;
      stats.mean_response_seconds = acc.response_sum / n;
      stats.mean_exec_seconds = acc.exec_sum / n;
    }
    if (elapsed > 0.0) {
      stats.throughput_per_second =
          static_cast<double>(acc.completed) / elapsed;
    }
    if (acc.traced > 0) {
      double traced = static_cast<double>(acc.traced);
      stats.mean_stage_gateway_queue_seconds =
          acc.stage_gateway_queue_sum / traced;
      stats.mean_stage_dispatch_seconds = acc.stage_dispatch_sum / traced;
      stats.mean_stage_execute_seconds = acc.stage_execute_sum / traced;
    }
    out[class_id] = stats;
  }
  acc_.clear();
  window_start_ = simulator_->Now();
  return out;
}

uint64_t Monitor::records_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_total_;
}

}  // namespace qsched::sched
