#include "scheduler/monitor.h"

#include "common/strings.h"

namespace qsched::sched {

Monitor::Monitor(sim::Clock* simulator) : simulator_(simulator) {
  window_start_ = simulator_->Now();
}

void Monitor::set_telemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) return;
  records_counter_ =
      telemetry_->registry.GetCounter("qsched_monitor_records_total");
}

obs::Histogram* Monitor::VelocityHistogram(int class_id) {
  auto it = velocity_hists_.find(class_id);
  if (it == velocity_hists_.end()) {
    obs::Histogram* hist = telemetry_->registry.GetHistogram(
        "qsched_monitor_velocity", StrPrintf("class=\"%d\"", class_id));
    it = velocity_hists_.emplace(class_id, hist).first;
  }
  return it->second;
}

void Monitor::AddRecord(const workload::QueryRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  ++records_total_;
  if (telemetry_ != nullptr) {
    records_counter_->Inc();
    VelocityHistogram(record.class_id)->Record(record.Velocity());
  }
  Accumulator& acc = acc_[record.class_id];
  acc.completed += 1;
  acc.velocity_sum += record.Velocity();
  acc.response_sum += record.ResponseSeconds();
  acc.exec_sum += record.ExecSeconds();
}

std::map<int, ClassIntervalStats> Monitor::Harvest() {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<int, ClassIntervalStats> out;
  double elapsed = simulator_->Now() - window_start_;
  for (const auto& [class_id, acc] : acc_) {
    ClassIntervalStats stats;
    stats.completed = acc.completed;
    if (acc.completed > 0) {
      double n = static_cast<double>(acc.completed);
      stats.mean_velocity = acc.velocity_sum / n;
      stats.mean_response_seconds = acc.response_sum / n;
      stats.mean_exec_seconds = acc.exec_sum / n;
    }
    if (elapsed > 0.0) {
      stats.throughput_per_second =
          static_cast<double>(acc.completed) / elapsed;
    }
    out[class_id] = stats;
  }
  acc_.clear();
  window_start_ = simulator_->Now();
  return out;
}

uint64_t Monitor::records_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_total_;
}

}  // namespace qsched::sched
