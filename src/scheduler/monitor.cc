#include "scheduler/monitor.h"

namespace qsched::sched {

Monitor::Monitor(sim::Simulator* simulator) : simulator_(simulator) {
  window_start_ = simulator_->Now();
}

void Monitor::AddRecord(const workload::QueryRecord& record) {
  ++records_total_;
  Accumulator& acc = acc_[record.class_id];
  acc.completed += 1;
  acc.velocity_sum += record.Velocity();
  acc.response_sum += record.ResponseSeconds();
  acc.exec_sum += record.ExecSeconds();
}

std::map<int, ClassIntervalStats> Monitor::Harvest() {
  std::map<int, ClassIntervalStats> out;
  double elapsed = simulator_->Now() - window_start_;
  for (const auto& [class_id, acc] : acc_) {
    ClassIntervalStats stats;
    stats.completed = acc.completed;
    if (acc.completed > 0) {
      double n = static_cast<double>(acc.completed);
      stats.mean_velocity = acc.velocity_sum / n;
      stats.mean_response_seconds = acc.response_sum / n;
      stats.mean_exec_seconds = acc.exec_sum / n;
    }
    if (elapsed > 0.0) {
      stats.throughput_per_second =
          static_cast<double>(acc.completed) / elapsed;
    }
    out[class_id] = stats;
  }
  acc_.clear();
  window_start_ = simulator_->Now();
  return out;
}

}  // namespace qsched::sched
