#ifndef QSCHED_SCHEDULER_GREEDY_ALLOCATOR_H_
#define QSCHED_SCHEDULER_GREEDY_ALLOCATOR_H_

#include <vector>

#include "scheduler/solver.h"

namespace qsched::sched {

/// Alternative Performance Solver in the spirit of the authors'
/// follow-up work on economic models ("Using Economic Models to Allocate
/// Resources in Database Management Systems"): instead of searching the
/// allocation simplex, the system cost limit is auctioned off in fixed
/// increments. Each round, every class bids its *marginal utility* for
/// the next increment (predicted via the same per-class performance
/// models); the highest bidder wins it. Greedy marginal-utility
/// allocation is optimal when class utilities are concave in their
/// limits, and degrades gracefully (and measurably — see
/// bench/ablation_allocators) when the violation kinks break concavity.
class GreedyAllocator {
 public:
  struct Options {
    /// Increment auctioned per round, as a fraction of the total.
    double increment_fraction = 0.02;
    UtilityFunction utility;
  };

  GreedyAllocator() : GreedyAllocator(Options()) {}
  explicit GreedyAllocator(Options options);

  /// Allocates the full cost limit. Every class starts at its min share;
  /// the remainder is auctioned.
  SchedulingPlan Solve(const SolverInput& input) const;

 private:
  /// Total utility of `limits` (same prediction rules as the solver).
  double Evaluate(const SolverInput& input,
                  const std::vector<double>& limits) const;

  Options options_;
};

}  // namespace qsched::sched

#endif  // QSCHED_SCHEDULER_GREEDY_ALLOCATOR_H_
