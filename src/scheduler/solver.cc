#include "scheduler/solver.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace qsched::sched {

double SchedulingPlan::LimitFor(int class_id) const {
  auto it = cost_limits.find(class_id);
  return it != cost_limits.end() ? it->second : 0.0;
}

double SchedulingPlan::Total() const {
  double total = 0.0;
  for (const auto& [id, limit] : cost_limits) total += limit;
  return total;
}

std::map<int, double> PredictPerformance(const SolverInput& input,
                                         const SchedulingPlan& plan) {
  double olap_old = 0.0;
  double olap_new = 0.0;
  for (const auto& cls : input.classes) {
    if (cls.spec->type == workload::WorkloadType::kOlap) {
      olap_old += cls.current_limit;
      olap_new += plan.LimitFor(cls.spec->class_id);
    }
  }
  std::map<int, double> predicted;
  for (const auto& cls : input.classes) {
    double new_limit = plan.LimitFor(cls.spec->class_id);
    double value;
    if (cls.spec->type == workload::WorkloadType::kOlap) {
      value = OlapVelocityModel::Predict(cls.measured, cls.current_limit,
                                         new_limit);
    } else if (cls.directly_controlled) {
      double old_limit = std::max(cls.current_limit, 1e-6);
      value = cls.measured * old_limit / std::max(new_limit, 1e-6);
    } else {
      QSCHED_CHECK(input.oltp_model != nullptr)
          << "OLTP class present but no response model";
      value = input.oltp_model->Predict(cls.measured, olap_old, olap_new);
    }
    predicted[cls.spec->class_id] = value;
  }
  return predicted;
}

PerformanceSolver::PerformanceSolver(Options options)
    : options_(std::move(options)) {}

double PerformanceSolver::EvaluateFractions(
    const SolverInput& input, const std::vector<double>& fractions) const {
  QSCHED_CHECK(fractions.size() == input.classes.size());
  double total = input.total_cost_limit;

  // OLAP totals before/after, needed by the OLTP model.
  double olap_old = 0.0;
  double olap_new = 0.0;
  for (size_t i = 0; i < input.classes.size(); ++i) {
    const auto& cls = input.classes[i];
    if (cls.spec->type == workload::WorkloadType::kOlap) {
      olap_old += cls.current_limit;
      olap_new += fractions[i] * total;
    }
  }

  double utility = 0.0;
  for (size_t i = 0; i < input.classes.size(); ++i) {
    const auto& cls = input.classes[i];
    double new_limit = fractions[i] * total;
    double predicted;
    if (cls.spec->type == workload::WorkloadType::kOlap) {
      predicted = OlapVelocityModel::Predict(cls.measured,
                                             cls.current_limit, new_limit);
    } else if (cls.directly_controlled) {
      // Direct OLTP control: response inversely proportional to the
      // class's own cost limit (response = exec / velocity with velocity
      // scaling like the OLAP model).
      double old_limit = std::max(cls.current_limit, 1e-6);
      predicted = cls.measured * old_limit / std::max(new_limit, 1e-6);
    } else {
      QSCHED_CHECK(input.oltp_model != nullptr)
          << "OLTP class present but no response model";
      predicted =
          input.oltp_model->Predict(cls.measured, olap_old, olap_new);
    }
    utility += options_.utility.Evaluate(*cls.spec, predicted);
  }
  if (options_.change_penalty > 0.0 && total > 0.0) {
    double change = 0.0;
    for (size_t i = 0; i < input.classes.size(); ++i) {
      double current_fraction = input.classes[i].current_limit / total;
      change += std::abs(fractions[i] - current_fraction);
    }
    utility -= options_.change_penalty * change;
  }
  return utility;
}

std::vector<double> PerformanceSolver::InitialFractions(
    const SolverInput& input) const {
  size_t n = input.classes.size();
  std::vector<double> fractions(n, 0.0);
  double total = input.total_cost_limit;
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double f = total > 0.0 ? input.classes[i].current_limit / total : 0.0;
    f = std::max(f, input.classes[i].spec->min_share);
    fractions[i] = f;
    sum += f;
  }
  if (sum <= 0.0) {
    std::fill(fractions.begin(), fractions.end(),
              1.0 / static_cast<double>(n));
  } else {
    for (double& f : fractions) f /= sum;
  }
  return fractions;
}

void PerformanceSolver::GridSearch(const SolverInput& input,
                                   std::vector<double>* best_fractions,
                                   double* best_utility) const {
  size_t n = input.classes.size();
  if (n < 2 || n > 3) return;  // hill climbing covers other sizes
  double step = std::clamp(options_.grid_step, 0.005, 0.5);

  auto min_share = [&](size_t i) {
    return input.classes[i].spec->min_share;
  };

  if (n == 2) {
    for (double f0 = min_share(0); f0 <= 1.0 - min_share(1) + 1e-12;
         f0 += step) {
      std::vector<double> f = {f0, 1.0 - f0};
      double u = EvaluateFractions(input, f);
      if (u > *best_utility) {
        *best_utility = u;
        *best_fractions = f;
      }
    }
    return;
  }
  for (double f0 = min_share(0);
       f0 <= 1.0 - min_share(1) - min_share(2) + 1e-12; f0 += step) {
    for (double f1 = min_share(1); f0 + f1 <= 1.0 - min_share(2) + 1e-12;
         f1 += step) {
      double f2 = 1.0 - f0 - f1;
      std::vector<double> f = {f0, f1, f2};
      double u = EvaluateFractions(input, f);
      if (u > *best_utility) {
        *best_utility = u;
        *best_fractions = f;
      }
    }
  }
}

void PerformanceSolver::HillClimb(const SolverInput& input,
                                  std::vector<double>* fractions,
                                  double* utility) const {
  size_t n = input.classes.size();
  for (int pass = 0; pass < options_.max_refine_passes; ++pass) {
    bool improved = false;
    for (double step : options_.refine_steps) {
      for (size_t from = 0; from < n; ++from) {
        for (size_t to = 0; to < n; ++to) {
          if (from == to) continue;
          double min_from = input.classes[from].spec->min_share;
          if ((*fractions)[from] - step < min_from - 1e-12) continue;
          std::vector<double> candidate = *fractions;
          candidate[from] -= step;
          candidate[to] += step;
          double u = EvaluateFractions(input, candidate);
          if (u > *utility + 1e-12) {
            *fractions = candidate;
            *utility = u;
            improved = true;
          }
        }
      }
    }
    if (!improved) break;
  }
}

SchedulingPlan PerformanceSolver::Solve(const SolverInput& input) const {
  SchedulingPlan plan;
  size_t n = input.classes.size();
  if (n == 0 || input.total_cost_limit <= 0.0) return plan;

  std::vector<double> fractions = InitialFractions(input);
  double utility = EvaluateFractions(input, fractions);
  GridSearch(input, &fractions, &utility);
  HillClimb(input, &fractions, &utility);

  for (size_t i = 0; i < n; ++i) {
    plan.cost_limits[input.classes[i].spec->class_id] =
        fractions[i] * input.total_cost_limit;
  }
  plan.predicted_utility = utility;
  return plan;
}

}  // namespace qsched::sched
