#include "scheduler/service_class.h"

#include "common/strings.h"

namespace qsched::sched {

double ServiceClassSpec::GoalRatio(double measured) const {
  if (goal_value <= 0.0) return 1.0;
  if (goal_kind == GoalKind::kVelocityFloor) {
    return measured / goal_value;
  }
  // Response-time ceiling on a *linear* scale: p = 2 - t/goal, so p >= 1
  // still means "met" and every second of extra response time costs the
  // same utility. (The naive goal/t form has 1/t^2 sensitivity: the
  // deeper the violation, the weaker its pull on the optimizer —
  // backwards for SLO enforcement.)
  if (measured < 0.0) measured = 0.0;
  double p = 2.0 - measured / goal_value;
  return p < -2.0 ? -2.0 : p;
}

Status ServiceClassSet::Add(ServiceClassSpec spec) {
  if (Find(spec.class_id) != nullptr) {
    return Status::AlreadyExists(
        StrPrintf("class %d already defined", spec.class_id));
  }
  if (spec.min_share < 0.0 || spec.min_share > 1.0) {
    return Status::InvalidArgument("min_share outside [0,1]");
  }
  classes_.push_back(std::move(spec));
  return Status::OK();
}

const ServiceClassSpec* ServiceClassSet::Find(int class_id) const {
  for (const ServiceClassSpec& spec : classes_) {
    if (spec.class_id == class_id) return &spec;
  }
  return nullptr;
}

std::vector<int> ServiceClassSet::OlapClassIds() const {
  std::vector<int> ids;
  for (const ServiceClassSpec& spec : classes_) {
    if (spec.type == workload::WorkloadType::kOlap) {
      ids.push_back(spec.class_id);
    }
  }
  return ids;
}

std::vector<int> ServiceClassSet::OltpClassIds() const {
  std::vector<int> ids;
  for (const ServiceClassSpec& spec : classes_) {
    if (spec.type == workload::WorkloadType::kOltp) {
      ids.push_back(spec.class_id);
    }
  }
  return ids;
}

ServiceClassSet MakePaperClasses() {
  ServiceClassSet set;
  ServiceClassSpec class1;
  class1.class_id = 1;
  class1.name = "olap-standard";
  class1.type = workload::WorkloadType::kOlap;
  class1.goal_kind = GoalKind::kVelocityFloor;
  class1.goal_value = 0.4;
  class1.importance = 1;
  set.Add(class1);

  ServiceClassSpec class2;
  class2.class_id = 2;
  class2.name = "olap-premium";
  class2.type = workload::WorkloadType::kOlap;
  class2.goal_kind = GoalKind::kVelocityFloor;
  class2.goal_value = 0.6;
  class2.importance = 2;
  set.Add(class2);

  ServiceClassSpec class3;
  class3.class_id = 3;
  class3.name = "oltp";
  class3.type = workload::WorkloadType::kOltp;
  class3.goal_kind = GoalKind::kAvgResponseCeiling;
  class3.goal_value = 0.25;
  class3.importance = 3;
  set.Add(class3);
  return set;
}

}  // namespace qsched::sched
