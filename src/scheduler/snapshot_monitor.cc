#include "scheduler/snapshot_monitor.h"

namespace qsched::sched {

SnapshotMonitor::SnapshotMonitor(sim::Clock* simulator,
                                 engine::ExecutionEngine* engine,
                                 const Options& options)
    : simulator_(simulator), engine_(engine), options_(options) {}

void SnapshotMonitor::set_telemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) return;
  obs::Registry& reg = telemetry_->registry;
  snapshots_counter_ =
      reg.GetCounter("qsched_snapshot_monitor_snapshots_total");
  sampled_clients_gauge_ =
      reg.GetGauge("qsched_snapshot_monitor_sampled_clients");
  avg_response_hist_ =
      reg.GetHistogram("qsched_snapshot_monitor_avg_response_seconds");
}

void SnapshotMonitor::Start(sim::SimTime until) {
  double interval = options_.sample_interval_seconds;
  if (interval <= 0.0) return;
  for (double t = interval; t <= until; t += interval) {
    simulator_->ScheduleAt(t, [this] { TakeSnapshot(); });
  }
}

void SnapshotMonitor::RecordCompletion(
    const workload::QueryRecord& record) {
  last_response_[record.client_id] =
      ClientRow{record.ResponseSeconds(), simulator_->Now()};
}

void SnapshotMonitor::TakeSnapshot() {
  ++snapshots_taken_;
  // Expire rows of disconnected/idle clients.
  double cutoff = simulator_->Now() - options_.staleness_window_seconds;
  for (auto it = last_response_.begin(); it != last_response_.end();) {
    if (it->second.updated_at < cutoff) {
      it = last_response_.erase(it);
    } else {
      ++it;
    }
  }
  if (!last_response_.empty()) {
    double sum = 0.0;
    for (const auto& [client, row] : last_response_) {
      sum += row.response_seconds;
    }
    double avg = sum / static_cast<double>(last_response_.size());
    sample_sum_ += avg;
    sample_count_ += 1;
    if (telemetry_ != nullptr) avg_response_hist_->Record(avg);
  }
  if (telemetry_ != nullptr) {
    snapshots_counter_->Inc();
    sampled_clients_gauge_->Set(
        static_cast<double>(last_response_.size()));
  }
  // Reading the snapshot tables costs CPU per client row.
  double overhead = options_.per_client_cpu_seconds *
                    static_cast<double>(last_response_.size());
  if (overhead > 0.0 && engine_ != nullptr) {
    engine_->cpu_pool().Submit(overhead, [] {});
    total_overhead_cpu_seconds_ += overhead;
  }
}

double SnapshotMonitor::HarvestAvgResponse(double fallback) {
  double result;
  if (sample_count_ > 0) {
    result = sample_sum_ / static_cast<double>(sample_count_);
    last_known_avg_ = result;
  } else if (last_known_avg_ >= 0.0) {
    result = last_known_avg_;
  } else {
    result = fallback;
  }
  sample_sum_ = 0.0;
  sample_count_ = 0;
  return result;
}

}  // namespace qsched::sched
